// Corruption corpus + contract tests for the compressed-source layer
// (io/inflate_file.h). Two properties gate everything above it:
//
//  1. Offset fidelity: the decompressed byte stream reads back identical to
//     the original bytes through any access pattern — sequential, random
//     checkpoint-directed seeks, concurrent readers, installed snapshot
//     indexes — because positional maps store decompressed offsets and a
//     single wrong byte silently corrupts parsed values.
//
//  2. Typed failure: every malformed input — truncated mid-member, bit
//     flips anywhere (header, deflate body, CRC trailer), concatenated
//     members, garbage past the trailer — must surface as a typed
//     Corruption/InvalidArgument status, never a crash and never silently
//     wrong bytes. This suite runs in the ASan CI shard.

#include "io/inflate_file.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/file.h"
#include "util/fs_util.h"

namespace nodb {
namespace {

/// Deterministic compressible-but-not-trivial text, shaped like the CSV
/// payloads the engine actually scans.
std::string MakeText(size_t target_bytes) {
  std::string out;
  out.reserve(target_bytes + 64);
  uint64_t state = 0x243f6a8885a308d3ull;
  uint64_t row = 0;
  while (out.size() < target_bytes) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    out += std::to_string(row++);
    out += ',';
    out += std::to_string(state % 100000);
    out += ",name_";
    out += std::to_string(state % 977);
    out += ',';
    out += (state & 1) ? "true" : "false";
    out += '\n';
  }
  return out;
}

Result<std::unique_ptr<InflateFile>> OpenGzBytes(const std::string& path,
                                                 const std::string& gz_bytes,
                                                 uint64_t interval) {
  EXPECT_TRUE(WriteStringToFile(path, gz_bytes).ok());
  auto inner = RandomAccessFile::Open(path);
  if (!inner.ok()) return inner.status();
  InflateOptions opts;
  opts.checkpoint_interval_bytes = interval;
  return InflateFile::Open(std::move(*inner), opts);
}

/// Reads the whole presented stream in 64 KiB chunks.
Status ReadAll(const RandomAccessFile& f, std::string* out) {
  out->clear();
  out->reserve(f.size());
  std::vector<char> buf(64 * 1024);
  uint64_t off = 0;
  while (off < f.size()) {
    Result<uint64_t> n = f.Read(off, buf.size(), buf.data());
    if (!n.ok()) return n.status();
    if (*n == 0) break;
    out->append(buf.data(), *n);
    off += *n;
  }
  return Status::OK();
}

bool IsTypedDataError(const Status& s) {
  return s.code() == StatusCode::kCorruption ||
         s.code() == StatusCode::kInvalidArgument;
}

class InflateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!InflateSupported()) GTEST_SKIP() << "built without zlib";
  }

  TempDir dir_;
};

TEST_F(InflateTest, RejectsNonGzipInput) {
  const std::string path = dir_.File("plain.csv");
  ASSERT_TRUE(WriteStringToFile(path, MakeText(4096)).ok());
  auto inner = RandomAccessFile::Open(path);
  ASSERT_TRUE(inner.ok());
  auto gz = InflateFile::Open(std::move(*inner));
  ASSERT_FALSE(gz.ok());
  EXPECT_EQ(gz.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(InflateTest, MagicSniff) {
  EXPECT_TRUE(InflateFile::IsGzip(GzipCompress("x")));
  EXPECT_FALSE(InflateFile::IsGzip("id,name\n"));
  EXPECT_FALSE(InflateFile::IsGzip("\x1f"));
  EXPECT_FALSE(InflateFile::IsGzip(""));
}

TEST_F(InflateTest, EmptyPayload) {
  auto gz = OpenGzBytes(dir_.File("empty.gz"), GzipCompress(""), 1 << 20);
  ASSERT_TRUE(gz.ok());
  EXPECT_EQ((*gz)->size(), 0u);
  char buf[8];
  auto n = (*gz)->Read(0, sizeof(buf), buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST_F(InflateTest, SequentialRoundTripBuildsIndex) {
  const std::string text = MakeText(1500 * 1024);
  const uint64_t interval = 64 * 1024;
  auto gz = OpenGzBytes(dir_.File("t.gz"), GzipCompress(text), interval);
  ASSERT_TRUE(gz.ok());
  const InflateFile& f = **gz;
  EXPECT_EQ(f.size(), text.size());
  EXPECT_FALSE(f.index_complete());
  EXPECT_FALSE(f.SupportsConcurrentReads());

  std::string got;
  ASSERT_TRUE(ReadAll(f, &got).ok());
  EXPECT_TRUE(got == text) << "decompressed bytes differ";

  // One full pass completes the index: checkpoints spaced >= interval,
  // presented-space split offsets available, and the stream end verified
  // against CRC32/ISIZE.
  EXPECT_TRUE(f.index_complete());
  EXPECT_TRUE(f.SupportsConcurrentReads());
  EXPECT_GT(f.checkpoint_count(), 4u);
  EXPECT_LE(f.checkpoint_count(), text.size() / interval);
  std::vector<uint64_t> splits = f.RecommendedSplitOffsets();
  ASSERT_EQ(splits.size(), f.checkpoint_count());
  for (size_t i = 1; i < splits.size(); ++i) {
    EXPECT_GE(splits[i], splits[i - 1] + interval);
  }

  // Accounting: decompressed payload served once; compressed reads bounded
  // by the file (plus the header/trailer probes at Open).
  EXPECT_EQ(f.bytes_read(), text.size());
  EXPECT_GE(f.bytes_inflated(), text.size());
  EXPECT_GT(f.compressed_bytes_read(), 0u);
  EXPECT_LT(f.compressed_bytes_read(), text.size());  // it compressed
}

TEST_F(InflateTest, CheckpointSeekInflatesAtMostOneInterval) {
  const std::string text = MakeText(1200 * 1024);
  const uint64_t interval = 64 * 1024;
  auto gz = OpenGzBytes(dir_.File("t.gz"), GzipCompress(text), interval);
  ASSERT_TRUE(gz.ok());
  const InflateFile& f = **gz;
  std::string got;
  ASSERT_TRUE(ReadAll(f, &got).ok());
  ASSERT_TRUE(f.index_complete());

  // A deflate block can overshoot the nominal interval before the recorder
  // gets a boundary to grab; give each seek that much slack.
  const uint64_t kBlockSlack = 128 * 1024;
  const uint64_t kLen = 4096;
  uint64_t state = 99;
  for (int i = 0; i < 32; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t off = state % (text.size() - kLen);
    const uint64_t restarts_before = f.checkpoint_restarts();
    const uint64_t inflated_before = f.bytes_inflated();
    std::vector<char> buf(kLen);
    auto n = f.Read(off, kLen, buf.data());
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(*n, kLen);
    EXPECT_EQ(std::string_view(buf.data(), kLen), text.substr(off, kLen));
    const uint64_t inflated = f.bytes_inflated() - inflated_before;
    EXPECT_LE(inflated, interval + kLen + kBlockSlack)
        << "seek to " << off << " re-inflated " << inflated
        << " bytes (restarts went " << restarts_before << " -> "
        << f.checkpoint_restarts() << ")";
  }
  EXPECT_GT(f.checkpoint_restarts(), 0u);
}

TEST_F(InflateTest, RandomReadsMatchContent) {
  const std::string text = MakeText(600 * 1024);
  auto gz = OpenGzBytes(dir_.File("t.gz"), GzipCompress(text), 32 * 1024);
  ASSERT_TRUE(gz.ok());
  const InflateFile& f = **gz;
  uint64_t state = 7;
  for (int i = 0; i < 64; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t off = state % text.size();
    const uint64_t len = 1 + (state >> 33) % 9000;
    std::vector<char> buf(len);
    auto n = f.Read(off, len, buf.data());
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, std::min<uint64_t>(len, text.size() - off));
    EXPECT_EQ(std::string_view(buf.data(), *n), text.substr(off, *n));
  }
}

TEST_F(InflateTest, SerializedIndexWarmsAFreshHandle) {
  const std::string text = MakeText(900 * 1024);
  const uint64_t interval = 64 * 1024;
  const std::string path = dir_.File("t.gz");
  std::string blob;
  {
    auto gz = OpenGzBytes(path, GzipCompress(text), interval);
    ASSERT_TRUE(gz.ok());
    EXPECT_TRUE((*gz)->SerializeIndex().empty()) << "index not built yet";
    std::string got;
    ASSERT_TRUE(ReadAll(**gz, &got).ok());
    blob = (*gz)->SerializeIndex();
    ASSERT_FALSE(blob.empty());
  }

  // Fresh handle + installed index: warm seeks without ever inflating from
  // byte zero — the restarted-server scenario.
  auto inner = RandomAccessFile::Open(path);
  ASSERT_TRUE(inner.ok());
  InflateOptions opts;
  opts.checkpoint_interval_bytes = interval;
  auto gz = InflateFile::Open(std::move(*inner), opts);
  ASSERT_TRUE(gz.ok());
  const InflateFile& f = **gz;
  ASSERT_TRUE(f.InstallIndex(blob).ok());
  EXPECT_TRUE(f.index_complete());
  EXPECT_GT(f.checkpoint_count(), 0u);
  EXPECT_EQ(f.bytes_inflated(), 0u) << "installing must not inflate";

  const uint64_t off = text.size() - 10000;
  std::vector<char> buf(4096);
  auto n = f.Read(off, buf.size(), buf.data());
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, buf.size());
  EXPECT_EQ(std::string_view(buf.data(), *n), text.substr(off, *n));
  EXPECT_LE(f.bytes_inflated(), interval + buf.size() + 128 * 1024);
  EXPECT_EQ(f.full_restarts(), 0u);
  EXPECT_GT(f.checkpoint_restarts(), 0u);
}

TEST_F(InflateTest, InstallIndexRejectsCorruptBlobs) {
  const std::string text = MakeText(300 * 1024);
  const std::string path = dir_.File("t.gz");
  auto gz = OpenGzBytes(path, GzipCompress(text), 32 * 1024);
  ASSERT_TRUE(gz.ok());
  std::string got;
  ASSERT_TRUE(ReadAll(**gz, &got).ok());
  const std::string blob = (*gz)->SerializeIndex();
  ASSERT_FALSE(blob.empty());

  auto fresh = [&]() {
    auto inner = RandomAccessFile::Open(path);
    EXPECT_TRUE(inner.ok());
    return InflateFile::Open(std::move(*inner));
  };

  {
    auto f = fresh();
    ASSERT_TRUE(f.ok());
    EXPECT_EQ((*f)->InstallIndex("").code(), StatusCode::kCorruption);
    EXPECT_EQ((*f)->InstallIndex("GZIXgarbage").code(),
              StatusCode::kCorruption);
  }
  // A flip anywhere in the blob — lengths, offsets, window bytes, the
  // checksum itself — must be rejected (a wrong window would inflate
  // garbage), and the file must still serve correct bytes afterwards by
  // re-inflating from zero.
  uint64_t state = 3;
  for (int i = 0; i < 24; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::string bad = blob;
    bad[state % bad.size()] ^= static_cast<char>(1u << (state % 8));
    if (bad == blob) continue;
    auto f = fresh();
    ASSERT_TRUE(f.ok());
    EXPECT_EQ((*f)->InstallIndex(bad).code(), StatusCode::kCorruption);
    EXPECT_FALSE((*f)->index_complete());
    std::string again;
    ASSERT_TRUE(ReadAll(**f, &again).ok());
    EXPECT_TRUE(again == text);
  }
}

TEST_F(InflateTest, TruncatedMidMember) {
  const std::string text = MakeText(200 * 1024);
  const std::string gz_bytes = GzipCompress(text);
  for (double frac : {0.97, 0.6, 0.25}) {
    const auto cut = static_cast<size_t>(gz_bytes.size() * frac);
    auto gz = OpenGzBytes(dir_.File("trunc.gz"), gz_bytes.substr(0, cut),
                          32 * 1024);
    if (!gz.ok()) {
      EXPECT_TRUE(IsTypedDataError(gz.status())) << gz.status().message();
      continue;
    }
    std::string got;
    Status s = ReadAll(**gz, &got);
    ASSERT_FALSE(s.ok()) << "truncated member read fully at frac=" << frac;
    EXPECT_TRUE(IsTypedDataError(s)) << s.message();
    // The handle stays usable as an error-returning object, not a crash.
    char byte;
    (void)(*gz)->Read(0, 1, &byte);
  }
  // Below the minimum member size Open itself rejects.
  auto tiny = OpenGzBytes(dir_.File("tiny.gz"), gz_bytes.substr(0, 12),
                          32 * 1024);
  ASSERT_FALSE(tiny.ok());
  EXPECT_TRUE(IsTypedDataError(tiny.status()));
}

TEST_F(InflateTest, BitFlipSweep) {
  const std::string text = MakeText(50 * 1024);
  const std::string gz_bytes = GzipCompress(text);
  ASSERT_GT(gz_bytes.size(), 40u);

  std::vector<size_t> positions;
  for (size_t i = 0; i < 10; ++i) positions.push_back(i);  // header
  for (size_t i = 10; i + 8 < gz_bytes.size(); i += 97) {  // deflate body
    positions.push_back(i);
  }
  for (size_t i = gz_bytes.size() - 8; i < gz_bytes.size(); ++i) {
    positions.push_back(i);  // CRC32 + ISIZE trailer
  }

  for (size_t pos : positions) {
    std::string bad = gz_bytes;
    bad[pos] ^= '\xff';
    auto gz = OpenGzBytes(dir_.File("flip.gz"), bad, 16 * 1024);
    if (!gz.ok()) {
      EXPECT_TRUE(IsTypedDataError(gz.status()))
          << "pos=" << pos << ": " << gz.status().message();
      continue;
    }
    std::string got;
    Status s = ReadAll(**gz, &got);
    if (s.ok()) {
      // Flips zlib legitimately ignores (FTEXT flag, XFL, OS byte) must
      // still decode byte-identically — never silently wrong data.
      EXPECT_TRUE(got == text) << "pos=" << pos
                               << ": silently wrong decompressed bytes";
      EXPECT_LT(pos, 10u) << "non-header flip accepted at pos=" << pos;
    } else {
      EXPECT_TRUE(IsTypedDataError(s)) << "pos=" << pos << ": "
                                       << s.message();
    }
  }
}

TEST_F(InflateTest, ConcatenatedMembersRejected) {
  const std::string a = MakeText(80 * 1024);
  // Same-size and different-size second members exercise both detection
  // paths (trailing-input check vs ISIZE mismatch).
  for (size_t b_bytes : {a.size(), a.size() / 3}) {
    const std::string b = MakeText(b_bytes);
    auto gz = OpenGzBytes(dir_.File("concat.gz"),
                          GzipCompress(a) + GzipCompress(b), 16 * 1024);
    if (!gz.ok()) {
      EXPECT_TRUE(IsTypedDataError(gz.status()));
      continue;
    }
    std::string got;
    Status s = ReadAll(**gz, &got);
    ASSERT_FALSE(s.ok()) << "concatenated members must not read through";
    EXPECT_TRUE(IsTypedDataError(s)) << s.message();
  }
}

TEST_F(InflateTest, GarbagePastTrailerRejected) {
  const std::string text = MakeText(60 * 1024);
  for (const std::string& tail :
       {std::string("THIS IS NOT GZIP DATA"), std::string(64, '\0')}) {
    auto gz = OpenGzBytes(dir_.File("tail.gz"), GzipCompress(text) + tail,
                          16 * 1024);
    if (!gz.ok()) {
      EXPECT_TRUE(IsTypedDataError(gz.status()));
      continue;
    }
    std::string got;
    Status s = ReadAll(**gz, &got);
    ASSERT_FALSE(s.ok()) << "trailing garbage must not read through";
    EXPECT_TRUE(IsTypedDataError(s)) << s.message();
  }
}

TEST_F(InflateTest, ConcurrentReadersAgree) {
  const std::string text = MakeText(800 * 1024);
  auto gz = OpenGzBytes(dir_.File("t.gz"), GzipCompress(text), 64 * 1024);
  ASSERT_TRUE(gz.ok());
  const InflateFile& f = **gz;
  std::string got;
  ASSERT_TRUE(ReadAll(f, &got).ok());
  ASSERT_TRUE(f.SupportsConcurrentReads());

  std::vector<std::thread> threads;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      uint64_t state = 1000 + t;
      std::vector<char> buf(8192);
      for (int i = 0; i < 40; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const uint64_t off = state % (text.size() - buf.size());
        auto n = f.Read(off, buf.size(), buf.data());
        if (!n.ok() || *n != buf.size() ||
            std::string_view(buf.data(), *n) != text.substr(off, *n)) {
          ++failures[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
}

}  // namespace
}  // namespace nodb
