#ifndef NODB_ADAPTIVE_COLUMN_ACCESS_H_
#define NODB_ADAPTIVE_COLUMN_ACCESS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace nodb {

/// Per-column access counters accumulated by the raw scans (serial and
/// parallel). These are the observed-workload signals the promotion policy
/// scores columns with (ROADMAP "workload-driven auto-promotion"; the
/// resource-counter-driven direction of Patel/Bhise): how often a column is
/// requested, and how much raw-text conversion work the engine keeps paying
/// for it versus how often the warm representations (cache, promoted
/// columnar form) already absorb the cost.
struct ColumnAccessCounters {
  /// Scans that requested this column as an output attribute.
  uint64_t scans = 0;
  /// Values converted from raw text (the expensive tokenize+parse path).
  uint64_t rows_parsed = 0;
  /// Raw text bytes behind those conversions.
  uint64_t bytes_parsed = 0;
  /// Values served from the column cache instead of the file.
  uint64_t rows_from_cache = 0;
  /// Values served from the promoted columnar form.
  uint64_t rows_from_promoted = 0;

  /// Scalar "cost paid so far to serve this column from raw text": text
  /// bytes plus a fixed per-value conversion charge. The policy promotes
  /// columns whose un-absorbed parse work keeps growing.
  uint64_t ParseWork() const { return bytes_parsed + 16 * rows_parsed; }
};

/// Thread-safe per-column access accounting for one raw table. Scans
/// accumulate counts in per-stripe (serial) or per-morsel (parallel) locals
/// and flush them here in one call per column, so the hot loops never touch
/// shared state per tuple. Counters are relaxed atomics: readers (the
/// promotion policy, STATS, snapshots) only need eventually-consistent
/// totals, never cross-counter invariants.
class ColumnAccessTracker {
 public:
  explicit ColumnAccessTracker(int num_attrs);

  ColumnAccessTracker(const ColumnAccessTracker&) = delete;
  ColumnAccessTracker& operator=(const ColumnAccessTracker&) = delete;

  int num_attrs() const { return num_attrs_; }

  /// One scan requested these output attributes.
  void RecordScan(const std::vector<int>& attrs);
  /// `rows` values of `attr` were converted from `bytes` raw text bytes.
  void RecordParsed(int attr, uint64_t rows, uint64_t bytes);
  void RecordCacheServed(int attr, uint64_t rows);
  void RecordPromotedServed(int attr, uint64_t rows);

  ColumnAccessCounters Snapshot(int attr) const;
  std::vector<ColumnAccessCounters> SnapshotAll() const;

  /// Adds restored counts onto the live counters (snapshot load at Open,
  /// when the tracker is still zero).
  void InstallSnapshot(int attr, const ColumnAccessCounters& c);

  /// Order-independent digest of all counters, mixed into the snapshot
  /// writer's warm-state signature so counter movement triggers re-saves.
  uint64_t Signature() const;

 private:
  /// One cacheline per column so concurrent parallel-scan merges and the
  /// background promoter never false-share.
  struct alignas(64) Cell {
    std::atomic<uint64_t> scans{0};
    std::atomic<uint64_t> rows_parsed{0};
    std::atomic<uint64_t> bytes_parsed{0};
    std::atomic<uint64_t> rows_from_cache{0};
    std::atomic<uint64_t> rows_from_promoted{0};
  };

  const int num_attrs_;
  std::unique_ptr<Cell[]> cells_;
};

}  // namespace nodb

#endif  // NODB_ADAPTIVE_COLUMN_ACCESS_H_
