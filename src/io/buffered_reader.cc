#include "io/buffered_reader.h"

#include <algorithm>

namespace nodb {

BufferedReader::BufferedReader(const RandomAccessFile* file,
                               uint64_t buffer_size)
    : file_(file) {
  buffer_.resize(std::max<uint64_t>(buffer_size, 4096));
}

Result<std::string_view> BufferedReader::ReadAt(uint64_t offset,
                                                uint64_t length) {
  if (offset >= file_->size()) return std::string_view();
  length = std::min(length, file_->size() - offset);
  if (offset < window_start_ || offset + length > window_start_ + window_len_) {
    NODB_RETURN_IF_ERROR(Fill(offset, length));
  }
  return std::string_view(buffer_.data() + (offset - window_start_), length);
}

Status BufferedReader::Prefetch(uint64_t offset) {
  if (offset >= file_->size()) return Status::OK();
  if (offset >= window_start_ && offset < window_start_ + window_len_) {
    return Status::OK();
  }
  return Fill(offset, 1);
}

Status BufferedReader::Fill(uint64_t offset, uint64_t length) {
  // Start the window slightly before `offset` so that backward incremental
  // tokenizing (paper §4.2, "tokenizes backwards") usually stays buffered.
  uint64_t back_slack = std::min<uint64_t>(offset, buffer_.size() / 16);
  uint64_t start = offset - back_slack;
  if (back_slack + length > buffer_.size()) {
    buffer_.resize(back_slack + length);
  }
  NODB_ASSIGN_OR_RETURN(uint64_t n,
                        file_->Read(start, buffer_.size(), buffer_.data()));
  window_start_ = start;
  window_len_ = n;
  if (offset + length > window_start_ + window_len_) {
    return Status::IOError("short read: requested range extends past EOF");
  }
  return Status::OK();
}

}  // namespace nodb
