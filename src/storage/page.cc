#include "storage/page.h"

namespace nodb {

void SlottedPage::Init(uint32_t page_id) {
  Header* h = header();
  h->page_id = page_id;
  h->slot_count = 0;
  h->lower = sizeof(Header);
  h->upper = kPageSize;
  h->reserved = 0;
}

uint32_t SlottedPage::FreeSpace() const {
  const Header* h = header();
  uint32_t gap = h->upper - h->lower;
  return gap >= sizeof(Slot) ? gap - sizeof(Slot) : 0;
}

uint32_t SlottedPage::MaxInlinePayload() {
  return kPageSize - sizeof(Header) - sizeof(Slot);
}

int SlottedPage::InsertTuple(std::string_view data, uint16_t flags) {
  Header* h = header();
  if (FreeSpace() < data.size()) return -1;
  h->upper -= static_cast<uint16_t>(data.size());
  memcpy(frame_ + h->upper, data.data(), data.size());
  Slot* slot = slots() + h->slot_count;
  slot->offset = h->upper;
  slot->len = static_cast<uint16_t>(data.size());
  slot->flags = flags;
  slot->reserved = 0;
  h->lower += sizeof(Slot);
  return h->slot_count++;
}

std::string_view SlottedPage::GetTuple(int slot) const {
  const Slot& s = slots()[slot];
  return std::string_view(frame_ + s.offset, s.len);
}

uint16_t SlottedPage::GetFlags(int slot) const { return slots()[slot].flags; }

}  // namespace nodb
