#ifndef NODB_CSV_TOKENIZER_H_
#define NODB_CSV_TOKENIZER_H_

#include <cstdint>
#include <string_view>

#include "csv/dialect.h"
#include "raw/raw_source.h"

namespace nodb {

/// Low-level field-boundary discovery inside one CSV record (a line without
/// its trailing newline). All offsets are relative to the start of the line.
///
/// These functions implement the paper's *selective tokenizing*: callers stop
/// tokenizing at the last attribute a query needs, and, when the positional
/// map supplies a nearby anchor, tokenize incrementally forward or backward
/// from it instead of from the start of the tuple (§4.2 "Exploiting the
/// Positional Map").
///
/// A field's *position* is the offset of its first character; field 0 is at
/// offset 0 and field k starts one past the k-th delimiter.

/// Sentinel returned when a requested field does not exist in the line.
inline constexpr uint32_t kInvalidOffset = UINT32_MAX;

/// Fills `starts[0..upto]` with the start offsets of fields 0..upto
/// (inclusive) and returns how many were found (<= upto+1 if the line has
/// fewer fields). `starts` must hold at least `upto + 1` entries.
int TokenizeStarts(std::string_view line, const CsvDialect& dialect, int upto,
                   uint32_t* starts);

/// Offset of the start of field `to_attr`, scanning forward from
/// `from_offset`, which must be the start of field `from_attr`
/// (from_attr <= to_attr). Returns kInvalidOffset if the line ends first.
/// Every field start crossed is reported through `sink` when given (this is
/// the walk behind CsvAdapter::FindForward, so the positional map learns
/// every position the scan discovers).
uint32_t FindFieldForward(std::string_view line, const CsvDialect& dialect,
                          int from_attr, uint32_t from_offset, int to_attr,
                          const PositionSink* sink = nullptr);

/// Offset of the start of field `to_attr`, scanning backward from
/// `from_offset`, the start of field `from_attr` (to_attr < from_attr).
/// Only valid for dialects without quoting. Crossed field starts are
/// reported through `sink` when given; a line with fewer delimiters than
/// the walk requires (malformed) yields kInvalidOffset.
uint32_t FindFieldBackward(std::string_view line, const CsvDialect& dialect,
                           int from_attr, uint32_t from_offset, int to_attr,
                           const PositionSink* sink = nullptr);

/// End offset (one past the last character) of the field starting at `begin`.
uint32_t FieldEndAt(std::string_view line, const CsvDialect& dialect,
                    uint32_t begin);

/// Number of fields in the line (empty line = 1 empty field).
int CountFields(std::string_view line, const CsvDialect& dialect);

}  // namespace nodb

#endif  // NODB_CSV_TOKENIZER_H_
