#include "pmap/positional_map.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "io/file.h"
#include "util/fs_util.h"
#include "util/str_conv.h"

namespace nodb {

PositionalMap::PositionalMap(int num_attrs, Options options)
    : num_attrs_(num_attrs), options_(options) {
  assert(options_.tuples_per_chunk > 0);
  attr_membership_.resize(num_attrs);
}

// ---------------------------------------------------------------------
// Spine
// ---------------------------------------------------------------------

PositionalMap::Stripe& PositionalMap::GetStripe(uint64_t stripe) {
  return stripes_[stripe];
}

void PositionalMap::SetRowStartLocked(uint64_t tuple, uint64_t offset) {
  Stripe& s = GetStripe(stripe_of(tuple));
  if (s.row_starts.empty()) {
    s.row_starts.assign(options_.tuples_per_chunk, kNoRowStart);
    memory_bytes_ += s.spine_bytes();
    // The spine is never evicted (it is the "minimal end-of-line map"), but
    // its growth must push attribute chunks out to honour the threshold.
    EnforceBudget();
  }
  uint64_t idx = tuple % options_.tuples_per_chunk;
  s.row_starts[idx] = offset;
  // Advance the contiguous-known watermark.
  while (true) {
    uint64_t t = contiguous_rows_known_;
    auto it = stripes_.find(stripe_of(t));
    if (it == stripes_.end() || it->second.row_starts.empty()) break;
    if (it->second.row_starts[t % options_.tuples_per_chunk] == kNoRowStart) {
      break;
    }
    ++contiguous_rows_known_;
  }
}

void PositionalMap::SetRowStart(uint64_t tuple, uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  SetRowStartLocked(tuple, offset);
}

std::optional<uint64_t> PositionalMap::RowStart(uint64_t tuple) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stripes_.find(tuple / options_.tuples_per_chunk);
  if (it == stripes_.end() || it->second.row_starts.empty()) {
    return std::nullopt;
  }
  uint64_t v = it->second.row_starts[tuple % options_.tuples_per_chunk];
  if (v == kNoRowStart) return std::nullopt;
  return v;
}

uint64_t PositionalMap::contiguous_rows_known() const {
  std::lock_guard<std::mutex> lock(mu_);
  return contiguous_rows_known_;
}

void PositionalMap::SetTotalTuples(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  total_tuples_ = n;
}

uint64_t PositionalMap::total_tuples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_tuples_;
}

// ---------------------------------------------------------------------
// Epochs
// ---------------------------------------------------------------------

uint64_t PositionalMap::BeginEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t token = ++next_epoch_;
  active_epochs_.push_back(token);
  return token;
}

void PositionalMap::EndEpoch(uint64_t token) {
  if (token == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find(active_epochs_.begin(), active_epochs_.end(), token);
  if (it != active_epochs_.end()) active_epochs_.erase(it);
}

size_t PositionalMap::active_epoch_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_epochs_.size();
}

bool PositionalMap::EpochActive(uint64_t token) const {
  return token != 0 && std::find(active_epochs_.begin(), active_epochs_.end(),
                                 token) != active_epochs_.end();
}

// ---------------------------------------------------------------------
// Groups
// ---------------------------------------------------------------------

int PositionalMap::InternGroup(const std::vector<int>& attrs) {
  // Key on the *sorted* attr set so the same combination requested in a
  // different order reuses the group.
  std::vector<int> sorted = attrs;
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (int a : sorted) {
    AppendInt64(&key, a);
    key.push_back(',');
  }
  auto [it, inserted] = group_index_.try_emplace(
      key, static_cast<int>(groups_.size()));
  if (inserted) {
    groups_.push_back(Group{attrs});
    int gid = it->second;
    for (size_t col = 0; col < attrs.size(); ++col) {
      attr_membership_[attrs[col]].emplace_back(gid, static_cast<int>(col));
    }
  }
  return it->second;
}

int PositionalMap::ColumnInGroup(int gid, int attr) const {
  const std::vector<int>& attrs = groups_[gid].attrs;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i] == attr) return static_cast<int>(i);
  }
  return -1;
}

// ---------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------

PositionalMap::Chunk* PositionalMap::GetOrCreateChunk(
    uint64_t stripe, const std::vector<int>& attrs, int* gid_out) {
  int gid = InternGroup(attrs);
  *gid_out = gid;
  Stripe& s = GetStripe(stripe);
  auto it = s.chunks.find(gid);
  Chunk* chunk;
  if (it != s.chunks.end() && !it->second->spilled) {
    chunk = it->second.get();
  } else {
    auto owned = std::make_unique<Chunk>();
    chunk = owned.get();
    chunk->group_id = gid;
    chunk->data.assign(
        static_cast<size_t>(options_.tuples_per_chunk) * attrs.size(),
        kUnknown);
    memory_bytes_ += chunk->bytes();
    lru_.emplace_front(stripe, gid);
    chunk->lru_pos = lru_.begin();
    if (it != s.chunks.end()) {
      // Replacing a spilled chunk: forget the spill copy.
      RemoveFileIfExists(SpillPath(stripe, gid));
      it->second = std::move(owned);
    } else {
      s.chunks.emplace(gid, std::move(owned));
    }
  }
  TouchLru(stripe, chunk);
  return chunk;
}

int PositionalMap::BeginStripeInsert(uint64_t stripe,
                                     const std::vector<int>& attrs) {
  if (attrs.empty()) return -1;
  std::lock_guard<std::mutex> lock(mu_);
  int gid = -1;
  GetOrCreateChunk(stripe, attrs, &gid);
  ++open_insert_chunks_;
  // Encode (stripe, gid) into the opaque id via a side table-free scheme:
  // the caller passes tuple/attr back, so we only need to find the chunk
  // again cheaply. We return gid and rely on tuple->stripe.
  return gid;
}

void PositionalMap::InsertPosition(int chunk_id, uint64_t tuple, int attr,
                                   uint32_t rel_offset) {
  assert(chunk_id >= 0);
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t stripe = stripe_of(tuple);
  Stripe& s = GetStripe(stripe);
  auto it = s.chunks.find(chunk_id);
  assert(it != s.chunks.end());
  Chunk* chunk = it->second.get();
  int col = ColumnInGroup(chunk_id, attr);
  assert(col >= 0);
  size_t group_size = groups_[chunk_id].attrs.size();
  size_t idx =
      (tuple % options_.tuples_per_chunk) * group_size + static_cast<size_t>(col);
  if (chunk->data[idx] == kUnknown && rel_offset != kUnknown) {
    ++num_positions_;
  }
  chunk->data[idx] = rel_offset;
}

void PositionalMap::EndStripeInsert() {
  std::lock_guard<std::mutex> lock(mu_);
  // Balanced against BeginStripeInsert: eviction stays deferred until the
  // *last* open stripe insertion ends (the seed zeroed the counter here,
  // which assumed a single mutator).
  if (open_insert_chunks_ > 0) --open_insert_chunks_;
  EnforceBudget();
}

void PositionalMap::InstallFragment(const PmapFragment& frag,
                                    uint64_t first_tuple,
                                    uint64_t epoch_token,
                                    bool filter_indexed) {
  if (frag.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.fragments_installed;
  const int n = frag.num_records();
  const int per_stripe = options_.tuples_per_chunk;

  // Spine first: row starts are what warm scans seek by, and the cache-only
  // variant installs nothing else.
  for (int i = 0; i < n; ++i) {
    SetRowStartLocked(first_tuple + i, frag.row_start(i));
  }

  // Attribute positions, stripe by overlapped stripe.
  std::vector<int> fresh;        // attrs this stripe does not index yet
  std::vector<int> fresh_idx;    // their index in frag.attrs()
  std::vector<int> slice;
  for (int r0 = 0; r0 < n;) {
    const uint64_t tuple0 = first_tuple + r0;
    const uint64_t stripe = tuple0 / per_stripe;
    const int in_stripe0 = static_cast<int>(tuple0 % per_stripe);
    const int r1 = std::min<int>(n, r0 + (per_stripe - in_stripe0));

    if (!frag.attrs().empty()) {
      // Skip attributes the stripe already indexes — a concurrent scan (or
      // an earlier query) may have installed them since this fragment was
      // staged; re-inserting would duplicate positions across chunks.
      fresh.clear();
      fresh_idx.clear();
      for (size_t i = 0; i < frag.attrs().size(); ++i) {
        int a = frag.attrs()[i];
        bool has = false;
        auto sit = stripes_.find(stripe);
        if (filter_indexed && sit != stripes_.end()) {
          for (auto [gid, col] : attr_membership_[a]) {
            (void)col;
            if (sit->second.chunks.count(gid) > 0) {
              has = true;
              break;
            }
          }
        }
        if (!has) {
          fresh.push_back(a);
          fresh_idx.push_back(static_cast<int>(i));
        }
      }

      // Cache-sized sub-chunks, admitted one by one under the budget.
      for (size_t begin = 0; begin < fresh.size();
           begin += kMaxGroupAttrs) {
        size_t end = std::min(fresh.size(), begin + kMaxGroupAttrs);
        slice.assign(fresh.begin() + begin, fresh.begin() + end);
        uint64_t chunk_bytes = static_cast<uint64_t>(per_stripe) *
                               slice.size() * sizeof(uint32_t);
        if (!CanAdmit(chunk_bytes)) continue;  // budget full of fresh chunks
        int gid = -1;
        Chunk* chunk = GetOrCreateChunk(stripe, slice, &gid);
        chunk->epoch = epoch_token;
        const size_t group_size = groups_[gid].attrs.size();
        for (size_t i = begin; i < end; ++i) {
          const int col = ColumnInGroup(gid, fresh[i]);
          const int src = fresh_idx[i];
          for (int r = r0; r < r1; ++r) {
            uint32_t pos = frag.position(r, src);
            if (pos == kUnknown) continue;
            uint32_t& cell =
                chunk->data[static_cast<size_t>(in_stripe0 + (r - r0)) *
                                group_size +
                            col];
            if (cell == kUnknown) ++num_positions_;
            cell = pos;
          }
        }
      }
    }
    r0 = r1;
  }
  EnforceBudget();
}

bool PositionalMap::CanAdmit(uint64_t bytes) {
  uint64_t projected = memory_bytes_ + bytes;
  // Walk would-be victims from the LRU tail; admission fails if making room
  // requires evicting a chunk installed by a still-running scan.
  auto it = lru_.rbegin();
  while (projected > options_.budget_bytes && it != lru_.rend()) {
    auto [victim_stripe, victim_gid] = *it;
    const Chunk* victim =
        stripes_[victim_stripe].chunks.find(victim_gid)->second.get();
    if (EpochActive(victim->epoch)) return false;
    projected -= victim->bytes();
    ++it;
  }
  return projected <= options_.budget_bytes;
}

// ---------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------

PositionalMap::Chunk* PositionalMap::FetchChunk(uint64_t stripe, int gid) {
  auto sit = stripes_.find(stripe);
  if (sit == stripes_.end()) return nullptr;
  auto cit = sit->second.chunks.find(gid);
  if (cit == sit->second.chunks.end()) return nullptr;
  Chunk* chunk = cit->second.get();
  if (chunk->spilled) {
    if (!ReloadChunk(stripe, chunk).ok()) return nullptr;
    // A pathologically small budget can re-evict the chunk immediately
    // (it is the LRU tail if it is the only resident chunk).
    if (chunk->spilled) return nullptr;
  }
  TouchLru(stripe, chunk);
  return chunk;
}

std::optional<uint32_t> PositionalMap::Lookup(uint64_t tuple, int attr) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.lookups;
  uint64_t stripe = stripe_of(tuple);
  for (auto [gid, col] : attr_membership_[attr]) {
    Chunk* chunk = FetchChunk(stripe, gid);
    if (chunk == nullptr) continue;
    size_t group_size = groups_[gid].attrs.size();
    uint32_t v = chunk->data[(tuple % options_.tuples_per_chunk) * group_size +
                             static_cast<size_t>(col)];
    if (v != kUnknown) {
      ++counters_.exact_hits;
      return v;
    }
  }
  return std::nullopt;
}

std::optional<PositionalMap::Anchor> PositionalMap::AnchorAtOrBelow(
    uint64_t tuple, int attr) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int a = attr; a >= 0; --a) {
    // Bypass Lookup's counters for the probe loop; count one anchor hit.
    uint64_t stripe = stripe_of(tuple);
    for (auto [gid, col] : attr_membership_[a]) {
      Chunk* chunk = FetchChunk(stripe, gid);
      if (chunk == nullptr) continue;
      size_t group_size = groups_[gid].attrs.size();
      uint32_t v =
          chunk->data[(tuple % options_.tuples_per_chunk) * group_size +
                      static_cast<size_t>(col)];
      if (v != kUnknown) {
        ++counters_.anchor_hits;
        return Anchor{a, v};
      }
    }
  }
  return std::nullopt;
}

std::optional<PositionalMap::Anchor> PositionalMap::AnchorAbove(uint64_t tuple,
                                                                int attr) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int a = attr + 1; a < num_attrs_; ++a) {
    uint64_t stripe = stripe_of(tuple);
    for (auto [gid, col] : attr_membership_[a]) {
      Chunk* chunk = FetchChunk(stripe, gid);
      if (chunk == nullptr) continue;
      size_t group_size = groups_[gid].attrs.size();
      uint32_t v =
          chunk->data[(tuple % options_.tuples_per_chunk) * group_size +
                      static_cast<size_t>(col)];
      if (v != kUnknown) {
        ++counters_.anchor_hits;
        return Anchor{a, v};
      }
    }
  }
  return std::nullopt;
}

bool PositionalMap::StripeHasAttr(uint64_t stripe, int attr) {
  std::lock_guard<std::mutex> lock(mu_);
  auto sit = stripes_.find(stripe);
  if (sit == stripes_.end()) return false;
  for (auto [gid, col] : attr_membership_[attr]) {
    (void)col;
    auto cit = sit->second.chunks.find(gid);
    if (cit != sit->second.chunks.end()) return true;  // resident or spilled
  }
  return false;
}

int PositionalMap::FillStripePositions(uint64_t stripe, int attr,
                                        uint32_t* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = kUnknown;
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.lookups;
  int filled = 0;
  for (auto [gid, col] : attr_membership_[attr]) {
    Chunk* chunk = FetchChunk(stripe, gid);
    if (chunk == nullptr) continue;
    size_t group_size = groups_[gid].attrs.size();
    for (int i = 0; i < n; ++i) {
      if (out[i] != kUnknown) continue;
      uint32_t v = chunk->data[static_cast<size_t>(i) * group_size +
                               static_cast<size_t>(col)];
      if (v != kUnknown) {
        out[i] = v;
        ++filled;
      }
    }
  }
  if (filled > 0) ++counters_.exact_hits;
  return filled;
}

std::vector<int> PositionalMap::IndexedAttrsForStripe(uint64_t stripe) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> attrs;
  auto sit = stripes_.find(stripe);
  if (sit == stripes_.end()) return attrs;
  for (const auto& [gid, chunk] : sit->second.chunks) {
    for (int a : groups_[gid].attrs) attrs.push_back(a);
  }
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return attrs;
}

bool PositionalMap::StripeAttrsShareChunk(uint64_t stripe,
                                          const std::vector<int>& attrs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto sit = stripes_.find(stripe);
  if (sit == stripes_.end()) return false;
  for (const auto& [gid, chunk] : sit->second.chunks) {
    const std::vector<int>& group_attrs = groups_[gid].attrs;
    bool covers = true;
    for (int a : attrs) {
      if (std::find(group_attrs.begin(), group_attrs.end(), a) ==
          group_attrs.end()) {
        covers = false;
        break;
      }
    }
    if (covers) return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Budget, eviction, spilling
// ---------------------------------------------------------------------

void PositionalMap::TouchLru(uint64_t stripe, Chunk* chunk) {
  (void)stripe;
  if (chunk->lru_pos != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, chunk->lru_pos);
    chunk->lru_pos = lru_.begin();
  }
}

void PositionalMap::EnforceBudget() {
  if (open_insert_chunks_ > 0) return;  // deferred until EndStripeInsert
  while (memory_bytes_ > options_.budget_bytes && !lru_.empty()) {
    EvictOne();
  }
}

void PositionalMap::EvictOne() {
  auto [stripe, gid] = lru_.back();
  lru_.pop_back();
  Stripe& s = stripes_[stripe];
  auto cit = s.chunks.find(gid);
  assert(cit != s.chunks.end());
  Chunk* chunk = cit->second.get();
  uint64_t known = 0;
  for (uint32_t v : chunk->data) {
    if (v != kUnknown) ++known;
  }
  memory_bytes_ -= chunk->bytes();
  num_positions_ -= known;
  ++counters_.chunks_evicted;
  if (!options_.spill_dir.empty() && SpillChunk(stripe, chunk).ok()) {
    ++counters_.chunks_spilled;
    chunk->spilled = true;
    chunk->data.clear();
    chunk->data.shrink_to_fit();
  } else {
    s.chunks.erase(cit);
  }
}

std::string PositionalMap::SpillPath(uint64_t stripe, int gid) const {
  std::string path = options_.spill_dir;
  path += "/s";
  AppendInt64(&path, static_cast<int64_t>(stripe));
  path += "_g";
  AppendInt64(&path, gid);
  path += ".pmchunk";
  return path;
}

Status PositionalMap::SpillChunk(uint64_t stripe, Chunk* chunk) {
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                        WritableFile::Create(SpillPath(stripe,
                                                       chunk->group_id)));
  std::string_view bytes(reinterpret_cast<const char*>(chunk->data.data()),
                         chunk->data.size() * sizeof(uint32_t));
  NODB_RETURN_IF_ERROR(f->Append(bytes));
  return f->Close();
}

Status PositionalMap::ReloadChunk(uint64_t stripe, Chunk* chunk) {
  NODB_ASSIGN_OR_RETURN(
      std::string bytes,
      ReadFileToString(SpillPath(stripe, chunk->group_id)));
  size_t group_size = groups_[chunk->group_id].attrs.size();
  size_t expect =
      static_cast<size_t>(options_.tuples_per_chunk) * group_size *
      sizeof(uint32_t);
  if (bytes.size() != expect) {
    return Status::Corruption("spilled chunk has wrong size");
  }
  chunk->data.resize(expect / sizeof(uint32_t));
  memcpy(chunk->data.data(), bytes.data(), expect);
  chunk->spilled = false;
  memory_bytes_ += chunk->bytes();
  uint64_t known = 0;
  for (uint32_t v : chunk->data) {
    if (v != kUnknown) ++known;
  }
  num_positions_ += known;
  ++counters_.chunks_reloaded;
  lru_.emplace_front(stripe, chunk->group_id);
  chunk->lru_pos = lru_.begin();
  EnforceBudget();
  return Status::OK();
}

uint64_t PositionalMap::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_bytes_;
}

uint64_t PositionalMap::num_positions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_positions_;
}

PositionalMap::Counters PositionalMap::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

PositionalMap::ExportedState PositionalMap::ExportState() const {
  std::lock_guard<std::mutex> lock(mu_);
  ExportedState out;
  out.total_tuples = total_tuples_;
  out.stripes.reserve(stripes_.size());
  const size_t per_stripe = static_cast<size_t>(options_.tuples_per_chunk);
  for (const auto& [stripe_idx, stripe] : stripes_) {
    ExportedStripe exp;
    exp.stripe = stripe_idx;
    if (stripe.row_starts.empty()) {
      exp.row_starts.assign(per_stripe, kNoRowStart);
    } else {
      exp.row_starts = stripe.row_starts;
    }

    // Union of attributes with resident (non-spilled) chunks, ascending.
    for (const auto& [gid, chunk] : stripe.chunks) {
      if (chunk->spilled) continue;
      for (int a : groups_[gid].attrs) exp.attrs.push_back(a);
    }
    std::sort(exp.attrs.begin(), exp.attrs.end());
    exp.attrs.erase(std::unique(exp.attrs.begin(), exp.attrs.end()),
                    exp.attrs.end());

    if (!exp.attrs.empty()) {
      exp.positions.assign(per_stripe * exp.attrs.size(), kUnknown);
      for (size_t ai = 0; ai < exp.attrs.size(); ++ai) {
        const int attr = exp.attrs[ai];
        for (auto [gid, col] : attr_membership_[attr]) {
          auto cit = stripe.chunks.find(gid);
          if (cit == stripe.chunks.end() || cit->second->spilled) continue;
          const Chunk& chunk = *cit->second;
          const size_t group_size = groups_[gid].attrs.size();
          for (size_t r = 0; r < per_stripe; ++r) {
            uint32_t& cell = exp.positions[r * exp.attrs.size() + ai];
            if (cell != kUnknown) continue;  // first chunk wins, as in Lookup
            uint32_t v = chunk.data[r * group_size + static_cast<size_t>(col)];
            if (v != kUnknown) cell = v;
          }
        }
      }
    }
    out.stripes.push_back(std::move(exp));
  }
  std::sort(out.stripes.begin(), out.stripes.end(),
            [](const ExportedStripe& a, const ExportedStripe& b) {
              return a.stripe < b.stripe;
            });
  return out;
}

void PositionalMap::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stripes_.clear();
  lru_.clear();
  groups_.clear();
  group_index_.clear();
  attr_membership_.assign(num_attrs_, {});
  memory_bytes_ = 0;
  num_positions_ = 0;
  contiguous_rows_known_ = 0;
  total_tuples_ = 0;
  open_insert_chunks_ = 0;
}

}  // namespace nodb
