#include "workload/tpch_queries.h"

namespace nodb {

std::string TpchQuery(int number) {
  switch (number) {
    case 1:
      return R"(
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus)";
    case 3:
      return R"(
SELECT l_orderkey,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10)";
    case 4:
      return R"(
SELECT o_orderpriority, COUNT(*) AS order_count
FROM orders
WHERE o_orderdate >= DATE '1993-07-01'
  AND o_orderdate < DATE '1993-07-01' + INTERVAL '3' MONTH
  AND EXISTS (
    SELECT * FROM lineitem
    WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
GROUP BY o_orderpriority
ORDER BY o_orderpriority)";
    case 6:
      return R"(
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24)";
    case 10:
      return R"(
SELECT c_custkey, c_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone, c_comment
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1993-10-01' + INTERVAL '3' MONTH
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
ORDER BY revenue DESC
LIMIT 20)";
    case 12:
      return R"(
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority = '1-URGENT'
                  OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o_orderpriority <> '1-URGENT'
                 AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY l_shipmode
ORDER BY l_shipmode)";
    case 14:
      return R"(
SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%'
                         THEN l_extendedprice * (1 - l_discount)
                         ELSE 0 END)
       / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= DATE '1995-09-01'
  AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH)";
    case 19:
      return R"(
SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND ((p_brand = 'Brand#12'
        AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        AND l_quantity >= 1 AND l_quantity <= 11
        AND p_size BETWEEN 1 AND 5
        AND l_shipmode IN ('AIR', 'REG AIR')
        AND l_shipinstruct = 'DELIVER IN PERSON')
    OR (p_brand = 'Brand#23'
        AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
        AND l_quantity >= 10 AND l_quantity <= 20
        AND p_size BETWEEN 1 AND 10
        AND l_shipmode IN ('AIR', 'REG AIR')
        AND l_shipinstruct = 'DELIVER IN PERSON')
    OR (p_brand = 'Brand#34'
        AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        AND l_quantity >= 20 AND l_quantity <= 30
        AND p_size BETWEEN 1 AND 15
        AND l_shipmode IN ('AIR', 'REG AIR')
        AND l_shipinstruct = 'DELIVER IN PERSON')))";
    default:
      return "";
  }
}

const std::vector<int>& TpchQueryNumbers() {
  static const std::vector<int>* numbers =
      new std::vector<int>{1, 3, 4, 6, 10, 12, 14, 19};
  return *numbers;
}

std::vector<std::string> TpchQueryTables(int number) {
  switch (number) {
    case 1:
    case 6:
      return {"lineitem"};
    case 3:
      return {"customer", "orders", "lineitem"};
    case 4:
      return {"orders", "lineitem"};
    case 10:
      return {"customer", "orders", "lineitem", "nation"};
    case 12:
      return {"orders", "lineitem"};
    case 14:
    case 19:
      return {"lineitem", "part"};
    default:
      return {};
  }
}

}  // namespace nodb
