#include "engine/database.h"

#include <algorithm>
#include <chrono>

#include "exec/raw_scan.h"
#include "io/inflate_file.h"
#include "raw/parse_kernels.h"
#include "snapshot/snapshot.h"
#include "sql/parser.h"
#include "util/fs_util.h"
#include "util/stopwatch.h"

namespace nodb {

namespace {

/// Directory part of `path` ("" for bare filenames).
std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

}  // namespace

Database::Database(EngineConfig config) : config_(std::move(config)) {}

Database::~Database() {
  StopPromoter();
  StopSnapshotWriter();
}

InSituOptions Database::MakeInSituOptions() const {
  InSituOptions opts;
  opts.use_positional_map = config_.positional_map;
  opts.use_cache = config_.cache;
  opts.collect_stats = config_.statistics;
  opts.selective_tokenizing = config_.selective_tokenizing;
  opts.selective_parsing = config_.selective_parsing;
  opts.selective_tuple_formation = config_.selective_tuple_formation;
  opts.index_combinations = config_.index_combinations;
  opts.index_intermediates = config_.index_intermediates;
  return opts;
}

Status Database::RegisterCommon(const std::string& name,
                                std::unique_ptr<TableRuntime> runtime) {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_.emplace(name, std::move(runtime));
  return Status::OK();
}

Status Database::Open(const std::string& name, const std::string& path,
                      OpenOptions options) {
  if (config_.scalar_kernels) options.scalar_kernels = true;
  AdapterRegistry& registry = AdapterRegistry::Global();
  const AdapterFactory* factory = nullptr;
  std::unique_ptr<RandomAccessFile> file;  // adopted by the adapter
  // Compressed source? Check the magic before anything else — even with a
  // forced format — because the format's adapter must see the decompressed
  // byte stream, and the sniffers below must score decompressed head bytes.
  std::string sniff_path = path;
  {
    NODB_ASSIGN_OR_RETURN(auto probe, RandomAccessFile::Open(path));
    char magic[2];
    NODB_ASSIGN_OR_RETURN(
        uint64_t n,
        probe->Read(0, std::min<uint64_t>(sizeof(magic), probe->size()),
                    magic));
    if (InflateFile::IsGzip({magic, n})) {
      InflateOptions gz_opts;
      gz_opts.checkpoint_interval_bytes = config_.gz_checkpoint_bytes;
      NODB_ASSIGN_OR_RETURN(file,
                            InflateFile::Open(std::move(probe), gz_opts));
      // Sniffers score the *inner* name ("t.csv.gz" detects as csv), while
      // the adapter keeps the real on-disk path — snapshot fingerprints
      // must cover the compressed file.
      if (sniff_path.size() > 3 &&
          sniff_path.compare(sniff_path.size() - 3, 3, ".gz") == 0) {
        sniff_path.resize(sniff_path.size() - 3);
      }
    } else if (options.format.empty()) {
      file = std::move(probe);  // reuse the handle for sniffing + adoption
    }
  }
  if (!options.format.empty()) {
    factory = registry.Find(options.format);
    if (factory == nullptr) {
      return Status::InvalidArgument("unknown raw format '" + options.format +
                                     "'");
    }
  } else {
    // Sniff the file's first bytes and let the registered factories score it.
    char head[512];
    NODB_ASSIGN_OR_RETURN(
        uint64_t head_len,
        file->Read(0, std::min<uint64_t>(sizeof(head), file->size()), head));
    NODB_ASSIGN_OR_RETURN(factory,
                          registry.Detect(sniff_path, {head, head_len}));
  }
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<RawSourceAdapter> adapter,
                        factory->Create(path, options, std::move(file)));

  auto rt = std::make_unique<TableRuntime>();
  rt->name = name;
  rt->schema = adapter->schema();
  rt->storage = TableStorage::kRaw;
  const RawTraits& traits = adapter->traits();

  // Adaptive structures are format-independent; traits decide what earns
  // its keep. The spine (row-start map) is required by the cache's stripe
  // addressing, so a PositionalMap object exists whenever either structure
  // is enabled — but only for formats whose field positions vary (for
  // fixed-stride sources every position is arithmetic and there is nothing
  // to remember). The scan only uses *attribute positions* when
  // positional_map is set.
  if (traits.variable_positions && (config_.positional_map || config_.cache)) {
    PositionalMap::Options pm_opts;
    pm_opts.tuples_per_chunk = config_.tuples_per_chunk;
    pm_opts.budget_bytes = config_.pm_budget_bytes;
    pm_opts.spill_dir = config_.pm_spill_dir;
    rt->pmap = std::make_unique<PositionalMap>(rt->schema.num_columns(),
                                               pm_opts);
  }
  if (config_.cache) {
    ColumnCache::Options cache_opts;
    cache_opts.budget_bytes = config_.cache_budget_bytes;
    cache_opts.tuples_per_chunk = config_.tuples_per_chunk;
    std::vector<TypeId> types;
    for (const Column& c : rt->schema.columns()) types.push_back(c.type);
    rt->cache = std::make_unique<ColumnCache>(std::move(types), cache_opts);
  }
  if (config_.statistics) {
    rt->stats = std::make_unique<TableStats>(rt->schema);
  }
  // Per-column access accounting is always on for raw tables (relaxed
  // atomic counters; negligible next to tokenizing). The promoted store —
  // the tier the accounting feeds — exists only when the subsystem is
  // enabled. Its chunk size must match the scan's stripe size so promoted
  // chunks address the same stripes cache chunks would.
  rt->access =
      std::make_unique<ColumnAccessTracker>(rt->schema.num_columns());
  if (config_.promotion.enabled) {
    const int tpc = (rt->pmap != nullptr || rt->cache != nullptr)
                        ? config_.tuples_per_chunk
                        : RawScanOp::kDefaultStripe;
    rt->promoted =
        std::make_unique<PromotedColumns>(rt->schema.num_columns(), tpc);
  }
  rt->adapter = std::move(adapter);
  rt->scan_threads_override = options.scan_threads;

  // Warm restart: attempt the snapshot load *before* the table is visible
  // to queries, so either the first query sees the fully restored state or
  // (missing/stale/corrupt snapshot) the untouched cold state — never a
  // half-installed mix.
  rt->snapshot_dir = options.snapshot_dir.empty() ? config_.snapshot_dir
                                                  : options.snapshot_dir;
  const bool snapshot_capable = !rt->snapshot_dir.empty();
  if (snapshot_capable) {
    SnapshotLoadInfo info = LoadTableSnapshot(rt.get());
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    switch (info.outcome) {
      case SnapshotLoadOutcome::kLoaded:
        ++snapshot_counters_.loads;
        snapshot_counters_.bytes_loaded += info.bytes;
        break;
      case SnapshotLoadOutcome::kMissing:
        ++snapshot_counters_.load_misses;
        break;
      case SnapshotLoadOutcome::kStale:
        ++snapshot_counters_.load_stale;
        break;
      case SnapshotLoadOutcome::kCorrupt:
        ++snapshot_counters_.load_corrupt;
        break;
    }
  }
  NODB_RETURN_IF_ERROR(RegisterCommon(name, std::move(rt)));
  if (snapshot_capable) StartSnapshotWriter();
  if (config_.promotion.enabled) StartPromoter();
  return Status::OK();
}

Status Database::RegisterCsv(const std::string& name, const std::string& path,
                             Schema schema, CsvDialect dialect) {
  OpenOptions options;
  options.format = "csv";
  options.schema = std::move(schema);
  options.dialect = dialect;
  return Open(name, path, std::move(options));
}

Status Database::RegisterFits(const std::string& name,
                              const std::string& path) {
  OpenOptions options;
  options.format = "fits";
  return Open(name, path, std::move(options));
}

Result<LoadResult> Database::LoadCsv(const std::string& name,
                                     const std::string& path, Schema schema,
                                     CsvDialect dialect) {
  auto rt = std::make_unique<TableRuntime>();
  rt->name = name;
  rt->schema = std::move(schema);
  rt->storage = config_.loaded_storage;
  std::string dir = config_.data_dir.empty() ? DirName(path)
                                             : config_.data_dir;

  LoadResult load;
  if (config_.loaded_storage == TableStorage::kCompact) {
    std::string target = dir + "/" + name + ".cbt";
    NODB_ASSIGN_OR_RETURN(rt->compact,
                          CompactTable::Create(target, rt->schema));
    NODB_ASSIGN_OR_RETURN(
        load, LoadCsvToCompact(path, dialect, rt->compact.get(),
                               &SelectKernels(config_.scalar_kernels)));
    rt->known_row_count = static_cast<double>(rt->compact->row_count());
  } else {
    std::string target = dir + "/" + name + ".heap";
    TableHeap::Options heap_opts;
    heap_opts.tuple_header_bytes = config_.tuple_header_bytes;
    heap_opts.extra_copy_on_scan = config_.mysql_copy_penalty;
    heap_opts.buffer_pool_pages = config_.buffer_pool_pages;
    NODB_ASSIGN_OR_RETURN(rt->heap,
                          TableHeap::Create(target, rt->schema, heap_opts));
    NODB_ASSIGN_OR_RETURN(
        load, LoadCsvToHeap(path, dialect, rt->heap.get(),
                            &SelectKernels(config_.scalar_kernels)));
    rt->known_row_count = static_cast<double>(rt->heap->row_count());
  }

  // ANALYZE-equivalent: loaded engines come out of the load with statistics
  // in place (the paper's baselines have them; the raw engines must earn
  // them adaptively).
  if (config_.statistics) {
    Stopwatch analyze;
    rt->stats = std::make_unique<TableStats>(rt->schema);
    std::vector<bool> needed(rt->schema.num_columns(), true);
    Row row;
    if (rt->heap != nullptr) {
      TableHeap::Scanner scanner(rt->heap.get(), needed);
      while (true) {
        NODB_ASSIGN_OR_RETURN(bool has, scanner.Next(&row));
        if (!has) break;
        for (int c = 0; c < rt->schema.num_columns(); ++c) {
          rt->stats->AddValue(c, row[c]);
        }
      }
    } else {
      CompactTable::Scanner scanner(rt->compact.get(), needed);
      while (true) {
        NODB_ASSIGN_OR_RETURN(bool has, scanner.Next(&row));
        if (!has) break;
        for (int c = 0; c < rt->schema.num_columns(); ++c) {
          rt->stats->AddValue(c, row[c]);
        }
      }
    }
    rt->stats->SetRowCount(static_cast<uint64_t>(rt->known_row_count));
    rt->stats->FinalizeAll();
    rt->stats_populated = true;
    load.seconds += analyze.ElapsedSeconds();
  }

  NODB_RETURN_IF_ERROR(RegisterCommon(name, std::move(rt)));
  return load;
}

Status Database::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return Status::OK();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<TableInfo> Database::ListTables() const {
  std::vector<TableInfo> infos;
  infos.reserve(tables_.size());
  for (const auto& [name, rt] : tables_) {
    TableInfo info;
    info.name = name;
    info.storage = rt->storage;
    if (rt->adapter != nullptr) {
      info.format = std::string(rt->adapter->format_name());
    } else {
      info.format = rt->storage == TableStorage::kCompact ? "compact" : "heap";
    }
    info.row_count = rt->known_row_count;
    if (info.row_count < 0 && rt->adapter != nullptr) {
      // Fixed-stride formats state the count in their header; report it
      // without waiting for a full scan.
      int64_t hint = rt->adapter->row_count_hint();
      if (hint >= 0) info.row_count = static_cast<double>(hint);
    }
    if (rt->pmap != nullptr) info.pmap_bytes = rt->pmap->memory_bytes();
    if (rt->cache != nullptr) info.cache_bytes = rt->cache->memory_bytes();
    info.snapshot_state =
        rt->snapshot_state.load(std::memory_order_acquire);
    info.snapshot_bytes = rt->snapshot_bytes.load(std::memory_order_acquire);
    if (rt->adapter != nullptr && rt->adapter->file() != nullptr) {
      info.bytes_read = rt->adapter->file()->bytes_read();
      if (const InflateFile* gz = rt->adapter->file()->AsInflateFile()) {
        info.compressed = true;
        info.gz_checkpoints = gz->checkpoint_count();
        info.gz_bytes_inflated = gz->bytes_inflated();
        info.gz_compressed_bytes_read = gz->compressed_bytes_read();
      }
    }
    if (rt->promoted != nullptr) {
      info.promoted_columns = rt->promoted->promoted_attrs();
      info.promoted_bytes = rt->promoted->memory_bytes();
      PromotedColumns::Counters pc = rt->promoted->counters();
      info.promotions = pc.promotions;
      info.demotions = pc.demotions;
    }
    infos.push_back(std::move(info));
  }
  std::sort(infos.begin(), infos.end(),
            [](const TableInfo& a, const TableInfo& b) {
              return a.name < b.name;
            });
  return infos;
}

Result<QueryCursor> Database::Query(const std::string& sql,
                                    const QueryOptions& options) {
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelect(sql));
  Binder binder(this);
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> query,
                        binder.Bind(*stmt));
  const StatsProvider* stats = config_.statistics ? this : nullptr;
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<PhysicalPlan> plan,
                        PlanQuery(query.get(), stats));
  // Canonicalize the per-query control handle once: the same instance is
  // threaded into every operator and into the cursor, so a cancel or an
  // expired deadline is seen at whichever batch boundary comes first.
  ExecControlPtr control = options.control;
  if (control == nullptr &&
      options.deadline != std::chrono::steady_clock::time_point{}) {
    control = std::make_shared<ExecControl>();
  }
  if (control != nullptr) control->TightenDeadline(options.deadline);
  const size_t batch_size =
      options.batch_size > 0 ? options.batch_size : config_.batch_size;
  ExecOptions exec_opts;
  exec_opts.insitu = MakeInSituOptions();
  exec_opts.batch_size = batch_size;
  exec_opts.scan_threads = config_.scan_threads;
  exec_opts.scan_morsel_bytes = config_.scan_morsel_bytes;
  exec_opts.scan_pool = ScanPool();
  exec_opts.deadline = options.deadline;
  exec_opts.control = control;
  NODB_ASSIGN_OR_RETURN(OperatorPtr pipeline,
                        BuildPipeline(*plan, this, exec_opts));
  return QueryCursor(std::move(stmt), std::move(query), std::move(plan),
                     std::move(pipeline), batch_size, std::move(control));
}

Result<QueryResult> Database::Execute(const std::string& sql,
                                      const QueryOptions& options) {
  Stopwatch timer;
  NODB_ASSIGN_OR_RETURN(QueryCursor cursor, Query(sql, options));
  QueryResult result;
  result.schema = cursor.schema();
  result.plan = cursor.plan_text();
  RowBatch batch = cursor.MakeBatch();
  while (true) {
    NODB_ASSIGN_OR_RETURN(size_t n, cursor.Next(&batch));
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) {
      result.rows.push_back(std::move(batch[i]));
    }
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

Result<std::string> Database::Explain(const std::string& sql) {
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelect(sql));
  Binder binder(this);
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> query,
                        binder.Bind(*stmt));
  const StatsProvider* stats = config_.statistics ? this : nullptr;
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<PhysicalPlan> plan,
                        PlanQuery(query.get(), stats));
  return plan->ToString();
}

ThreadPool* Database::ScanPool() {
  int need = config_.scan_threads;
  for (const auto& [name, rt] : tables_) {
    need = std::max(need, rt->scan_threads_override);
  }
  if (need <= 1) return nullptr;
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (scan_pool_ == nullptr) {
    scan_pool_ = std::make_unique<ThreadPool>(need);
  } else {
    scan_pool_->Grow(need);
  }
  return scan_pool_.get();
}

TableRuntime* Database::runtime(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

void Database::DropBufferCaches() {
  for (auto& [name, rt] : tables_) {
    if (rt->heap != nullptr) rt->heap->DropCaches();
  }
}

Result<uint64_t> Database::SnapshotTable(TableRuntime* rt) {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  Result<SnapshotWriteInfo> info = WriteTableSnapshot(rt);
  if (!info.ok()) {
    ++snapshot_counters_.save_failures;
    return info.status();
  }
  ++snapshot_counters_.saves;
  snapshot_counters_.bytes_saved += info->bytes;
  return info->bytes;
}

Result<uint64_t> Database::Snapshot(const std::string& name) {
  TableRuntime* rt = runtime(name);
  if (rt == nullptr) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  if (rt->storage != TableStorage::kRaw) {
    return Status::InvalidArgument(
        "table '" + name + "' is loaded; snapshots apply to raw tables only");
  }
  if (rt->snapshot_dir.empty()) {
    return Status::InvalidArgument("table '" + name +
                                   "' has no snapshot directory configured");
  }
  return SnapshotTable(rt);
}

Status Database::SnapshotAll() {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  Status first_error = Status::OK();
  for (auto& [name, rt] : tables_) {
    if (rt->storage != TableStorage::kRaw || rt->snapshot_dir.empty()) {
      continue;
    }
    // An unchanged signature means the file on disk already reflects this
    // warm state (saved earlier, or restored at Open and untouched since).
    if (WarmStateSignature(*rt) ==
        rt->snapshot_signature.load(std::memory_order_acquire)) {
      continue;
    }
    Result<uint64_t> saved = SnapshotTable(rt.get());
    if (!saved.ok() && first_error.ok()) first_error = saved.status();
  }
  return first_error;
}

SnapshotCounters Database::snapshot_counters() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_counters_;
}

Result<TablePromotionReport> Database::RunPromotionCycle(
    const std::string& name) {
  TableRuntime* rt = runtime(name);
  if (rt == nullptr) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  if (rt->storage != TableStorage::kRaw) {
    return Status::InvalidArgument(
        "table '" + name + "' is loaded; promotion applies to raw tables");
  }
  if (rt->promoted == nullptr) {
    return Status::InvalidArgument(
        "promotion is not enabled (EngineConfig::promotion.enabled)");
  }
  return RunTablePromotionCycle(rt, config_.promotion, &promoter_stop_);
}

std::vector<TablePromotionReport> Database::RunPromotionCycles() {
  std::vector<TablePromotionReport> reports;
  std::lock_guard<std::mutex> lock(catalog_mu_);
  for (auto& [name, rt] : tables_) {
    if (rt->storage != TableStorage::kRaw || rt->promoted == nullptr) {
      continue;
    }
    reports.push_back(
        RunTablePromotionCycle(rt.get(), config_.promotion, &promoter_stop_));
  }
  std::sort(reports.begin(), reports.end(),
            [](const TablePromotionReport& a, const TablePromotionReport& b) {
              return a.table < b.table;
            });
  return reports;
}

void Database::StartPromoter() {
  if (!config_.promotion.enabled || config_.promotion.interval_ms <= 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(promoter_mu_);
  if (promoter_thread_.joinable()) return;
  promoter_stop_.store(false);
  promoter_thread_ = std::thread([this] { PromoterLoop(); });
}

void Database::StopPromoter() {
  {
    std::lock_guard<std::mutex> lock(promoter_mu_);
    if (!promoter_thread_.joinable()) return;
    promoter_stop_.store(true);
  }
  promoter_cv_.notify_all();
  promoter_thread_.join();
}

void Database::PromoterLoop() {
  const auto interval =
      std::chrono::milliseconds(config_.promotion.interval_ms);
  std::unique_lock<std::mutex> lock(promoter_mu_);
  while (!promoter_stop_.load()) {
    promoter_cv_.wait_for(lock, interval,
                          [this] { return promoter_stop_.load(); });
    if (promoter_stop_.load()) break;
    lock.unlock();
    // Best-effort: per-table errors ride in the reports and the next tick
    // retries; promoter_stop_ aborts a long load co-operatively.
    RunPromotionCycles();
    lock.lock();
  }
}

void Database::StartSnapshotWriter() {
  if (config_.snapshot_interval_ms <= 0) return;
  std::lock_guard<std::mutex> lock(snapshot_thread_mu_);
  if (snapshot_thread_.joinable()) return;
  snapshot_stop_ = false;
  snapshot_thread_ = std::thread([this] { SnapshotWriterLoop(); });
}

void Database::StopSnapshotWriter() {
  {
    std::lock_guard<std::mutex> lock(snapshot_thread_mu_);
    if (!snapshot_thread_.joinable()) return;
    snapshot_stop_ = true;
  }
  snapshot_cv_.notify_all();
  snapshot_thread_.join();
}

void Database::SnapshotWriterLoop() {
  const auto interval = std::chrono::milliseconds(config_.snapshot_interval_ms);
  std::unique_lock<std::mutex> lock(snapshot_thread_mu_);
  while (!snapshot_stop_) {
    snapshot_cv_.wait_for(lock, interval,
                          [this] { return snapshot_stop_; });
    if (snapshot_stop_) break;
    lock.unlock();
    // Best-effort: a failed save is counted and retried next tick. The
    // signature gate keeps idle ticks free of disk writes.
    Status ignored = SnapshotAll();
    (void)ignored;
    lock.lock();
  }
}

Result<const Schema*> Database::GetTableSchema(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return &it->second->schema;
}

const TableStats* Database::GetTableStats(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return nullptr;
  const TableRuntime& rt = *it->second;
  if (rt.stats == nullptr || !rt.stats_populated) return nullptr;
  return rt.stats.get();
}

double Database::GetRowCount(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return -1;
  return it->second->known_row_count;
}

bool Database::IsColumnPromoted(const std::string& name, int attr) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return false;
  const TableRuntime& rt = *it->second;
  return rt.promoted != nullptr && attr >= 0 &&
         attr < rt.promoted->num_attrs() && rt.promoted->IsPromoted(attr);
}

Result<TableRuntime*> Database::GetTableRuntime(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return it->second.get();
}

}  // namespace nodb
