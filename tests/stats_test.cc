#include <gtest/gtest.h>

#include "stats/attr_stats.h"
#include "stats/table_stats.h"
#include "util/rng.h"

namespace nodb {
namespace {

TEST(AttrStatsTest, MinMaxExact) {
  AttrStatsBuilder builder(TypeId::kInt64);
  for (int64_t v : {5, -3, 12, 7}) builder.Add(Value::Int64(v));
  AttrStats stats = builder.Build();
  EXPECT_EQ(stats.rows_seen, 4u);
  EXPECT_EQ(stats.nulls, 0u);
  EXPECT_EQ(stats.min->int64(), -3);
  EXPECT_EQ(stats.max->int64(), 12);
}

TEST(AttrStatsTest, NullsCountedSeparately) {
  AttrStatsBuilder builder(TypeId::kInt64);
  builder.Add(Value::Int64(1));
  builder.Add(Value::Null(TypeId::kInt64));
  builder.Add(Value::Null(TypeId::kInt64));
  AttrStats stats = builder.Build();
  EXPECT_EQ(stats.rows_seen, 3u);
  EXPECT_EQ(stats.nulls, 2u);
  EXPECT_EQ(stats.min->int64(), 1);
}

TEST(AttrStatsTest, NdvExactWhenSmall) {
  AttrStatsBuilder builder(TypeId::kInt64);
  for (int i = 0; i < 1000; ++i) builder.Add(Value::Int64(i % 7));
  AttrStats stats = builder.Build();
  EXPECT_DOUBLE_EQ(stats.ndv, 7.0);
}

TEST(AttrStatsTest, NdvScaledWhenCapped) {
  AttrStatsBuilder builder(TypeId::kInt64);
  Rng rng(1);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    builder.Add(Value::Int64(rng.Uniform(0, 10000000)));
  }
  AttrStats stats = builder.Build();
  // Nearly all values distinct; the estimate must be within 2x.
  EXPECT_GT(stats.ndv, kN / 2.0);
}

TEST(AttrStatsTest, StringStatsHaveNoHistogram) {
  AttrStatsBuilder builder(TypeId::kString);
  builder.Add(Value::String("b"));
  builder.Add(Value::String("a"));
  AttrStats stats = builder.Build();
  EXPECT_TRUE(stats.histogram.empty());
  EXPECT_EQ(stats.min->str(), "a");
  EXPECT_EQ(stats.max->str(), "b");
}

TEST(AttrStatsTest, CompareSelectivityUniform) {
  AttrStatsBuilder builder(TypeId::kInt64);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    builder.Add(Value::Int64(rng.Uniform(0, 999)));
  }
  AttrStats stats = builder.Build();
  // a < 250 over uniform [0, 1000) is ~25%.
  double sel = stats.EstimateCompareSelectivity('<', false, Value::Int64(250));
  EXPECT_NEAR(sel, 0.25, 0.05);
  // a > 900 is ~10%.
  sel = stats.EstimateCompareSelectivity('>', false, Value::Int64(900));
  EXPECT_NEAR(sel, 0.10, 0.05);
  // Bounds clamp.
  EXPECT_DOUBLE_EQ(
      stats.EstimateCompareSelectivity('<', false, Value::Int64(-5)), 0.0);
  EXPECT_DOUBLE_EQ(
      stats.EstimateCompareSelectivity('<', false, Value::Int64(5000)), 1.0);
}

TEST(AttrStatsTest, CompareSelectivitySkewed) {
  // Histogram must beat the uniform assumption on skewed data.
  AttrStatsBuilder builder(TypeId::kInt64);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    // 90% of mass in [0,100), 10% in [100, 1000).
    int64_t v = rng.NextBool(0.9) ? rng.Uniform(0, 99) : rng.Uniform(100, 999);
    builder.Add(Value::Int64(v));
  }
  AttrStats stats = builder.Build();
  double sel = stats.EstimateCompareSelectivity('<', false, Value::Int64(130));
  EXPECT_GT(sel, 0.7);  // uniform assumption would say ~0.13
}

TEST(AttrStatsTest, EqualsSelectivityFromNdv) {
  AttrStatsBuilder builder(TypeId::kInt64);
  for (int i = 0; i < 1000; ++i) builder.Add(Value::Int64(i % 4));
  AttrStats stats = builder.Build();
  EXPECT_DOUBLE_EQ(stats.EstimateEqualsSelectivity(), 0.25);
}

TEST(AttrStatsTest, DateHistogramWorks) {
  // Values arrive in random order (sampling digests a prefix plus a stride;
  // ordered input would bias the sample).
  AttrStatsBuilder builder(TypeId::kDate);
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    builder.Add(Value::Date(static_cast<int32_t>(8000 + rng.Uniform(0, 999))));
  }
  AttrStats stats = builder.Build();
  double sel = stats.EstimateCompareSelectivity('<', false, Value::Date(8500));
  EXPECT_NEAR(sel, 0.5, 0.1);
}

TEST(TableStatsTest, PerAttributeLifecycle) {
  Schema schema{{"a", TypeId::kInt64}, {"b", TypeId::kString}};
  TableStats stats(schema);
  EXPECT_FALSE(stats.HasAttr(0));
  EXPECT_EQ(stats.Attr(0), nullptr);
  stats.AddValue(0, Value::Int64(10));
  stats.AddValue(0, Value::Int64(20));
  // Not yet queryable before Finalize.
  EXPECT_FALSE(stats.HasAttr(0));
  stats.Finalize(0);
  ASSERT_TRUE(stats.HasAttr(0));
  EXPECT_EQ(stats.Attr(0)->max->int64(), 20);
  // Attribute b never scanned: stays absent (the adaptive property — only
  // requested attributes get statistics).
  stats.FinalizeAll();
  EXPECT_FALSE(stats.HasAttr(1));
}

TEST(TableStatsTest, IncrementalAugmentation) {
  Schema schema{{"a", TypeId::kInt64}};
  TableStats stats(schema);
  stats.AddValue(0, Value::Int64(5));
  stats.Finalize(0);
  EXPECT_EQ(stats.Attr(0)->max->int64(), 5);
  // A later query feeds more values; the snapshot widens.
  stats.AddValue(0, Value::Int64(50));
  stats.Finalize(0);
  EXPECT_EQ(stats.Attr(0)->max->int64(), 50);
  EXPECT_EQ(stats.Attr(0)->rows_seen, 2u);
}

TEST(TableStatsTest, RowCount) {
  Schema schema{{"a", TypeId::kInt64}};
  TableStats stats(schema);
  EXPECT_FALSE(stats.row_count().has_value());
  stats.SetRowCount(123);
  EXPECT_EQ(*stats.row_count(), 123u);
}

}  // namespace
}  // namespace nodb
