#ifndef NODB_EXEC_QUERY_RESULT_H_
#define NODB_EXEC_QUERY_RESULT_H_

#include <string>
#include <vector>

#include "types/schema.h"
#include "types/value.h"

namespace nodb {

/// Materialized result of one query plus execution telemetry the benchmark
/// harness reports.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;

  /// Wall-clock execution time (planning + execution, excluding parse/bind).
  double seconds = 0;
  /// EXPLAIN-style plan rendering.
  std::string plan;

  /// Renders the result as an aligned text table (up to `max_rows` rows).
  std::string ToString(size_t max_rows = 20) const;

  /// Canonical single-line-per-row rendering used by differential tests
  /// (rows sorted lexicographically when `sorted` is true, making unordered
  /// results comparable).
  std::string Canonical(bool sorted) const;
};

}  // namespace nodb

#endif  // NODB_EXEC_QUERY_RESULT_H_
