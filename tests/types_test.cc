#include <gtest/gtest.h>

#include "types/data_type.h"
#include "types/schema.h"
#include "types/value.h"

namespace nodb {
namespace {

TEST(DataTypeTest, Names) {
  EXPECT_EQ(TypeIdToString(TypeId::kInt64), "int64");
  EXPECT_EQ(TypeIdToString(TypeId::kDouble), "double");
  EXPECT_EQ(TypeIdToString(TypeId::kString), "string");
  EXPECT_EQ(TypeIdToString(TypeId::kDate), "date");
  EXPECT_EQ(TypeIdToString(TypeId::kBool), "bool");
}

TEST(DataTypeTest, FixedWidths) {
  EXPECT_EQ(FixedWidthOf(TypeId::kInt64), 8);
  EXPECT_EQ(FixedWidthOf(TypeId::kDouble), 8);
  EXPECT_EQ(FixedWidthOf(TypeId::kDate), 4);
  EXPECT_EQ(FixedWidthOf(TypeId::kBool), 1);
  EXPECT_EQ(FixedWidthOf(TypeId::kString), 0);
  EXPECT_FALSE(IsFixedWidth(TypeId::kString));
  EXPECT_TRUE(IsFixedWidth(TypeId::kDate));
}

TEST(DataTypeTest, ConversionCostOrdering) {
  // The adaptive cache prioritizes expensive-to-convert attributes: numeric
  // conversion costs more than strings (paper §4.3).
  EXPECT_GT(ConversionCostClass(TypeId::kDouble),
            ConversionCostClass(TypeId::kInt64));
  EXPECT_GT(ConversionCostClass(TypeId::kInt64),
            ConversionCostClass(TypeId::kString));
  EXPECT_EQ(ConversionCostClass(TypeId::kString), 0);
}

TEST(ValueTest, Factories) {
  EXPECT_EQ(Value::Int64(5).int64(), 5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).f64(), 2.5);
  EXPECT_EQ(Value::String("hi").str(), "hi");
  EXPECT_EQ(Value::Date(100).date(), 100);
  EXPECT_TRUE(Value::Bool(true).boolean());
  EXPECT_TRUE(Value::Null(TypeId::kDouble).is_null());
  EXPECT_EQ(Value::Null(TypeId::kDouble).type(), TypeId::kDouble);
}

TEST(ValueTest, CompareSameType) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_GT(Value::Int64(2).Compare(Value::Int64(1)), 0);
  EXPECT_EQ(Value::Int64(3).Compare(Value::Int64(3)), 0);
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_LT(Value::Date(10).Compare(Value::Date(20)), 0);
}

TEST(ValueTest, CompareCrossNumeric) {
  EXPECT_EQ(Value::Int64(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int64(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.5).Compare(Value::Int64(3)), 0);
}

TEST(ValueTest, LargeInt64ComparisonIsExact) {
  // Same-type int comparison must not round through double.
  Value a = Value::Int64(9007199254740993LL);      // 2^53 + 1
  Value b = Value::Int64(9007199254740992LL);      // 2^53
  EXPECT_GT(a.Compare(b), 0);
}

TEST(ValueTest, EqualsAndHashConsistent) {
  Value a = Value::String("hello");
  Value b = Value::String("hello");
  EXPECT_TRUE(a.Equals(b));
  EXPECT_EQ(a.Hash(), b.Hash());
  Value c = Value::Int64(42), d = Value::Int64(42);
  EXPECT_EQ(c.Hash(), d.Hash());
  // -0.0 and 0.0 are equal and must hash equally.
  EXPECT_EQ(Value::Double(-0.0).Hash(), Value::Double(0.0).Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int64(-7).ToString(), "-7");
  EXPECT_EQ(Value::String("x").ToString(), "x");
  EXPECT_EQ(Value::Null(TypeId::kInt64).ToString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Date(0).ToString(), "1970-01-01");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
}

TEST(ValueTest, ParseAsEachType) {
  EXPECT_EQ(Value::ParseAs(TypeId::kInt64, "12")->int64(), 12);
  EXPECT_DOUBLE_EQ(Value::ParseAs(TypeId::kDouble, "1.5")->f64(), 1.5);
  EXPECT_EQ(Value::ParseAs(TypeId::kString, "ab")->str(), "ab");
  EXPECT_EQ(Value::ParseAs(TypeId::kDate, "1970-01-02")->date(), 1);
  EXPECT_TRUE(Value::ParseAs(TypeId::kBool, "true")->boolean());
}

TEST(ValueTest, ParseAsEmptyIsNull) {
  for (TypeId t : {TypeId::kInt64, TypeId::kDouble, TypeId::kString,
                   TypeId::kDate, TypeId::kBool}) {
    Result<Value> v = Value::ParseAs(t, "");
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE(v->is_null());
    EXPECT_EQ(v->type(), t);
  }
}

TEST(ValueTest, ParseAsRejectsGarbage) {
  EXPECT_FALSE(Value::ParseAs(TypeId::kInt64, "1x").ok());
  EXPECT_FALSE(Value::ParseAs(TypeId::kDate, "nope").ok());
}

TEST(ValueTest, OperatorEq) {
  EXPECT_EQ(Value::Int64(1), Value::Int64(1));
  EXPECT_FALSE(Value::Int64(1) == Value::Double(1.0));  // type-sensitive
  EXPECT_EQ(Value::Null(TypeId::kInt64), Value::Null(TypeId::kInt64));
  EXPECT_FALSE(Value::Null(TypeId::kInt64) == Value::Int64(0));
}

TEST(RowTest, HashRowDiffers) {
  Row a = {Value::Int64(1), Value::String("x")};
  Row b = {Value::Int64(1), Value::String("y")};
  Row c = {Value::Int64(1), Value::String("x")};
  EXPECT_EQ(HashRow(a), HashRow(c));
  EXPECT_NE(HashRow(a), HashRow(b));
}

TEST(SchemaTest, IndexOfAndSelect) {
  Schema s{{"a", TypeId::kInt64}, {"b", TypeId::kString},
           {"c", TypeId::kDouble}};
  EXPECT_EQ(s.num_columns(), 3);
  EXPECT_EQ(s.IndexOf("b"), 1);
  EXPECT_EQ(s.IndexOf("z"), -1);
  Schema sub = s.Select({2, 0});
  EXPECT_EQ(sub.num_columns(), 2);
  EXPECT_EQ(sub.column(0).name, "c");
  EXPECT_EQ(sub.column(1).name, "a");
}

TEST(SchemaTest, AddColumnReturnsIndex) {
  Schema s;
  EXPECT_EQ(s.AddColumn({"x", TypeId::kInt64}), 0);
  EXPECT_EQ(s.AddColumn({"y", TypeId::kDate}), 1);
  EXPECT_EQ(s.ToString(), "x:int64, y:date");
}


TEST(ValueTest, NullRenderingAndHash) {
  Value n = Value::Null(TypeId::kInt64);
  EXPECT_EQ(n.ToString(), "NULL");
  // NULLs of the same type are equal (operator==) and hash identically, so
  // group-by keys with NULLs form one group.
  Value n2 = Value::Null(TypeId::kInt64);
  EXPECT_TRUE(n == n2);
  EXPECT_EQ(n.Hash(), n2.Hash());
  // A NULL never equals a non-null of the same type.
  EXPECT_FALSE(n == Value::Int64(0));
}

TEST(ValueTest, CrossNumericComparesViaDouble) {
  // Mixed Int64/Double comparison goes through double (SQL numeric
  // promotion): 2^53 + 1 collapses onto 2^53. Same-type comparison stays
  // exact (LargeInt64ComparisonIsExact above) — pin both behaviors so a
  // future change is a conscious one.
  int64_t big = (int64_t{1} << 53) + 1;
  Value i = Value::Int64(big);
  Value d = Value::Double(9007199254740992.0);  // 2^53
  EXPECT_EQ(i.Compare(d), 0);
  EXPECT_EQ(Value::Int64(7).Compare(Value::Double(7.5)), -1);
  EXPECT_EQ(Value::Double(8.5).Compare(Value::Int64(8)), 1);
}

}  // namespace
}  // namespace nodb
