#include <gtest/gtest.h>

#include "engine/engines.h"
#include "util/fs_util.h"

namespace nodb {
namespace {

/// Shared fixture: a small typed CSV table.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    csv_path_ = dir_.File("people.csv");
    ASSERT_TRUE(WriteStringToFile(csv_path_,
                                  "1,alice,30,9000.5,2020-01-01\n"
                                  "2,bob,25,100.25,2021-06-15\n"
                                  "3,carol,35,5000,2019-12-31\n"
                                  "4,dave,25,,2022-03-03\n"
                                  "5,erin,41,7500.75,2020-07-07\n")
                    .ok());
    schema_ = Schema{{"id", TypeId::kInt64},
                     {"name", TypeId::kString},
                     {"age", TypeId::kInt64},
                     {"balance", TypeId::kDouble},
                     {"joined", TypeId::kDate}};
  }

  std::unique_ptr<Database> Raw(SystemUnderTest sut =
                                    SystemUnderTest::kPostgresRawPMC) {
    auto db = MakeEngine(sut);
    EXPECT_TRUE(db->RegisterCsv("people", csv_path_, schema_).ok());
    return db;
  }

  std::unique_ptr<Database> Loaded(SystemUnderTest sut =
                                       SystemUnderTest::kPostgreSQL) {
    auto db = MakeEngine(sut);
    EngineConfig cfg = db->config();
    EXPECT_TRUE(db->LoadCsv("people", csv_path_, schema_).ok());
    return db;
  }

  TempDir dir_;
  std::string csv_path_;
  Schema schema_;
};

TEST_F(EngineTest, SelectStarRaw) {
  auto db = Raw();
  auto result = db->Execute("SELECT * FROM people");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 5u);
  EXPECT_EQ(result->schema.num_columns(), 5);
  EXPECT_EQ(result->rows[0][1].str(), "alice");
  EXPECT_TRUE(result->rows[3][3].is_null());  // dave's empty balance
}

TEST_F(EngineTest, ProjectionAndFilter) {
  auto db = Raw();
  auto result = db->Execute(
      "SELECT name FROM people WHERE age = 25 ORDER BY name");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0][0].str(), "bob");
  EXPECT_EQ(result->rows[1][0].str(), "dave");
}

TEST_F(EngineTest, AggregatesGlobal) {
  auto db = Raw();
  auto result = db->Execute(
      "SELECT COUNT(*), SUM(age), MIN(name), MAX(joined), AVG(balance) "
      "FROM people");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].int64(), 5);
  EXPECT_EQ(result->rows[0][1].int64(), 156);
  EXPECT_EQ(result->rows[0][2].str(), "alice");
  EXPECT_EQ(result->rows[0][3].ToString(), "2022-03-03");
  // AVG ignores dave's NULL balance: (9000.5+100.25+5000+7500.75)/4.
  EXPECT_DOUBLE_EQ(result->rows[0][4].f64(), 21601.5 / 4.0);
}

TEST_F(EngineTest, GroupBy) {
  auto db = Raw();
  auto result = db->Execute(
      "SELECT age, COUNT(*) AS n FROM people GROUP BY age ORDER BY age");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 4u);
  EXPECT_EQ(result->rows[0][0].int64(), 25);
  EXPECT_EQ(result->rows[0][1].int64(), 2);
}

TEST_F(EngineTest, DateComparisonAndArithmetic) {
  auto db = Raw();
  auto result = db->Execute(
      "SELECT id FROM people WHERE joined >= DATE '2020-06-01' "
      "ORDER BY id");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 3u);  // bob, dave, erin
  auto interval = db->Execute(
      "SELECT id FROM people "
      "WHERE joined < DATE '2020-01-01' + INTERVAL '10' DAY ORDER BY id");
  ASSERT_TRUE(interval.ok()) << interval.status();
  ASSERT_EQ(interval->rows.size(), 2u);  // alice (01-01), carol (2019)
}

TEST_F(EngineTest, LimitAndOrderDesc) {
  auto db = Raw();
  auto result = db->Execute(
      "SELECT name, age FROM people ORDER BY age DESC, name LIMIT 2");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0][0].str(), "erin");
  EXPECT_EQ(result->rows[1][0].str(), "carol");
}

TEST_F(EngineTest, RepeatedQueriesStayCorrectAsStructuresWarm) {
  // The adaptive structures must never change answers — only speed.
  auto db = Raw();
  std::string expected;
  for (int i = 0; i < 5; ++i) {
    auto result = db->Execute(
        "SELECT id, balance FROM people WHERE age > 24 ORDER BY id");
    ASSERT_TRUE(result.ok()) << result.status();
    std::string canonical = result->Canonical(false);
    if (i == 0) {
      expected = canonical;
    } else {
      EXPECT_EQ(canonical, expected) << "query " << i;
    }
  }
  // After a full scan the row count is known.
  EXPECT_EQ(db->GetRowCount("people"), 5);
}

TEST_F(EngineTest, AllRawVariantsAgree) {
  auto reference = Raw(SystemUnderTest::kPostgresRawPMC);
  auto expected = reference->Execute("SELECT name, age FROM people "
                                     "WHERE balance > 1000 ORDER BY name");
  ASSERT_TRUE(expected.ok());
  for (SystemUnderTest sut :
       {SystemUnderTest::kPostgresRawPM, SystemUnderTest::kPostgresRawC,
        SystemUnderTest::kPostgresRawBaseline,
        SystemUnderTest::kExternalFiles}) {
    auto db = Raw(sut);
    for (int repeat = 0; repeat < 2; ++repeat) {
      auto result = db->Execute("SELECT name, age FROM people "
                                "WHERE balance > 1000 ORDER BY name");
      ASSERT_TRUE(result.ok())
          << SystemUnderTestName(sut) << ": " << result.status();
      EXPECT_EQ(result->Canonical(false), expected->Canonical(false))
          << SystemUnderTestName(sut) << " repeat " << repeat;
    }
  }
}

TEST_F(EngineTest, LoadedEnginesAgreeWithRaw) {
  auto raw = Raw();
  auto expected =
      raw->Execute("SELECT age, COUNT(*) AS n, SUM(balance) AS total "
                   "FROM people GROUP BY age ORDER BY age");
  ASSERT_TRUE(expected.ok());
  for (SystemUnderTest sut :
       {SystemUnderTest::kPostgreSQL, SystemUnderTest::kDbmsX,
        SystemUnderTest::kMySQL}) {
    auto db = Loaded(sut);
    auto result =
        db->Execute("SELECT age, COUNT(*) AS n, SUM(balance) AS total "
                    "FROM people GROUP BY age ORDER BY age");
    ASSERT_TRUE(result.ok())
        << SystemUnderTestName(sut) << ": " << result.status();
    EXPECT_EQ(result->Canonical(false), expected->Canonical(false))
        << SystemUnderTestName(sut);
  }
}

TEST_F(EngineTest, ErrorsSurfaceCleanly) {
  auto db = Raw();
  EXPECT_FALSE(db->Execute("SELECT nope FROM people").ok());
  EXPECT_FALSE(db->Execute("SELECT * FROM missing_table").ok());
  EXPECT_FALSE(db->Execute("SELEC * FROM people").ok());
  EXPECT_FALSE(db->Execute("SELECT name FROM people WHERE age = 'x'").ok());
}

TEST_F(EngineTest, MissingFileSurfacesIOErrorOnRegisterAndLoad) {
  std::string ghost = dir_.File("does_not_exist.csv");
  auto raw = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  Status reg = raw->RegisterCsv("ghost", ghost, schema_);
  EXPECT_EQ(reg.code(), StatusCode::kIOError);
  EXPECT_NE(reg.message().find("does_not_exist.csv"), std::string::npos)
      << "error should name the offending file: " << reg.ToString();
  EXPECT_FALSE(raw->HasTable("ghost"));

  auto loaded = MakeEngine(SystemUnderTest::kPostgreSQL);
  auto load = loaded->LoadCsv("ghost", ghost, schema_);
  ASSERT_FALSE(load.ok());
  EXPECT_EQ(load.status().code(), StatusCode::kIOError);
  EXPECT_FALSE(loaded->HasTable("ghost"));
}

TEST_F(EngineTest, ShortRowsYieldNullsConsistentlyAcrossEngines) {
  // A ragged file: row 2 stops after two of five columns. Missing trailing
  // attributes read as NULL, identically in raw and loaded engines.
  std::string ragged = dir_.File("ragged.csv");
  ASSERT_TRUE(WriteStringToFile(ragged,
                                "1,alice,30,9000.5,2020-01-01\n"
                                "2,bob\n"
                                "3,carol,35,5000,2019-12-31\n")
                  .ok());
  auto raw = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(raw->RegisterCsv("r", ragged, schema_).ok());
  auto loaded = MakeEngine(SystemUnderTest::kPostgreSQL);
  ASSERT_TRUE(loaded->LoadCsv("r", ragged, schema_).ok());

  for (const char* sql :
       {"SELECT id, age FROM r", "SELECT id FROM r WHERE age IS NULL",
        "SELECT COUNT(*) AS n, COUNT(age) AS a FROM r"}) {
    auto want = raw->Execute(sql);
    ASSERT_TRUE(want.ok()) << sql << "\n" << want.status();
    auto got = loaded->Execute(sql);
    ASSERT_TRUE(got.ok()) << sql << "\n" << got.status();
    EXPECT_EQ(got->Canonical(true), want->Canonical(true)) << sql;
  }
  auto nulls = raw->Execute("SELECT id FROM r WHERE age IS NULL");
  ASSERT_TRUE(nulls.ok());
  ASSERT_EQ(nulls->rows.size(), 1u);
  EXPECT_EQ(nulls->rows[0][0].int64(), 2);
}

TEST_F(EngineTest, MalformedCellSurfacesInvalidArgument) {
  // Type/schema mismatch: 'xx' under an Int64 column. The loaded engine
  // rejects the file at load time; the in-situ engine defers the conversion
  // and fails only when a query actually touches the bad attribute.
  std::string bad = dir_.File("bad_cell.csv");
  ASSERT_TRUE(WriteStringToFile(bad,
                                "1,alice,30,1.5,2020-01-01\n"
                                "2,bob,xx,2.5,2021-06-15\n")
                  .ok());
  auto loaded = MakeEngine(SystemUnderTest::kPostgreSQL);
  auto load = loaded->LoadCsv("b", bad, schema_);
  ASSERT_FALSE(load.ok());
  EXPECT_EQ(load.status().code(), StatusCode::kInvalidArgument);

  auto raw = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(raw->RegisterCsv("b", bad, schema_).ok());
  // Selective parsing: queries that never convert the bad cell succeed.
  EXPECT_TRUE(raw->Execute("SELECT id, name FROM b").ok());
  auto touch = raw->Execute("SELECT age FROM b");
  ASSERT_FALSE(touch.ok());
  EXPECT_EQ(touch.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(touch.status().message().find("xx"), std::string::npos)
      << touch.status().ToString();
  // The failure is per-query, not sticky: the table stays usable.
  EXPECT_TRUE(raw->Execute("SELECT name FROM b WHERE id = 2").ok());
}

TEST_F(EngineTest, QueryErrorsCarrySpecificStatusCodes) {
  auto db = Raw();
  EXPECT_EQ(db->Execute("SELECT * FROM missing_table").status().code(),
            StatusCode::kNotFound);
  auto parse_err = db->Execute("SELEC * FROM people").status();
  EXPECT_EQ(parse_err.code(), StatusCode::kInvalidArgument);
  auto bind_err = db->Execute("SELECT nope FROM people").status();
  EXPECT_EQ(bind_err.code(), StatusCode::kNotFound);
  EXPECT_NE(bind_err.message().find("nope"), std::string::npos)
      << "binder error should name the unknown column: " << bind_err;
}

TEST_F(EngineTest, DuplicateRegistrationFails) {
  auto db = Raw();
  EXPECT_EQ(db->RegisterCsv("people", csv_path_, schema_).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(db->DropTable("people").ok());
  EXPECT_TRUE(db->RegisterCsv("people", csv_path_, schema_).ok());
}

TEST_F(EngineTest, ExplainShowsPlan) {
  auto db = Raw();
  auto plan = db->Explain("SELECT age, COUNT(*) FROM people GROUP BY age");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("Scan people"), std::string::npos);
  EXPECT_NE(plan->find("Aggregate"), std::string::npos);
}

TEST_F(EngineTest, HeaderedCsv) {
  std::string path = dir_.File("with_header.csv");
  ASSERT_TRUE(
      WriteStringToFile(path, "id,name\n1,x\n2,y\n").ok());
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  CsvDialect dialect;
  dialect.has_header = true;
  ASSERT_TRUE(db->RegisterCsv("t", path,
                              Schema{{"id", TypeId::kInt64},
                                     {"name", TypeId::kString}},
                              dialect)
                  .ok());
  for (int i = 0; i < 3; ++i) {
    auto result = db->Execute("SELECT id, name FROM t ORDER BY id");
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->rows.size(), 2u);
    EXPECT_EQ(result->rows[0][1].str(), "x");
  }
}

TEST_F(EngineTest, EmptyFileYieldsEmptyResults) {
  std::string path = dir_.File("empty.csv");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(
      db->RegisterCsv("t", path, Schema{{"a", TypeId::kInt64}}).ok());
  auto result = db->Execute("SELECT a FROM t");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->rows.empty());
  auto agg = db->Execute("SELECT COUNT(*), SUM(a) FROM t");
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->rows.size(), 1u);
  EXPECT_EQ(agg->rows[0][0].int64(), 0);
  EXPECT_TRUE(agg->rows[0][1].is_null());
}

TEST_F(EngineTest, JoinTwoRawTables) {
  std::string path = dir_.File("depts.csv");
  ASSERT_TRUE(WriteStringToFile(path, "25,eng\n30,sales\n35,hr\n41,ops\n")
                  .ok());
  auto db = Raw();
  ASSERT_TRUE(db->RegisterCsv("depts", path,
                              Schema{{"d_age", TypeId::kInt64},
                                     {"d_name", TypeId::kString}})
                  .ok());
  auto result = db->Execute(
      "SELECT name, d_name FROM people, depts WHERE age = d_age "
      "ORDER BY name");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 5u);
  EXPECT_EQ(result->rows[0][0].str(), "alice");
  EXPECT_EQ(result->rows[0][1].str(), "sales");
}

TEST_F(EngineTest, ExistsSemiJoin) {
  std::string path = dir_.File("flags.csv");
  ASSERT_TRUE(WriteStringToFile(path, "1,1\n3,0\n3,1\n9,1\n").ok());
  auto db = Raw();
  ASSERT_TRUE(db->RegisterCsv("flags", path,
                              Schema{{"f_id", TypeId::kInt64},
                                     {"f_val", TypeId::kInt64}})
                  .ok());
  auto result = db->Execute(
      "SELECT name FROM people WHERE EXISTS "
      "(SELECT * FROM flags WHERE f_id = id AND f_val = 1) ORDER BY name");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0][0].str(), "alice");
  EXPECT_EQ(result->rows[1][0].str(), "carol");

  auto anti = db->Execute(
      "SELECT COUNT(*) FROM people WHERE NOT EXISTS "
      "(SELECT * FROM flags WHERE f_id = id)");
  ASSERT_TRUE(anti.ok()) << anti.status();
  EXPECT_EQ(anti->rows[0][0].int64(), 3);  // bob, dave, erin
}

}  // namespace
}  // namespace nodb
