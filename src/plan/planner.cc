#include "plan/planner.h"

#include "plan/optimizer.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <unordered_set>

namespace nodb {

namespace {

/// Moves the top-level AND conjuncts of `e` into `out`.
void SplitAnd(ExprPtr e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kLogical) {
    auto* logical = static_cast<LogicalExpr*>(e.get());
    if (logical->op == LogicalOp::kAnd) {
      SplitAnd(std::move(logical->left), out);
      SplitAnd(std::move(logical->right), out);
      return;
    }
  }
  out->push_back(std::move(e));
}

/// Set of FROM-table indices referenced by `e`, given table offsets.
std::set<int> TablesOf(const Expr& e, const std::vector<BoundTable>& tables) {
  std::vector<int> cols;
  e.CollectColumns(&cols);
  std::set<int> result;
  for (int col : cols) {
    for (size_t t = 0; t < tables.size(); ++t) {
      int lo = tables[t].offset;
      int hi = lo + tables[t].schema->num_columns();
      if (col >= lo && col < hi) {
        result.insert(static_cast<int>(t));
        break;
      }
    }
  }
  return result;
}

/// An equality conjunct joining two tables.
struct JoinEdge {
  int t1, t2;
  ExprPtr e1, e2;  // e1 references t1, e2 references t2
};

/// A conjunct spanning >= 2 tables that is not a plain equi-join.
struct Residual {
  std::set<int> tables;
  ExprPtr expr;
  bool applied = false;
};

}  // namespace

Result<std::unique_ptr<PhysicalPlan>> PlanQuery(BoundQuery* query,
                                                const StatsProvider* stats) {
  auto plan = std::make_unique<PhysicalPlan>();
  plan->query = query;
  int ntables = static_cast<int>(query->tables.size());

  // 1. One scan per table.
  plan->scans.resize(ntables);
  for (int t = 0; t < ntables; ++t) {
    plan->scans[t].table = query->tables[t];
  }

  // 2. Distribute WHERE conjuncts.
  std::vector<ExprPtr> conjuncts;
  SplitAnd(std::move(query->where), &conjuncts);
  query->where = nullptr;
  std::vector<JoinEdge> edges;
  std::vector<Residual> residuals;
  for (ExprPtr& conj : conjuncts) {
    std::set<int> tset = TablesOf(*conj, query->tables);
    if (tset.size() <= 1) {
      int t = tset.empty() ? plan->driver_scan : *tset.begin();
      // Constant predicates go to the driver scan (evaluated once per row;
      // they are rare and usually trivially true/false).
      plan->scans[t].conjuncts.push_back(std::move(conj));
      continue;
    }
    if (tset.size() == 2 && conj->kind == ExprKind::kComparison) {
      auto* cmp = static_cast<ComparisonExpr*>(conj.get());
      if (cmp->op == CompareOp::kEq) {
        std::set<int> lt = TablesOf(*cmp->left, query->tables);
        std::set<int> rt = TablesOf(*cmp->right, query->tables);
        if (lt.size() == 1 && rt.size() == 1 && *lt.begin() != *rt.begin()) {
          JoinEdge edge;
          edge.t1 = *lt.begin();
          edge.t2 = *rt.begin();
          edge.e1 = std::move(cmp->left);
          edge.e2 = std::move(cmp->right);
          edges.push_back(std::move(edge));
          continue;
        }
      }
    }
    residuals.push_back(Residual{std::move(tset), std::move(conj), false});
  }

  // 3. Estimate per-scan output cardinalities (stats permitting) and order
  //    pushed conjuncts most-selective-first.
  for (int t = 0; t < ntables; ++t) {
    PlannedScan& scan = plan->scans[t];
    const TableStats* ts =
        stats != nullptr ? stats->GetTableStats(scan.table.table_name)
                         : nullptr;
    double rows =
        stats != nullptr ? stats->GetRowCount(scan.table.table_name) : -1;
    if (ts != nullptr && !scan.conjuncts.empty()) {
      // Evaluation cost on a selectivity tie: a conjunct whose columns are
      // all served from a promoted columnar representation costs no
      // tokenizing/parsing, so it goes first among equals.
      auto promoted_rank = [&](const Expr& c) {
        std::vector<int> cols;
        c.CollectColumns(&cols);
        if (cols.empty()) return 1;
        for (int col : cols) {
          if (!stats->IsColumnPromoted(scan.table.table_name,
                                       col - scan.table.offset)) {
            return 1;
          }
        }
        return 0;
      };
      std::vector<std::tuple<double, int, ExprPtr>> ranked;
      ranked.reserve(scan.conjuncts.size());
      for (ExprPtr& c : scan.conjuncts) {
        double sel = EstimateConjunctSelectivity(*c, ts, scan.table.offset);
        int rank = promoted_rank(*c);
        ranked.emplace_back(sel, rank, std::move(c));
      }
      std::stable_sort(ranked.begin(), ranked.end(),
                       [](const auto& a, const auto& b) {
                         if (std::get<0>(a) != std::get<0>(b)) {
                           return std::get<0>(a) < std::get<0>(b);
                         }
                         return std::get<1>(a) < std::get<1>(b);
                       });
      scan.conjuncts.clear();
      double combined = 1.0;
      for (auto& [sel, rank, c] : ranked) {
        combined *= sel;
        scan.conjuncts.push_back(std::move(c));
      }
      if (rows >= 0) scan.est_rows = rows * combined;
    } else if (rows >= 0) {
      scan.est_rows = scan.conjuncts.empty() ? rows : rows * 0.33;
    }
  }

  // 4. Join order: greedy smallest-cardinality-first over connected tables;
  //    FROM order when cardinalities are unknown.
  std::vector<bool> placed(ntables, false);
  auto est_of = [&](int t) {
    return plan->scans[t].est_rows >= 0 ? plan->scans[t].est_rows : 1e18;
  };
  bool have_stats = stats != nullptr;
  int driver = 0;
  if (have_stats) {
    for (int t = 1; t < ntables; ++t) {
      if (est_of(t) < est_of(driver)) driver = t;
    }
  }
  plan->driver_scan = driver;
  placed[driver] = true;
  std::set<int> current = {driver};

  auto connected = [&](int t) {
    for (const JoinEdge& e : edges) {
      if ((e.t1 == t && current.count(e.t2)) ||
          (e.t2 == t && current.count(e.t1))) {
        return true;
      }
    }
    return false;
  };

  for (int step = 1; step < ntables; ++step) {
    int next = -1;
    for (int t = 0; t < ntables; ++t) {
      if (placed[t] || !connected(t)) continue;
      if (next < 0) {
        next = t;
      } else if (have_stats && est_of(t) < est_of(next)) {
        next = t;
      }
    }
    if (next < 0) {
      // No connected table: fall back to the first unplaced (cross join).
      for (int t = 0; t < ntables; ++t) {
        if (!placed[t]) {
          next = t;
          break;
        }
      }
    }
    PlannedJoin join;
    join.build_scan = next;
    for (JoinEdge& e : edges) {
      if (e.e1 == nullptr) continue;  // already consumed
      if (e.t1 == next && current.count(e.t2)) {
        join.build_keys.push_back(std::move(e.e1));
        join.probe_keys.push_back(std::move(e.e2));
      } else if (e.t2 == next && current.count(e.t1)) {
        join.build_keys.push_back(std::move(e.e2));
        join.probe_keys.push_back(std::move(e.e1));
      }
    }
    placed[next] = true;
    current.insert(next);
    // Attach residual conjuncts that became evaluable.
    for (Residual& r : residuals) {
      if (r.applied) continue;
      bool covered = std::all_of(r.tables.begin(), r.tables.end(),
                                 [&](int t) { return current.count(t) > 0; });
      if (covered) {
        join.residual.push_back(std::move(r.expr));
        r.applied = true;
      }
    }
    plan->joins.push_back(std::move(join));
  }
  for (Residual& r : residuals) {
    if (!r.applied) {
      return Status::Internal("residual predicate was never applied");
    }
  }

  // 5. Semi joins (EXISTS).
  for (BoundSemiJoin& sj : query->semi_joins) {
    PlannedSemiJoin planned;
    planned.anti = sj.anti;
    planned.inner.table = sj.table;
    SplitAnd(std::move(sj.inner_filter), &planned.inner.conjuncts);
    planned.outer_keys = std::move(sj.outer_keys);
    planned.inner_keys = std::move(sj.inner_keys);
    plan->semi_joins.push_back(std::move(planned));
  }
  query->semi_joins.clear();

  // 6. Needed columns per table: WHERE-phase from pushed conjuncts, payload
  //    from everything else that touches the table.
  {
    std::vector<std::set<int>> where_cols(ntables), all_cols(ntables);
    auto bucket = [&](const std::vector<int>& cols,
                      std::vector<std::set<int>>* dest) {
      for (int col : cols) {
        for (int t = 0; t < ntables; ++t) {
          int lo = query->tables[t].offset;
          int hi = lo + query->tables[t].schema->num_columns();
          if (col >= lo && col < hi) {
            (*dest)[t].insert(col - lo);
            break;
          }
        }
      }
    };
    std::vector<int> scratch;
    auto collect = [&](const Expr& e, std::vector<std::set<int>>* dest) {
      scratch.clear();
      e.CollectColumns(&scratch);
      bucket(scratch, dest);
    };

    for (int t = 0; t < ntables; ++t) {
      for (const ExprPtr& c : plan->scans[t].conjuncts) {
        collect(*c, &where_cols);
        collect(*c, &all_cols);
      }
    }
    for (const PlannedJoin& j : plan->joins) {
      for (const ExprPtr& k : j.probe_keys) collect(*k, &all_cols);
      for (const ExprPtr& k : j.build_keys) collect(*k, &all_cols);
      for (const ExprPtr& r : j.residual) collect(*r, &all_cols);
    }
    for (const PlannedSemiJoin& s : plan->semi_joins) {
      for (const ExprPtr& k : s.outer_keys) collect(*k, &all_cols);
    }
    for (const ExprPtr& g : query->group_by) collect(*g, &all_cols);
    for (const AggregateSpec& a : query->aggregates) {
      if (a.arg != nullptr) collect(*a.arg, &all_cols);
    }
    if (!query->has_aggregation) {
      for (const ExprPtr& s : query->select_exprs) collect(*s, &all_cols);
    }

    for (int t = 0; t < ntables; ++t) {
      PlannedScan& scan = plan->scans[t];
      for (int c : where_cols[t]) scan.where_attrs.push_back(c);
      for (int c : all_cols[t]) {
        if (!where_cols[t].count(c)) scan.payload_attrs.push_back(c);
      }
    }
    // Semi-join inner scans: local index space (offset 0 by construction).
    for (PlannedSemiJoin& s : plan->semi_joins) {
      std::set<int> inner_where, inner_all;
      std::vector<int> cols;
      for (const ExprPtr& c : s.inner.conjuncts) {
        cols.clear();
        c->CollectColumns(&cols);
        inner_where.insert(cols.begin(), cols.end());
        inner_all.insert(cols.begin(), cols.end());
      }
      for (const ExprPtr& k : s.inner_keys) {
        cols.clear();
        k->CollectColumns(&cols);
        inner_all.insert(cols.begin(), cols.end());
      }
      for (int c : inner_where) s.inner.where_attrs.push_back(c);
      for (int c : inner_all) {
        if (!inner_where.count(c)) s.inner.payload_attrs.push_back(c);
      }
    }
  }

  // 7. Aggregation strategy. Without statistics the planner cannot bound the
  //    group count and conservatively sorts (except for global aggregation,
  //    which has exactly one group); with statistics it hash-aggregates with
  //    a capacity hint — the plan switch behind the paper's Fig. 12.
  if (query->has_aggregation) {
    // A stats *provider* is not the same as having statistics: the tables
    // the GROUP BY columns come from must actually have been analyzed
    // (loaded, or touched by a previous in-situ query).
    bool group_tables_analyzed = stats != nullptr;
    if (stats != nullptr) {
      std::vector<int> cols;
      for (const ExprPtr& g : query->group_by) g->CollectColumns(&cols);
      for (int col : cols) {
        for (const BoundTable& t : query->tables) {
          int lo = t.offset, hi = t.offset + t.schema->num_columns();
          if (col >= lo && col < hi) {
            if (stats->GetTableStats(t.table_name) == nullptr) {
              group_tables_analyzed = false;
            }
            break;
          }
        }
      }
    }
    if (query->group_by.empty()) {
      plan->agg_strategy = AggStrategy::kHash;
      plan->agg_groups_hint = 1;
    } else if (!group_tables_analyzed) {
      plan->agg_strategy = AggStrategy::kSort;
    } else {
      plan->agg_strategy = AggStrategy::kHash;
      double groups = 1.0;
      bool known = true;
      for (const ExprPtr& g : query->group_by) {
        if (g->kind != ExprKind::kColumnRef) {
          known = false;
          break;
        }
        int idx = static_cast<const ColumnRefExpr*>(g.get())->index;
        double ndv = -1;
        for (const BoundTable& t : query->tables) {
          int lo = t.offset, hi = t.offset + t.schema->num_columns();
          if (idx >= lo && idx < hi) {
            const TableStats* ts = stats->GetTableStats(t.table_name);
            if (ts != nullptr && ts->Attr(idx - lo) != nullptr) {
              ndv = ts->Attr(idx - lo)->ndv;
            }
            break;
          }
        }
        if (ndv < 0) {
          known = false;
          break;
        }
        groups *= std::max(1.0, ndv);
      }
      plan->agg_groups_hint =
          known ? static_cast<size_t>(std::min(groups, 1e7)) : 1024;
    }
  }

  return plan;
}

}  // namespace nodb
