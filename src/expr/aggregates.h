#ifndef NODB_EXPR_AGGREGATES_H_
#define NODB_EXPR_AGGREGATES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "types/value.h"
#include "util/result.h"

namespace nodb {

enum class AggFunc : uint8_t { kCountStar, kCount, kSum, kAvg, kMin, kMax };

std::string_view AggFuncToString(AggFunc func);

/// One aggregate call extracted from a SELECT list by the binder
/// (e.g. SUM(l_extendedprice * l_discount)).
struct AggregateSpec {
  AggFunc func;
  ExprPtr arg;  // null for COUNT(*)

  /// Result type of the aggregate (SUM(int)=int, AVG(*)=double, ...).
  TypeId ResultType() const;
};

/// Running state for one aggregate over one group. NULL inputs are ignored
/// per SQL (COUNT(*) counts rows regardless).
class AggAccumulator {
 public:
  explicit AggAccumulator(const AggregateSpec* spec);

  /// Folds in the argument value (or any value for COUNT(*)).
  void Add(const Value& v);

  /// Final value of the aggregate (NULL for empty-input SUM/AVG/MIN/MAX,
  /// 0 for COUNT).
  Value Final() const;

 private:
  const AggregateSpec* spec_;
  uint64_t count_ = 0;  // non-null inputs (rows for COUNT(*))
  int64_t sum_i64_ = 0;
  double sum_f64_ = 0;
  Value extreme_;  // MIN/MAX running value
};

}  // namespace nodb

#endif  // NODB_EXPR_AGGREGATES_H_
