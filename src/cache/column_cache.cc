#include "cache/column_cache.h"

#include <algorithm>

namespace nodb {

namespace {
/// Fixed per-entry bookkeeping charge (hash node + LRU node, approximate).
constexpr uint64_t kEntryOverhead = 64;
}  // namespace

ColumnCache::ColumnCache(std::vector<TypeId> types, Options options)
    : types_(std::move(types)), options_(options) {
  int max_class = 0;
  for (TypeId t : types_) max_class = std::max(max_class, ConversionCostClass(t));
  lru_by_class_.resize(max_class + 1);
  attr_counters_.resize(types_.size());
}

uint64_t ColumnCache::BytesOf(const std::vector<Value>& values,
                              TypeId type) {
  uint64_t bytes = values.size() * sizeof(Value);
  if (type == TypeId::kString) {
    for (const Value& v : values) {
      if (!v.is_null()) bytes += v.str().size();
    }
  }
  return bytes + kEntryOverhead;
}

ColumnCache::Column ColumnCache::Get(uint64_t stripe, int attr) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(KeyOf(stripe, attr));
  if (it == entries_.end()) {
    ++counters_.misses;
    ++attr_counters_[attr].misses;
    return nullptr;
  }
  ++counters_.hits;
  ++attr_counters_[attr].hits;
  Entry& e = it->second;
  std::list<uint64_t>& lru = lru_by_class_[e.cost_class];
  if (e.lru_pos != lru.begin()) {
    lru.splice(lru.begin(), lru, e.lru_pos);
    e.lru_pos = lru.begin();
  }
  return e.values;
}

bool ColumnCache::Contains(uint64_t stripe, int attr) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.find(KeyOf(stripe, attr)) != entries_.end();
}

void ColumnCache::Put(uint64_t stripe, int attr, std::vector<Value> values) {
  uint64_t key = KeyOf(stripe, attr);
  uint64_t bytes = BytesOf(values, types_[attr]);
  int cost_class = ConversionCostClass(types_[attr]);
  auto column =
      std::make_shared<const std::vector<Value>>(std::move(values));
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes > EffectiveBudget()) return;  // would evict everything else
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    Entry& e = it->second;
    memory_bytes_ -= e.bytes;
    e.values = std::move(column);
    e.bytes = bytes;
    memory_bytes_ += bytes;
    std::list<uint64_t>& lru = lru_by_class_[e.cost_class];
    lru.splice(lru.begin(), lru, e.lru_pos);
    e.lru_pos = lru.begin();
  } else {
    Entry e;
    e.values = std::move(column);
    e.bytes = bytes;
    e.cost_class = cost_class;
    lru_by_class_[cost_class].push_front(key);
    e.lru_pos = lru_by_class_[cost_class].begin();
    memory_bytes_ += bytes;
    entries_.emplace(key, std::move(e));
  }
  ++counters_.inserts;
  EnforceBudget();
}

uint64_t ColumnCache::EffectiveBudget() const {
  if (options_.budget_bytes == UINT64_MAX) return UINT64_MAX;
  return options_.budget_bytes > reserved_bytes_
             ? options_.budget_bytes - reserved_bytes_
             : 0;
}

uint64_t ColumnCache::ReleaseAttr(int attr) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t freed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (static_cast<int>(it->first & 0xFFFF) == attr) {
      Entry& e = it->second;
      lru_by_class_[e.cost_class].erase(e.lru_pos);
      freed += e.bytes;
      ++counters_.released;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  memory_bytes_ -= freed;
  return freed;
}

void ColumnCache::SetReservedBytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  reserved_bytes_ = bytes;
  EnforceBudget();
}

uint64_t ColumnCache::reserved_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_bytes_;
}

void ColumnCache::EnforceBudget() {
  while (memory_bytes_ > EffectiveBudget()) {
    // Evict from the cheapest-to-reconvert class that has entries.
    bool evicted = false;
    for (std::list<uint64_t>& lru : lru_by_class_) {
      if (lru.empty()) continue;
      uint64_t victim = lru.back();
      lru.pop_back();
      auto it = entries_.find(victim);
      memory_bytes_ -= it->second.bytes;
      entries_.erase(it);
      ++counters_.evictions;
      evicted = true;
      break;
    }
    if (!evicted) break;
  }
}

uint64_t ColumnCache::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_bytes_;
}

double ColumnCache::utilization() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.budget_bytes == UINT64_MAX || options_.budget_bytes == 0) {
    return memory_bytes_ > 0 ? 1.0 : 0.0;
  }
  return static_cast<double>(memory_bytes_) /
         static_cast<double>(options_.budget_bytes);
}

ColumnCache::Counters ColumnCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

ColumnCache::AttrCounters ColumnCache::attr_counters(int attr) const {
  std::lock_guard<std::mutex> lock(mu_);
  return attr_counters_[attr];
}

std::vector<ColumnCache::ExportedChunk> ColumnCache::ExportState() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ExportedChunk> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    ExportedChunk chunk;
    chunk.stripe = key >> 16;
    chunk.attr = static_cast<int>(key & 0xFFFF);
    chunk.values = entry.values;
    out.push_back(std::move(chunk));
  }
  std::sort(out.begin(), out.end(),
            [](const ExportedChunk& a, const ExportedChunk& b) {
              return a.stripe != b.stripe ? a.stripe < b.stripe
                                          : a.attr < b.attr;
            });
  return out;
}

void ColumnCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  for (auto& lru : lru_by_class_) lru.clear();
  memory_bytes_ = 0;
}

}  // namespace nodb
