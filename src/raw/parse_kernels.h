#ifndef NODB_RAW_PARSE_KERNELS_H_
#define NODB_RAW_PARSE_KERNELS_H_

#include <bit>
#include <cstdint>
#include <string_view>
#include <vector>

#include "csv/dialect.h"
#include "raw/raw_source.h"
#include "types/value.h"
#include "util/result.h"

namespace nodb {

/// Specialized parsing kernels for the in-situ hot path.
///
/// The paper charges most of a cold raw scan to tokenizing and data-type
/// conversion; these kernels attack exactly that cost with wide byte
/// scanning — SWAR on a 64-bit register, SSE2 / AVX2 where the CPU has
/// them — plus fast integer/double conversion, behind one function-pointer
/// table. Adapters pick their table once at construction, so per-field
/// dispatch stays a direct indirect call with no branching.
///
/// Every kernel is semantically *identical* to the scalar reference code it
/// replaces (src/csv/tokenizer.cc, src/json/json_text.cc,
/// src/util/str_conv.cc): same field boundaries, same values, same error
/// Statuses, malformed input included. The conformance suite
/// (tests/parse_kernel_test.cc) and the fuzz-differential suite
/// (tests/kernel_fuzz_test.cc) enforce this, and the scalar table stays
/// selectable at runtime (EngineConfig::scalar_kernels) and at build time
/// (-DNODB_FORCE_SCALAR_KERNELS=ON) so the reference path cannot rot.

enum class KernelLevel : uint8_t { kScalar, kSwar, kSse2, kAvx2 };

/// Stage-1 output of the two-stage JSONL structural scanner: one bit per
/// record byte (little-endian within each 64-bit word). The stage-2 walker
/// (WalkTopLevelFields over a BitmapSkipper) then answers every "next
/// structural character" query with a bit scan instead of a byte loop.
struct JsonBitmaps {
  std::vector<uint64_t> quote;        ///< '"' not consumed by a preceding escape
  std::vector<uint64_t> container;    ///< raw '"', '{', '}', '[', ']'
  std::vector<uint64_t> literal_end;  ///< ',', '}', ']' or JSON whitespace
  std::vector<uint64_t> backslash;    ///< '\\' (builder scratch)
  size_t size = 0;                    ///< record length in bytes

  void Reset(size_t n) {
    size = n;
    size_t words = (n + 63) / 64;
    quote.assign(words, 0);
    container.assign(words, 0);
    literal_end.assign(words, 0);
    backslash.assign(words, 0);
  }
};

/// First set bit at or after `from` in a bitmap of `size` bits; `size` when
/// none.
inline size_t NextSetBit(const std::vector<uint64_t>& words, size_t size,
                         size_t from) {
  if (from >= size) return size;
  size_t w = from >> 6;
  uint64_t word = words[w] & (~uint64_t{0} << (from & 63));
  while (word == 0) {
    if (++w >= words.size()) return size;
    word = words[w];
  }
  size_t pos = (w << 6) + static_cast<size_t>(std::countr_zero(word));
  return pos < size ? pos : size;
}

/// One specialization of the parsing layer. All members are non-null
/// except `json_bitmaps`, which the scalar table leaves null (the scalar
/// walker needs no stage-1 pass).
struct ParseKernels {
  KernelLevel level;
  const char* name;

  /// Index of the first '\n' in [p, p+n), or n. Never reads past p+n.
  size_t (*find_newline)(const char* p, size_t n);

  // --- CSV record kernels ---------------------------------------------
  // Same contracts as TokenizeStarts / FindFieldForward / FieldEndAt /
  // CountFields in csv/tokenizer.h (which remain the scalar reference).
  // Inside, each table dispatches once per call to a variant compiled for
  // the dialect class (unquoted comma / TSV / pipe / generic byte, or the
  // quoted state machine), so the per-byte loop is branch-free on the
  // dialect.
  int (*csv_tokenize)(std::string_view line, const CsvDialect& dialect,
                      int upto, uint32_t* starts);
  uint32_t (*csv_find_forward)(std::string_view line,
                               const CsvDialect& dialect, int from_attr,
                               uint32_t from_offset, int to_attr,
                               const PositionSink* sink);
  uint32_t (*csv_field_end)(std::string_view line, const CsvDialect& dialect,
                            uint32_t begin);
  int (*csv_count_fields)(std::string_view line, const CsvDialect& dialect);

  // --- JSONL kernels --------------------------------------------------
  /// Stage 1 of the structural scanner; null in the scalar table (the
  /// scalar walker needs no bitmaps).
  void (*json_bitmaps)(std::string_view s, JsonBitmaps* out);
  /// One past the closing quote of the string opening at `i` (same contract
  /// as the scalar skip in json_text.cc); s.size() if it never closes.
  size_t (*json_skip_string)(std::string_view s, size_t i);
  /// Same contract as SkipJsonValue.
  size_t (*json_skip_value)(std::string_view s, size_t i);

  // --- conversion kernels ---------------------------------------------
  // Same contracts (values AND error Statuses) as ParseInt64 / ParseDouble
  // / ParseDate in util/str_conv.h. Fast paths accept only clean input and
  // delegate everything else to the scalar routine, so divergence is
  // impossible by construction.
  Result<int64_t> (*parse_int64)(std::string_view text);
  Result<double> (*parse_double)(std::string_view text);
  Result<int32_t> (*parse_date)(std::string_view text);
};

/// The scalar reference table: direct pointers at the reference functions.
const ParseKernels& ScalarKernels();

/// Portable 64-bit SWAR table (always available).
const ParseKernels& SwarKernels();

/// SSE2 table, or null off x86-64. SSE2 is baseline on x86-64, so no
/// runtime check is needed when non-null.
const ParseKernels* Sse2KernelsOrNull();

/// AVX2 table, or null when the build lacks AVX2 codegen support or the
/// running CPU lacks AVX2 (checked once via __builtin_cpu_supports).
const ParseKernels* Avx2KernelsOrNull();

/// The best table for this build + CPU: AVX2 > SSE2 > SWAR. A build with
/// -DNODB_FORCE_SCALAR_KERNELS=ON pins this to ScalarKernels().
const ParseKernels& ActiveKernels();

/// ScalarKernels() when `force_scalar`, else ActiveKernels() — the switch
/// behind EngineConfig::scalar_kernels.
const ParseKernels& SelectKernels(bool force_scalar);

/// Every table available in this build on this CPU, scalar first. Used by
/// the conformance tests and benchmarks; ignores NODB_FORCE_SCALAR_KERNELS
/// so the reference build still *tests* the vector kernels it refuses to
/// deploy.
std::vector<const ParseKernels*> AvailableKernels();

/// Value::ParseAs with the table's conversion kernels: empty text is NULL,
/// int64/double/date go through the kernels, other types through the
/// scalar path (identical to Value::ParseAs when `k` is the scalar table).
/// Inline: this sits between every parsed field and its Value.
inline Result<Value> ParseFieldValue(const ParseKernels& k, TypeId type,
                                     std::string_view text) {
  if (text.empty()) return Value::Null(type);
  switch (type) {
    case TypeId::kInt64: {
      NODB_ASSIGN_OR_RETURN(int64_t v, k.parse_int64(text));
      return Value::Int64(v);
    }
    case TypeId::kDouble: {
      NODB_ASSIGN_OR_RETURN(double v, k.parse_double(text));
      return Value::Double(v);
    }
    case TypeId::kDate: {
      NODB_ASSIGN_OR_RETURN(int32_t v, k.parse_date(text));
      return Value::Date(v);
    }
    default:
      return Value::ParseAs(type, text);
  }
}

/// Stage-2 skip primitives answering over stage-1 bitmaps. Mirrors the
/// scalar SkipJsonValue byte loops exactly — including on malformed input —
/// because the *walk* stays sequential; only the "find the next structural
/// byte" steps become bit scans.
struct BitmapSkipper {
  const JsonBitmaps* bm;

  size_t SkipString(std::string_view s, size_t i) const {
    size_t q = NextSetBit(bm->quote, s.size(), i + 1);
    return q < s.size() ? q + 1 : s.size();
  }

  size_t SkipValue(std::string_view s, size_t i) const {
    const size_t n = s.size();
    if (i >= n) return n;
    if (s[i] == '"') return SkipString(s, i);
    if (s[i] == '{' || s[i] == '[') {
      int depth = 0;
      size_t j = i;
      while (j < n) {
        size_t q = NextSetBit(bm->container, n, j);
        if (q >= n) return n;
        char c = s[q];
        if (c == '"') {
          j = SkipString(s, q);
          continue;
        }
        if (c == '{' || c == '[') {
          ++depth;
        } else {
          --depth;
          if (depth == 0) return q + 1;
        }
        j = q + 1;
      }
      return n;
    }
    return NextSetBit(bm->literal_end, n, i);
  }
};

}  // namespace nodb

#endif  // NODB_RAW_PARSE_KERNELS_H_
