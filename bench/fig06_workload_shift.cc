// Figure 6 — "Adapting to changes in the workload": 250 random projection
// queries in 5 epochs, each focused on a different column range, with a
// capped cache. The paper's shape: response time stabilizes within each
// epoch, spikes briefly at epoch boundaries that touch new columns, and
// cache utilization climbs then saturates while LRU replaces cold columns.

#include "common.h"
#include "util/rng.h"

using namespace nodb;
using namespace nodb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintBanner(
      "Figure 6: adapting to workload shifts (5 epochs x 50 queries)",
      "Epochs over columns 1-50, 51-100, 1-100, 75-125, 85-135; cache "
      "utilization and response time per query.");

  MicroDataSpec spec;
  spec.rows = static_cast<uint64_t>(15000 * args.scale);
  spec.cols = 135;
  spec.seed = args.seed;
  std::string csv = MicroCsv(spec, "fig06");
  Schema schema = MicroSchema(spec);

  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  // Cap the cache below the full-file footprint so later epochs must evict
  // (the paper caps at 2.8 GB for an 11 GB file).
  uint64_t file_bytes = *FileSizeOf(csv);
  config.cache_budget_bytes = static_cast<uint64_t>(file_bytes * 1.2);
  Database db(config);
  if (!db.RegisterCsv("wide", csv, schema).ok()) return 1;
  TableRuntime* rt = db.runtime("wide");

  struct Epoch {
    int lo, hi;
  };
  const Epoch kEpochs[] = {{1, 50}, {51, 100}, {1, 100}, {75, 125},
                           {85, 135}};
  constexpr int kPerEpoch = 50;

  Rng rng(args.seed);
  TextTable table({"query", "epoch", "cols", "time(s)", "cache_util(%)",
                   "evictions"});
  int qnum = 0;
  for (const Epoch& epoch : kEpochs) {
    for (int q = 0; q < kPerEpoch; ++q) {
      ++qnum;
      std::string sql = RandomProjectionQuery("wide", spec.cols, 5, &rng,
                                              epoch.lo, epoch.hi);
      double secs = RunQuery(&db, sql);
      if (qnum % 5 == 0) {  // print every 5th query to keep output readable
        table.AddRow({std::to_string(qnum),
                      std::to_string(&epoch - kEpochs + 1),
                      std::to_string(epoch.lo) + "-" +
                          std::to_string(epoch.hi),
                      Fmt(secs, 4),
                      Fmt(100.0 * rt->cache->utilization(), 1),
                      std::to_string(rt->cache->counters().evictions)});
      }
    }
  }
  table.Print();
  printf("\nExpected shape: utilization climbs during epoch 1-2, epoch 3 "
         "reuses cached columns (fast), epochs 4-5 evict and re-fill "
         "(mixed fast/slow queries at the start of each epoch).\n");
  return 0;
}
