#ifndef NODB_STORAGE_LOADER_H_
#define NODB_STORAGE_LOADER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "csv/dialect.h"
#include "raw/raw_source.h"
#include "storage/compact_table.h"
#include "storage/table_heap.h"
#include "util/result.h"

namespace nodb {

struct ParseKernels;

/// Outcome of a bulk load.
struct LoadResult {
  uint64_t rows = 0;
  double seconds = 0;
};

/// One decoded record handed to a ForEachRawRow callback. `values` holds
/// one Value per requested attribute (in the caller's `attrs` order) and
/// may be moved from — the storage is recycled for the next record.
struct RawRowView {
  uint64_t index = 0;   // 0-based record index
  uint64_t offset = 0;  // absolute file offset of the record's first byte
  Value* values = nullptr;
};

using RawRowFn = std::function<Status(RawRowView&)>;

/// Sweeps every record of a raw source, decoding the requested attributes
/// (`attrs`, ascending) through the adapter's tokenize/parse hooks with
/// *exactly* the raw scan's semantics: structural shortfalls (short row,
/// absent field, position past the record end) become typed NULLs, and
/// malformed value text is a conversion error that aborts the sweep. This
/// is the single record-decode loop behind both the bulk loaders and the
/// background column promoter — promotion must produce byte-identical
/// values to the in-situ path, so there is one implementation to drift.
///
/// `stop` (optional) is polled periodically; setting it cancels the sweep
/// with a Cancelled status. Returns the number of records swept.
Result<uint64_t> ForEachRawRow(const RawSourceAdapter& adapter,
                               const std::vector<int>& attrs,
                               const RawRowFn& fn,
                               const std::atomic<bool>* stop = nullptr);

/// Bulk-loads a CSV file into a slotted-page heap — the a-priori "COPY" that
/// traditional engines require before the first query (and whose cost NoDB
/// eliminates). Every attribute of every tuple is tokenized, parsed to
/// binary and written out, exactly the work the paper charges to the
/// loaded-DBMS baselines. Decoding goes through the CSV adapter's hooks
/// (via ForEachRawRow), so ragged/malformed rows load exactly as the raw
/// scan would have answered them. `kernels` selects the tokenize/parse path
/// (raw/parse_kernels.h); null means the process-wide active table.
Result<LoadResult> LoadCsvToHeap(const std::string& csv_path,
                                 const CsvDialect& dialect, TableHeap* heap,
                                 const ParseKernels* kernels = nullptr);

/// Same, into the packed "DBMS X" format.
Result<LoadResult> LoadCsvToCompact(const std::string& csv_path,
                                    const CsvDialect& dialect,
                                    CompactTable* table,
                                    const ParseKernels* kernels = nullptr);

}  // namespace nodb

#endif  // NODB_STORAGE_LOADER_H_
