#ifndef NODB_SQL_PARSER_H_
#define NODB_SQL_PARSER_H_

#include <memory>
#include <string>

#include "sql/ast.h"
#include "util/result.h"

namespace nodb {

/// Parses one SELECT statement (optionally ';'-terminated).
///
/// Supported grammar (the subset exercised by the paper's workloads — the
/// micro-benchmarks and TPC-H Q1/Q3/Q4/Q6/Q10/Q12/Q14/Q19):
///
///   SELECT expr [AS alias], ... | *
///   FROM table [alias] [, table [alias]]... | table JOIN table ON cond ...
///   [WHERE cond]
///   [GROUP BY expr, ...]
///   [ORDER BY expr [ASC|DESC], ...]
///   [LIMIT n]
///
/// with expressions over + - * /, comparisons, AND/OR/NOT, BETWEEN, IN
/// (literal lists), LIKE, IS [NOT] NULL, searched CASE, CAST(e AS type),
/// aggregate calls, DATE 'x' and INTERVAL 'n' DAY|MONTH|YEAR literals, and
/// EXISTS (subquery) in WHERE.
Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql);

}  // namespace nodb

#endif  // NODB_SQL_PARSER_H_
