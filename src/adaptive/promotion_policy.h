#ifndef NODB_ADAPTIVE_PROMOTION_POLICY_H_
#define NODB_ADAPTIVE_PROMOTION_POLICY_H_

#include <cstdint>
#include <vector>

namespace nodb {

/// Knobs of the workload-driven auto-promotion subsystem (EngineConfig
/// carries one of these; see README "Adaptive storage tiers").
struct PromotionConfig {
  /// Master switch. Off by default: promotion changes where values are
  /// served from (never what they are), but the paper-faithful presets stay
  /// byte-for-byte reproductions of the paper's systems unless asked.
  bool enabled = false;
  /// Period of the background promoter thread; 0 = no thread (cycles run
  /// only via Database::RunPromotionCycle — what the tests use for
  /// determinism).
  int interval_ms = 0;
  /// A column becomes a candidate only after this many scans requested it.
  uint64_t min_scans = 3;
  /// Byte budget for promoted columns. 0 = share the column cache's budget
  /// (promoted bytes are *reserved out of* the cache budget so the pair
  /// never exceeds it — see ColumnCache::SetReservedBytes); when the table
  /// has no cache, 0 means unlimited.
  uint64_t budget_bytes = 0;
  /// At most this many columns are loaded per cycle (bounds the promoter's
  /// time away from its interval).
  int max_columns_per_cycle = 4;
};

/// One column's observed state, assembled by the promoter from the
/// ColumnAccessTracker and PromotedColumns bookkeeping.
struct ColumnPromotionInput {
  int attr = 0;
  bool promoted = false;
  uint64_t scans = 0;
  /// Cumulative ColumnAccessCounters::ParseWork().
  uint64_t parse_work = 0;
  /// parse_work already consumed by an earlier decision.
  uint64_t work_mark = 0;
  /// Cumulative rows served from the promoted form.
  uint64_t served_rows = 0;
  /// served_rows at the last cycle.
  uint64_t served_mark = 0;
  /// Actual resident bytes if promoted; estimated load size otherwise.
  uint64_t est_bytes = 0;
};

struct PromotionPlan {
  std::vector<int> promote;  // score order, best first
  std::vector<int> demote;   // victims freeing budget for the promotions
};

/// The promotion policy, as a pure function so tests can pin its behavior
/// without touching files or threads. Scores each candidate column by
/// *un-absorbed parse work per promoted byte* — the observed cost-to-serve
/// the raw path keeps paying, relative to what keeping the column hot costs
/// (the Zhao/Cheng/Rusu shape: benefit-per-byte under a storage budget) —
/// and fits the best candidates under `budget_bytes`, demoting promoted
/// columns that went cold (no promoted reads since the last cycle) when
/// that makes room. Deterministic: ties break toward the lower attribute.
PromotionPlan PlanPromotions(const std::vector<ColumnPromotionInput>& cols,
                             uint64_t promoted_bytes_now,
                             uint64_t budget_bytes,
                             const PromotionConfig& cfg);

}  // namespace nodb

#endif  // NODB_ADAPTIVE_PROMOTION_POLICY_H_
