#ifndef NODB_CSV_WRITER_H_
#define NODB_CSV_WRITER_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "csv/dialect.h"
#include "io/file.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/status.h"

namespace nodb {

/// Buffered CSV emitter used by the data generators, result export and
/// tests. Values are rendered with Value::ToString(); NULLs are written as
/// empty fields. Fields containing the delimiter, a quote or a newline are
/// quoted when the dialect permits quoting (the generators never produce
/// such values).
class CsvWriter {
 public:
  /// `out` must outlive the writer; the caller closes it after Finish().
  CsvWriter(WritableFile* out, CsvDialect dialect)
      : out_(out), dialect_(dialect) {}

  /// Emits to a stream instead of a file (result export paths). `out` must
  /// outlive the writer.
  CsvWriter(std::ostream* out, CsvDialect dialect)
      : stream_(out), dialect_(dialect) {}

  /// Writes the column names as the first record.
  Status WriteHeader(const Schema& schema);

  /// Writes one data record.
  Status WriteRow(const Row& row);

  /// Writes one record of pre-rendered fields.
  Status WriteFields(const std::vector<std::string_view>& fields);

  /// Flushes buffered bytes to the file.
  Status Finish();

 private:
  void AppendField(std::string_view field);
  Status MaybeFlush();
  Status Sink(std::string_view data);

  WritableFile* out_ = nullptr;   // exactly one of out_ / stream_ is set
  std::ostream* stream_ = nullptr;
  CsvDialect dialect_;
  std::string buffer_;
};

}  // namespace nodb

#endif  // NODB_CSV_WRITER_H_
