#include "util/fs_util.h"

#include <dirent.h>
#include <errno.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace nodb {

namespace {

std::string ErrnoMessage(const std::string& op, const std::string& path) {
  return op + " '" + path + "': " + strerror(errno);
}

/// Removes every regular file in `dir` (non-recursive); returns names of
/// subdirectories encountered.
std::vector<std::string> RemoveFilesIn(const std::string& dir) {
  std::vector<std::string> subdirs;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return subdirs;
  while (dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::string full = dir + "/" + name;
    struct stat st;
    if (stat(full.c_str(), &st) != 0) continue;
    if (S_ISDIR(st.st_mode)) {
      subdirs.push_back(full);
    } else {
      ::unlink(full.c_str());
    }
  }
  closedir(d);
  return subdirs;
}

}  // namespace

Result<uint64_t> FileSizeOf(const std::string& path) {
  struct stat st;
  if (stat(path.c_str(), &st) != 0) {
    return Status::IOError(ErrnoMessage("stat", path));
  }
  return static_cast<uint64_t>(st.st_size);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

Status CreateDir(const std::string& path) {
  if (mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError(ErrnoMessage("mkdir", path));
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("unlink", path));
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IOError(ErrnoMessage("rename", from) + " -> '" + to + "'");
  }
  return Status::OK();
}

Result<int64_t> FileMTimeNs(const std::string& path) {
  struct stat st;
  if (stat(path.c_str(), &st) != 0) {
    return Status::IOError(ErrnoMessage("stat", path));
  }
  return static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
         static_cast<int64_t>(st.st_mtim.tv_nsec);
}

Result<std::string> ReadFileToString(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError(ErrnoMessage("open", path));
  std::string out;
  // Size the buffer up front so a large file loads with one read and no
  // growth copies; chunked appends remain as the fallback for unsizable
  // inputs (pipes, special files) and files that grow mid-read.
  Result<uint64_t> size = FileSizeOf(path);
  if (size.ok() && *size > 0) {
    out.resize(*size);
    size_t got = std::fread(out.data(), 1, out.size(), f);
    out.resize(got);
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) return Status::IOError(ErrnoMessage("read", path));
  return out;
}

Status WriteStringToFile(const std::string& path,
                         const std::string& contents) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError(ErrnoMessage("open", path));
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int close_rc = std::fclose(f);
  if (written != contents.size() || close_rc != 0) {
    return Status::IOError(ErrnoMessage("write", path));
  }
  return Status::OK();
}

TempDir::TempDir() {
  static std::atomic<uint64_t> counter{0};
  const char* base = std::getenv("TMPDIR");
  std::string root = (base != nullptr && base[0] != '\0') ? base : "/tmp";
  // Unique per process+instance; mkdtemp-style but without template quirks.
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s/nodb_%d_%llu", root.c_str(), getpid(),
                static_cast<unsigned long long>(counter.fetch_add(1)));
  if (mkdir(buf, 0755) == 0) path_ = buf;
}

TempDir::~TempDir() {
  if (path_.empty()) return;
  for (const std::string& sub : RemoveFilesIn(path_)) {
    RemoveFilesIn(sub);
    ::rmdir(sub.c_str());
  }
  ::rmdir(path_.c_str());
}

}  // namespace nodb
