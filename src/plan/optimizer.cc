#include "plan/optimizer.h"

#include <algorithm>

namespace nodb {

double EstimateConjunctSelectivity(const Expr& conjunct,
                                   const TableStats* stats,
                                   int table_offset) {
  switch (conjunct.kind) {
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(conjunct);
      // Recognize column <op> literal (either orientation).
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      CompareOp op = cmp.op;
      if (cmp.left->kind == ExprKind::kColumnRef &&
          cmp.right->kind == ExprKind::kLiteral) {
        col = cmp.left.get();
        lit = cmp.right.get();
      } else if (cmp.right->kind == ExprKind::kColumnRef &&
                 cmp.left->kind == ExprKind::kLiteral) {
        col = cmp.right.get();
        lit = cmp.left.get();
        // Mirror the operator: (lit < col) == (col > lit).
        switch (op) {
          case CompareOp::kLt: op = CompareOp::kGt; break;
          case CompareOp::kLe: op = CompareOp::kGe; break;
          case CompareOp::kGt: op = CompareOp::kLt; break;
          case CompareOp::kGe: op = CompareOp::kLe; break;
          default: break;
        }
      }
      if (col == nullptr || stats == nullptr) return 0.33;
      int attr = static_cast<const ColumnRefExpr*>(col)->index - table_offset;
      if (attr < 0 || attr >= stats->num_attrs()) return 0.33;
      TableStats::AttrStatsPtr as = stats->Attr(attr);
      if (as == nullptr) return 0.33;
      const Value& constant = static_cast<const LiteralExpr*>(lit)->value;
      if (constant.is_null()) return 0.0;
      switch (op) {
        case CompareOp::kEq:
          return as->EstimateCompareSelectivity('=', false, constant);
        case CompareOp::kNe:
          return as->EstimateCompareSelectivity('!', false, constant);
        case CompareOp::kLt:
          return as->EstimateCompareSelectivity('<', false, constant);
        case CompareOp::kLe:
          return as->EstimateCompareSelectivity('<', true, constant);
        case CompareOp::kGt:
          return as->EstimateCompareSelectivity('>', false, constant);
        case CompareOp::kGe:
          return as->EstimateCompareSelectivity('>', true, constant);
      }
      return 0.33;
    }
    case ExprKind::kLogical: {
      const auto& logical = static_cast<const LogicalExpr&>(conjunct);
      if (logical.op == LogicalOp::kNot) {
        return 1.0 - EstimateConjunctSelectivity(*logical.left, stats,
                                                 table_offset);
      }
      double a = EstimateConjunctSelectivity(*logical.left, stats,
                                             table_offset);
      double b = EstimateConjunctSelectivity(*logical.right, stats,
                                             table_offset);
      if (logical.op == LogicalOp::kAnd) return a * b;
      return a + b - a * b;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(conjunct);
      double eq = 0.1;
      if (stats != nullptr && in.input->kind == ExprKind::kColumnRef) {
        int attr = static_cast<const ColumnRefExpr*>(in.input.get())->index -
                   table_offset;
        if (attr >= 0 && attr < stats->num_attrs() &&
            stats->Attr(attr) != nullptr) {
          eq = stats->Attr(attr)->EstimateEqualsSelectivity();
        }
      }
      double sel = std::min(1.0, eq * static_cast<double>(in.items.size()));
      return in.negated ? 1.0 - sel : sel;
    }
    case ExprKind::kLike: {
      const auto& like = static_cast<const LikeExpr&>(conjunct);
      // Prefix patterns are more selective than substring patterns.
      double sel = (!like.pattern.empty() && like.pattern.front() != '%')
                       ? 0.1
                       : 0.25;
      return like.negated ? 1.0 - sel : sel;
    }
    case ExprKind::kIsNull: {
      const auto& isn = static_cast<const IsNullExpr&>(conjunct);
      double null_frac = 0.05;
      if (stats != nullptr && isn.input->kind == ExprKind::kColumnRef) {
        int attr = static_cast<const ColumnRefExpr*>(isn.input.get())->index -
                   table_offset;
        if (attr >= 0 && attr < stats->num_attrs() &&
            stats->Attr(attr) != nullptr) {
          TableStats::AttrStatsPtr as = stats->Attr(attr);
          null_frac = as->rows_seen > 0 ? static_cast<double>(as->nulls) /
                                              static_cast<double>(as->rows_seen)
                                        : 0.05;
        }
      }
      return isn.negated ? 1.0 - null_frac : null_frac;
    }
    default:
      return 0.33;
  }
}

}  // namespace nodb
