#include "exec/hash_join.h"

#include "expr/evaluator.h"

namespace nodb {

Result<Row> HashJoinOp::EvalKeys(const std::vector<ExprPtr>& keys,
                                 const Row& row) const {
  Row key;
  key.reserve(keys.size());
  for (const ExprPtr& k : keys) {
    NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*k, row));
    key.push_back(std::move(v));
  }
  return key;
}

Status HashJoinOp::Open() {
  NODB_RETURN_IF_ERROR(build_->Open());
  Row build_row;
  while (true) {
    NODB_ASSIGN_OR_RETURN(bool has, build_->Next(&build_row));
    if (!has) break;
    NODB_ASSIGN_OR_RETURN(Row key, EvalKeys(join_->build_keys, build_row));
    // NULL keys never join.
    bool has_null = false;
    for (const Value& v : key) {
      if (v.is_null()) {
        has_null = true;
        break;
      }
    }
    if (has_null) continue;
    Slice slice(build_row.begin() + build_offset_,
                build_row.begin() + build_offset_ + build_width_);
    table_[std::move(key)].push_back(std::move(slice));
  }
  NODB_RETURN_IF_ERROR(build_->Close());
  return probe_->Open();
}

Result<bool> HashJoinOp::Next(Row* row) {
  while (true) {
    if (matches_ != nullptr && match_idx_ < matches_->size()) {
      const Slice& slice = (*matches_)[match_idx_++];
      *row = probe_row_;
      for (int i = 0; i < build_width_; ++i) {
        (*row)[build_offset_ + i] = slice[i];
      }
      // Residual predicates (non-equi conjuncts spanning both sides).
      bool pass = true;
      for (const ExprPtr& r : join_->residual) {
        NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*r, *row));
        if (!Evaluator::IsTruthy(v)) {
          pass = false;
          break;
        }
      }
      if (pass) return true;
      continue;
    }
    matches_ = nullptr;
    NODB_ASSIGN_OR_RETURN(bool has, probe_->Next(&probe_row_));
    if (!has) return false;
    NODB_ASSIGN_OR_RETURN(Row key, EvalKeys(join_->probe_keys, probe_row_));
    bool has_null = false;
    for (const Value& v : key) {
      if (v.is_null()) {
        has_null = true;
        break;
      }
    }
    if (has_null) continue;
    auto it = table_.find(key);
    if (it == table_.end()) continue;
    matches_ = &it->second;
    match_idx_ = 0;
  }
}

Status HashJoinOp::Close() {
  table_.clear();
  return probe_->Close();
}

Status SemiJoinOp::Open() {
  NODB_RETURN_IF_ERROR(inner_->Open());
  Row inner_row;
  while (true) {
    NODB_ASSIGN_OR_RETURN(bool has, inner_->Next(&inner_row));
    if (!has) break;
    Row key;
    key.reserve(semi_->inner_keys.size());
    bool has_null = false;
    for (const ExprPtr& k : semi_->inner_keys) {
      NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*k, inner_row));
      if (v.is_null()) has_null = true;
      key.push_back(std::move(v));
    }
    if (!has_null) keys_.insert(std::move(key));
  }
  NODB_RETURN_IF_ERROR(inner_->Close());
  return outer_->Open();
}

Result<bool> SemiJoinOp::Next(Row* row) {
  while (true) {
    NODB_ASSIGN_OR_RETURN(bool has, outer_->Next(row));
    if (!has) return false;
    Row key;
    key.reserve(semi_->outer_keys.size());
    bool has_null = false;
    for (const ExprPtr& k : semi_->outer_keys) {
      NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*k, *row));
      if (v.is_null()) has_null = true;
      key.push_back(std::move(v));
    }
    bool present = !has_null && keys_.count(key) > 0;
    if (present != semi_->anti) return true;
  }
}

Status SemiJoinOp::Close() {
  keys_.clear();
  return outer_->Close();
}

}  // namespace nodb
