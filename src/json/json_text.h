#ifndef NODB_JSON_JSON_TEXT_H_
#define NODB_JSON_JSON_TEXT_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace nodb {

/// Low-level JSON text routines shared by the JSON Lines adapter and writer.
/// These operate on one record (a single line holding one object) and never
/// allocate on the common path — the adapter sits on the in-situ hot path
/// where, per the paper, conversion cost dominates.

/// First index >= `i` whose byte is not JSON whitespace (space, tab, CR, LF).
size_t SkipJsonWs(std::string_view s, size_t i);

/// One past the end of the JSON value starting at `i`: a string (honouring
/// backslash escapes), a nested object/array (balanced, string-aware), or a
/// scalar literal (number / true / false / null, terminated by ',', '}',
/// ']' or whitespace). Truncated input yields s.size().
size_t SkipJsonValue(std::string_view s, size_t i);

/// Decodes the JSON string token starting at `token[0] == '"'` (the view may
/// extend past the closing quote; decoding stops there) into `*out`.
/// Handles the standard escapes and \uXXXX (UTF-8 encoded, surrogate pairs
/// combined). Returns false on malformed input.
bool UnescapeJsonString(std::string_view token, std::string* out);

/// Appends `s` to `*out` as a quoted JSON string with the mandatory escapes.
void AppendJsonQuoted(std::string* out, std::string_view s);

}  // namespace nodb

#endif  // NODB_JSON_JSON_TEXT_H_
