#include "workload/micro.h"

#include <algorithm>

#include "io/file.h"
#include "util/str_conv.h"

namespace nodb {

namespace {

/// Renders one drawn value exactly as the micro table stores it (plain, or
/// zero-padded to attr_width for the string-typed variant). Shared by the
/// CSV and JSONL generators so "identical values per (row, column)" is
/// enforced in one place.
void AppendMicroValue(std::string* buffer, int64_t v, int attr_width,
                      std::string* scratch) {
  if (attr_width > 0) {
    scratch->clear();
    AppendInt64(scratch, v);
    if (static_cast<int>(scratch->size()) < attr_width) {
      buffer->append(attr_width - scratch->size(), '0');
    }
    buffer->append(*scratch);
  } else {
    AppendInt64(buffer, v);
  }
}

}  // namespace

Schema MicroSchema(const MicroDataSpec& spec) {
  Schema schema;
  for (int c = 1; c <= spec.cols; ++c) {
    schema.AddColumn({"a" + std::to_string(c),
                      spec.attr_width > 0 ? TypeId::kString : TypeId::kInt64});
  }
  return schema;
}

Status GenerateWideCsv(const std::string& path, const MicroDataSpec& spec) {
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> out,
                        WritableFile::Create(path));
  Rng rng(spec.seed);
  std::string buffer;
  buffer.reserve(1 << 20);
  std::string field;
  for (uint64_t r = 0; r < spec.rows; ++r) {
    for (int c = 0; c < spec.cols; ++c) {
      if (c > 0) buffer.push_back(',');
      int64_t v = rng.Uniform(spec.min_value, spec.max_value);
      AppendMicroValue(&buffer, v, spec.attr_width, &field);
    }
    buffer.push_back('\n');
    if (buffer.size() >= (1 << 20)) {
      NODB_RETURN_IF_ERROR(out->Append(buffer));
      buffer.clear();
    }
  }
  if (!buffer.empty()) NODB_RETURN_IF_ERROR(out->Append(buffer));
  return out->Close();
}

Status GenerateWideJsonl(const std::string& path, const MicroDataSpec& spec) {
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> out,
                        WritableFile::Create(path));
  // Same Rng and draw order as GenerateWideCsv: identical values per (row,
  // column), only the framing differs.
  Rng rng(spec.seed);
  std::string buffer;
  buffer.reserve(1 << 20);
  std::string field;
  for (uint64_t r = 0; r < spec.rows; ++r) {
    buffer.push_back('{');
    for (int c = 0; c < spec.cols; ++c) {
      if (c > 0) buffer.push_back(',');
      buffer.append("\"a");
      AppendInt64(&buffer, c + 1);
      buffer.append("\":");
      int64_t v = rng.Uniform(spec.min_value, spec.max_value);
      if (spec.attr_width > 0) buffer.push_back('"');
      AppendMicroValue(&buffer, v, spec.attr_width, &field);
      if (spec.attr_width > 0) buffer.push_back('"');
    }
    buffer.append("}\n");
    if (buffer.size() >= (1 << 20)) {
      NODB_RETURN_IF_ERROR(out->Append(buffer));
      buffer.clear();
    }
  }
  if (!buffer.empty()) NODB_RETURN_IF_ERROR(out->Append(buffer));
  return out->Close();
}

std::string RandomProjectionQuery(const std::string& table, int ncols,
                                  int nattrs, Rng* rng, int col_lo,
                                  int col_hi) {
  if (col_hi < 0) col_hi = ncols;
  col_hi = std::min(col_hi, ncols);
  std::vector<int> attrs;
  while (static_cast<int>(attrs.size()) < nattrs &&
         static_cast<int>(attrs.size()) < col_hi - col_lo + 1) {
    int a = static_cast<int>(rng->Uniform(col_lo, col_hi));
    if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
      attrs.push_back(a);
    }
  }
  std::sort(attrs.begin(), attrs.end());
  std::string sql = "SELECT ";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += "a" + std::to_string(attrs[i]);
  }
  sql += " FROM " + table;
  return sql;
}

std::string SelectivityQuery(const std::string& table,
                             const MicroDataSpec& spec, double selectivity,
                             double projectivity) {
  int ncols = spec.cols;
  int nproj = std::max(1, static_cast<int>(projectivity * (ncols - 1)));
  std::string sql = "SELECT ";
  for (int i = 0; i < nproj; ++i) {
    if (i > 0) sql += ", ";
    sql += "SUM(a" + std::to_string(i + 2) + ") AS s" + std::to_string(i + 2);
  }
  sql += " FROM " + table;
  if (selectivity < 1.0) {
    // Uniform values in [min, max]: a1 <= cutoff keeps ~selectivity rows.
    double span = static_cast<double>(spec.max_value - spec.min_value);
    int64_t cutoff = spec.min_value +
                     static_cast<int64_t>(selectivity * span);
    sql += " WHERE a1 <= " + std::to_string(cutoff);
  }
  return sql;
}

}  // namespace nodb
