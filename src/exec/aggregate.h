#ifndef NODB_EXEC_AGGREGATE_H_
#define NODB_EXEC_AGGREGATE_H_

#include <unordered_map>
#include <vector>

#include "exec/exec_control.h"
#include "exec/operator.h"
#include "expr/aggregates.h"
#include "plan/logical_plan.h"

namespace nodb {

/// Grouping + aggregation. Output rows are [group values..., aggregate
/// results...] — the row layout the binder's post-aggregation expressions
/// are bound against.
///
/// Two strategies, chosen by the optimizer (paper Fig. 12):
///  * kHash — single pass into a hash table, pre-sized from statistics.
///  * kSort — materialize (key, args) pairs, sort by key, merge runs; the
///    conservative plan a statistics-less optimizer picks because it cannot
///    bound the hash table's memory.
class AggregateOp final : public Operator {
 public:
  /// `group_by` and `aggregates` must outlive the operator. `batch_size`
  /// sizes the internal batch the child is drained with.
  /// `control` (optional) is polled once per drained input batch: the
  /// consume loop swallows the whole child stream before the first output
  /// batch surfaces, so without the poll a deadline could not interrupt an
  /// aggregation over a huge cold scan.
  AggregateOp(OperatorPtr child, const std::vector<ExprPtr>* group_by,
              const std::vector<AggregateSpec>* aggregates,
              AggStrategy strategy, size_t groups_hint,
              size_t batch_size = RowBatch::kDefaultCapacity,
              ExecControlPtr control = nullptr);

  Status Open() override;
  Result<size_t> Next(RowBatch* batch) override;
  Status Close() override { return child_->Close(); }

 private:
  Status ConsumeHash();
  Status ConsumeSort();
  /// Evaluates group key and aggregate arguments for one input row.
  Status EvalKeyAndArgs(const Row& input, Row* key, Row* args) const;

  OperatorPtr child_;
  const std::vector<ExprPtr>* group_by_;
  const std::vector<AggregateSpec>* aggregates_;
  /// Working-row index when the key/argument expression is a plain column
  /// reference (-1 otherwise): the per-row hot loop indexes the row
  /// directly instead of recursing through the evaluator.
  std::vector<int> key_cols_;
  std::vector<int> arg_cols_;
  AggStrategy strategy_;
  size_t groups_hint_;
  size_t batch_size_;
  ExecControlPtr control_;

  std::vector<Row> output_;
  size_t next_ = 0;
};

}  // namespace nodb

#endif  // NODB_EXEC_AGGREGATE_H_
