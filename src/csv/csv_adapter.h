#ifndef NODB_CSV_CSV_ADAPTER_H_
#define NODB_CSV_CSV_ADAPTER_H_

#include <memory>
#include <string>

#include "csv/dialect.h"
#include "raw/adapter_registry.h"
#include "raw/raw_source.h"

namespace nodb {

struct ParseKernels;

/// RawSourceAdapter over a delimiter-separated text file — the paper's
/// primary format. Records are newline-delimited lines; fields are located
/// by incremental tokenizing (forward, or backward when the dialect permits)
/// and converted with the CSV field parser. The schema must be declared by
/// the caller, as in the paper ("NoDB requires only the schema").
class CsvAdapter final : public RawSourceAdapter {
 public:
  /// `file` may be a pre-opened handle for `path` to adopt (else null).
  /// `kernels` selects the parsing-kernel table (null = ActiveKernels());
  /// pass &ScalarKernels() for the scalar reference path.
  static Result<std::unique_ptr<CsvAdapter>> Make(
      const std::string& path, Schema schema, CsvDialect dialect,
      std::unique_ptr<RandomAccessFile> file = nullptr,
      const ParseKernels* kernels = nullptr);

  std::string_view format_name() const override { return "csv"; }
  const RawTraits& traits() const override { return traits_; }
  const Schema& schema() const override { return schema_; }
  const std::string& path() const override { return path_; }
  const RandomAccessFile* file() const override { return file_.get(); }
  const CsvDialect& dialect() const { return dialect_; }

  Result<std::unique_ptr<RecordCursor>> OpenCursor() const override;
  Result<uint64_t> FindRecordBoundary(uint64_t offset) const override;

  uint32_t FindForward(const RecordRef& rec, int from_attr, uint32_t from_pos,
                       int to_attr, const PositionSink& sink) const override;
  int TokenizeRecord(const RecordRef& rec, int upto,
                     uint32_t* starts) const override;
  uint32_t FindBackward(const RecordRef& rec, int from_attr, uint32_t from_pos,
                        int to_attr, const PositionSink& sink) const override;
  uint32_t FieldEnd(const RecordRef& rec, int attr, uint32_t pos,
                    uint32_t next_attr_pos) const override;
  Result<Value> ParseField(const RecordRef& rec, int attr, uint32_t pos,
                           uint32_t end) const override;

 private:
  CsvAdapter(std::string path, Schema schema, CsvDialect dialect,
             std::unique_ptr<RandomAccessFile> file,
             const ParseKernels* kernels);

  std::string path_;
  Schema schema_;
  CsvDialect dialect_;
  std::unique_ptr<RandomAccessFile> file_;  // kept open across queries
  const ParseKernels* kernels_;             // never null
  RawTraits traits_;
};

/// Factory + sniffer ("csv"; extension match, else a weak plain-text
/// fallback so unlabelled delimited files still open).
std::unique_ptr<AdapterFactory> MakeCsvAdapterFactory();

}  // namespace nodb

#endif  // NODB_CSV_CSV_ADAPTER_H_
