#include <gtest/gtest.h>

#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace nodb {
namespace {

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

TEST(LexerTest, KeywordsFoldUpIdentsFoldDown) {
  auto tokens = Tokenize("Select Foo FROM Bar");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdent);
  EXPECT_EQ((*tokens)[1].text, "foo");
  EXPECT_TRUE((*tokens)[2].IsKeyword("FROM"));
  EXPECT_EQ((*tokens)[3].text, "bar");
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("42 3.5 1e6 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[1].type, TokenType::kFloat);
  EXPECT_EQ((*tokens)[2].type, TokenType::kFloat);
  EXPECT_EQ((*tokens)[3].type, TokenType::kString);
  EXPECT_EQ((*tokens)[3].text, "it's");
}

TEST(LexerTest, OperatorsAndComments) {
  auto tokens = Tokenize("a <= b <> c != d -- trailing\n >= e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsSymbol("<="));
  EXPECT_TRUE((*tokens)[3].IsSymbol("<>"));
  EXPECT_TRUE((*tokens)[5].IsSymbol("!="));
  EXPECT_TRUE((*tokens)[7].IsSymbol(">="));
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

TEST(ParserTest, MinimalSelect) {
  auto stmt = ParseSelect("SELECT a FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ((*stmt)->items.size(), 1u);
  EXPECT_EQ((*stmt)->from.size(), 1u);
  EXPECT_EQ((*stmt)->from[0].table, "t");
  EXPECT_EQ((*stmt)->where, nullptr);
}

TEST(ParserTest, SelectStar) {
  auto stmt = ParseSelect("SELECT * FROM t;");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE((*stmt)->select_star);
}

TEST(ParserTest, AliasesBothForms) {
  auto stmt = ParseSelect("SELECT a AS x, b y FROM t u");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items[0].alias, "x");
  EXPECT_EQ((*stmt)->items[1].alias, "y");
  EXPECT_EQ((*stmt)->from[0].alias, "u");
}

TEST(ParserTest, FullClauses) {
  auto stmt = ParseSelect(
      "SELECT a, SUM(b) AS s FROM t WHERE a > 1 AND b < 2 "
      "GROUP BY a ORDER BY s DESC, a ASC LIMIT 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_NE((*stmt)->where, nullptr);
  EXPECT_EQ((*stmt)->group_by.size(), 1u);
  ASSERT_EQ((*stmt)->order_by.size(), 2u);
  EXPECT_TRUE((*stmt)->order_by[0].desc);
  EXPECT_FALSE((*stmt)->order_by[1].desc);
  EXPECT_EQ(*(*stmt)->limit, 5);
}

TEST(ParserTest, JoinNormalizedIntoWhere) {
  auto a = ParseSelect("SELECT * FROM t1 JOIN t2 ON t1.a = t2.b");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->from.size(), 2u);
  ASSERT_NE((*a)->where, nullptr);
  EXPECT_EQ((*a)->where->op, "=");
  auto b = ParseSelect(
      "SELECT * FROM t1 INNER JOIN t2 ON a = b WHERE c = 1");
  ASSERT_TRUE(b.ok());
  // ON and WHERE merged with AND.
  EXPECT_EQ((*b)->where->op, "AND");
}

TEST(ParserTest, OperatorPrecedence) {
  // a + b * c parses as a + (b * c).
  auto stmt = ParseSelect("SELECT a + b * c FROM t");
  ASSERT_TRUE(stmt.ok());
  const ParsedExpr& e = *(*stmt)->items[0].expr;
  EXPECT_EQ(e.op, "+");
  EXPECT_EQ(e.right->op, "*");
  // OR binds looser than AND.
  auto cond = ParseSelect("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3");
  ASSERT_TRUE(cond.ok());
  EXPECT_EQ((*cond)->where->op, "OR");
}

TEST(ParserTest, PredicateForms) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b NOT IN (1, 2) "
      "AND c LIKE 'x%' AND d IS NOT NULL AND NOT e = 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
}

TEST(ParserTest, DateAndIntervalLiterals) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE d >= DATE '1994-01-01' "
      "AND d < DATE '1994-01-01' + INTERVAL '1' YEAR");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
}

TEST(ParserTest, CaseExpression) {
  auto stmt = ParseSelect(
      "SELECT SUM(CASE WHEN a = 1 THEN b ELSE 0 END) FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const ParsedExpr& agg = *(*stmt)->items[0].expr;
  EXPECT_EQ(agg.kind, ParsedExpr::Kind::kFuncCall);
  EXPECT_EQ(agg.args[0]->kind, ParsedExpr::Kind::kCase);
  EXPECT_EQ(agg.args[0]->whens.size(), 1u);
}

TEST(ParserTest, ExistsSubquery) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.x = t.a)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ((*stmt)->where->kind, ParsedExpr::Kind::kExists);
  EXPECT_EQ((*stmt)->where->subquery->from[0].table, "u");
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseSelect("SELECT").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());                 // missing FROM
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP a").ok());  // missing BY
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra garbage +").ok());
  EXPECT_FALSE(ParseSelect("SELECT CASE END FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE a LIKE 5").ok());
}

// ---------------------------------------------------------------------
// Binder
// ---------------------------------------------------------------------

class FakeCatalog : public TableProvider {
 public:
  FakeCatalog() {
    schemas_["t"] = Schema{{"a", TypeId::kInt64},
                           {"b", TypeId::kDouble},
                           {"s", TypeId::kString},
                           {"d", TypeId::kDate}};
    schemas_["u"] = Schema{{"x", TypeId::kInt64}, {"a", TypeId::kInt64}};
  }
  Result<const Schema*> GetTableSchema(const std::string& name) const override {
    auto it = schemas_.find(name);
    if (it == schemas_.end()) return Status::NotFound("no table " + name);
    return &it->second;
  }

 private:
  std::map<std::string, Schema> schemas_;
};

Result<std::unique_ptr<BoundQuery>> BindSql(const std::string& sql) {
  static FakeCatalog catalog;
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelect(sql));
  Binder binder(&catalog);
  return binder.Bind(*stmt);
}

TEST(BinderTest, ResolvesColumnsAndTypes) {
  auto q = BindSql("SELECT a, b, s FROM t WHERE a < 5");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ((*q)->working_width, 4);
  EXPECT_EQ((*q)->output_schema.column(0).type, TypeId::kInt64);
  EXPECT_EQ((*q)->output_schema.column(1).type, TypeId::kDouble);
  EXPECT_EQ((*q)->output_schema.column(2).type, TypeId::kString);
  EXPECT_FALSE((*q)->has_aggregation);
}

TEST(BinderTest, UnknownColumnAndTableRejected) {
  EXPECT_EQ(BindSql("SELECT nope FROM t").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(BindSql("SELECT a FROM nope").status().code(),
            StatusCode::kNotFound);
}

TEST(BinderTest, AmbiguousColumnRejected) {
  // `a` exists in both t and u.
  auto q = BindSql("SELECT a FROM t, u WHERE t.a = u.x");
  EXPECT_FALSE(q.ok());
  auto qualified = BindSql("SELECT t.a, u.a FROM t, u WHERE t.a = u.x");
  EXPECT_TRUE(qualified.ok()) << qualified.status();
}

TEST(BinderTest, QualifiedOffsetsAcrossTables) {
  auto q = BindSql("SELECT u.x FROM t, u WHERE t.a = u.a");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ((*q)->working_width, 6);
  // u.x is the 5th working column (offset 4).
  auto* col = static_cast<ColumnRefExpr*>((*q)->select_exprs[0].get());
  EXPECT_EQ(col->index, 4);
}

TEST(BinderTest, AggregateExtraction) {
  auto q = BindSql(
      "SELECT s, COUNT(*) AS n, SUM(b * 2) AS t2, SUM(b * 2) AS t3 "
      "FROM t GROUP BY s");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE((*q)->has_aggregation);
  // Identical aggregates are deduplicated: COUNT(*) + one SUM.
  EXPECT_EQ((*q)->aggregates.size(), 2u);
  EXPECT_EQ((*q)->group_by.size(), 1u);
  EXPECT_EQ((*q)->output_schema.num_columns(), 4);
}

TEST(BinderTest, NonGroupedColumnRejected) {
  auto q = BindSql("SELECT a, COUNT(*) FROM t GROUP BY s");
  EXPECT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("GROUP BY"), std::string::npos);
}

TEST(BinderTest, AggregateInWhereRejected) {
  EXPECT_FALSE(BindSql("SELECT a FROM t WHERE SUM(b) > 1").ok());
}

TEST(BinderTest, TypeErrors) {
  EXPECT_FALSE(BindSql("SELECT a FROM t WHERE s > 5").ok());
  EXPECT_FALSE(BindSql("SELECT s + 1 FROM t").ok());
  EXPECT_FALSE(BindSql("SELECT a FROM t WHERE a LIKE 'x%'").ok());
}

TEST(BinderTest, DateStringCoercion) {
  // String literal compared to a date column re-types as a date.
  auto q = BindSql("SELECT a FROM t WHERE d >= '1994-01-01'");
  ASSERT_TRUE(q.ok()) << q.status();
  auto bad = BindSql("SELECT a FROM t WHERE d >= '94/01/01'");
  EXPECT_FALSE(bad.ok());
}

TEST(BinderTest, OrderByAliasNameAndOrdinal) {
  auto by_alias = BindSql("SELECT a AS k FROM t ORDER BY k DESC");
  ASSERT_TRUE(by_alias.ok());
  EXPECT_TRUE((*by_alias)->order_by[0].desc);
  EXPECT_EQ((*by_alias)->order_by[0].select_index, 0);

  auto by_name = BindSql("SELECT a, b FROM t ORDER BY b");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ((*by_name)->order_by[0].select_index, 1);

  auto by_ordinal = BindSql("SELECT a, b FROM t ORDER BY 2");
  ASSERT_TRUE(by_ordinal.ok());
  EXPECT_EQ((*by_ordinal)->order_by[0].select_index, 1);

  EXPECT_FALSE(BindSql("SELECT a FROM t ORDER BY 7").ok());
}

TEST(BinderTest, OrderByAggregateExpression) {
  auto q = BindSql(
      "SELECT s, SUM(b) AS revenue FROM t GROUP BY s ORDER BY revenue DESC");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ((*q)->order_by[0].select_index, 1);
}

TEST(BinderTest, ExistsBecomesSemiJoin) {
  auto q = BindSql(
      "SELECT a FROM t WHERE a > 0 AND EXISTS "
      "(SELECT * FROM u WHERE x = t.a AND u.a < 3)");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ((*q)->semi_joins.size(), 1u);
  const BoundSemiJoin& sj = (*q)->semi_joins[0];
  EXPECT_FALSE(sj.anti);
  EXPECT_EQ(sj.table.table_name, "u");
  ASSERT_EQ(sj.outer_keys.size(), 1u);
  EXPECT_NE(sj.inner_filter, nullptr);
  EXPECT_NE((*q)->where, nullptr);  // a > 0 remains
}

TEST(BinderTest, NotExistsBecomesAntiJoin) {
  auto q = BindSql(
      "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE x = t.a)");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ((*q)->semi_joins.size(), 1u);
  EXPECT_TRUE((*q)->semi_joins[0].anti);
}

TEST(BinderTest, ExistsWithoutCorrelationRejected) {
  EXPECT_FALSE(
      BindSql("SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE x > 1)")
          .ok());
}

TEST(BinderTest, CaseTypeUnification) {
  auto q = BindSql(
      "SELECT SUM(CASE WHEN a = 1 THEN b ELSE 0 END) FROM t");
  ASSERT_TRUE(q.ok()) << q.status();
  // int ELSE unified with double THEN -> double aggregate.
  EXPECT_EQ((*q)->aggregates[0].arg->type, TypeId::kDouble);
}

TEST(BinderTest, ArithmeticOverAggregates) {
  // The Q14 shape: arithmetic combining two aggregate results.
  auto q = BindSql(
      "SELECT 100.0 * SUM(b) / SUM(a) AS pct FROM t");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ((*q)->aggregates.size(), 2u);
  EXPECT_EQ((*q)->output_schema.column(0).type, TypeId::kDouble);
}

TEST(BinderTest, SelectStarExpansion) {
  auto q = BindSql("SELECT * FROM t, u WHERE t.a = u.x");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->output_schema.num_columns(), 6);
}


// ---------------------------------------------------------------------
// Parse errors: every malformed statement must fail with a positioned,
// actionable InvalidArgument -- never crash or silently misparse
// ---------------------------------------------------------------------

TEST(ParserTest, UnterminatedStringLiteralErrors) {
  auto r = ParseSelect("SELECT a FROM t WHERE s = 'oops");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("unterminated"), std::string::npos)
      << r.status().ToString();
}

TEST(ParserTest, TrailingGarbageErrors) {
  auto r = ParseSelect("SELECT a FROM t extra garbage");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("trailing"), std::string::npos)
      << r.status().ToString();
}

TEST(ParserTest, IncompleteClausesError) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t ORDER BY").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP BY").ok());
  EXPECT_FALSE(ParseSelect("").ok());
}

TEST(ParserTest, ErrorMessagesCarryPosition) {
  auto r = ParseSelect("SELECT a FROM t LIMIT x");
  ASSERT_FALSE(r.ok());
  // "at <offset>" lets callers point at the offending token.
  EXPECT_NE(r.status().message().find("at 22"), std::string::npos)
      << r.status().ToString();
}

}  // namespace
}  // namespace nodb
