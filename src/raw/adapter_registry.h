#ifndef NODB_RAW_ADAPTER_REGISTRY_H_
#define NODB_RAW_ADAPTER_REGISTRY_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "csv/dialect.h"
#include "raw/raw_source.h"
#include "types/schema.h"
#include "util/result.h"

namespace nodb {

/// Options for Database::Open. Everything is optional: with the defaults the
/// registry sniffs the format and the adapter discovers the schema itself
/// (from a header, or by inspecting the first record). Formats that cannot
/// discover a schema (headerless CSV, as in the paper) require `schema`.
struct OpenOptions {
  /// Force a format by registry name ("csv", "fits", "jsonl"); empty means
  /// auto-detect from the file's name and first bytes.
  std::string format;
  /// Declared schema. Required for CSV; optional for JSON Lines (inferred
  /// from the first record when absent); ignored by FITS (the header wins).
  std::optional<Schema> schema;
  /// Syntax options for delimited-text formats.
  CsvDialect dialect;
  /// Per-table override of EngineConfig::scan_threads for scans of this
  /// raw source; 0 = use the engine default.
  int scan_threads = 0;
  /// Per-table override of EngineConfig::snapshot_dir (warm-restart
  /// snapshots, src/snapshot); empty = use the engine default.
  std::string snapshot_dir;
  /// Use the scalar reference parse path instead of the SWAR/SIMD kernels
  /// (see raw/parse_kernels.h). Database::Open ORs in
  /// EngineConfig::scalar_kernels; a -DNODB_FORCE_SCALAR_KERNELS build
  /// forces scalar regardless.
  bool scalar_kernels = false;
};

/// Creates adapters for one format and scores how likely an unknown file is
/// that format (the sniffer behind Database::Open's auto-detection).
class AdapterFactory {
 public:
  virtual ~AdapterFactory() = default;

  virtual std::string_view format_name() const = 0;

  /// Confidence in [0, 1] that `path` (whose first bytes are `head`) is this
  /// format. 0 means "certainly not"; magic-number matches should approach
  /// 1, extension matches sit in between, and content heuristics below that,
  /// so more specific evidence wins ties.
  virtual double Sniff(const std::string& path,
                       std::string_view head) const = 0;

  /// Creates the adapter. `file` may be null; when set it is an already-open
  /// read handle for `path` (left over from sniffing) that the adapter
  /// adopts instead of reopening the file.
  virtual Result<std::unique_ptr<RawSourceAdapter>> Create(
      const std::string& path, const OpenOptions& options,
      std::unique_ptr<RandomAccessFile> file) const = 0;
};

/// The set of raw formats the engine can open. Process-wide; the built-in
/// CSV, FITS and JSON Lines factories are registered on first use, and
/// callers (tests, embedders) may Register additional formats — that is the
/// whole point of the adapter API.
class AdapterRegistry {
 public:
  /// The process-wide registry, with built-in formats registered.
  static AdapterRegistry& Global();

  /// Registers a factory; a factory with the same format_name is replaced.
  void Register(std::unique_ptr<AdapterFactory> factory);

  /// Factory for an exact format name, or nullptr.
  const AdapterFactory* Find(std::string_view format_name) const;

  /// Sniffs every registered factory and returns the best-scoring one;
  /// InvalidArgument if no factory recognizes the file at all.
  Result<const AdapterFactory*> Detect(const std::string& path,
                                       std::string_view head) const;

  /// Registered format names, registration order.
  std::vector<std::string_view> formats() const;

 private:
  std::vector<std::unique_ptr<AdapterFactory>> factories_;
};

/// True if `path` ends with `ext` (case-insensitive), a helper for
/// extension-based sniffing.
bool PathHasExtension(std::string_view path, std::string_view ext);

}  // namespace nodb

#endif  // NODB_RAW_ADAPTER_REGISTRY_H_
