#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "csv/writer.h"
#include "engine/engines.h"
#include "fits/fits_writer.h"
#include "json/jsonl_writer.h"
#include "util/fs_util.h"
#include "util/rng.h"
#include "workload/micro.h"

namespace nodb {
namespace {

/// Parallel-vs-serial differential harness: a morsel-parallel scan must be
/// indistinguishable from the serial scan — same rows in the same order,
/// same statuses, same adaptive-structure end state where the contract
/// promises it (row counts, spine coverage) — for every engine variant,
/// raw format, thread count, and cold/warm phase. Morsel boundaries are
/// deliberately forced to tiny sizes so they land mid-record, mid-quoted
/// field, and mid-object, and the edge cases (empty file, one record,
/// more threads than records) get dedicated coverage.

Schema TestSchema() {
  return Schema{{"c0", TypeId::kInt64},
                {"c1", TypeId::kDouble},
                {"c2", TypeId::kString},
                {"c3", TypeId::kDate},
                {"c4", TypeId::kInt64}};
}

std::vector<Row> TestRows(int n) {
  static const char* kWords[] = {"ash", "birch", "cedar", "doum", "elm",
                                 "fir"};
  Rng rng(2026);
  std::vector<Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    Row row;
    row.push_back(rng.NextBool(0.05) ? Value::Null(TypeId::kInt64)
                                     : Value::Int64(rng.Uniform(0, 20)));
    row.push_back(rng.NextBool(0.05)
                      ? Value::Null(TypeId::kDouble)
                      : Value::Double(
                            static_cast<double>(rng.Uniform(0, 1000)) / 4.0));
    row.push_back(Value::String(kWords[rng.Next() % 6]));
    row.push_back(Value::Date(static_cast<int32_t>(rng.Uniform(8000, 9000))));
    row.push_back(Value::Int64(rng.Uniform(0, 8)));
    rows.push_back(std::move(row));
  }
  return rows;
}

void WriteCsvFile(const std::string& path, const std::vector<Row>& rows) {
  auto out = WritableFile::Create(path);
  ASSERT_TRUE(out.ok());
  CsvWriter writer(out->get(), CsvDialect{});
  for (const Row& row : rows) ASSERT_TRUE(writer.WriteRow(row).ok());
  ASSERT_TRUE(writer.Finish().ok());
  ASSERT_TRUE((*out)->Close().ok());
}

void WriteJsonlFile(const std::string& path, const Schema& schema,
                    const std::vector<Row>& rows) {
  auto out = WritableFile::Create(path);
  ASSERT_TRUE(out.ok());
  JsonlWriter writer(out->get(), &schema);
  for (const Row& row : rows) ASSERT_TRUE(writer.WriteRow(row).ok());
  ASSERT_TRUE(writer.Finish().ok());
  ASSERT_TRUE((*out)->Close().ok());
}

/// The workload: projections, selections, aggregation, grouping, ordering,
/// limits — everything whose row order or value content could betray a
/// morsel boundary bug.
const char* kQueries[] = {
    "SELECT c0, c2 FROM t",
    "SELECT c0, c1, c4 FROM t WHERE c0 < 10",
    "SELECT COUNT(*) AS n, SUM(c1) AS s, MIN(c3) AS lo FROM t WHERE c4 >= 5",
    "SELECT c2, COUNT(*) AS n, SUM(c0) AS s FROM t GROUP BY c2",
    "SELECT c0, c3, c2 FROM t ORDER BY c0, c3, c2 LIMIT 17",
    "SELECT c1 FROM t WHERE c2 = 'elm' AND c0 >= 3",
    "SELECT COUNT(c1) AS non_null FROM t",
};

/// An engine of the given system over `path`, with `threads` scan threads
/// and morsels small enough that even this test's small files split into
/// dozens of morsels.
std::unique_ptr<Database> MakeScanEngine(SystemUnderTest sut,
                                         const std::string& path,
                                         const Schema& schema, int threads) {
  EngineConfig config = EngineConfig::ForSystem(sut);
  config.scan_threads = threads;
  config.scan_morsel_bytes = threads > 1 ? 1024 : 0;
  auto db = std::make_unique<Database>(config);
  OpenOptions options;
  options.schema = schema;
  EXPECT_TRUE(db->Open("t", path, options).ok());
  return db;
}

TEST(ParallelScanDifferentialTest, AllEngineVariantsAgreeWithSerial) {
  TempDir dir;
  std::vector<Row> rows = TestRows(700);
  Schema schema = TestSchema();
  std::string csv_path = dir.File("t.csv");
  std::string jsonl_path = dir.File("t.jsonl");
  WriteCsvFile(csv_path, rows);
  WriteJsonlFile(jsonl_path, schema, rows);

  // The 13 variants of the differential suite: every in-situ system over
  // CSV and over JSON Lines, plus the loaded baselines (which have no raw
  // scan to parallelize — they pin down that scan_threads is a no-op for
  // them).
  struct Variant {
    std::string name;
    SystemUnderTest sut;
    const std::string* path;  // null = loaded from CSV
  };
  std::vector<Variant> variants;
  for (SystemUnderTest sut :
       {SystemUnderTest::kPostgresRawPMC, SystemUnderTest::kPostgresRawPM,
        SystemUnderTest::kPostgresRawC, SystemUnderTest::kPostgresRawBaseline,
        SystemUnderTest::kExternalFiles}) {
    variants.push_back({std::string(SystemUnderTestName(sut)), sut,
                        &csv_path});
    variants.push_back({std::string(SystemUnderTestName(sut)) + " [jsonl]",
                        sut, &jsonl_path});
  }
  for (SystemUnderTest sut :
       {SystemUnderTest::kPostgreSQL, SystemUnderTest::kDbmsX,
        SystemUnderTest::kMySQL}) {
    variants.push_back({std::string(SystemUnderTestName(sut)), sut, nullptr});
  }
  ASSERT_EQ(variants.size(), 13u);

  constexpr int kRounds = 2;  // cold, then warm (pmap/cache/stats populated)
  for (const Variant& variant : variants) {
    // Serial reference engine for this variant, plus one engine per thread
    // count; each engine keeps its adaptive state across the whole
    // workload, so round 2 runs warm.
    std::unique_ptr<Database> reference;
    std::vector<std::pair<int, std::unique_ptr<Database>>> parallel;
    if (variant.path != nullptr) {
      reference = MakeScanEngine(variant.sut, *variant.path, schema, 1);
      for (int threads : {2, 4, 8}) {
        parallel.emplace_back(
            threads, MakeScanEngine(variant.sut, *variant.path, schema,
                                    threads));
      }
    } else {
      EngineConfig config = EngineConfig::ForSystem(variant.sut);
      reference = std::make_unique<Database>(config);
      ASSERT_TRUE(reference->LoadCsv("t", csv_path, schema).ok());
      for (int threads : {2, 4, 8}) {
        EngineConfig par_config = EngineConfig::ForSystem(variant.sut);
        par_config.scan_threads = threads;
        auto db = std::make_unique<Database>(par_config);
        ASSERT_TRUE(db->LoadCsv("t", csv_path, schema).ok());
        parallel.emplace_back(threads, std::move(db));
      }
    }

    for (int round = 0; round < kRounds; ++round) {
      for (const char* sql : kQueries) {
        auto expected = reference->Execute(sql);
        ASSERT_TRUE(expected.ok())
            << variant.name << " serial failed on: " << sql << "\n"
            << expected.status();
        // Unsorted canonical: the parallel scan must reproduce the serial
        // row *order*, not just the row set.
        std::string want = expected->Canonical(/*sorted=*/false);
        for (auto& [threads, db] : parallel) {
          auto got = db->Execute(sql);
          ASSERT_TRUE(got.ok())
              << variant.name << " x" << threads << " failed on: " << sql
              << "\n" << got.status();
          EXPECT_EQ(got->Canonical(/*sorted=*/false), want)
              << variant.name << " x" << threads << " round " << round
              << " diverged on: " << sql;
        }
      }
    }

    // End-state parity where the contract promises it: a completed scan
    // pins the row count (and the spine, where a positional map exists)
    // regardless of how many threads produced it.
    for (auto& [threads, db] : parallel) {
      TableRuntime* serial_rt = reference->runtime("t");
      TableRuntime* rt = db->runtime("t");
      EXPECT_EQ(static_cast<double>(rt->known_row_count),
                static_cast<double>(serial_rt->known_row_count))
          << variant.name << " x" << threads;
      if (rt->pmap != nullptr && serial_rt->pmap != nullptr) {
        EXPECT_EQ(rt->pmap->total_tuples(), serial_rt->pmap->total_tuples());
        EXPECT_EQ(rt->pmap->contiguous_rows_known(),
                  serial_rt->pmap->contiguous_rows_known());
      }
    }
  }
}

TEST(ParallelScanDifferentialTest, FitsIndexMorselsAgreeWithSerial) {
  TempDir dir;
  std::string path = dir.File("t.fits");
  Schema schema{{"id", TypeId::kInt64},
                {"name", TypeId::kString},
                {"score", TypeId::kDouble}};
  {
    auto writer = FitsWriter::Create(path, schema, {8});
    ASSERT_TRUE(writer.ok()) << writer.status();
    Rng rng(7);
    for (int i = 0; i < 3000; ++i) {
      Row row{Value::Int64(rng.Uniform(0, 100)),
              Value::String("s" + std::to_string(i % 13)),
              Value::Double(static_cast<double>(rng.Uniform(0, 1000)) / 8.0)};
      ASSERT_TRUE((*writer)->Append(row).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }

  auto serial = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(serial->RegisterFits("t", path).ok());
  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  config.scan_threads = 4;
  config.scan_morsel_bytes = 4096;  // a few hundred fixed-stride rows each
  Database parallel(config);
  ASSERT_TRUE(parallel.RegisterFits("t", path).ok());

  const char* queries[] = {
      "SELECT id, name FROM t WHERE score >= 60.0",
      "SELECT name, COUNT(*) AS n, SUM(id) AS s FROM t GROUP BY name",
      "SELECT id, name FROM t ORDER BY id DESC, name LIMIT 25",
  };
  for (int round = 0; round < 2; ++round) {
    for (const char* sql : queries) {
      auto want = serial->Execute(sql);
      auto got = parallel.Execute(sql);
      ASSERT_TRUE(want.ok()) << want.status();
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_EQ(got->Canonical(false), want->Canonical(false))
          << "round " << round << ": " << sql;
    }
  }
  EXPECT_EQ(static_cast<double>(parallel.runtime("t")->known_row_count),
            3000.0);
}

TEST(ParallelScanDifferentialTest, ConcurrentOpenCursorsShareOnePool) {
  // Worker tasks exit when their scan's reorder window fills instead of
  // parking on a pool thread, so any number of parallel cursors can be
  // open at once — including from a single consumer thread interleaving
  // them (regression: long-lived blocking workers deadlocked the second
  // cursor on a saturated pool).
  TempDir dir;
  std::vector<Row> rows = TestRows(600);
  Schema schema = TestSchema();
  std::string t_path = dir.File("t.csv");
  std::string u_path = dir.File("u.csv");
  WriteCsvFile(t_path, rows);
  WriteCsvFile(u_path, rows);

  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  config.scan_threads = 2;
  config.scan_morsel_bytes = 512;
  Database db(config);
  OpenOptions options;
  options.schema = schema;
  ASSERT_TRUE(db.Open("t", t_path, options).ok());
  ASSERT_TRUE(db.Open("u", u_path, options).ok());

  // Cursor A starts and stalls mid-stream; cursor B must still run to
  // completion on the same pool; then A resumes and finishes.
  auto a = db.Query("SELECT c0, c4 FROM t");
  ASSERT_TRUE(a.ok()) << a.status();
  RowBatch a_batch = a->MakeBatch();
  auto a_n = a->Next(&a_batch);
  ASSERT_TRUE(a_n.ok()) << a_n.status();
  size_t a_rows = *a_n;

  auto b = db.Query("SELECT c0 FROM u");
  ASSERT_TRUE(b.ok()) << b.status();
  RowBatch b_batch = b->MakeBatch();
  size_t b_rows = 0;
  while (true) {
    auto n = b->Next(&b_batch);
    ASSERT_TRUE(n.ok()) << n.status();
    if (*n == 0) break;
    b_rows += *n;
  }
  EXPECT_EQ(b_rows, rows.size());

  while (true) {
    auto n = a->Next(&a_batch);
    ASSERT_TRUE(n.ok()) << n.status();
    if (*n == 0) break;
    a_rows += *n;
  }
  EXPECT_EQ(a_rows, rows.size());

  // Joins build one parallel scan while another is mid-query; the answer
  // must match a serial engine's.
  auto serial = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(serial->RegisterCsv("t", t_path, schema).ok());
  ASSERT_TRUE(serial->RegisterCsv("u", u_path, schema).ok());
  const char* join_sql =
      "SELECT COUNT(*) AS n FROM t JOIN u ON t.c0 = u.c0 WHERE t.c4 >= 4";
  auto want = serial->Execute(join_sql);
  ASSERT_TRUE(want.ok()) << want.status();
  auto got = db.Execute(join_sql);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->Canonical(false), want->Canonical(false));
}

// ---------------------------------------------------------------------
// Morsel-boundary edge cases
// ---------------------------------------------------------------------

/// Serial and parallel engines over the same raw bytes must agree on every
/// query; `morsel_bytes` is forced tiny so boundaries land mid-everything.
void ExpectParallelAgreesOnFile(const std::string& path, const Schema& schema,
                                const std::vector<const char*>& queries,
                                CsvDialect dialect = CsvDialect{}) {
  auto serial = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  OpenOptions serial_options;
  serial_options.schema = schema;
  serial_options.dialect = dialect;
  ASSERT_TRUE(serial->Open("t", path, serial_options).ok());

  for (uint64_t morsel_bytes : {3ull, 17ull, 64ull, 4096ull}) {
    for (int threads : {2, 8}) {
      EngineConfig config =
          EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
      config.scan_threads = threads;
      config.scan_morsel_bytes = morsel_bytes;
      Database parallel(config);
      OpenOptions options;
      options.schema = schema;
      options.dialect = dialect;
      ASSERT_TRUE(parallel.Open("t", path, options).ok());
      for (const char* sql : queries) {
        for (int round = 0; round < 2; ++round) {
          auto want = serial->Execute(sql);
          auto got = parallel.Execute(sql);
          ASSERT_TRUE(want.ok()) << want.status();
          ASSERT_TRUE(got.ok())
              << "threads=" << threads << " morsel=" << morsel_bytes << ": "
              << got.status();
          EXPECT_EQ(got->Canonical(false), want->Canonical(false))
              << "threads=" << threads << " morsel=" << morsel_bytes
              << " round=" << round << ": " << sql;
        }
      }
    }
  }
}

TEST(MorselBoundaryTest, BoundaryMidQuotedField) {
  TempDir dir;
  std::string path = dir.File("t.csv");
  // Quoted fields full of delimiters, quotes and '\r' — any 3-byte morsel
  // boundary lands inside one. (Embedded newlines are outside the dialect:
  // records are newline-framed before quoting applies.)
  ASSERT_TRUE(WriteStringToFile(
                  path,
                  "1,\"a,b\"\"c,d\",10\n"
                  "2,\",,,,\",20\n"
                  "3,\"unterminated,but quoted\",30\n"
                  "4,plain,40\n"
                  "5,\"x\",50\n")
                  .ok());
  CsvDialect dialect;
  dialect.quoting = true;
  Schema schema{{"id", TypeId::kInt64},
                {"text", TypeId::kString},
                {"v", TypeId::kInt64}};
  ExpectParallelAgreesOnFile(path, schema,
                             {"SELECT id, text, v FROM t",
                              "SELECT SUM(v) AS s FROM t WHERE id >= 2",
                              "SELECT text FROM t WHERE v = 20"},
                             dialect);
}

TEST(MorselBoundaryTest, BoundaryMidJsonlRecord) {
  TempDir dir;
  std::string path = dir.File("t.jsonl");
  // Keys out of order, nested values, escapes with embedded "\\n" text —
  // boundaries land mid-object, mid-string, mid-escape.
  ASSERT_TRUE(WriteStringToFile(
                  path,
                  "{\"id\":1,\"name\":\"line\\nbreak\",\"v\":1.5}\n"
                  "{\"v\":2.5,\"id\":2,\"name\":\"b,r{ace}\"}\n"
                  "{\"name\":\"q\\\"uote\",\"extra\":{\"nested\":[1,2]},"
                  "\"id\":3,\"v\":3.5}\n"
                  "{\"id\":4,\"v\":4.5}\n")
                  .ok());
  Schema schema{{"id", TypeId::kInt64},
                {"name", TypeId::kString},
                {"v", TypeId::kDouble}};
  ExpectParallelAgreesOnFile(path, schema,
                             {"SELECT id, name, v FROM t",
                              "SELECT COUNT(name) AS n FROM t",
                              "SELECT v FROM t WHERE id >= 2"});
}

TEST(MorselBoundaryTest, EmptyOneRecordAndThreadsExceedRecords) {
  TempDir dir;
  Schema schema{{"a", TypeId::kInt64}, {"b", TypeId::kString}};

  // Empty file.
  std::string empty = dir.File("empty.csv");
  ASSERT_TRUE(WriteStringToFile(empty, "").ok());
  ExpectParallelAgreesOnFile(empty, schema,
                             {"SELECT COUNT(*) AS n FROM t",
                              "SELECT a, b FROM t"});

  // One record (with and without trailing newline).
  std::string one = dir.File("one.csv");
  ASSERT_TRUE(WriteStringToFile(one, "7,seven\n").ok());
  ExpectParallelAgreesOnFile(one, schema, {"SELECT a, b FROM t"});
  std::string ragged = dir.File("ragged.csv");
  ASSERT_TRUE(WriteStringToFile(ragged, "7,seven\n8,eight").ok());
  ExpectParallelAgreesOnFile(ragged, schema,
                             {"SELECT a, b FROM t",
                              "SELECT COUNT(*) AS n FROM t"});

  // 8 threads over 3 records: most workers find no morsel to claim.
  std::string tiny = dir.File("tiny.csv");
  ASSERT_TRUE(WriteStringToFile(tiny, "1,x\n2,y\n3,z\n").ok());
  ExpectParallelAgreesOnFile(tiny, schema,
                             {"SELECT a, b FROM t",
                              "SELECT SUM(a) AS s FROM t"});
}

TEST(MorselBoundaryTest, KernelParallelAgreesWithScalarSerial) {
  // Parse kernels and morsel parallelism composed: a parallel scan running
  // the active SWAR/SIMD kernels must match a serial scan pinned to the
  // scalar reference kernels, byte for byte, cold and warm — with morsels
  // small enough to land mid-record and mid-quoted-field.
  TempDir dir;
  std::vector<Row> rows = TestRows(500);
  Schema schema = TestSchema();
  std::string csv_path = dir.File("t.csv");
  std::string jsonl_path = dir.File("t.jsonl");
  WriteCsvFile(csv_path, rows);
  WriteJsonlFile(jsonl_path, schema, rows);

  for (const std::string* path : {&csv_path, &jsonl_path}) {
    EngineConfig serial_config =
        EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
    serial_config.scalar_kernels = true;
    Database serial(serial_config);
    OpenOptions serial_options;
    serial_options.schema = schema;
    ASSERT_TRUE(serial.Open("t", *path, serial_options).ok());

    for (int threads : {2, 8}) {
      EngineConfig config =
          EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
      config.scan_threads = threads;
      config.scan_morsel_bytes = 96;
      Database parallel(config);
      OpenOptions options;
      options.schema = schema;
      ASSERT_TRUE(parallel.Open("t", *path, options).ok());
      for (int round = 0; round < 2; ++round) {
        for (const char* sql : kQueries) {
          auto want = serial.Execute(sql);
          auto got = parallel.Execute(sql);
          ASSERT_TRUE(want.ok()) << want.status();
          ASSERT_TRUE(got.ok())
              << *path << " x" << threads << ": " << got.status();
          EXPECT_EQ(got->Canonical(false), want->Canonical(false))
              << *path << " x" << threads << " round " << round << ": "
              << sql;
        }
      }
    }
  }
}

TEST(MorselBoundaryTest, ParseErrorSurfacesIdenticallyMidFile) {
  TempDir dir;
  std::string path = dir.File("t.csv");
  std::string content;
  for (int i = 0; i < 200; ++i) content += std::to_string(i) + ",ok\n";
  content += "boom,bad\n";  // unconvertible int64 cell
  for (int i = 0; i < 200; ++i) content += std::to_string(i) + ",tail\n";
  ASSERT_TRUE(WriteStringToFile(path, content).ok());
  Schema schema{{"a", TypeId::kInt64}, {"b", TypeId::kString}};

  auto serial = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(serial->RegisterCsv("t", path, schema).ok());
  auto want = serial->Execute("SELECT a FROM t");
  ASSERT_FALSE(want.ok());

  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  config.scan_threads = 4;
  config.scan_morsel_bytes = 256;
  Database parallel(config);
  ASSERT_TRUE(parallel.RegisterCsv("t", path, schema).ok());
  auto got = parallel.Execute("SELECT a FROM t");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), want.status().code()) << got.status();
  // Untouched columns keep working, and the failure is not sticky — same
  // contract as serial.
  EXPECT_TRUE(parallel.Execute("SELECT b FROM t").ok());
}

// ---------------------------------------------------------------------
// Early Close() byte budget
// ---------------------------------------------------------------------

TEST(ParallelEarlyCloseTest, CloseAfterFirstBatchBoundsBytesRead) {
  TempDir dir;
  MicroDataSpec spec;
  spec.rows = 120000;
  spec.cols = 5;
  std::string path = dir.File("wide.csv");
  ASSERT_TRUE(GenerateWideCsv(path, spec).ok());

  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  config.scan_threads = 4;
  config.scan_morsel_bytes = 128 * 1024;
  Database db(config);
  ASSERT_TRUE(db.RegisterCsv("t", path, MicroSchema(spec)).ok());
  const RandomAccessFile* file = db.runtime("t")->adapter->file();
  const uint64_t file_size = file->size();
  ASSERT_GT(file_size, 2u * 1024 * 1024);

  auto cursor = db.Query("SELECT a1 FROM t");
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  RowBatch batch = cursor->MakeBatch();
  auto n = cursor->Next(&batch);
  ASSERT_TRUE(n.ok()) << n.status();
  ASSERT_GT(*n, 0u);
  ASSERT_TRUE(cursor->Close().ok());

  // Workers prefetch at most the reorder window of morsels beyond the
  // merge point, so an early Close leaves the bulk of the file unread:
  // bound = (window + merged) morsels + the boundary probes.
  const uint64_t after_close = file->bytes_read();
  EXPECT_LT(after_close, file_size / 2)
      << "parallel scan must not race ahead of the consumer unboundedly";
  // Close joined the workers: the byte count is final.
  EXPECT_EQ(file->bytes_read(), after_close);

  // LIMIT drives the same path through the executor.
  const uint64_t before_limit = file->bytes_read();
  auto limited = db.Execute("SELECT a1 FROM t LIMIT 5");
  ASSERT_TRUE(limited.ok()) << limited.status();
  EXPECT_EQ(limited->rows.size(), 5u);
  EXPECT_LT(file->bytes_read() - before_limit, file_size / 2);
}

}  // namespace
}  // namespace nodb
