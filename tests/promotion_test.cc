// Workload-driven auto-promotion (src/adaptive): the policy as a pure
// function, the access accounting the scans feed it, the promoted tier's
// byte-identical serving with zero raw-file reads, the shared byte budget
// with the column cache (no double residency), the loader/scan ragged-row
// unification, and access-counter persistence across snapshot versions.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "adaptive/promotion_policy.h"
#include "engine/engines.h"
#include "snapshot/snapshot.h"
#include "storage/loader.h"
#include "util/fs_util.h"
#include "workload/micro.h"

namespace nodb {
namespace {

// ------------------------------------------------------------------
// Policy unit tests (PlanPromotions is deterministic and file-free)
// ------------------------------------------------------------------

ColumnPromotionInput Col(int attr, uint64_t scans, uint64_t work,
                         uint64_t bytes) {
  ColumnPromotionInput c;
  c.attr = attr;
  c.scans = scans;
  c.parse_work = work;
  c.est_bytes = bytes;
  return c;
}

ColumnPromotionInput Promoted(int attr, uint64_t bytes, uint64_t served,
                              uint64_t served_mark) {
  ColumnPromotionInput c;
  c.attr = attr;
  c.promoted = true;
  c.est_bytes = bytes;
  c.served_rows = served;
  c.served_mark = served_mark;
  return c;
}

TEST(PromotionPolicyTest, MinScansGatesCandidates) {
  PromotionConfig cfg;
  cfg.min_scans = 3;
  std::vector<ColumnPromotionInput> cols = {
      Col(0, 2, 999999, 100),  // plenty of work but too few scans
      Col(1, 3, 1000, 100),
  };
  PromotionPlan plan = PlanPromotions(cols, 0, UINT64_MAX, cfg);
  EXPECT_EQ(plan.promote, std::vector<int>({1}));
  EXPECT_TRUE(plan.demote.empty());
}

TEST(PromotionPolicyTest, RanksByWorkPerByteAndCapsPerCycle) {
  PromotionConfig cfg;
  cfg.min_scans = 1;
  cfg.max_columns_per_cycle = 1;
  std::vector<ColumnPromotionInput> cols = {
      Col(0, 5, 1000, 1000),  // score 1.0
      Col(1, 5, 4000, 1000),  // score 4.0 — wins
      Col(2, 5, 2000, 1000),  // score 2.0
  };
  PromotionPlan plan = PlanPromotions(cols, 0, UINT64_MAX, cfg);
  EXPECT_EQ(plan.promote, std::vector<int>({1}));

  cfg.max_columns_per_cycle = 2;
  plan = PlanPromotions(cols, 0, UINT64_MAX, cfg);
  EXPECT_EQ(plan.promote, std::vector<int>({1, 2}));
}

TEST(PromotionPolicyTest, WorkMarkConsumesObservedWork) {
  PromotionConfig cfg;
  cfg.min_scans = 1;
  ColumnPromotionInput stale = Col(0, 10, 5000, 100);
  stale.work_mark = 5000;  // everything already judged at the last cycle
  PromotionPlan plan = PlanPromotions({stale}, 0, UINT64_MAX, cfg);
  EXPECT_TRUE(plan.promote.empty());

  stale.work_mark = 4000;  // 1000 fresh work since
  plan = PlanPromotions({stale}, 0, UINT64_MAX, cfg);
  EXPECT_EQ(plan.promote, std::vector<int>({0}));
}

TEST(PromotionPolicyTest, DemotesColdColumnsToFitBudgetKeepsHotOnes) {
  PromotionConfig cfg;
  cfg.min_scans = 1;
  std::vector<ColumnPromotionInput> cols = {
      Promoted(0, 600, 10, 10),  // cold: no promoted reads since last cycle
      Promoted(1, 600, 20, 10),  // hot
      Col(2, 5, 5000, 500),
  };
  PromotionPlan plan = PlanPromotions(cols, /*promoted_bytes_now=*/1200,
                                      /*budget_bytes=*/1500, cfg);
  EXPECT_EQ(plan.demote, std::vector<int>({0}));
  EXPECT_EQ(plan.promote, std::vector<int>({2}));
}

TEST(PromotionPolicyTest, UnfittableCandidateIsSkippedNotQueued) {
  PromotionConfig cfg;
  cfg.min_scans = 1;
  std::vector<ColumnPromotionInput> cols = {
      Col(0, 5, 5000, 2000),  // bigger than the whole budget
  };
  PromotionPlan plan = PlanPromotions(cols, 0, /*budget_bytes=*/1000, cfg);
  EXPECT_TRUE(plan.promote.empty());
}

// ------------------------------------------------------------------
// Engine-level behaviour
// ------------------------------------------------------------------

class PromotionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.rows = 10000;  // 3 stripes at the default 4096 tuples_per_chunk
    spec_.cols = 6;
    spec_.seed = 7;
    csv_ = dir_.File("t.csv");
    ASSERT_TRUE(GenerateWideCsv(csv_, spec_).ok());
  }

  EngineConfig PromoConfig(SystemUnderTest sut) {
    EngineConfig cfg = EngineConfig::ForSystem(sut);
    cfg.promotion.enabled = true;
    cfg.promotion.min_scans = 2;
    return cfg;
  }

  std::unique_ptr<Database> OpenDb(const EngineConfig& cfg) {
    auto db = std::make_unique<Database>(cfg);
    EXPECT_TRUE(db->RegisterCsv("t", csv_, MicroSchema(spec_)).ok());
    return db;
  }

  static std::string Canonical(Database* db, const std::string& sql) {
    auto r = db->Execute(sql);
    if (!r.ok()) return "<error: " + r.status().ToString() + ">";
    return r->Canonical(/*sorted=*/true);
  }

  static TableInfo InfoOf(Database* db) {
    for (const TableInfo& info : db->ListTables()) {
      if (info.name == "t") return info;
    }
    return TableInfo{};
  }

  TempDir dir_;
  MicroDataSpec spec_;
  std::string csv_;
};

TEST_F(PromotionTest, ScansFeedAccessCounters) {
  auto db = OpenDb(PromoConfig(SystemUnderTest::kPostgresRawPMC));
  const std::string sql = "SELECT SUM(a2) AS s FROM t WHERE a1 >= 0";
  ASSERT_FALSE(Canonical(db.get(), sql).empty());
  ColumnAccessTracker* tracker = db->runtime("t")->access.get();
  ASSERT_NE(tracker, nullptr);

  ColumnAccessCounters a1 = tracker->Snapshot(0);
  EXPECT_EQ(a1.scans, 1u);
  EXPECT_EQ(a1.rows_parsed, spec_.rows);  // cold scan converts every value
  EXPECT_GT(a1.bytes_parsed, 0u);
  EXPECT_EQ(tracker->Snapshot(2).scans, 0u);  // a3 never requested

  // The second scan is served from the cache: no new conversions.
  ASSERT_FALSE(Canonical(db.get(), sql).empty());
  ColumnAccessCounters again = tracker->Snapshot(0);
  EXPECT_EQ(again.scans, 2u);
  EXPECT_EQ(again.rows_parsed, spec_.rows);
  EXPECT_EQ(again.rows_from_cache, spec_.rows);
}

TEST_F(PromotionTest, RepeatedQueryPromotesAndServesWithZeroFileBytes) {
  auto db = OpenDb(PromoConfig(SystemUnderTest::kPostgresRawPMC));
  const std::string sql = "SELECT SUM(a2) AS s FROM t WHERE a1 < 500000000";
  const std::string expected = Canonical(db.get(), sql);
  ASSERT_EQ(expected.find("<error"), std::string::npos) << expected;
  ASSERT_EQ(Canonical(db.get(), sql), expected);
  ASSERT_EQ(Canonical(db.get(), sql), expected);

  auto report = db->RunPromotionCycle("t");
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->status.ok()) << report->status;
  auto promoted_has = [&](int attr) {
    return std::find(report->promoted.begin(), report->promoted.end(),
                     attr) != report->promoted.end();
  };
  EXPECT_TRUE(promoted_has(0)) << "a1 (WHERE) should be promoted";
  EXPECT_TRUE(promoted_has(1)) << "a2 (SUM) should be promoted";
  EXPECT_GT(report->promoted_bytes, 0u);

  // The same query answers byte-identically and reads zero raw-file bytes.
  const uint64_t bytes_before = InfoOf(db.get()).bytes_read;
  EXPECT_EQ(Canonical(db.get(), sql), expected);
  TableInfo info = InfoOf(db.get());
  EXPECT_EQ(info.bytes_read, bytes_before);
  EXPECT_EQ(info.promoted_bytes, report->promoted_bytes);
  EXPECT_GE(info.promotions, 2u);

  ColumnAccessTracker* tracker = db->runtime("t")->access.get();
  EXPECT_GE(tracker->Snapshot(0).rows_from_promoted, spec_.rows);
  EXPECT_GE(tracker->Snapshot(1).rows_from_promoted, spec_.rows);

  // A second cycle with no fresh raw work has nothing left to promote.
  auto idle = db->RunPromotionCycle("t");
  ASSERT_TRUE(idle.ok());
  EXPECT_TRUE(idle->promoted.empty());
}

TEST_F(PromotionTest, PromotionServesWithoutPositionalMapOrCache) {
  // The straw-man in-situ engine has no auxiliary structures at all; the
  // promoted tier must stand on its own (total tuples come from the store,
  // the lazy seek never resolves).
  auto db = OpenDb(PromoConfig(SystemUnderTest::kPostgresRawBaseline));
  ASSERT_EQ(db->runtime("t")->pmap, nullptr);
  ASSERT_EQ(db->runtime("t")->cache, nullptr);
  const std::string sql = "SELECT SUM(a3) AS s FROM t WHERE a1 < 300000000";
  const std::string expected = Canonical(db.get(), sql);
  ASSERT_EQ(Canonical(db.get(), sql), expected);

  auto report = db->RunPromotionCycle("t");
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->status.ok()) << report->status;
  ASSERT_FALSE(report->promoted.empty());

  const uint64_t bytes_before = InfoOf(db.get()).bytes_read;
  EXPECT_EQ(Canonical(db.get(), sql), expected);
  EXPECT_EQ(InfoOf(db.get()).bytes_read, bytes_before);
}

TEST_F(PromotionTest, PromotionReleasesCacheChunksAndSharesBudget) {
  EngineConfig cfg = PromoConfig(SystemUnderTest::kPostgresRawPMC);
  cfg.cache_budget_bytes = 16u << 20;
  auto db = OpenDb(cfg);
  const std::string sql = "SELECT SUM(a1) AS s, SUM(a2) AS t FROM t";
  ASSERT_FALSE(Canonical(db.get(), sql).empty());
  ASSERT_FALSE(Canonical(db.get(), sql).empty());

  ColumnCache* cache = db->runtime("t")->cache.get();
  ASSERT_NE(cache, nullptr);
  ASSERT_GT(cache->memory_bytes(), 0u);  // a1/a2 chunks cached by the scans

  auto report = db->RunPromotionCycle("t");
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(report->status.ok()) << report->status;
  ASSERT_FALSE(report->promoted.empty());

  // No double residency: the promoted columns' cache chunks were released
  // and the promoted bytes are reserved out of the cache budget.
  EXPECT_GT(report->cache_released_bytes, 0u);
  EXPECT_GT(cache->counters().released, 0u);
  EXPECT_EQ(cache->reserved_bytes(), report->promoted_bytes);
  EXPECT_LE(cache->memory_bytes() + cache->reserved_bytes(),
            cfg.cache_budget_bytes);
  for (int a : report->promoted) {
    EXPECT_EQ(cache->Get(0, a), nullptr)
        << "attr " << a << " still cache-resident after promotion";
  }

  // Answers unchanged afterwards.
  EXPECT_EQ(Canonical(db.get(), sql), Canonical(db.get(), sql));
}

TEST_F(PromotionTest, ColdPromotedColumnsAreDemotedUnderBudgetPressure) {
  EngineConfig cfg = PromoConfig(SystemUnderTest::kPostgresRawPMC);
  cfg.promotion.min_scans = 1;
  // Budget fits one promoted column (10000 rows x sizeof(Value) ~ 480 KB)
  // but not two, so a newly hot column can only be admitted by evicting
  // the cold incumbent.
  cfg.promotion.budget_bytes = 700000;
  auto db = OpenDb(cfg);

  ASSERT_FALSE(Canonical(db.get(), "SELECT SUM(a1) AS s FROM t").empty());
  auto first = db->RunPromotionCycle("t");
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->promoted, std::vector<int>({0}));

  // a1 goes cold (no promoted reads) while a4 accrues raw parse work.
  ASSERT_FALSE(Canonical(db.get(), "SELECT SUM(a4) AS s FROM t").empty());
  ASSERT_FALSE(Canonical(db.get(), "SELECT MIN(a4) AS s FROM t").empty());
  auto second = db->RunPromotionCycle("t");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->promoted, std::vector<int>({3}));
  EXPECT_EQ(second->demoted, std::vector<int>({0}));
  EXPECT_LE(second->promoted_bytes, cfg.promotion.budget_bytes);

  // Demotion never changes answers — the raw path still serves a1.
  EXPECT_EQ(Canonical(db.get(), "SELECT SUM(a1) AS s FROM t"),
            Canonical(db.get(), "SELECT SUM(a1) AS s FROM t"));
}

TEST_F(PromotionTest, PromotionRequiresEnabledConfigAndRawTable) {
  auto off = OpenDb(EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC));
  auto r = off->RunPromotionCycle("t");
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(off->RunPromotionCycle("nope").status().code(),
            StatusCode::kNotFound);

  EngineConfig loaded_cfg = EngineConfig::ForSystem(SystemUnderTest::kPostgreSQL);
  loaded_cfg.promotion.enabled = true;
  Database loaded(loaded_cfg);
  ASSERT_TRUE(loaded.LoadCsv("t", csv_, MicroSchema(spec_)).ok());
  EXPECT_EQ(loaded.RunPromotionCycle("t").status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------------
// Loader/scan ragged-row unification (the PR's first bugfix)
// ------------------------------------------------------------------

TEST(LoaderScanParityTest, RaggedCsvLoadsExactlyAsTheScanReadsIt) {
  TempDir dir;
  const std::string csv = dir.File("ragged.csv");
  // Short rows, empty fields, and malformed numerics — everything must go
  // through the same adapter NULL/parse rules on both paths.
  ASSERT_TRUE(WriteStringToFile(csv,
                                "1,1.5,foo,10\n"
                                "2,,bar,20\n"
                                "3,3.5\n"
                                "4,4.5,,40\n"
                                ",5.5,qux\n"
                                "6,6.5,zap,60\n")
                  .ok());
  std::vector<Column> cols(4);
  cols[0] = {"a", TypeId::kInt64};
  cols[1] = {"b", TypeId::kDouble};
  cols[2] = {"c", TypeId::kString};
  cols[3] = {"d", TypeId::kInt64};
  Schema schema{std::move(cols)};

  Database raw(EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC));
  ASSERT_TRUE(raw.RegisterCsv("t", csv, schema).ok());
  Database heap(EngineConfig::ForSystem(SystemUnderTest::kPostgreSQL));
  ASSERT_TRUE(heap.LoadCsv("t", csv, schema).ok());
  Database compact(EngineConfig::ForSystem(SystemUnderTest::kDbmsX));
  ASSERT_TRUE(compact.LoadCsv("t", csv, schema).ok());

  for (const char* sql : {"SELECT a, b, c, d FROM t",
                          "SELECT COUNT(c) AS n FROM t",
                          "SELECT SUM(d) AS s FROM t WHERE a >= 2"}) {
    auto want = raw.Execute(sql);
    ASSERT_TRUE(want.ok()) << sql << "\n" << want.status();
    auto via_heap = heap.Execute(sql);
    ASSERT_TRUE(via_heap.ok()) << sql << "\n" << via_heap.status();
    EXPECT_EQ(want->Canonical(true), via_heap->Canonical(true)) << sql;
    auto via_compact = compact.Execute(sql);
    ASSERT_TRUE(via_compact.ok()) << sql << "\n" << via_compact.status();
    EXPECT_EQ(want->Canonical(true), via_compact->Canonical(true)) << sql;
  }
}

// ------------------------------------------------------------------
// Access-counter persistence (snapshot v2) and version compatibility
// ------------------------------------------------------------------

class PromotionSnapshotTest : public PromotionTest {
 protected:
  void SetUp() override {
    PromotionTest::SetUp();
    snap_dir_ = dir_.File("snaps");
  }

  EngineConfig SnapConfig() {
    EngineConfig cfg = PromoConfig(SystemUnderTest::kPostgresRawPMC);
    cfg.snapshot_dir = snap_dir_;
    return cfg;
  }

  std::string snap_dir_;
};

TEST_F(PromotionSnapshotTest, AccessCountersSurviveRestart) {
  const std::string sql = "SELECT SUM(a2) AS s FROM t WHERE a1 >= 0";
  ColumnAccessCounters before;
  {
    auto db = OpenDb(SnapConfig());
    ASSERT_FALSE(Canonical(db.get(), sql).empty());
    ASSERT_FALSE(Canonical(db.get(), sql).empty());
    before = db->runtime("t")->access->Snapshot(1);
    ASSERT_GT(before.scans, 0u);
    ASSERT_GT(before.rows_parsed, 0u);
    ASSERT_TRUE(db->Snapshot("t").ok());
  }
  auto db = OpenDb(SnapConfig());
  ASSERT_EQ(InfoOf(db.get()).snapshot_state, SnapshotState::kLoaded);
  ColumnAccessCounters after = db->runtime("t")->access->Snapshot(1);
  EXPECT_EQ(after.scans, before.scans);
  EXPECT_EQ(after.rows_parsed, before.rows_parsed);
  EXPECT_EQ(after.bytes_parsed, before.bytes_parsed);
  EXPECT_EQ(after.rows_from_cache, before.rows_from_cache);

  // The restored history counts toward min_scans: promotion triggers
  // without re-observing the workload from scratch.
  auto report = db->RunPromotionCycle("t");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->promoted.empty());
}

TEST_F(PromotionSnapshotTest, Version1SnapshotsStillLoadWithColdCounters) {
  const std::string sql = "SELECT SUM(a2) AS s FROM t WHERE a1 >= 0";
  std::string expected;
  {
    auto db = OpenDb(SnapConfig());
    expected = Canonical(db.get(), sql);
    ASSERT_TRUE(db->Snapshot("t").ok());
  }
  // Surgically rewrite the file as the v1 format: strip the trailing
  // v3 gzip-index section (one absent-flag byte for this plain CSV) and
  // the v2 access-counter section (1-byte flag + u32 count + 5 u64 per
  // column), set version=1 and re-stamp payload size + checksum.
  const std::string path = SnapshotPathFor(snap_dir_, "t");
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string file = *bytes;
  const size_t header_bytes = 40;
  const size_t access_bytes = 1 + 4 + 5 * 8 * static_cast<size_t>(spec_.cols);
  const size_t gz_bytes = 1;
  ASSERT_GT(file.size(), header_bytes + access_bytes + gz_bytes);
  file.resize(file.size() - access_bytes - gz_bytes);
  uint32_t v1 = 1;
  std::memcpy(&file[8], &v1, 4);
  uint64_t payload_size = file.size() - header_bytes;
  std::memcpy(&file[16], &payload_size, 8);
  uint64_t checksum =
      SnapshotChecksum(file.data() + header_bytes, payload_size);
  std::memcpy(&file[24], &checksum, 8);
  ASSERT_TRUE(WriteStringToFile(path, file).ok());

  auto db = OpenDb(SnapConfig());
  EXPECT_EQ(InfoOf(db.get()).snapshot_state, SnapshotState::kLoaded);
  // Warm structures restored, counters cold — and answers identical.
  EXPECT_EQ(db->runtime("t")->access->Snapshot(0).scans, 0u);
  EXPECT_EQ(Canonical(db.get(), sql), expected);
}

TEST_F(PromotionSnapshotTest, FutureVersionClassifiesStaleAndFallsBackCold) {
  const std::string sql = "SELECT SUM(a2) AS s FROM t WHERE a1 >= 0";
  std::string expected;
  {
    auto db = OpenDb(SnapConfig());
    expected = Canonical(db.get(), sql);
    ASSERT_TRUE(db->Snapshot("t").ok());
  }
  const std::string path = SnapshotPathFor(snap_dir_, "t");
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string file = *bytes;
  uint32_t v99 = 99;
  std::memcpy(&file[8], &v99, 4);
  ASSERT_TRUE(WriteStringToFile(path, file).ok());

  auto db = OpenDb(SnapConfig());
  EXPECT_EQ(InfoOf(db.get()).snapshot_state, SnapshotState::kStale);
  EXPECT_EQ(Canonical(db.get(), sql), expected);  // cold path, same answer
}

}  // namespace
}  // namespace nodb
