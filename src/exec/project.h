#ifndef NODB_EXEC_PROJECT_H_
#define NODB_EXEC_PROJECT_H_

#include <utility>
#include <vector>

#include "exec/operator.h"
#include "expr/evaluator.h"
#include "expr/expr.h"

namespace nodb {

/// Evaluates the SELECT list over input rows, shrinking working rows to the
/// query's output arity. This is where NoDB's *selective tuple formation*
/// pays off upstream: the scan only materialized the attributes these
/// expressions touch. Projection is in place: each input row is replaced by
/// its projected form (via a scratch row, since the expressions read the
/// input columns being replaced).
class ProjectOp final : public Operator {
 public:
  /// `exprs` must outlive the operator.
  ProjectOp(OperatorPtr child, const std::vector<ExprPtr>* exprs)
      : child_(std::move(child)), exprs_(exprs) {}

  Status Open() override { return child_->Open(); }

  Result<size_t> Next(RowBatch* batch) override {
    NODB_ASSIGN_OR_RETURN(size_t n, child_->Next(batch));
    for (size_t i = 0; i < n; ++i) {
      Row& row = (*batch)[i];
      scratch_.clear();
      scratch_.reserve(exprs_->size());
      for (const ExprPtr& e : *exprs_) {
        NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*e, row));
        scratch_.push_back(std::move(v));
      }
      std::swap(row, scratch_);
    }
    return n;
  }

  Status Close() override { return child_->Close(); }

 private:
  OperatorPtr child_;
  const std::vector<ExprPtr>* exprs_;
  Row scratch_;
};

}  // namespace nodb

#endif  // NODB_EXEC_PROJECT_H_
