#include <gtest/gtest.h>

#include "io/buffered_reader.h"
#include "io/file.h"
#include "util/fs_util.h"

namespace nodb {
namespace {

TEST(FileTest, WriteThenRead) {
  TempDir dir;
  std::string path = dir.File("f.bin");
  {
    auto w = WritableFile::Create(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append("hello ").ok());
    ASSERT_TRUE((*w)->Append("world").ok());
    ASSERT_TRUE((*w)->Close().ok());
    EXPECT_EQ((*w)->bytes_written(), 11u);
  }
  auto f = RandomAccessFile::Open(path);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->size(), 11u);
  char buf[16];
  Result<uint64_t> n = (*f)->Read(6, 5, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  EXPECT_EQ(std::string(buf, 5), "world");
}

TEST(FileTest, ReadPastEofIsShort) {
  TempDir dir;
  std::string path = dir.File("f.bin");
  ASSERT_TRUE(WriteStringToFile(path, "abc").ok());
  auto f = RandomAccessFile::Open(path);
  ASSERT_TRUE(f.ok());
  char buf[16];
  EXPECT_EQ(*(*f)->Read(2, 10, buf), 1u);
  EXPECT_EQ(*(*f)->Read(10, 4, buf), 0u);
}

TEST(FileTest, OpenMissingFails) {
  TempDir dir;
  EXPECT_FALSE(RandomAccessFile::Open(dir.File("missing")).ok());
}

TEST(FileTest, TracksBytesRead) {
  TempDir dir;
  std::string path = dir.File("f.bin");
  ASSERT_TRUE(WriteStringToFile(path, std::string(1000, 'a')).ok());
  auto f = RandomAccessFile::Open(path);
  char buf[512];
  ASSERT_TRUE((*f)->Read(0, 512, buf).ok());
  ASSERT_TRUE((*f)->Read(512, 488, buf).ok());
  EXPECT_EQ((*f)->bytes_read(), 1000u);
}

class BufferedReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    content_.resize(100000);
    for (size_t i = 0; i < content_.size(); ++i) {
      content_[i] = static_cast<char>('a' + i % 26);
    }
    path_ = dir_.File("data");
    ASSERT_TRUE(WriteStringToFile(path_, content_).ok());
    auto f = RandomAccessFile::Open(path_);
    ASSERT_TRUE(f.ok());
    file_ = std::move(*f);
  }

  TempDir dir_;
  std::string path_;
  std::string content_;
  std::unique_ptr<RandomAccessFile> file_;
};

TEST_F(BufferedReaderTest, SmallWindowServesEverything) {
  BufferedReader reader(file_.get(), 4096);
  // Scattered reads, ascending (the scan pattern).
  for (uint64_t off = 0; off + 50 < content_.size(); off += 997) {
    auto view = reader.ReadAt(off, 50);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(*view, std::string_view(content_).substr(off, 50));
  }
}

TEST_F(BufferedReaderTest, BackwardReadsWithinSlack) {
  BufferedReader reader(file_.get(), 4096);
  ASSERT_TRUE(reader.ReadAt(50000, 10).ok());
  // A read slightly before the previous offset (backward tokenizing).
  auto view = reader.ReadAt(49990, 20);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(*view, std::string_view(content_).substr(49990, 20));
}

TEST_F(BufferedReaderTest, RangeLargerThanBufferGrows) {
  BufferedReader reader(file_.get(), 4096);
  auto view = reader.ReadAt(100, 20000);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->size(), 20000u);
  EXPECT_EQ(*view, std::string_view(content_).substr(100, 20000));
}

TEST_F(BufferedReaderTest, TruncatesAtEof) {
  BufferedReader reader(file_.get(), 4096);
  auto view = reader.ReadAt(content_.size() - 10, 100);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->size(), 10u);
  auto past = reader.ReadAt(content_.size() + 5, 10);
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past->empty());
}


TEST(FileTest, EmptyFileShortReads) {
  TempDir dir;
  std::string path = dir.File("empty");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  auto f = RandomAccessFile::Open(path);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->size(), 0u);
  char buf[8];
  auto n = (*f)->Read(0, 8, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST_F(BufferedReaderTest, ZeroLengthReadIsEmpty) {
  BufferedReader reader(file_.get(), 4096);
  auto view = reader.ReadAt(500, 0);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->empty());
}

TEST_F(BufferedReaderTest, EmptyFileServesNothing) {
  TempDir dir;
  std::string path = dir.File("empty");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  auto f = RandomAccessFile::Open(path);
  ASSERT_TRUE(f.ok());
  BufferedReader reader(f->get(), 4096);
  auto view = reader.ReadAt(0, 100);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->empty());
}

}  // namespace
}  // namespace nodb
