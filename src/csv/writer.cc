#include "csv/writer.h"

#include <ostream>

namespace nodb {

namespace {
constexpr size_t kFlushThreshold = 1 << 20;
}  // namespace

Status CsvWriter::Sink(std::string_view data) {
  if (out_ != nullptr) return out_->Append(data);
  stream_->write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!stream_->good()) return Status::IOError("CSV output stream failed");
  return Status::OK();
}

void CsvWriter::AppendField(std::string_view field) {
  bool needs_quote =
      dialect_.quoting &&
      (field.find(dialect_.delimiter) != std::string_view::npos ||
       field.find(dialect_.quote) != std::string_view::npos ||
       field.find('\n') != std::string_view::npos);
  if (!needs_quote) {
    buffer_.append(field);
    return;
  }
  buffer_.push_back(dialect_.quote);
  for (char c : field) {
    buffer_.push_back(c);
    if (c == dialect_.quote) buffer_.push_back(dialect_.quote);
  }
  buffer_.push_back(dialect_.quote);
}

Status CsvWriter::MaybeFlush() {
  if (buffer_.size() < kFlushThreshold) return Status::OK();
  NODB_RETURN_IF_ERROR(Sink(buffer_));
  buffer_.clear();
  return Status::OK();
}

Status CsvWriter::WriteHeader(const Schema& schema) {
  for (int i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) buffer_.push_back(dialect_.delimiter);
    AppendField(schema.column(i).name);
  }
  buffer_.push_back('\n');
  return MaybeFlush();
}

Status CsvWriter::WriteRow(const Row& row) {
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) buffer_.push_back(dialect_.delimiter);
    if (!row[i].is_null()) AppendField(row[i].ToString());
  }
  buffer_.push_back('\n');
  return MaybeFlush();
}

Status CsvWriter::WriteFields(const std::vector<std::string_view>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) buffer_.push_back(dialect_.delimiter);
    AppendField(fields[i]);
  }
  buffer_.push_back('\n');
  return MaybeFlush();
}

Status CsvWriter::Finish() {
  if (!buffer_.empty()) {
    NODB_RETURN_IF_ERROR(Sink(buffer_));
    buffer_.clear();
  }
  if (out_ != nullptr) return out_->Flush();
  stream_->flush();
  if (!stream_->good()) return Status::IOError("CSV output stream failed");
  return Status::OK();
}

}  // namespace nodb
