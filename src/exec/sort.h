#ifndef NODB_EXEC_SORT_H_
#define NODB_EXEC_SORT_H_

#include <vector>

#include "exec/exec_control.h"
#include "exec/operator.h"
#include "sql/binder.h"

namespace nodb {

/// Materializing sort over the (already projected) output rows, keyed by
/// output column indices. NULLs sort last in ascending order (PostgreSQL
/// default).
class SortOp final : public Operator {
 public:
  /// `keys` must outlive the operator; each key indexes the child's output.
  /// `batch_size` sizes the internal batch the child is drained with.
  /// `control` (optional) is polled once per drained input batch (the sort
  /// materializes its whole input in Open, before the first output batch).
  SortOp(OperatorPtr child, const std::vector<BoundOrderKey>* keys,
         size_t batch_size = RowBatch::kDefaultCapacity,
         ExecControlPtr control = nullptr)
      : child_(std::move(child)), keys_(keys), batch_size_(batch_size),
        control_(std::move(control)) {}

  Status Open() override;
  Result<size_t> Next(RowBatch* batch) override;
  Status Close() override { return child_->Close(); }

 private:
  OperatorPtr child_;
  const std::vector<BoundOrderKey>* keys_;
  size_t batch_size_;
  ExecControlPtr control_;
  std::vector<Row> rows_;
  size_t next_ = 0;
};

}  // namespace nodb

#endif  // NODB_EXEC_SORT_H_
