#ifndef NODB_SQL_AST_H_
#define NODB_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace nodb {

struct SelectStmt;

/// Unbound (parsed but unresolved) expression. The binder turns these into
/// typed `Expr` trees with flat column indices.
struct ParsedExpr {
  enum class Kind : uint8_t {
    kColumn,       // [qualifier.]name
    kIntLiteral,
    kFloatLiteral,
    kStringLiteral,
    kDateLiteral,      // DATE 'YYYY-MM-DD'
    kIntervalLiteral,  // INTERVAL 'n' DAY|MONTH|YEAR, normalized to days
    kNullLiteral,
    kBinary,    // arithmetic, comparison, AND/OR
    kNot,
    kNegate,    // unary minus
    kBetween,
    kInList,
    kLike,
    kCase,
    kIsNull,
    kFuncCall,  // aggregate functions (COUNT/SUM/AVG/MIN/MAX) or CAST
    kExists,
  };

  Kind kind;
  int position = 0;  // source offset for error messages

  // kColumn
  std::string qualifier;  // table or alias; empty if unqualified
  std::string column;

  // literals
  int64_t int_value = 0;
  double float_value = 0;
  std::string string_value;  // string literal, date text, LIKE pattern

  // kBinary: op is one of + - * / = <> < <= > >= AND OR
  std::string op;
  std::unique_ptr<ParsedExpr> left;
  std::unique_ptr<ParsedExpr> right;

  // kBetween: left BETWEEN low AND high
  std::unique_ptr<ParsedExpr> low;
  std::unique_ptr<ParsedExpr> high;
  bool negated = false;  // NOT BETWEEN / NOT IN / NOT LIKE / IS NOT NULL

  // kInList
  std::vector<std::unique_ptr<ParsedExpr>> list_items;

  // kCase (searched form)
  struct When {
    std::unique_ptr<ParsedExpr> condition;
    std::unique_ptr<ParsedExpr> result;
  };
  std::vector<When> whens;
  std::unique_ptr<ParsedExpr> else_result;

  // kFuncCall
  std::string func_name;  // upper case: COUNT, SUM, AVG, MIN, MAX
  bool star_arg = false;  // COUNT(*)
  std::vector<std::unique_ptr<ParsedExpr>> args;

  // kExists
  std::unique_ptr<SelectStmt> subquery;
};

using ParsedExprPtr = std::unique_ptr<ParsedExpr>;

/// One SELECT-list entry.
struct SelectItem {
  ParsedExprPtr expr;
  std::string alias;  // empty if none
};

/// A FROM-clause table with optional alias.
struct TableRef {
  std::string table;
  std::string alias;  // defaults to table name

  const std::string& effective_name() const {
    return alias.empty() ? table : alias;
  }
};

struct OrderItem {
  ParsedExprPtr expr;
  bool desc = false;
};

/// A parsed SELECT statement. JOIN ... ON syntax is normalized at parse time
/// into the FROM list plus WHERE conjuncts, so downstream code sees one form.
struct SelectStmt {
  std::vector<SelectItem> items;
  bool select_star = false;
  std::vector<TableRef> from;
  ParsedExprPtr where;  // null if absent
  std::vector<ParsedExprPtr> group_by;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
};

}  // namespace nodb

#endif  // NODB_SQL_AST_H_
