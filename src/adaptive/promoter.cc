#include "adaptive/promoter.h"

#include <algorithm>
#include <memory>

#include "cache/column_cache.h"
#include "storage/loader.h"

namespace nodb {

TablePromotionReport RunTablePromotionCycle(TableRuntime* rt,
                                            const PromotionConfig& cfg,
                                            const std::atomic<bool>* stop) {
  TablePromotionReport report;
  report.table = rt->name;
  PromotedColumns* store = rt->promoted.get();
  ColumnAccessTracker* tracker = rt->access.get();
  if (rt->storage != TableStorage::kRaw || store == nullptr ||
      tracker == nullptr || rt->adapter == nullptr) {
    report.promoted_bytes = store != nullptr ? store->memory_bytes() : 0;
    return report;
  }
  const Schema& schema = rt->schema;
  const int ncols = schema.num_columns();
  const int tpc = store->tuples_per_chunk();

  uint64_t budget = cfg.budget_bytes;
  if (budget == 0) {
    budget = rt->cache != nullptr ? rt->cache->budget_bytes() : UINT64_MAX;
  }

  std::vector<ColumnAccessCounters> access = tracker->SnapshotAll();
  std::vector<PromotedColumns::ColumnInfo> info = store->InfoSnapshot();

  double known_rows = rt->known_row_count.load();
  std::vector<ColumnPromotionInput> inputs(ncols);
  for (int a = 0; a < ncols; ++a) {
    ColumnPromotionInput& in = inputs[a];
    in.attr = a;
    in.promoted = info[a].promoted;
    in.scans = access[a].scans;
    in.parse_work = access[a].ParseWork();
    in.work_mark = info[a].work_mark;
    in.served_rows = access[a].rows_from_promoted;
    in.served_mark = info[a].served_mark;
    if (info[a].promoted) {
      in.est_bytes = info[a].bytes;
    } else {
      // Estimated promoted size: rows x binary value width (+ average text
      // length for strings), falling back to the observed text volume when
      // no row count is known yet.
      uint64_t rows_est =
          known_rows > 0
              ? static_cast<uint64_t>(known_rows)
              : (access[a].scans > 0
                     ? access[a].rows_parsed /
                           std::max<uint64_t>(access[a].scans, 1)
                     : 0);
      uint64_t per_row = sizeof(Value);
      if (schema.column(a).type == TypeId::kString &&
          access[a].rows_parsed > 0) {
        per_row += access[a].bytes_parsed / access[a].rows_parsed;
      }
      in.est_bytes = rows_est > 0
                         ? rows_est * per_row
                         : std::max<uint64_t>(access[a].bytes_parsed, 1);
    }
  }

  PromotionPlan plan =
      PlanPromotions(inputs, store->memory_bytes(), budget, cfg);

  for (int a : plan.demote) {
    store->Demote(a);
    report.demoted.push_back(a);
    // Consume the demoted column's accrued work so it doesn't bounce right
    // back next cycle (promote/demote thrash); it must earn promotion with
    // fresh accesses.
    store->SetMarks(a, inputs[a].parse_work, access[a].rows_from_promoted);
  }

  if (!plan.promote.empty()) {
    std::vector<int> attrs = plan.promote;
    std::sort(attrs.begin(), attrs.end());
    const int nslots = static_cast<int>(attrs.size());

    // One sweep over the raw file loads every chosen column through the
    // same adapter hooks (and NULL/error semantics) the scans use. Row
    // starts ride along as spine-only fragments installed through the
    // epoch-protected path, warming the positional map like a scan would.
    std::vector<std::vector<PromotedColumns::Chunk>> cols(nslots);
    std::vector<std::vector<Value>> bufs(nslots);
    for (auto& b : bufs) b.reserve(tpc);

    PositionalMap* pm = rt->pmap.get();
    const uint64_t epoch = pm != nullptr ? pm->BeginEpoch() : 0;
    PmapFragment frag;
    frag.Reset({});
    frag.Reserve(tpc);
    uint64_t frag_first = 0;

    auto flush_stripe = [&](uint64_t next_row) {
      for (int s = 0; s < nslots; ++s) {
        cols[s].push_back(
            std::make_shared<const std::vector<Value>>(std::move(bufs[s])));
        bufs[s].clear();
        bufs[s].reserve(tpc);
      }
      if (pm != nullptr && !frag.empty()) {
        pm->InstallFragment(frag, frag_first, epoch);
        frag.Reset({});
        frag.Reserve(tpc);
      }
      frag_first = next_row;
    };

    Result<uint64_t> swept = ForEachRawRow(
        *rt->adapter, attrs,
        [&](RawRowView& v) -> Status {
          if (v.index > 0 && v.index % static_cast<uint64_t>(tpc) == 0) {
            flush_stripe(v.index);
          }
          for (int s = 0; s < nslots; ++s) {
            bufs[s].push_back(std::move(v.values[s]));
          }
          if (pm != nullptr) frag.AddRecord(v.offset, nullptr);
          return Status::OK();
        },
        stop);

    const uint64_t total = swept.ok() ? swept.value() : 0;
    if (swept.ok() && !bufs[0].empty()) flush_stripe(total);
    if (pm != nullptr) {
      if (swept.ok() && total > 0) pm->SetTotalTuples(total);
      pm->EndEpoch(epoch);
    }

    if (swept.ok() && total > 0) {
      rt->known_row_count = static_cast<double>(total);
      for (int s = 0; s < nslots; ++s) {
        int a = attrs[s];
        uint64_t bytes = 0;
        for (const PromotedColumns::Chunk& ch : cols[s]) {
          bytes += ColumnCache::BytesOf(*ch, schema.column(a).type);
        }
        store->Install(a, std::move(cols[s]), total, bytes);
        report.promoted.push_back(a);
        // A promoted column fully supersedes its cache chunks: release
        // them so the shared budget isn't charged twice for the same data.
        if (rt->cache != nullptr) {
          report.cache_released_bytes += rt->cache->ReleaseAttr(a);
        }
      }
    } else if (!swept.ok()) {
      report.status = swept.status();
    }
    // Consume the observed work either way — a load that failed (malformed
    // text, cancellation) must not make every later cycle retry hot.
    for (int a : attrs) {
      store->SetMarks(a, inputs[a].parse_work, access[a].rows_from_promoted);
    }
  }

  // Refresh every promoted column's served mark so the next cycle judges
  // coldness against reads made since *this* cycle, then settle the
  // shared-budget reservation.
  for (int a : store->promoted_attrs()) {
    store->SetMarks(a, inputs[a].parse_work,
                    tracker->Snapshot(a).rows_from_promoted);
  }
  if (rt->cache != nullptr && cfg.budget_bytes == 0) {
    rt->cache->SetReservedBytes(store->memory_bytes());
  }
  report.promoted_bytes = store->memory_bytes();
  return report;
}

}  // namespace nodb
