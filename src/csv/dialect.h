#ifndef NODB_CSV_DIALECT_H_
#define NODB_CSV_DIALECT_H_

namespace nodb {

/// Syntax of a delimiter-separated raw file.
///
/// `quoting` enables RFC-4180-style double-quoted fields (with "" escapes).
/// Quoting forces the tokenizer onto a slower state-machine path and makes
/// backward incremental tokenizing ambiguous, so the in-situ scan only
/// tokenizes backward from positional-map entries when quoting is off
/// (the data-generator outputs and TPC-H files never need quotes).
struct CsvDialect {
  char delimiter = ',';
  bool has_header = false;
  bool quoting = false;
  char quote = '"';
};

}  // namespace nodb

#endif  // NODB_CSV_DIALECT_H_
