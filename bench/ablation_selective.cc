// Ablation — the §4.1 design choices in isolation: selective tokenizing,
// selective parsing and selective tuple formation, toggled one at a time on
// the straw-man in-situ scan (no map/cache, so every query pays raw-file
// costs and the deltas are attributable to the toggles alone).

#include "common.h"

using namespace nodb;
using namespace nodb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintBanner(
      "Ablation: selective tokenizing / parsing / tuple formation (§4.1)",
      "Each technique independently trims CPU cost; together they make the "
      "in-situ scan parse only what the query needs.");

  MicroDataSpec spec;
  spec.rows = static_cast<uint64_t>(30000 * args.scale);
  spec.cols = 50;
  spec.seed = args.seed;
  std::string csv = MicroCsv(spec, "ablation");
  Schema schema = MicroSchema(spec);

  // Two probe queries: an early-attribute projection (tokenizing stops
  // early) and a selective filter with wide payload (parsing defers).
  std::string early_proj = "SELECT a2, a4 FROM wide";
  std::string selective =
      "SELECT SUM(a40) AS s40, SUM(a45) AS s45, SUM(a50) AS s50 FROM wide "
      "WHERE a1 < 10000000";  // ~1% selectivity

  // Leave-one-out: each row disables exactly one technique relative to the
  // full PostgresRaw parsing stack, isolating its contribution (an additive
  // stack would conflate the toggles: without tuple formation every column
  // is parsed regardless of what tokenizing does).
  struct Variant {
    std::string name;
    bool tok, parse, form;
  };
  const Variant kVariants[] = {
      {"full selective stack", true, true, true},
      {"w/o selective tokenizing", false, true, true},
      {"w/o selective parsing", true, false, true},
      {"w/o selective tuple formation", true, true, false},
      {"none (external-files scan)", false, false, false},
  };

  TextTable table({"variant", "early-proj(s)", "selective-filter(s)"});
  for (const Variant& v : kVariants) {
    EngineConfig config =
        EngineConfig::ForSystem(SystemUnderTest::kPostgresRawBaseline);
    config.selective_tokenizing = v.tok;
    config.selective_parsing = v.parse;
    config.selective_tuple_formation = v.form;
    Database db(config);
    if (!db.RegisterCsv("wide", csv, schema).ok()) return 1;
    // Two runs each, report the second (steady straw-man behaviour).
    RunQuery(&db, early_proj);
    double t1 = RunQuery(&db, early_proj);
    RunQuery(&db, selective);
    double t2 = RunQuery(&db, selective);
    table.AddRow({v.name, Fmt(t1), Fmt(t2)});
  }
  table.Print();
  printf("\nExpected shape: each added technique reduces time; selective "
         "tokenizing dominates for early projections, selective parsing "
         "for low-selectivity filters with wide payloads.\n");
  return 0;
}
