// Scientific data exploration — the paper's motivating scenario (§1): "a
// scientist needs to quickly examine a few Terabytes of new data in search
// of certain properties. Even though only few attributes might be relevant
// for the task, the entire data must first be loaded inside the database."
//
// Here a wide sensor log (many channels per reading) is explored in situ:
// early queries touch a few channels, later ones drill into a region of
// interest. Watch the per-query times drop as the positional map and cache
// learn the access pattern — and note that no load ever happened.

#include <cstdio>

#include "engine/engines.h"
#include "util/fs_util.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "workload/micro.h"

using namespace nodb;

int main() {
  TempDir scratch;

  // 50k readings x 80 channels of integer samples (a few hundred MB at
  // real deployments; MB-scale here).
  MicroDataSpec spec;
  spec.rows = 50000;
  spec.cols = 80;
  spec.seed = 7;
  std::string csv = scratch.File("sensors.csv");
  if (!GenerateWideCsv(csv, spec).ok()) return 1;
  printf("sensor log: %llu readings x %d channels (%s)\n\n",
         static_cast<unsigned long long>(spec.rows), spec.cols, csv.c_str());

  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  if (!db->RegisterCsv("sensors", csv, MicroSchema(spec)).ok()) return 1;

  struct Step {
    const char* what;
    std::string sql;
  };
  const Step steps[] = {
      {"sanity: how many readings?", "SELECT COUNT(*) FROM sensors"},
      {"first look at channel 72",
       "SELECT MIN(a72), MAX(a72), AVG(a72) FROM sensors"},
      {"same channel again (warm structures)",
       "SELECT MIN(a72), MAX(a72), AVG(a72) FROM sensors"},
      {"anomaly hunt: spikes on channel 72",
       "SELECT COUNT(*) FROM sensors WHERE a72 > 990000000"},
      {"correlate neighbouring channels for the spikes",
       "SELECT AVG(a71), AVG(a73) FROM sensors WHERE a72 > 990000000"},
      {"drill into a band of channels",
       "SELECT AVG(a70), AVG(a71), AVG(a72), AVG(a73), AVG(a74) "
       "FROM sensors"},
  };

  // Stream each answer through the cursor API: the scan runs as batches
  // are pulled, and only the (tiny) aggregate answers are kept.
  for (const Step& step : steps) {
    Stopwatch timer;
    auto cursor = db->Query(step.sql);
    if (!cursor.ok()) {
      fprintf(stderr, "failed: %s\n", cursor.status().ToString().c_str());
      return 1;
    }
    RowBatch batch = cursor->MakeBatch();
    Row answer;
    size_t total_rows = 0;
    while (true) {
      auto n = cursor->Next(&batch);
      if (!n.ok()) {
        fprintf(stderr, "failed: %s\n", n.status().ToString().c_str());
        return 1;
      }
      if (*n == 0) break;
      if (total_rows == 0) answer = batch[0];
      total_rows += *n;
    }
    printf("%-48s %7.1f ms", step.what, timer.ElapsedSeconds() * 1000);
    if (total_rows == 1) {
      printf("   [");
      for (size_t c = 0; c < answer.size(); ++c) {
        printf("%s%s", c ? ", " : "", answer[c].ToString().c_str());
      }
      printf("]");
    }
    printf("\n");
  }

  TableRuntime* rt = db->runtime("sensors");
  printf("\nno load was ever run; the engine learned adaptively:\n");
  printf("  positional map: %.1f MiB (%llu positions)\n",
         rt->pmap->memory_bytes() / (1024.0 * 1024.0),
         static_cast<unsigned long long>(rt->pmap->num_positions()));
  printf("  cache:          %.1f MiB\n",
         rt->cache->memory_bytes() / (1024.0 * 1024.0));
  printf("  statistics:     channel a72 min/max now known to the optimizer\n");
  return 0;
}
