#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "engine/engines.h"
#include "json/jsonl_writer.h"
#include "util/fs_util.h"
#include "workload/micro.h"

namespace nodb {
namespace {

/// Deterministic concurrency stress: N querying threads hammer one table
/// while its positional map, cache and statistics warm up (and, with tight
/// budgets, churn through eviction and spilling). Every thread's every
/// result is checked against answers precomputed before the storm — the
/// adaptive structures are auxiliary, so no interleaving may ever change a
/// result. Run under ThreadSanitizer in CI (the `tsan` job), this is the
/// suite that proves the structures' internal locking, not just exercises
/// it.

struct StressSetup {
  MicroDataSpec spec;
  std::string csv;
  std::string jsonl;
};

StressSetup MakeData(TempDir* dir) {
  StressSetup s;
  s.spec.rows = 16000;
  s.spec.cols = 6;
  s.spec.seed = 20260731;
  s.csv = dir->File("stress.csv");
  s.jsonl = dir->File("stress.jsonl");
  EXPECT_TRUE(GenerateWideCsv(s.csv, s.spec).ok());
  EXPECT_TRUE(GenerateWideJsonl(s.jsonl, s.spec).ok());
  return s;
}

const char* kStressQueries[] = {
    "SELECT COUNT(*) AS n, SUM(a2) AS s FROM t WHERE a1 >= 0",
    "SELECT COUNT(a4) AS n FROM t WHERE a3 < 600000000",
    "SELECT SUM(a5) AS s FROM t WHERE a2 >= 250000000 AND a2 < 750000000",
    "SELECT COUNT(*) AS n FROM t WHERE a6 < 100000000",
};
constexpr int kNumStressQueries = 4;

/// Runs `threads` x `iters` queries concurrently against `db`, asserting
/// each result matches the expected canonical answers (precomputed on the
/// same engine, so the first run may be cold or warm — irrelevant, answers
/// never change).
void HammerDatabase(Database* db, int threads, int iters) {
  std::vector<std::string> expected;
  for (const char* sql : kStressQueries) {
    auto r = db->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << "\n" << r.status();
    expected.push_back(r->Canonical(/*sorted=*/false));
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < iters; ++i) {
        // Deterministic per-thread query sequence, staggered so different
        // threads overlap on different queries.
        int q = (t + i) % kNumStressQueries;
        auto r = db->Execute(kStressQueries[q]);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        if (r->Canonical(false) != expected[q]) ++mismatches;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyStressTest, SerialScansWarmOneCsvTableFromManyThreads) {
  TempDir dir;
  StressSetup s = MakeData(&dir);
  // Default budgets: the structures warm up once and every later query
  // hits them; concurrent scans race to install the same stripes.
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(db->RegisterCsv("t", s.csv, MicroSchema(s.spec)).ok());
  HammerDatabase(db.get(), 6, 6);
  EXPECT_EQ(static_cast<double>(db->runtime("t")->known_row_count),
            static_cast<double>(s.spec.rows));
}

TEST(ConcurrencyStressTest, SerialScansUnderTightBudgetsChurnSafely) {
  TempDir dir;
  StressSetup s = MakeData(&dir);
  // Tight budgets + small stripes: concurrent scans evict each other's
  // chunks and overcommit-check the accounting while queries run.
  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  config.pm_budget_bytes = 48 * 1024;
  config.cache_budget_bytes = 96 * 1024;
  config.tuples_per_chunk = 512;
  Database db(config);
  ASSERT_TRUE(db.RegisterCsv("t", s.csv, MicroSchema(s.spec)).ok());
  HammerDatabase(&db, 6, 6);
  // The spine (never evicted) may exceed the budget on its own; beyond it
  // the accounting must hold chunks at or under the threshold.
  const uint64_t spine_bytes = s.spec.rows * sizeof(uint64_t);
  EXPECT_LE(db.runtime("t")->pmap->memory_bytes(),
            spine_bytes + 2 * config.pm_budget_bytes);
}

TEST(ConcurrencyStressTest, ParallelScansFromManyThreadsShareOnePool) {
  TempDir dir;
  StressSetup s = MakeData(&dir);
  // Parallel morsel scans *and* concurrent queries: every query fans out
  // workers onto the shared pool while other queries' merges install
  // fragments into the same map.
  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  config.scan_threads = 3;
  config.scan_morsel_bytes = 48 * 1024;
  config.pm_budget_bytes = 64 * 1024;
  config.cache_budget_bytes = 128 * 1024;
  config.tuples_per_chunk = 512;
  Database db(config);
  ASSERT_TRUE(db.RegisterCsv("t", s.csv, MicroSchema(s.spec)).ok());
  HammerDatabase(&db, 5, 5);
}

TEST(ConcurrencyStressTest, JsonlBackingBehavesTheSame) {
  TempDir dir;
  StressSetup s = MakeData(&dir);
  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  config.scan_threads = 2;
  config.scan_morsel_bytes = 64 * 1024;
  Database db(config);
  OpenOptions options;
  options.schema = MicroSchema(s.spec);
  ASSERT_TRUE(db.Open("t", s.jsonl, options).ok());
  ASSERT_EQ(db.runtime("t")->adapter->format_name(), "jsonl");
  HammerDatabase(&db, 4, 4);
}

TEST(ConcurrencyStressTest, MixedSerialAndParallelTablesInOneDatabase) {
  TempDir dir;
  StressSetup s = MakeData(&dir);
  // Per-table override: table "t" scans with 3 workers, table "u" stays
  // serial; threads query both through one catalog and one pool.
  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  Database db(config);
  OpenOptions par_options;
  par_options.schema = MicroSchema(s.spec);
  par_options.scan_threads = 3;
  ASSERT_TRUE(db.Open("t", s.csv, par_options).ok());
  OpenOptions serial_options;
  serial_options.schema = MicroSchema(s.spec);
  ASSERT_TRUE(db.Open("u", s.csv, serial_options).ok());

  auto expected_t =
      db.Execute("SELECT COUNT(*) AS n, SUM(a2) AS s FROM t WHERE a1 >= 0");
  auto expected_u =
      db.Execute("SELECT COUNT(*) AS n, SUM(a2) AS s FROM u WHERE a1 >= 0");
  ASSERT_TRUE(expected_t.ok() && expected_u.ok());
  ASSERT_EQ(expected_t->Canonical(false), expected_u->Canonical(false));
  std::string want = expected_t->Canonical(false);

  std::atomic<int> bad{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 4; ++i) {
        const char* sql =
            (t + i) % 2 == 0
                ? "SELECT COUNT(*) AS n, SUM(a2) AS s FROM t WHERE a1 >= 0"
                : "SELECT COUNT(*) AS n, SUM(a2) AS s FROM u WHERE a1 >= 0";
        auto r = db.Execute(sql);
        if (!r.ok() || r->Canonical(false) != want) ++bad;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ConcurrencyStressTest, EarlyCloseUnderConcurrencyReleasesWorkers) {
  TempDir dir;
  StressSetup s = MakeData(&dir);
  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  config.scan_threads = 3;
  config.scan_morsel_bytes = 32 * 1024;
  Database db(config);
  ASSERT_TRUE(db.RegisterCsv("t", s.csv, MicroSchema(s.spec)).ok());

  // Threads repeatedly open cursors and abandon them after one batch; the
  // pool must never wedge and full queries must keep working throughout.
  std::atomic<int> bad{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 6; ++i) {
        auto cursor = db.Query("SELECT a1, a3 FROM t");
        if (!cursor.ok()) {
          ++bad;
          continue;
        }
        RowBatch batch = cursor->MakeBatch();
        auto n = cursor->Next(&batch);
        if (!n.ok() || *n == 0) ++bad;
        // Cursor destructor abandons the scan mid-stream.
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(bad.load(), 0);
  auto full = db.Execute("SELECT COUNT(*) AS n FROM t");
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(full->rows[0][0].int64(), static_cast<int64_t>(s.spec.rows));
}

TEST(ConcurrencyStressTest, PromotionCyclesRacingScansNeverChangeAnswers) {
  TempDir dir;
  StressSetup s = MakeData(&dir);
  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  config.promotion.enabled = true;
  config.promotion.min_scans = 1;
  // A budget fitting one column (16000 rows x sizeof(Value) ~ 768 KB) but
  // not two keeps the store churning: cycles promote whichever column is
  // currently hot and demote the cold incumbent, so scans race installs,
  // demotions and cache releases — the full tier-transition surface,
  // deterministically reachable.
  config.promotion.budget_bytes = 1000000;
  config.promotion.max_columns_per_cycle = 1;
  Database db(config);
  ASSERT_TRUE(db.RegisterCsv("t", s.csv, MicroSchema(s.spec)).ok());

  std::vector<std::string> expected;
  for (const char* sql : kStressQueries) {
    auto r = db.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << "\n" << r.status();
    expected.push_back(r->Canonical(/*sorted=*/false));
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 10; ++i) {
        int q = (t + i) % kNumStressQueries;
        auto r = db.Execute(kStressQueries[q]);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        if (r->Canonical(false) != expected[q]) ++mismatches;
      }
    });
  }
  std::thread promoter([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto report = db.RunPromotionCycle("t");
      if (!report.ok() || !report->status.ok()) ++failures;
    }
  });
  for (std::thread& w : workers) w.join();
  done.store(true, std::memory_order_release);
  promoter.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // The storm must actually have exercised the tier transitions.
  uint64_t promotions = 0;
  for (const TableInfo& info : db.ListTables()) {
    if (info.name == "t") promotions = info.promotions;
  }
  EXPECT_GT(promotions, 0u);
  // And once the dust settles, answers still match the pre-storm truth.
  for (int q = 0; q < kNumStressQueries; ++q) {
    auto r = db.Execute(kStressQueries[q]);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->Canonical(false), expected[q]) << kStressQueries[q];
  }
}

}  // namespace
}  // namespace nodb
