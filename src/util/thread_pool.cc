#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace nodb {

ThreadPool::ThreadPool(int num_threads) {
  Grow(std::max(1, num_threads));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    queue_.clear();
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Grow(int num_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(threads_.size()) < num_threads) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (shutting_down_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace nodb
