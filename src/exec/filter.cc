#include "exec/filter.h"

// FilterOp is header-only; this translation unit anchors the target.
