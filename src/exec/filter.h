#ifndef NODB_EXEC_FILTER_H_
#define NODB_EXEC_FILTER_H_

#include <utility>
#include <vector>

#include "exec/operator.h"
#include "expr/evaluator.h"
#include "expr/expr.h"

namespace nodb {

/// Drops rows failing any of `conjuncts` (evaluated in order with
/// short-circuiting). Scans push their own filters down; this operator
/// handles residual predicates that could not be pushed. Selection is done
/// in place: the child fills the caller's batch and passing rows are
/// compacted to its front — no row is ever copied.
class FilterOp final : public Operator {
 public:
  /// `conjuncts` must outlive the operator.
  FilterOp(OperatorPtr child, const std::vector<ExprPtr>* conjuncts)
      : child_(std::move(child)), conjuncts_(conjuncts) {}

  Status Open() override { return child_->Open(); }

  Result<size_t> Next(RowBatch* batch) override {
    while (true) {
      NODB_ASSIGN_OR_RETURN(size_t n, child_->Next(batch));
      if (n == 0) return 0;
      size_t kept = 0;
      for (size_t i = 0; i < n; ++i) {
        Row& row = (*batch)[i];
        bool pass = true;
        for (const ExprPtr& c : *conjuncts_) {
          NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*c, row));
          if (!Evaluator::IsTruthy(v)) {
            pass = false;
            break;
          }
        }
        if (pass) {
          if (kept != i) std::swap((*batch)[kept], row);
          ++kept;
        }
      }
      batch->Truncate(kept);
      if (kept > 0) return kept;  // all-filtered batches never leak out
    }
  }

  Status Close() override { return child_->Close(); }

 private:
  OperatorPtr child_;
  const std::vector<ExprPtr>* conjuncts_;
};

}  // namespace nodb

#endif  // NODB_EXEC_FILTER_H_
