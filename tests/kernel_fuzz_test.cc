// Fuzz-differential gate for the parse kernels: a deterministic, seeded
// mutation corpus (byte flips, truncations, quote/delimiter/backslash
// injection into valid CSV and JSON Lines files) driven through the full
// adapter surface — cursor framing, FindForward with its sink trace,
// FieldEnd, ParseField — once per kernel table. Whatever a mutation does to
// the data, the kernel path must produce exactly what the scalar reference
// path produces: the same rows, the same NULLs, the same corrupt flags, the
// same error Statuses. No case-by-case expectations; the scalar path *is*
// the expectation.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "csv/csv_adapter.h"
#include "json/jsonl_adapter.h"
#include "raw/parse_kernels.h"
#include "util/fs_util.h"
#include "util/rng.h"

namespace nodb {
namespace {

Schema FuzzSchema() {
  return Schema{{"a", TypeId::kInt64},
                {"b", TypeId::kDouble},
                {"c", TypeId::kString},
                {"d", TypeId::kDate},
                {"e", TypeId::kInt64}};
}

constexpr int kCols = 5;

/// Everything the engine can observe from one adapter over one file,
/// serialized: per record, each column's position-walk outcome (value,
/// NULL, conversion error, corrupt flag) plus any cursor error.
std::string AdapterTrace(const RawSourceAdapter& adapter) {
  std::string trace;
  auto cursor_or = adapter.OpenCursor();
  if (!cursor_or.ok()) {
    return "opencursor-error:" + cursor_or.status().ToString();
  }
  std::unique_ptr<RecordCursor>& cursor = *cursor_or;
  RecordRef rec;
  std::vector<int> slots(kCols);
  std::vector<uint32_t> pos(kCols);
  for (int i = 0; i < kCols; ++i) slots[i] = i;
  while (true) {
    auto has = cursor->Next(&rec);
    if (!has.ok()) {
      trace += "cursor-error:" + has.status().ToString();
      break;
    }
    if (!*has) break;
    for (int c = 0; c < kCols; ++c) {
      // Fresh cold walk per column, the way the scan resolves a miss.
      for (int i = 0; i < kCols; ++i) pos[i] = kNoFieldPos;
      bool corrupt = false;
      PositionSink sink{slots.data(), pos.data(), &corrupt};
      uint32_t p = adapter.FindForward(rec, -1, 0, c, sink);
      if (corrupt) trace += "<corrupt>";
      for (int i = 0; i < kCols; ++i) {
        trace += "," + std::to_string(pos[i]);
      }
      if (p == kNoFieldPos || p == kAbsentFieldPos) {
        trace += "|null";
        continue;
      }
      uint32_t end = adapter.FieldEnd(rec, c, p, kNoFieldPos);
      trace += "|" + std::to_string(p) + ":" + std::to_string(end);
      auto value = adapter.ParseField(rec, c, p, end);
      if (value.ok()) {
        trace += "=" + value->ToString();
      } else {
        trace += "=err(" + value.status().ToString() + ")";
      }
    }
    trace += "\n";
  }
  return trace;
}

/// Applies one random mutation in place. The menu is biased toward the
/// bytes the kernels special-case: quotes, delimiters, backslashes,
/// newlines, and hard truncations that strand a record mid-structure.
void Mutate(std::string* s, Rng* rng) {
  if (s->empty()) {
    s->push_back('"');
    return;
  }
  size_t at = static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(s->size()) - 1));
  switch (rng->Uniform(0, 5)) {
    case 0:  // arbitrary byte flip (printable range plus a few controls)
      (*s)[at] = static_cast<char>(rng->Uniform(1, 126));
      break;
    case 1:  // truncate
      s->resize(at);
      break;
    case 2:  // inject a structural byte
      s->insert(at, 1, "\"\\,{}[]:\n\r"[rng->Uniform(0, 9)]);
      break;
    case 3:  // overwrite with a structural byte
      (*s)[at] = "\"\\,{}[]:\n"[rng->Uniform(0, 8)];
      break;
    case 4:  // duplicate a span (concatenated-object / repeated-field cases)
      s->insert(at, s->substr(at, rng->Uniform(1, 12)));
      break;
    default:  // delete a byte
      s->erase(at, 1);
      break;
  }
}

std::string ValidCsv(Rng* rng, bool quoting) {
  std::string contents;
  int rows = 3 + static_cast<int>(rng->Uniform(0, 5));
  for (int r = 0; r < rows; ++r) {
    std::string date = "19" + std::to_string(rng->Uniform(70, 99)) + "-0" +
                       std::to_string(rng->Uniform(1, 9)) + "-1" +
                       std::to_string(rng->Uniform(0, 9));
    contents += std::to_string(rng->Uniform(-5000, 999999999)) + ",";
    contents += std::to_string(rng->Uniform(0, 99999)) + "." +
                std::to_string(rng->Uniform(0, 999)) + ",";
    if (quoting && rng->Uniform(0, 1) == 0) {
      contents += "\"str,with \"\"quotes\"\" inside\",";
    } else {
      contents += "plain string value,";
    }
    contents += date + ",";
    contents += std::to_string(rng->Uniform(0, 9999999)) + "\n";
  }
  return contents;
}

std::string ValidJsonl(Rng* rng) {
  std::string contents;
  int rows = 3 + static_cast<int>(rng->Uniform(0, 5));
  for (int r = 0; r < rows; ++r) {
    contents += "{\"a\":" + std::to_string(rng->Uniform(-5000, 999999999));
    contents += ",\"b\":" + std::to_string(rng->Uniform(0, 99999)) + ".5";
    switch (rng->Uniform(0, 2)) {
      case 0: contents += ",\"c\":\"esc \\\" and \\\\ inside\""; break;
      case 1: contents += ",\"c\":\"unicode \\u00e9 caf\xc3\xa9\""; break;
      default: contents += ",\"c\":\"plain\""; break;
    }
    contents += ",\"d\":\"199" + std::to_string(rng->Uniform(0, 9)) + "-06-1" +
                std::to_string(rng->Uniform(0, 9)) + "\"";
    contents += ",\"e\":" + std::to_string(rng->Uniform(0, 9999999)) + "}\n";
  }
  return contents;
}

class KernelFuzzTest : public ::testing::Test {
 protected:
  /// Writes `contents` once and asserts every vector-kernel adapter trace
  /// equals the scalar-kernel adapter trace over the same file.
  void ExpectCsvLockstep(const std::string& contents, bool quoting,
                         const std::string& label) {
    std::string path = dir_.File("fuzz.csv");
    ASSERT_TRUE(WriteStringToFile(path, contents).ok());
    CsvDialect dialect;
    dialect.quoting = quoting;
    auto scalar = CsvAdapter::Make(path, FuzzSchema(), dialect, nullptr,
                                   &ScalarKernels());
    ASSERT_TRUE(scalar.ok());
    std::string want = AdapterTrace(**scalar);
    for (const ParseKernels* k : AvailableKernels()) {
      if (k->level == KernelLevel::kScalar) continue;
      auto kernel = CsvAdapter::Make(path, FuzzSchema(), dialect, nullptr, k);
      ASSERT_TRUE(kernel.ok());
      EXPECT_EQ(AdapterTrace(**kernel), want)
          << k->name << " diverged on " << label << ":\n"
          << contents;
    }
  }

  void ExpectJsonlLockstep(const std::string& contents,
                           const std::string& label) {
    std::string path = dir_.File("fuzz.jsonl");
    ASSERT_TRUE(WriteStringToFile(path, contents).ok());
    auto scalar =
        JsonlAdapter::Make(path, FuzzSchema(), nullptr, &ScalarKernels());
    ASSERT_TRUE(scalar.ok());
    std::string want = AdapterTrace(**scalar);
    for (const ParseKernels* k : AvailableKernels()) {
      if (k->level == KernelLevel::kScalar) continue;
      auto kernel = JsonlAdapter::Make(path, FuzzSchema(), nullptr, k);
      ASSERT_TRUE(kernel.ok());
      EXPECT_EQ(AdapterTrace(**kernel), want)
          << k->name << " diverged on " << label << ":\n"
          << contents;
    }
  }

  TempDir dir_;
};

TEST_F(KernelFuzzTest, CsvMutationCorpus) {
  Rng rng(0xC5F);
  for (int iter = 0; iter < 150; ++iter) {
    bool quoting = iter % 2 == 1;
    std::string contents = ValidCsv(&rng, quoting);
    int mutations = static_cast<int>(rng.Uniform(0, 6));
    for (int m = 0; m < mutations; ++m) Mutate(&contents, &rng);
    ExpectCsvLockstep(contents, quoting, "iter " + std::to_string(iter));
  }
}

TEST_F(KernelFuzzTest, JsonlMutationCorpus) {
  Rng rng(0x150);
  for (int iter = 0; iter < 150; ++iter) {
    std::string contents = ValidJsonl(&rng);
    int mutations = static_cast<int>(rng.Uniform(0, 6));
    for (int m = 0; m < mutations; ++m) Mutate(&contents, &rng);
    ExpectJsonlLockstep(contents, "iter " + std::to_string(iter));
  }
}

TEST_F(KernelFuzzTest, CsvHandCraftedEdges) {
  // Mutations the random walk may take a while to find: records built
  // almost entirely of the bytes the kernels special-case.
  const std::string cases[] = {
      "\"\n\"\"\n\"\"\"\n",
      ",,,,\n\"\",\"\",\"\",\"\",\"\"\n",
      "\"unterminated,1,2,3,4\n5,6,7,8,9\n",
      "1,2,3,4,5",               // no trailing newline
      "1,2,3,4,5\r\n6,7,8,9,10\r\n",
      "\r\n\r\n\r\n",
      std::string(100, ','),
  };
  for (const std::string& c : cases) {
    ExpectCsvLockstep(c, true, "handcrafted");
    ExpectCsvLockstep(c, false, "handcrafted");
  }
}

TEST_F(KernelFuzzTest, JsonlHandCraftedEdges) {
  const char* cases[] = {
      "{\"a\":1}\n{\"a\":2}{\"a\":3}\n",      // concatenated objects
      "{\"a\":\"\\\\\\\"\",\"b\":1}\n",        // escape run before quote
      "{\"a\":\"x\\\n",                         // trailing escape + EOF
      "{\"a\" : 1 , \"e\" : 2 }\n",
      "{\"a\":[{\"b\":1},{\"b\":2}],\"e\":3}\n",
      "{}\n{\"a\":1}\n",
      "null\n{\"a\":1}\n",
      "{\"a\":1,\"a\":2,\"e\":3}\n",           // duplicate key
  };
  for (const char* c : cases) ExpectJsonlLockstep(c, "handcrafted");
}

}  // namespace
}  // namespace nodb
