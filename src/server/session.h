#ifndef NODB_SERVER_SESSION_H_
#define NODB_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

#include "engine/database.h"
#include "server/protocol.h"

namespace nodb {

class QueryServer;

/// One client connection, served by its own thread: reads request lines,
/// executes queries through a streaming QueryCursor, and writes response
/// lines. The session owns the cursor lifecycle — a client disconnect or a
/// CANCEL verb mid-stream flips the query's ExecControl, the cursor errors
/// at the next batch boundary, and its destructor releases the scan epoch
/// and pool slots exactly like any abandoned query.
///
/// Between streamed batches the session polls its socket without blocking:
/// a CANCEL that arrives mid-stream is honored within one batch, and a
/// closed peer is detected without waiting for a full write buffer.
class Session {
 public:
  /// Takes ownership of `fd`. `server` outlives the session.
  Session(uint64_t id, int fd, QueryServer* server);
  /// Joins the session thread (RequestStop first for a forced stop).
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Spawns the serving thread.
  void Start();
  /// Forces the session toward exit: cancels the in-flight query (if any)
  /// and shuts the socket down so blocked reads/writes return. The thread
  /// still needs Join()/destruction.
  void RequestStop();
  void Join();

  bool finished() const { return finished_.load(std::memory_order_acquire); }
  uint64_t id() const { return id_; }

 private:
  void Run();
  /// Next request line: served from lines queued by mid-stream polling
  /// first, then from blocking socket reads. False on EOF/error/stop.
  bool ReadLine(std::string* line);
  /// Splits complete lines out of inbuf_ into pending_lines_.
  void HarvestLines();
  /// Drains whatever is already readable on the socket without blocking.
  /// Returns true if a CANCEL verb was consumed or the peer vanished
  /// (either way the in-flight query must stop).
  bool PollForCancel();
  /// Blocking full write; false when the connection is gone.
  bool WriteAll(std::string_view data);

  void ServeQuery(const Request& req);
  void ServeStats();

  const uint64_t id_;
  const int fd_;
  QueryServer* const server_;
  std::thread thread_;

  std::string inbuf_;
  std::deque<std::string> pending_lines_;

  /// The in-flight query's control handle, for RequestStop (which runs on
  /// the server's thread while the session thread executes the query).
  std::mutex control_mu_;
  ExecControlPtr current_control_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> finished_{false};

  // Per-session counters (written by the session thread, snapshotted into
  // STATS responses on the same thread).
  uint64_t queries_ = 0;
  uint64_t rows_streamed_ = 0;
  uint64_t bytes_streamed_ = 0;
};

}  // namespace nodb

#endif  // NODB_SERVER_SESSION_H_
