#ifndef NODB_EXEC_OPERATOR_H_
#define NODB_EXEC_OPERATOR_H_

#include <memory>
#include <vector>

#include "exec/row_batch.h"
#include "types/value.h"
#include "util/result.h"

namespace nodb {

/// Vectorized pull-based operator. The paper's engine was a Volcano-style
/// row-store ("each tuple is then passed one-by-one through the operators
/// of a query plan"); this engine keeps the pull model but moves a batch of
/// working rows per virtual call, so per-tuple dispatch cost is amortized
/// across RowBatch::capacity() tuples. Rows are *working rows*: the
/// concatenation of all FROM tables' columns; each operator fills or reads
/// only the slices it owns.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (builds hash tables, opens files...).
  virtual Status Open() = 0;

  /// Clears `*batch` and refills it with up to batch->capacity() rows.
  /// Returns the number of rows produced; 0 means the operator is exhausted
  /// (an operator never returns an empty batch mid-stream), and every
  /// subsequent call must also return 0.
  virtual Result<size_t> Next(RowBatch* batch) = 0;

  /// Releases per-query resources. Called once, after the last Next — which
  /// may be *before* exhaustion when the consumer abandons the query early
  /// (LIMIT, cursor Close()).
  virtual Status Close() { return Status::OK(); }
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Hash/equality functors so Row can key unordered containers
/// (hash aggregation, hash joins).
struct RowHasher {
  size_t operator()(const Row& row) const {
    return static_cast<size_t>(HashRow(row));
  }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};

}  // namespace nodb

#endif  // NODB_EXEC_OPERATOR_H_
