// Engineering micro-benchmarks (google-benchmark): raw throughput of the
// pieces on the in-situ hot path — tokenizing, parsing, positional-map
// lookups, cache access. Not a paper figure; used to sanity-check that the
// building blocks have the cost ordering the design assumes (conversion >
// tokenizing > map lookup > cache hit).

#include <benchmark/benchmark.h>

#include "cache/column_cache.h"
#include "csv/tokenizer.h"
#include "pmap/positional_map.h"
#include "util/rng.h"
#include "util/str_conv.h"

namespace nodb {
namespace {

std::string MakeLine(int fields) {
  Rng rng(7);
  std::string line;
  for (int f = 0; f < fields; ++f) {
    if (f > 0) line += ",";
    AppendInt64(&line, rng.Uniform(0, 999999999));
  }
  return line;
}

void BM_TokenizeFullLine(benchmark::State& state) {
  std::string line = MakeLine(50);
  CsvDialect dialect;
  std::vector<uint32_t> starts(50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TokenizeStarts(line, dialect, 49, starts.data()));
  }
  state.SetBytesProcessed(state.iterations() * line.size());
}
BENCHMARK(BM_TokenizeFullLine);

void BM_TokenizeSelectiveTo5(benchmark::State& state) {
  std::string line = MakeLine(50);
  CsvDialect dialect;
  std::vector<uint32_t> starts(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TokenizeStarts(line, dialect, 5, starts.data()));
  }
}
BENCHMARK(BM_TokenizeSelectiveTo5);

void BM_ParseInt64Field(benchmark::State& state) {
  std::string field = "123456789";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseInt64(field));
  }
}
BENCHMARK(BM_ParseInt64Field);

void BM_ParseDoubleField(benchmark::State& state) {
  std::string field = "12345.6789";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseDouble(field));
  }
}
BENCHMARK(BM_ParseDoubleField);

void BM_ParseDateField(benchmark::State& state) {
  std::string field = "1995-06-17";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseDate(field));
  }
}
BENCHMARK(BM_ParseDateField);

void BM_PositionalMapLookup(benchmark::State& state) {
  PositionalMap pm(50, PositionalMap::Options{});
  int chunk = pm.BeginStripeInsert(0, {4, 8});
  for (int t = 0; t < 4096; ++t) {
    pm.InsertPosition(chunk, t, 4, t * 10);
    pm.InsertPosition(chunk, t, 8, t * 10 + 5);
  }
  pm.EndStripeInsert();
  uint64_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.Lookup(t % 4096, 4));
    ++t;
  }
}
BENCHMARK(BM_PositionalMapLookup);

void BM_PositionalMapBulkFill(benchmark::State& state) {
  PositionalMap pm(50, PositionalMap::Options{});
  int chunk = pm.BeginStripeInsert(0, {4});
  for (int t = 0; t < 4096; ++t) pm.InsertPosition(chunk, t, 4, t * 10);
  pm.EndStripeInsert();
  std::vector<uint32_t> out(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.FillStripePositions(0, 4, out.data(), 4096));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PositionalMapBulkFill);

void BM_CacheGetHit(benchmark::State& state) {
  ColumnCache cache({TypeId::kInt64}, ColumnCache::Options{});
  std::vector<Value> column;
  for (int i = 0; i < 4096; ++i) column.push_back(Value::Int64(i));
  cache.Put(0, 0, std::move(column));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get(0, 0));
  }
}
BENCHMARK(BM_CacheGetHit);

}  // namespace
}  // namespace nodb

BENCHMARK_MAIN();
