#include "exec/fits_scan.h"

#include <algorithm>
#include <utility>

#include "expr/evaluator.h"

namespace nodb {

FitsScanOp::FitsScanOp(TableRuntime* runtime, const PlannedScan* scan,
                       int working_width, InSituOptions options)
    : runtime_(runtime), scan_(scan), working_width_(working_width),
      opts_(options) {}

Status FitsScanOp::Open() {
  if (runtime_->fits == nullptr || runtime_->raw_file == nullptr) {
    return Status::Internal("FITS scan over a table without FITS metadata");
  }
  ncols_ = runtime_->schema.num_columns();

  std::vector<int> needed;
  if (opts_.selective_tuple_formation) {
    needed.insert(needed.end(), scan_->where_attrs.begin(),
                  scan_->where_attrs.end());
    needed.insert(needed.end(), scan_->payload_attrs.begin(),
                  scan_->payload_attrs.end());
  } else {
    for (int c = 0; c < ncols_; ++c) needed.push_back(c);
  }
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  output_attrs_ = needed;

  if (opts_.selective_parsing) {
    phase1_attrs_ = scan_->where_attrs;
    std::sort(phase1_attrs_.begin(), phase1_attrs_.end());
    phase2_attrs_.clear();
    for (int a : output_attrs_) {
      if (!std::binary_search(phase1_attrs_.begin(), phase1_attrs_.end(), a)) {
        phase2_attrs_.push_back(a);
      }
    }
  } else {
    phase1_attrs_ = output_attrs_;
    phase2_attrs_.clear();
  }

  reader_ = std::make_unique<BufferedReader>(runtime_->raw_file.get(), 1 << 20);
  next_tuple_ = 0;
  eof_ = false;
  out_size_ = 0;
  out_idx_ = 0;
  return Status::OK();
}

Result<size_t> FitsScanOp::Next(RowBatch* batch) {
  batch->Clear();
  while (!batch->full()) {
    if (out_idx_ >= out_size_) {
      if (eof_) break;
      out_size_ = 0;
      out_idx_ = 0;
      NODB_RETURN_IF_ERROR(LoadStripe());
      continue;
    }
    std::swap(batch->PushRow(), out_rows_[out_idx_++]);
  }
  return batch->size();
}

Status FitsScanOp::LoadStripe() {
  const FitsTableInfo& info = *runtime_->fits;
  ColumnCache* cache = opts_.use_cache ? runtime_->cache.get() : nullptr;
  TableStats* stats = opts_.collect_stats ? runtime_->stats.get() : nullptr;

  if (next_tuple_ >= info.num_rows) {
    eof_ = true;
    return Status::OK();
  }
  const uint64_t stripe = next_tuple_ / tuples_per_stripe_;
  const uint64_t stripe_first = stripe * tuples_per_stripe_;
  const int n = static_cast<int>(std::min<uint64_t>(
      tuples_per_stripe_, info.num_rows - stripe_first));

  // Cached columns for this stripe (all-or-per-attribute; with fixed-width
  // rows a fully cached stripe costs zero file reads).
  std::vector<const std::vector<Value>*> cached_col(ncols_, nullptr);
  std::vector<int> attrs_to_cache;
  std::vector<std::vector<Value>> cache_buf(ncols_);
  bool all_cached = cache != nullptr;
  for (int a : output_attrs_) {
    if (cache != nullptr) cached_col[a] = cache->Get(stripe, a);
    if (cached_col[a] == nullptr ||
        static_cast<int>(cached_col[a]->size()) != n) {
      cached_col[a] = nullptr;
      all_cached = false;
      if (cache != nullptr) {
        attrs_to_cache.push_back(a);
        cache_buf[a].reserve(n);
      }
    }
  }
  std::vector<bool> cache_attr(ncols_, false);
  for (int a : attrs_to_cache) cache_attr[a] = true;

  // Statistics once per attribute, as in the CSV scan.
  std::vector<bool> stats_attr(ncols_, false);
  bool any_stats = false;
  if (stats != nullptr) {
    for (int a : output_attrs_) {
      if (!stats->HasAttr(a)) {
        stats_attr[a] = true;
        any_stats = true;
      }
    }
  }

  const int offset = scan_->table.offset;
  bool all_qualified = true;

  for (int t = 0; t < n; ++t) {
    const uint64_t t_global = stripe_first + t;
    const uint64_t row_base = info.data_start + t_global * info.row_bytes;
    std::string_view row_bytes;
    if (!all_cached) {
      NODB_ASSIGN_OR_RETURN(row_bytes,
                            reader_->ReadAt(row_base, info.row_bytes));
      if (row_bytes.size() != info.row_bytes) {
        return Status::Corruption("FITS data truncated");
      }
    }

    auto fetch = [&](int a) -> Value {
      if (cached_col[a] != nullptr) return (*cached_col[a])[t];
      const FitsColumn& col = info.columns[a];
      return DecodeFitsField(col, row_bytes.data() + col.offset);
    };

    Row& row = OutSlot();
    row.assign(working_width_, Value());
    for (int a : phase1_attrs_) {
      Value v = fetch(a);
      if (cache_attr[a]) cache_buf[a].push_back(v);
      if (any_stats && stats_attr[a]) stats->AddValue(a, v);
      row[offset + a] = std::move(v);
    }
    bool pass = true;
    for (const ExprPtr& conj : scan_->conjuncts) {
      NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*conj, row));
      if (!Evaluator::IsTruthy(v)) {
        pass = false;
        break;
      }
    }
    if (!pass) {
      all_qualified = false;
      continue;
    }
    for (int a : phase2_attrs_) {
      Value v = fetch(a);
      if (cache_attr[a]) cache_buf[a].push_back(v);
      if (any_stats && stats_attr[a]) stats->AddValue(a, v);
      row[offset + a] = std::move(v);
    }
    ++out_size_;
  }

  if (cache != nullptr) {
    for (int a : attrs_to_cache) {
      bool complete = static_cast<int>(cache_buf[a].size()) == n;
      bool is_phase2 =
          std::find(phase2_attrs_.begin(), phase2_attrs_.end(), a) !=
          phase2_attrs_.end();
      if (complete && (!is_phase2 || all_qualified)) {
        cache->Put(stripe, a, std::move(cache_buf[a]));
      }
    }
  }

  next_tuple_ = stripe_first + n;
  if (next_tuple_ >= info.num_rows) {
    eof_ = true;
    runtime_->known_row_count = static_cast<double>(info.num_rows);
    if (stats != nullptr) {
      stats->SetRowCount(info.num_rows);
      runtime_->stats_populated = true;
    }
  }
  return Status::OK();
}

Status FitsScanOp::Close() {
  if (opts_.collect_stats && runtime_->stats != nullptr) {
    runtime_->stats->FinalizeAll();
  }
  return Status::OK();
}

}  // namespace nodb
