#include "storage/buffer_pool.h"

namespace nodb {

BufferPool::BufferPool(const HeapFile* file, uint32_t capacity)
    : file_(file), capacity_(capacity == 0 ? 1 : capacity) {}

Result<const char*> BufferPool::Fetch(uint32_t page_id) {
  auto it = frames_.find(page_id);
  if (it != frames_.end()) {
    ++hits_;
    Frame* f = it->second.get();
    if (f->lru_pos != lru_.begin()) {
      lru_.splice(lru_.begin(), lru_, f->lru_pos);
      f->lru_pos = lru_.begin();
    }
    return static_cast<const char*>(f->data.data());
  }
  ++misses_;
  if (frames_.size() >= capacity_) {
    uint32_t victim = lru_.back();
    lru_.pop_back();
    frames_.erase(victim);
  }
  auto frame = std::make_unique<Frame>();
  frame->page_id = page_id;
  frame->data.resize(kPageSize);
  NODB_RETURN_IF_ERROR(file_->ReadPage(page_id, frame->data.data()));
  lru_.push_front(page_id);
  frame->lru_pos = lru_.begin();
  const char* data = frame->data.data();
  frames_.emplace(page_id, std::move(frame));
  return data;
}

void BufferPool::Clear() {
  frames_.clear();
  lru_.clear();
}

}  // namespace nodb
