#include "json/jsonl_adapter.h"

#include <utility>
#include <vector>

#include "json/json_text.h"
#include "raw/line_reader.h"
#include "util/str_conv.h"

namespace nodb {

namespace {

/// Line cursor that drops whitespace-only lines: a trailing or embedded
/// blank line is formatting, not a record, and must not surface as a
/// phantom all-NULL row (schema inference skips them the same way).
class JsonlRecordCursor final : public RecordCursor {
 public:
  explicit JsonlRecordCursor(const RandomAccessFile* file) : reader_(file) {}

  Result<bool> Next(RecordRef* rec) override {
    while (true) {
      NODB_ASSIGN_OR_RETURN(bool has, reader_.Next(rec));
      if (!has) return false;
      if (SkipJsonWs(rec->data, 0) < rec->data.size()) return true;
    }
  }

  Status SeekToRecord(uint64_t index, uint64_t offset) override {
    (void)index;
    reader_.SeekTo(offset);
    return Status::OK();
  }

 private:
  LineReader reader_;
};

/// Extracts the key token starting at `i` (which must point at '"').
/// Returns false on malformed input; on success `*key` views the raw key
/// (or `*scratch` when escapes forced a decode) and `*end` is one past the
/// closing quote.
bool ReadKey(std::string_view s, size_t i, std::string_view* key,
             std::string* scratch, size_t* end) {
  size_t close = SkipJsonValue(s, i);  // string skip
  if (close <= i + 1 || close > s.size() || s[close - 1] != '"') return false;
  std::string_view raw = s.substr(i + 1, close - i - 2);
  if (raw.find('\\') == std::string_view::npos) {
    *key = raw;
  } else {
    if (!UnescapeJsonString(s.substr(i, close - i), scratch)) return false;
    *key = *scratch;
  }
  *end = close;
  return true;
}

/// Walks the top-level members of the object record `s`, invoking
/// fn(key, value_pos, value_end) for every member — scalar and nested
/// alike. The single walk both schema inference and field lookup share, so
/// the two can never disagree about what a record contains. Returns true
/// if the record is one well-formed object walked through its closing
/// brace with nothing but whitespace after it; false when it is not an
/// object, is truncated, breaks mid-member, or holds trailing residue such
/// as a second concatenated object (members seen before the breakage were
/// still reported).
template <typename Fn>
bool ForEachTopLevelField(std::string_view s, std::string* scratch, Fn&& fn) {
  size_t i = SkipJsonWs(s, 0);
  if (i >= s.size() || s[i] != '{') return false;
  ++i;
  bool first = true;
  while (true) {
    i = SkipJsonWs(s, i);
    if (i >= s.size()) return false;  // truncated
    if (s[i] == '}') return SkipJsonWs(s, i + 1) >= s.size();
    if (first) {
      if (s[i] == ',') return false;  // leading comma
    } else {
      // Exactly one comma between members; none before the closing brace.
      if (s[i] != ',') return false;
      i = SkipJsonWs(s, i + 1);
      if (i >= s.size() || s[i] == '}' || s[i] == ',') return false;
    }
    first = false;
    std::string_view key;
    size_t key_end;
    if (s[i] != '"' || !ReadKey(s, i, &key, scratch, &key_end)) return false;
    i = SkipJsonWs(s, key_end);
    if (i >= s.size() || s[i] != ':') return false;
    i = SkipJsonWs(s, i + 1);
    if (i >= s.size()) return false;
    size_t value_end = SkipJsonValue(s, i);
    if (value_end == i) return false;  // missing member value ({"a":,...})
    fn(key, i, value_end);
    i = value_end;
  }
}

/// Guesses a column type from one JSON value token; nullopt for `null`
/// (which constrains nothing).
std::optional<TypeId> GuessType(std::string_view token) {
  if (token.empty()) return TypeId::kString;
  if (token[0] == '"') {
    std::string decoded;
    if (UnescapeJsonString(token, &decoded) && ParseDate(decoded).ok()) {
      return TypeId::kDate;
    }
    return TypeId::kString;
  }
  if (token == "true" || token == "false") return TypeId::kBool;
  if (token == "null") return std::nullopt;
  for (char c : token) {
    if (c == '.' || c == 'e' || c == 'E') return TypeId::kDouble;
  }
  return TypeId::kInt64;
}

/// Widens two observed types for the same key: ints widen to doubles,
/// dates decay to strings, any other disagreement falls back to string
/// (every token parses as a string).
TypeId MergeTypes(TypeId a, TypeId b) {
  if (a == b) return a;
  auto numeric = [](TypeId t) {
    return t == TypeId::kInt64 || t == TypeId::kDouble;
  };
  if (numeric(a) && numeric(b)) return TypeId::kDouble;
  return TypeId::kString;
}

/// How many leading records schema inference inspects. One record is not
/// enough (a double column whose first value happens to be whole would
/// infer as integer); a bounded prefix keeps Open O(1) in the file size.
constexpr int kInferenceRecords = 100;

/// Infers a schema from the leading records: top-level scalar fields in
/// first-appearance order (nested objects/arrays are not projectable and
/// are skipped), types widened across records via MergeTypes.
Result<Schema> InferSchema(const RandomAccessFile* file,
                           const std::string& path) {
  // A small window suffices for ~100 typical records (LineReader grows it
  // if one record is larger); the scan's 1 MiB default would make every
  // schema-inferring Open read 1 MiB up front.
  LineReader reader(file, 64 * 1024);
  RecordRef rec;
  std::vector<std::string> names;
  std::vector<std::optional<TypeId>> types;
  std::unordered_map<std::string, size_t> index;
  std::string scratch;
  int records_seen = 0;
  while (records_seen < kInferenceRecords) {
    NODB_ASSIGN_OR_RETURN(bool has, reader.Next(&rec));
    if (!has) break;
    std::string_view s = rec.data;
    size_t first = SkipJsonWs(s, 0);
    if (first >= s.size()) continue;  // blank line
    if (s[first] != '{') {
      return Status::InvalidArgument("record " +
                                     std::to_string(records_seen + 1) +
                                     " of '" + path +
                                     "' is not a JSON object");
    }
    ++records_seen;
    bool well_formed = ForEachTopLevelField(
        s, &scratch,
        [&](std::string_view key, size_t vpos, size_t vend) {
          if (s[vpos] == '{' || s[vpos] == '[') return;  // not projectable
          std::optional<TypeId> guess = GuessType(s.substr(vpos, vend - vpos));
          auto [it, inserted] = index.try_emplace(std::string(key),
                                                  names.size());
          if (inserted) {
            names.emplace_back(key);
            types.push_back(guess);
          } else if (guess.has_value()) {
            std::optional<TypeId>& known = types[it->second];
            known = known.has_value() ? MergeTypes(*known, *guess) : *guess;
          }
        });
    if (!well_formed) {
      // A broken record (truncated tail, malformed member) ends sampling:
      // fields gathered so far still make a usable schema, and the broken
      // record itself surfaces as a clean per-query error when scanned. An
      // unusable *first* record is an error here, though — there is
      // nothing to infer from.
      if (names.empty()) {
        return Status::InvalidArgument("malformed JSON object in '" + path +
                                       "'");
      }
      break;
    }
  }
  if (records_seen == 0) {
    return Status::InvalidArgument(
        "cannot infer a schema from empty JSONL file '" + path +
        "'; pass OpenOptions::schema");
  }
  Schema schema;
  for (size_t c = 0; c < names.size(); ++c) {
    // All-null columns constrain nothing; string accepts anything later.
    schema.AddColumn({names[c], types[c].value_or(TypeId::kString)});
  }
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument(
        "the leading records of '" + path +
        "' have no top-level scalar fields to project");
  }
  return schema;
}

}  // namespace

JsonlAdapter::JsonlAdapter(std::string path, Schema schema,
                           std::unique_ptr<RandomAccessFile> file)
    : path_(std::move(path)), schema_(std::move(schema)),
      file_(std::move(file)) {
  traits_.variable_positions = true;
  traits_.fixed_stride = false;
  traits_.backward_tokenize = false;  // keys are unordered; anchors don't apply
  traits_.attr0_at_start = false;     // records start with '{', not a field
  traits_.full_record_tokenize = true;
  for (int c = 0; c < schema_.num_columns(); ++c) {
    key_to_attr_.emplace(schema_.column(c).name, c);
  }
}

Result<std::unique_ptr<JsonlAdapter>> JsonlAdapter::Make(
    const std::string& path, std::optional<Schema> schema,
    std::unique_ptr<RandomAccessFile> file) {
  if (file == nullptr) {
    NODB_ASSIGN_OR_RETURN(file, RandomAccessFile::Open(path));
  }
  Schema resolved;
  if (schema.has_value() && schema->num_columns() > 0) {
    resolved = std::move(*schema);
  } else {
    NODB_ASSIGN_OR_RETURN(resolved, InferSchema(file.get(), path));
  }
  return std::unique_ptr<JsonlAdapter>(
      new JsonlAdapter(path, std::move(resolved), std::move(file)));
}

Result<std::unique_ptr<RecordCursor>> JsonlAdapter::OpenCursor() const {
  return std::unique_ptr<RecordCursor>(
      std::make_unique<JsonlRecordCursor>(file_.get()));
}

Result<uint64_t> JsonlAdapter::FindRecordBoundary(uint64_t offset) const {
  // One object per line: a split point inside an object — even inside a
  // string escape — snaps to the next '\n', which no JSONL record spans.
  return FindLineBoundary(file_.get(), offset, /*skip_first_line=*/false);
}

uint32_t JsonlAdapter::FindForward(const RecordRef& rec, int from_attr,
                                   uint32_t from_pos, int to_attr,
                                   const PositionSink& sink) const {
  // Keys appear in arbitrary order, so the anchor is ignored and the whole
  // object is walked once; every projected field crossed is reported via
  // `sink`, making later resolves for this record position-map hits. A
  // record that is not one well-formed object (truncated, malformed, or
  // concatenated values on a line — silent data loss otherwise) is flagged
  // as container corruption through the sink, piggybacking on the walk the
  // scan pays anyway.
  (void)from_attr, (void)from_pos;
  uint32_t found = kNoFieldPos;
  std::string scratch;
  bool well_formed = ForEachTopLevelField(
      rec.data, &scratch,
      [&](std::string_view key, size_t vpos, size_t vend) {
        (void)vend;
        auto it = key_to_attr_.find(key);
        if (it != key_to_attr_.end()) {
          sink.Record(it->second, static_cast<uint32_t>(vpos));
          if (it->second == to_attr) found = static_cast<uint32_t>(vpos);
        }
      });
  if (!well_formed) sink.FlagCorrupt();
  return found;
}

uint32_t JsonlAdapter::FieldEnd(const RecordRef& rec, int attr, uint32_t pos,
                                uint32_t next_attr_pos) const {
  // Schema order says nothing about textual order, so the next attribute's
  // position is no shortcut here; scan the value itself.
  (void)attr, (void)next_attr_pos;
  return static_cast<uint32_t>(SkipJsonValue(rec.data, pos));
}

Result<Value> JsonlAdapter::ParseField(const RecordRef& rec, int attr,
                                       uint32_t pos, uint32_t end) const {
  std::string_view text = rec.data.substr(pos, end - pos);
  TypeId type = schema_.column(attr).type;
  if (text == "null") return Value::Null(type);
  if (!text.empty() && (text.front() == '{' || text.front() == '[')) {
    // Nested values are tokenized over but not projected (the adapter's
    // fixed-schema contract; inference skips such fields the same way).
    return Value::Null(type);
  }
  if (!text.empty() && text.front() == '"') {
    // Fast path: a closed, escape-free string parses straight from the raw
    // slice (the overwhelmingly common case on the in-situ hot path).
    if (text.size() >= 2 && text.back() == '"' &&
        text.find('\\') == std::string_view::npos) {
      return Value::ParseAs(type, text.substr(1, text.size() - 2));
    }
    std::string decoded;
    if (!UnescapeJsonString(text, &decoded)) {
      return Status::InvalidArgument("malformed JSON string value '" +
                                     std::string(text) + "'");
    }
    return Value::ParseAs(type, decoded);
  }
  return Value::ParseAs(type, text);
}

namespace {

class JsonlAdapterFactory final : public AdapterFactory {
 public:
  std::string_view format_name() const override { return "jsonl"; }

  double Sniff(const std::string& path, std::string_view head) const override {
    if (PathHasExtension(path, ".jsonl") ||
        PathHasExtension(path, ".ndjson")) {
      return 0.9;
    }
    size_t i = SkipJsonWs(head, 0);
    if (i < head.size() && head[i] == '{') return 0.7;
    return 0.0;
  }

  Result<std::unique_ptr<RawSourceAdapter>> Create(
      const std::string& path, const OpenOptions& options,
      std::unique_ptr<RandomAccessFile> file) const override {
    NODB_ASSIGN_OR_RETURN(
        std::unique_ptr<JsonlAdapter> adapter,
        JsonlAdapter::Make(path, options.schema, std::move(file)));
    return std::unique_ptr<RawSourceAdapter>(std::move(adapter));
  }
};

}  // namespace

std::unique_ptr<AdapterFactory> MakeJsonlAdapterFactory() {
  return std::make_unique<JsonlAdapterFactory>();
}

}  // namespace nodb
