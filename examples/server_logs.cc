// Web-log analysis — the paper's second motivating domain ("web-based
// businesses such as social networks or web log analysis are already
// confronted with a growing stream of large data inputs", §1).
//
// A request log lands on disk as CSV. With NoDB it is queryable the moment
// it exists: no ETL job, no schema migration, no load window. This example
// also demonstrates string-heavy data (where in-situ engines shine: no
// conversion cost, §6 "Data Type Conversion") and joining a raw log with a
// second raw file.

#include <cstdio>

#include "csv/writer.h"
#include "engine/engines.h"
#include "util/fs_util.h"
#include "util/rng.h"
#include "util/str_conv.h"

using namespace nodb;

namespace {

Status WriteLogs(const std::string& path, int n) {
  NODB_ASSIGN_OR_RETURN(auto out, WritableFile::Create(path));
  CsvWriter writer(out.get(), CsvDialect{});
  Rng rng(2024);
  const char* paths[] = {"/",          "/login",  "/cart",
                         "/checkout",  "/search", "/api/items",
                         "/api/users", "/admin"};
  const char* methods[] = {"GET", "GET", "GET", "POST", "PUT"};
  const int statuses[] = {200, 200, 200, 200, 301, 404, 500};
  for (int i = 0; i < n; ++i) {
    int32_t day = CivilToDays(2024, 3, 1) + static_cast<int32_t>(
                                                rng.Uniform(0, 13));
    Row row = {
        Value::Date(day),
        Value::Int64(rng.Uniform(0, 86399)),           // second of day
        Value::String(methods[rng.Next() % 5]),
        Value::String(paths[rng.Next() % 8]),
        Value::Int64(statuses[rng.Next() % 7]),
        Value::Int64(rng.Uniform(120, 250000)),        // bytes
        Value::Int64(rng.Uniform(1, 120000)),          // user id
    };
    NODB_RETURN_IF_ERROR(writer.WriteRow(row));
  }
  NODB_RETURN_IF_ERROR(writer.Finish());
  return out->Close();
}

Status WriteUsers(const std::string& path, int n) {
  NODB_ASSIGN_OR_RETURN(auto out, WritableFile::Create(path));
  CsvWriter writer(out.get(), CsvDialect{});
  Rng rng(9);
  const char* tiers[] = {"free", "free", "free", "pro", "enterprise"};
  for (int i = 1; i <= n; ++i) {
    NODB_RETURN_IF_ERROR(writer.WriteRow(
        {Value::Int64(i), Value::String(tiers[rng.Next() % 5])}));
  }
  NODB_RETURN_IF_ERROR(writer.Finish());
  return out->Close();
}

}  // namespace

int main() {
  TempDir scratch;
  std::string logs_csv = scratch.File("access.csv");
  std::string users_csv = scratch.File("users.csv");
  if (!WriteLogs(logs_csv, 200000).ok() ||
      !WriteUsers(users_csv, 120000).ok()) {
    return 1;
  }

  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  Status s = db->RegisterCsv("logs", logs_csv,
                             Schema{{"day", TypeId::kDate},
                                    {"sec", TypeId::kInt64},
                                    {"method", TypeId::kString},
                                    {"path", TypeId::kString},
                                    {"status", TypeId::kInt64},
                                    {"bytes", TypeId::kInt64},
                                    {"user_id", TypeId::kInt64}});
  if (s.ok()) {
    s = db->RegisterCsv("users", users_csv,
                        Schema{{"u_id", TypeId::kInt64},
                               {"tier", TypeId::kString}});
  }
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  const char* queries[] = {
      // Ops: error rate by endpoint.
      "SELECT path, COUNT(*) AS errors FROM logs WHERE status >= 500 "
      "GROUP BY path ORDER BY errors DESC LIMIT 5",
      // Traffic shape: busiest endpoints.
      "SELECT path, COUNT(*) AS hits, SUM(bytes) AS egress FROM logs "
      "GROUP BY path ORDER BY hits DESC LIMIT 5",
      // Mixed predicate over dates and strings.
      "SELECT COUNT(*) FROM logs WHERE day >= DATE '2024-03-10' "
      "AND method = 'POST' AND path = '/checkout'",
      // Join the raw log against the raw user roster.
      "SELECT tier, COUNT(*) AS requests FROM logs, users "
      "WHERE user_id = u_id GROUP BY tier ORDER BY requests DESC",
      // Anti-join: traffic from user ids not in the roster.
      "SELECT COUNT(*) FROM logs WHERE NOT EXISTS "
      "(SELECT * FROM users WHERE u_id = user_id)",
  };

  for (const char* sql : queries) {
    printf("> %s\n", sql);
    auto result = db->Execute(sql);
    if (!result.ok()) {
      fprintf(stderr, "failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    printf("%s  (%.1f ms)\n\n", result->ToString(8).c_str(),
           result->seconds * 1000);
  }
  return 0;
}
