#include "exec/raw_scan.h"

#include <algorithm>
#include <utility>

#include "expr/evaluator.h"
#include "pmap/temp_map.h"

namespace nodb {

namespace {
constexpr uint32_t kUnknown = PositionalMap::kUnknown;
static_assert(kUnknown == kNoFieldPos,
              "positional map and adapter sentinels must agree");
}  // namespace

ScanAttrPlan ComputeScanAttrPlan(const PlannedScan& scan, int ncols,
                                 const InSituOptions& opts) {
  ScanAttrPlan plan;
  // Without selective tuple formation every column is an output column;
  // without selective parsing phase 1 covers all output columns (parse
  // first, filter later — the straw-man).
  std::vector<int>& needed = plan.output_attrs;
  if (opts.selective_tuple_formation) {
    needed.insert(needed.end(), scan.where_attrs.begin(),
                  scan.where_attrs.end());
    needed.insert(needed.end(), scan.payload_attrs.begin(),
                  scan.payload_attrs.end());
  } else {
    for (int c = 0; c < ncols; ++c) needed.push_back(c);
  }
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());

  if (opts.selective_parsing) {
    plan.phase1_attrs = scan.where_attrs;
    std::sort(plan.phase1_attrs.begin(), plan.phase1_attrs.end());
    for (int a : plan.output_attrs) {
      if (!std::binary_search(plan.phase1_attrs.begin(),
                              plan.phase1_attrs.end(), a)) {
        plan.phase2_attrs.push_back(a);
      }
    }
  } else {
    plan.phase1_attrs = plan.output_attrs;
  }

  plan.max_token_attr =
      opts.selective_tokenizing
          ? (plan.output_attrs.empty() ? 0 : plan.output_attrs.back())
          : ncols - 1;
  return plan;
}

RawScanOp::RawScanOp(TableRuntime* runtime, const PlannedScan* scan,
                     int working_width, InSituOptions options,
                     ExecControlPtr control)
    : runtime_(runtime), scan_(scan), working_width_(working_width),
      opts_(options), control_(std::move(control)) {}

RawScanOp::~RawScanOp() {
  if (epoch_token_ != 0 && runtime_->pmap != nullptr) {
    runtime_->pmap->EndEpoch(epoch_token_);
  }
}

Status RawScanOp::Open() {
  if (runtime_->adapter == nullptr) {
    return Status::Internal("raw scan over a table without a source adapter");
  }
  adapter_ = runtime_->adapter.get();
  traits_ = adapter_->traits();
  ncols_ = runtime_->schema.num_columns();
  slot_of_.assign(ncols_, -1);
  if (runtime_->pmap != nullptr) {
    tuples_per_stripe_ = runtime_->pmap->tuples_per_chunk();
  } else if (runtime_->cache != nullptr) {
    tuples_per_stripe_ = runtime_->cache->tuples_per_chunk();
  }

  // Attribute phases (§4.1), shared with the parallel operator.
  ScanAttrPlan attr_plan = ComputeScanAttrPlan(*scan_, ncols_, opts_);
  output_attrs_ = std::move(attr_plan.output_attrs);
  phase1_attrs_ = std::move(attr_plan.phase1_attrs);
  phase2_attrs_ = std::move(attr_plan.phase2_attrs);
  max_token_attr_ = attr_plan.max_token_attr;

  if (runtime_->pmap != nullptr && opts_.use_positional_map) {
    epoch_token_ = runtime_->pmap->BeginEpoch();
  }
  if (runtime_->access != nullptr) {
    runtime_->access->RecordScan(output_attrs_);
  }
  NODB_ASSIGN_OR_RETURN(cursor_, adapter_->OpenCursor());
  next_tuple_ = 0;
  need_seek_ = false;
  seek_resolved_ = true;
  eof_ = false;
  out_size_ = 0;
  out_idx_ = 0;
  return Status::OK();
}

Result<size_t> RawScanOp::Next(RowBatch* batch) {
  // One stripe of tuples is tokenized/parsed per LoadStripe, then handed
  // out batch-by-batch: the whole tokenize + map-probe loop runs without a
  // virtual call per tuple. Rows move out by swap, returning the batch
  // slot's old storage to the recycler for the next stripe to reuse.
  batch->Clear();
  while (!batch->full()) {
    if (out_idx_ >= out_size_) {
      if (eof_) break;
      // Stripe boundary: the cancellation/deadline poll point. Erroring
      // here abandons the pipeline; the destructor ends the scan epoch.
      NODB_RETURN_IF_ERROR(CheckControl(control_));
      out_size_ = 0;
      out_idx_ = 0;
      NODB_RETURN_IF_ERROR(LoadStripe());
      continue;
    }
    std::swap(batch->PushRow(), out_rows_[out_idx_++]);
  }
  return batch->size();
}

uint64_t RawScanOp::KnownTotalTuples() const {
  if (runtime_->pmap != nullptr && runtime_->pmap->total_tuples() > 0) {
    return runtime_->pmap->total_tuples();
  }
  if (runtime_->promoted != nullptr && runtime_->promoted->row_count() > 0) {
    return runtime_->promoted->row_count();
  }
  int64_t hint = adapter_->row_count_hint();
  return hint > 0 ? static_cast<uint64_t>(hint) : 0;
}

Status RawScanOp::ServeFromCache(const std::vector<ColumnCache::Column>& cols,
                                 int n) {
  const int offset = scan_->table.offset;
  for (int t = 0; t < n; ++t) {
    Row& row = OutSlot();
    if (row.size() != static_cast<size_t>(working_width_)) {
      row.assign(working_width_, Value());
    }
    for (int a : phase1_attrs_) {
      row[offset + a] = (*cols[a])[t];
    }
    bool pass = true;
    for (const ExprPtr& conj : scan_->conjuncts) {
      NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*conj, row));
      if (!Evaluator::IsTruthy(v)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    for (int a : phase2_attrs_) {
      row[offset + a] = (*cols[a])[t];
    }
    ++out_size_;
  }
  return Status::OK();
}

Status RawScanOp::LoadStripe() {
  PositionalMap* pm = runtime_->pmap.get();
  ColumnCache* cache = opts_.use_cache ? runtime_->cache.get() : nullptr;
  TableStats* stats = opts_.collect_stats ? runtime_->stats.get() : nullptr;
  const bool use_pm_positions = opts_.use_positional_map && pm != nullptr;
  const uint64_t stripe = next_tuple_ / tuples_per_stripe_;
  const uint64_t stripe_first = stripe * tuples_per_stripe_;

  // Expected stripe population: known once a full scan completed (the
  // positional map's total) or up front for fixed-stride sources.
  const uint64_t total_tuples = KnownTotalTuples();
  int n_expected = -1;
  if (total_tuples > 0) {
    if (next_tuple_ >= total_tuples) {
      eof_ = true;
      return Status::OK();
    }
    n_expected = static_cast<int>(
        std::min<uint64_t>(tuples_per_stripe_, total_tuples - stripe_first));
  }

  // Promoted-column and cache snapshots for this stripe, fetched once up
  // front — the promoted store first (it covers whole columns and costs no
  // budget churn), the cache as fallback. The shared_ptr columns stay valid
  // whatever concurrent promotion/demotion or cache eviction does, and
  // "fully cached" is decided on the snapshots themselves — a race between
  // a membership check and the reads degrades to the file path instead of
  // failing the query.
  PromotedColumns* promo = runtime_->promoted.get();
  ColumnAccessTracker* tracker = runtime_->access.get();
  std::vector<ColumnCache::Column> cached_col(ncols_);
  std::vector<uint8_t> from_promoted(ncols_, 0);
  bool all_cached =
      (cache != nullptr || promo != nullptr) && n_expected > 0;
  if (n_expected > 0) {
    for (int a : output_attrs_) {
      if (promo != nullptr) {
        PromotedColumns::Chunk col = promo->ChunkFor(stripe, a);
        if (col != nullptr && static_cast<int>(col->size()) == n_expected) {
          cached_col[a] = std::move(col);
          from_promoted[a] = 1;
          continue;
        }
      }
      if (cache != nullptr) {
        ColumnCache::Column col = cache->Get(stripe, a);
        if (col != nullptr && static_cast<int>(col->size()) == n_expected) {
          cached_col[a] = std::move(col);
          continue;
        }
      }
      all_cached = false;
    }
  }

  // Fast path: the whole stripe is served from warm columns — no file
  // access at all (§4.3: "if the attribute is requested by future queries,
  // PostgresRaw will read it directly from the cache"). The next stripe's
  // seek offset is resolved lazily: a fully promoted table serves every
  // stripe this way and never needs the file (or a spine) at all.
  if (all_cached) {
    NODB_RETURN_IF_ERROR(ServeFromCache(cached_col, n_expected));
    if (tracker != nullptr) {
      for (int a : output_attrs_) {
        if (from_promoted[a]) {
          tracker->RecordPromotedServed(a, n_expected);
        } else {
          tracker->RecordCacheServed(a, n_expected);
        }
      }
    }
    next_tuple_ = stripe_first + n_expected;
    if (next_tuple_ >= total_tuples) {
      eof_ = true;
    } else {
      need_seek_ = true;
      seek_index_ = next_tuple_;
      seek_offset_ = 0;
      seek_resolved_ = false;
    }
    return Status::OK();
  }

  // File path. Position the cursor at the stripe's first record. Seek
  // targets are always data-record starts, so any header is behind us.
  // cached_col still serves the mixed mode (some attrs cached, some not).
  if (need_seek_) {
    if (!seek_resolved_) {
      if (traits_.fixed_stride) {
        seek_offset_ = 0;
      } else if (auto start = pm != nullptr ? pm->RowStart(seek_index_)
                                            : std::nullopt;
                 start.has_value()) {
        seek_offset_ = *start;
      } else {
        return Status::Internal(
            "cached stripe without spine for the next stripe");
      }
      seek_resolved_ = true;
    }
    NODB_RETURN_IF_ERROR(cursor_->SeekToRecord(seek_index_, seek_offset_));
    need_seek_ = false;
  }

  // Snapshot of attributes already indexed for this stripe, taken before we
  // open this query's insert chunk (a fresh, still-hole-filled chunk must
  // not be treated as an anchor source).
  std::vector<int> indexed_before;
  if (use_pm_positions) {
    indexed_before = pm->IndexedAttrsForStripe(stripe);
  }

  // Decide which attribute positions this stripe will contribute to the map
  // (§4.2 Map Population + the combination policy). With
  // index_intermediates every attribute the tokenizer may cross is
  // recorded, not just the requested ones.
  std::vector<int> attrs_to_insert;
  bool combination_insert = false;
  if (use_pm_positions) {
    if (opts_.index_intermediates) {
      for (int a = 0; a <= max_token_attr_; ++a) {
        if (!pm->StripeHasAttr(stripe, a)) attrs_to_insert.push_back(a);
      }
    } else {
      for (int a : output_attrs_) {
        if (!pm->StripeHasAttr(stripe, a)) attrs_to_insert.push_back(a);
      }
    }
    if (attrs_to_insert.empty() && opts_.index_combinations &&
        output_attrs_.size() > 1 &&
        !pm->StripeAttrsShareChunk(stripe, output_attrs_)) {
      attrs_to_insert = output_attrs_;
      combination_insert = true;  // re-index attrs the stripe already has
    }
  }
  // Spine entries and discovered positions are staged in a private
  // fragment and merged at stripe end — the map is never left with a
  // half-filled fresh chunk, and the lock is paid once per stripe, not per
  // tuple. The RAII installer covers error paths too, so whatever was
  // learned before a parse failure still lands in the map (as the eager
  // insert path used to guarantee).
  frag_.Reset(attrs_to_insert);
  frag_pos_.assign(attrs_to_insert.size(), kUnknown);
  struct FragmentInstaller {
    PositionalMap* pm = nullptr;
    const PmapFragment* frag = nullptr;
    uint64_t first_tuple = 0;
    uint64_t epoch = 0;
    bool filter_indexed = true;
    ~FragmentInstaller() {
      if (pm != nullptr) {
        pm->InstallFragment(*frag, first_tuple, epoch, filter_indexed);
      }
    }
  } installer{pm, &frag_, stripe_first, epoch_token_, !combination_insert};

  // Temporary map (§4.2 Pre-fetching): prefetch known positions for the
  // query's attributes plus, per requested attribute, its nearest indexed
  // neighbours (the anchors incremental tokenizing starts from). Attributes
  // being inserted this stripe also need slots so crossed positions can be
  // recorded. Bounding the anchor set keeps the temporary map small no
  // matter how many combinations history has indexed.
  temp_attrs_ = output_attrs_;
  temp_attrs_.insert(temp_attrs_.end(), attrs_to_insert.begin(),
                     attrs_to_insert.end());
  if (use_pm_positions) {
    for (int a : output_attrs_) {
      auto lo = std::lower_bound(indexed_before.begin(), indexed_before.end(),
                                 a);
      if (lo != indexed_before.begin()) {
        temp_attrs_.push_back(*(lo - 1));  // floor anchor, strictly below
      }
      auto hi = std::upper_bound(indexed_before.begin(), indexed_before.end(),
                                 a);
      if (hi != indexed_before.end()) {
        temp_attrs_.push_back(*hi);  // ceiling anchor, strictly above
      }
    }
  }
  std::sort(temp_attrs_.begin(), temp_attrs_.end());
  temp_attrs_.erase(std::unique(temp_attrs_.begin(), temp_attrs_.end()),
                    temp_attrs_.end());
  const int nslots = static_cast<int>(temp_attrs_.size());
  slot_of_.assign(ncols_, -1);
  for (int s = 0; s < nslots; ++s) slot_of_[temp_attrs_[s]] = s;
  TempMap temp(use_pm_positions ? pm : nullptr, stripe, tuples_per_stripe_,
               temp_attrs_);

  // The sink every adapter hook reports through: discovered field starts
  // land directly in the tracked per-tuple slots, and container corruption
  // noticed mid-walk lands in record_corrupt.
  tuple_pos_.assign(nslots, kUnknown);
  bool record_corrupt = false;
  const PositionSink sink{slot_of_.data(), tuple_pos_.data(),
                          &record_corrupt};

  // Cache population buffers (§4.3: only attributes parsed for this query).
  std::vector<int> attrs_to_cache;
  std::vector<std::vector<Value>> cache_buf(ncols_);
  if (cache != nullptr) {
    for (int a : output_attrs_) {
      if (cached_col[a] == nullptr && !cache->Contains(stripe, a)) {
        attrs_to_cache.push_back(a);
        cache_buf[a].reserve(tuples_per_stripe_);
      }
    }
  }
  std::vector<bool> cache_attr(ncols_, false);
  for (int a : attrs_to_cache) cache_attr[a] = true;

  // Statistics are collected once per attribute (the paper charges a small
  // one-time overhead, §4.4/Fig. 12); attributes with a finalized snapshot
  // are skipped on later queries. Values are staged per stripe and handed
  // to the builder in one batch — the stats mutex is taken per stripe and
  // attribute, not per value. A stripe that fails mid-parse drops its
  // staged values; the builders only ever see completed stripes.
  std::vector<bool> stats_attr(ncols_, false);
  std::vector<std::vector<Value>> stats_buf(ncols_);
  bool any_stats = false;
  if (stats != nullptr) {
    for (int a : output_attrs_) {
      if (!stats->HasAttr(a)) {
        stats_attr[a] = true;
        any_stats = true;
        // Attributes also being cached this stripe stage the same values
        // into cache_buf under the same qualification condition — the
        // stats flush reads that buffer instead of staging a second copy.
        if (!cache_attr[a]) stats_buf[a].reserve(tuples_per_stripe_);
      }
    }
  }

  // Per-column access accounting: conversions are tallied in stripe-local
  // counters and flushed to the shared tracker once per stripe.
  std::vector<uint64_t> parsed_rows, parsed_bytes;
  if (tracker != nullptr) {
    parsed_rows.assign(ncols_, 0);
    parsed_bytes.assign(ncols_, 0);
  }

  // Slot of each to-be-inserted attribute, for the per-tuple staging loop.
  std::vector<int> insert_slots(attrs_to_insert.size());
  for (size_t i = 0; i < attrs_to_insert.size(); ++i) {
    insert_slots[i] = slot_of_[attrs_to_insert[i]];
  }

  const int offset = scan_->table.offset;
  bool all_qualified = true;
  int n = 0;

  // Dense path: when the positional map holds nothing for this stripe (the
  // cold scan), per-field anchor walks have no anchors to exploit — one
  // batch-tokenizer pass per record resolves every start up front instead,
  // feeding the same tuple_pos_ slots the incremental walk would fill.
  // Formats without a batch tokenizer (and the forced-scalar reference
  // path) report -1 on the first record and fall back for the stripe.
  bool use_dense = !use_pm_positions || indexed_before.empty();
  std::vector<uint32_t> dense_starts;
  if (use_dense) dense_starts.resize(max_token_attr_ + 1);

  RecordRef rec;
  for (; n < tuples_per_stripe_; ++n) {
    NODB_ASSIGN_OR_RETURN(bool has, cursor_->Next(&rec));
    if (!has) {
      eof_ = true;
      break;
    }
    int dense_nf = -1;
    if (use_dense) {
      dense_nf = adapter_->TokenizeRecord(rec, max_token_attr_,
                                          dense_starts.data());
      if (dense_nf < 0) use_dense = false;
    }
    if (dense_nf >= 0) {
      for (int s = 0; s < nslots; ++s) {
        int a = temp_attrs_[s];
        tuple_pos_[s] = a < dense_nf ? dense_starts[a] : kAbsentFieldPos;
      }
    } else {
      // Seed per-tuple positions from the temporary map.
      for (int s = 0; s < nslots; ++s) {
        tuple_pos_[s] = temp.Position(n, s);
      }
      if (traits_.attr0_at_start && nslots > 0 && temp_attrs_[0] == 0) {
        tuple_pos_[0] = 0;
      }
    }

    // For full-record tokenizers one FindForward call resolves every
    // present tracked attribute; afterwards a still-unknown slot means the
    // field is absent from this record — don't walk it again.
    bool record_walked = false;
    record_corrupt = false;

    // After a full-record walk, tracked slots still unresolved hold fields
    // the record does not contain: mark them absent so the positional map
    // remembers that and warm queries over sparse data never re-walk.
    auto mark_absent_slots = [&] {
      record_walked = true;
      for (int s = 0; s < nslots; ++s) {
        if (tuple_pos_[s] == kUnknown) tuple_pos_[s] = kAbsentFieldPos;
      }
    };

    // Resolves the start offset of `a`, incrementally tokenizing from the
    // nearest anchor (forward, or backward when closer and the format
    // permits; §4.2 "Exploiting the Positional Map"). The adapter reports
    // every crossed tracked attribute through the sink.
    auto resolve = [&](int a) -> uint32_t {
      int slot = slot_of_[a];
      if (slot >= 0 && tuple_pos_[slot] != kUnknown) return tuple_pos_[slot];
      if (a == 0 && traits_.attr0_at_start) {
        if (slot >= 0) tuple_pos_[slot] = 0;
        return 0;
      }
      // Nearest known anchors among tracked attributes. Slots are sorted by
      // attribute, so walk outward from this attribute's own slot (resolved
      // attributes of this tuple usually sit immediately below).
      int below = -1, above = -1;
      int self = slot >= 0
                     ? slot
                     : static_cast<int>(std::lower_bound(temp_attrs_.begin(),
                                                         temp_attrs_.end(),
                                                         a) -
                                        temp_attrs_.begin());
      for (int s = self - 1; s >= 0; --s) {
        if (tuple_pos_[s] != kUnknown && tuple_pos_[s] != kAbsentFieldPos) {
          below = s;
          break;
        }
      }
      for (int s = self + (slot >= 0 ? 1 : 0); s < nslots; ++s) {
        if (temp_attrs_[s] <= a) continue;
        if (tuple_pos_[s] != kUnknown && tuple_pos_[s] != kAbsentFieldPos) {
          above = s;
          break;
        }
      }
      uint32_t pos = kUnknown;
      bool try_backward = above >= 0 && traits_.backward_tokenize &&
                          (below < 0 || (temp_attrs_[above] - a) <
                                            (a - temp_attrs_[below]));
      if (try_backward) {
        pos = adapter_->FindBackward(rec, temp_attrs_[above],
                                     tuple_pos_[above], a, sink);
      }
      if (pos == kUnknown) {
        if (traits_.full_record_tokenize && record_walked) return kUnknown;
        int from_attr = below >= 0 ? temp_attrs_[below] : -1;
        uint32_t from_pos = below >= 0 ? tuple_pos_[below] : 0;
        pos = adapter_->FindForward(rec, from_attr, from_pos, a, sink);
        if (traits_.full_record_tokenize) {
          mark_absent_slots();
        } else {
          record_walked = true;
        }
      }
      if (slot >= 0 && pos != kUnknown) tuple_pos_[slot] = pos;
      return pos;
    };

    auto parse_attr = [&](int a) -> Result<Value> {
      if (cached_col[a] != nullptr) return (*cached_col[a])[n];
      uint32_t pos = resolve(a);
      if (pos == kUnknown || pos == kAbsentFieldPos ||
          pos > rec.data.size()) {
        return Value::Null(runtime_->schema.column(a).type);
      }
      uint32_t next_pos = kUnknown;
      if (dense_nf >= 0) {
        if (a + 1 < dense_nf) next_pos = dense_starts[a + 1];
      } else {
        int next_slot = a + 1 < ncols_ ? slot_of_[a + 1] : -1;
        if (next_slot >= 0 && tuple_pos_[next_slot] != kAbsentFieldPos) {
          next_pos = tuple_pos_[next_slot];
        }
      }
      uint32_t end = adapter_->FieldEnd(rec, a, pos, next_pos);
      if (tracker != nullptr) {
        ++parsed_rows[a];
        parsed_bytes[a] += end > pos ? end - pos : 0;
      }
      return adapter_->ParseField(rec, a, pos, end);
    };

    // Without selective tokenizing (external-files mode), walk the whole
    // record up front, charging the full tokenization cost.
    if (!opts_.selective_tokenizing && ncols_ > 0) {
      adapter_->FindForward(rec, -1, 0, ncols_ - 1, sink);
      if (traits_.full_record_tokenize) mark_absent_slots();
    }

    // Recycled rows of the right width are reused as-is: every output slot
    // is overwritten below before the row can leave, and slots outside the
    // output set are dead to this plan (the planner only binds expressions
    // over output attributes).
    Row& row = OutSlot();
    if (row.size() != static_cast<size_t>(working_width_)) {
      row.assign(working_width_, Value());
    }

    // Phase 1: attributes the WHERE clause needs, for every tuple.
    for (int a : phase1_attrs_) {
      Result<Value> v = parse_attr(a);
      if (!v.ok()) return v.status();
      if (cache_attr[a]) {
        cache_buf[a].push_back(v.value());
      } else if (any_stats && stats_attr[a]) {
        stats_buf[a].push_back(v.value());
      }
      row[offset + a] = std::move(v).value();
    }

    bool pass = true;
    for (const ExprPtr& conj : scan_->conjuncts) {
      NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*conj, row));
      if (!Evaluator::IsTruthy(v)) {
        pass = false;
        break;
      }
    }

    if (pass) {
      // Phase 2: remaining attributes, only now that the tuple qualifies
      // (selective parsing defers the conversion cost; §4.1).
      for (int a : phase2_attrs_) {
        Result<Value> v = parse_attr(a);
        if (!v.ok()) return v.status();
        if (cache_attr[a]) {
          cache_buf[a].push_back(v.value());
        } else if (any_stats && stats_attr[a]) {
          stats_buf[a].push_back(v.value());
        }
        row[offset + a] = std::move(v).value();
      }
      ++out_size_;
    } else {
      all_qualified = false;
    }

    // An adapter flagged this record as container corruption (not one
    // well-formed unit): fail the query rather than ship whatever fields
    // the walk salvaged.
    if (record_corrupt) {
      return Status::Corruption("corrupt raw record at offset " +
                                std::to_string(rec.offset) + " of '" +
                                std::string(adapter_->path()) + "'");
    }

    // Stage every position this tuple's tokenization discovered —
    // requested attributes and intermediates alike (§4.2 Map Population) —
    // plus the tuple's row start for the spine.
    if (pm != nullptr) {
      for (size_t i = 0; i < insert_slots.size(); ++i) {
        frag_pos_[i] = tuple_pos_[insert_slots[i]];
      }
      frag_.AddRecord(rec.offset, frag_pos_.data());
    }
  }

  // Flush the stripe's access accounting: attributes served from a warm
  // column count as cache/promoted reads for every processed tuple, the
  // rest report their actual conversions.
  if (tracker != nullptr && n > 0) {
    for (int a : output_attrs_) {
      if (cached_col[a] != nullptr) {
        if (from_promoted[a]) {
          tracker->RecordPromotedServed(a, n);
        } else {
          tracker->RecordCacheServed(a, n);
        }
      } else {
        tracker->RecordParsed(a, parsed_rows[a], parsed_bytes[a]);
      }
    }
  }

  // Hand the staged statistics to the builders, one lock per attribute
  // (cached attributes share the cache staging buffer).
  if (any_stats && n > 0) {
    for (int a : output_attrs_) {
      if (!stats_attr[a]) continue;
      const std::vector<Value>& staged =
          cache_attr[a] ? cache_buf[a] : stats_buf[a];
      if (!staged.empty()) {
        stats->AddValues(a, staged.data(), staged.size());
      }
    }
  }

  // Publish complete cache chunks. Phase-1 buffers hold every tuple;
  // phase-2 buffers are complete only if every tuple qualified.
  if (cache != nullptr && n > 0) {
    for (int a : attrs_to_cache) {
      bool complete = static_cast<int>(cache_buf[a].size()) == n;
      bool is_phase2 =
          std::find(phase2_attrs_.begin(), phase2_attrs_.end(), a) !=
          phase2_attrs_.end();
      if (complete && (!is_phase2 || all_qualified)) {
        cache->Put(stripe, a, std::move(cache_buf[a]));
      }
    }
  }

  next_tuple_ = stripe_first + n;
  // A full stripe can end exactly on the table's last tuple (row count a
  // multiple of the stripe size): with a known total that is EOF too, and
  // the finalization below must run now — the next call would only hit the
  // early return at the top.
  if (!eof_ && total_tuples > 0 && next_tuple_ >= total_tuples) {
    eof_ = true;
  }
  if (eof_) {
    if (pm != nullptr) pm->SetTotalTuples(next_tuple_);
    runtime_->known_row_count = static_cast<double>(next_tuple_);
    if (stats != nullptr) {
      stats->SetRowCount(next_tuple_);
      runtime_->stats_populated = true;
    }
  }
  return Status::OK();
}

Status RawScanOp::Close() {
  if (opts_.collect_stats && runtime_->stats != nullptr) {
    runtime_->stats->FinalizeAll();
  }
  if (epoch_token_ != 0 && runtime_->pmap != nullptr) {
    runtime_->pmap->EndEpoch(epoch_token_);
    epoch_token_ = 0;
  }
  return Status::OK();
}

}  // namespace nodb
