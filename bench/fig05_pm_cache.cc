// Figure 5 — "Effect of the positional map and caching": per-query response
// time over a 50-query sequence of random 5-attribute projections, for the
// four PostgresRaw variants. The paper's shape: all variants pay the same
// first query; PM+C then wins everywhere; cache-only fluctuates (misses pay
// full parsing); the baseline stays flat and slow.

#include "common.h"
#include "util/rng.h"

using namespace nodb;
using namespace nodb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintBanner(
      "Figure 5: PostgresRaw variants over a 50-query sequence",
      "Q1 equal everywhere; Q2 82-88% faster with map/cache; cache-only "
      "spikes 3-5x on misses; baseline flat.");

  MicroDataSpec spec;
  spec.rows = static_cast<uint64_t>(20000 * args.scale);
  spec.cols = 150;  // the paper uses 150 attributes
  spec.seed = args.seed;
  std::string csv = MicroCsv(spec, "fig05");
  Schema schema = MicroSchema(spec);

  const SystemUnderTest kVariants[] = {
      SystemUnderTest::kPostgresRawPMC, SystemUnderTest::kPostgresRawPM,
      SystemUnderTest::kPostgresRawC, SystemUnderTest::kPostgresRawBaseline};
  constexpr int kQueries = 50;

  // Same query sequence for every variant.
  std::vector<std::string> queries;
  {
    Rng rng(args.seed);
    for (int q = 0; q < kQueries; ++q) {
      queries.push_back(RandomProjectionQuery("wide", spec.cols, 5, &rng));
    }
  }

  std::vector<std::vector<double>> times(std::size(kVariants));
  for (size_t v = 0; v < std::size(kVariants); ++v) {
    auto db = MakeEngine(kVariants[v]);
    if (!db->RegisterCsv("wide", csv, schema).ok()) return 1;
    for (const std::string& q : queries) {
      times[v].push_back(RunQuery(db.get(), q));
    }
  }

  TextTable table({"query", "PM+C(s)", "PM(s)", "C(s)", "Baseline(s)"});
  for (int q = 0; q < kQueries; ++q) {
    table.AddRow({std::to_string(q + 1), Fmt(times[0][q]), Fmt(times[1][q]),
                  Fmt(times[2][q]), Fmt(times[3][q])});
  }
  table.Print();

  auto avg_tail = [](const std::vector<double>& t) {
    double sum = 0;
    for (size_t i = 1; i < t.size(); ++i) sum += t[i];
    return sum / (t.size() - 1);
  };
  printf("\nSummary (Q2..Q50 averages):\n");
  printf("  PM+C     %.4fs\n", avg_tail(times[0]));
  printf("  PM       %.4fs\n", avg_tail(times[1]));
  printf("  C        %.4fs\n", avg_tail(times[2]));
  printf("  Baseline %.4fs\n", avg_tail(times[3]));
  printf("  Q2 improvement over Q1 (PM+C): %.0f%%\n",
         100.0 * (1.0 - times[0][1] / times[0][0]));
  return 0;
}
