#include "csv/tokenizer.h"

#include <cstring>

namespace nodb {

namespace {

/// Advances past the quoted field starting at `pos` (which points at the
/// opening quote). Returns the offset just past the closing quote; embedded
/// "" pairs are skipped. If the quote never closes, returns line.size().
uint32_t SkipQuoted(std::string_view line, char quote, uint32_t pos) {
  uint32_t i = pos + 1;
  while (i < line.size()) {
    if (line[i] == quote) {
      if (i + 1 < line.size() && line[i + 1] == quote) {
        i += 2;  // escaped quote
        continue;
      }
      return i + 1;
    }
    ++i;
  }
  return static_cast<uint32_t>(line.size());
}

/// Offset one past the end of the field starting at `begin`, i.e. the offset
/// of the delimiter terminating it (or line end).
uint32_t ScanFieldEnd(std::string_view line, const CsvDialect& d,
                      uint32_t begin) {
  if (d.quoting && begin < line.size() && line[begin] == d.quote) {
    uint32_t after = SkipQuoted(line, d.quote, begin);
    // Trailing junk after a closing quote is tolerated up to the delimiter.
    while (after < line.size() && line[after] != d.delimiter) ++after;
    return after;
  }
  // An empty view may carry a null data(); memchr's pointer must be valid
  // even for length 0.
  if (begin >= line.size()) return static_cast<uint32_t>(line.size());
  const char* base = line.data();
  const char* hit = static_cast<const char*>(
      memchr(base + begin, d.delimiter, line.size() - begin));
  return hit == nullptr ? static_cast<uint32_t>(line.size())
                        : static_cast<uint32_t>(hit - base);
}

}  // namespace

int TokenizeStarts(std::string_view line, const CsvDialect& dialect, int upto,
                   uint32_t* starts) {
  int found = 0;
  uint32_t pos = 0;
  for (int attr = 0; attr <= upto; ++attr) {
    starts[attr] = pos;
    ++found;
    if (attr == upto) break;
    uint32_t end = ScanFieldEnd(line, dialect, pos);
    if (end >= line.size()) break;  // no more delimiters: line is short
    pos = end + 1;
  }
  return found;
}

uint32_t FindFieldForward(std::string_view line, const CsvDialect& dialect,
                          int from_attr, uint32_t from_offset, int to_attr,
                          const PositionSink* sink) {
  uint32_t pos = from_offset;
  for (int attr = from_attr; attr < to_attr; ++attr) {
    uint32_t end = ScanFieldEnd(line, dialect, pos);
    if (end >= line.size()) return kInvalidOffset;
    pos = end + 1;
    if (sink != nullptr) sink->Record(attr + 1, pos);
  }
  return pos;
}

uint32_t FindFieldBackward(std::string_view line, const CsvDialect& dialect,
                           int from_attr, uint32_t from_offset, int to_attr,
                           const PositionSink* sink) {
  if (to_attr == 0) return 0;
  // Walking left from the start of field `from_attr`, crossing the k-th
  // delimiter reveals the start of field (from_attr - k + 1): the first
  // delimiter crossed opens the anchor field itself.
  uint32_t i = from_offset;
  int crossings = 0;
  while (i > 0) {
    --i;
    if (line[i] == dialect.delimiter) {
      ++crossings;
      int started = from_attr - crossings + 1;
      if (sink != nullptr) sink->Record(started, i + 1);
      if (started == to_attr) return i + 1;
      if (started < to_attr) return kInvalidOffset;  // malformed line
    }
  }
  return kInvalidOffset;
}

uint32_t FieldEndAt(std::string_view line, const CsvDialect& dialect,
                    uint32_t begin) {
  return ScanFieldEnd(line, dialect, begin);
}

int CountFields(std::string_view line, const CsvDialect& dialect) {
  int count = 1;
  uint32_t pos = 0;
  while (true) {
    uint32_t end = ScanFieldEnd(line, dialect, pos);
    if (end >= line.size()) break;
    pos = end + 1;
    ++count;
  }
  return count;
}

}  // namespace nodb
