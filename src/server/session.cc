#include "server/session.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

#include "json/json_text.h"
#include "server/server.h"
#include "util/str_conv.h"

namespace nodb {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Session::Session(uint64_t id, int fd, QueryServer* server)
    : id_(id), fd_(fd), server_(server) {}

Session::~Session() {
  Join();
  // The descriptor lives exactly as long as the session: Run() only ever
  // shuts the socket down (close here would race RequestStop() against
  // kernel fd-number reuse).
  ::close(fd_);
}

void Session::Start() {
  thread_ = std::thread([this] { Run(); });
}

void Session::RequestStop() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    if (current_control_ != nullptr) {
      current_control_->cancelled.store(true, std::memory_order_release);
    }
  }
  // Unblocks a recv() waiting for the next request and makes a blocked
  // send() (slow client) fail instead of holding the thread hostage.
  ::shutdown(fd_, SHUT_RDWR);
}

void Session::Join() {
  if (thread_.joinable()) thread_.join();
}

void Session::Run() {
  ServerMetrics* metrics = server_->metrics();
  metrics->sessions_opened.fetch_add(1, std::memory_order_relaxed);

  std::string line;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (!ReadLine(&line)) break;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Result<Request> req = ParseRequest(line);
    if (!req.ok()) {
      if (!WriteAll(ErrorLine(req.status(), /*id=*/""))) break;
      continue;
    }
    bool quit = false;
    switch (req->kind) {
      case Request::Kind::kQuery:
        ServeQuery(*req);
        break;
      case Request::Kind::kStats:
        ServeStats();
        break;
      case Request::Kind::kCancel:
        // Mid-stream CANCELs are consumed by the streaming loop's poll;
        // one arriving here raced a query that already ended.
        (void)WriteAll(ErrorLine(
            Status::InvalidArgument("no query in flight"), req->id));
        break;
      case Request::Kind::kPing:
        (void)WriteAll(PongLine());
        break;
      case Request::Kind::kQuit:
        quit = true;
        break;
    }
    if (quit) break;
  }

  ::shutdown(fd_, SHUT_RDWR);  // EOF to the client; close happens in ~Session
  metrics->sessions_closed.fetch_add(1, std::memory_order_relaxed);
  finished_.store(true, std::memory_order_release);
}

void Session::HarvestLines() {
  size_t start = 0;
  while (true) {
    size_t nl = inbuf_.find('\n', start);
    if (nl == std::string::npos) break;
    pending_lines_.emplace_back(inbuf_, start, nl - start);
    start = nl + 1;
  }
  if (start > 0) inbuf_.erase(0, start);
}

bool Session::ReadLine(std::string* line) {
  while (true) {
    if (!pending_lines_.empty()) {
      *line = std::move(pending_lines_.front());
      pending_lines_.pop_front();
      return true;
    }
    if (stopping_.load(std::memory_order_acquire)) return false;
    char buf[4096];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return false;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    inbuf_.append(buf, static_cast<size_t>(n));
    HarvestLines();
  }
}

bool Session::PollForCancel() {
  // Drain whatever already arrived, without ever blocking the stream.
  while (true) {
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/0);
    if (ready == 0) break;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return true;  // socket unusable: stop the query
    }
    char buf[4096];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n == 0) return true;  // peer disconnected mid-stream
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return true;
    }
    inbuf_.append(buf, static_cast<size_t>(n));
  }
  HarvestLines();
  // Consume CANCEL verbs; anything else (a pipelined next request) stays
  // queued for after this query.
  bool cancelled = false;
  for (auto it = pending_lines_.begin(); it != pending_lines_.end();) {
    Result<Request> req = ParseRequest(*it);
    if (req.ok() && req->kind == Request::Kind::kCancel) {
      cancelled = true;
      it = pending_lines_.erase(it);
    } else {
      ++it;
    }
  }
  return cancelled;
}

bool Session::WriteAll(std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE/ECONNRESET/shutdown: client is gone
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

void Session::ServeQuery(const Request& req) {
  ServerMetrics* metrics = server_->metrics();
  metrics->queries_started.fetch_add(1, std::memory_order_relaxed);
  ++queries_;

  const auto start = std::chrono::steady_clock::now();
  auto control = std::make_shared<ExecControl>();
  int64_t deadline_ms = req.deadline_ms > 0
                            ? req.deadline_ms
                            : server_->config().default_deadline_ms;
  if (deadline_ms > 0) {
    control->TightenDeadline(start + std::chrono::milliseconds(deadline_ms));
  }
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    current_control_ = control;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    control->cancelled.store(true, std::memory_order_release);
  }

  QueryOptions options;
  options.control = control;

  uint64_t rows = 0;
  uint64_t bytes = 0;
  bool cold = false;
  bool client_gone = false;
  Status outcome = Status::OK();

  do {
    Result<QueryCursor> cursor = server_->db()->Query(req.sql, options);
    if (!cursor.ok()) {
      outcome = cursor.status();
      break;
    }
    cold = server_->IsColdQuery(cursor->tables());
    Result<AdmissionController::Ticket> ticket =
        server_->admission()->Admit(cold, control);
    if (!ticket.ok()) {
      outcome = ticket.status();
      break;
    }
    (cold ? metrics->cold_admitted : metrics->warm_admitted)
        .fetch_add(1, std::memory_order_relaxed);

    std::string line = SchemaLine(cursor->schema());
    if (!WriteAll(line)) {
      client_gone = true;
      outcome = Status::Cancelled("client disconnected");
      break;
    }
    bytes += line.size();

    RowBatch batch = cursor->MakeBatch();
    while (true) {
      if (PollForCancel()) {
        control->cancelled.store(true, std::memory_order_release);
      }
      Result<size_t> n = cursor->Next(&batch);
      if (!n.ok()) {
        outcome = n.status();
        break;
      }
      if (*n == 0) break;  // stream drained, status stays ok
      line.clear();
      AppendBatchLine(&line, batch, *n);
      if (!WriteAll(line)) {
        // Mid-stream disconnect: cancel so the cursor (destroyed with this
        // scope) abandons cleanly, releasing its scan epoch.
        client_gone = true;
        control->cancelled.store(true, std::memory_order_release);
        outcome = Status::Cancelled("client disconnected mid-stream");
        break;
      }
      rows += *n;
      bytes += line.size();
    }
    // Ticket and cursor release here — admission slot and scan epoch are
    // both free before the terminal status line is written.
  } while (false);

  const double seconds = SecondsSince(start);
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    current_control_.reset();
  }

  // All terminal accounting happens BEFORE the terminal line is written:
  // a client that fires STATS the instant it sees the status line observes
  // counters that already include this query. (The terminal line's own
  // bytes are counted as enqueued, write outcome notwithstanding.)
  std::string term;
  std::string_view outcome_name = "ok";
  if (outcome.ok()) {
    metrics->queries_finished.fetch_add(1, std::memory_order_relaxed);
    metrics->latency.Record(seconds * 1e3);
    term = OkLine(rows, cold, seconds, req.id);
  } else {
    switch (outcome.code()) {
      case StatusCode::kCancelled:
        outcome_name = "cancelled";
        metrics->queries_cancelled.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kDeadlineExceeded:
        outcome_name = "deadline";
        metrics->queries_deadline.fetch_add(1, std::memory_order_relaxed);
        break;
      case StatusCode::kResourceExhausted:
        outcome_name = "rejected";
        metrics->queries_rejected.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        outcome_name = "failed";
        metrics->queries_failed.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    if (!client_gone) term = ErrorLine(outcome, req.id);
  }
  bytes += term.size();
  rows_streamed_ += rows;
  bytes_streamed_ += bytes;
  metrics->rows_streamed.fetch_add(rows, std::memory_order_relaxed);
  metrics->bytes_streamed.fetch_add(bytes, std::memory_order_relaxed);
  if (!term.empty()) (void)WriteAll(term);

  if (server_->config().log != nullptr) {
    std::string entry = "{\"event\":\"query\",\"session\":";
    AppendInt64(&entry, static_cast<int64_t>(id_));
    entry += ",\"cold\":";
    entry += cold ? "true" : "false";
    entry += ",\"outcome\":\"";
    entry += outcome_name;
    entry += "\",\"rows\":";
    AppendInt64(&entry, static_cast<int64_t>(rows));
    entry += ",\"seconds\":";
    AppendDouble(&entry, seconds);
    if (!req.id.empty()) {
      entry += ",\"id\":";
      AppendJsonQuoted(&entry, req.id);
    }
    entry += ",\"sql\":";
    AppendJsonQuoted(&entry, req.sql);
    entry += "}";
    server_->LogLine(entry);
  }
}

void Session::ServeStats() {
  SessionStatsView view;
  view.session_id = id_;
  view.queries = queries_;
  view.rows_streamed = rows_streamed_;
  view.bytes_streamed = bytes_streamed_;
  (void)WriteAll(StatsLine(server_->Stats(), view));
}

}  // namespace nodb
