// Workload-driven auto-promotion benchmark: the cold → warming → promoted
// trajectory of one repeated selective query over a 1M-row raw CSV.
//
//   1. cold     — the first query pays the full in-situ tokenize/parse and
//                 populates positional map + column cache on the way.
//   2. warming  — repeats serve the densely-parsed predicate column from
//                 the cache, but the payload column was only parsed for
//                 qualifying rows (too sparse to cache), so every repeat
//                 still reads raw file blocks; the access tracker
//                 accumulates the evidence the promotion policy feeds on.
//   3. promoted — one promotion cycle loads the hot columns into the
//                 columnar tier; the same query then answers entirely from
//                 the promoted store: zero additional raw-file bytes.
//
// The gate is counter-based, not wall-clock (CI machines vary): after
// promotion the raw-file byte counter must stop moving, every scanned row
// must be served from the promoted tier, and the answer must stay
// byte-identical to the cold answer.
//
// Writes BENCH_promotion.json.
//
//   ./bench_micro_promotion [--scale=F] [--seed=N]

#include <chrono>
#include <cstdio>
#include <string>

#include "common.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

uint64_t RawBytesRead(Database* db) {
  for (const TableInfo& info : db->ListTables()) {
    if (info.name == "t") return info.bytes_read;
  }
  return 0;
}

std::string Canonical(Database* db, const std::string& sql) {
  auto r = db->Execute(sql);
  if (!r.ok()) {
    fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
    exit(1);
  }
  return r->Canonical(/*sorted=*/true);
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);

  MicroDataSpec spec;
  spec.rows = static_cast<uint64_t>(1000000 * args.scale);
  spec.cols = 5;
  spec.seed = args.seed;
  std::string csv = MicroCsv(spec, "promotion");

  // ~10% of rows, 2 of 5 attributes: SUM(a2) scans attr 1, the predicate
  // scans attr 3 — those two are the hot set the promoter should pick.
  const std::string selective = "SELECT SUM(a2) AS s FROM t WHERE a4 >= "
                                "900000000";

  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  config.promotion.enabled = true;
  config.promotion.min_scans = 2;
  config.promotion.interval_ms = 0;  // cycles run explicitly, deterministic

  Database db(config);
  Status s = db.RegisterCsv("t", csv, MicroSchema(spec));
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- phase 1: cold -------------------------------------------------------
  const auto t_cold = std::chrono::steady_clock::now();
  const std::string cold_answer = Canonical(&db, selective);
  const double cold_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_cold)
          .count();
  const uint64_t cold_bytes = RawBytesRead(&db);

  // --- phase 2: warming ----------------------------------------------------
  double warm_s = RunQuery(&db, selective);
  for (int r = 0; r < 2; ++r) warm_s = std::min(warm_s, RunQuery(&db, selective));
  const uint64_t warm_bytes = RawBytesRead(&db);

  // --- promotion cycle -----------------------------------------------------
  auto report = db.RunPromotionCycle("t");
  if (!report.ok()) {
    fprintf(stderr, "promotion cycle failed: %s\n",
            report.status().ToString().c_str());
    return 1;
  }

  // --- phase 3: promoted ---------------------------------------------------
  const uint64_t bytes_before_promoted_query = RawBytesRead(&db);
  const std::string promoted_answer = Canonical(&db, selective);
  double promoted_s = RunQuery(&db, selective);
  for (int r = 0; r < 2; ++r) {
    promoted_s = std::min(promoted_s, RunQuery(&db, selective));
  }
  const uint64_t promoted_bytes_read = RawBytesRead(&db);

  uint64_t served_from_promoted = 0;
  if (TableRuntime* rt = db.runtime("t"); rt != nullptr && rt->access) {
    for (int a : report->promoted) {
      served_from_promoted += rt->access->Snapshot(a).rows_from_promoted;
    }
  }

  const bool gate_promoted = !report->promoted.empty();
  const bool gate_zero_raw_bytes =
      promoted_bytes_read == bytes_before_promoted_query;
  const bool gate_identical = promoted_answer == cold_answer;
  const bool gate_served =
      served_from_promoted >= spec.rows * report->promoted.size();

  PrintBanner(
      "Workload-driven auto-promotion (cold -> warming -> promoted)",
      "not in the paper — NoDB's cache serves only what earlier scans "
      "happened to parse densely; the promoter watches the access counters "
      "and loads the whole hot column, after which the repeated query "
      "reads zero raw bytes and still answers byte-identically");
  printf("data: %llu rows x %d cols; promoted %zu column(s), %.1f MiB "
         "resident, %llu cache bytes released\n\n",
         static_cast<unsigned long long>(spec.rows), spec.cols,
         report->promoted.size(),
         static_cast<double>(report->promoted_bytes) / (1024.0 * 1024.0),
         static_cast<unsigned long long>(report->cache_released_bytes));

  TextTable table({"phase", "query (s)", "raw bytes read (cum.)"});
  table.AddRow({"cold", Fmt(cold_s), std::to_string(cold_bytes)});
  table.AddRow({"warming", Fmt(warm_s), std::to_string(warm_bytes)});
  table.AddRow({"promoted", Fmt(promoted_s),
                std::to_string(promoted_bytes_read)});
  table.Print();

  printf("\ngate: promoted=%s zero_raw_bytes=%s identical_answer=%s "
         "served_from_promoted=%s\n",
         gate_promoted ? "yes" : "NO", gate_zero_raw_bytes ? "yes" : "NO",
         gate_identical ? "yes" : "NO", gate_served ? "yes" : "NO");

  FILE* f = fopen("BENCH_promotion.json", "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write BENCH_promotion.json\n");
    return 1;
  }
  std::string promoted_list;
  for (size_t i = 0; i < report->promoted.size(); ++i) {
    if (i > 0) promoted_list += ",";
    promoted_list += std::to_string(report->promoted[i]);
  }
  fprintf(f,
          "{\n"
          "  \"rows\": %llu,\n"
          "  \"cold\": {\"query_s\": %.4f, \"raw_bytes_read\": %llu},\n"
          "  \"warming\": {\"query_s\": %.4f, \"raw_bytes_read\": %llu},\n"
          "  \"promoted\": {\"query_s\": %.4f, \"raw_bytes_read\": %llu,\n"
          "    \"columns\": [%s], \"resident_bytes\": %llu,\n"
          "    \"cache_released_bytes\": %llu,\n"
          "    \"rows_served_from_promoted\": %llu},\n"
          "  \"gate\": {\"promoted\": %s, \"zero_raw_bytes_after_promotion\": "
          "%s,\n"
          "    \"byte_identical_answer\": %s, \"served_from_promoted\": %s}\n"
          "}\n",
          static_cast<unsigned long long>(spec.rows), cold_s,
          static_cast<unsigned long long>(cold_bytes), warm_s,
          static_cast<unsigned long long>(warm_bytes), promoted_s,
          static_cast<unsigned long long>(promoted_bytes_read),
          promoted_list.c_str(),
          static_cast<unsigned long long>(report->promoted_bytes),
          static_cast<unsigned long long>(report->cache_released_bytes),
          static_cast<unsigned long long>(served_from_promoted),
          gate_promoted ? "true" : "false",
          gate_zero_raw_bytes ? "true" : "false",
          gate_identical ? "true" : "false", gate_served ? "true" : "false");
  fclose(f);
  printf("wrote BENCH_promotion.json\n");

  return (gate_promoted && gate_zero_raw_bytes && gate_identical &&
          gate_served)
             ? 0
             : 1;
}
