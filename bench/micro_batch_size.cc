// Batch-size sweep: one selective in-situ scan (filter + two projected
// attributes) executed through the streaming cursor at batch sizes 1..4096.
// Batch size 1 degenerates the vectorized pipeline to tuple-at-a-time
// Volcano dispatch — the seed engine's execution model — so the table shows
// directly what batching buys on the raw-file hot path once tokenizing is
// cheap.
//
//   ./bench_micro_batch_size [--scale=F] [--seed=N]

#include <cstdio>

#include "common.h"

using namespace nodb;
using namespace nodb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);

  // A narrow table with a high-cardinality answer: per-tuple dispatch is a
  // visible share of the per-row cost here, which is exactly what the sweep
  // measures. (On wide tables, tokenizing/parsing dominates and the curve
  // flattens.)
  MicroDataSpec spec;
  spec.rows = static_cast<uint64_t>(1000000 * args.scale);
  spec.cols = 5;
  spec.seed = args.seed;
  std::string csv = MicroCsv(spec, "batch_size");

  PrintBanner("Batch-size sweep (vectorized execution API)",
              "not in the paper — measures what batch-at-a-time operator "
              "dispatch adds on top of NoDB's cheap raw-file access");
  printf("data: %llu rows x %d cols, selective scan (2 of %d attributes)\n\n",
         static_cast<unsigned long long>(spec.rows), spec.cols, spec.cols);

  // The scan is selective in the paper's sense — it tokenizes and parses
  // only the two needed attributes of each tuple — while the predicate
  // passes (virtually) every row, so the full row stream flows through the
  // pipeline and per-tuple dispatch cost is actually exercised.
  const std::string sql = "SELECT a2 FROM t WHERE a1 >= 0";

  // Reference: the seed engine's execution model — one tuple per virtual
  // call (batch size 1) and every output row materialized into a
  // QueryResult, which is exactly what the seed's Execute-based harness
  // timed. The sweep rows below stream through the cursor instead.
  auto measure = [&](size_t batch_size, bool materialize, double* cold,
                     double* warm) {
    EngineConfig config =
        EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
    config.batch_size = batch_size;
    Database db(config);
    Status s = db.RegisterCsv("t", csv, MicroSchema(spec));
    if (!s.ok()) {
      fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      exit(1);
    }
    auto run_once = [&]() -> double {
      if (!materialize) return RunQuery(&db, sql);
      auto result = db.Execute(sql);
      if (!result.ok()) {
        fprintf(stderr, "query failed: %s\n",
                result.status().ToString().c_str());
        exit(1);
      }
      return result->seconds;
    };
    *cold = run_once();
    *warm = *cold;
    for (int run = 0; run < 5; ++run) {
      double t = run_once();
      if (t < *warm) *warm = t;
    }
  };

  double seed_cold = 0, seed_warm = 0;
  measure(1, /*materialize=*/true, &seed_cold, &seed_warm);

  TextTable table({"batch_size", "cold (s)", "warm (s)",
                   "warm speedup vs row-at-a-time"});
  table.AddRow({"1 (row-at-a-time, materialized)", Fmt(seed_cold),
                Fmt(seed_warm), "1.00x"});
  for (size_t batch_size : {1, 4, 16, 64, 256, 1024, 4096}) {
    double cold = 0, warm = 0;
    measure(batch_size, /*materialize=*/false, &cold, &warm);
    table.AddRow({std::to_string(batch_size), Fmt(cold), Fmt(warm),
                  Fmt(seed_warm / warm, 2) + "x"});
  }
  table.Print();
  return 0;
}
