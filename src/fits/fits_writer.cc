#include "fits/fits_writer.h"

#include <cstdio>
#include <cstring>

namespace nodb {

namespace {

void AppendCard(std::string* header, const std::string& key,
                const std::string& value) {
  char card[kFitsCardSize + 1];
  std::snprintf(card, sizeof(card), "%-8s= %20s", key.c_str(), value.c_str());
  std::string s(card);
  s.resize(kFitsCardSize, ' ');
  header->append(s);
}

void AppendBareCard(std::string* header, const std::string& text) {
  std::string s = text;
  s.resize(kFitsCardSize, ' ');
  header->append(s);
}

std::string Quoted(const std::string& s) { return "'" + s + "'"; }

}  // namespace

Result<std::unique_ptr<FitsWriter>> FitsWriter::Create(
    const std::string& path, const Schema& schema,
    std::vector<uint32_t> string_widths) {
  std::vector<FitsColumn> columns;
  uint32_t offset = 0;
  size_t next_width = 0;
  for (int i = 0; i < schema.num_columns(); ++i) {
    FitsColumn col;
    col.name = schema.column(i).name;
    col.type = schema.column(i).type;
    col.offset = offset;
    switch (col.type) {
      case TypeId::kInt64:
        col.form = 'K';
        col.width = 8;
        break;
      case TypeId::kDouble:
        col.form = 'D';
        col.width = 8;
        break;
      case TypeId::kDate:
        col.form = 'J';
        col.width = 4;
        break;
      case TypeId::kBool:
        col.form = 'L';
        col.width = 1;
        break;
      case TypeId::kString: {
        col.form = 'A';
        if (next_width >= string_widths.size()) {
          return Status::InvalidArgument(
              "missing FITS width for string column '" + col.name + "'");
        }
        col.width = string_widths[next_width++];
        if (col.width == 0) {
          return Status::InvalidArgument("FITS string width must be > 0");
        }
        break;
      }
    }
    offset += col.width;
    columns.push_back(std::move(col));
  }

  auto writer = std::unique_ptr<FitsWriter>(
      new FitsWriter(path, std::move(columns), offset));
  NODB_ASSIGN_OR_RETURN(writer->out_, WritableFile::Create(path));

  // Header block(s).
  std::string header;
  AppendCard(&header, "SIMPLE", "T");
  AppendCard(&header, "BITPIX", "8");
  AppendCard(&header, "NAXIS", "2");
  AppendCard(&header, "NAXIS1", std::to_string(writer->row_bytes_));
  writer->naxis2_card_offset_ = header.size();
  AppendCard(&header, "NAXIS2", "0");  // patched by Finish()
  AppendCard(&header, "TFIELDS", std::to_string(writer->columns_.size()));
  for (size_t i = 0; i < writer->columns_.size(); ++i) {
    const FitsColumn& col = writer->columns_[i];
    AppendCard(&header, "TTYPE" + std::to_string(i + 1), Quoted(col.name));
    std::string form = col.form == 'A'
                           ? std::to_string(col.width) + "A"
                           : std::string(1, col.form);
    AppendCard(&header, "TFORM" + std::to_string(i + 1), Quoted(form));
  }
  AppendBareCard(&header, "END");
  // Pad the header to a block boundary.
  size_t padded = (header.size() + kFitsBlockSize - 1) / kFitsBlockSize *
                  kFitsBlockSize;
  header.resize(padded, ' ');
  NODB_RETURN_IF_ERROR(writer->out_->Append(header));
  return writer;
}

Status FitsWriter::Append(const Row& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  row_buffer_.assign(row_bytes_, '\0');
  char* base = row_buffer_.data();
  for (size_t i = 0; i < columns_.size(); ++i) {
    const FitsColumn& col = columns_[i];
    const Value& v = row[i];
    char* out = base + col.offset;
    // FITS binary tables have no NULL concept for numeric columns; we store
    // zero (callers of the FITS path never produce NULLs).
    switch (col.form) {
      case 'K': {
        uint64_t bits = v.is_null() ? 0 : static_cast<uint64_t>(v.int64());
        PutBigEndian64(out, bits);
        break;
      }
      case 'D': {
        double d = v.is_null() ? 0.0 : v.f64();
        uint64_t bits;
        memcpy(&bits, &d, 8);
        PutBigEndian64(out, bits);
        break;
      }
      case 'J': {
        uint32_t bits =
            v.is_null() ? 0 : static_cast<uint32_t>(
                                  static_cast<int32_t>(v.date()));
        PutBigEndian32(out, bits);
        break;
      }
      case 'L':
        out[0] = (!v.is_null() && v.boolean()) ? 'T' : 'F';
        break;
      case 'A': {
        memset(out, ' ', col.width);
        if (!v.is_null()) {
          size_t n = std::min<size_t>(col.width, v.str().size());
          memcpy(out, v.str().data(), n);
        }
        break;
      }
      default:
        return Status::Internal("bad FITS form");
    }
  }
  NODB_RETURN_IF_ERROR(out_->Append(row_buffer_));
  ++rows_;
  return Status::OK();
}

Status FitsWriter::Finish() {
  // Pad the data area to a full block.
  uint64_t data_bytes = rows_ * row_bytes_;
  uint64_t pad = (kFitsBlockSize - data_bytes % kFitsBlockSize) %
                 kFitsBlockSize;
  if (pad > 0) {
    NODB_RETURN_IF_ERROR(out_->Append(std::string(pad, '\0')));
  }
  NODB_RETURN_IF_ERROR(out_->Close());
  out_.reset();

  // Patch NAXIS2 in place.
  std::string card;
  AppendCard(&card, "NAXIS2", std::to_string(rows_));
  FILE* f = std::fopen(path_.c_str(), "r+b");
  if (f == nullptr) return Status::IOError("reopen FITS for NAXIS2 patch");
  bool ok = std::fseek(f, static_cast<long>(naxis2_card_offset_), SEEK_SET) ==
                0 &&
            std::fwrite(card.data(), 1, kFitsCardSize, f) == kFitsCardSize;
  std::fclose(f);
  if (!ok) return Status::IOError("patch NAXIS2");
  return Status::OK();
}

}  // namespace nodb
