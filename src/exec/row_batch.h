#ifndef NODB_EXEC_ROW_BATCH_H_
#define NODB_EXEC_ROW_BATCH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "types/value.h"

namespace nodb {

/// A fixed-capacity vector of working rows — the unit of data flow between
/// operators. Batches amortize the per-tuple virtual dispatch that dominates
/// the raw-file hot path once tokenizing itself is cheap: a scan tokenizes
/// and probes the positional map for a whole batch per Next() call.
///
/// Row slots are recycled: Clear() resets the size without destroying rows,
/// so a slot handed out by PushRow() may still hold a previous batch's
/// values (and their heap capacity). Producers must fully overwrite it.
class RowBatch {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit RowBatch(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ >= capacity_; }

  Row& operator[](size_t i) { return rows_[i]; }
  const Row& operator[](size_t i) const { return rows_[i]; }

  /// Appends a recycled row slot and returns it. The slot's previous
  /// contents are unspecified; the caller must overwrite them.
  Row& PushRow() {
    if (size_ == rows_.size()) rows_.emplace_back();
    return rows_[size_++];
  }

  /// Appends a row by move.
  void PushBack(Row row) { PushRow() = std::move(row); }

  /// Drops the last row (filter/residual rejection paths).
  void PopRow() { --size_; }

  /// Keeps the first `n` rows (n must be <= size()).
  void Truncate(size_t n) { size_ = n; }

  /// Empties the batch, keeping row storage for reuse.
  void Clear() { size_ = 0; }

  Row* begin() { return rows_.data(); }
  Row* end() { return rows_.data() + size_; }
  const Row* begin() const { return rows_.data(); }
  const Row* end() const { return rows_.data() + size_; }

 private:
  size_t capacity_;
  size_t size_ = 0;
  std::vector<Row> rows_;  // live prefix of length size_
};

}  // namespace nodb

#endif  // NODB_EXEC_ROW_BATCH_H_
