#include "raw/adapter_registry.h"

#include <algorithm>
#include <cctype>

#include "csv/csv_adapter.h"
#include "fits/fits_adapter.h"
#include "json/jsonl_adapter.h"

namespace nodb {

namespace {

bool TailMatches(std::string_view path, std::string_view ext) {
  if (path.size() < ext.size()) return false;
  std::string_view tail = path.substr(path.size() - ext.size());
  for (size_t i = 0; i < ext.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(tail[i])) !=
        std::tolower(static_cast<unsigned char>(ext[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool PathHasExtension(std::string_view path, std::string_view ext) {
  // A trailing ".gz" is a transport wrapper, not a format: "t.tsv.gz" has
  // extension ".tsv" for sniffing and dialect purposes (the decompression
  // layer presents the inner byte stream to the adapter).
  if (TailMatches(path, ".gz") && !TailMatches(ext, ".gz")) {
    path.remove_suffix(3);
  }
  return TailMatches(path, ext);
}

AdapterRegistry& AdapterRegistry::Global() {
  static AdapterRegistry* registry = [] {
    auto* r = new AdapterRegistry();
    r->Register(MakeCsvAdapterFactory());
    r->Register(MakeFitsAdapterFactory());
    r->Register(MakeJsonlAdapterFactory());
    return r;
  }();
  return *registry;
}

void AdapterRegistry::Register(std::unique_ptr<AdapterFactory> factory) {
  for (auto& existing : factories_) {
    if (existing->format_name() == factory->format_name()) {
      existing = std::move(factory);
      return;
    }
  }
  factories_.push_back(std::move(factory));
}

const AdapterFactory* AdapterRegistry::Find(
    std::string_view format_name) const {
  for (const auto& factory : factories_) {
    if (factory->format_name() == format_name) return factory.get();
  }
  return nullptr;
}

Result<const AdapterFactory*> AdapterRegistry::Detect(
    const std::string& path, std::string_view head) const {
  const AdapterFactory* best = nullptr;
  double best_score = 0.0;
  for (const auto& factory : factories_) {
    double score = factory->Sniff(path, head);
    if (score > best_score) {
      best_score = score;
      best = factory.get();
    }
  }
  if (best == nullptr) {
    return Status::InvalidArgument(
        "cannot detect the raw format of '" + path +
        "'; pass OpenOptions::format explicitly");
  }
  return best;
}

std::vector<std::string_view> AdapterRegistry::formats() const {
  std::vector<std::string_view> names;
  names.reserve(factories_.size());
  for (const auto& factory : factories_) {
    names.push_back(factory->format_name());
  }
  return names;
}

}  // namespace nodb
