// Figure 4 — "Scalability of the positional map": execution time as the
// raw file grows, either by appending rows or by adding attributes. The
// paper reports linear scaling in both directions (2 GB - 92 GB there;
// proportionally scaled here).

#include "common.h"
#include "util/fs_util.h"
#include "util/rng.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

/// Average warm-map query time over a file described by `spec`.
double MeasureAvg(const MicroDataSpec& spec, const std::string& tag,
                  int nattrs, uint64_t seed) {
  std::string csv = MicroCsv(spec, tag);
  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPM);
  Database db(config);
  if (!db.RegisterCsv("wide", csv, MicroSchema(spec)).ok()) exit(1);
  Rng rng(seed);
  constexpr int kQueries = 6;
  double total = 0;
  for (int q = 0; q < kQueries; ++q) {
    total += RunQuery(&db, RandomProjectionQuery("wide", spec.cols, nattrs,
                                                 &rng));
  }
  return total / kQueries;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintBanner("Figure 4: positional-map scalability with file size",
              "Linear execution-time growth when the file grows vertically "
              "(more tuples) and horizontally (more attributes).");

  // Vary #tuples at fixed attribute count.
  printf("\n-- growing the file by appending tuples --\n");
  TextTable rows_table({"rows", "file(MiB)", "avg query(s)"});
  for (double mult : {0.5, 1.0, 2.0, 4.0}) {
    MicroDataSpec spec;
    spec.rows = static_cast<uint64_t>(15000 * mult * args.scale);
    spec.cols = 50;
    spec.seed = args.seed;
    std::string tag = "fig04r" + std::to_string(spec.rows);
    double avg = MeasureAvg(spec, tag, 10, args.seed);
    auto size = FileSizeOf(MicroCsv(spec, tag));
    rows_table.AddRow({std::to_string(spec.rows),
                       Fmt(*size / (1024.0 * 1024.0), 1), Fmt(avg)});
  }
  rows_table.Print();

  // Vary #attributes at fixed tuple count; queries project proportionally
  // more attributes so per-query work tracks file growth, as in the paper.
  printf("\n-- growing the file by adding attributes --\n");
  TextTable cols_table({"cols", "file(MiB)", "projected", "avg query(s)"});
  for (int cols : {25, 50, 100, 200}) {
    MicroDataSpec spec;
    spec.rows = static_cast<uint64_t>(15000 * args.scale);
    spec.cols = cols;
    spec.seed = args.seed;
    std::string tag = "fig04c" + std::to_string(cols);
    int nattrs = cols / 5;
    double avg = MeasureAvg(spec, tag, nattrs, args.seed);
    auto size = FileSizeOf(MicroCsv(spec, tag));
    cols_table.AddRow({std::to_string(cols),
                       Fmt(*size / (1024.0 * 1024.0), 1),
                       std::to_string(nattrs), Fmt(avg)});
  }
  cols_table.Print();
  printf("\nExpected shape: both series grow roughly linearly with file "
         "size (2x size => ~2x time).\n");
  return 0;
}
