// Web-log analysis — the paper's second motivating domain ("web-based
// businesses such as social networks or web log analysis are already
// confronted with a growing stream of large data inputs", §1).
//
// A request log lands on disk as JSON Lines (the shape log shippers emit),
// the user roster as CSV. With NoDB both are queryable the moment they
// exist: no ETL job, no schema migration, no load window. Database::Open
// sniffs each file's format and picks the right raw-source adapter; the
// JSONL log gets the same positional map / cache / statistics machinery as
// any CSV, and the two raw files join directly. ListTables() shows the
// catalog, including how much adaptive state each table has accrued.

#include <cstdio>

#include <iostream>

#include "csv/writer.h"
#include "engine/engines.h"
#include "json/jsonl_writer.h"
#include "util/fs_util.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/str_conv.h"

using namespace nodb;

namespace {

Schema LogSchema() {
  return Schema{{"day", TypeId::kDate},     {"sec", TypeId::kInt64},
                {"method", TypeId::kString}, {"path", TypeId::kString},
                {"status", TypeId::kInt64},  {"bytes", TypeId::kInt64},
                {"user_id", TypeId::kInt64}};
}

Status WriteLogs(const std::string& path, int n) {
  NODB_ASSIGN_OR_RETURN(auto out, WritableFile::Create(path));
  Schema schema = LogSchema();
  JsonlWriter writer(out.get(), &schema);
  Rng rng(2024);
  const char* paths[] = {"/",          "/login",  "/cart",
                         "/checkout",  "/search", "/api/items",
                         "/api/users", "/admin"};
  const char* methods[] = {"GET", "GET", "GET", "POST", "PUT"};
  const int statuses[] = {200, 200, 200, 200, 301, 404, 500};
  for (int i = 0; i < n; ++i) {
    int32_t day = CivilToDays(2024, 3, 1) + static_cast<int32_t>(
                                                rng.Uniform(0, 13));
    Row row = {
        Value::Date(day),
        Value::Int64(rng.Uniform(0, 86399)),           // second of day
        Value::String(methods[rng.Next() % 5]),
        Value::String(paths[rng.Next() % 8]),
        Value::Int64(statuses[rng.Next() % 7]),
        Value::Int64(rng.Uniform(120, 250000)),        // bytes
        Value::Int64(rng.Uniform(1, 120000)),          // user id
    };
    NODB_RETURN_IF_ERROR(writer.WriteRow(row));
  }
  NODB_RETURN_IF_ERROR(writer.Finish());
  return out->Close();
}

Status WriteUsers(const std::string& path, int n) {
  NODB_ASSIGN_OR_RETURN(auto out, WritableFile::Create(path));
  CsvWriter writer(out.get(), CsvDialect{});
  Rng rng(9);
  const char* tiers[] = {"free", "free", "free", "pro", "enterprise"};
  for (int i = 1; i <= n; ++i) {
    NODB_RETURN_IF_ERROR(writer.WriteRow(
        {Value::Int64(i), Value::String(tiers[rng.Next() % 5])}));
  }
  NODB_RETURN_IF_ERROR(writer.Finish());
  return out->Close();
}

}  // namespace

int main() {
  TempDir scratch;
  std::string logs_jsonl = scratch.File("access.jsonl");
  std::string users_csv = scratch.File("users.csv");
  if (!WriteLogs(logs_jsonl, 200000).ok() ||
      !WriteUsers(users_csv, 120000).ok()) {
    return 1;
  }

  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  // The JSONL log needs no declared schema: Open sniffs the format and the
  // adapter infers the columns from the leading records.
  Status s = db->Open("logs", logs_jsonl);
  if (s.ok()) {
    OpenOptions users_opts;
    users_opts.schema = Schema{{"u_id", TypeId::kInt64},
                               {"tier", TypeId::kString}};
    s = db->Open("users", users_csv, users_opts);
  }
  if (!s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  for (const TableInfo& info : db->ListTables()) {
    printf("table %-6s  format=%-5s  rows=%s\n", info.name.c_str(),
           info.format.c_str(),
           info.row_count < 0 ? "?" : std::to_string(
                                          static_cast<long long>(
                                              info.row_count)).c_str());
  }
  printf("\n");

  const char* queries[] = {
      // Ops: error rate by endpoint.
      "SELECT path, COUNT(*) AS errors FROM logs WHERE status >= 500 "
      "GROUP BY path ORDER BY errors DESC LIMIT 5",
      // Traffic shape: busiest endpoints.
      "SELECT path, COUNT(*) AS hits, SUM(bytes) AS egress FROM logs "
      "GROUP BY path ORDER BY hits DESC LIMIT 5",
      // Mixed predicate over dates and strings.
      "SELECT COUNT(*) FROM logs WHERE day >= DATE '2024-03-10' "
      "AND method = 'POST' AND path = '/checkout'",
      // Join the raw log against the raw user roster.
      "SELECT tier, COUNT(*) AS requests FROM logs, users "
      "WHERE user_id = u_id GROUP BY tier ORDER BY requests DESC",
      // Anti-join: traffic from user ids not in the roster.
      "SELECT COUNT(*) FROM logs WHERE NOT EXISTS "
      "(SELECT * FROM users WHERE u_id = user_id)",
  };

  // Stream every answer through the cursor, printing at most 8 rows — the
  // engine never materializes more than one batch at a time.
  for (const char* sql : queries) {
    printf("> %s\n", sql);
    Stopwatch timer;
    auto cursor = db->Query(sql);
    if (!cursor.ok()) {
      fprintf(stderr, "failed: %s\n", cursor.status().ToString().c_str());
      return 1;
    }
    for (int c = 0; c < cursor->schema().num_columns(); ++c) {
      printf("%s%s", c ? " | " : "", cursor->schema().column(c).name.c_str());
    }
    printf("\n");
    RowBatch batch = cursor->MakeBatch();
    size_t printed = 0, total = 0;
    while (true) {
      auto n = cursor->Next(&batch);
      if (!n.ok()) {
        fprintf(stderr, "failed: %s\n", n.status().ToString().c_str());
        return 1;
      }
      if (*n == 0) break;
      for (size_t r = 0; r < *n; ++r, ++total) {
        if (printed >= 8) continue;
        for (size_t c = 0; c < batch[r].size(); ++c) {
          printf("%s%s", c ? " | " : "", batch[r][c].ToString().c_str());
        }
        printf("\n");
        ++printed;
      }
    }
    if (total > printed) {
      printf("... (%zu rows total)\n", total);
    }
    printf("  (%.1f ms)\n\n", timer.ElapsedSeconds() * 1000);
  }

  // Results also export as machine-readable CSV (no aligned-text renderer):
  // drain a cursor into a QueryResult and WriteCsv it to any stream.
  const char* export_sql =
      "SELECT path, COUNT(*) AS hits FROM logs WHERE status = 404 "
      "GROUP BY path ORDER BY hits DESC LIMIT 3";
  printf("> %s  (exported as CSV)\n", export_sql);
  auto cursor = db->Query(export_sql);
  if (!cursor.ok()) {
    fprintf(stderr, "failed: %s\n", cursor.status().ToString().c_str());
    return 1;
  }
  QueryResult top404;
  top404.schema = cursor->schema();
  RowBatch batch = cursor->MakeBatch();
  while (true) {
    auto n = cursor->Next(&batch);
    if (!n.ok()) {
      fprintf(stderr, "failed: %s\n", n.status().ToString().c_str());
      return 1;
    }
    if (*n == 0) break;
    for (size_t r = 0; r < *n; ++r) top404.rows.push_back(batch[r]);
  }
  if (!top404.WriteCsv(std::cout).ok()) return 1;

  // After the workload: the raw JSONL log has earned positional-map and
  // cache state exactly like a CSV would — the adaptive machinery is
  // format-independent.
  printf("\ncatalog after the workload:\n");
  for (const TableInfo& info : db->ListTables()) {
    printf("table %-6s  format=%-5s  rows=%lld  pmap=%.1f MiB  "
           "cache=%.1f MiB\n",
           info.name.c_str(), info.format.c_str(),
           static_cast<long long>(info.row_count),
           info.pmap_bytes / (1024.0 * 1024.0),
           info.cache_bytes / (1024.0 * 1024.0));
  }
  return 0;
}
