// Figure 7 — "Comparing the performance of PostgresRaw with other DBMS":
// cumulative time to run a 9-query sequence (plus any load cost), across
// external-files systems, loaded systems and PostgresRaw PM+C.
//
// Query sequence (paper §5.1.4): Q1 = 100% selectivity / 100% projectivity
// (worst case for PostgresRaw); Q2-Q5 lower selectivity by 20% steps;
// Q6-Q9 lower projectivity by 20% steps.

#include "common.h"

using namespace nodb;
using namespace nodb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintBanner(
      "Figure 7: cumulative 9-query time vs other DBMS (incl. loading)",
      "External files are slowest (re-scan per query); PostgresRaw matches "
      "loaded systems without paying any load; paper: PostgresRaw 25.75% "
      "ahead of PostgreSQL, ~6% ahead of DBMS X.");

  MicroDataSpec spec;
  spec.rows = static_cast<uint64_t>(20000 * args.scale);
  spec.cols = 150;  // the paper uses 150 attributes
  spec.seed = args.seed;
  std::string csv = MicroCsv(spec, "fig07");
  Schema schema = MicroSchema(spec);

  std::vector<std::string> queries = {
      SelectivityQuery("wide", spec, 1.00, 1.00),
      SelectivityQuery("wide", spec, 0.80, 1.00),
      SelectivityQuery("wide", spec, 0.60, 1.00),
      SelectivityQuery("wide", spec, 0.40, 1.00),
      SelectivityQuery("wide", spec, 0.20, 1.00),
      SelectivityQuery("wide", spec, 1.00, 0.80),
      SelectivityQuery("wide", spec, 1.00, 0.60),
      SelectivityQuery("wide", spec, 1.00, 0.40),
      SelectivityQuery("wide", spec, 1.00, 0.20),
  };

  struct SystemRun {
    std::string name;
    SystemUnderTest sut;
    bool loads;
  };
  // "MySQL CSV engine" and "DBMS X w/ external files" share the same
  // external-files substitution (see DESIGN.md) and are reported once each.
  const SystemRun kSystems[] = {
      {"MySQL CSV engine (ext files)", SystemUnderTest::kExternalFiles, false},
      {"MySQL (loaded)", SystemUnderTest::kMySQL, true},
      {"DBMS X w/ external files", SystemUnderTest::kExternalFiles, false},
      {"DBMS X (loaded)", SystemUnderTest::kDbmsX, true},
      {"PostgreSQL (loaded)", SystemUnderTest::kPostgreSQL, true},
      {"PostgresRaw PM+C", SystemUnderTest::kPostgresRawPMC, false},
  };

  TextTable table({"system", "load(s)", "queries(s)", "total(s)"});
  for (const SystemRun& sys : kSystems) {
    auto db = MakeEngine(sys.sut);
    double load_secs = 0;
    if (sys.loads) {
      auto load = db->LoadCsv("wide", csv, schema);
      if (!load.ok()) return 1;
      load_secs = load->seconds;
    } else {
      if (!db->RegisterCsv("wide", csv, schema).ok()) return 1;
    }
    double query_secs = 0;
    for (const std::string& q : queries) {
      query_secs += RunQuery(db.get(), q);
    }
    table.AddRow({sys.name, Fmt(load_secs), Fmt(query_secs),
                  Fmt(load_secs + query_secs)});
  }
  table.Print();
  printf("\nExpected shape: external files >> everything else; PostgresRaw "
         "total below PostgreSQL's (which pays the load) and competitive "
         "with DBMS X.\n");
  return 0;
}
