#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/fs_util.h"
#include "util/thread_pool.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/str_conv.h"

namespace nodb {
namespace {

// ---------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    NODB_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto f = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 7;
  };
  auto g = [&](bool fail) -> Result<int> {
    NODB_ASSIGN_OR_RETURN(int v, f(fail));
    return v + 1;
  };
  EXPECT_EQ(*g(false), 8);
  EXPECT_EQ(g(true).status().code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorEvaluatesExpressionOnce) {
  int calls = 0;
  auto inner = [&]() {
    ++calls;
    return Status::IOError("disk");
  };
  auto outer = [&]() -> Status {
    NODB_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  Status s = outer();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk");
}

TEST(StatusTest, ChainedPropagationKeepsOriginalError) {
  // A three-deep call chain must surface the innermost failure verbatim.
  auto level3 = []() { return Status::Corruption("bad page 7"); };
  auto level2 = [&]() -> Status {
    NODB_RETURN_IF_ERROR(level3());
    return Status::OK();
  };
  auto level1 = [&]() -> Status {
    NODB_RETURN_IF_ERROR(level2());
    return Status::OK();
  };
  Status s = level1();
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.message(), "bad page 7");
  EXPECT_EQ(s.ToString(), "Corruption: bad page 7");
}

TEST(ResultTest, AssignOrReturnPropagatesThroughChain) {
  // Result -> Result chains: the innermost status travels to the top.
  auto parse = [](const std::string& s) -> Result<int> {
    if (s.empty()) return Status::InvalidArgument("empty field");
    return static_cast<int>(s.size());
  };
  auto widen = [&](const std::string& s) -> Result<double> {
    NODB_ASSIGN_OR_RETURN(int n, parse(s));
    return n * 2.0;
  };
  auto top = [&](const std::string& s) -> Result<std::string> {
    NODB_ASSIGN_OR_RETURN(double d, widen(s));
    return std::to_string(static_cast<int>(d));
  };
  ASSERT_TRUE(top("abc").ok());
  EXPECT_EQ(*top("abc"), "6");
  Result<std::string> err = top("");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.status().message(), "empty field");
}

TEST(ResultTest, CopyablePreservesBothArms) {
  Result<int> ok = 3;
  Result<int> ok2 = ok;
  EXPECT_TRUE(ok2.ok());
  EXPECT_EQ(*ok2, 3);
  Result<int> err = Status::NotFound("gone");
  Result<int> err2 = err;
  ASSERT_FALSE(err2.ok());
  EXPECT_EQ(err2.status(), err.status());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---------------------------------------------------------------------
// String conversions
// ---------------------------------------------------------------------

TEST(StrConvTest, ParseInt64Basic) {
  EXPECT_EQ(*ParseInt64("0"), 0);
  EXPECT_EQ(*ParseInt64("-17"), -17);
  EXPECT_EQ(*ParseInt64("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(*ParseInt64("-9223372036854775808"), INT64_MIN);
}

TEST(StrConvTest, ParseInt64Rejects) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64(" 1").ok());
  EXPECT_FALSE(ParseInt64("1 ").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("9223372036854775808").ok());  // overflow
}

TEST(StrConvTest, ParseDoubleBasic) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-0.5"), -0.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("42"), 42.0);
}

TEST(StrConvTest, ParseDoubleRejects) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("x").ok());
}

TEST(StrConvTest, ParseBoolVariants) {
  EXPECT_TRUE(*ParseBool("1"));
  EXPECT_TRUE(*ParseBool("true"));
  EXPECT_TRUE(*ParseBool("T"));
  EXPECT_FALSE(*ParseBool("0"));
  EXPECT_FALSE(*ParseBool("false"));
  EXPECT_FALSE(ParseBool("yes").ok());
}

TEST(StrConvTest, DateRoundTrip) {
  EXPECT_EQ(*ParseDate("1970-01-01"), 0);
  EXPECT_EQ(*ParseDate("1970-01-02"), 1);
  EXPECT_EQ(*ParseDate("1969-12-31"), -1);
  for (const char* d : {"1992-01-01", "1995-06-17", "1998-12-31",
                        "2000-02-29", "1900-03-01", "2024-02-29"}) {
    Result<int32_t> days = ParseDate(d);
    ASSERT_TRUE(days.ok()) << d;
    EXPECT_EQ(FormatDate(*days), d);
  }
}

TEST(StrConvTest, DateValidation) {
  EXPECT_FALSE(ParseDate("1970-13-01").ok());
  EXPECT_FALSE(ParseDate("1970-00-01").ok());
  EXPECT_FALSE(ParseDate("1970-01-32").ok());
  EXPECT_FALSE(ParseDate("1970-02-29").ok());  // not a leap year
  EXPECT_TRUE(ParseDate("1972-02-29").ok());   // leap year
  EXPECT_FALSE(ParseDate("1900-02-29").ok());  // century non-leap
  EXPECT_TRUE(ParseDate("2000-02-29").ok());   // 400-year leap
  EXPECT_FALSE(ParseDate("70-01-01").ok());
  EXPECT_FALSE(ParseDate("1970/01/01").ok());
  EXPECT_FALSE(ParseDate("1970-1-1").ok());
}

TEST(StrConvTest, CivilDaysInverse) {
  // Property: DaysToCivil(CivilToDays(y,m,d)) == (y,m,d) across a wide span.
  for (int32_t days = -100000; days <= 100000; days += 317) {
    int y, m, d;
    DaysToCivil(days, &y, &m, &d);
    EXPECT_EQ(CivilToDays(y, m, d), days);
  }
}

TEST(StrConvTest, AppendInt64AndDouble) {
  std::string out;
  AppendInt64(&out, -123);
  out += "|";
  AppendDouble(&out, 2.5);
  EXPECT_EQ(out, "-123|2.5");
}

TEST(StrConvTest, LooksLikeInt) {
  EXPECT_TRUE(LooksLikeInt("42"));
  EXPECT_TRUE(LooksLikeInt("-7"));
  EXPECT_TRUE(LooksLikeInt("+7"));
  EXPECT_FALSE(LooksLikeInt(""));
  EXPECT_FALSE(LooksLikeInt("-"));
  EXPECT_FALSE(LooksLikeInt("1.2"));
  EXPECT_FALSE(LooksLikeInt("a1"));
}

// ---------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.Uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.Uniform(3, 3), 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, RoughlyUniform) {
  Rng rng(11);
  int buckets[10] = {0};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[rng.Uniform(0, 9)];
  }
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b], kDraws / 10, kDraws / 50);
  }
}

// ---------------------------------------------------------------------
// Filesystem helpers
// ---------------------------------------------------------------------

TEST(FsUtilTest, TempDirCreatesAndCleans) {
  std::string path;
  {
    TempDir dir;
    ASSERT_FALSE(dir.path().empty());
    path = dir.path();
    EXPECT_TRUE(FileExists(path));
    ASSERT_TRUE(WriteStringToFile(dir.File("x.txt"), "hello").ok());
    EXPECT_TRUE(FileExists(dir.File("x.txt")));
  }
  EXPECT_FALSE(FileExists(path));
}

TEST(FsUtilTest, ReadWriteRoundTrip) {
  TempDir dir;
  std::string content(100000, 'x');
  content[5] = '\n';
  ASSERT_TRUE(WriteStringToFile(dir.File("f"), content).ok());
  Result<std::string> read = ReadFileToString(dir.File("f"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, content);
  Result<uint64_t> size = FileSizeOf(dir.File("f"));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, content.size());
}

TEST(FsUtilTest, MissingFileErrors) {
  TempDir dir;
  EXPECT_FALSE(ReadFileToString(dir.File("nope")).ok());
  EXPECT_FALSE(FileSizeOf(dir.File("nope")).ok());
  EXPECT_TRUE(RemoveFileIfExists(dir.File("nope")).ok());  // idempotent
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMicros(), 0);
}

// ---------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (done.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return done.load() == kTasks; }));
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      pool.Submit([&] {
        if (done.fetch_add(1) + 1 == 8) {
          std::lock_guard<std::mutex> lock(mu);
          cv.notify_all();
        }
      });
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return done.load() == 8; }));
}

TEST(ThreadPoolTest, GrowAddsWorkersAndNeverShrinks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  pool.Grow(3);
  EXPECT_EQ(pool.num_threads(), 3);
  pool.Grow(2);  // never shrinks
  EXPECT_EQ(pool.num_threads(), 3);
}

TEST(ThreadPoolTest, DestructionAbandonsQueuedButJoinsRunning) {
  // A pool with one thread and a slow head task: queued tasks behind it
  // are dropped at destruction, and the destructor joins cleanly.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    std::mutex mu;
    std::condition_variable cv;
    bool started = false;
    pool.Submit([&] {
      {
        std::lock_guard<std::mutex> lock(mu);
        started = true;
        cv.notify_all();
      }
      ++ran;
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started; });
  }
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace nodb
