#ifndef NODB_WORKLOAD_TPCH_GEN_H_
#define NODB_WORKLOAD_TPCH_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/schema.h"
#include "util/status.h"

namespace nodb {

/// Scaled-down TPC-H data generator (dbgen substitute; see DESIGN.md).
/// Produces the eight benchmark tables as CSV files with spec-shaped
/// schemas, key relationships, value domains and date ranges, so query
/// selectivities and join fan-outs track the official generator closely.
/// DECIMAL columns are doubles; dates are DATE columns.
struct TpchSpec {
  /// Paper uses SF 10; default here is laptop-scale. Linear scaling.
  double scale_factor = 0.01;
  uint64_t seed = 19920520;
};

/// The eight table names, in foreign-key-safe generation order.
const std::vector<std::string>& TpchTableNames();

/// Schema of `table` (one of region, nation, supplier, customer, part,
/// partsupp, orders, lineitem).
Schema TpchSchema(const std::string& table);

/// Nominal row count of `table` at the spec's scale factor (lineitem is
/// approximate: 1–7 lines per order).
uint64_t TpchNominalRows(const std::string& table, double scale_factor);

/// Generates all eight tables as "<dir>/<table>.csv".
Status GenerateTpch(const std::string& dir, const TpchSpec& spec);

}  // namespace nodb

#endif  // NODB_WORKLOAD_TPCH_GEN_H_
