#ifndef NODB_PLAN_PLANNER_H_
#define NODB_PLAN_PLANNER_H_

#include <memory>
#include <string>

#include "plan/logical_plan.h"
#include "sql/binder.h"
#include "stats/table_stats.h"

namespace nodb {

/// Supplies (possibly adaptive, possibly absent) statistics to the planner.
/// The engine returns nullptr when statistics collection is disabled or the
/// attribute has never been scanned — exactly the situation of a raw file
/// before its first query (§4.4).
class StatsProvider {
 public:
  virtual ~StatsProvider() = default;

  /// Per-attribute statistics for `table_name`, or nullptr.
  virtual const TableStats* GetTableStats(const std::string& table_name) const = 0;

  /// Row count if known (exact for loaded tables, discovered after the
  /// first full scan for raw tables); negative when unknown.
  virtual double GetRowCount(const std::string& table_name) const = 0;

  /// True when the attribute is served from a promoted in-memory columnar
  /// representation (src/adaptive) — evaluating a predicate on it costs no
  /// tokenizing or parsing, so the planner prefers it on selectivity ties.
  virtual bool IsColumnPromoted(const std::string& table_name,
                                int attr) const {
    (void)table_name;
    (void)attr;
    return false;
  }
};

/// Turns a bound query into an executable plan:
///  * pushes single-table conjuncts into scans (and orders them by
///    estimated selectivity when statistics exist),
///  * extracts equi-join edges and greedily orders joins by estimated
///    cardinality (FROM order when statistics are absent),
///  * computes per-table needed columns, split into WHERE-phase and
///    payload-phase attributes (driving the in-situ scan's selective
///    tokenizing/parsing/tuple formation),
///  * picks the aggregation strategy (hash with a size hint when statistics
///    bound the group count, conservative sort otherwise — the paper's
///    Fig. 12 plan difference).
///
/// Moves filter/semi-join expressions out of `query`; `query` must stay
/// alive while the returned plan executes.
Result<std::unique_ptr<PhysicalPlan>> PlanQuery(BoundQuery* query,
                                                const StatsProvider* stats);

}  // namespace nodb

#endif  // NODB_PLAN_PLANNER_H_
