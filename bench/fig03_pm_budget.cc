// Figure 3 — "Effect of the number of pointers in the positional map":
// average query time of random 10-attribute projections as the positional
// map's storage budget grows. The paper reports a >2x improvement that
// saturates well before the full map is resident (after ~3/4 of the
// pointers, response time is constant).

#include "common.h"
#include "util/rng.h"

using namespace nodb;
using namespace nodb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintBanner(
      "Figure 3: execution time vs positional-map storage budget",
      ">2x improvement from the map; flat after ~3/4 of pointers collected "
      "(14.3 MB - 2.1 GB in the paper, scaled here).");

  MicroDataSpec spec;
  spec.rows = static_cast<uint64_t>(20000 * args.scale);
  spec.cols = 150;  // the paper uses 150 attributes
  spec.seed = args.seed;
  std::string csv = MicroCsv(spec, "fig03");
  Schema schema = MicroSchema(spec);

  // Full-map footprint: every attribute position + the row-start spine.
  uint64_t full_map = spec.rows * spec.cols * sizeof(uint32_t) +
                      spec.rows * sizeof(uint64_t);
  const double kFractions[] = {0.02, 0.10, 0.25, 0.50, 0.75, 1.00, 1.25};
  constexpr int kQueries = 15;

  TextTable table({"pm_budget(frac)", "budget(KiB)", "avg query(s)",
                   "positions(k)", "evictions"});
  for (double fraction : kFractions) {
    EngineConfig config =
        EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPM);
    config.pm_budget_bytes =
        static_cast<uint64_t>(full_map * fraction);
    Database db(config);
    if (!db.RegisterCsv("wide", csv, schema).ok()) return 1;

    Rng rng(args.seed);
    double total = 0;
    for (int q = 0; q < kQueries; ++q) {
      total += RunQuery(&db, RandomProjectionQuery("wide", spec.cols, 10,
                                                   &rng));
    }
    TableRuntime* rt = db.runtime("wide");
    table.AddRow({Fmt(fraction, 2),
                  Fmt(config.pm_budget_bytes / 1024.0, 0),
                  Fmt(total / kQueries),
                  Fmt(rt->pmap->num_positions() / 1000.0, 1),
                  std::to_string(rt->pmap->counters().chunks_evicted)});
  }
  table.Print();
  printf("\nExpected shape: average time drops steeply with budget, then "
         "flattens; the largest budgets are indistinguishable.\n");
  return 0;
}
