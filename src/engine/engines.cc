#include "engine/engines.h"

namespace nodb {

std::unique_ptr<Database> MakeEngine(SystemUnderTest sut) {
  return std::make_unique<Database>(EngineConfig::ForSystem(sut));
}

bool IsInSituSystem(SystemUnderTest sut) {
  switch (sut) {
    case SystemUnderTest::kPostgresRawPMC:
    case SystemUnderTest::kPostgresRawPM:
    case SystemUnderTest::kPostgresRawC:
    case SystemUnderTest::kPostgresRawBaseline:
    case SystemUnderTest::kExternalFiles:
      return true;
    case SystemUnderTest::kPostgreSQL:
    case SystemUnderTest::kDbmsX:
    case SystemUnderTest::kMySQL:
      return false;
  }
  return false;
}

}  // namespace nodb
