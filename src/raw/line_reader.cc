#include "raw/line_reader.h"

#include <algorithm>
#include <cstring>

#include "raw/parse_kernels.h"

namespace nodb {

LineReader::LineReader(const RandomAccessFile* file, uint64_t buffer_size,
                       const ParseKernels* kernels)
    : file_(file),
      find_newline_((kernels != nullptr ? kernels : &ActiveKernels())
                        ->find_newline) {
  buffer_.resize(buffer_size < 4096 ? 4096 : buffer_size);
}

void LineReader::SeekTo(uint64_t offset) {
  next_offset_ = offset;
  // Invalidate the window unless the offset is already inside it.
  if (offset < buffer_start_ || offset >= buffer_start_ + buffer_len_) {
    buffer_len_ = 0;
    buffer_start_ = offset;
  }
}

Status LineReader::Refill() {
  // Slide any unconsumed tail to the front, then append fresh bytes.
  uint64_t consumed = next_offset_ - buffer_start_;
  uint64_t tail = buffer_len_ - consumed;
  if (tail > 0 && consumed > 0) {
    memmove(buffer_.data(), buffer_.data() + consumed, tail);
  }
  buffer_start_ = next_offset_;
  buffer_len_ = tail;
  if (buffer_len_ == buffer_.size()) {
    // A single record larger than the buffer: grow.
    buffer_.resize(buffer_.size() * 2);
  }
  // Read in bounded increments rather than a full buffer fill: a morsel
  // worker (or an early-closed cursor) should not read far past what it
  // consumes, and sequential scans lose nothing to the extra preads.
  constexpr uint64_t kMaxReadIncrement = 64 * 1024;
  uint64_t want =
      std::min<uint64_t>(buffer_.size() - buffer_len_, kMaxReadIncrement);
  NODB_ASSIGN_OR_RETURN(
      uint64_t n, file_->Read(buffer_start_ + buffer_len_, want,
                              buffer_.data() + buffer_len_));
  buffer_len_ += n;
  return Status::OK();
}

Result<bool> LineReader::Next(RecordRef* rec) {
  if (next_offset_ >= file_->size()) return false;
  while (true) {
    uint64_t rel = next_offset_ - buffer_start_;
    if (rel < buffer_len_) {
      const char* base = buffer_.data() + rel;
      uint64_t avail = buffer_len_ - rel;
      uint64_t nl = find_newline_(base, avail);
      bool found = nl < avail;
      bool at_eof = buffer_start_ + buffer_len_ >= file_->size();
      if (found || at_eof) {
        uint64_t len = found ? nl : avail;
        uint64_t text_len = len;
        if (text_len > 0 && base[text_len - 1] == '\r') --text_len;
        rec->offset = next_offset_;
        rec->data = std::string_view(base, text_len);
        next_offset_ += len + (found ? 1 : 0);
        return true;
      }
    }
    NODB_RETURN_IF_ERROR(Refill());
    if (buffer_len_ == 0) return false;  // nothing left
  }
}

Result<uint64_t> FindLineBoundary(const RandomAccessFile* file,
                                  uint64_t offset, bool skip_first_line,
                                  const ParseKernels* kernels) {
  size_t (*find_newline)(const char*, size_t) =
      (kernels != nullptr ? kernels : &ActiveKernels())->find_newline;
  const uint64_t size = file->size();
  uint64_t scan_from;
  if (offset == 0) {
    if (!skip_first_line) return 0;
    scan_from = 0;  // resolve past the header line
  } else {
    // Scanning from offset-1 makes an offset that already begins a line
    // (previous byte '\n') map to itself — the idempotence the morsel
    // planner relies on.
    scan_from = offset - 1;
  }
  // Probe in small chunks: records are typically tens of bytes, and the
  // morsel planner issues one probe per split point — big probe reads
  // would dwarf the scan itself on early-Close paths.
  char buf[8 * 1024];
  while (scan_from < size) {
    NODB_ASSIGN_OR_RETURN(
        uint64_t n,
        file->Read(scan_from, std::min<uint64_t>(sizeof(buf), size - scan_from),
                   buf));
    if (n == 0) break;
    uint64_t nl = find_newline(buf, n);
    if (nl < n) {
      uint64_t start = scan_from + nl + 1;
      // A '\n' as the file's very last byte starts no record: fall through
      // to the end sentinel.
      return start < size ? start : size;
    }
    scan_from += n;
  }
  return size;  // no record starts here (EOF or a ragged, unterminated tail)
}

}  // namespace nodb
