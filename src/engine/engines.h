#ifndef NODB_ENGINE_ENGINES_H_
#define NODB_ENGINE_ENGINES_H_

#include <memory>

#include "engine/database.h"

namespace nodb {

/// Creates a Database configured as one of the paper's systems under test.
/// Raw-engine variants (PostgresRaw*, external files) expect RegisterCsv /
/// RegisterFits; loaded variants (PostgreSQL, DBMS X, MySQL) expect LoadCsv.
std::unique_ptr<Database> MakeEngine(SystemUnderTest sut);

/// True if `sut` queries raw files in situ (vs. requiring a load).
bool IsInSituSystem(SystemUnderTest sut);

}  // namespace nodb

#endif  // NODB_ENGINE_ENGINES_H_
