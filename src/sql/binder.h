#ifndef NODB_SQL_BINDER_H_
#define NODB_SQL_BINDER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/aggregates.h"
#include "expr/expr.h"
#include "sql/ast.h"
#include "types/schema.h"
#include "util/result.h"

namespace nodb {

/// Resolves table names to schemas during binding; implemented by the
/// engine's catalog.
class TableProvider {
 public:
  virtual ~TableProvider() = default;
  virtual Result<const Schema*> GetTableSchema(const std::string& name) const = 0;
};

/// A FROM-clause table after resolution. The executor's *working row* is the
/// concatenation of all bound tables' columns in FROM order; `offset` is
/// this table's first column in that row.
struct BoundTable {
  std::string table_name;    // catalog name
  std::string display_name;  // alias or table name
  const Schema* schema = nullptr;
  int offset = 0;
};

/// A (possibly anti) semi join derived from [NOT] EXISTS with equality
/// correlation. Keys may be composite.
struct BoundSemiJoin {
  BoundTable table;                   // inner table
  std::vector<ExprPtr> outer_keys;    // bound over the outer working row
  std::vector<ExprPtr> inner_keys;    // bound over the inner table row
  ExprPtr inner_filter;               // inner-only predicate, may be null
  bool anti = false;                  // true for NOT EXISTS
};

struct BoundOrderKey {
  int select_index = 0;  // into the query's select list
  bool desc = false;
};

/// Fully analyzed query, ready for planning.
///
/// Expression index spaces:
///  * `where`, `group_by` and AggregateSpec::arg are bound over the working
///    row (all FROM tables concatenated).
///  * With aggregation, `select_exprs` are bound over the *aggregate output
///    row*: [group values..., aggregate results...].
///  * Without aggregation, `select_exprs` are bound over the working row.
struct BoundQuery {
  std::vector<BoundTable> tables;
  int working_width = 0;

  ExprPtr where;  // null if absent
  std::vector<BoundSemiJoin> semi_joins;

  bool has_aggregation = false;
  std::vector<ExprPtr> group_by;
  std::vector<AggregateSpec> aggregates;

  std::vector<ExprPtr> select_exprs;
  Schema output_schema;

  std::vector<BoundOrderKey> order_by;
  std::optional<int64_t> limit;
};

/// Binds a parsed SELECT against the catalog: resolves names, types every
/// expression, extracts aggregates and EXISTS semi-joins, and validates
/// GROUP BY semantics.
class Binder {
 public:
  explicit Binder(const TableProvider* provider) : provider_(provider) {}

  Result<std::unique_ptr<BoundQuery>> Bind(const SelectStmt& stmt);

 private:
  // The opaque pointers are the .cc-private Scope / ExprBinder helpers; they
  // are implementation details not worth exposing in this header.
  Result<BoundSemiJoin> BindExistsSubquery(const SelectStmt& sub,
                                           const void* outer_scope_ptr,
                                           bool anti);
  Result<ExprPtr> BindAggSelectExpr(const ParsedExpr& e, const void* binder_ptr,
                                    BoundQuery* query);
  Result<int> ResolveOrderKey(const ParsedExpr& e, const SelectStmt& stmt,
                              const void* binder_ptr, BoundQuery* query);

  const TableProvider* provider_;
};

}  // namespace nodb

#endif  // NODB_SQL_BINDER_H_
