// Figure 12 — "Execution time as PostgresRaw generates statistics":
// four instances of the TPC-H Q1 template on PostgresRaw with and without
// on-the-fly statistics. Paper's shape: collecting statistics adds a small
// overhead to the first query (+4.5s on 11 GB there), after which the
// optimizer picks better plans and the remaining instances run ~3x faster.

#include "common.h"
#include "workload/tpch_gen.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

/// TPC-H Q1 template with a varying shipdate delta, as qgen produces.
std::string Q1Instance(int delta_days) {
  return "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
         "SUM(l_extendedprice) AS sum_base_price, "
         "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
         "AVG(l_quantity) AS avg_qty, COUNT(*) AS count_order "
         "FROM lineitem "
         "WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '" +
         std::to_string(delta_days) +
         "' DAY GROUP BY l_returnflag, l_linestatus "
         "ORDER BY l_returnflag, l_linestatus";
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintBanner(
      "Figure 12: on-the-fly statistics, 4 instances of TPC-H Q1",
      "Small overhead on Q1_a for collecting statistics; subsequent "
      "instances ~3x faster thanks to better plans (the optimizer switches "
      "the aggregation strategy).");

  std::string dir = DataDir()->path();
  TpchSpec spec;
  spec.scale_factor = 0.02 * args.scale;
  spec.seed = args.seed;
  printf("generating TPC-H SF=%.3f ...\n", spec.scale_factor);
  if (!GenerateTpch(dir, spec).ok()) return 1;
  std::string lineitem_csv = dir + "/lineitem.csv";

  const int kDeltas[] = {90, 60, 120, 75};  // qgen varies [60, 120]

  TextTable table({"query", "w/ statistics(s)", "w/o statistics(s)",
                   "plan w/ stats", "plan w/o stats"});

  // Two engines: statistics on vs off (both PM+C, as in the paper).
  EngineConfig with_cfg =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  EngineConfig without_cfg = with_cfg;
  without_cfg.statistics = false;
  Database with_stats(with_cfg);
  Database without_stats(without_cfg);
  if (!with_stats.RegisterCsv("lineitem", lineitem_csv,
                              TpchSchema("lineitem"))
           .ok() ||
      !without_stats.RegisterCsv("lineitem", lineitem_csv,
                                 TpchSchema("lineitem"))
           .ok()) {
    return 1;
  }

  char label = 'a';
  for (int delta : kDeltas) {
    std::string sql = Q1Instance(delta);
    // Plans captured before execution: Q1_a's "with statistics" plan is
    // still statistics-less (nothing has been scanned yet).
    auto plan_w = with_stats.Explain(sql);
    auto plan_wo = without_stats.Explain(sql);
    double w = RunQuery(&with_stats, sql);
    double wo = RunQuery(&without_stats, sql);
    auto agg_of = [](const std::string& plan) {
      return plan.find("HashAggregate") != std::string::npos
                 ? std::string("HashAggregate")
                 : std::string("SortAggregate");
    };
    table.AddRow({std::string("Q1_") + label, Fmt(w), Fmt(wo),
                  agg_of(*plan_w), agg_of(*plan_wo)});
    ++label;
  }
  table.Print();
  printf("\nExpected shape: Q1_a similar in both (stats collection costs a "
         "little); Q1_b..Q1_d clearly faster with statistics, which switch "
         "the plan from SortAggregate to HashAggregate.\n");
  return 0;
}
