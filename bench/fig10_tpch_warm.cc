// Figure 10 — "Performance comparison between PostgreSQL and PostgresRaw
// when running TPC-H queries", warm systems: the load already happened
// (PostgreSQL) / auxiliary structures already exist (PostgresRaw). Paper's
// shape: PostgresRaw PM alone is slower than PostgreSQL (25% on Q1 up to 3x
// on Q6); with the cache enabled PostgresRaw is competitive or faster on
// most queries.

#include "common.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

using namespace nodb;
using namespace nodb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintBanner(
      "Figure 10: TPC-H warm query times (Q1,Q3,Q4,Q6,Q10,Q12,Q14,Q19)",
      "PostgresRaw PM slower than loaded PostgreSQL (up to 3x); "
      "PostgresRaw PM+C competitive or faster.");

  std::string dir = DataDir()->path();
  TpchSpec spec;
  spec.scale_factor = 0.01 * args.scale;
  spec.seed = args.seed;
  printf("generating TPC-H SF=%.3f ...\n", spec.scale_factor);
  if (!GenerateTpch(dir, spec).ok()) return 1;

  // All tables any of the queries needs.
  const std::vector<std::string> kTables = {"customer", "orders", "lineitem",
                                            "nation", "part"};

  struct SystemRun {
    std::string name;
    SystemUnderTest sut;
    bool loads;
    std::unique_ptr<Database> db;
  };
  SystemRun systems[] = {
      {"PostgresRaw PM+C", SystemUnderTest::kPostgresRawPMC, false, nullptr},
      {"PostgresRaw PM", SystemUnderTest::kPostgresRawPM, false, nullptr},
      {"PostgreSQL", SystemUnderTest::kPostgreSQL, true, nullptr},
  };
  for (SystemRun& sys : systems) {
    sys.db = MakeEngine(sys.sut);
    for (const std::string& t : kTables) {
      std::string csv = dir + "/" + t + ".csv";
      if (sys.loads) {
        if (!sys.db->LoadCsv(t, csv, TpchSchema(t)).ok()) return 1;
      } else {
        if (!sys.db->RegisterCsv(t, csv, TpchSchema(t)).ok()) return 1;
      }
    }
    // Warm-up pass: every query once, so maps/caches/stats are built
    // ("now that PostgreSQL and PostgresRaw are warm...").
    for (int q : TpchQueryNumbers()) {
      RunQuery(sys.db.get(), TpchQuery(q));
    }
  }

  TextTable table({"query", "PostgresRaw PM+C(s)", "PostgresRaw PM(s)",
                   "PostgreSQL(s)"});
  for (int q : TpchQueryNumbers()) {
    std::vector<std::string> row = {"Q" + std::to_string(q)};
    for (SystemRun& sys : systems) {
      row.push_back(Fmt(RunQuery(sys.db.get(), TpchQuery(q))));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  printf("\nExpected shape: PM-only column >= PostgreSQL column per query; "
         "PM+C column competitive with (often beating) PostgreSQL.\n");
  return 0;
}
