#ifndef NODB_UTIL_FS_UTIL_H_
#define NODB_UTIL_FS_UTIL_H_

#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace nodb {

/// Thin POSIX filesystem helpers. The style guide disallows <filesystem>,
/// and a database engine wants explicit, error-checked syscalls anyway.

/// Returns the size of `path` in bytes.
Result<uint64_t> FileSizeOf(const std::string& path);

/// True if `path` exists (any file type).
bool FileExists(const std::string& path);

/// Creates a directory (no parents). Succeeds if it already exists.
Status CreateDir(const std::string& path);

/// Removes a file; succeeds if it does not exist.
Status RemoveFileIfExists(const std::string& path);

/// Atomically replaces `to` with `from` (rename(2); both on one filesystem).
Status RenameFile(const std::string& from, const std::string& to);

/// Last-modification time of `path` in nanoseconds since the epoch (at the
/// resolution the filesystem records).
Result<int64_t> FileMTimeNs(const std::string& path);

/// Reads an entire file into a string (test/bench convenience).
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path`, truncating any existing file.
Status WriteStringToFile(const std::string& path, const std::string& contents);

/// Scoped unique temporary directory under $TMPDIR (default /tmp). The
/// directory and all files directly inside it are removed on destruction.
/// Nested subdirectories one level deep are also cleaned up.
class TempDir {
 public:
  TempDir();
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  /// Absolute path of the directory; empty if creation failed.
  const std::string& path() const { return path_; }

  /// Joins `name` onto the directory path.
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

}  // namespace nodb

#endif  // NODB_UTIL_FS_UTIL_H_
