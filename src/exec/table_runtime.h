#ifndef NODB_EXEC_TABLE_RUNTIME_H_
#define NODB_EXEC_TABLE_RUNTIME_H_

#include <memory>
#include <string>

#include "cache/column_cache.h"
#include "csv/dialect.h"
#include "fits/fits_format.h"
#include "io/file.h"
#include "pmap/positional_map.h"
#include "stats/table_stats.h"
#include "storage/compact_table.h"
#include "storage/table_heap.h"

namespace nodb {

/// How a registered table is physically stored.
enum class TableStorage : uint8_t {
  kRawCsv,   // in-situ over a CSV file (the NoDB path)
  kRawFits,  // in-situ over a FITS binary table
  kHeap,     // loaded into slotted pages (PostgreSQL / MySQL analogues)
  kCompact,  // loaded into packed rows ("DBMS X" analogue)
};

/// Everything the executor needs to scan one table, owned by the engine's
/// catalog. For raw tables this bundles the auxiliary adaptive structures
/// (positional map, cache, statistics) that persist *across* queries — they
/// are what turns the straw-man in-situ scan into PostgresRaw.
struct TableRuntime {
  std::string name;
  Schema schema;
  TableStorage storage = TableStorage::kRawCsv;

  // --- raw CSV / FITS ---
  std::string raw_path;
  CsvDialect dialect;
  std::unique_ptr<RandomAccessFile> raw_file;  // kept open across queries
  std::unique_ptr<PositionalMap> pmap;         // null when disabled
  std::unique_ptr<ColumnCache> cache;          // null when disabled
  std::unique_ptr<FitsTableInfo> fits;         // parsed FITS header

  // --- loaded ---
  std::unique_ptr<TableHeap> heap;
  std::unique_ptr<CompactTable> compact;

  // --- adaptive statistics (raw tables; loaded tables get exact stats at
  //     load time) ---
  std::unique_ptr<TableStats> stats;
  bool stats_populated = false;

  /// Exact row count when known (loaded tables, or raw tables after their
  /// first complete scan); negative otherwise.
  double known_row_count = -1;
};

}  // namespace nodb

#endif  // NODB_EXEC_TABLE_RUNTIME_H_
