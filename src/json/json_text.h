#ifndef NODB_JSON_JSON_TEXT_H_
#define NODB_JSON_JSON_TEXT_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace nodb {

/// Low-level JSON text routines shared by the JSON Lines adapter and writer.
/// These operate on one record (a single line holding one object) and never
/// allocate on the common path — the adapter sits on the in-situ hot path
/// where, per the paper, conversion cost dominates.

/// First index >= `i` whose byte is not JSON whitespace (space, tab, CR, LF).
size_t SkipJsonWs(std::string_view s, size_t i);

/// One past the end of the JSON value starting at `i`: a string (honouring
/// backslash escapes), a nested object/array (balanced, string-aware), or a
/// scalar literal (number / true / false / null, terminated by ',', '}',
/// ']' or whitespace). Truncated input yields s.size().
size_t SkipJsonValue(std::string_view s, size_t i);

/// Decodes the JSON string token starting at `token[0] == '"'` (the view may
/// extend past the closing quote; decoding stops there) into `*out`.
/// Handles the standard escapes and \uXXXX (UTF-8 encoded, surrogate pairs
/// combined). Returns false on malformed input.
bool UnescapeJsonString(std::string_view token, std::string* out);

/// Appends `s` to `*out` as a quoted JSON string with the mandatory escapes.
void AppendJsonQuoted(std::string* out, std::string_view s);

/// Skip policy backed by the scalar byte loops above. The walker below is
/// templated on the policy so the scalar reference path and the bitmap
/// kernel path (BitmapSkipper in raw/parse_kernels.h) share one control
/// flow — structure decisions can never diverge between them, only the
/// speed of the skips differs.
struct ScalarJsonSkipper {
  size_t SkipValue(std::string_view s, size_t i) const {
    return SkipJsonValue(s, i);
  }
};

/// Extracts the key token starting at `i` (which must point at '"').
/// Returns false on malformed input; on success `*key` views the raw key
/// (or `*scratch` when escapes forced a decode) and `*end` is one past the
/// closing quote.
template <typename Skipper>
bool ReadJsonKey(std::string_view s, size_t i, const Skipper& skip,
                 std::string_view* key, std::string* scratch, size_t* end) {
  size_t close = skip.SkipValue(s, i);  // string skip
  if (close <= i + 1 || close > s.size() || s[close - 1] != '"') return false;
  std::string_view raw = s.substr(i + 1, close - i - 2);
  if (raw.find('\\') == std::string_view::npos) {
    *key = raw;
  } else {
    if (!UnescapeJsonString(s.substr(i, close - i), scratch)) return false;
    *key = *scratch;
  }
  *end = close;
  return true;
}

/// Walks the top-level members of the object record `s`, invoking
/// fn(key, value_pos, value_end) for every member — scalar and nested
/// alike. The single walk that schema inference and field lookup share, so
/// the two can never disagree about what a record contains. Returns true
/// if the record is one well-formed object walked through its closing
/// brace with nothing but whitespace after it; false when it is not an
/// object, is truncated, breaks mid-member, or holds trailing residue such
/// as a second concatenated object (members seen before the breakage were
/// still reported).
template <typename Skipper, typename Fn>
bool WalkTopLevelFields(std::string_view s, const Skipper& skip,
                        std::string* scratch, Fn&& fn) {
  size_t i = SkipJsonWs(s, 0);
  if (i >= s.size() || s[i] != '{') return false;
  ++i;
  bool first = true;
  while (true) {
    i = SkipJsonWs(s, i);
    if (i >= s.size()) return false;  // truncated
    if (s[i] == '}') return SkipJsonWs(s, i + 1) >= s.size();
    if (first) {
      if (s[i] == ',') return false;  // leading comma
    } else {
      // Exactly one comma between members; none before the closing brace.
      if (s[i] != ',') return false;
      i = SkipJsonWs(s, i + 1);
      if (i >= s.size() || s[i] == '}' || s[i] == ',') return false;
    }
    first = false;
    std::string_view key;
    size_t key_end;
    if (s[i] != '"' || !ReadJsonKey(s, i, skip, &key, scratch, &key_end)) {
      return false;
    }
    i = SkipJsonWs(s, key_end);
    if (i >= s.size() || s[i] != ':') return false;
    i = SkipJsonWs(s, i + 1);
    if (i >= s.size()) return false;
    size_t value_end = skip.SkipValue(s, i);
    if (value_end == i) return false;  // missing member value ({"a":,...})
    fn(key, i, value_end);
    i = value_end;
  }
}

}  // namespace nodb

#endif  // NODB_JSON_JSON_TEXT_H_
