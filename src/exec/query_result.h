#ifndef NODB_EXEC_QUERY_RESULT_H_
#define NODB_EXEC_QUERY_RESULT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "csv/dialect.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/status.h"

namespace nodb {

/// Materialized result of one query plus execution telemetry the benchmark
/// harness reports.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;

  /// Wall-clock execution time (planning + execution, excluding parse/bind).
  double seconds = 0;
  /// EXPLAIN-style plan rendering.
  std::string plan;

  /// Renders the result as an aligned text table (up to `max_rows` rows).
  std::string ToString(size_t max_rows = 20) const;

  /// Writes the result as CSV (header row, then all data rows; NULLs as
  /// empty fields) — machine-readable export without the aligned-text
  /// renderer.
  Status WriteCsv(std::ostream& out, CsvDialect dialect = CsvDialect{}) const;

  /// Canonical single-line-per-row rendering used by differential tests
  /// (rows sorted lexicographically when `sorted` is true, making unordered
  /// results comparable).
  std::string Canonical(bool sorted) const;
};

}  // namespace nodb

#endif  // NODB_EXEC_QUERY_RESULT_H_
