#include <gtest/gtest.h>

#include <algorithm>

#include "engine/engines.h"
#include "pmap/positional_map.h"
#include "pmap/temp_map.h"
#include "util/fs_util.h"
#include "util/rng.h"

namespace nodb {
namespace {

PositionalMap::Options SmallChunks(int tuples_per_chunk = 8) {
  PositionalMap::Options opts;
  opts.tuples_per_chunk = tuples_per_chunk;
  return opts;
}

// ---------------------------------------------------------------------
// Spine (row starts)
// ---------------------------------------------------------------------

TEST(PositionalMapSpine, RowStartsRoundTrip) {
  PositionalMap pm(4, SmallChunks());
  EXPECT_FALSE(pm.RowStart(0).has_value());
  pm.SetRowStart(0, 0);
  pm.SetRowStart(1, 17);
  pm.SetRowStart(2, 40);
  EXPECT_EQ(*pm.RowStart(0), 0u);
  EXPECT_EQ(*pm.RowStart(1), 17u);
  EXPECT_EQ(*pm.RowStart(2), 40u);
  EXPECT_FALSE(pm.RowStart(3).has_value());
}

TEST(PositionalMapSpine, ContiguousWatermark) {
  PositionalMap pm(4, SmallChunks());
  pm.SetRowStart(0, 0);
  pm.SetRowStart(2, 40);  // gap at 1
  EXPECT_EQ(pm.contiguous_rows_known(), 1u);
  pm.SetRowStart(1, 17);  // fills the gap; watermark jumps past 2
  EXPECT_EQ(pm.contiguous_rows_known(), 3u);
}

TEST(PositionalMapSpine, CrossesStripes) {
  PositionalMap pm(4, SmallChunks(4));
  for (uint64_t t = 0; t < 10; ++t) pm.SetRowStart(t, t * 100);
  EXPECT_EQ(pm.contiguous_rows_known(), 10u);
  EXPECT_EQ(*pm.RowStart(9), 900u);
}

// ---------------------------------------------------------------------
// Attribute positions
// ---------------------------------------------------------------------

TEST(PositionalMapAttrs, InsertAndLookup) {
  PositionalMap pm(10, SmallChunks());
  int chunk = pm.BeginStripeInsert(0, {3, 7});
  ASSERT_GE(chunk, 0);
  pm.InsertPosition(chunk, 0, 3, 12);
  pm.InsertPosition(chunk, 0, 7, 30);
  pm.InsertPosition(chunk, 1, 3, 13);
  pm.EndStripeInsert();

  EXPECT_EQ(*pm.Lookup(0, 3), 12u);
  EXPECT_EQ(*pm.Lookup(0, 7), 30u);
  EXPECT_EQ(*pm.Lookup(1, 3), 13u);
  EXPECT_FALSE(pm.Lookup(1, 7).has_value());  // hole
  EXPECT_FALSE(pm.Lookup(0, 5).has_value());  // never indexed
  EXPECT_EQ(pm.num_positions(), 3u);
}

TEST(PositionalMapAttrs, GroupReuseAcrossStripes) {
  // The same attribute combination maps to the same group (Fig. 2: the map
  // gains one vertical partition per queried combination).
  PositionalMap pm(10, SmallChunks());
  int c1 = pm.BeginStripeInsert(0, {3, 7});
  pm.EndStripeInsert();
  int c2 = pm.BeginStripeInsert(1, {7, 3});  // same combo, other order
  pm.EndStripeInsert();
  EXPECT_EQ(c1, c2);
}

TEST(PositionalMapAttrs, AnchorsBelowAndAbove) {
  PositionalMap pm(12, SmallChunks());
  int chunk = pm.BeginStripeInsert(0, {4, 8});
  pm.InsertPosition(chunk, 0, 4, 20);
  pm.InsertPosition(chunk, 0, 8, 44);
  pm.EndStripeInsert();

  // Paper example: looking for attr 9 with 4 and 8 indexed -> jump to 8.
  auto below = pm.AnchorAtOrBelow(0, 9);
  ASSERT_TRUE(below.has_value());
  EXPECT_EQ(below->attr, 8);
  EXPECT_EQ(below->rel_offset, 44u);
  // Looking for attr 6: nearest below is 4; nearest above is 8
  // (for backward tokenizing).
  auto b6 = pm.AnchorAtOrBelow(0, 6);
  ASSERT_TRUE(b6.has_value());
  EXPECT_EQ(b6->attr, 4);
  auto a6 = pm.AnchorAbove(0, 6);
  ASSERT_TRUE(a6.has_value());
  EXPECT_EQ(a6->attr, 8);
  // Exact attr counts as at-or-below anchor.
  EXPECT_EQ(pm.AnchorAtOrBelow(0, 4)->attr, 4);
  // Nothing below attr 2.
  EXPECT_FALSE(pm.AnchorAtOrBelow(0, 2).has_value());
}

TEST(PositionalMapAttrs, StripeHasAttrAndShareChunk) {
  PositionalMap pm(10, SmallChunks());
  int c = pm.BeginStripeInsert(0, {1, 2});
  pm.InsertPosition(c, 0, 1, 5);
  pm.EndStripeInsert();
  c = pm.BeginStripeInsert(0, {5});
  pm.InsertPosition(c, 0, 5, 25);
  pm.EndStripeInsert();

  EXPECT_TRUE(pm.StripeHasAttr(0, 1));
  EXPECT_TRUE(pm.StripeHasAttr(0, 5));
  EXPECT_FALSE(pm.StripeHasAttr(0, 3));
  EXPECT_FALSE(pm.StripeHasAttr(1, 1));
  // {1,2} share a chunk; {1,5} span two -> combination not shared.
  EXPECT_TRUE(pm.StripeAttrsShareChunk(0, {1, 2}));
  EXPECT_FALSE(pm.StripeAttrsShareChunk(0, {1, 5}));
}

TEST(PositionalMapAttrs, FillStripePositionsBulk) {
  PositionalMap pm(6, SmallChunks(4));
  int c = pm.BeginStripeInsert(0, {2});
  for (int t = 0; t < 3; ++t) {
    pm.InsertPosition(c, t, 2, 10 + t);
  }
  pm.EndStripeInsert();
  uint32_t out[4];
  EXPECT_EQ(pm.FillStripePositions(0, 2, out, 4), 3);
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[2], 12u);
  EXPECT_EQ(out[3], PositionalMap::kUnknown);
  EXPECT_EQ(pm.FillStripePositions(0, 4, out, 4), 0);
}

TEST(PositionalMapAttrs, IndexedAttrsForStripe) {
  PositionalMap pm(10, SmallChunks());
  pm.BeginStripeInsert(0, {7, 3});
  pm.EndStripeInsert();
  pm.BeginStripeInsert(0, {5});
  pm.EndStripeInsert();
  EXPECT_EQ(pm.IndexedAttrsForStripe(0), (std::vector<int>{3, 5, 7}));
  EXPECT_TRUE(pm.IndexedAttrsForStripe(1).empty());
}

// ---------------------------------------------------------------------
// Budget / LRU / spill
// ---------------------------------------------------------------------

TEST(PositionalMapBudget, MemoryNeverExceedsBudget) {
  PositionalMap::Options opts;
  opts.tuples_per_chunk = 64;
  // Budget fits only a couple of chunks (64 tuples * 1 attr * 4B = 256B).
  opts.budget_bytes = 700;
  PositionalMap pm(20, opts);
  for (int a = 0; a < 12; ++a) {
    int c = pm.BeginStripeInsert(0, {a});
    for (int t = 0; t < 64; ++t) {
      pm.InsertPosition(c, t, a, static_cast<uint32_t>(a * 100 + t));
    }
    pm.EndStripeInsert();
    EXPECT_LE(pm.memory_bytes(), opts.budget_bytes) << "after attr " << a;
  }
  EXPECT_GT(pm.counters().chunks_evicted, 0u);
}

TEST(PositionalMapBudget, LruEvictsOldestFirst) {
  PositionalMap::Options opts;
  opts.tuples_per_chunk = 64;
  opts.budget_bytes = 1200;  // ~4 chunks of 256B + bookkeeping
  PositionalMap pm(20, opts);
  auto insert_attr = [&](int a) {
    int c = pm.BeginStripeInsert(0, {a});
    for (int t = 0; t < 64; ++t) {
      pm.InsertPosition(c, t, a, static_cast<uint32_t>(a * 100 + t));
    }
    pm.EndStripeInsert();
  };
  for (int a = 0; a < 4; ++a) insert_attr(a);
  // Touch attr 0 so it is most-recently used.
  EXPECT_TRUE(pm.Lookup(0, 0).has_value());
  insert_attr(4);  // forces one eviction: attr 1 is the LRU victim
  EXPECT_TRUE(pm.Lookup(0, 0).has_value());
  EXPECT_FALSE(pm.Lookup(0, 1).has_value());
}

TEST(PositionalMapBudget, SpillAndReload) {
  TempDir dir;
  PositionalMap::Options opts;
  opts.tuples_per_chunk = 64;
  opts.budget_bytes = 700;
  opts.spill_dir = dir.path();
  PositionalMap pm(20, opts);
  auto insert_attr = [&](int a) {
    int c = pm.BeginStripeInsert(0, {a});
    for (int t = 0; t < 64; ++t) {
      pm.InsertPosition(c, t, a, static_cast<uint32_t>(a * 1000 + t));
    }
    pm.EndStripeInsert();
  };
  for (int a = 0; a < 8; ++a) insert_attr(a);
  EXPECT_GT(pm.counters().chunks_spilled, 0u);
  // Every attribute remains readable: spilled chunks reload transparently
  // with identical positions.
  for (int a = 0; a < 8; ++a) {
    for (int t = 0; t < 64; t += 13) {
      auto pos = pm.Lookup(t, a);
      ASSERT_TRUE(pos.has_value()) << "attr " << a << " tuple " << t;
      EXPECT_EQ(*pos, static_cast<uint32_t>(a * 1000 + t));
    }
  }
  EXPECT_GT(pm.counters().chunks_reloaded, 0u);
  EXPECT_LE(pm.memory_bytes(), opts.budget_bytes);
}

TEST(PositionalMapBudget, ClearDropsEverything) {
  PositionalMap pm(10, SmallChunks());
  pm.SetRowStart(0, 0);
  int c = pm.BeginStripeInsert(0, {1});
  pm.InsertPosition(c, 0, 1, 5);
  pm.EndStripeInsert();
  pm.Clear();
  EXPECT_EQ(pm.memory_bytes(), 0u);
  EXPECT_EQ(pm.num_positions(), 0u);
  EXPECT_FALSE(pm.Lookup(0, 1).has_value());
  EXPECT_FALSE(pm.RowStart(0).has_value());
  // Usable after Clear (the "drop and rebuild" maintenance property).
  c = pm.BeginStripeInsert(0, {1});
  pm.InsertPosition(c, 0, 1, 7);
  pm.EndStripeInsert();
  EXPECT_EQ(*pm.Lookup(0, 1), 7u);
}

// ---------------------------------------------------------------------
// TempMap (pre-fetching)
// ---------------------------------------------------------------------

TEST(TempMapTest, PrefetchesKnownPositions) {
  PositionalMap pm(8, SmallChunks(4));
  int c = pm.BeginStripeInsert(0, {2, 5});
  for (int t = 0; t < 4; ++t) {
    pm.InsertPosition(c, t, 2, static_cast<uint32_t>(20 + t));
    if (t % 2 == 0) {
      pm.InsertPosition(c, t, 5, static_cast<uint32_t>(50 + t));
    }
  }
  pm.EndStripeInsert();

  TempMap temp(&pm, 0, 4, {2, 5, 6});
  EXPECT_EQ(temp.num_attrs(), 3);
  EXPECT_EQ(temp.Position(1, 0), 21u);
  EXPECT_EQ(temp.Position(0, 1), 50u);
  EXPECT_EQ(temp.Position(1, 1), PositionalMap::kUnknown);  // hole
  EXPECT_EQ(temp.Position(0, 2), PositionalMap::kUnknown);  // unindexed
  EXPECT_EQ(temp.prefilled(), 6);
  temp.SetPosition(1, 1, 99);
  EXPECT_EQ(temp.Position(1, 1), 99u);
}

TEST(TempMapTest, NullMapMeansAllUnknown) {
  TempMap temp(nullptr, 0, 4, {0, 1});
  EXPECT_EQ(temp.prefilled(), 0);
  EXPECT_EQ(temp.Position(3, 1), PositionalMap::kUnknown);
}

// ---------------------------------------------------------------------
// Randomized property: lookups always return what was inserted.
// ---------------------------------------------------------------------

TEST(PositionalMapProperty, RandomInsertLookupConsistency) {
  Rng rng(77);
  PositionalMap pm(16, SmallChunks(32));
  // Model: tuple -> attr -> position.
  std::vector<std::vector<int64_t>> model(320, std::vector<int64_t>(16, -1));
  for (int round = 0; round < 40; ++round) {
    uint64_t stripe = static_cast<uint64_t>(rng.Uniform(0, 9));
    int nattrs = static_cast<int>(rng.Uniform(1, 4));
    std::vector<int> attrs;
    while (static_cast<int>(attrs.size()) < nattrs) {
      int a = static_cast<int>(rng.Uniform(0, 15));
      if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
        attrs.push_back(a);
      }
    }
    int c = pm.BeginStripeInsert(stripe, attrs);
    for (int t = 0; t < 32; ++t) {
      uint64_t tuple = stripe * 32 + t;
      for (int a : attrs) {
        // In reality a (tuple, attr) position is a property of the file and
        // never changes; model that so duplicate insertion via different
        // chunk combinations stays consistent.
        uint32_t pos = static_cast<uint32_t>(tuple * 16 + a);
        pm.InsertPosition(c, tuple, a, pos);
        model[tuple][a] = pos;
      }
    }
    pm.EndStripeInsert();
  }
  // Unlimited budget: every inserted position must be retrievable.
  for (uint64_t tuple = 0; tuple < 320; ++tuple) {
    for (int a = 0; a < 16; ++a) {
      auto got = pm.Lookup(tuple, a);
      if (model[tuple][a] >= 0) {
        ASSERT_TRUE(got.has_value()) << tuple << "/" << a;
        EXPECT_EQ(*got, static_cast<uint32_t>(model[tuple][a]));
      } else {
        EXPECT_FALSE(got.has_value()) << tuple << "/" << a;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Budget eviction under a real query workload
// ---------------------------------------------------------------------

/// With a positional-map budget far smaller than the table's positions, the
/// map must stay under budget after every query while queries keep returning
/// exactly the same results as an unconstrained engine.
TEST(PositionalMapBudget, TightBudgetEngineStaysUnderBudgetAndCorrect) {
  TempDir dir;
  std::string path = dir.File("wide.csv");
  std::string csv;
  for (int r = 0; r < 500; ++r) {
    csv += std::to_string(r);
    for (int c = 1; c < 10; ++c) {
      csv += "," + std::to_string((r * 31 + c * 7) % 100);
    }
    csv += "\n";
  }
  ASSERT_TRUE(WriteStringToFile(path, csv).ok());
  Schema schema;
  for (int c = 0; c < 10; ++c) {
    schema.AddColumn({"c" + std::to_string(c), TypeId::kInt64});
  }

  EngineConfig tight = EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPM);
  tight.pm_budget_bytes = 8 * 1024;  // far below 500 rows x 10 attrs x 4 B
  tight.tuples_per_chunk = 64;
  Database constrained(tight);
  ASSERT_TRUE(constrained.RegisterCsv("t", path, schema).ok());

  auto reference = MakeEngine(SystemUnderTest::kPostgresRawBaseline);
  ASSERT_TRUE(reference->RegisterCsv("t", path, schema).ok());

  const char* kQueries[] = {
      "SELECT c0, c9 FROM t WHERE c5 > 50",
      "SELECT c3, c4, c5 FROM t WHERE c1 < 30",
      "SELECT COUNT(*) AS n, SUM(c7) AS s FROM t WHERE c2 >= 10",
      "SELECT c8, COUNT(*) AS n FROM t GROUP BY c8",
      "SELECT c0 FROM t WHERE c9 = 3",
      "SELECT c6, c2 FROM t WHERE c0 < 250 AND c4 > 20",
  };
  PositionalMap* pm = constrained.runtime("t")->pmap.get();
  ASSERT_NE(pm, nullptr);
  for (int round = 0; round < 3; ++round) {
    for (const char* sql : kQueries) {
      auto got = constrained.Execute(sql);
      ASSERT_TRUE(got.ok()) << sql << "\n" << got.status();
      auto want = reference->Execute(sql);
      ASSERT_TRUE(want.ok()) << sql << "\n" << want.status();
      EXPECT_EQ(got->Canonical(true), want->Canonical(true)) << sql;
      EXPECT_LE(pm->memory_bytes(), tight.pm_budget_bytes)
          << "over budget after: " << sql;
    }
  }
  // The budget forced actual evictions (otherwise this test is vacuous).
  EXPECT_GT(pm->counters().chunks_evicted, 0u);
}

/// Spilled chunks must transparently reload and keep results exact.
TEST(PositionalMapBudget, TightBudgetWithSpillDirStaysCorrect) {
  TempDir dir;
  std::string path = dir.File("t.csv");
  std::string csv;
  for (int r = 0; r < 300; ++r) {
    csv += std::to_string(r) + "," + std::to_string(r % 7) + "," +
           std::to_string(r * 3) + "," + std::to_string(r % 11) + "\n";
  }
  ASSERT_TRUE(WriteStringToFile(path, csv).ok());
  Schema schema{{"a", TypeId::kInt64},
                {"b", TypeId::kInt64},
                {"c", TypeId::kInt64},
                {"d", TypeId::kInt64}};

  EngineConfig cfg = EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPM);
  cfg.pm_budget_bytes = 4 * 1024;
  cfg.tuples_per_chunk = 32;
  cfg.pm_spill_dir = dir.File("spill");
  ASSERT_TRUE(CreateDir(cfg.pm_spill_dir).ok());
  Database db(cfg);
  ASSERT_TRUE(db.RegisterCsv("t", path, schema).ok());

  auto reference = MakeEngine(SystemUnderTest::kPostgresRawBaseline);
  ASSERT_TRUE(reference->RegisterCsv("t", path, schema).ok());

  const char* kQueries[] = {
      "SELECT a, c FROM t WHERE b = 3",
      "SELECT d, COUNT(*) AS n FROM t GROUP BY d",
      "SELECT a FROM t WHERE c > 600",
      "SELECT b, d FROM t WHERE a < 150",
  };
  PositionalMap* pm = db.runtime("t")->pmap.get();
  for (int round = 0; round < 3; ++round) {
    for (const char* sql : kQueries) {
      auto got = db.Execute(sql);
      ASSERT_TRUE(got.ok()) << sql << "\n" << got.status();
      auto want = reference->Execute(sql);
      ASSERT_TRUE(want.ok()) << sql;
      EXPECT_EQ(got->Canonical(true), want->Canonical(true)) << sql;
      EXPECT_LE(pm->memory_bytes(), cfg.pm_budget_bytes) << sql;
    }
  }
  // The budget forced chunks through the spill path (otherwise this test
  // exercises nothing the in-memory variant doesn't).
  EXPECT_GT(pm->counters().chunks_spilled, 0u);
  EXPECT_GT(pm->counters().chunks_reloaded, 0u);
}

}  // namespace
}  // namespace nodb
