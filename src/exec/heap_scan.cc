#include "exec/heap_scan.h"

#include "expr/evaluator.h"

namespace nodb {

HeapScanOp::HeapScanOp(TableRuntime* runtime, const PlannedScan* scan,
                       int working_width)
    : runtime_(runtime), scan_(scan), working_width_(working_width) {}

Status HeapScanOp::Open() {
  if (runtime_->heap == nullptr) {
    return Status::Internal("heap scan over a table without heap storage");
  }
  int ncols = runtime_->schema.num_columns();
  needed_.assign(ncols, false);
  for (int c : scan_->where_attrs) needed_[c] = true;
  for (int c : scan_->payload_attrs) needed_[c] = true;
  scanner_ = std::make_unique<TableHeap::Scanner>(runtime_->heap.get(),
                                                  needed_);
  return Status::OK();
}

Result<size_t> HeapScanOp::Next(RowBatch* batch) {
  const int offset = scan_->table.offset;
  batch->Clear();
  while (!batch->full()) {
    NODB_ASSIGN_OR_RETURN(bool has, scanner_->Next(&table_row_));
    if (!has) break;
    Row& row = batch->PushRow();
    row.assign(working_width_, Value());
    for (size_t c = 0; c < table_row_.size(); ++c) {
      row[offset + static_cast<int>(c)] = std::move(table_row_[c]);
    }
    bool pass = true;
    for (const ExprPtr& conj : scan_->conjuncts) {
      NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*conj, row));
      if (!Evaluator::IsTruthy(v)) {
        pass = false;
        break;
      }
    }
    if (!pass) batch->PopRow();
  }
  return batch->size();
}

Status HeapScanOp::Close() {
  scanner_.reset();
  return Status::OK();
}

}  // namespace nodb
