#include <gtest/gtest.h>

#include "engine/engines.h"
#include "fits/cfitsio_like.h"
#include "fits/fits_format.h"
#include "fits/fits_reader.h"
#include "fits/fits_writer.h"
#include "util/fs_util.h"
#include "util/rng.h"

namespace nodb {
namespace {

TEST(FitsFormatTest, BigEndianRoundTrip) {
  char buf[8];
  PutBigEndian64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(GetBigEndian64(buf), 0x0102030405060708ULL);
  PutBigEndian32(buf, 0xDEADBEEF);
  EXPECT_EQ(GetBigEndian32(buf), 0xDEADBEEF);
}

class FitsFileTest : public ::testing::Test {
 protected:
  /// Writes a small table: flux (double), mag (double), id (int64),
  /// name (8A string), observed (date).
  void WriteSample(int rows) {
    path_ = dir_.File("sample.fits");
    Schema schema{{"flux", TypeId::kDouble},
                  {"mag", TypeId::kDouble},
                  {"id", TypeId::kInt64},
                  {"name", TypeId::kString},
                  {"observed", TypeId::kDate}};
    auto writer = FitsWriter::Create(path_, schema, {8});
    ASSERT_TRUE(writer.ok()) << writer.status();
    for (int i = 0; i < rows; ++i) {
      ASSERT_TRUE((*writer)
                      ->Append({Value::Double(i * 0.5),
                                Value::Double(20.0 - i * 0.01),
                                Value::Int64(i),
                                Value::String("SRC" + std::to_string(i % 10)),
                                Value::Date(9000 + i % 100)})
                      .ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }

  TempDir dir_;
  std::string path_;
};

TEST_F(FitsFileTest, HeaderParsesBack) {
  WriteSample(100);
  auto file = RandomAccessFile::Open(path_);
  ASSERT_TRUE(file.ok());
  auto info = ParseFitsHeader(file->get());
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->num_rows, 100u);
  ASSERT_EQ(info->columns.size(), 5u);
  EXPECT_EQ(info->columns[0].name, "flux");
  EXPECT_EQ(info->columns[0].form, 'D');
  EXPECT_EQ(info->columns[3].form, 'A');
  EXPECT_EQ(info->columns[3].width, 8u);
  EXPECT_EQ(info->columns[4].form, 'J');
  EXPECT_EQ(info->row_bytes, 8u + 8 + 8 + 8 + 4);
  EXPECT_EQ(info->data_start % kFitsBlockSize, 0u);
  // Schema view.
  Schema schema = info->ToSchema();
  EXPECT_EQ(schema.IndexOf("mag"), 1);
  EXPECT_EQ(schema.column(4).type, TypeId::kDate);
}

TEST_F(FitsFileTest, ReaderRoundTrip) {
  WriteSample(257);
  auto file = RandomAccessFile::Open(path_);
  auto info = ParseFitsHeader(file->get());
  ASSERT_TRUE(info.ok());
  FitsReader reader(file->get(), &*info);
  Row row;
  std::vector<bool> all(5, true);
  for (uint64_t r = 0; r < 257; r += 17) {
    ASSERT_TRUE(reader.ReadRow(r, all, &row).ok());
    EXPECT_DOUBLE_EQ(row[0].f64(), r * 0.5);
    EXPECT_EQ(row[2].int64(), static_cast<int64_t>(r));
    EXPECT_EQ(row[3].str(), "SRC" + std::to_string(r % 10));
    EXPECT_EQ(row[4].date(), static_cast<int32_t>(9000 + r % 100));
  }
  EXPECT_FALSE(reader.ReadRow(257, all, &row).ok());
}

TEST_F(FitsFileTest, TruncatedHeaderRejected) {
  std::string path = dir_.File("bad.fits");
  ASSERT_TRUE(WriteStringToFile(path, "SIMPLE = T").ok());
  auto file = RandomAccessFile::Open(path);
  EXPECT_FALSE(ParseFitsHeader(file->get()).ok());
}

TEST_F(FitsFileTest, TruncatedDataSectionFailsRead) {
  // A file whose header promises more rows than the data section holds must
  // fail the read with a clean status, not crash or fabricate values.
  WriteSample(100);
  auto content = ReadFileToString(path_);
  ASSERT_TRUE(content.ok());
  auto whole = RandomAccessFile::Open(path_);
  ASSERT_TRUE(whole.ok());
  auto info = ParseFitsHeader(whole->get());
  ASSERT_TRUE(info.ok());
  // Keep the header plus the first two rows of data only.
  std::string cut =
      content->substr(0, info->data_start + 2 * info->row_bytes);
  std::string path = dir_.File("cut.fits");
  ASSERT_TRUE(WriteStringToFile(path, cut).ok());

  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());
  auto cut_info = ParseFitsHeader(file->get());
  ASSERT_TRUE(cut_info.ok());  // header itself is intact
  EXPECT_EQ(cut_info->num_rows, 100u);
  FitsReader reader(file->get(), &*cut_info);
  Row row;
  std::vector<bool> all(5, true);
  EXPECT_TRUE(reader.ReadRow(0, all, &row).ok());
  EXPECT_TRUE(reader.ReadRow(1, all, &row).ok());
  EXPECT_FALSE(reader.ReadRow(50, all, &row).ok());
}

TEST_F(FitsFileTest, CfitsioLikeApi) {
  WriteSample(100);
  fitsfile* f = nullptr;
  ASSERT_EQ(fits_open_table(&f, path_.c_str()), kFitsOk);
  long long rows = 0;
  ASSERT_EQ(fits_get_num_rows(f, &rows), kFitsOk);
  EXPECT_EQ(rows, 100);
  int ncols = 0;
  ASSERT_EQ(fits_get_num_cols(f, &ncols), kFitsOk);
  EXPECT_EQ(ncols, 5);
  int colnum = 0;
  ASSERT_EQ(fits_get_colnum(f, "mag", &colnum), kFitsOk);
  EXPECT_EQ(colnum, 2);
  EXPECT_EQ(fits_get_colnum(f, "nope", &colnum), kFitsError);

  std::vector<double> mags(100);
  ASSERT_EQ(fits_read_col_dbl(f, 2, 1, 100, mags.data()), kFitsOk);
  EXPECT_DOUBLE_EQ(mags[0], 20.0);
  EXPECT_DOUBLE_EQ(mags[99], 20.0 - 99 * 0.01);

  std::vector<long long> ids(10);
  ASSERT_EQ(fits_read_col_lng(f, 3, 91, 10, ids.data()), kFitsOk);
  EXPECT_EQ(ids[0], 90);
  // Out-of-range reads fail.
  EXPECT_EQ(fits_read_col_dbl(f, 2, 95, 10, mags.data()), kFitsError);
  ASSERT_EQ(fits_close_file(f), kFitsOk);

  EXPECT_EQ(fits_open_table(&f, "/nonexistent.fits"), kFitsError);
}

TEST_F(FitsFileTest, SqlOverFits) {
  WriteSample(500);
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(db->RegisterFits("stars", path_).ok());
  // Aggregations like the paper's §5.3 workload (MIN/MAX/AVG over floats).
  auto result = db->Execute(
      "SELECT MIN(flux), MAX(flux), AVG(mag), COUNT(*) FROM stars");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result->rows[0][0].f64(), 0.0);
  EXPECT_DOUBLE_EQ(result->rows[0][1].f64(), 499 * 0.5);
  EXPECT_EQ(result->rows[0][3].int64(), 500);

  // Filters + projections; repeated queries exercise the FITS cache.
  for (int repeat = 0; repeat < 3; ++repeat) {
    auto filtered = db->Execute(
        "SELECT id, name FROM stars WHERE flux > 200 AND name = 'SRC3' "
        "ORDER BY id LIMIT 5");
    ASSERT_TRUE(filtered.ok()) << filtered.status();
    ASSERT_EQ(filtered->rows.size(), 5u);
    EXPECT_EQ(filtered->rows[0][0].int64(), 403);
  }
  // Cache got populated by the scans.
  TableRuntime* rt = db->runtime("stars");
  ASSERT_NE(rt, nullptr);
  ASSERT_NE(rt->cache, nullptr);
  EXPECT_GT(rt->cache->memory_bytes(), 0u);
}

TEST_F(FitsFileTest, FitsAndCfitsioAgreeOnAggregate) {
  WriteSample(300);
  // SQL path.
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(db->RegisterFits("stars", path_).ok());
  auto result = db->Execute("SELECT SUM(flux) FROM stars");
  ASSERT_TRUE(result.ok());
  // Procedural CFITSIO-like path.
  fitsfile* f = nullptr;
  ASSERT_EQ(fits_open_table(&f, path_.c_str()), kFitsOk);
  std::vector<double> flux(300);
  ASSERT_EQ(fits_read_col_dbl(f, 1, 1, 300, flux.data()), kFitsOk);
  double sum = 0;
  for (double v : flux) sum += v;
  fits_close_file(f);
  EXPECT_DOUBLE_EQ(result->rows[0][0].f64(), sum);
}

TEST(FitsWriterTest, StringWidthRequired) {
  TempDir dir;
  Schema schema{{"s", TypeId::kString}};
  EXPECT_FALSE(FitsWriter::Create(dir.File("x.fits"), schema, {}).ok());
  EXPECT_FALSE(FitsWriter::Create(dir.File("x.fits"), schema, {0}).ok());
}

TEST(FitsWriterTest, LongStringsTruncatedToWidth) {
  TempDir dir;
  std::string path = dir.File("t.fits");
  Schema schema{{"s", TypeId::kString}};
  auto writer = FitsWriter::Create(path, schema, {4});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append({Value::String("abcdefgh")}).ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  auto file = RandomAccessFile::Open(path);
  auto info = ParseFitsHeader(file->get());
  FitsReader reader(file->get(), &*info);
  Row row;
  ASSERT_TRUE(reader.ReadRow(0, {true}, &row).ok());
  EXPECT_EQ(row[0].str(), "abcd");
}

}  // namespace
}  // namespace nodb
