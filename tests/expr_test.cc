#include <gtest/gtest.h>

#include "expr/aggregates.h"
#include "expr/evaluator.h"
#include "expr/expr.h"
#include "expr/like.h"

namespace nodb {
namespace {

ExprPtr Col(int i, TypeId t) {
  return std::make_unique<ColumnRefExpr>(i, t, "c" + std::to_string(i));
}
ExprPtr Lit(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<ComparisonExpr>(op, std::move(l), std::move(r));
}
ExprPtr Arith(ArithOp op, TypeId t, ExprPtr l, ExprPtr r) {
  return std::make_unique<ArithmeticExpr>(op, t, std::move(l), std::move(r));
}

Value Eval(const Expr& e, const Row& row) {
  auto result = Evaluator::Eval(e, row);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? *result : Value();
}

// ---------------------------------------------------------------------
// LIKE
// ---------------------------------------------------------------------

TEST(LikeTest, LiteralMatch) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_FALSE(LikeMatch("hello", "hell"));
  EXPECT_FALSE(LikeMatch("hell", "hello"));
}

TEST(LikeTest, PercentWildcard) {
  EXPECT_TRUE(LikeMatch("PROMO BRUSHED TIN", "PROMO%"));
  EXPECT_FALSE(LikeMatch("STANDARD BRUSHED TIN", "PROMO%"));
  EXPECT_TRUE(LikeMatch("abcdef", "%def"));
  EXPECT_TRUE(LikeMatch("abcdef", "%cd%"));
  EXPECT_TRUE(LikeMatch("abc", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_TRUE(LikeMatch("aXbXc", "a%b%c"));
  EXPECT_FALSE(LikeMatch("ab", "a%bc"));
}

TEST(LikeTest, UnderscoreWildcard) {
  EXPECT_TRUE(LikeMatch("cat", "c_t"));
  EXPECT_FALSE(LikeMatch("caat", "c_t"));
  EXPECT_TRUE(LikeMatch("abc", "___"));
  EXPECT_FALSE(LikeMatch("ab", "___"));
}

TEST(LikeTest, Backtracking) {
  EXPECT_TRUE(LikeMatch("aaab", "%ab"));
  EXPECT_TRUE(LikeMatch("mississippi", "%iss%ppi"));
  EXPECT_FALSE(LikeMatch("mississippi", "%issx%"));
}

// ---------------------------------------------------------------------
// Evaluator: comparisons & logic
// ---------------------------------------------------------------------

TEST(EvaluatorTest, Comparisons) {
  Row row = {Value::Int64(5)};
  EXPECT_TRUE(Eval(*Cmp(CompareOp::kEq, Col(0, TypeId::kInt64),
                        Lit(Value::Int64(5))),
                   row)
                  .boolean());
  EXPECT_TRUE(Eval(*Cmp(CompareOp::kLt, Col(0, TypeId::kInt64),
                        Lit(Value::Double(5.5))),
                   row)
                  .boolean());
  EXPECT_FALSE(Eval(*Cmp(CompareOp::kGe, Col(0, TypeId::kInt64),
                         Lit(Value::Int64(6))),
                    row)
                   .boolean());
}

TEST(EvaluatorTest, NullComparisonsYieldNull) {
  Row row = {Value::Null(TypeId::kInt64)};
  Value v = Eval(*Cmp(CompareOp::kEq, Col(0, TypeId::kInt64),
                      Lit(Value::Int64(1))),
                 row);
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(Evaluator::IsTruthy(v));  // WHERE treats NULL as false
}

TEST(EvaluatorTest, KleeneAndOr) {
  auto make_logical = [](LogicalOp op, Value l, Value r) {
    LogicalExpr e(op, Lit(std::move(l)), Lit(std::move(r)));
    return Eval(e, {});
  };
  // NULL AND false = false; NULL AND true = NULL.
  EXPECT_FALSE(make_logical(LogicalOp::kAnd, Value::Null(TypeId::kBool),
                            Value::Bool(false))
                   .boolean());
  EXPECT_TRUE(make_logical(LogicalOp::kAnd, Value::Null(TypeId::kBool),
                           Value::Bool(true))
                  .is_null());
  // NULL OR true = true; NULL OR false = NULL.
  EXPECT_TRUE(make_logical(LogicalOp::kOr, Value::Null(TypeId::kBool),
                           Value::Bool(true))
                  .boolean());
  EXPECT_TRUE(make_logical(LogicalOp::kOr, Value::Null(TypeId::kBool),
                           Value::Bool(false))
                  .is_null());
}

TEST(EvaluatorTest, NotOperator) {
  LogicalExpr e(LogicalOp::kNot, Lit(Value::Bool(false)), nullptr);
  EXPECT_TRUE(Eval(e, {}).boolean());
  LogicalExpr n(LogicalOp::kNot, Lit(Value::Null(TypeId::kBool)), nullptr);
  EXPECT_TRUE(Eval(n, {}).is_null());
}

// ---------------------------------------------------------------------
// Evaluator: arithmetic
// ---------------------------------------------------------------------

TEST(EvaluatorTest, IntegerArithmetic) {
  Row row = {Value::Int64(7), Value::Int64(3)};
  EXPECT_EQ(Eval(*Arith(ArithOp::kAdd, TypeId::kInt64, Col(0, TypeId::kInt64),
                        Col(1, TypeId::kInt64)),
                 row)
                .int64(),
            10);
  EXPECT_EQ(Eval(*Arith(ArithOp::kDiv, TypeId::kInt64, Col(0, TypeId::kInt64),
                        Col(1, TypeId::kInt64)),
                 row)
                .int64(),
            2);  // integer division
}

TEST(EvaluatorTest, DoublePromotion) {
  Row row = {Value::Int64(7)};
  Value v = Eval(*Arith(ArithOp::kMul, TypeId::kDouble,
                        Col(0, TypeId::kInt64), Lit(Value::Double(0.5))),
                 row);
  EXPECT_EQ(v.type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(v.f64(), 3.5);
}

TEST(EvaluatorTest, DivisionByZeroIsError) {
  ArithmeticExpr e(ArithOp::kDiv, TypeId::kInt64, Lit(Value::Int64(1)),
                   Lit(Value::Int64(0)));
  EXPECT_FALSE(Evaluator::Eval(e, {}).ok());
}

TEST(EvaluatorTest, DateArithmetic) {
  // date + days, date - days, date - date.
  ArithmeticExpr plus(ArithOp::kAdd, TypeId::kDate, Lit(Value::Date(100)),
                      Lit(Value::Int64(5)));
  EXPECT_EQ(Eval(plus, {}).date(), 105);
  ArithmeticExpr minus(ArithOp::kSub, TypeId::kDate, Lit(Value::Date(100)),
                       Lit(Value::Int64(90)));
  EXPECT_EQ(Eval(minus, {}).date(), 10);
  ArithmeticExpr diff(ArithOp::kSub, TypeId::kInt64, Lit(Value::Date(100)),
                      Lit(Value::Date(60)));
  EXPECT_EQ(Eval(diff, {}).int64(), 40);
}

TEST(EvaluatorTest, NullPropagatesThroughArithmetic) {
  ArithmeticExpr e(ArithOp::kAdd, TypeId::kInt64, Lit(Value::Int64(1)),
                   Lit(Value::Null(TypeId::kInt64)));
  EXPECT_TRUE(Eval(e, {}).is_null());
}

// ---------------------------------------------------------------------
// Evaluator: IN / LIKE / CASE / IS NULL / CAST
// ---------------------------------------------------------------------

TEST(EvaluatorTest, InList) {
  InListExpr in(Col(0, TypeId::kString),
                {Value::String("MAIL"), Value::String("SHIP")}, false);
  EXPECT_TRUE(Eval(in, {Value::String("MAIL")}).boolean());
  EXPECT_FALSE(Eval(in, {Value::String("AIR")}).boolean());
  EXPECT_TRUE(Eval(in, {Value::Null(TypeId::kString)}).is_null());
  InListExpr not_in(Col(0, TypeId::kString), {Value::String("MAIL")}, true);
  EXPECT_TRUE(Eval(not_in, {Value::String("AIR")}).boolean());
}

TEST(EvaluatorTest, LikeExprWithNull) {
  LikeExpr like(Col(0, TypeId::kString), "PROMO%", false);
  EXPECT_TRUE(Eval(like, {Value::String("PROMO X")}).boolean());
  EXPECT_TRUE(Eval(like, {Value::Null(TypeId::kString)}).is_null());
  LikeExpr not_like(Col(0, TypeId::kString), "PROMO%", true);
  EXPECT_TRUE(Eval(not_like, {Value::String("BASIC")}).boolean());
}

TEST(EvaluatorTest, CaseSearched) {
  // CASE WHEN c0 = 1 THEN 10 WHEN c0 = 2 THEN 20 ELSE 0 END
  std::vector<CaseExpr::WhenClause> whens;
  whens.push_back({Cmp(CompareOp::kEq, Col(0, TypeId::kInt64),
                       Lit(Value::Int64(1))),
                   Lit(Value::Int64(10))});
  whens.push_back({Cmp(CompareOp::kEq, Col(0, TypeId::kInt64),
                       Lit(Value::Int64(2))),
                   Lit(Value::Int64(20))});
  CaseExpr c(TypeId::kInt64, std::move(whens), Lit(Value::Int64(0)));
  EXPECT_EQ(Eval(c, {Value::Int64(1)}).int64(), 10);
  EXPECT_EQ(Eval(c, {Value::Int64(2)}).int64(), 20);
  EXPECT_EQ(Eval(c, {Value::Int64(9)}).int64(), 0);
}

TEST(EvaluatorTest, CaseWithoutElseIsNull) {
  std::vector<CaseExpr::WhenClause> whens;
  whens.push_back({Lit(Value::Bool(false)), Lit(Value::Int64(1))});
  CaseExpr c(TypeId::kInt64, std::move(whens), nullptr);
  EXPECT_TRUE(Eval(c, {}).is_null());
}

TEST(EvaluatorTest, CaseCoercesResultType) {
  // THEN returns int but the CASE is typed double (SUM(CASE...) in Q14).
  std::vector<CaseExpr::WhenClause> whens;
  whens.push_back({Lit(Value::Bool(true)), Lit(Value::Int64(3))});
  CaseExpr c(TypeId::kDouble, std::move(whens), nullptr);
  Value v = Eval(c, {});
  EXPECT_EQ(v.type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(v.f64(), 3.0);
}

TEST(EvaluatorTest, IsNull) {
  IsNullExpr is_null(Col(0, TypeId::kInt64), false);
  EXPECT_TRUE(Eval(is_null, {Value::Null(TypeId::kInt64)}).boolean());
  EXPECT_FALSE(Eval(is_null, {Value::Int64(1)}).boolean());
  IsNullExpr not_null(Col(0, TypeId::kInt64), true);
  EXPECT_TRUE(Eval(not_null, {Value::Int64(1)}).boolean());
}

TEST(EvaluatorTest, Casts) {
  CastExpr to_double(TypeId::kDouble, Lit(Value::Int64(3)));
  EXPECT_DOUBLE_EQ(Eval(to_double, {}).f64(), 3.0);
  CastExpr to_string(TypeId::kString, Lit(Value::Int64(42)));
  EXPECT_EQ(Eval(to_string, {}).str(), "42");
  CastExpr to_int(TypeId::kInt64, Lit(Value::String("17")));
  EXPECT_EQ(Eval(to_int, {}).int64(), 17);
  CastExpr bad(TypeId::kInt64, Lit(Value::String("xyz")));
  EXPECT_FALSE(Evaluator::Eval(bad, {}).ok());
}

TEST(ExprTest, CollectColumns) {
  auto e = Arith(ArithOp::kMul, TypeId::kDouble, Col(4, TypeId::kDouble),
                 Arith(ArithOp::kSub, TypeId::kDouble, Lit(Value::Double(1)),
                       Col(6, TypeId::kDouble)));
  std::vector<int> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<int>{4, 6}));
}

TEST(ExprTest, ToStringRendering) {
  auto e = Cmp(CompareOp::kLe, Col(0, TypeId::kInt64), Lit(Value::Int64(9)));
  EXPECT_EQ(e->ToString(), "(c0@0 <= 9)");
}

// ---------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------

TEST(AggregatesTest, CountStarCountsNulls) {
  AggregateSpec spec{AggFunc::kCountStar, nullptr};
  AggAccumulator acc(&spec);
  acc.Add(Value::Null(TypeId::kInt64));
  acc.Add(Value::Int64(1));
  EXPECT_EQ(acc.Final().int64(), 2);
}

TEST(AggregatesTest, CountSkipsNulls) {
  AggregateSpec spec{AggFunc::kCount, Col(0, TypeId::kInt64)};
  AggAccumulator acc(&spec);
  acc.Add(Value::Null(TypeId::kInt64));
  acc.Add(Value::Int64(1));
  acc.Add(Value::Int64(2));
  EXPECT_EQ(acc.Final().int64(), 2);
}

TEST(AggregatesTest, SumIntAndDouble) {
  AggregateSpec int_spec{AggFunc::kSum, Col(0, TypeId::kInt64)};
  EXPECT_EQ(int_spec.ResultType(), TypeId::kInt64);
  AggAccumulator int_acc(&int_spec);
  int_acc.Add(Value::Int64(2));
  int_acc.Add(Value::Int64(3));
  EXPECT_EQ(int_acc.Final().int64(), 5);

  AggregateSpec dbl_spec{AggFunc::kSum, Col(0, TypeId::kDouble)};
  EXPECT_EQ(dbl_spec.ResultType(), TypeId::kDouble);
  AggAccumulator dbl_acc(&dbl_spec);
  dbl_acc.Add(Value::Double(0.5));
  dbl_acc.Add(Value::Double(0.25));
  EXPECT_DOUBLE_EQ(dbl_acc.Final().f64(), 0.75);
}

TEST(AggregatesTest, EmptySumIsNullEmptyCountIsZero) {
  AggregateSpec sum_spec{AggFunc::kSum, Col(0, TypeId::kInt64)};
  AggAccumulator sum_acc(&sum_spec);
  EXPECT_TRUE(sum_acc.Final().is_null());
  AggregateSpec count_spec{AggFunc::kCountStar, nullptr};
  AggAccumulator count_acc(&count_spec);
  EXPECT_EQ(count_acc.Final().int64(), 0);
}

TEST(AggregatesTest, AvgIgnoresNulls) {
  AggregateSpec spec{AggFunc::kAvg, Col(0, TypeId::kInt64)};
  AggAccumulator acc(&spec);
  acc.Add(Value::Int64(10));
  acc.Add(Value::Null(TypeId::kInt64));
  acc.Add(Value::Int64(20));
  EXPECT_DOUBLE_EQ(acc.Final().f64(), 15.0);
}

TEST(AggregatesTest, MinMaxStringsAndDates) {
  AggregateSpec min_spec{AggFunc::kMin, Col(0, TypeId::kString)};
  AggAccumulator min_acc(&min_spec);
  min_acc.Add(Value::String("pear"));
  min_acc.Add(Value::String("apple"));
  EXPECT_EQ(min_acc.Final().str(), "apple");

  AggregateSpec max_spec{AggFunc::kMax, Col(0, TypeId::kDate)};
  AggAccumulator max_acc(&max_spec);
  max_acc.Add(Value::Date(10));
  max_acc.Add(Value::Date(30));
  EXPECT_EQ(max_acc.Final().date(), 30);
}

}  // namespace
}  // namespace nodb
