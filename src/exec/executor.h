#ifndef NODB_EXEC_EXECUTOR_H_
#define NODB_EXEC_EXECUTOR_H_

#include <string>

#include "exec/exec_control.h"
#include "exec/operator.h"
#include "exec/raw_scan.h"
#include "exec/table_runtime.h"
#include "plan/logical_plan.h"
#include "util/result.h"

namespace nodb {

/// Maps catalog table names to their runtime state; implemented by the
/// engine's database object.
class TableResolver {
 public:
  virtual ~TableResolver() = default;
  virtual Result<TableRuntime*> GetTableRuntime(const std::string& name) = 0;
};

class ThreadPool;

/// Knobs threaded through to every scan the plan instantiates.
struct ExecOptions {
  InSituOptions insitu;
  /// Rows per operator batch (RowBatch capacity) for the whole pipeline,
  /// including the internal batches of materializing operators.
  size_t batch_size = RowBatch::kDefaultCapacity;
  /// Worker threads per raw scan (EngineConfig::scan_threads; a table's
  /// OpenOptions override wins). Raw scans go morsel-parallel only when
  /// the effective count is > 1 *and* scan_pool is set.
  int scan_threads = 1;
  /// Target bytes per parallel-scan morsel; 0 = auto-size.
  uint64_t scan_morsel_bytes = 0;
  /// Shared worker pool (owned by the Database); null disables parallelism.
  ThreadPool* scan_pool = nullptr;
  /// Monotonic-clock deadline for the whole query; the zero value (default)
  /// means none. Checked at batch boundaries — a slow cold scan is killed
  /// mid-flight with a typed kDeadlineExceeded error, releasing its scan
  /// epoch and pool workers like any other execution error.
  std::chrono::steady_clock::time_point deadline{};
  /// Shared cancel/deadline handle. Optional: when null and `deadline` is
  /// set, Database::Query creates one. A caller that wants to cancel
  /// mid-flight (server sessions do) passes its own and flips
  /// `control->cancelled` from another thread.
  ExecControlPtr control;
};

/// Builds the (unopened) operator tree for `plan`. The caller owns the
/// pipeline and drives it batch-at-a-time: Open, Next until it returns 0
/// (or until enough rows were seen), Close. All engines (PostgresRaw
/// analogue, loaded baselines, external files) share this executor —
/// mirroring the paper, where PostgresRaw reuses PostgreSQL's engine and
/// differs only in the access methods. `plan` (and the BoundQuery it
/// references) must outlive the returned pipeline.
Result<OperatorPtr> BuildPipeline(const PhysicalPlan& plan,
                                  TableResolver* resolver,
                                  const ExecOptions& options);

}  // namespace nodb

#endif  // NODB_EXEC_EXECUTOR_H_
