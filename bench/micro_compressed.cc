// Compressed-source benchmark: what does serving a gzipped raw file
// through the checkpointed decompression layer (io/inflate_file) cost,
// and what does the checkpoint index buy back? Four measurements over the
// same micro CSV, plain vs .csv.gz:
//
//   1. cold scan       — first selective query, raw parse + inflation from
//                        zero (the gz engine also *builds* its checkpoint
//                        index during this pass).
//   2. warm cached     — after a full-width warming scan every attribute
//                        is cached: the selective query must read ZERO
//                        decompressed payload bytes (hard gate).
//   3. checkpoint seek — pmap-style directed reads into the middle of the
//                        stream, served by seeking to the nearest
//                        checkpoint: each must inflate at most one
//                        checkpoint interval plus a deflate block (hard
//                        gate), never re-inflate from zero.
//   4. full re-inflate — the same directed read on a fresh handle with no
//                        index: the latency a restart *without* the
//                        checkpoint index would pay.
//
// Writes BENCH_compressed.json; exits non-zero if a gate fails.
//
//   ./bench_micro_compressed [--scale=F] [--seed=N]

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common.h"
#include "io/inflate_file.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

uint64_t RawBytesRead(Database* db) {
  for (const TableInfo& info : db->ListTables()) {
    if (info.name == "t") return info.bytes_read;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);

  if (!InflateSupported()) {
    printf("built without zlib: compressed-source benchmark skipped\n");
    FILE* f = fopen("BENCH_compressed.json", "w");
    if (f == nullptr) return 1;
    fprintf(f, "{\n  \"skipped\": true\n}\n");
    fclose(f);
    return 0;
  }

  MicroDataSpec spec;
  spec.rows = static_cast<uint64_t>(500000 * args.scale);
  spec.cols = 5;
  spec.seed = args.seed;
  std::string csv = MicroCsv(spec, "compressed");

  // Gzip the generated file next to it.
  std::string gz_path = DataDir()->File("micro_compressed.csv.gz");
  {
    auto content = ReadFileToString(csv);
    if (!content.ok()) {
      fprintf(stderr, "read failed: %s\n",
              content.status().ToString().c_str());
      return 1;
    }
    Status s = WriteStringToFile(gz_path, GzipCompress(*content));
    if (!s.ok()) {
      fprintf(stderr, "gzip failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  constexpr uint64_t kInterval = 256 * 1024;
  const std::string selective = "SELECT a2 FROM t WHERE a4 >= 900000000";
  const std::string full_width =
      "SELECT SUM(a1), SUM(a2), SUM(a3), SUM(a4), SUM(a5) FROM t";

  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  config.gz_checkpoint_bytes = kInterval;

  // --- plain baseline: the same engine over the uncompressed file ----------
  double plain_cold_s, plain_warm_s;
  {
    Database db(config);
    if (!db.RegisterCsv("t", csv, MicroSchema(spec)).ok()) return 1;
    plain_cold_s = RunQuery(&db, selective);
    (void)RunQuery(&db, full_width);
    plain_warm_s = RunQuery(&db, selective);
    for (int r = 0; r < 2; ++r) {
      plain_warm_s = std::min(plain_warm_s, RunQuery(&db, selective));
    }
  }

  // --- gz engine: cold scan builds the index, warm serves from cache ------
  double gz_cold_s, gz_warm_s;
  uint64_t warm_payload_delta, warm_inflated_delta;
  uint64_t checkpoints;
  bool gate_index_complete, gate_zero_payload, gate_seek_bounded,
      gate_seek_checkpointed;
  double seek_s = 0, full_reinflate_s = 0;
  uint64_t seek_max_inflated = 0, full_reinflate_bytes = 0;
  const uint64_t seek_bound = kInterval + 512 + 256 * 1024;
  {
    Database db(config);
    if (!db.RegisterCsv("t", gz_path, MicroSchema(spec)).ok()) return 1;
    const InflateFile* gz =
        db.runtime("t")->adapter->file()->AsInflateFile();
    if (gz == nullptr) {
      fprintf(stderr, "gz table is not served through the inflate layer\n");
      return 1;
    }

    gz_cold_s = RunQuery(&db, selective);
    (void)RunQuery(&db, full_width);
    gate_index_complete = gz->index_complete();
    checkpoints = gz->checkpoint_count();

    const uint64_t payload_before = RawBytesRead(&db);
    const uint64_t inflated_before = gz->bytes_inflated();
    gz_warm_s = RunQuery(&db, selective);
    for (int r = 0; r < 2; ++r) {
      gz_warm_s = std::min(gz_warm_s, RunQuery(&db, selective));
    }
    warm_payload_delta = RawBytesRead(&db) - payload_before;
    warm_inflated_delta = gz->bytes_inflated() - inflated_before;
    gate_zero_payload = warm_payload_delta == 0 && warm_inflated_delta == 0;

    // Checkpoint-directed seeks: descending targets so no live cursor can
    // serve them by reading forward — each must restart from a checkpoint.
    gate_seek_bounded = true;
    const uint64_t restarts_before = gz->checkpoint_restarts();
    const uint64_t fulls_before = gz->full_restarts();
    char buf[512];
    const double fracs[] = {0.85, 0.55, 0.25};
    const auto t_seek = std::chrono::steady_clock::now();
    for (double frac : fracs) {
      const uint64_t target = static_cast<uint64_t>(gz->size() * frac);
      const uint64_t before = gz->bytes_inflated();
      auto n = gz->Read(target, sizeof(buf), buf);
      if (!n.ok()) {
        fprintf(stderr, "directed read failed: %s\n",
                n.status().ToString().c_str());
        return 1;
      }
      const uint64_t delta = gz->bytes_inflated() - before;
      seek_max_inflated = std::max(seek_max_inflated, delta);
      if (delta > seek_bound) gate_seek_bounded = false;
    }
    seek_s = Seconds(t_seek) / 3.0;
    gate_seek_checkpointed =
        gz->checkpoint_restarts() >= restarts_before + 3 &&
        gz->full_restarts() == fulls_before;
  }

  // --- the counterfactual: the same directed read with no index -----------
  {
    auto inner = RandomAccessFile::Open(gz_path);
    if (!inner.ok()) return 1;
    InflateOptions opts;
    opts.checkpoint_interval_bytes = kInterval;
    auto gz = InflateFile::Open(std::move(*inner), opts);
    if (!gz.ok()) return 1;
    const uint64_t target = static_cast<uint64_t>((*gz)->size() * 0.85);
    char buf[512];
    const auto t0 = std::chrono::steady_clock::now();
    auto n = (*gz)->Read(target, sizeof(buf), buf);
    full_reinflate_s = Seconds(t0);
    if (!n.ok()) return 1;
    full_reinflate_bytes = (*gz)->bytes_inflated();
  }

  PrintBanner(
      "In-situ scans over gzipped sources",
      "not in the paper — NoDB addresses raw bytes by offset, which "
      "gzip's stateful stream denies; zran-style checkpoints restore "
      "random access, so positional maps and the column cache work "
      "unchanged against decompressed offsets");
  printf("data: %llu rows x %d cols; checkpoint interval %llu KiB, "
         "%llu checkpoints\n\n",
         static_cast<unsigned long long>(spec.rows), spec.cols,
         static_cast<unsigned long long>(kInterval / 1024),
         static_cast<unsigned long long>(checkpoints));

  TextTable table({"metric", "plain", ".csv.gz", "ratio"});
  table.AddRow({"cold selective scan (s)", Fmt(plain_cold_s), Fmt(gz_cold_s),
                Fmt(gz_cold_s / plain_cold_s, 2) + "x"});
  table.AddRow({"warm cached query (s)", Fmt(plain_warm_s), Fmt(gz_warm_s),
                Fmt(gz_warm_s / plain_warm_s, 2) + "x"});
  table.AddRow({"directed seek (s)", "-", Fmt(seek_s), "-"});
  table.AddRow({"seek, no index (s)", "-", Fmt(full_reinflate_s),
                Fmt(full_reinflate_s / (seek_s > 0 ? seek_s : 1e-9), 1) +
                    "x slower"});
  table.Print();

  printf("\ngate: index_complete=%s zero_warm_payload=%s "
         "seek_bounded=%s (max %llu <= %llu) seek_checkpointed=%s\n",
         gate_index_complete ? "yes" : "NO",
         gate_zero_payload ? "yes" : "NO", gate_seek_bounded ? "yes" : "NO",
         static_cast<unsigned long long>(seek_max_inflated),
         static_cast<unsigned long long>(seek_bound),
         gate_seek_checkpointed ? "yes" : "NO");

  FILE* f = fopen("BENCH_compressed.json", "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write BENCH_compressed.json\n");
    return 1;
  }
  fprintf(f,
          "{\n"
          "  \"rows\": %llu,\n"
          "  \"checkpoint_interval\": %llu,\n"
          "  \"checkpoints\": %llu,\n"
          "  \"plain\": {\"cold_s\": %.4f, \"warm_s\": %.4f},\n"
          "  \"gz\": {\"cold_s\": %.4f, \"warm_s\": %.4f,\n"
          "    \"warm_payload_bytes\": %llu, \"warm_inflated_bytes\": %llu,\n"
          "    \"seek_s\": %.5f, \"seek_max_inflated\": %llu,\n"
          "    \"full_reinflate_s\": %.5f, \"full_reinflate_bytes\": %llu},\n"
          "  \"gate\": {\"index_complete\": %s, \"zero_warm_payload\": %s,\n"
          "    \"seek_within_interval\": %s, \"seek_checkpointed\": %s}\n"
          "}\n",
          static_cast<unsigned long long>(spec.rows),
          static_cast<unsigned long long>(kInterval),
          static_cast<unsigned long long>(checkpoints), plain_cold_s,
          plain_warm_s, gz_cold_s, gz_warm_s,
          static_cast<unsigned long long>(warm_payload_delta),
          static_cast<unsigned long long>(warm_inflated_delta), seek_s,
          static_cast<unsigned long long>(seek_max_inflated),
          full_reinflate_s,
          static_cast<unsigned long long>(full_reinflate_bytes),
          gate_index_complete ? "true" : "false",
          gate_zero_payload ? "true" : "false",
          gate_seek_bounded ? "true" : "false",
          gate_seek_checkpointed ? "true" : "false");
  fclose(f);
  printf("wrote BENCH_compressed.json\n");

  return (gate_index_complete && gate_zero_payload && gate_seek_bounded &&
          gate_seek_checkpointed)
             ? 0
             : 1;
}
