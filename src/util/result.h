#ifndef NODB_UTIL_RESULT_H_
#define NODB_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace nodb {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent (an absl::StatusOr analogue). Accessing `value()` on an
/// error result is a programming error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace nodb

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// assigns the value to `lhs`. `lhs` may declare a new variable.
#define NODB_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  NODB_ASSIGN_OR_RETURN_IMPL_(                                 \
      NODB_RESULT_CONCAT_(nodb_result_, __LINE__), lhs, rexpr)

#define NODB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define NODB_RESULT_CONCAT_INNER_(a, b) a##b
#define NODB_RESULT_CONCAT_(a, b) NODB_RESULT_CONCAT_INNER_(a, b)

#endif  // NODB_UTIL_RESULT_H_
