#ifndef NODB_SERVER_SERVER_H_
#define NODB_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "server/admission.h"
#include "server/metrics.h"

namespace nodb {

class Session;

/// Query-service knobs.
struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks a free port, read it back via port().
  int port = 0;
  /// Concurrent connections; excess connects get an error line and a close.
  int max_sessions = 64;
  AdmissionConfig admission;
  /// Applied to queries that don't carry their own deadline_ms; 0 = none.
  int64_t default_deadline_ms = 0;
  /// Structured per-query log lines (one JSON object per line) go here;
  /// nullptr disables logging.
  std::ostream* log = nullptr;
};

/// A long-lived concurrent query service in front of one Database: accepts
/// TCP connections, speaks the newline-delimited JSON protocol (see
/// protocol.h), and gives every connection its own Session thread. Queries
/// pass through two-lane admission control (cold raw scans vs warm ones)
/// before touching the engine, carry deadlines/cancellation end-to-end via
/// ExecControl, and bump live metrics served by the STATS verb.
///
///   Database db(config);
///   db.Open("t", "/data/t.csv", ...);
///   QueryServer server(&db, ServerConfig{});
///   NODB_RETURN_IF_ERROR(server.Start());
///   ... connect to 127.0.0.1:server.port() ...
///   server.Stop();   // drains sessions, releases epochs, joins threads
class QueryServer {
 public:
  /// `db` must outlive the server.
  QueryServer(Database* db, ServerConfig config);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and spawns the accept thread. Fails (typed) when the
  /// address is unusable; safe to call once.
  Status Start();

  /// Graceful stop: stops accepting, cancels in-flight queries, wakes
  /// queued admission waiters, and joins every session thread. Idempotent;
  /// also run by the destructor.
  void Stop();

  /// The bound port (after Start); useful with ephemeral port 0.
  int port() const { return port_; }

  /// Point-in-time counters + admission gauges + latency percentiles.
  ServerStats Stats() const;

  // --- session-facing internals (sessions hold a QueryServer*) ---
  const ServerConfig& config() const { return config_; }
  Database* db() const { return db_; }
  AdmissionController* admission() { return &admission_; }
  ServerMetrics* metrics() { return &metrics_; }
  /// A query is cold when any table it touches is a raw source whose first
  /// complete scan hasn't happened yet (no trustworthy row count, pmap and
  /// cache still empty) — the expensive, pool-hogging case.
  bool IsColdQuery(const std::vector<std::string>& tables) const;
  /// Writes one structured log line, serialized across sessions.
  void LogLine(std::string_view line);

 private:
  void AcceptLoop();
  /// Joins and drops finished sessions (called from the accept thread).
  void ReapFinishedLocked();

  Database* const db_;
  const ServerConfig config_;
  AdmissionController admission_;
  ServerMetrics metrics_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;

  std::mutex log_mu_;
};

}  // namespace nodb

#endif  // NODB_SERVER_SERVER_H_
