#ifndef NODB_EXEC_LIMIT_H_
#define NODB_EXEC_LIMIT_H_

#include <algorithm>
#include <cstdint>

#include "exec/operator.h"

namespace nodb {

/// Passes through the first `limit` rows. Once satisfied it stops pulling
/// from the child entirely, so a LIMIT over a raw-file scan leaves the rest
/// of the file unread.
class LimitOp final : public Operator {
 public:
  LimitOp(OperatorPtr child, int64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Open() override { return child_->Open(); }

  Result<size_t> Next(RowBatch* batch) override {
    if (produced_ >= limit_) {
      batch->Clear();
      return size_t{0};
    }
    NODB_ASSIGN_OR_RETURN(size_t n, child_->Next(batch));
    size_t take = std::min<size_t>(n, static_cast<size_t>(limit_ - produced_));
    batch->Truncate(take);
    produced_ += static_cast<int64_t>(take);
    return take;
  }

  Status Close() override { return child_->Close(); }

 private:
  OperatorPtr child_;
  int64_t limit_;
  int64_t produced_ = 0;
};

}  // namespace nodb

#endif  // NODB_EXEC_LIMIT_H_
