#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "server/protocol.h"
#include "server/session.h"

namespace nodb {

QueryServer::QueryServer(Database* db, ServerConfig config)
    : db_(db), config_(std::move(config)), admission_(config_.admission) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address '" + config_.host +
                                   "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status err = Status::IOError("bind " + config_.host + ":" +
                                 std::to_string(config_.port) + ": " +
                                 std::strerror(errno));
    ::close(fd);
    return err;
  }
  if (::listen(fd, 128) != 0) {
    Status err =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return err;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status err =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return err;
  }
  port_ = ntohs(bound.sin_port);

  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      ReapFinishedLocked();
    }
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener shut down (or unusable): stop accepting
    }

    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(client);
      break;
    }
    if (sessions_.size() >= static_cast<size_t>(config_.max_sessions)) {
      // Full house: a typed goodbye instead of a silent close.
      std::string line = ErrorLine(
          Status::ResourceExhausted(
              "session limit reached (" + std::to_string(config_.max_sessions) +
              " active connections)"),
          /*id=*/"");
      (void)::send(client, line.data(), line.size(), MSG_NOSIGNAL);
      ::close(client);
      continue;
    }
    auto session =
        std::make_unique<Session>(next_session_id_++, client, this);
    session->Start();
    sessions_.push_back(std::move(session));
  }
}

void QueryServer::ReapFinishedLocked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->finished()) {
      (*it)->Join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  // Break the accept thread out of poll()/accept() and prevent new
  // connections, then let queued admission waiters fail fast.
  ::shutdown(listen_fd_, SHUT_RDWR);
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  admission_.Shutdown();

  std::vector<std::unique_ptr<Session>> drained;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    drained.swap(sessions_);
  }
  for (auto& session : drained) session->RequestStop();
  for (auto& session : drained) session->Join();
  drained.clear();
  // With every session drained the structures are quiescent: persist the
  // warm state they earned, so the next server start is warm. Best-effort —
  // a failed save only costs the restart a cold first scan.
  Status snapshot_status = db_->SnapshotAll();
  (void)snapshot_status;
  started_ = false;
}

ServerStats QueryServer::Stats() const {
  ServerStats s = metrics_.Snapshot();
  const auto* admission = &admission_;
  s.cold_active = admission->active(true);
  s.warm_active = admission->active(false);
  s.cold_queued = admission->queued(true);
  s.warm_queued = admission->queued(false);
  SnapshotCounters snap = db_->snapshot_counters();
  s.snapshot_loads = snap.loads;
  s.snapshot_load_misses = snap.load_misses;
  s.snapshot_load_stale = snap.load_stale;
  s.snapshot_load_corrupt = snap.load_corrupt;
  s.snapshot_saves = snap.saves;
  s.snapshot_save_failures = snap.save_failures;
  s.snapshot_bytes_loaded = snap.bytes_loaded;
  s.snapshot_bytes_saved = snap.bytes_saved;
  for (const TableInfo& info : db_->ListTables()) {
    ServerStats::TableView view;
    view.name = info.name;
    view.snapshot_state = std::string(SnapshotStateName(info.snapshot_state));
    view.snapshot_bytes = info.snapshot_bytes;
    view.bytes_read = info.bytes_read;
    view.compressed = info.compressed;
    view.gz_checkpoints = info.gz_checkpoints;
    view.gz_bytes_inflated = info.gz_bytes_inflated;
    view.rows = info.row_count;
    view.promoted_columns = info.promoted_columns;
    view.promoted_bytes = info.promoted_bytes;
    view.promotions = info.promotions;
    view.demotions = info.demotions;
    s.tables.push_back(std::move(view));
  }
  return s;
}

bool QueryServer::IsColdQuery(const std::vector<std::string>& tables) const {
  for (const std::string& name : tables) {
    TableRuntime* rt = db_->runtime(name);
    if (rt == nullptr) continue;  // binder already vetted; be permissive
    if (rt->storage == TableStorage::kRaw &&
        rt->known_row_count.load(std::memory_order_acquire) < 0) {
      return true;
    }
  }
  return false;
}

void QueryServer::LogLine(std::string_view line) {
  if (config_.log == nullptr) return;
  std::lock_guard<std::mutex> lock(log_mu_);
  (*config_.log) << line << '\n';
  config_.log->flush();
}

}  // namespace nodb
