#ifndef NODB_STORAGE_LOADER_H_
#define NODB_STORAGE_LOADER_H_

#include <cstdint>
#include <string>

#include "csv/dialect.h"
#include "storage/compact_table.h"
#include "storage/table_heap.h"
#include "util/result.h"

namespace nodb {

struct ParseKernels;

/// Outcome of a bulk load.
struct LoadResult {
  uint64_t rows = 0;
  double seconds = 0;
};

/// Bulk-loads a CSV file into a slotted-page heap — the a-priori "COPY" that
/// traditional engines require before the first query (and whose cost NoDB
/// eliminates). Every attribute of every tuple is tokenized, parsed to
/// binary and written out, exactly the work the paper charges to the
/// loaded-DBMS baselines. `kernels` selects the tokenize/parse path
/// (raw/parse_kernels.h); null means the process-wide active table.
Result<LoadResult> LoadCsvToHeap(const std::string& csv_path,
                                 const CsvDialect& dialect, TableHeap* heap,
                                 const ParseKernels* kernels = nullptr);

/// Same, into the packed "DBMS X" format.
Result<LoadResult> LoadCsvToCompact(const std::string& csv_path,
                                    const CsvDialect& dialect,
                                    CompactTable* table,
                                    const ParseKernels* kernels = nullptr);

}  // namespace nodb

#endif  // NODB_STORAGE_LOADER_H_
