#ifndef NODB_FITS_CFITSIO_LIKE_H_
#define NODB_FITS_CFITSIO_LIKE_H_

#include <cstdint>

namespace nodb {

/// CFITSIO-style procedural API — the custom-C-program baseline of the
/// paper's §5.3 ("we compare PostgresRaw with a custom-made C program that
/// uses the CFITSIO library"). The call shapes mirror CFITSIO (status-code
/// returns, out-params); every read touches the file — like CFITSIO, the
/// only reuse between calls is the OS file-system cache.
///
/// A "query" against this API is a handwritten loop over fits_read_col_*
/// followed by manual aggregation — which is precisely the usability point
/// the paper makes.

struct fitsfile;  // opaque handle

/// Status codes (0 = OK, CFITSIO convention).
inline constexpr int kFitsOk = 0;
inline constexpr int kFitsError = 1;

int fits_open_table(fitsfile** handle, const char* path);
int fits_close_file(fitsfile* handle);

int fits_get_num_rows(fitsfile* handle, long long* num_rows);
int fits_get_num_cols(fitsfile* handle, int* num_cols);
/// 1-based column lookup by name, CFITSIO-style.
int fits_get_colnum(fitsfile* handle, const char* name, int* colnum);

/// Reads `nelem` doubles of column `colnum` (1-based) starting at `firstrow`
/// (1-based) into `out`. Integer/float columns are widened to double.
int fits_read_col_dbl(fitsfile* handle, int colnum, long long firstrow,
                      long long nelem, double* out);

/// Reads 64-bit integers (K columns).
int fits_read_col_lng(fitsfile* handle, int colnum, long long firstrow,
                      long long nelem, long long* out);

}  // namespace nodb

#endif  // NODB_FITS_CFITSIO_LIKE_H_
