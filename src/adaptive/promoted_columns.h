#ifndef NODB_ADAPTIVE_PROMOTED_COLUMNS_H_
#define NODB_ADAPTIVE_PROMOTED_COLUMNS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "types/value.h"

namespace nodb {

/// The promoted (hot) columnar representation of a raw table: per column, a
/// complete run of stripe-aligned value chunks covering every row of the
/// file — the in-memory CompactTable-style column the background promoter
/// builds from the raw source once the workload proves a column hot.
///
/// Unlike the ColumnCache (which holds whatever stripes past scans happened
/// to parse, and evicts under pressure), a promoted column is all-or-nothing
/// and covers the whole table, so a scan serving from it reads zero raw-file
/// bytes — including the stripe spine: the scan needs no seek because every
/// stripe of every output column is resident.
///
/// Thread safety: readers take one mutex-guarded shared_ptr copy per
/// (stripe, column) — once per 4096 rows, not per tuple — and the chunk they
/// hold stays valid if the column is concurrently demoted (same snapshot
/// discipline as ColumnCache). Installation and demotion happen on the
/// promoter thread; a promotion or demotion racing a live scan changes only
/// *where* values are read from, never what they are, because the promoter
/// loads through the exact adapter parse semantics the scan uses.
class PromotedColumns {
 public:
  using Chunk = std::shared_ptr<const std::vector<Value>>;

  struct Counters {
    uint64_t promotions = 0;
    uint64_t demotions = 0;
  };

  /// Per-column state exposed to the promotion policy and STATS.
  struct ColumnInfo {
    bool promoted = false;
    uint64_t bytes = 0;  // resident bytes of the promoted column
    /// Tracker parse-work total consumed at the last promotion decision;
    /// the policy only acts on work accrued since.
    uint64_t work_mark = 0;
    /// Tracker rows_from_promoted total at the last cycle; a promoted
    /// column nobody read since is a demotion victim under pressure.
    uint64_t served_mark = 0;
  };

  PromotedColumns(int num_attrs, int tuples_per_chunk);

  PromotedColumns(const PromotedColumns&) = delete;
  PromotedColumns& operator=(const PromotedColumns&) = delete;

  int num_attrs() const { return num_attrs_; }
  int tuples_per_chunk() const { return tuples_per_chunk_; }

  /// Lock-free fast path for scans and the planner: is the column resident?
  bool IsPromoted(int attr) const {
    return flags_[attr].load(std::memory_order_acquire);
  }

  /// Chunk of `attr` covering stripe `stripe` (tuples_per_chunk values,
  /// short for the last stripe), or nullptr when the column is not promoted.
  Chunk ChunkFor(uint64_t stripe, int attr) const;

  /// Total rows of the table, learned when the first column was loaded; 0
  /// while nothing is promoted.
  uint64_t row_count() const {
    return row_count_.load(std::memory_order_acquire);
  }

  uint64_t memory_bytes() const {
    return memory_bytes_.load(std::memory_order_relaxed);
  }

  int promoted_count() const;
  std::vector<int> promoted_attrs() const;
  std::vector<ColumnInfo> InfoSnapshot() const;
  Counters counters() const;

  /// Installs a freshly loaded column: `chunks` must cover exactly `rows`
  /// rows in stripe order. Replaces any previous residency for `attr`.
  void Install(int attr, std::vector<Chunk> chunks, uint64_t rows,
               uint64_t bytes);

  /// Drops a promoted column; returns the bytes freed (0 if not promoted).
  /// Readers holding chunk snapshots keep serving them.
  uint64_t Demote(int attr);

  /// Policy bookkeeping, written by the promoter after each cycle.
  void SetMarks(int attr, uint64_t work_mark, uint64_t served_mark);

 private:
  const int num_attrs_;
  const int tuples_per_chunk_;

  mutable std::mutex mu_;
  std::vector<std::vector<Chunk>> chunks_;  // [attr][stripe], guarded by mu_
  std::vector<ColumnInfo> info_;            // guarded by mu_
  Counters counters_;                       // guarded by mu_

  std::unique_ptr<std::atomic<bool>[]> flags_;
  std::atomic<uint64_t> row_count_{0};
  std::atomic<uint64_t> memory_bytes_{0};
};

}  // namespace nodb

#endif  // NODB_ADAPTIVE_PROMOTED_COLUMNS_H_
