#ifndef NODB_PMAP_POSITIONAL_MAP_H_
#define NODB_PMAP_POSITIONAL_MAP_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace nodb {

/// A scan's private, lock-free staging buffer for positional information
/// discovered while tokenizing one contiguous run of records: the absolute
/// row-start offset of every record (the spine) plus, per record, the
/// relative start offsets of a fixed attribute set. Serial scans stage one
/// stripe at a time; parallel morsel workers stage a whole morsel without
/// knowing its global tuple index yet. Either way the fragment is merged
/// into the shared PositionalMap with InstallFragment once the index of its
/// first record is known — that single entry point is where all budget
/// accounting and eviction happen, under the map's internal lock.
class PmapFragment {
 public:
  PmapFragment() = default;

  /// Starts a fresh fragment tracking `attrs` (file-order attribute ids;
  /// may be empty for a spine-only fragment). Storage is recycled.
  void Reset(std::vector<int> attrs) {
    attrs_ = std::move(attrs);
    row_starts_.clear();
    positions_.clear();
  }

  void Reserve(int n) {
    row_starts_.reserve(n);
    positions_.reserve(static_cast<size_t>(n) * attrs_.size());
  }

  /// Appends one record. `positions` holds attrs().size() entries in attrs
  /// order (kUnknown for undiscovered); ignored when no attrs are tracked.
  void AddRecord(uint64_t row_start, const uint32_t* positions) {
    row_starts_.push_back(row_start);
    if (!attrs_.empty()) {
      positions_.insert(positions_.end(), positions,
                        positions + attrs_.size());
    }
  }

  const std::vector<int>& attrs() const { return attrs_; }
  int num_records() const { return static_cast<int>(row_starts_.size()); }
  bool empty() const { return row_starts_.empty(); }
  uint64_t row_start(int i) const { return row_starts_[i]; }
  uint32_t position(int record, int attr_idx) const {
    return positions_[static_cast<size_t>(record) * attrs_.size() + attr_idx];
  }

 private:
  std::vector<int> attrs_;
  std::vector<uint64_t> row_starts_;
  std::vector<uint32_t> positions_;  // row-major [record][attr_idx]
};

/// Adaptive positional map (the paper's §4.2, the core NoDB data structure).
///
/// The map stores, for a single raw file, byte positions of attribute values
/// so that later queries jump (close) to the data instead of re-tokenizing.
/// Physical organization follows the paper:
///
///  * **Horizontal partitioning**: tuples are divided into fixed stripes of
///    `tuples_per_chunk` rows.
///  * **Vertical partitioning**: within a stripe, positions are grouped into
///    chunks holding the *combination* of attributes a query accessed
///    together ("the positional map does not mirror the raw file; it adapts
///    to the workload, keeping in the same chunk attributes accessed
///    together"). Attribute order inside a chunk is insertion order, not
///    file order; a per-attribute membership table (the paper's "higher
///    level plain array") locates an attribute's chunk and column.
///  * **Relative positions**: a per-stripe spine stores each tuple's row
///    start as an absolute 64-bit offset (this doubles as the "minimal map
///    maintaining positional information only for the end of lines" used by
///    the cache-only variant); attribute positions are 32-bit offsets
///    relative to the row start.
///  * **Budget + LRU + spill**: total footprint is capped by
///    `budget_bytes`; least-recently-used chunks are dropped, or serialized
///    to `spill_dir` and transparently reloaded on the next access.
///
/// The map is an auxiliary structure: dropping any part of it only costs
/// future re-tokenization, never correctness.
///
/// **Thread safety**: every method is safe to call concurrently — one table
/// may be scanned by many queries at once, and a parallel scan installs
/// fragments from several threads. All state (chunks, spine, LRU, budget
/// accounting) is guarded by one internal mutex; writers stage positions in
/// private PmapFragments and pay the lock once per fragment, not per tuple.
/// The legacy BeginStripeInsert/InsertPosition/EndStripeInsert path remains
/// for tests and micro-benchmarks; eviction is deferred while any stripe
/// insertion is open, so its cells cannot be freed mid-use.
class PositionalMap {
 public:
  struct Options {
    /// Tuples per horizontal stripe.
    int tuples_per_chunk = 4096;
    /// Storage threshold for positions + spine; UINT64_MAX = unlimited.
    uint64_t budget_bytes = UINT64_MAX;
    /// If non-empty, evicted chunks spill here instead of being dropped.
    std::string spill_dir;
  };

  /// A resolved anchor near a requested attribute: the indexed attribute and
  /// its offset relative to the row start.
  struct Anchor {
    int attr = 0;
    uint32_t rel_offset = 0;
  };

  /// Counters for tests and benchmarks.
  struct Counters {
    uint64_t lookups = 0;
    uint64_t exact_hits = 0;
    uint64_t anchor_hits = 0;
    uint64_t chunks_evicted = 0;
    uint64_t chunks_spilled = 0;
    uint64_t chunks_reloaded = 0;
    uint64_t fragments_installed = 0;
  };

  /// Sentinel for "position unknown" inside a chunk.
  static constexpr uint32_t kUnknown = UINT32_MAX;

  /// Sentinel for "row start unknown" in exported spine vectors.
  static constexpr uint64_t kNoRowStart = UINT64_MAX;

  /// Deep copy of one stripe's positional data, as handed out by
  /// ExportState: the spine (always tuples_per_chunk entries, kNoRowStart
  /// where undiscovered) plus a dense row-major position matrix over the
  /// union of the stripe's indexed attributes (kUnknown where a chunk had
  /// no position; kAbsentFieldPos — a real position value — passes through
  /// untouched). The chunk/group organization is deliberately *not*
  /// exported: a snapshot restores positions through InstallFragment, which
  /// re-derives grouping, budget accounting and epoch bookkeeping the same
  /// way a live scan does.
  struct ExportedStripe {
    uint64_t stripe = 0;
    std::vector<uint64_t> row_starts;
    std::vector<int> attrs;            // ascending
    std::vector<uint32_t> positions;   // [row][attrs index], row-major
  };

  struct ExportedState {
    uint64_t total_tuples = 0;
    std::vector<ExportedStripe> stripes;
  };

  PositionalMap(int num_attrs, Options options);

  PositionalMap(const PositionalMap&) = delete;
  PositionalMap& operator=(const PositionalMap&) = delete;

  // ------------------------------------------------------------------
  // Row starts (spine / end-of-line map)
  // ------------------------------------------------------------------

  /// Records that tuple `tuple` begins at absolute file offset `offset`.
  void SetRowStart(uint64_t tuple, uint64_t offset);

  /// Absolute offset of the tuple's first byte, if known.
  std::optional<uint64_t> RowStart(uint64_t tuple) const;

  /// Number of contiguous tuples from 0 whose row start is known. Once a
  /// full sequential scan completed this equals the table's row count.
  uint64_t contiguous_rows_known() const;

  /// Marks the total number of tuples in the file (set when a scan reaches
  /// EOF); 0 if not yet known.
  void SetTotalTuples(uint64_t n);
  uint64_t total_tuples() const;

  // ------------------------------------------------------------------
  // Scan epochs
  // ------------------------------------------------------------------

  /// Marks the start of a new insertion epoch (one per scan); returns a
  /// token the scan passes to InstallFragment and hands back to EndEpoch
  /// when it closes. Under budget pressure the map refuses to evict chunks
  /// installed by a *still-active* epoch to make room for more insertions —
  /// otherwise a sequential scan bigger than the budget would evict its own
  /// fresh entries and retain nothing (classic LRU scan thrash), and one
  /// concurrent scan would silently cannibalize another's working set.
  /// Chunks from finished epochs remain evictable, so the map still adapts
  /// across queries.
  uint64_t BeginEpoch();

  /// Ends an epoch: its chunks become ordinary eviction candidates.
  void EndEpoch(uint64_t token);

  /// Number of scans currently holding an epoch open. Observability hook:
  /// a nonzero count with no query running means a leaked epoch (an
  /// abandoned scan that never reached EndEpoch), which pins its chunks
  /// against eviction forever and wedges the budget.
  size_t active_epoch_count() const;

  // ------------------------------------------------------------------
  // Attribute positions
  // ------------------------------------------------------------------

  /// Merges `frag` — whose first record is global tuple `first_tuple` —
  /// into the map: spine entries for every record, and attribute-position
  /// chunks per overlapped stripe. Per stripe, attributes the stripe
  /// already indexes are skipped (a concurrent scan may have landed first)
  /// and the rest are split into cache-sized sub-chunks (kMaxGroupAttrs
  /// each); each new chunk is admitted only if the budget can make room
  /// without evicting an active epoch's chunk (declined chunks cost future
  /// re-tokenization, never correctness). `epoch_token` is the installing
  /// scan's BeginEpoch token (0 = none). `filter_indexed = false` disables
  /// the already-indexed skip — the §4.2 combination policy deliberately
  /// re-indexes a query's full attribute set into one chunk run.
  void InstallFragment(const PmapFragment& frag, uint64_t first_tuple,
                       uint64_t epoch_token, bool filter_indexed = true);

  /// Legacy single-threaded insert path (tests and micro-benchmarks; scans
  /// use InstallFragment). Declares that the caller is about to insert
  /// positions of `attrs` for the stripe containing `tuple`; creates (or
  /// reuses) the chunk for this attribute combination. Returns an opaque
  /// chunk id to pass to InsertPosition, or -1 if `attrs` is empty.
  /// Eviction is deferred until the matching EndStripeInsert.
  int BeginStripeInsert(uint64_t stripe, const std::vector<int>& attrs);

  /// Stores the position of `attr` for `tuple` into the chunk returned by
  /// BeginStripeInsert. `rel_offset` is relative to the tuple's row start.
  void InsertPosition(int chunk_id, uint64_t tuple, int attr,
                      uint32_t rel_offset);

  /// Finishes a stripe insertion: applies budget enforcement.
  void EndStripeInsert();

  /// Maximum attributes stored together in one sub-chunk (4 x 4096 x 4 B =
  /// 64 KiB, comfortably cache-resident per the paper's storage format).
  static constexpr int kMaxGroupAttrs = 4;

  /// Exact position of (tuple, attr) relative to its row start, if indexed.
  std::optional<uint32_t> Lookup(uint64_t tuple, int attr);

  /// Nearest indexed attribute at or below `attr` for this tuple
  /// (for forward incremental tokenizing). Includes `attr` itself.
  std::optional<Anchor> AnchorAtOrBelow(uint64_t tuple, int attr);

  /// Nearest indexed attribute strictly above `attr` for this tuple
  /// (for backward incremental tokenizing).
  std::optional<Anchor> AnchorAbove(uint64_t tuple, int attr);

  /// True if every tuple of `stripe` currently has an in-memory (or
  /// spilled) position for `attr`.
  bool StripeHasAttr(uint64_t stripe, int attr);

  /// Copies the known positions of `attr` for `n` tuples of `stripe` into
  /// `out[0..n)`; cells without a position are set to kUnknown. Returns the
  /// number of known positions copied. This is the bulk accessor behind the
  /// temporary map: one chunk fetch serves a whole stripe.
  int FillStripePositions(uint64_t stripe, int attr, uint32_t* out, int n);

  /// Attributes that have (possibly partial) positional data for `stripe`,
  /// ascending. Used to pick incremental-tokenizing anchors.
  std::vector<int> IndexedAttrsForStripe(uint64_t stripe);

  /// True if a single chunk of `stripe` covers every attribute in `attrs`.
  /// Drives the paper's combination policy: "if all requested attributes for
  /// a query belong in different chunks, then the new combination is
  /// indexed" (§4.2, Adaptive Behavior).
  bool StripeAttrsShareChunk(uint64_t stripe, const std::vector<int>& attrs);

  // ------------------------------------------------------------------
  // Introspection
  // ------------------------------------------------------------------

  int num_attrs() const { return num_attrs_; }
  int tuples_per_chunk() const { return options_.tuples_per_chunk; }
  uint64_t stripe_of(uint64_t tuple) const {
    return tuple / options_.tuples_per_chunk;
  }
  /// Current in-memory footprint in bytes (chunks + spine).
  uint64_t memory_bytes() const;
  /// Number of attribute positions currently resident in memory.
  uint64_t num_positions() const;
  /// Snapshot of the counters (copy: the map may be mutated concurrently).
  Counters counters() const;
  const Options& options() const { return options_; }

  /// Consistent deep copy of everything worth persisting (spine, attribute
  /// positions, total-tuple count), taken under the internal lock in one
  /// critical section so no stripe mixes states from different moments.
  /// Spilled chunks are skipped (reloading them here would thrash the
  /// budget; their positions merely cost re-tokenization later). Stripes
  /// are ordered by stripe index.
  ExportedState ExportState() const;

  /// Drops the entire map (it is auxiliary; next query rebuilds it).
  void Clear();

 private:
  /// A vertical chunk: positions of one attribute combination over one
  /// stripe, stored row-major [tuple_in_stripe][attr_idx_in_group].
  struct Chunk {
    int group_id = 0;
    uint64_t epoch = 0;          // installing epoch token (see BeginEpoch)
    std::vector<uint32_t> data;  // tuples_per_chunk * group_size entries
    bool spilled = false;        // true if currently only on disk
    std::list<std::pair<uint64_t, int>>::iterator lru_pos;  // key in lru_
    uint64_t bytes() const { return data.size() * sizeof(uint32_t); }
  };

  /// Attribute combination registry entry (never evicted; tiny).
  struct Group {
    std::vector<int> attrs;  // insertion order
  };

  struct Stripe {
    /// group_id -> chunk for this stripe.
    std::unordered_map<int, std::unique_ptr<Chunk>> chunks;
    /// Absolute row starts for tuples in this stripe; may be shorter than
    /// tuples_per_chunk while being discovered.
    std::vector<uint64_t> row_starts;
    uint64_t spine_bytes() const {
      return row_starts.capacity() * sizeof(uint64_t);
    }
  };

  // All private helpers assume mu_ is held by the caller.
  Stripe& GetStripe(uint64_t stripe);
  void SetRowStartLocked(uint64_t tuple, uint64_t offset);
  /// Group id for exactly this ordered attr set, creating it if new.
  int InternGroup(const std::vector<int>& attrs);
  /// True if a new chunk of `bytes` can be admitted without evicting a
  /// chunk belonging to a still-active epoch.
  bool CanAdmit(uint64_t bytes);
  /// Creates or reuses the chunk for (stripe, interned attrs); touches LRU.
  Chunk* GetOrCreateChunk(uint64_t stripe, const std::vector<int>& attrs,
                          int* gid_out);
  bool EpochActive(uint64_t token) const;
  /// Index of `attr` within group `gid`, or -1.
  int ColumnInGroup(int gid, int attr) const;
  /// Returns the chunk for (stripe, gid), reloading it from spill if needed;
  /// nullptr if absent. Touches LRU.
  Chunk* FetchChunk(uint64_t stripe, int gid);
  void TouchLru(uint64_t stripe, Chunk* chunk);
  void EnforceBudget();
  void EvictOne();
  std::string SpillPath(uint64_t stripe, int gid) const;
  Status SpillChunk(uint64_t stripe, Chunk* chunk);
  Status ReloadChunk(uint64_t stripe, Chunk* chunk);

  const int num_attrs_;
  const Options options_;

  mutable std::mutex mu_;

  std::vector<Group> groups_;
  /// Key: sorted attr list serialized -> group id (to reuse combinations).
  std::unordered_map<std::string, int> group_index_;
  /// attr -> list of (group_id, column index) containing it.
  std::vector<std::vector<std::pair<int, int>>> attr_membership_;

  std::unordered_map<uint64_t, Stripe> stripes_;
  /// LRU of (stripe, group_id), most-recent at front.
  std::list<std::pair<uint64_t, int>> lru_;

  uint64_t memory_bytes_ = 0;
  uint64_t num_positions_ = 0;
  uint64_t next_epoch_ = 0;
  std::vector<uint64_t> active_epochs_;
  uint64_t contiguous_rows_known_ = 0;
  uint64_t total_tuples_ = 0;
  int open_insert_chunks_ = 0;
  Counters counters_;
};

}  // namespace nodb

#endif  // NODB_PMAP_POSITIONAL_MAP_H_
