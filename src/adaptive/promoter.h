#ifndef NODB_ADAPTIVE_PROMOTER_H_
#define NODB_ADAPTIVE_PROMOTER_H_

#include <atomic>
#include <string>
#include <vector>

#include "adaptive/promotion_policy.h"
#include "exec/table_runtime.h"
#include "util/status.h"

namespace nodb {

/// What one promotion cycle did to one table (returned by
/// Database::RunPromotionCycle for tests and tooling; aggregated into
/// STATS).
struct TablePromotionReport {
  std::string table;
  std::vector<int> promoted;
  std::vector<int> demoted;
  /// Resident bytes of the promoted store after the cycle.
  uint64_t promoted_bytes = 0;
  /// Cache bytes freed because promoted columns superseded their chunks.
  uint64_t cache_released_bytes = 0;
  /// First error hit while loading (the cycle is abandoned; already
  /// installed columns stay). OK when nothing went wrong.
  Status status = Status::OK();
};

/// Runs one promotion cycle over a raw table: snapshots the access
/// counters, plans promotions/demotions (PlanPromotions), loads the chosen
/// columns from the raw source in a single adapter-hook sweep
/// (ForEachRawRow — the scan's exact decode semantics, so promoted answers
/// are byte-identical), installs them into the PromotedColumns store, and
/// settles the shared byte budget: the promoted columns' ColumnCache chunks
/// are released and the store's residency is reserved out of the cache
/// budget. Row starts discovered during the load are installed into the
/// positional map through the epoch-protected fragment path, so a cycle
/// racing live scans follows the same rules as a concurrent scan.
///
/// Safe to call concurrently with queries; callers serialize cycles per
/// table (the Database promoter thread or explicit RunPromotionCycle calls
/// hold the catalog lock). `stop` aborts a long load co-operatively.
TablePromotionReport RunTablePromotionCycle(
    TableRuntime* rt, const PromotionConfig& cfg,
    const std::atomic<bool>* stop = nullptr);

}  // namespace nodb

#endif  // NODB_ADAPTIVE_PROMOTER_H_
