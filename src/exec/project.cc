#include "exec/project.h"

// ProjectOp is header-only; this translation unit anchors the target.
