#include "stats/attr_stats.h"

#include <algorithm>
#include <cmath>

namespace nodb {

namespace {
constexpr int kHistogramBuckets = 32;
}  // namespace

AttrStatsBuilder::AttrStatsBuilder(TypeId type, int sample_capacity)
    : type_(type), sample_capacity_(sample_capacity) {
  sample_.reserve(sample_capacity);
}

void AttrStatsBuilder::Add(const Value& v) {
  ++rows_seen_;
  if (v.is_null()) {
    ++nulls_;
    return;
  }
  // Past the warm-up prefix, digest only every kSampleStride-th value
  // (ANALYZE-style sampling; min/max/NDV become sample-based estimates).
  if (rows_seen_ > kFullRows && rows_seen_ % kSampleStride != 0) return;
  ++digested_;
  if (!min_.has_value() || v.Compare(*min_) < 0) min_ = v;
  if (!max_.has_value() || v.Compare(*max_) > 0) max_ = v;
  if (!distinct_capped_) {
    distinct_hashes_.insert(v.Hash());
    if (distinct_hashes_.size() >= kDistinctCap) distinct_capped_ = true;
  }
  // Reservoir sampling (Algorithm R) over the digested subsequence.
  if (sample_.size() < static_cast<size_t>(sample_capacity_)) {
    sample_.push_back(v);
  } else {
    uint64_t j = rng_.Next() % digested_;
    if (j < static_cast<uint64_t>(sample_capacity_)) {
      sample_[j] = v;
    }
  }
}

AttrStats AttrStatsBuilder::Build() const {
  AttrStats stats;
  stats.type = type_;
  stats.rows_seen = rows_seen_;
  stats.nulls = nulls_;
  stats.min = min_;
  stats.max = max_;

  uint64_t non_null = rows_seen_ - nulls_;
  if (!distinct_capped_ && digested_ == non_null) {
    stats.ndv = static_cast<double>(distinct_hashes_.size());
  } else if (!distinct_capped_) {
    // Sampling kicked in but the distinct set did not overflow: every
    // digested value was distinct-tracked; scale by the sampling ratio only
    // if the set looks saturated relative to the digested count.
    double distinct = static_cast<double>(distinct_hashes_.size());
    double dig = static_cast<double>(digested_);
    if (distinct >= 0.95 * dig) {
      // Nearly all sampled values distinct: extrapolate to the full column.
      stats.ndv = distinct / dig * static_cast<double>(non_null);
    } else {
      stats.ndv = distinct;  // low-cardinality column: the set converged
    }
  } else {
    // The exact set overflowed: scale the sample's distinct ratio. This
    // over-estimates for heavy-hitter distributions, which is the safe
    // direction for the optimizer's group-count estimates.
    std::unordered_set<uint64_t> sample_distinct;
    for (const Value& v : sample_) sample_distinct.insert(v.Hash());
    double ratio = sample_.empty()
                       ? 1.0
                       : static_cast<double>(sample_distinct.size()) /
                             static_cast<double>(sample_.size());
    stats.ndv = std::max<double>(static_cast<double>(kDistinctCap),
                                 ratio * static_cast<double>(non_null));
  }

  // Histogram for ordered, numeric-comparable types.
  if (type_ != TypeId::kString && min_.has_value() && max_.has_value()) {
    double lo = min_->AsDouble();
    double hi = max_->AsDouble();
    if (hi > lo && !sample_.empty()) {
      stats.histogram.assign(kHistogramBuckets, 0);
      for (const Value& v : sample_) {
        double x = v.AsDouble();
        int b = static_cast<int>((x - lo) / (hi - lo) * kHistogramBuckets);
        b = std::clamp(b, 0, kHistogramBuckets - 1);
        ++stats.histogram[b];
      }
    }
  }
  return stats;
}

double AttrStats::EstimateEqualsSelectivity() const {
  if (ndv <= 0) return 0.1;
  return 1.0 / ndv;
}

double AttrStats::EstimateCompareSelectivity(char op_first, bool or_equal,
                                             const Value& constant) const {
  if (!min.has_value() || !max.has_value()) return 0.33;  // no data yet
  if (op_first == '=') return EstimateEqualsSelectivity();
  if (op_first == '!') return 1.0 - EstimateEqualsSelectivity();
  if (type == TypeId::kString || constant.type() == TypeId::kString) {
    return 0.33;  // no ordered histogram over strings
  }

  double lo = min->AsDouble();
  double hi = max->AsDouble();
  double c = constant.AsDouble();
  double frac_below;  // fraction of values < c
  if (c <= lo) {
    frac_below = 0.0;
  } else if (c > hi) {
    frac_below = 1.0;
  } else if (!histogram.empty()) {
    double width = (hi - lo) / static_cast<double>(histogram.size());
    double total = 0, below = 0;
    for (size_t b = 0; b < histogram.size(); ++b) {
      total += histogram[b];
      double bucket_lo = lo + width * static_cast<double>(b);
      double bucket_hi = bucket_lo + width;
      if (bucket_hi <= c) {
        below += histogram[b];
      } else if (bucket_lo < c) {
        below += histogram[b] * (c - bucket_lo) / width;
      }
    }
    frac_below = total > 0 ? below / total : 0.5;
  } else {
    frac_below = hi > lo ? (c - lo) / (hi - lo) : 0.5;
  }

  double eq = EstimateEqualsSelectivity();
  double sel;
  if (op_first == '<') {
    sel = frac_below + (or_equal ? eq : 0.0);
  } else {  // '>'
    sel = (1.0 - frac_below) + (or_equal ? 0.0 : -eq);
  }
  return std::clamp(sel, 0.0, 1.0);
}

}  // namespace nodb
