#ifndef NODB_PLAN_OPTIMIZER_H_
#define NODB_PLAN_OPTIMIZER_H_

#include "expr/expr.h"
#include "stats/table_stats.h"

namespace nodb {

/// Estimated fraction of rows satisfying `conjunct` (bound over the working
/// row) for the table whose columns start at `table_offset`. Uses the
/// adaptive statistics when available and documented heuristics otherwise
/// (0.33 for opaque predicates, 0.25/0.1 for LIKE, k/ndv for IN lists).
double EstimateConjunctSelectivity(const Expr& conjunct,
                                   const TableStats* stats, int table_offset);

}  // namespace nodb

#endif  // NODB_PLAN_OPTIMIZER_H_
