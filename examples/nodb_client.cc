// Command-line client for the NoDB query service (examples/nodb_server).
//
//   ./example_nodb_client --port N "SELECT a1, a2 FROM micro WHERE a1 < 10"
//   ./example_nodb_client --port N --stats        # server counters
//   ./example_nodb_client --port N                # interactive: SQL per line
//
// Streams result batches as they arrive and pretty-prints them as
// tab-separated rows. Ctrl-C during a long query sends the CANCEL verb
// instead of killing the client: the server aborts the query at the next
// batch boundary (releasing its scan epoch) and answers with a typed
// Cancelled status, which the client prints before exiting cleanly.
//
// Options: --host H (default 127.0.0.1), --deadline-ms N (server kills the
// query when it blows the budget), --raw (print wire JSON verbatim).

#include <arpa/inet.h>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <iostream>
#include <string>
#include <vector>

#include "json/json_text.h"
#include "util/str_conv.h"

using namespace nodb;

namespace {

int g_fd = -1;

// Async-signal-safe: a bare write of the CANCEL verb from the handler.
void HandleSigint(int) {
  if (g_fd >= 0) {
    const char verb[] = "CANCEL\n";
    ssize_t ignored = ::write(g_fd, verb, sizeof(verb) - 1);
    (void)ignored;
  }
}

void Usage() {
  std::printf(
      "usage: nodb_client [--host H] --port N [--deadline-ms N] [--raw] "
      "[--stats | \"SELECT ...\"]\n"
      "  no SQL argument: interactive mode, one query per stdin line\n"
      "  Ctrl-C mid-query sends CANCEL instead of exiting\n");
}

/// Pretty-prints one `{"rows":[[...],...]}` line as tab-separated rows.
/// Any line that doesn't parse is printed verbatim — the wire format stays
/// the source of truth.
bool PrintRowsLine(const std::string& line) {
  std::string_view s = line;
  size_t i = s.find("\"rows\":[");
  if (i == std::string_view::npos || s.find("\"status\"") != std::string_view::npos) {
    return false;
  }
  i += 8;  // past "rows":[
  ScalarJsonSkipper skip;
  while (i < s.size() && s[i] == '[') {
    ++i;  // into one row array
    bool first = true;
    while (i < s.size() && s[i] != ']') {
      size_t end = skip.SkipValue(s, i);
      if (end <= i || end > s.size()) return false;
      std::string_view tok = s.substr(i, end - i);
      std::string cell;
      if (!tok.empty() && tok.front() == '"') {
        if (!UnescapeJsonString(tok, &cell)) cell = std::string(tok);
      } else {
        cell = std::string(tok);
      }
      std::printf("%s%s", first ? "" : "\t", cell.c_str());
      first = false;
      i = SkipJsonWs(s, end);
      if (i < s.size() && s[i] == ',') i = SkipJsonWs(s, i + 1);
    }
    std::printf("\n");
    if (i >= s.size()) return false;
    i = SkipJsonWs(s, i + 1);  // past the row's ]
    if (i < s.size() && s[i] == ',') i = SkipJsonWs(s, i + 1);
  }
  return true;
}

bool SendLine(int fd, const std::string& line) {
  std::string framed = line + "\n";
  size_t off = 0;
  while (off < framed.size()) {
    ssize_t n =
        ::send(fd, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads response lines until the request's terminal line; returns false
/// when the connection died.
bool DrainResponse(int fd, bool raw) {
  static std::string buf;
  while (true) {
    size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      bool terminal = line.find("\"status\"") != std::string::npos ||
                      line.find("\"stats\"") != std::string::npos ||
                      line.find("\"pong\"") != std::string::npos;
      if (raw || terminal || !PrintRowsLine(line)) {
        std::printf("%s\n", line.c_str());
      }
      if (terminal) return true;
    }
    char chunk[8192];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;  // Ctrl-C: CANCEL was sent, keep reading
      return false;
    }
    buf.append(chunk, static_cast<size_t>(n));
  }
}

std::string QueryRequest(const std::string& sql, int64_t deadline_ms) {
  std::string req = "{\"q\":";
  AppendJsonQuoted(&req, sql);
  if (deadline_ms > 0) {
    req += ",\"deadline_ms\":";
    AppendInt64(&req, deadline_ms);
  }
  req += "}";
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int64_t deadline_ms = 0;
  bool stats = false;
  bool raw = false;
  std::string sql;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      deadline_ms = std::atoll(argv[++i]);
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--raw") {
      raw = true;
    } else if (arg == "--help") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      sql = arg;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      Usage();
      return 1;
    }
  }
  if (port == 0) {
    // No server to talk to: print usage and exit cleanly (smoke-test mode).
    Usage();
    return 0;
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "bad host '%s' (use a numeric address)\n",
                 host.c_str());
    return 1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "connect %s:%d: %s\n", host.c_str(), port,
                 std::strerror(errno));
    return 1;
  }
  g_fd = fd;
  struct sigaction sa {};
  sa.sa_handler = HandleSigint;
  sigaction(SIGINT, &sa, nullptr);  // no SA_RESTART: recv returns EINTR

  int rc = 0;
  if (stats) {
    if (!SendLine(fd, "STATS") || !DrainResponse(fd, raw)) rc = 1;
  } else if (!sql.empty()) {
    if (!SendLine(fd, QueryRequest(sql, deadline_ms)) ||
        !DrainResponse(fd, raw)) {
      rc = 1;
    }
  } else {
    std::printf("connected to %s:%d — one SQL query per line, Ctrl-D quits\n",
                host.c_str(), port);
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      if (line == "quit" || line == "exit") break;
      std::string req = (line == "STATS" || line == "PING")
                            ? line
                            : QueryRequest(line, deadline_ms);
      if (!SendLine(fd, req) || !DrainResponse(fd, raw)) {
        rc = 1;
        break;
      }
    }
  }
  (void)SendLine(fd, "QUIT");
  ::close(fd);
  return rc;
}
