// Serving-layer throughput sweep: a QueryServer fronting a warmed micro
// table, driven by 1/4/16 concurrent loopback clients each running the
// same selective warm scan back-to-back. Reports, per client count:
//
//   * queries/sec across all clients (wall-clock, full wire round trips),
//   * p50 and p99 per-query latency measured at the client,
//   * the direct Database::Query latency for the same statement, so the
//     1-client row isolates the protocol + socket overhead the service
//     front-end adds on top of the engine.
//
// All clients run warm: the table is fully scanned once before the sweep,
// so the positional map / cache serve every measured query and the sweep
// exercises the server path (sessions, admission, JSON framing), not the
// in-situ parse. The 16-client row saturates the default warm admission
// lane (max_warm = 16) without queueing.
//
// Writes BENCH_serve.json (machine-readable rows + the scaling summary).
//
//   ./bench_micro_serve [--scale=F] [--seed=N]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common.h"
#include "server/server.h"
#include "util/str_conv.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

/// Minimal blocking line client: one query round trip per call.
class BenchClient {
 public:
  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends `request` (newline-framed) and drains lines until the terminal
  /// status line. Returns false on socket failure or error status.
  bool RoundTrip(const std::string& request) {
    std::string framed = request + "\n";
    size_t off = 0;
    while (off < framed.size()) {
      ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    while (true) {
      size_t nl;
      while ((nl = buf_.find('\n')) != std::string::npos) {
        bool terminal = buf_.compare(0, 11, "{\"status\":\"") == 0;
        bool ok = terminal && buf_.compare(0, 14, "{\"status\":\"ok\"") == 0;
        if (terminal && !ok) {
          fprintf(stderr, "query failed: %.*s\n", static_cast<int>(nl),
                  buf_.c_str());
        }
        buf_.erase(0, nl + 1);
        if (terminal) return ok;
      }
      char chunk[65536];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return false;
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

struct SweepRow {
  int clients;
  uint64_t queries;
  double qps, p50_ms, p99_ms;
};

double Percentile(std::vector<double>* latencies_ms, double p) {
  if (latencies_ms->empty()) return 0;
  std::sort(latencies_ms->begin(), latencies_ms->end());
  size_t idx = static_cast<size_t>(p * (latencies_ms->size() - 1) + 0.5);
  return (*latencies_ms)[std::min(idx, latencies_ms->size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);

  MicroDataSpec spec;
  spec.rows = static_cast<uint64_t>(200000 * args.scale);
  spec.cols = 5;
  spec.seed = args.seed;
  std::string csv = MicroCsv(spec, "serve");

  EngineConfig config = EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  Database db(config);
  OpenOptions options;
  options.schema = MicroSchema(spec);
  Status s = db.Open("t", csv, options);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Selective warm scan: touches 2 of 5 attributes, returns ~10% of rows.
  const std::string sql = "SELECT a2 FROM t WHERE a4 >= 900000000";

  // Warm the adaptive structures (and get the direct-path reference): the
  // first run is the cold in-situ parse, the best of the next three is the
  // engine-side warm latency every served query should be paying.
  (void)RunQuery(&db, sql);
  double direct_s = RunQuery(&db, sql);
  for (int r = 0; r < 2; ++r) direct_s = std::min(direct_s, RunQuery(&db, sql));

  QueryServer server(&db, ServerConfig{});
  s = server.Start();
  if (!s.ok()) {
    fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  PrintBanner("Query service throughput (concurrent loopback clients)",
              "not in the paper — the serving front-end must not squander "
              "what adaptive loading won: warm queries served over the wire "
              "should scale with client count until the warm admission lane "
              "saturates, with per-query latency near the direct engine path");
  printf("data: %llu rows x %d cols; warm selective scan (~10%% of rows); "
         "direct engine latency %.3f ms\n\n",
         static_cast<unsigned long long>(spec.rows), spec.cols,
         direct_s * 1e3);

  const int kItersPerClient = 40;
  const std::string request = "{\"q\":\"" + sql + "\"}";

  std::vector<SweepRow> rows;
  TextTable table({"clients", "queries", "qps", "p50 (ms)", "p99 (ms)",
                   "p50 vs direct"});
  for (int clients : {1, 4, 16}) {
    std::vector<std::thread> threads;
    std::vector<std::vector<double>> lat(clients);
    std::atomic<int> failures{0};
    const auto begin = std::chrono::steady_clock::now();
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        BenchClient client;
        if (!client.Connect(server.port())) {
          failures.fetch_add(1);
          return;
        }
        lat[c].reserve(kItersPerClient);
        for (int i = 0; i < kItersPerClient; ++i) {
          const auto t0 = std::chrono::steady_clock::now();
          if (!client.RoundTrip(request)) {
            failures.fetch_add(1);
            return;
          }
          lat[c].push_back(
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count() *
              1e3);
        }
      });
    }
    for (auto& t : threads) t.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
    if (failures.load() != 0) {
      fprintf(stderr, "%d client(s) failed at concurrency %d\n",
              failures.load(), clients);
      return 1;
    }
    std::vector<double> all;
    for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    SweepRow row;
    row.clients = clients;
    row.queries = all.size();
    row.qps = static_cast<double>(all.size()) / wall;
    row.p50_ms = Percentile(&all, 0.50);
    row.p99_ms = Percentile(&all, 0.99);
    rows.push_back(row);
    table.AddRow({std::to_string(clients), std::to_string(row.queries),
                  Fmt(row.qps, 1), Fmt(row.p50_ms), Fmt(row.p99_ms),
                  Fmt(row.p50_ms / (direct_s * 1e3), 2) + "x"});
  }
  server.Stop();
  table.Print();

  double scaling = rows.back().qps / rows.front().qps;
  printf("\n16-client qps is %.2fx the 1-client qps; p50 vs direct is the "
         "wire + session + admission overhead per query.\n",
         scaling);

  FILE* f = fopen("BENCH_serve.json", "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  fprintf(f, "{\n  \"direct_ms\": %.3f,\n  \"rows\": [\n", direct_s * 1e3);
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    fprintf(f,
            "    {\"clients\": %d, \"queries\": %llu, \"qps\": %.1f, "
            "\"p50_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
            r.clients, static_cast<unsigned long long>(r.queries), r.qps,
            r.p50_ms, r.p99_ms, i + 1 < rows.size() ? "," : "");
  }
  fprintf(f, "  ],\n  \"gate\": {\"qps_scaling_16_over_1\": %.3f}\n}\n",
          scaling);
  fclose(f);
  printf("wrote BENCH_serve.json\n");
  return 0;
}
