#ifndef NODB_SQL_LEXER_H_
#define NODB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace nodb {

enum class TokenType : uint8_t {
  kKeyword,  // normalized to upper case
  kIdent,    // normalized to lower case (SQL folding)
  kInteger,
  kFloat,
  kString,  // content without quotes, '' unescaped
  kSymbol,  // operators and punctuation, e.g. "(", "<=", ","
  kEof,
};

struct Token {
  TokenType type;
  std::string text;
  int position;  // byte offset in the statement, for error messages

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(std::string_view s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

/// Splits a SQL statement into tokens. Keywords are recognized
/// case-insensitively from a fixed list; other identifiers fold to lower
/// case. String literals use single quotes with '' escapes. Comments
/// ("-- ...") are skipped.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace nodb

#endif  // NODB_SQL_LEXER_H_
