#ifndef NODB_FITS_FITS_FORMAT_H_
#define NODB_FITS_FITS_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/file.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/result.h"

namespace nodb {

/// FITS-like binary-table format (paper §5.3).
///
/// Faithful to the parts of FITS that matter for the experiment: an ASCII
/// header of 80-character cards padded to 2880-byte blocks, followed by
/// fixed-width binary rows with big-endian fields. Column forms follow the
/// FITS binary-table TFORM codes we need:
///   K = 64-bit integer, D = 64-bit float, E = 32-bit float,
///   J = 32-bit integer (used for dates), L = logical (1 byte 'T'/'F'),
///   <n>A = fixed-width character string.
/// A single table per file (the paper queries one binary table).
///
/// Because every field has a computable offset, *parsing* disappears for
/// FITS — positions are arithmetic — which is exactly why the paper uses it
/// to isolate caching effects from tokenizing effects.

inline constexpr uint64_t kFitsBlockSize = 2880;
inline constexpr int kFitsCardSize = 80;

struct FitsColumn {
  std::string name;
  TypeId type = TypeId::kInt64;
  char form = 'K';       // K, D, E, J, L, A
  uint32_t width = 8;    // bytes in the row
  uint32_t offset = 0;   // byte offset within a row
};

/// Parsed description of the (single) binary table in a FITS file.
struct FitsTableInfo {
  uint64_t data_start = 0;  // file offset of the first row
  uint64_t row_bytes = 0;
  uint64_t num_rows = 0;
  std::vector<FitsColumn> columns;

  /// Relational view of the table.
  Schema ToSchema() const;
};

/// Reads and validates the header of `file`.
Result<FitsTableInfo> ParseFitsHeader(const RandomAccessFile* file);

/// Decodes one field at `bytes` (pointing at the field's first byte).
/// For 'A' columns, trailing spaces are stripped (FITS padding).
Value DecodeFitsField(const FitsColumn& column, const char* bytes);

/// Big-endian primitives (FITS mandates big-endian storage).
void PutBigEndian64(char* out, uint64_t v);
uint64_t GetBigEndian64(const char* p);
void PutBigEndian32(char* out, uint32_t v);
uint32_t GetBigEndian32(const char* p);

}  // namespace nodb

#endif  // NODB_FITS_FITS_FORMAT_H_
