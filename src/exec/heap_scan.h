#ifndef NODB_EXEC_HEAP_SCAN_H_
#define NODB_EXEC_HEAP_SCAN_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "exec/table_runtime.h"
#include "plan/logical_plan.h"

namespace nodb {

/// Full scan over a loaded slotted-page table (the PostgreSQL / MySQL
/// baselines). Deserialization is column-selective (projection pushdown)
/// and the pushed filter is evaluated before a row leaves the scan.
class HeapScanOp final : public Operator {
 public:
  /// `runtime` and `scan` must outlive the operator. Output rows are
  /// `working_width` wide; this table's columns land at scan->table.offset.
  HeapScanOp(TableRuntime* runtime, const PlannedScan* scan,
             int working_width);

  Status Open() override;
  Result<size_t> Next(RowBatch* batch) override;
  Status Close() override;

 private:
  TableRuntime* runtime_;
  const PlannedScan* scan_;
  int working_width_;
  std::vector<bool> needed_;  // table-local
  std::unique_ptr<TableHeap::Scanner> scanner_;
  Row table_row_;
};

}  // namespace nodb

#endif  // NODB_EXEC_HEAP_SCAN_H_
