#include "json/jsonl_writer.h"

#include <cmath>

#include "json/json_text.h"

namespace nodb {

Status JsonlWriter::WriteRow(const Row& row) {
  if (static_cast<int>(row.size()) != schema_->num_columns()) {
    return Status::InvalidArgument(
        "row width does not match the writer's schema");
  }
  buffer_.push_back('{');
  for (size_t c = 0; c < row.size(); ++c) {
    if (c > 0) buffer_.push_back(',');
    AppendJsonQuoted(&buffer_, schema_->column(static_cast<int>(c)).name);
    buffer_.push_back(':');
    const Value& v = row[c];
    if (v.is_null()) {
      buffer_.append("null");
    } else {
      switch (v.type()) {
        case TypeId::kString:
          AppendJsonQuoted(&buffer_, v.str());
          break;
        case TypeId::kDate:
          AppendJsonQuoted(&buffer_, v.ToString());
          break;
        case TypeId::kDouble: {
          // JSON has no NaN/Infinity literals; non-finite values degrade to
          // null. Whole doubles stay visibly fractional ("0.0", not "0") so
          // schema inference never mistakes a double column for integers.
          if (!std::isfinite(v.f64())) {
            buffer_.append("null");
            break;
          }
          std::string text = v.ToString();
          if (text.find_first_of(".eE") == std::string::npos) {
            text += ".0";
          }
          buffer_.append(text);
          break;
        }
        default:  // int64 / bool render as JSON literals
          buffer_.append(v.ToString());
      }
    }
  }
  buffer_.append("}\n");
  if (buffer_.size() >= (1 << 20)) {
    NODB_RETURN_IF_ERROR(out_->Append(buffer_));
    buffer_.clear();
  }
  return Status::OK();
}

Status JsonlWriter::Finish() {
  if (!buffer_.empty()) {
    NODB_RETURN_IF_ERROR(out_->Append(buffer_));
    buffer_.clear();
  }
  return out_->Flush();
}

}  // namespace nodb
