#ifndef NODB_EXPR_EXPR_H_
#define NODB_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "types/value.h"

namespace nodb {

enum class ExprKind : uint8_t {
  kColumnRef,
  kLiteral,
  kComparison,
  kLogical,
  kArithmetic,
  kInList,
  kLike,
  kCase,
  kIsNull,
  kCast,
  kAggregateRef,
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp : uint8_t { kAnd, kOr, kNot };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

std::string_view CompareOpToString(CompareOp op);
std::string_view ArithOpToString(ArithOp op);

/// Bound (analyzed) expression tree node. Column references are flat indices
/// into the executor's working row, so the same tree evaluates against scan
/// output, join output (concatenated rows) or aggregate output. SQL
/// three-valued NULL semantics are implemented by the evaluator.
struct Expr {
  ExprKind kind;
  TypeId type;  // result type

  Expr(ExprKind k, TypeId t) : kind(k), type(t) {}
  virtual ~Expr() = default;

  /// Debug / EXPLAIN rendering.
  virtual std::string ToString() const = 0;

  /// Adds every referenced working-row column index to `out`.
  virtual void CollectColumns(std::vector<int>* out) const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

struct ColumnRefExpr final : Expr {
  int index;         // flat index into the working row
  std::string name;  // for display

  ColumnRefExpr(int idx, TypeId t, std::string display_name)
      : Expr(ExprKind::kColumnRef, t), index(idx),
        name(std::move(display_name)) {}
  /// Includes the flat index so structural comparison via ToString is
  /// unambiguous even when two tables share a column name.
  std::string ToString() const override {
    return name + "@" + std::to_string(index);
  }
  void CollectColumns(std::vector<int>* out) const override {
    out->push_back(index);
  }
};

struct LiteralExpr final : Expr {
  Value value;

  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral, v.type()),
                                  value(std::move(v)) {}
  std::string ToString() const override { return value.ToString(); }
  void CollectColumns(std::vector<int>*) const override {}
};

struct ComparisonExpr final : Expr {
  CompareOp op;
  ExprPtr left;
  ExprPtr right;

  ComparisonExpr(CompareOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kComparison, TypeId::kBool), op(o), left(std::move(l)),
        right(std::move(r)) {}
  std::string ToString() const override;
  void CollectColumns(std::vector<int>* out) const override {
    left->CollectColumns(out);
    right->CollectColumns(out);
  }
};

struct LogicalExpr final : Expr {
  LogicalOp op;
  ExprPtr left;
  ExprPtr right;  // null for NOT

  LogicalExpr(LogicalOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kLogical, TypeId::kBool), op(o), left(std::move(l)),
        right(std::move(r)) {}
  std::string ToString() const override;
  void CollectColumns(std::vector<int>* out) const override {
    left->CollectColumns(out);
    if (right != nullptr) right->CollectColumns(out);
  }
};

struct ArithmeticExpr final : Expr {
  ArithOp op;
  ExprPtr left;
  ExprPtr right;

  ArithmeticExpr(ArithOp o, TypeId result, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kArithmetic, result), op(o), left(std::move(l)),
        right(std::move(r)) {}
  std::string ToString() const override;
  void CollectColumns(std::vector<int>* out) const override {
    left->CollectColumns(out);
    right->CollectColumns(out);
  }
};

struct InListExpr final : Expr {
  ExprPtr input;
  std::vector<Value> items;
  bool negated;

  InListExpr(ExprPtr in, std::vector<Value> list, bool neg)
      : Expr(ExprKind::kInList, TypeId::kBool), input(std::move(in)),
        items(std::move(list)), negated(neg) {}
  std::string ToString() const override;
  void CollectColumns(std::vector<int>* out) const override {
    input->CollectColumns(out);
  }
};

struct LikeExpr final : Expr {
  ExprPtr input;
  std::string pattern;
  bool negated;

  LikeExpr(ExprPtr in, std::string pat, bool neg)
      : Expr(ExprKind::kLike, TypeId::kBool), input(std::move(in)),
        pattern(std::move(pat)), negated(neg) {}
  std::string ToString() const override;
  void CollectColumns(std::vector<int>* out) const override {
    input->CollectColumns(out);
  }
};

struct CaseExpr final : Expr {
  struct WhenClause {
    ExprPtr condition;
    ExprPtr result;
  };
  std::vector<WhenClause> whens;
  ExprPtr else_result;  // may be null => NULL

  CaseExpr(TypeId result, std::vector<WhenClause> when_clauses, ExprPtr els)
      : Expr(ExprKind::kCase, result), whens(std::move(when_clauses)),
        else_result(std::move(els)) {}
  std::string ToString() const override;
  void CollectColumns(std::vector<int>* out) const override {
    for (const WhenClause& w : whens) {
      w.condition->CollectColumns(out);
      w.result->CollectColumns(out);
    }
    if (else_result != nullptr) else_result->CollectColumns(out);
  }
};

struct IsNullExpr final : Expr {
  ExprPtr input;
  bool negated;  // IS NOT NULL

  IsNullExpr(ExprPtr in, bool neg)
      : Expr(ExprKind::kIsNull, TypeId::kBool), input(std::move(in)),
        negated(neg) {}
  std::string ToString() const override;
  void CollectColumns(std::vector<int>* out) const override {
    input->CollectColumns(out);
  }
};

struct CastExpr final : Expr {
  ExprPtr input;

  CastExpr(TypeId target, ExprPtr in)
      : Expr(ExprKind::kCast, target), input(std::move(in)) {}
  std::string ToString() const override;
  void CollectColumns(std::vector<int>* out) const override {
    input->CollectColumns(out);
  }
};

/// Reference to the output slot of an aggregation operator; appears only in
/// post-aggregation expressions (SELECT list / HAVING above a group-by).
struct AggregateRefExpr final : Expr {
  int agg_index;

  AggregateRefExpr(int idx, TypeId t)
      : Expr(ExprKind::kAggregateRef, t), agg_index(idx) {}
  std::string ToString() const override;
  void CollectColumns(std::vector<int>*) const override {}
};

}  // namespace nodb

#endif  // NODB_EXPR_EXPR_H_
