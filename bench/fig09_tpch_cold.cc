// Figure 9 — "PostgreSQL vs PostgresRaw when running two TPC-H queries that
// access most tables", cold systems: PostgreSQL pays the data load first;
// PostgresRaw variants answer immediately. The paper's shape: PostgresRaw
// wins on total data-to-query time as long as the positional map is on, and
// the PM-only variant beats PM+C cold (cache population overhead).

#include "common.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

using namespace nodb;
using namespace nodb::bench;

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintBanner(
      "Figure 9: TPC-H Q10 + Q14, cold systems (load vs in-situ)",
      "PostgresRaw answers both queries before PostgreSQL finishes loading; "
      "PM-only is faster cold than PM+C (cache build overhead).");

  std::string dir = DataDir()->path();
  TpchSpec spec;
  spec.scale_factor = 0.01 * args.scale;
  spec.seed = args.seed;
  printf("generating TPC-H SF=%.3f ...\n", spec.scale_factor);
  if (!GenerateTpch(dir, spec).ok()) return 1;

  // Tables touched by Q10 and Q14.
  const std::vector<std::string> kTables = {"customer", "orders", "lineitem",
                                            "nation", "part"};

  struct SystemRun {
    std::string name;
    SystemUnderTest sut;
    bool loads;
  };
  const SystemRun kSystems[] = {
      {"PostgreSQL", SystemUnderTest::kPostgreSQL, true},
      {"PostgresRaw PM+C", SystemUnderTest::kPostgresRawPMC, false},
      {"PostgresRaw PM", SystemUnderTest::kPostgresRawPM, false},
  };

  TextTable table({"system", "load(s)", "Q10(s)", "Q14(s)", "total(s)"});
  for (const SystemRun& sys : kSystems) {
    auto db = MakeEngine(sys.sut);
    double load_secs = 0;
    for (const std::string& t : kTables) {
      std::string csv = dir + "/" + t + ".csv";
      if (sys.loads) {
        auto load = db->LoadCsv(t, csv, TpchSchema(t));
        if (!load.ok()) return 1;
        load_secs += load->seconds;
      } else {
        if (!db->RegisterCsv(t, csv, TpchSchema(t)).ok()) return 1;
      }
    }
    double q10 = RunQuery(db.get(), TpchQuery(10));
    double q14 = RunQuery(db.get(), TpchQuery(14));
    table.AddRow({sys.name, Fmt(load_secs), Fmt(q10), Fmt(q14),
                  Fmt(load_secs + q10 + q14)});
  }
  table.Print();
  printf("\nExpected shape: both PostgresRaw totals below PostgreSQL's "
         "(its load dominates); PM-only total <= PM+C total when cold.\n");
  return 0;
}
