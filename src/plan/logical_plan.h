#ifndef NODB_PLAN_LOGICAL_PLAN_H_
#define NODB_PLAN_LOGICAL_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sql/binder.h"

namespace nodb {

/// How the aggregation operator materializes groups.
enum class AggStrategy : uint8_t {
  /// Hash table keyed by group values; chosen when statistics bound the
  /// number of groups.
  kHash,
  /// Sort-then-merge grouping; the conservative default when group
  /// cardinality is unknown (what the paper's "w/o statistics" plans do).
  kSort,
};

/// One table access with pushed-down predicate and projection.
///
/// Expressions here remain bound over the *working row* (all FROM tables
/// concatenated); the row produced by a scan is full-width with only this
/// table's slice populated, so no index rebasing is ever needed.
struct PlannedScan {
  BoundTable table;
  /// Pushed-down filter conjuncts, in evaluation order (the optimizer
  /// orders them by estimated selectivity when statistics exist).
  std::vector<ExprPtr> conjuncts;
  /// Table-local column indices required by `conjuncts` (phase-1 attributes
  /// for the in-situ scan's selective parsing).
  std::vector<int> where_attrs;
  /// Table-local column indices needed downstream but not by the filter
  /// (phase-2: parsed only for qualifying tuples).
  std::vector<int> payload_attrs;
  /// Estimated output cardinality (rows after the filter); negative when
  /// unknown (no statistics).
  double est_rows = -1;
};

/// One hash join step: build from `scans[build_scan]`, probe with the
/// current pipeline. Empty key lists denote a cross join (single-bucket
/// hash table).
struct PlannedJoin {
  int build_scan = 0;
  std::vector<ExprPtr> probe_keys;  // over the working row (pipeline side)
  std::vector<ExprPtr> build_keys;  // over the working row (build side)
  /// Conjuncts that need columns from both sides; evaluated on the merged
  /// row right after the join. May be empty.
  std::vector<ExprPtr> residual;
};

/// A planned semi/anti join (from EXISTS): the inner side is a standalone
/// scan whose filter is already pushed down.
struct PlannedSemiJoin {
  PlannedScan inner;
  std::vector<ExprPtr> outer_keys;
  std::vector<ExprPtr> inner_keys;
  bool anti = false;
};

/// Executable plan: scans[pipeline[0]] drives the pipeline; `joins` apply in
/// order, then semi joins, then aggregation / projection / sort / limit
/// using the BoundQuery's expressions.
struct PhysicalPlan {
  const BoundQuery* query = nullptr;

  std::vector<PlannedScan> scans;  // one per FROM table, in FROM order
  int driver_scan = 0;
  std::vector<PlannedJoin> joins;
  std::vector<PlannedSemiJoin> semi_joins;

  AggStrategy agg_strategy = AggStrategy::kSort;
  /// Pre-size hint for the hash-aggregation table (0 = default).
  size_t agg_groups_hint = 0;

  /// Human-readable plan for EXPLAIN-style output and tests.
  std::string ToString() const;
};

}  // namespace nodb

#endif  // NODB_PLAN_LOGICAL_PLAN_H_
