#ifndef NODB_EXPR_EVALUATOR_H_
#define NODB_EXPR_EVALUATOR_H_

#include "expr/expr.h"
#include "types/value.h"
#include "util/result.h"

namespace nodb {

/// Evaluates a bound expression against a working row.
///
/// NULL semantics follow SQL: comparisons/arithmetic with a NULL operand
/// yield NULL; AND/OR use Kleene three-valued logic; WHERE-style truth tests
/// treat NULL as false (see IsTruthy). Division by zero is an error status.
class Evaluator {
 public:
  /// `aggregates` supplies values for AggregateRefExpr slots (may be null
  /// when the expression contains none).
  static Result<Value> Eval(const Expr& expr, const Row& row,
                            const Row* aggregates = nullptr);

  /// WHERE-clause truth test: non-null boolean true.
  static bool IsTruthy(const Value& v) {
    return !v.is_null() && v.boolean();
  }
};

}  // namespace nodb

#endif  // NODB_EXPR_EVALUATOR_H_
