#include "fits/fits_reader.h"

namespace nodb {

FitsReader::FitsReader(const RandomAccessFile* file,
                       const FitsTableInfo* info)
    : info_(info), reader_(file, 1 << 20) {}

Status FitsReader::ReadRow(uint64_t row_idx, const std::vector<bool>& needed,
                           Row* row) {
  if (row_idx >= info_->num_rows) {
    return Status::OutOfRange("FITS row index out of range");
  }
  int ncols = static_cast<int>(info_->columns.size());
  row->assign(ncols, Value());
  uint64_t base = info_->data_start + row_idx * info_->row_bytes;
  NODB_ASSIGN_OR_RETURN(std::string_view bytes,
                        reader_.ReadAt(base, info_->row_bytes));
  if (bytes.size() != info_->row_bytes) {
    return Status::Corruption("FITS row truncated");
  }
  for (int c = 0; c < ncols; ++c) {
    const FitsColumn& col = info_->columns[c];
    if (needed[c]) {
      (*row)[c] = DecodeFitsField(col, bytes.data() + col.offset);
    } else {
      (*row)[c] = Value::Null(col.type);
    }
  }
  return Status::OK();
}

}  // namespace nodb
