#include "adaptive/promotion_policy.h"

#include <algorithm>

namespace nodb {

PromotionPlan PlanPromotions(const std::vector<ColumnPromotionInput>& cols,
                             uint64_t promoted_bytes_now,
                             uint64_t budget_bytes,
                             const PromotionConfig& cfg) {
  PromotionPlan plan;

  // Candidates: unpromoted columns with enough observed scans and parse
  // work accrued since the last decision, scored by work-per-byte.
  struct Candidate {
    int attr;
    double score;
    uint64_t bytes;
  };
  std::vector<Candidate> candidates;
  for (const ColumnPromotionInput& c : cols) {
    if (c.promoted || c.scans < cfg.min_scans) continue;
    uint64_t work =
        c.parse_work > c.work_mark ? c.parse_work - c.work_mark : 0;
    if (work == 0) continue;
    double score = static_cast<double>(work) /
                   static_cast<double>(std::max<uint64_t>(c.est_bytes, 1));
    candidates.push_back({c.attr, score, c.est_bytes});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score != b.score ? a.score > b.score : a.attr < b.attr;
            });
  if (static_cast<int>(candidates.size()) > cfg.max_columns_per_cycle) {
    candidates.resize(cfg.max_columns_per_cycle);
  }

  // Demotion victims, coldest first: promoted columns nobody read from the
  // promoted form since the last cycle.
  std::vector<const ColumnPromotionInput*> victims;
  for (const ColumnPromotionInput& c : cols) {
    if (c.promoted && c.served_rows <= c.served_mark) {
      victims.push_back(&c);
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const ColumnPromotionInput* a, const ColumnPromotionInput* b) {
              return a->attr < b->attr;
            });

  // Fit each candidate (best first) under the budget, demoting cold
  // columns to make room; a candidate that still doesn't fit is skipped,
  // not queued — the next cycle re-scores from fresh counters.
  uint64_t bytes = promoted_bytes_now;
  size_t next_victim = 0;
  for (const Candidate& cand : candidates) {
    while (bytes + cand.bytes > budget_bytes && next_victim < victims.size()) {
      const ColumnPromotionInput* v = victims[next_victim++];
      plan.demote.push_back(v->attr);
      bytes -= std::min(bytes, v->est_bytes);
    }
    if (bytes + cand.bytes > budget_bytes) continue;
    plan.promote.push_back(cand.attr);
    bytes += cand.bytes;
  }
  return plan;
}

}  // namespace nodb
