// Morsel-parallel cold-scan scaling sweep: the 1M-row wide table scanned
// in situ with 1/2/4/8 scan threads, CSV and JSON Lines. Reports, per
// thread count:
//
//   * cold time on the PM+C engine (tokenize + parse + install positional
//     map / cache / statistics through the fragment-merge path),
//   * cold time on the baseline engine (no adaptive structures — the same
//     parallel tokenize/parse without any merge work), whose delta to the
//     PM+C cold time approximates the pmap/cache/stats merge overhead,
//   * warm time on the PM+C engine (the structures a parallel cold scan
//     built must serve warm queries exactly like a serial scan's), and
//   * speedup of cold over the serial (1-thread) cold scan.
//
// On a multi-core machine the 4-thread CSV cold scan should be >= 2x the
// serial one; on a single hardware thread the sweep degenerates to ~1x
// and mainly measures the orchestration overhead.
//
//   ./bench_micro_parallel [--scale=F] [--seed=N]

#include <cstdio>

#include "common.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

std::unique_ptr<Database> OpenEngine(SystemUnderTest sut,
                                     const std::string& path,
                                     const Schema& schema, int threads) {
  EngineConfig config = EngineConfig::ForSystem(sut);
  config.scan_threads = threads;
  auto db = std::make_unique<Database>(config);
  OpenOptions options;
  options.schema = schema;
  Status s = db->Open("t", path, options);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    exit(1);
  }
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);

  MicroDataSpec spec;
  spec.rows = static_cast<uint64_t>(1000000 * args.scale);
  spec.cols = 5;
  spec.seed = args.seed;

  std::string csv = DataDir()->File("parallel_micro.csv");
  std::string jsonl = DataDir()->File("parallel_micro.jsonl");
  if (!GenerateWideCsv(csv, spec).ok() ||
      !GenerateWideJsonl(jsonl, spec).ok()) {
    fprintf(stderr, "data generation failed\n");
    return 1;
  }

  PrintBanner("Morsel-parallel raw scans (scan_threads sweep)",
              "not in the paper — OLA-RAW and follow-up work parallelize "
              "the in-situ scan itself; cold raw scans are CPU-bound on "
              "tokenizing, so record-aligned morsels on N cores should "
              "approach Nx until the file's read bandwidth saturates");
  printf("data: %llu rows x %d cols; selective scan touching 2 of %d "
         "attributes\n\n",
         static_cast<unsigned long long>(spec.rows), spec.cols, spec.cols);

  const std::string sql = "SELECT a2 FROM t WHERE a4 >= 500000000";

  TextTable table({"format", "threads", "cold (s)", "speedup",
                   "cold no-structs (s)", "merge ovh (s)", "warm (s)"});
  for (const auto& [label, path] :
       {std::pair<const char*, std::string>{"csv", csv}, {"jsonl", jsonl}}) {
    double serial_cold = 0;
    for (int threads : {1, 2, 4, 8}) {
      auto pmc = OpenEngine(SystemUnderTest::kPostgresRawPMC, path,
                            MicroSchema(spec), threads);
      double cold = RunQuery(pmc.get(), sql);
      double warm = RunQuery(pmc.get(), sql);
      for (int run = 0; run < 2; ++run) {
        warm = std::min(warm, RunQuery(pmc.get(), sql));
      }
      auto bare = OpenEngine(SystemUnderTest::kPostgresRawBaseline, path,
                             MicroSchema(spec), threads);
      double cold_bare = RunQuery(bare.get(), sql);
      if (threads == 1) serial_cold = cold;
      table.AddRow({label, std::to_string(threads), Fmt(cold),
                    Fmt(serial_cold / cold, 2) + "x", Fmt(cold_bare),
                    Fmt(cold - cold_bare), Fmt(warm)});
    }
  }
  table.Print();
  printf("\nmerge ovh = PM+C cold minus no-structure cold at the same "
         "thread count: the price of installing pmap fragments, stitching "
         "cache chunks and replaying statistics at the merge point.\n");
  return 0;
}
