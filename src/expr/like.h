#ifndef NODB_EXPR_LIKE_H_
#define NODB_EXPR_LIKE_H_

#include <string_view>

namespace nodb {

/// SQL LIKE predicate: '%' matches any run of characters (including empty),
/// '_' matches exactly one character; everything else matches literally.
/// Case-sensitive, no escape character (TPC-H does not need one).
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace nodb

#endif  // NODB_EXPR_LIKE_H_
