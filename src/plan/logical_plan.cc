#include "plan/logical_plan.h"

namespace nodb {

std::string PhysicalPlan::ToString() const {
  std::string out;
  auto scan_line = [](const PlannedScan& s) {
    std::string line = "Scan " + s.table.display_name;
    if (!s.conjuncts.empty()) {
      line += " filter=(";
      for (size_t i = 0; i < s.conjuncts.size(); ++i) {
        if (i > 0) line += " AND ";
        line += s.conjuncts[i]->ToString();
      }
      line += ")";
    }
    if (s.est_rows >= 0) {
      line += " rows~" + std::to_string(static_cast<long long>(s.est_rows));
    }
    return line;
  };

  out += "Driver: " + scan_line(scans[driver_scan]) + "\n";
  for (const PlannedJoin& j : joins) {
    out += "HashJoin build=[" + scan_line(scans[j.build_scan]) + "] keys=";
    for (size_t i = 0; i < j.probe_keys.size(); ++i) {
      if (i > 0) out += ",";
      out += j.probe_keys[i]->ToString() + "=" + j.build_keys[i]->ToString();
    }
    out += "\n";
  }
  for (const PlannedSemiJoin& s : semi_joins) {
    out += s.anti ? "AntiJoin [" : "SemiJoin [";
    out += scan_line(s.inner) + "]\n";
  }
  if (query != nullptr && query->has_aggregation) {
    out += agg_strategy == AggStrategy::kHash ? "HashAggregate" : "SortAggregate";
    out += " groups=" + std::to_string(query->group_by.size());
    out += " aggs=" + std::to_string(query->aggregates.size());
    if (agg_groups_hint > 0) {
      out += " hint=" + std::to_string(agg_groups_hint);
    }
    out += "\n";
  }
  if (query != nullptr && !query->order_by.empty()) out += "Sort\n";
  if (query != nullptr && query->limit.has_value()) {
    out += "Limit " + std::to_string(*query->limit) + "\n";
  }
  return out;
}

}  // namespace nodb
