#ifndef NODB_STORAGE_TABLE_HEAP_H_
#define NODB_STORAGE_TABLE_HEAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/result.h"

namespace nodb {

/// Schema-aware table over slotted heap pages — the storage layer of the
/// loaded-DBMS baselines. Tuples carry a configurable header (24 bytes by
/// default, standing in for PostgreSQL's HeapTupleHeader) plus a null bitmap
/// and the field payloads; tuples wider than a page spill into overflow-page
/// chains, which is what makes very wide attributes expensive (paper
/// Fig. 13).
///
/// Page 0 is a metadata page; data pages start at 1.
class TableHeap {
 public:
  struct Options {
    /// Per-tuple header overhead; 24 mimics PostgreSQL, smaller values model
    /// denser engines.
    uint32_t tuple_header_bytes = 24;
    /// If true, every scanned tuple is first copied to a scratch buffer
    /// before deserialization, emulating MySQL's handler-interface row
    /// copy-out (see DESIGN.md substitutions).
    bool extra_copy_on_scan = false;
    /// Buffer pool capacity in pages used by scans.
    uint32_t buffer_pool_pages = 1024;
  };

  /// Creates a new empty table file.
  static Result<std::unique_ptr<TableHeap>> Create(const std::string& path,
                                                   Schema schema,
                                                   Options options);
  /// Opens an existing table file (reads the metadata page).
  static Result<std::unique_ptr<TableHeap>> Open(const std::string& path,
                                                 Schema schema,
                                                 Options options);

  /// Appends one row (bulk-load path; pages are written straight through).
  Status Append(const Row& row);

  /// Flushes the tail page and persists metadata. Must be called after the
  /// last Append and before scanning.
  Status FinishLoad();

  uint64_t row_count() const { return row_count_; }
  const Schema& schema() const { return schema_; }
  const Options& options() const { return options_; }
  uint64_t data_bytes() const {
    return static_cast<uint64_t>(file_->page_count()) * kPageSize;
  }

  /// Drops buffer pool contents (simulates a cold start between queries).
  void DropCaches();
  BufferPool* buffer_pool() { return pool_.get(); }

  /// Serializes `row` into `out` (exposed for tests).
  void SerializeRow(const Row& row, std::string* out) const;

  /// Deserializes a tuple payload. `needed[i]` selects which columns are
  /// materialized; others are left as NULL placeholders in the full-arity
  /// output row.
  Status DeserializeRow(std::string_view tuple, const std::vector<bool>& needed,
                        Row* row) const;

  /// Sequential full-table scanner.
  class Scanner {
   public:
    /// `needed[i]` marks the columns the caller will read. Must be sized to
    /// the schema arity.
    Scanner(TableHeap* heap, std::vector<bool> needed);

    /// Fetches the next row into `*row` (full arity, unneeded columns NULL).
    /// Returns false at end of table.
    Result<bool> Next(Row* row);

   private:
    TableHeap* heap_;
    std::vector<bool> needed_;
    uint32_t page_id_ = 1;
    int slot_ = 0;
    std::string scratch_;
    std::string copy_buffer_;  // used by extra_copy_on_scan
  };

 private:
  TableHeap(std::unique_ptr<HeapFile> file, Schema schema, Options options);

  Status AppendOverflow(std::string_view payload, uint32_t* first_page);
  Status FlushCurrentPage();
  Result<std::string_view> ReadTuple(uint32_t page_id, int slot,
                                     std::string* scratch) const;

  std::unique_ptr<HeapFile> file_;
  std::unique_ptr<BufferPool> pool_;
  Schema schema_;
  Options options_;
  uint64_t row_count_ = 0;

  // Bulk-load state.
  std::vector<char> current_frame_;
  uint32_t current_page_id_ = 0;  // 0 = no open page
  std::string serialize_scratch_;

  friend class Scanner;
};

}  // namespace nodb

#endif  // NODB_STORAGE_TABLE_HEAP_H_
