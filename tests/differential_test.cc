#include <gtest/gtest.h>

#include <map>

#include "csv/writer.h"
#include "engine/engines.h"
#include "util/fs_util.h"
#include "util/rng.h"
#include "util/str_conv.h"

namespace nodb {
namespace {

/// Differential testing: a random table and random queries, executed by
/// every system under test. All engines share the executor but differ in
/// access paths (in-situ with/without map/cache/stats, loaded heap, packed
/// rows), so agreement across engines — and across repetitions while the
/// adaptive structures warm up — is a strong end-to-end correctness check.

struct RandomTable {
  Schema schema;
  std::vector<Row> rows;
};

RandomTable MakeRandomTable(Rng* rng) {
  RandomTable table;
  int ncols = static_cast<int>(rng->Uniform(3, 8));
  for (int c = 0; c < ncols; ++c) {
    TypeId type;
    switch (rng->Uniform(0, 3)) {
      case 0:
        type = TypeId::kInt64;
        break;
      case 1:
        type = TypeId::kDouble;
        break;
      case 2:
        type = TypeId::kString;
        break;
      default:
        type = TypeId::kDate;
        break;
    }
    table.schema.AddColumn({"c" + std::to_string(c), type});
  }
  int nrows = static_cast<int>(rng->Uniform(50, 400));
  for (int r = 0; r < nrows; ++r) {
    Row row;
    for (int c = 0; c < ncols; ++c) {
      TypeId type = table.schema.column(c).type;
      if (rng->NextBool(0.05)) {
        row.push_back(Value::Null(type));
        continue;
      }
      switch (type) {
        case TypeId::kInt64:
          // Low cardinality so GROUP BY and equality predicates hit.
          row.push_back(Value::Int64(rng->Uniform(0, 20)));
          break;
        case TypeId::kDouble:
          row.push_back(Value::Double(
              static_cast<double>(rng->Uniform(0, 1000)) / 4.0));
          break;
        case TypeId::kString: {
          static const char* kWords[] = {"ash", "birch", "cedar", "doum",
                                         "elm", "fir"};
          row.push_back(Value::String(kWords[rng->Next() % 6]));
          break;
        }
        case TypeId::kDate:
          row.push_back(
              Value::Date(static_cast<int32_t>(rng->Uniform(8000, 9000))));
          break;
        case TypeId::kBool:
          row.push_back(Value::Bool(rng->NextBool(0.5)));
          break;
      }
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

/// One random predicate over a random column, with literals drawn from the
/// table's actual value domains.
std::string RandomPredicate(const RandomTable& table, Rng* rng) {
  int c = static_cast<int>(rng->Uniform(0, table.schema.num_columns() - 1));
  const std::string& name = table.schema.column(c).name;
  TypeId type = table.schema.column(c).type;
  switch (type) {
    case TypeId::kInt64: {
      int64_t v = rng->Uniform(0, 20);
      const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
      return name + " " + ops[rng->Next() % 6] + " " + std::to_string(v);
    }
    case TypeId::kDouble: {
      int64_t v = rng->Uniform(0, 250);
      return name + (rng->NextBool(0.5) ? " < " : " >= ") +
             std::to_string(v) + ".0";
    }
    case TypeId::kString: {
      static const char* kWords[] = {"ash", "birch", "cedar", "doum",
                                     "elm", "fir"};
      const char* w = kWords[rng->Next() % 6];
      switch (rng->Next() % 3) {
        case 0:
          return name + " = '" + w + "'";
        case 1:
          return name + " LIKE '" + std::string(1, w[0]) + "%'";
        default:
          return name + " IN ('" + w + "', 'elm')";
      }
    }
    case TypeId::kDate: {
      int32_t d = static_cast<int32_t>(rng->Uniform(8000, 9000));
      return name + (rng->NextBool(0.5) ? " < DATE '" : " >= DATE '") +
             FormatDate(d) + "'";
    }
    default:
      return name + " IS NOT NULL";
  }
}

std::string RandomQuery(const RandomTable& table, Rng* rng) {
  int ncols = table.schema.num_columns();
  bool aggregate = rng->NextBool(0.4);
  std::string sql = "SELECT ";
  if (aggregate) {
    // Group by one low-cardinality column, aggregate another.
    int g = -1, a = -1;
    for (int c = 0; c < ncols; ++c) {
      TypeId t = table.schema.column(c).type;
      if (g < 0 && (t == TypeId::kInt64 || t == TypeId::kString)) g = c;
      if (t == TypeId::kInt64 || t == TypeId::kDouble) a = c;
    }
    if (g < 0 || a < 0) return "SELECT COUNT(*) FROM t";
    const std::string& gn = table.schema.column(g).name;
    const std::string& an = table.schema.column(a).name;
    sql += gn + ", COUNT(*) AS n, SUM(" + an + ") AS s, MIN(" + an +
           ") AS lo, MAX(" + an + ") AS hi FROM t";
    int npreds = static_cast<int>(rng->Uniform(0, 2));
    for (int p = 0; p < npreds; ++p) {
      sql += (p == 0 ? " WHERE " : " AND ") + RandomPredicate(table, rng);
    }
    sql += " GROUP BY " + gn;
    return sql;
  }
  // Plain select-project: random attribute subset (the paper's micro
  // queries), random conjunctive filter.
  int nproj = static_cast<int>(rng->Uniform(1, ncols));
  std::vector<int> cols;
  for (int i = 0; i < nproj; ++i) {
    cols.push_back(static_cast<int>(rng->Uniform(0, ncols - 1)));
  }
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += table.schema.column(cols[i]).name;
  }
  sql += " FROM t";
  int npreds = static_cast<int>(rng->Uniform(0, 3));
  for (int p = 0; p < npreds; ++p) {
    sql += (p == 0 ? " WHERE " : " AND ") + RandomPredicate(table, rng);
  }
  return sql;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllEnginesAgreeOnRandomWorkload) {
  Rng rng(GetParam());
  TempDir dir;
  RandomTable table = MakeRandomTable(&rng);
  std::string csv_path = dir.File("t.csv");
  {
    auto out = WritableFile::Create(csv_path);
    ASSERT_TRUE(out.ok());
    CsvWriter writer(out->get(), CsvDialect{});
    for (const Row& row : table.rows) {
      ASSERT_TRUE(writer.WriteRow(row).ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
    ASSERT_TRUE((*out)->Close().ok());
  }

  // Instantiate every system under test once; adaptive state persists
  // across the whole query sequence (as it would in production).
  std::vector<std::pair<std::string, std::unique_ptr<Database>>> engines;
  for (SystemUnderTest sut :
       {SystemUnderTest::kPostgresRawPMC, SystemUnderTest::kPostgresRawPM,
        SystemUnderTest::kPostgresRawC,
        SystemUnderTest::kPostgresRawBaseline,
        SystemUnderTest::kExternalFiles, SystemUnderTest::kPostgreSQL,
        SystemUnderTest::kDbmsX, SystemUnderTest::kMySQL}) {
    auto db = MakeEngine(sut);
    if (IsInSituSystem(sut)) {
      ASSERT_TRUE(db->RegisterCsv("t", csv_path, table.schema).ok());
    } else {
      ASSERT_TRUE(db->LoadCsv("t", csv_path, table.schema).ok());
    }
    engines.emplace_back(std::string(SystemUnderTestName(sut)),
                         std::move(db));
  }

  // A tight-budget PM+C engine exercises eviction and spilling during the
  // same workload (results must still be exact).
  {
    EngineConfig config =
        EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
    config.pm_budget_bytes = 16 * 1024;
    config.cache_budget_bytes = 16 * 1024;
    config.tuples_per_chunk = 64;
    auto db = std::make_unique<Database>(config);
    ASSERT_TRUE(db->RegisterCsv("t", csv_path, table.schema).ok());
    engines.emplace_back("PM+C tight budget", std::move(db));
  }

  constexpr int kQueries = 20;
  for (int q = 0; q < kQueries; ++q) {
    std::string sql = RandomQuery(table, &rng);
    std::string reference;
    std::string ref_name;
    for (auto& [name, db] : engines) {
      auto result = db->Execute(sql);
      ASSERT_TRUE(result.ok())
          << name << " failed on: " << sql << "\n" << result.status();
      std::string canonical = result->Canonical(/*sorted=*/true);
      if (ref_name.empty()) {
        reference = canonical;
        ref_name = name;
      } else {
        ASSERT_EQ(canonical, reference)
            << name << " vs " << ref_name << " disagree on: " << sql;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace nodb
