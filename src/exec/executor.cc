#include "exec/executor.h"

#include "exec/aggregate.h"
#include "exec/parallel_raw_scan.h"
#include "exec/compact_scan.h"
#include "exec/hash_join.h"
#include "exec/heap_scan.h"
#include "exec/limit.h"
#include "exec/project.h"
#include "exec/sort.h"

namespace nodb {

namespace {

Result<OperatorPtr> MakeScan(const PlannedScan& scan, TableResolver* resolver,
                             int working_width, const ExecOptions& options) {
  NODB_ASSIGN_OR_RETURN(TableRuntime* runtime,
                        resolver->GetTableRuntime(scan.table.table_name));
  switch (runtime->storage) {
    case TableStorage::kRaw: {
      // One scan operator for every raw format: the table's adapter supplies
      // the format-specific hooks, the scan the adaptive machinery. With
      // more than one scan thread configured, the morsel-parallel variant
      // runs instead — same contract, same results, same structures.
      const int threads = runtime->scan_threads_override > 0
                              ? runtime->scan_threads_override
                              : options.scan_threads;
      if (threads > 1 && options.scan_pool != nullptr) {
        return OperatorPtr(std::make_unique<ParallelRawScanOp>(
            runtime, &scan, working_width, options.insitu, threads,
            options.scan_morsel_bytes, options.scan_pool, options.control));
      }
      return OperatorPtr(std::make_unique<RawScanOp>(
          runtime, &scan, working_width, options.insitu, options.control));
    }
    case TableStorage::kHeap:
      return OperatorPtr(
          std::make_unique<HeapScanOp>(runtime, &scan, working_width));
    case TableStorage::kCompact:
      return OperatorPtr(
          std::make_unique<CompactScanOp>(runtime, &scan, working_width));
  }
  return Status::Internal("unknown table storage kind");
}

}  // namespace

Result<OperatorPtr> BuildPipeline(const PhysicalPlan& plan,
                                  TableResolver* resolver,
                                  const ExecOptions& options) {
  const BoundQuery& query = *plan.query;
  const int width = query.working_width;
  const size_t batch_size = options.batch_size;

  // Pipeline: driver scan, then hash joins in plan order.
  NODB_ASSIGN_OR_RETURN(
      OperatorPtr pipeline,
      MakeScan(plan.scans[plan.driver_scan], resolver, width, options));
  for (const PlannedJoin& join : plan.joins) {
    const PlannedScan& build = plan.scans[join.build_scan];
    NODB_ASSIGN_OR_RETURN(OperatorPtr build_op,
                          MakeScan(build, resolver, width, options));
    pipeline = std::make_unique<HashJoinOp>(
        std::move(pipeline), std::move(build_op), &join, build.table.offset,
        build.table.schema->num_columns(), batch_size, options.control);
  }

  // Semi/anti joins (EXISTS). Inner scans run in their own (table-arity)
  // row space.
  for (const PlannedSemiJoin& semi : plan.semi_joins) {
    NODB_ASSIGN_OR_RETURN(
        OperatorPtr inner,
        MakeScan(semi.inner, resolver,
                 semi.inner.table.schema->num_columns(), options));
    pipeline = std::make_unique<SemiJoinOp>(std::move(pipeline),
                                            std::move(inner), &semi,
                                            batch_size, options.control);
  }

  if (query.has_aggregation) {
    pipeline = std::make_unique<AggregateOp>(
        std::move(pipeline), &query.group_by, &query.aggregates,
        plan.agg_strategy, plan.agg_groups_hint, batch_size, options.control);
  }
  pipeline = std::make_unique<ProjectOp>(std::move(pipeline),
                                         &query.select_exprs);
  if (!query.order_by.empty()) {
    pipeline = std::make_unique<SortOp>(std::move(pipeline), &query.order_by,
                                        batch_size, options.control);
  }
  if (query.limit.has_value()) {
    pipeline = std::make_unique<LimitOp>(std::move(pipeline), *query.limit);
  }
  return pipeline;
}

}  // namespace nodb
