#include "csv/csv_adapter.h"

#include <cctype>

#include "csv/parser.h"
#include "csv/tokenizer.h"
#include "raw/line_reader.h"
#include "raw/parse_kernels.h"

namespace nodb {

CsvAdapter::CsvAdapter(std::string path, Schema schema, CsvDialect dialect,
                       std::unique_ptr<RandomAccessFile> file,
                       const ParseKernels* kernels)
    : path_(std::move(path)), schema_(std::move(schema)), dialect_(dialect),
      file_(std::move(file)),
      kernels_(kernels != nullptr ? kernels : &ActiveKernels()) {
  traits_.variable_positions = true;
  traits_.fixed_stride = false;
  // Backward incremental tokenizing is ambiguous under quoting (a delimiter
  // seen walking left may be inside a quoted field).
  traits_.backward_tokenize = !dialect_.quoting;
  traits_.attr0_at_start = true;
}

Result<std::unique_ptr<CsvAdapter>> CsvAdapter::Make(
    const std::string& path, Schema schema, CsvDialect dialect,
    std::unique_ptr<RandomAccessFile> file, const ParseKernels* kernels) {
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument(
        "csv requires a declared schema (pass OpenOptions::schema)");
  }
  if (file == nullptr) {
    NODB_ASSIGN_OR_RETURN(file, RandomAccessFile::Open(path));
  }
  return std::unique_ptr<CsvAdapter>(new CsvAdapter(
      path, std::move(schema), dialect, std::move(file), kernels));
}

Result<std::unique_ptr<RecordCursor>> CsvAdapter::OpenCursor() const {
  return std::unique_ptr<RecordCursor>(std::make_unique<LineRecordCursor>(
      file_.get(), dialect_.has_header, kernels_));
}

Result<uint64_t> CsvAdapter::FindRecordBoundary(uint64_t offset) const {
  // '\n' is an unambiguous record boundary even under quoting: LineReader
  // frames records before the quote state machine ever runs, so a quoted
  // field cannot span lines and a split point inside one still snaps to
  // the next true record start.
  return FindLineBoundary(file_.get(), offset, dialect_.has_header, kernels_);
}

uint32_t CsvAdapter::FindForward(const RecordRef& rec, int from_attr,
                                 uint32_t from_pos, int to_attr,
                                 const PositionSink& sink) const {
  int attr = from_attr;
  uint32_t pos = from_pos;
  if (attr < 0) {
    attr = 0;
    pos = 0;
    sink.Record(0, 0);
  }
  return kernels_->csv_find_forward(rec.data, dialect_, attr, pos, to_attr,
                                    &sink);
}

int CsvAdapter::TokenizeRecord(const RecordRef& rec, int upto,
                               uint32_t* starts) const {
  // The scalar reference table keeps the seed's incremental anchor walk —
  // the batch tokenizer only pays off when one SWAR/SIMD pass over the
  // record is cheaper than per-field scans, and the forced-scalar engine
  // exists precisely to preserve the before-kernels execution shape.
  if (kernels_->level == KernelLevel::kScalar) return -1;
  return kernels_->csv_tokenize(rec.data, dialect_, upto, starts);
}

uint32_t CsvAdapter::FindBackward(const RecordRef& rec, int from_attr,
                                  uint32_t from_pos, int to_attr,
                                  const PositionSink& sink) const {
  return FindFieldBackward(rec.data, dialect_, from_attr, from_pos, to_attr,
                           &sink);
}

uint32_t CsvAdapter::FieldEnd(const RecordRef& rec, int attr, uint32_t pos,
                              uint32_t next_attr_pos) const {
  (void)attr;
  // The next field's start is one past this field's terminating delimiter.
  if (next_attr_pos != kNoFieldPos && next_attr_pos > pos) {
    return next_attr_pos - 1;
  }
  return kernels_->csv_field_end(rec.data, dialect_, pos);
}

Result<Value> CsvAdapter::ParseField(const RecordRef& rec, int attr,
                                     uint32_t pos, uint32_t end) const {
  return ParseCsvField(rec.data.substr(pos, end - pos),
                       schema_.column(attr).type, dialect_, *kernels_);
}

namespace {

class CsvAdapterFactory final : public AdapterFactory {
 public:
  std::string_view format_name() const override { return "csv"; }

  double Sniff(const std::string& path, std::string_view head) const override {
    if (PathHasExtension(path, ".csv") || PathHasExtension(path, ".tsv") ||
        PathHasExtension(path, ".tbl")) {
      return 0.8;
    }
    // Weak fallback: any printable text could be delimiter-separated.
    for (char c : head) {
      unsigned char u = static_cast<unsigned char>(c);
      if (u != '\t' && u != '\r' && u != '\n' && u < 0x20) return 0.0;
    }
    return head.empty() ? 0.0 : 0.3;
  }

  Result<std::unique_ptr<RawSourceAdapter>> Create(
      const std::string& path, const OpenOptions& options,
      std::unique_ptr<RandomAccessFile> file) const override {
    // The sniffer claims .tsv/.tbl files, so honour their conventional
    // delimiters when this adapter was chosen by sniffing (format empty)
    // and the caller left the dialect at its default — a comma-tokenized
    // TSV would mis-parse every field. A forced format (RegisterCsv, or an
    // explicit OpenOptions::format) keeps the dialect exactly as given.
    CsvDialect dialect = options.dialect;
    if (options.format.empty() &&
        dialect.delimiter == CsvDialect{}.delimiter) {
      if (PathHasExtension(path, ".tsv")) dialect.delimiter = '\t';
      if (PathHasExtension(path, ".tbl")) dialect.delimiter = '|';
    }
    NODB_ASSIGN_OR_RETURN(
        std::unique_ptr<CsvAdapter> adapter,
        CsvAdapter::Make(path, options.schema.value_or(Schema{}), dialect,
                         std::move(file),
                         &SelectKernels(options.scalar_kernels)));
    return std::unique_ptr<RawSourceAdapter>(std::move(adapter));
  }
};

}  // namespace

std::unique_ptr<AdapterFactory> MakeCsvAdapterFactory() {
  return std::make_unique<CsvAdapterFactory>();
}

}  // namespace nodb
