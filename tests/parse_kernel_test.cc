// Kernel conformance suite: every parse-kernel table this build and CPU
// provide (scalar, SWAR, SSE2, AVX2) must agree *exactly* with the scalar
// reference — field boundaries, sink callbacks, values, and error Statuses,
// on well-formed and malformed input alike. Inputs are staged in
// exactly-sized heap buffers so a kernel reading one byte past a record is
// an ASan failure, not a silent success.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "csv/tokenizer.h"
#include "io/file.h"
#include "json/json_text.h"
#include "raw/line_reader.h"
#include "raw/parse_kernels.h"
#include "util/fs_util.h"
#include "util/rng.h"
#include "util/str_conv.h"

namespace nodb {
namespace {

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

/// The input copied into an exactly-sized heap allocation: one byte past
/// `view()` is unowned memory, so ASan converts any kernel overread into a
/// test failure. (A std::string would hide overreads in its capacity slack.)
class ExactBuf {
 public:
  explicit ExactBuf(std::string_view s)
      : size_(s.size()), data_(size_ > 0 ? new char[size_] : nullptr) {
    if (size_ > 0) memcpy(data_.get(), s.data(), size_);
  }
  std::string_view view() const { return {data_.get(), size_}; }

 private:
  size_t size_;
  std::unique_ptr<char[]> data_;
};

std::vector<const ParseKernels*> VectorKernels() {
  std::vector<const ParseKernels*> out;
  for (const ParseKernels* k : AvailableKernels()) {
    if (k->level != KernelLevel::kScalar) out.push_back(k);
  }
  return out;
}

/// Identity-mapped PositionSink writing into `pos` (one slot per attr).
struct SinkCapture {
  std::vector<int> slots;
  std::vector<uint32_t> pos;
  bool corrupt = false;
  PositionSink sink;

  explicit SinkCapture(int nattrs)
      : slots(nattrs), pos(nattrs, kNoFieldPos) {
    for (int i = 0; i < nattrs; ++i) slots[i] = i;
    sink.slot_of = slots.data();
    sink.pos = pos.data();
    sink.corrupt = &corrupt;
  }
};

constexpr int kMaxAttrs = 96;

/// Asserts that every CSV kernel entry point of `k` matches the scalar
/// reference on `line` under `dialect`: tokenize at several `upto` cutoffs,
/// field-end at every discovered start, count, and find-forward from every
/// (attr, start) anchor including the sink trace.
void ExpectCsvConformance(const ParseKernels& k, std::string_view line,
                          const CsvDialect& dialect) {
  SCOPED_TRACE(std::string(k.name) + " on \"" + std::string(line) + "\"");
  ExactBuf buf(line);
  std::string_view v = buf.view();

  uint32_t ref_starts[kMaxAttrs], got_starts[kMaxAttrs];
  int ref_n = TokenizeStarts(v, dialect, kMaxAttrs - 1, ref_starts);
  int got_n = k.csv_tokenize(v, dialect, kMaxAttrs - 1, got_starts);
  ASSERT_EQ(got_n, ref_n);
  for (int f = 0; f < ref_n; ++f) EXPECT_EQ(got_starts[f], ref_starts[f]);

  // Selective cutoffs, including upto = 0 and one past the real count.
  for (int upto : {0, 1, ref_n - 1, ref_n}) {
    if (upto < 0 || upto >= kMaxAttrs) continue;
    uint32_t a[kMaxAttrs], b[kMaxAttrs];
    int na = TokenizeStarts(v, dialect, upto, a);
    int nb = k.csv_tokenize(v, dialect, upto, b);
    ASSERT_EQ(nb, na) << "upto=" << upto;
    for (int f = 0; f < na; ++f) EXPECT_EQ(b[f], a[f]);
  }

  EXPECT_EQ(k.csv_count_fields(v, dialect), CountFields(v, dialect));

  for (int f = 0; f < ref_n; ++f) {
    EXPECT_EQ(k.csv_field_end(v, dialect, ref_starts[f]),
              FieldEndAt(v, dialect, ref_starts[f]))
        << "field " << f;
  }

  // Find-forward from every anchor to every later attr (and past the end),
  // comparing the returned offset and the full sink trace.
  for (int from = 0; from < ref_n; ++from) {
    for (int to : {from, from + 1, ref_n - 1, ref_n, ref_n + 3}) {
      if (to < from || to >= kMaxAttrs) continue;
      SinkCapture ref_cap(kMaxAttrs), got_cap(kMaxAttrs);
      uint32_t ref_pos = FindFieldForward(v, dialect, from, ref_starts[from],
                                          to, &ref_cap.sink);
      uint32_t got_pos = k.csv_find_forward(v, dialect, from,
                                            ref_starts[from], to,
                                            &got_cap.sink);
      EXPECT_EQ(got_pos, ref_pos) << "from=" << from << " to=" << to;
      EXPECT_EQ(got_cap.pos, ref_cap.pos) << "from=" << from << " to=" << to;
      EXPECT_EQ(got_cap.corrupt, ref_cap.corrupt);
    }
  }
}

void ExpectCsvConformanceAllDialects(std::string_view line) {
  CsvDialect comma;
  CsvDialect tsv;
  tsv.delimiter = '\t';
  CsvDialect pipe;
  pipe.delimiter = '|';
  CsvDialect semi;
  semi.delimiter = ';';
  CsvDialect quoted;
  quoted.quoting = true;
  CsvDialect single;
  single.quoting = true;
  single.quote = '\'';
  for (const ParseKernels* k : AvailableKernels()) {
    for (const CsvDialect* d : {&comma, &tsv, &pipe, &semi, &quoted, &single}) {
      ExpectCsvConformance(*k, line, *d);
    }
  }
}

// ---------------------------------------------------------------------
// CSV: field widths across lane boundaries
// ---------------------------------------------------------------------

TEST(ParseKernelCsv, FieldWidthsCrossLaneBoundaries) {
  // Two fields of width w each, for every w in 0..70 — the delimiter and
  // the line end land on every offset relative to the 8/16/32-byte lanes.
  for (int w = 0; w <= 70; ++w) {
    std::string line(w, 'x');
    line += ',';
    line.append(w, 'y');
    ExpectCsvConformanceAllDialects(line);
  }
}

TEST(ParseKernelCsv, ManyNarrowFields) {
  std::string line;
  for (int f = 0; f < 80; ++f) {
    if (f > 0) line += ',';
    line += static_cast<char>('a' + f % 26);
  }
  ExpectCsvConformanceAllDialects(line);
}

TEST(ParseKernelCsv, EmptyAndDegenerateLines) {
  ExpectCsvConformanceAllDialects("");
  ExpectCsvConformanceAllDialects(",");
  ExpectCsvConformanceAllDialects(",,,,,,,,,,,,,,,,,,,,,,,,,,,,,,,,,");
  ExpectCsvConformanceAllDialects("x");
  ExpectCsvConformanceAllDialects(std::string(257, 'x'));
}

TEST(ParseKernelCsv, RandomLines) {
  Rng rng(20260807);
  const char alphabet[] = "abc012.,,\t|;'\"x-";
  for (int iter = 0; iter < 400; ++iter) {
    int len = static_cast<int>(rng.Uniform(0, 90));
    std::string line;
    for (int i = 0; i < len; ++i) {
      line += alphabet[rng.Uniform(0, sizeof(alphabet) - 2)];
    }
    ExpectCsvConformanceAllDialects(line);
  }
}

// ---------------------------------------------------------------------
// CSV: quoting
// ---------------------------------------------------------------------

TEST(ParseKernelCsv, QuotedFields) {
  // Delimiters and quotes inside quoted fields, escaped quotes, unbalanced
  // quotes, junk after the closing quote, quote appearing mid-field.
  const char* cases[] = {
      R"("a,b",c)",
      R"(a,"b,c,d",e)",
      R"("","",)",
      R"("a""b",c)",
      R"("a""""b")",
      R"("unterminated)",
      R"(a,"unterminated,b)",
      R"("closed"junk,next)",
      R"(mid"quote,field)",
      R"("q",plain,"q2","")",
      R"(,,"x",,)",
      R"("0123456789012345678901234567890123456789,still quoted",tail)",
  };
  for (const char* c : cases) ExpectCsvConformanceAllDialects(c);
}

TEST(ParseKernelCsv, QuotedFieldWidthsCrossLaneBoundaries) {
  for (int w = 0; w <= 70; ++w) {
    std::string inner(w, 'q');
    if (w > 3) inner[w / 2] = ',';  // delimiter inside the quoted region
    ExpectCsvConformanceAllDialects("\"" + inner + "\",tail");
    ExpectCsvConformanceAllDialects("head,\"" + inner + "\"");
  }
}

TEST(ParseKernelCsv, CarriageReturnInsideRecord) {
  // LineReader strips a '\r' before the '\n'; a stray CR elsewhere is field
  // content and every kernel must treat it as such.
  ExpectCsvConformanceAllDialects("a\rb,c");
  ExpectCsvConformanceAllDialects("a,b\r");
}

// ---------------------------------------------------------------------
// find_newline (LineReader's kernel)
// ---------------------------------------------------------------------

TEST(ParseKernelNewline, AllOffsetsAndTails) {
  for (const ParseKernels* k : AvailableKernels()) {
    SCOPED_TRACE(k->name);
    for (int len = 0; len <= 70; ++len) {
      // No newline at all: must return len, reading nothing past the end.
      std::string s(len, 'x');
      ExactBuf none(s);
      EXPECT_EQ(k->find_newline(none.view().data(), len),
                static_cast<size_t>(len));
      // A newline at every position.
      for (int at = 0; at < len; ++at) {
        std::string t = s;
        t[at] = '\n';
        ExactBuf buf(t);
        EXPECT_EQ(k->find_newline(buf.view().data(), len),
                  static_cast<size_t>(at))
            << "len=" << len << " at=" << at;
      }
    }
  }
}

// ---------------------------------------------------------------------
// JSONL: structural skips and the two-stage walker
// ---------------------------------------------------------------------

const char* const kJsonRecords[] = {
    R"({"a":1,"b":2})",
    R"({})",
    R"({ })",
    R"(  { "k" : "v" }  )",
    R"({"s":"hello world","n":-12.5e3,"t":true,"f":false,"z":null})",
    R"({"nested":{"x":[1,2,{"y":"z"}],"w":{}},"after":3})",
    R"({"esc":"a\"b\\c\/d\n\tA","k2":1})",
    R"({"uni":"é中文","pair":"😀"})",
    "{\"utf8\":\"caf\xc3\xa9 \xe4\xb8\xad\xe6\x96\x87 \xf0\x9f\x98\x80\"}",
    R"({"runs":"\\\\\\","quote_after_runs":"\\\\\"still in string"})",
    R"({"a":"\\","b":"\\\\","c":"x\\\"y"})",
    R"({"empty":"","blank key test":{"":1}})",
    R"({"long":"0123456789012345678901234567890123456789012345678901234567890123456789"})",
    R"({"arr":[[],[[]],[1,[2,[3]]]],"deep":{"a":{"b":{"c":[{}]}}}})",
    // Malformed: every structural breakage the scalar walker detects.
    R"()",
    R"(   )",
    R"(42)",
    R"([1,2])",
    R"({"a":1)",
    R"({"a":})",
    R"({"a")",
    R"({"a":1,})",
    R"({,"a":1})",
    R"({"a":1 "b":2})",
    R"({"a":1,,"b":2})",
    R"({"unclosed":"str)",
    R"({"trailing_escape":"abc\)",
    R"({"a":1}{"b":2})",
    R"({"a":1} junk)",
    R"({"key with no colon" 1})",
    R"({"a":[1,2})",
    R"({"a":{"b":1})",
    R"({"Alegal":1,"\uZZZZ":2})",
};

/// One walk of `rec` with the given skipper, serialized for comparison.
template <typename Skipper>
std::string WalkTrace(std::string_view rec, const Skipper& skip) {
  std::string trace;
  std::string scratch;
  bool ok = WalkTopLevelFields(
      rec, skip, &scratch, [&trace](std::string_view key, size_t b, size_t e) {
        trace += std::string(key) + "@" + std::to_string(b) + ":" +
                 std::to_string(e) + ";";
      });
  trace += ok ? "ok" : "fail";
  return trace;
}

TEST(ParseKernelJson, SkipPrimitivesMatchScalar) {
  for (const ParseKernels* k : VectorKernels()) {
    SCOPED_TRACE(k->name);
    for (const char* rec : kJsonRecords) {
      ExactBuf buf(rec);
      std::string_view v = buf.view();
      SCOPED_TRACE(rec);
      for (size_t i = 0; i < v.size(); ++i) {
        // json_skip_value must match the scalar reference from *every*
        // start offset — the warm path lands on remembered positions, not
        // just positions a forward walk would produce.
        EXPECT_EQ(k->json_skip_value(v, i), SkipJsonValue(v, i))
            << "value skip at " << i;
        if (v[i] == '"') {
          EXPECT_EQ(k->json_skip_string(v, i), SkipJsonValue(v, i))
              << "string skip at " << i;
        }
      }
    }
  }
}

TEST(ParseKernelJson, BitmapWalkerMatchesScalarWalker) {
  for (const ParseKernels* k : VectorKernels()) {
    ASSERT_NE(k->json_bitmaps, nullptr);
    SCOPED_TRACE(k->name);
    JsonBitmaps bm;
    for (const char* rec : kJsonRecords) {
      ExactBuf buf(rec);
      std::string_view v = buf.view();
      k->json_bitmaps(v, &bm);
      EXPECT_EQ(WalkTrace(v, BitmapSkipper{&bm}),
                WalkTrace(v, ScalarJsonSkipper{}))
          << rec;
    }
  }
}

TEST(ParseKernelJson, BitmapWalkerOnRandomMutations) {
  Rng rng(777);
  const std::string base =
      R"({"a":1,"s":"x\"y\\","arr":[1,{"n":null}],"d":-2.5e-3,"t":true})";
  JsonBitmaps bm;
  for (const ParseKernels* k : VectorKernels()) {
    SCOPED_TRACE(k->name);
    for (int iter = 0; iter < 600; ++iter) {
      std::string rec = base;
      int mutations = 1 + static_cast<int>(rng.Uniform(0, 2));
      for (int m = 0; m < mutations && !rec.empty(); ++m) {
        size_t at = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(rec.size()) - 1));
        switch (rng.Uniform(0, 3)) {
          case 0: rec[at] = "\"\\{}[],:"[rng.Uniform(0, 7)]; break;
          case 1: rec.resize(at); break;
          case 2: rec.insert(at, 1, '"'); break;
          default: rec[at] = static_cast<char>(rng.Uniform(1, 126)); break;
        }
      }
      ExactBuf buf(rec);
      std::string_view v = buf.view();
      k->json_bitmaps(v, &bm);
      EXPECT_EQ(WalkTrace(v, BitmapSkipper{&bm}),
                WalkTrace(v, ScalarJsonSkipper{}))
          << "mutated: " << rec;
    }
  }
}

// ---------------------------------------------------------------------
// Conversion kernels: identical values AND identical error Statuses
// ---------------------------------------------------------------------

template <typename T>
void ExpectSameResult(const Result<T>& got, const Result<T>& ref,
                      std::string_view input) {
  ASSERT_EQ(got.ok(), ref.ok()) << "\"" << input << "\"";
  if (ref.ok()) {
    if constexpr (std::is_same_v<T, double>) {
      // Bit-exact, so ±0.0 and NaN payloads cannot drift.
      uint64_t g, r;
      memcpy(&g, &*got, 8);
      memcpy(&r, &*ref, 8);
      EXPECT_EQ(g, r) << "\"" << input << "\" got " << *got << " want "
                      << *ref;
    } else {
      EXPECT_EQ(*got, *ref) << "\"" << input << "\"";
    }
  } else {
    EXPECT_EQ(got.status().code(), ref.status().code()) << "\"" << input
                                                        << "\"";
    EXPECT_EQ(got.status().message(), ref.status().message())
        << "\"" << input << "\"";
  }
}

TEST(ParseKernelConvert, Int64Conformance) {
  const char* cases[] = {
      "0", "1", "-1", "42", "12345678", "123456789", "999999999999999999",
      "9223372036854775807", "-9223372036854775808",
      "9223372036854775808", "-9223372036854775809",
      "92233720368547758070", "00000000000000000001", "0000000000000000000",
      "-0", "+1", "", "-", " 1", "1 ", "--1", "1.5", "1e3", "abc", "12a",
      "18446744073709551615", "000000001234567890123",
  };
  for (const ParseKernels* k : AvailableKernels()) {
    SCOPED_TRACE(k->name);
    for (const char* c : cases) {
      ExactBuf buf(c);
      ExpectSameResult(k->parse_int64(buf.view()), ParseInt64(buf.view()), c);
    }
  }
}

TEST(ParseKernelConvert, DoubleConformance) {
  const char* cases[] = {
      "0", "0.0", "-0.0", "1", "-1", "3.25", "-3.25", "12345.6789",
      "1e10", "1E10", "1e-10", "2.5e22", "2.5e-22", "1e22", "1e23",
      "9007199254740991", "9007199254740993",          // 2^53 boundary
      "1e308", "-1e308", "1.7976931348623157e308",     // near DBL_MAX
      "1e-308", "2.2250738585072014e-308",             // smallest normal
      "2.2250738585072011e-308",                       // subnormal rounding
      "5e-324", "4.9e-324", "2.47e-324",               // subnormals
      "1e309", "-1e309", "1e-400",                     // overflow/underflow
      "1e999999999999",
      "0.1", "0.2", "0.3", "123456789012345678901234567890",
      "1.", "5.", ".5", "-.5", "1.e3", "", "-", ".", "e5", "1e", "1e+",
      "1e+5", "1.5e+3", "+1", " 1", "1 ", "1..2", "1.2.3",
      "inf", "-inf", "infinity", "nan", "NaN", "INF",
      "0x10", "1f", "1d",
      "184467440737095516150", "0.000000000000000000001",
  };
  for (const ParseKernels* k : AvailableKernels()) {
    SCOPED_TRACE(k->name);
    for (const char* c : cases) {
      ExactBuf buf(c);
      ExpectSameResult(k->parse_double(buf.view()), ParseDouble(buf.view()),
                       c);
    }
  }
}

TEST(ParseKernelConvert, DoubleRandomRoundTrip) {
  Rng rng(99);
  for (const ParseKernels* k : AvailableKernels()) {
    SCOPED_TRACE(k->name);
    for (int iter = 0; iter < 2000; ++iter) {
      // Random decimal strings in the Clinger fast-path region and outside.
      std::string s;
      if (rng.Uniform(0, 2) == 0) s += '-';
      int int_digits = 1 + static_cast<int>(rng.Uniform(0, 20));
      for (int i = 0; i < int_digits; ++i) {
        s += static_cast<char>('0' + rng.Uniform(0, 10));
      }
      if (rng.Uniform(0, 2) == 0) {
        s += '.';
        int frac = 1 + static_cast<int>(rng.Uniform(0, 8));
        for (int i = 0; i < frac; ++i) {
          s += static_cast<char>('0' + rng.Uniform(0, 10));
        }
      }
      if (rng.Uniform(0, 3) == 0) {
        s += 'e';
        if (rng.Uniform(0, 2) == 0) s += '-';
        s += std::to_string(rng.Uniform(0, 40));
      }
      ExactBuf buf(s);
      ExpectSameResult(k->parse_double(buf.view()), ParseDouble(buf.view()),
                       s);
    }
  }
}

TEST(ParseKernelConvert, DateConformance) {
  const char* cases[] = {
      "1970-01-01", "1969-12-31", "2000-02-29", "1900-02-29", "2100-02-29",
      "2024-02-29", "2023-02-29", "1995-06-17", "0001-01-01", "9999-12-31",
      "1995-13-01", "1995-00-01", "1995-01-00", "1995-01-32", "1995-04-31",
      "1995-06-17 ", " 1995-06-17", "1995/06/17", "19950617", "1995-6-17",
      "1995-06-7", "199a-06-17", "1995-06-1a", "", "1995-06",
      "1995-06-17T00:00:00",
  };
  for (const ParseKernels* k : AvailableKernels()) {
    SCOPED_TRACE(k->name);
    for (const char* c : cases) {
      ExactBuf buf(c);
      ExpectSameResult(k->parse_date(buf.view()), ParseDate(buf.view()), c);
    }
  }
}

// ---------------------------------------------------------------------
// Regression: EOF tails shorter than one SWAR/SIMD lane (satellite 5a)
// ---------------------------------------------------------------------

TEST(ParseKernelRegression, EofTailShorterThanLane) {
  // Files whose final record (no trailing newline) is 1..40 bytes: the
  // kernel's partial-block load must not read past the mapped record. Each
  // record view handed out by LineReader is backed by its internal buffer,
  // so the ASan-visible proof is the ExactBuf re-check below.
  TempDir dir;
  for (int tail = 1; tail <= 40; ++tail) {
    std::string contents = "first,line\n" + std::string(tail, '7');
    std::string path = dir.File("tail" + std::to_string(tail) + ".csv");
    ASSERT_TRUE(WriteStringToFile(path, contents).ok());
    auto file = RandomAccessFile::Open(path);
    ASSERT_TRUE(file.ok());
    for (const ParseKernels* k : AvailableKernels()) {
      SCOPED_TRACE(std::string(k->name) + " tail=" + std::to_string(tail));
      LineReader reader(file->get(), LineReader::kDefaultBufferSize, k);
      RecordRef rec;
      auto has = reader.Next(&rec);
      ASSERT_TRUE(has.ok() && *has);
      EXPECT_EQ(rec.data, "first,line");
      has = reader.Next(&rec);
      ASSERT_TRUE(has.ok() && *has);
      EXPECT_EQ(rec.data, std::string(tail, '7'));
      // The same tail in an exactly-sized heap buffer: overread = ASan trap.
      ExactBuf buf(rec.data);
      CsvDialect dialect;
      ExpectCsvConformance(*k, buf.view(), dialect);
      has = reader.Next(&rec);
      ASSERT_TRUE(has.ok());
      EXPECT_FALSE(*has);
    }
  }
}

// ---------------------------------------------------------------------
// Regression: records straddling LineReader refill boundaries (satellite 5b)
// ---------------------------------------------------------------------

TEST(ParseKernelRegression, QuotedRecordAcrossRefillBoundary) {
  // Records several times the reader's buffer force reassembly across
  // refills; quoted fields are positioned so the open quote falls in one
  // fill and its closing quote in the next. Every kernel must recover the
  // identical records and identical quote-aware tokenization.
  constexpr uint64_t kSmallBuffer = 256;
  CsvDialect quoted;
  quoted.quoting = true;

  std::vector<std::string> records;
  std::string contents;
  Rng rng(4242);
  for (int r = 0; r < 40; ++r) {
    std::string rec;
    int fields = 1 + static_cast<int>(rng.Uniform(0, 6));
    for (int f = 0; f < fields; ++f) {
      if (f > 0) rec += ',';
      int w = static_cast<int>(rng.Uniform(0, 300));
      if (rng.Uniform(0, 2) == 0) {
        rec += '"';
        for (int i = 0; i < w; ++i) {
          rec += (i % 37 == 36) ? ',' : static_cast<char>('a' + i % 26);
        }
        rec += "\"\"";  // escaped quote at the end of the content
        rec += '"';
      } else {
        rec.append(w, static_cast<char>('0' + f));
      }
    }
    records.push_back(rec);
    contents += rec;
    contents += '\n';
  }

  TempDir dir;
  std::string path = dir.File("straddle.csv");
  ASSERT_TRUE(WriteStringToFile(path, contents).ok());
  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());

  for (const ParseKernels* k : AvailableKernels()) {
    SCOPED_TRACE(k->name);
    LineReader reader(file->get(), kSmallBuffer, k);
    RecordRef rec;
    for (size_t r = 0; r < records.size(); ++r) {
      auto has = reader.Next(&rec);
      ASSERT_TRUE(has.ok() && *has) << "record " << r;
      ASSERT_EQ(rec.data, records[r]) << "record " << r;
      ExactBuf buf(rec.data);
      ExpectCsvConformance(*k, buf.view(), quoted);
    }
    auto has = reader.Next(&rec);
    ASSERT_TRUE(has.ok());
    EXPECT_FALSE(*has);
  }
}

// ---------------------------------------------------------------------
// Table sanity
// ---------------------------------------------------------------------

TEST(ParseKernelTables, AvailableKernelsOrderedScalarFirst) {
  auto kernels = AvailableKernels();
  ASSERT_GE(kernels.size(), 2u);  // scalar + SWAR at minimum
  EXPECT_EQ(kernels[0]->level, KernelLevel::kScalar);
  for (size_t i = 1; i < kernels.size(); ++i) {
    EXPECT_GT(static_cast<int>(kernels[i]->level),
              static_cast<int>(kernels[i - 1]->level));
  }
}

TEST(ParseKernelTables, SelectKernelsHonoursForceScalar) {
  EXPECT_EQ(&SelectKernels(true), &ScalarKernels());
  EXPECT_EQ(&SelectKernels(false), &ActiveKernels());
#ifdef NODB_FORCE_SCALAR_KERNELS
  EXPECT_EQ(&ActiveKernels(), &ScalarKernels());
#endif
}

}  // namespace
}  // namespace nodb
