#ifndef NODB_EXEC_TABLE_RUNTIME_H_
#define NODB_EXEC_TABLE_RUNTIME_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>

#include "adaptive/column_access.h"
#include "adaptive/promoted_columns.h"
#include "cache/column_cache.h"
#include "pmap/positional_map.h"
#include "raw/raw_source.h"
#include "stats/table_stats.h"
#include "storage/compact_table.h"
#include "storage/table_heap.h"

namespace nodb {

/// How a registered table is physically stored.
enum class TableStorage : uint8_t {
  kRaw,      // in situ over a raw file, through a RawSourceAdapter
  kHeap,     // loaded into slotted pages (PostgreSQL / MySQL analogues)
  kCompact,  // loaded into packed rows ("DBMS X" analogue)
};

/// Outcome of the snapshot-load attempt made when a raw table is opened
/// with a snapshot directory configured (src/snapshot). Reported per table
/// by Database::ListTables and the server's STATS verb.
enum class SnapshotState : uint8_t {
  kNone,     // no snapshot directory, or no snapshot file found
  kLoaded,   // a valid snapshot restored warm state at open
  kStale,    // snapshot found but its source fingerprint no longer matches
  kCorrupt,  // snapshot found but failed checksum/format validation
};

std::string_view SnapshotStateName(SnapshotState state);

/// Everything the executor needs to scan one table, owned by the engine's
/// catalog. A raw table is an adapter (the only format-specific piece) plus
/// the format-independent adaptive structures — positional map, cache,
/// statistics — that persist *across* queries; they are what turns the
/// straw-man in-situ scan into PostgresRaw, for any format that plugs in.
struct TableRuntime {
  std::string name;
  Schema schema;
  TableStorage storage = TableStorage::kRaw;

  // --- raw (in-situ) ---
  std::unique_ptr<RawSourceAdapter> adapter;  // file kept open across queries
  std::unique_ptr<PositionalMap> pmap;        // null when disabled
  std::unique_ptr<ColumnCache> cache;         // null when disabled

  // --- loaded ---
  std::unique_ptr<TableHeap> heap;
  std::unique_ptr<CompactTable> compact;

  // --- workload-driven auto-promotion (raw tables; src/adaptive) ---
  /// Per-column access accounting fed by the scans; always present for raw
  /// tables (cheap relaxed atomics) so STATS and snapshots can report it
  /// even when promotion itself is disabled.
  std::unique_ptr<ColumnAccessTracker> access;
  /// Promoted hot-column store; null unless EngineConfig::promotion.enabled.
  std::unique_ptr<PromotedColumns> promoted;

  // --- adaptive statistics (raw tables; loaded tables get exact stats at
  //     load time) ---
  std::unique_ptr<TableStats> stats;
  /// Atomic: set by whichever scan first completes while other queries'
  /// planners read it (one table may be queried from many threads).
  std::atomic<bool> stats_populated{false};

  /// Exact row count when known (loaded tables, or raw tables after their
  /// first complete scan); negative otherwise. Atomic for the same reason
  /// as stats_populated.
  std::atomic<double> known_row_count{-1};

  /// Per-table override of EngineConfig::scan_threads (Database::Open
  /// options); 0 means "use the engine default".
  int scan_threads_override = 0;

  // --- warm-restart snapshots (raw tables; src/snapshot) ---
  /// Directory snapshots of this table load from / save to; empty when the
  /// feature is off for this table. Set once at Open.
  std::string snapshot_dir;
  /// Outcome of the load attempt at Open (atomics: ListTables and STATS may
  /// read while the background writer saves).
  std::atomic<SnapshotState> snapshot_state{SnapshotState::kNone};
  /// On-disk size of the snapshot last loaded or written, in bytes.
  std::atomic<uint64_t> snapshot_bytes{0};
  /// Warm-state signature at the last successful save; the background
  /// writer skips tables whose signature hasn't moved.
  std::atomic<uint64_t> snapshot_signature{0};
};

}  // namespace nodb

#endif  // NODB_EXEC_TABLE_RUNTIME_H_
