#ifndef NODB_JSON_JSONL_ADAPTER_H_
#define NODB_JSON_JSONL_ADAPTER_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "raw/adapter_registry.h"
#include "raw/raw_source.h"

namespace nodb {

struct ParseKernels;

/// RawSourceAdapter over JSON Lines (one top-level object per line), with a
/// fixed-schema projection of top-level fields: each schema column maps to
/// one top-level key; a missing key reads as NULL, keys outside the schema
/// are skipped, and nested values are tokenized over but not projected.
///
/// The third adapter, and the proof that the API is real: JSON Lines ships
/// none of its own adaptive machinery, yet gets positional maps (the value
/// offset of each projected key, per tuple), binary caching, adaptive
/// statistics and batched cursors through the shared RawScanOp path. Keys
/// may appear in any order per record, so anchored incremental tokenizing
/// does not apply: FindForward walks the whole object once per record,
/// reporting every projected field through the PositionSink — warm queries
/// then jump straight to cached value offsets and never re-tokenize.
class JsonlAdapter final : public RawSourceAdapter {
 public:
  /// With no `schema`, the schema is inferred from the leading records'
  /// top-level scalar fields (string/int/double/bool; ISO "YYYY-MM-DD"
  /// strings become dates), widening types across records — so a double
  /// column whose first value happens to be whole still infers as double.
  /// Inference samples a bounded prefix, so it is a heuristic by design: a
  /// column whose sampled values all look like dates (or ints) but later
  /// holds something wider will fail loudly at query time with
  /// InvalidArgument — declare a schema for authoritative types.
  /// `file` may be a pre-opened handle for `path` to adopt (else null).
  /// `kernels` selects the parsing-kernel table (null = ActiveKernels());
  /// pass &ScalarKernels() for the scalar reference path.
  static Result<std::unique_ptr<JsonlAdapter>> Make(
      const std::string& path, std::optional<Schema> schema,
      std::unique_ptr<RandomAccessFile> file = nullptr,
      const ParseKernels* kernels = nullptr);

  std::string_view format_name() const override { return "jsonl"; }
  const RawTraits& traits() const override { return traits_; }
  const Schema& schema() const override { return schema_; }
  const std::string& path() const override { return path_; }
  const RandomAccessFile* file() const override { return file_.get(); }

  Result<std::unique_ptr<RecordCursor>> OpenCursor() const override;
  Result<uint64_t> FindRecordBoundary(uint64_t offset) const override;

  uint32_t FindForward(const RecordRef& rec, int from_attr, uint32_t from_pos,
                       int to_attr, const PositionSink& sink) const override;
  uint32_t FieldEnd(const RecordRef& rec, int attr, uint32_t pos,
                    uint32_t next_attr_pos) const override;
  Result<Value> ParseField(const RecordRef& rec, int attr, uint32_t pos,
                           uint32_t end) const override;

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  JsonlAdapter(std::string path, Schema schema,
               std::unique_ptr<RandomAccessFile> file,
               const ParseKernels* kernels);

  std::string path_;
  Schema schema_;
  std::unique_ptr<RandomAccessFile> file_;  // kept open across queries
  const ParseKernels* kernels_;             // never null
  RawTraits traits_;
  /// Top-level key -> schema attribute (heterogeneous lookup: no per-probe
  /// allocation while tokenizing).
  std::unordered_map<std::string, int, StringHash, std::equal_to<>>
      key_to_attr_;
};

/// Factory + sniffer ("jsonl"; .jsonl/.ndjson extension, else a line
/// starting with '{').
std::unique_ptr<AdapterFactory> MakeJsonlAdapterFactory();

}  // namespace nodb

#endif  // NODB_JSON_JSONL_ADAPTER_H_
