#include "storage/loader.h"

#include <vector>

#include "csv/parser.h"
#include "raw/line_reader.h"
#include "raw/parse_kernels.h"
#include "io/file.h"
#include "util/stopwatch.h"

namespace nodb {

namespace {

/// Shared tokenize-and-parse loop; calls `append(row)` per record.
template <typename AppendFn>
Result<LoadResult> LoadCsv(const std::string& csv_path,
                           const CsvDialect& dialect, const Schema& schema,
                           const ParseKernels* kernels, AppendFn&& append) {
  if (kernels == nullptr) kernels = &ActiveKernels();
  Stopwatch timer;
  NODB_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                        RandomAccessFile::Open(csv_path));
  LineReader scanner(file.get(), LineReader::kDefaultBufferSize, kernels);
  RecordRef line;
  int ncols = schema.num_columns();
  std::vector<uint32_t> starts(ncols);
  Row row(ncols);
  LoadResult result;

  bool skip_header = dialect.has_header;
  while (true) {
    NODB_ASSIGN_OR_RETURN(bool has, scanner.Next(&line));
    if (!has) break;
    if (skip_header) {
      skip_header = false;
      continue;
    }
    int found =
        kernels->csv_tokenize(line.data, dialect, ncols - 1, starts.data());
    for (int c = 0; c < ncols; ++c) {
      if (c >= found) {
        row[c] = Value::Null(schema.column(c).type);
        continue;
      }
      uint32_t begin = starts[c];
      uint32_t end = c + 1 < found
                         ? starts[c + 1] - 1
                         : kernels->csv_field_end(line.data, dialect, begin);
      NODB_ASSIGN_OR_RETURN(
          row[c], ParseCsvField(line.data.substr(begin, end - begin),
                                schema.column(c).type, dialect, *kernels));
    }
    NODB_RETURN_IF_ERROR(append(row));
    ++result.rows;
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

Result<LoadResult> LoadCsvToHeap(const std::string& csv_path,
                                 const CsvDialect& dialect, TableHeap* heap,
                                 const ParseKernels* kernels) {
  NODB_ASSIGN_OR_RETURN(
      LoadResult result,
      LoadCsv(csv_path, dialect, heap->schema(), kernels,
              [heap](const Row& row) { return heap->Append(row); }));
  Stopwatch finish;
  NODB_RETURN_IF_ERROR(heap->FinishLoad());
  result.seconds += finish.ElapsedSeconds();
  return result;
}

Result<LoadResult> LoadCsvToCompact(const std::string& csv_path,
                                    const CsvDialect& dialect,
                                    CompactTable* table,
                                    const ParseKernels* kernels) {
  NODB_ASSIGN_OR_RETURN(
      LoadResult result,
      LoadCsv(csv_path, dialect, table->schema(), kernels,
              [table](const Row& row) { return table->Append(row); }));
  Stopwatch finish;
  NODB_RETURN_IF_ERROR(table->FinishLoad());
  result.seconds += finish.ElapsedSeconds();
  return result;
}

}  // namespace nodb
