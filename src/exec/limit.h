#ifndef NODB_EXEC_LIMIT_H_
#define NODB_EXEC_LIMIT_H_

#include <cstdint>

#include "exec/operator.h"

namespace nodb {

/// Passes through the first `limit` rows.
class LimitOp final : public Operator {
 public:
  LimitOp(OperatorPtr child, int64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Row* row) override {
    if (produced_ >= limit_) return false;
    NODB_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    ++produced_;
    return true;
  }

  Status Close() override { return child_->Close(); }

 private:
  OperatorPtr child_;
  int64_t limit_;
  int64_t produced_ = 0;
};

}  // namespace nodb

#endif  // NODB_EXEC_LIMIT_H_
