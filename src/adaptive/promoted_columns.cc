#include "adaptive/promoted_columns.h"

namespace nodb {

PromotedColumns::PromotedColumns(int num_attrs, int tuples_per_chunk)
    : num_attrs_(num_attrs),
      tuples_per_chunk_(tuples_per_chunk),
      chunks_(num_attrs),
      info_(num_attrs),
      flags_(new std::atomic<bool>[num_attrs]) {
  for (int a = 0; a < num_attrs; ++a) flags_[a].store(false);
}

PromotedColumns::Chunk PromotedColumns::ChunkFor(uint64_t stripe,
                                                 int attr) const {
  if (!IsPromoted(attr)) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<Chunk>& col = chunks_[attr];
  if (stripe >= col.size()) return nullptr;
  return col[stripe];
}

int PromotedColumns::promoted_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const ColumnInfo& i : info_) n += i.promoted ? 1 : 0;
  return n;
}

std::vector<int> PromotedColumns::promoted_attrs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> out;
  for (int a = 0; a < num_attrs_; ++a) {
    if (info_[a].promoted) out.push_back(a);
  }
  return out;
}

std::vector<PromotedColumns::ColumnInfo> PromotedColumns::InfoSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return info_;
}

PromotedColumns::Counters PromotedColumns::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void PromotedColumns::Install(int attr, std::vector<Chunk> chunks,
                              uint64_t rows, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ColumnInfo& info = info_[attr];
  if (info.promoted) {
    memory_bytes_.fetch_sub(info.bytes, std::memory_order_relaxed);
  }
  chunks_[attr] = std::move(chunks);
  info.promoted = true;
  info.bytes = bytes;
  memory_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  // All columns cover the same file; row_count only ever moves 0 -> n.
  row_count_.store(rows, std::memory_order_release);
  ++counters_.promotions;
  flags_[attr].store(true, std::memory_order_release);
}

uint64_t PromotedColumns::Demote(int attr) {
  std::lock_guard<std::mutex> lock(mu_);
  ColumnInfo& info = info_[attr];
  if (!info.promoted) return 0;
  // Flip the fast-path flag first so new readers fall back to the raw path
  // before the chunks go away (readers mid-stripe keep their snapshots).
  flags_[attr].store(false, std::memory_order_release);
  uint64_t freed = info.bytes;
  chunks_[attr].clear();
  chunks_[attr].shrink_to_fit();
  memory_bytes_.fetch_sub(freed, std::memory_order_relaxed);
  info = ColumnInfo{};
  ++counters_.demotions;
  return freed;
}

void PromotedColumns::SetMarks(int attr, uint64_t work_mark,
                               uint64_t served_mark) {
  std::lock_guard<std::mutex> lock(mu_);
  info_[attr].work_mark = work_mark;
  info_[attr].served_mark = served_mark;
}

}  // namespace nodb
