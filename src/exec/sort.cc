#include "exec/sort.h"

#include <algorithm>

namespace nodb {

namespace {

/// <0, 0, >0 with SQL NULLS LAST semantics (for ascending order).
int CompareNullable(const Value& a, const Value& b) {
  if (a.is_null() && b.is_null()) return 0;
  if (a.is_null()) return 1;
  if (b.is_null()) return -1;
  return a.Compare(b);
}

}  // namespace

Status SortOp::Open() {
  NODB_RETURN_IF_ERROR(child_->Open());
  RowBatch batch(batch_size_);
  while (true) {
    NODB_RETURN_IF_ERROR(CheckControl(control_));
    NODB_ASSIGN_OR_RETURN(size_t n, child_->Next(&batch));
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) {
      rows_.push_back(std::move(batch[i]));
    }
  }
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (const BoundOrderKey& k : *keys_) {
                       int c = CompareNullable(a[k.select_index],
                                               b[k.select_index]);
                       if (c != 0) return k.desc ? c > 0 : c < 0;
                     }
                     return false;
                   });
  return Status::OK();
}

Result<size_t> SortOp::Next(RowBatch* batch) {
  batch->Clear();
  while (!batch->full() && next_ < rows_.size()) {
    batch->PushBack(std::move(rows_[next_++]));
  }
  return batch->size();
}

}  // namespace nodb
