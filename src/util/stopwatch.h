#ifndef NODB_UTIL_STOPWATCH_H_
#define NODB_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace nodb {

/// Wall-clock stopwatch used by the benchmark harness and query timing.
/// Starts running on construction; `Restart()` resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in integer microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nodb

#endif  // NODB_UTIL_STOPWATCH_H_
