#include <gtest/gtest.h>

#include <map>
#include <set>

#include "engine/engines.h"
#include "util/fs_util.h"
#include "workload/tpch_gen.h"
#include "workload/tpch_queries.h"

namespace nodb {
namespace {

/// Generates one tiny TPC-H dataset per test binary run.
class TpchEnv : public ::testing::Environment {
 public:
  void SetUp() override {
    dir_ = new TempDir();
    TpchSpec spec;
    spec.scale_factor = 0.002;  // ~12k lineitem rows: fast but non-trivial
    ASSERT_TRUE(GenerateTpch(dir_->path(), spec).ok());
  }
  void TearDown() override { delete dir_; }

  static std::string Dir() { return dir_->path(); }

 private:
  static TempDir* dir_;
};
TempDir* TpchEnv::dir_ = nullptr;

const ::testing::Environment* const kEnv =
    ::testing::AddGlobalTestEnvironment(new TpchEnv);

std::unique_ptr<Database> RawEngineWithTables(
    const std::vector<std::string>& tables,
    SystemUnderTest sut = SystemUnderTest::kPostgresRawPMC) {
  auto db = MakeEngine(sut);
  for (const std::string& t : tables) {
    EXPECT_TRUE(
        db->RegisterCsv(t, TpchEnv::Dir() + "/" + t + ".csv", TpchSchema(t))
            .ok());
  }
  return db;
}

std::unique_ptr<Database> LoadedEngineWithTables(
    const std::vector<std::string>& tables) {
  auto db = MakeEngine(SystemUnderTest::kPostgreSQL);
  for (const std::string& t : tables) {
    auto load =
        db->LoadCsv(t, TpchEnv::Dir() + "/" + t + ".csv", TpchSchema(t));
    EXPECT_TRUE(load.ok()) << load.status();
  }
  return db;
}

// ---------------------------------------------------------------------
// Generator sanity
// ---------------------------------------------------------------------

TEST(TpchGenTest, AllFilesExistWithPlausibleSizes) {
  for (const std::string& t : TpchTableNames()) {
    std::string path = TpchEnv::Dir() + "/" + t + ".csv";
    auto size = FileSizeOf(path);
    ASSERT_TRUE(size.ok()) << path;
    EXPECT_GT(*size, 10u) << path;
  }
}

TEST(TpchGenTest, RowCountsMatchSpecShape) {
  auto db = RawEngineWithTables(TpchTableNames());
  std::map<std::string, int64_t> counts;
  for (const std::string& t : TpchTableNames()) {
    auto result = db->Execute("SELECT COUNT(*) FROM " + t);
    ASSERT_TRUE(result.ok()) << t << ": " << result.status();
    counts[t] = result->rows[0][0].int64();
  }
  EXPECT_EQ(counts["region"], 5);
  EXPECT_EQ(counts["nation"], 25);
  EXPECT_EQ(counts["supplier"], 20);    // 10000 * 0.002
  EXPECT_EQ(counts["customer"], 300);   // 150000 * 0.002
  EXPECT_EQ(counts["part"], 400);       // 200000 * 0.002
  EXPECT_EQ(counts["partsupp"], 1600);  // 4 per part
  EXPECT_EQ(counts["orders"], 3000);    // 1500000 * 0.002
  // lineitem: 1-7 lines per order, expectation ~4.
  EXPECT_GT(counts["lineitem"], 3 * counts["orders"]);
  EXPECT_LT(counts["lineitem"], 5 * counts["orders"]);
}

TEST(TpchGenTest, ForeignKeysResolve) {
  auto db = RawEngineWithTables({"orders", "customer", "lineitem"});
  // Every order's customer exists.
  auto orphans = db->Execute(
      "SELECT COUNT(*) FROM orders WHERE NOT EXISTS "
      "(SELECT * FROM customer WHERE c_custkey = o_custkey)");
  ASSERT_TRUE(orphans.ok()) << orphans.status();
  EXPECT_EQ(orphans->rows[0][0].int64(), 0);
  // Every lineitem's order exists.
  auto li_orphans = db->Execute(
      "SELECT COUNT(*) FROM lineitem WHERE NOT EXISTS "
      "(SELECT * FROM orders WHERE o_orderkey = l_orderkey)");
  ASSERT_TRUE(li_orphans.ok());
  EXPECT_EQ(li_orphans->rows[0][0].int64(), 0);
}

TEST(TpchGenTest, ValueDomains) {
  auto db = RawEngineWithTables({"lineitem", "part", "orders"});
  auto quantity = db->Execute(
      "SELECT MIN(l_quantity), MAX(l_quantity), MIN(l_discount), "
      "MAX(l_discount) FROM lineitem");
  ASSERT_TRUE(quantity.ok());
  EXPECT_GE(quantity->rows[0][0].f64(), 1.0);
  EXPECT_LE(quantity->rows[0][1].f64(), 50.0);
  EXPECT_GE(quantity->rows[0][2].f64(), 0.0);
  EXPECT_LE(quantity->rows[0][3].f64(), 0.10);

  auto dates = db->Execute(
      "SELECT MIN(o_orderdate), MAX(o_orderdate) FROM orders");
  ASSERT_TRUE(dates.ok());
  EXPECT_GE(dates->rows[0][0].ToString(), "1992-01-01");
  EXPECT_LE(dates->rows[0][1].ToString(), "1998-12-31");

  // Return flags take exactly the three spec values.
  auto flags = db->Execute(
      "SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag");
  ASSERT_TRUE(flags.ok());
  std::set<std::string> seen;
  for (const Row& row : flags->rows) seen.insert(row[0].str());
  EXPECT_EQ(seen, (std::set<std::string>{"A", "N", "R"}));

  // PROMO parts exist (Q14 depends on them): ~1/6 of types.
  auto promo = db->Execute(
      "SELECT COUNT(*) FROM part WHERE p_type LIKE 'PROMO%'");
  ASSERT_TRUE(promo.ok());
  EXPECT_GT(promo->rows[0][0].int64(), 20);
  EXPECT_LT(promo->rows[0][0].int64(), 140);
}

// ---------------------------------------------------------------------
// Queries: raw in-situ vs loaded must agree; results must be non-degenerate
// ---------------------------------------------------------------------

class TpchQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchQueryTest, RawAndLoadedAgree) {
  int q = GetParam();
  std::string sql = TpchQuery(q);
  ASSERT_FALSE(sql.empty());
  auto tables = TpchQueryTables(q);

  auto raw = RawEngineWithTables(tables);
  auto external = RawEngineWithTables(tables, SystemUnderTest::kExternalFiles);
  auto loaded = LoadedEngineWithTables(tables);

  QueryResult first;
  for (int repeat = 0; repeat < 2; ++repeat) {  // warm adaptive structures
    auto raw_result = raw->Execute(sql);
    ASSERT_TRUE(raw_result.ok()) << "Q" << q << ": " << raw_result.status();
    auto loaded_result = loaded->Execute(sql);
    ASSERT_TRUE(loaded_result.ok())
        << "Q" << q << ": " << loaded_result.status();
    auto external_result = external->Execute(sql);
    ASSERT_TRUE(external_result.ok())
        << "Q" << q << ": " << external_result.status();
    EXPECT_EQ(raw_result->Canonical(true), loaded_result->Canonical(true))
        << "Q" << q << " repeat " << repeat;
    EXPECT_EQ(raw_result->Canonical(true), external_result->Canonical(true))
        << "Q" << q << " (external files) repeat " << repeat;
    if (repeat == 0) first = std::move(*raw_result);
  }
  // Non-degenerate results per query.
  switch (q) {
    case 1:
      EXPECT_GE(first.rows.size(), 3u);   // returnflag x linestatus groups
      EXPECT_LE(first.rows.size(), 6u);
      break;
    case 3:
      EXPECT_GT(first.rows.size(), 0u);
      EXPECT_LE(first.rows.size(), 10u);  // LIMIT 10
      break;
    case 4:
      EXPECT_EQ(first.rows.size(), 5u);   // five order priorities
      break;
    case 6:
      ASSERT_EQ(first.rows.size(), 1u);
      EXPECT_GT(first.rows[0][0].f64(), 0.0);
      break;
    case 10:
      EXPECT_GT(first.rows.size(), 0u);
      EXPECT_LE(first.rows.size(), 20u);
      break;
    case 12:
      EXPECT_EQ(first.rows.size(), 2u);   // MAIL, SHIP
      break;
    case 14: {
      ASSERT_EQ(first.rows.size(), 1u);
      double pct = first.rows[0][0].f64();
      EXPECT_GT(pct, 1.0);    // PROMO share in percent
      EXPECT_LT(pct, 60.0);
      break;
    }
    case 19:
      ASSERT_EQ(first.rows.size(), 1u);
      break;
    default:
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryTest,
                         ::testing::ValuesIn(TpchQueryNumbers()),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(TpchMetaTest, QueryTextAvailability) {
  for (int q : TpchQueryNumbers()) {
    EXPECT_FALSE(TpchQuery(q).empty()) << q;
    EXPECT_FALSE(TpchQueryTables(q).empty()) << q;
  }
  EXPECT_TRUE(TpchQuery(2).empty());
  EXPECT_TRUE(TpchQueryTables(2).empty());
}

TEST(TpchMetaTest, SchemasHaveSpecArity) {
  EXPECT_EQ(TpchSchema("lineitem").num_columns(), 16);
  EXPECT_EQ(TpchSchema("orders").num_columns(), 9);
  EXPECT_EQ(TpchSchema("customer").num_columns(), 8);
  EXPECT_EQ(TpchSchema("part").num_columns(), 9);
  EXPECT_EQ(TpchSchema("supplier").num_columns(), 7);
  EXPECT_EQ(TpchSchema("partsupp").num_columns(), 5);
  EXPECT_EQ(TpchSchema("nation").num_columns(), 4);
  EXPECT_EQ(TpchSchema("region").num_columns(), 3);
  EXPECT_EQ(TpchSchema("bogus").num_columns(), 0);
}

}  // namespace
}  // namespace nodb
