#ifndef NODB_EXEC_FITS_SCAN_H_
#define NODB_EXEC_FITS_SCAN_H_

#include <memory>
#include <vector>

#include "exec/insitu_scan.h"
#include "exec/operator.h"
#include "exec/table_runtime.h"
#include "io/buffered_reader.h"
#include "plan/logical_plan.h"

namespace nodb {

/// In-situ scan over a FITS binary table (paper §5.3). Field positions are
/// arithmetic (fixed-width rows), so there is no tokenizing and no
/// positional map; the adaptive *cache* carries all cross-query benefit —
/// which is exactly the contrast with CSV the paper draws ("while parsing
/// may not be required ... techniques such as caching become more
/// important").
class FitsScanOp final : public Operator {
 public:
  FitsScanOp(TableRuntime* runtime, const PlannedScan* scan,
             int working_width, InSituOptions options);

  Status Open() override;
  Result<size_t> Next(RowBatch* batch) override;
  Status Close() override;

 private:
  Status LoadStripe();
  /// Next recycled output slot (see InSituScanOp::OutSlot).
  Row& OutSlot() {
    if (out_size_ == out_rows_.size()) out_rows_.emplace_back();
    return out_rows_[out_size_];
  }

  TableRuntime* runtime_;
  const PlannedScan* scan_;
  int working_width_;
  InSituOptions opts_;

  int ncols_ = 0;
  int tuples_per_stripe_ = InSituScanOp::kDefaultStripe;
  std::vector<int> phase1_attrs_;
  std::vector<int> phase2_attrs_;
  std::vector<int> output_attrs_;

  std::unique_ptr<BufferedReader> reader_;
  uint64_t next_tuple_ = 0;
  bool eof_ = false;
  // Row recycler; see the InSituScanOp member of the same name.
  std::vector<Row> out_rows_;
  size_t out_size_ = 0;
  size_t out_idx_ = 0;
};

}  // namespace nodb

#endif  // NODB_EXEC_FITS_SCAN_H_
