#include "util/str_conv.h"

#include <charconv>
#include <cstdio>

namespace nodb {

namespace {

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// True for leap years in the proleptic Gregorian calendar.
bool IsLeap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static constexpr int kDays[12] = {31, 28, 31, 30, 31, 30,
                                    31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeap(year)) return 29;
  return kDays[month - 1];
}

}  // namespace

Result<int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty integer");
  int64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc() || ptr != last) {
    return Status::InvalidArgument("bad integer: '" + std::string(text) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty double");
  double value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    return Status::InvalidArgument("bad double: '" + std::string(text) + "'");
  }
  return value;
}

Result<bool> ParseBool(std::string_view text) {
  if (text == "1" || text == "t" || text == "T" || text == "true" ||
      text == "TRUE" || text == "True") {
    return true;
  }
  if (text == "0" || text == "f" || text == "F" || text == "false" ||
      text == "FALSE" || text == "False") {
    return false;
  }
  return Status::InvalidArgument("bad bool: '" + std::string(text) + "'");
}

int32_t CivilToDays(int year, int month, int day) {
  // Howard Hinnant's days_from_civil algorithm (public domain).
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);  // [0, 399]
  const unsigned doy =
      (153 * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;                          // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0, 146096]
  return era * 146097 + static_cast<int>(doe) - 719468;
}

void DaysToCivil(int32_t days, int* year, int* month, int* day) {
  // Howard Hinnant's civil_from_days algorithm (public domain).
  int32_t z = days + 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  *year = y + (m <= 2);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Result<int32_t> ParseDate(std::string_view text) {
  // Strict "YYYY-MM-DD" (4-2-2 digits).
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') {
    return Status::InvalidArgument("bad date: '" + std::string(text) + "'");
  }
  for (int i : {0, 1, 2, 3, 5, 6, 8, 9}) {
    if (!IsDigit(text[i])) {
      return Status::InvalidArgument("bad date: '" + std::string(text) + "'");
    }
  }
  int year = (text[0] - '0') * 1000 + (text[1] - '0') * 100 +
             (text[2] - '0') * 10 + (text[3] - '0');
  int month = (text[5] - '0') * 10 + (text[6] - '0');
  int day = (text[8] - '0') * 10 + (text[9] - '0');
  if (month < 1 || month > 12 || day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("invalid date: '" + std::string(text) +
                                   "'");
  }
  return CivilToDays(year, month, day);
}

std::string FormatDate(int32_t days_since_epoch) {
  int year, month, day;
  DaysToCivil(days_since_epoch, &year, &month, &day);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return std::string(buf);
}

void AppendInt64(std::string* out, int64_t v) {
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out->append(buf, ptr);
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out->append(buf, ptr);
}

bool LooksLikeInt(std::string_view text) {
  if (text.empty()) return false;
  size_t i = (text[0] == '-' || text[0] == '+') ? 1 : 0;
  if (i == text.size()) return false;
  for (; i < text.size(); ++i) {
    if (!IsDigit(text[i])) return false;
  }
  return true;
}

}  // namespace nodb
