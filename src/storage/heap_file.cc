#include "storage/heap_file.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <vector>

namespace nodb {

Result<std::unique_ptr<HeapFile>> HeapFile::Create(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("create heap '" + path + "': " + strerror(errno));
  }
  return std::unique_ptr<HeapFile>(new HeapFile(fd, 0, path));
}

Result<std::unique_ptr<HeapFile>> HeapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IOError("open heap '" + path + "': " + strerror(errno));
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat heap '" + path + "': " + strerror(errno));
  }
  if (st.st_size % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption("heap file size not page-aligned: " + path);
  }
  return std::unique_ptr<HeapFile>(new HeapFile(
      fd, static_cast<uint32_t>(st.st_size / kPageSize), path));
}

HeapFile::~HeapFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint32_t> HeapFile::AllocatePage() {
  static const std::vector<char> kZeros(kPageSize, 0);
  uint32_t id = page_count_;
  off_t off = static_cast<off_t>(id) * kPageSize;
  ssize_t n = ::pwrite(fd_, kZeros.data(), kPageSize, off);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("allocate page: " + std::string(strerror(errno)));
  }
  ++page_count_;
  return id;
}

Status HeapFile::ReadPage(uint32_t page_id, char* frame) const {
  if (page_id >= page_count_) {
    return Status::OutOfRange("page id out of range");
  }
  off_t off = static_cast<off_t>(page_id) * kPageSize;
  ssize_t n = ::pread(fd_, frame, kPageSize, off);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("read page: " + std::string(strerror(errno)));
  }
  bytes_read_ += kPageSize;
  return Status::OK();
}

Status HeapFile::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Status HeapFile::WritePage(uint32_t page_id, const char* frame) {
  if (page_id >= page_count_) {
    return Status::OutOfRange("page id out of range");
  }
  off_t off = static_cast<off_t>(page_id) * kPageSize;
  ssize_t n = ::pwrite(fd_, frame, kPageSize, off);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("write page: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

}  // namespace nodb
