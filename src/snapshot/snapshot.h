#ifndef NODB_SNAPSHOT_SNAPSHOT_H_
#define NODB_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "exec/table_runtime.h"
#include "util/result.h"
#include "util/status.h"

namespace nodb {

/// Persistent auxiliary-structure snapshots: warm restarts for the adaptive
/// structures (positional map, column cache, statistics) a raw table earns
/// during its lifetime. NoDB's whole advantage is that these structures
/// amortize raw-file cost across queries; without persistence they die with
/// the process and every restart re-pays full cold-scan cost. A snapshot is
/// a versioned, checksummed sidecar file — one per table, in a directory the
/// engine is pointed at — that serializes the structures' contents keyed by
/// a fingerprint of the raw source file, so a mutated or replaced source
/// invalidates cleanly and the engine falls back to the cold path.
///
/// Everything here is *auxiliary*: a missing, stale, truncated or bit-flipped
/// snapshot only costs re-tokenization, never correctness. Every load outcome
/// short of "loaded" degrades to exactly the behaviour of a never-snapshotted
/// engine.
///
/// On-disk layout (fixed-width little-endian fields, as the spill files):
///
///   header   magic "NODBSNAP" | u32 version | u32 flags |
///            u64 payload_size | u64 payload_checksum | u64 reserved
///   payload  source fingerprint (path, size, mtime_ns, head/tail hash)
///            format name + schema (must match the open table exactly)
///            tuples_per_chunk (stripe addressing must agree)
///            positional-map section  (spine + per-stripe position matrix)
///            column-cache section    (typed value chunks)
///            statistics section      (finalized AttrStats + row count)
///
/// The checksum covers the entire payload, so truncation and bit flips are
/// detected before any field is interpreted; the decoder additionally bounds-
/// checks every read and validates attribute indices and types against the
/// live schema, so a snapshot from a different engine version degrades to
/// the cold path instead of crashing.
///
/// Crash safety: writers serialize to a buffer, write `<path>.tmp.<pid>`,
/// fsync, then rename(2) into place — a reader only ever sees the previous
/// complete snapshot or the new complete snapshot, never a partial write.

/// Identity of a raw source file at snapshot time. A snapshot is valid only
/// if *all* fields still match at load time — deliberately conservative
/// (touching the file invalidates warm state), because stale positions must
/// never produce wrong results. The head/tail sample hashes catch in-place
/// edits that preserve size, at the cost of two 64 KiB reads.
struct SourceFingerprint {
  std::string path;
  uint64_t size = 0;
  int64_t mtime_ns = 0;
  uint64_t head_hash = 0;  // first 64 KiB
  uint64_t tail_hash = 0;  // last 64 KiB

  bool operator==(const SourceFingerprint& other) const = default;
};

/// Fingerprints `path` via a private file handle (so snapshot validation
/// does not count against the table's raw-scan I/O accounting).
Result<SourceFingerprint> FingerprintSource(const std::string& path);

/// How a load attempt ended. Only kLoaded restored any state; the other
/// outcomes leave the table exactly as a cold open would.
enum class SnapshotLoadOutcome : uint8_t {
  kLoaded,
  kMissing,  // no snapshot file (or the table has no adaptive structures)
  kStale,    // fingerprint / schema / stripe-size mismatch
  kCorrupt,  // bad magic, bad checksum, or undecodable payload
};

struct SnapshotLoadInfo {
  SnapshotLoadOutcome outcome = SnapshotLoadOutcome::kMissing;
  /// Size of the snapshot file on disk (0 when missing).
  uint64_t bytes = 0;
  /// Human-readable reason for non-loaded outcomes (logs and tests).
  std::string detail;
};

struct SnapshotWriteInfo {
  std::string path;
  uint64_t bytes = 0;
};

/// Snapshot file path for table `name` under `dir`.
std::string SnapshotPathFor(const std::string& dir, const std::string& name);

/// Checksum used for both the payload and the fingerprint sample hashes:
/// word-at-a-time FNV-style mix, sensitive to any bit flip and to length.
uint64_t SnapshotChecksum(const char* data, size_t n);

/// Serializes `rt`'s current warm state (whatever structures exist) into
/// `rt->snapshot_dir` with the write-temp + fsync + rename protocol. The
/// structures are exported through their own locks (short critical sections;
/// live scans are not blocked for the duration of the disk write). Callers
/// must serialize concurrent writes for one table (Database does).
Result<SnapshotWriteInfo> WriteTableSnapshot(TableRuntime* rt);

/// Attempts to restore warm state into `rt` from `rt->snapshot_dir`. On
/// success, positions are installed through PositionalMap::InstallFragment
/// under a fresh epoch — the same entry point live scans use — so budget
/// admission and epoch protection hold (an over-budget snapshot is partially
/// declined, never force-installed); cache chunks and statistics follow, and
/// the table's row count becomes known. Must be called before the table
/// serves queries (Database::Open does). Never returns an error: every
/// failure mode is a typed outcome that leaves cold-path behaviour intact.
SnapshotLoadInfo LoadTableSnapshot(TableRuntime* rt);

/// Cheap signature of the table's warm state (structure counters + row
/// count). The background snapshot writer persists a table only when its
/// signature moved since the last save.
uint64_t WarmStateSignature(const TableRuntime& rt);

}  // namespace nodb

#endif  // NODB_SNAPSHOT_SNAPSHOT_H_
