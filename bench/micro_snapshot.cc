// Warm-restart benchmark: what does a persisted auxiliary-structure
// snapshot buy at process start? Three engine lifetimes over the same
// 1M-row micro CSV:
//
//   1. cold    — fresh engine, no snapshot: the first selective query pays
//                the full in-situ tokenize/parse; a full-width scan then
//                warms the positional map, column cache and statistics.
//   2. save    — a snapshot-capable engine warms the same way and persists
//                its structures via Database::Snapshot (cost reported).
//   3. reopen  — a fresh engine whose Open() loads the snapshot: the same
//                selective query must run entirely from the restored cache
//                (zero raw-file bytes read) at warm-scan latency.
//
// Two restart metrics, both reported and both in the gate:
//
//   * open_to_first_result: register table + run the selective scan once
//     (drained). The snapshot path pays snapshot load instead of raw parse.
//   * open_to_warm_state: time until the engine is fully warm — cold that
//     is open + cold scan + full-width warming scan; with a snapshot it is
//     just open, because load restores map, cache and stats.
//
// Writes BENCH_snapshot.json.
//
//   ./bench_micro_snapshot [--scale=F] [--seed=N]

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

uint64_t RawBytesRead(Database* db) {
  for (const TableInfo& info : db->ListTables()) {
    if (info.name == "t") return info.bytes_read;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);

  MicroDataSpec spec;
  spec.rows = static_cast<uint64_t>(1000000 * args.scale);
  spec.cols = 5;
  spec.seed = args.seed;
  std::string csv = MicroCsv(spec, "snapshot");
  std::string snap_dir = DataDir()->File("snaps");

  // The standard selective scan (2 of 5 attributes, ~10% of rows) and the
  // full-width warming scan that touches every attribute.
  const std::string selective = "SELECT a2 FROM t WHERE a4 >= 900000000";
  const std::string full_width =
      "SELECT SUM(a1), SUM(a2), SUM(a3), SUM(a4), SUM(a5) FROM t";

  EngineConfig cold_config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  EngineConfig snap_config = cold_config;
  snap_config.snapshot_dir = snap_dir;

  // --- lifetime 1: cold engine, no snapshot anywhere -----------------------
  double cold_first_s, cold_warm_state_s, cold_warm_query_s;
  uint64_t cold_bytes;
  {
    Database db(cold_config);
    const auto t0 = std::chrono::steady_clock::now();
    Status s = db.RegisterCsv("t", csv, MicroSchema(spec));
    if (!s.ok()) {
      fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      return 1;
    }
    (void)RunQuery(&db, selective);
    cold_first_s = Seconds(t0);
    (void)RunQuery(&db, full_width);
    cold_warm_state_s = Seconds(t0);
    cold_bytes = RawBytesRead(&db);
    cold_warm_query_s = RunQuery(&db, selective);
    for (int r = 0; r < 2; ++r) {
      cold_warm_query_s = std::min(cold_warm_query_s, RunQuery(&db, selective));
    }
  }

  // --- lifetime 2: warm an engine the same way and persist its state ------
  double save_s;
  uint64_t snapshot_bytes;
  {
    Database db(snap_config);
    if (!db.RegisterCsv("t", csv, MicroSchema(spec)).ok()) return 1;
    (void)RunQuery(&db, selective);
    (void)RunQuery(&db, full_width);
    const auto t0 = std::chrono::steady_clock::now();
    auto written = db.Snapshot("t");
    save_s = Seconds(t0);
    if (!written.ok()) {
      fprintf(stderr, "snapshot failed: %s\n",
              written.status().ToString().c_str());
      return 1;
    }
    snapshot_bytes = *written;
  }

  // --- lifetime 3: fresh engine restored from the snapshot ----------------
  double snap_open_s, snap_first_s, snap_warm_query_s;
  uint64_t snap_bytes_after_query;
  bool loaded;
  {
    Database db(snap_config);
    const auto t0 = std::chrono::steady_clock::now();
    if (!db.RegisterCsv("t", csv, MicroSchema(spec)).ok()) return 1;
    snap_open_s = Seconds(t0);
    (void)RunQuery(&db, selective);
    snap_first_s = Seconds(t0);
    // The fingerprint check reads its 64 KiB samples through a private
    // file handle, so any byte here is a genuine raw-file re-parse.
    snap_bytes_after_query = RawBytesRead(&db);
    loaded = db.snapshot_counters().loads == 1;
    snap_warm_query_s = RunQuery(&db, selective);
    for (int r = 0; r < 2; ++r) {
      snap_warm_query_s = std::min(snap_warm_query_s, RunQuery(&db, selective));
    }
  }

  const double first_speedup = cold_first_s / snap_first_s;
  const double warm_state_speedup = cold_warm_state_s / snap_open_s;

  PrintBanner("Warm restarts from auxiliary-structure snapshots",
              "not in the paper — NoDB's positional map, column cache and "
              "statistics are earned by burning raw-file scans; persisting "
              "them means a restarted engine answers its first query from "
              "the restored structures instead of re-paying the cold parse");
  printf("data: %llu rows x %d cols; snapshot %.1f MiB (saved in %.0f ms)\n\n",
         static_cast<unsigned long long>(spec.rows), spec.cols,
         static_cast<double>(snapshot_bytes) / (1024.0 * 1024.0),
         save_s * 1e3);

  TextTable table({"metric", "cold", "snapshot reopen", "speedup"});
  table.AddRow({"open to first result (s)", Fmt(cold_first_s),
                Fmt(snap_first_s), Fmt(first_speedup, 2) + "x"});
  table.AddRow({"open to warm state (s)", Fmt(cold_warm_state_s),
                Fmt(snap_open_s), Fmt(warm_state_speedup, 2) + "x"});
  table.AddRow({"warm selective query (s)", Fmt(cold_warm_query_s),
                Fmt(snap_warm_query_s), "-"});
  table.AddRow({"raw bytes read", std::to_string(cold_bytes),
                std::to_string(snap_bytes_after_query), "-"});
  table.Print();

  printf("\nsnapshot loaded: %s; first post-restart query re-read %llu raw "
         "bytes (cold run read %llu).\n",
         loaded ? "yes" : "NO",
         static_cast<unsigned long long>(snap_bytes_after_query),
         static_cast<unsigned long long>(cold_bytes));

  FILE* f = fopen("BENCH_snapshot.json", "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write BENCH_snapshot.json\n");
    return 1;
  }
  fprintf(f,
          "{\n"
          "  \"rows\": %llu,\n"
          "  \"snapshot_bytes\": %llu,\n"
          "  \"save_ms\": %.3f,\n"
          "  \"cold\": {\"open_to_first_result_s\": %.4f, "
          "\"open_to_warm_state_s\": %.4f, \"warm_query_s\": %.4f, "
          "\"raw_bytes_read\": %llu},\n"
          "  \"snapshot\": {\"open_s\": %.4f, "
          "\"open_to_first_result_s\": %.4f, \"warm_query_s\": %.4f, "
          "\"raw_bytes_read\": %llu},\n"
          "  \"gate\": {\"loaded\": %s, "
          "\"snapshot_raw_bytes_after_first_query\": %llu, "
          "\"open_to_first_result_speedup\": %.3f, "
          "\"open_to_warm_state_speedup\": %.3f}\n"
          "}\n",
          static_cast<unsigned long long>(spec.rows),
          static_cast<unsigned long long>(snapshot_bytes), save_s * 1e3,
          cold_first_s, cold_warm_state_s, cold_warm_query_s,
          static_cast<unsigned long long>(cold_bytes), snap_open_s,
          snap_first_s, snap_warm_query_s,
          static_cast<unsigned long long>(snap_bytes_after_query),
          loaded ? "true" : "false",
          static_cast<unsigned long long>(snap_bytes_after_query),
          first_speedup, warm_state_speedup);
  fclose(f);
  printf("wrote BENCH_snapshot.json\n");
  return 0;
}
