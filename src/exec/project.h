#ifndef NODB_EXEC_PROJECT_H_
#define NODB_EXEC_PROJECT_H_

#include <vector>

#include "exec/operator.h"
#include "expr/evaluator.h"
#include "expr/expr.h"

namespace nodb {

/// Evaluates the SELECT list over input rows, shrinking working rows to the
/// query's output arity. This is where NoDB's *selective tuple formation*
/// pays off upstream: the scan only materialized the attributes these
/// expressions touch.
class ProjectOp final : public Operator {
 public:
  /// `exprs` must outlive the operator.
  ProjectOp(OperatorPtr child, const std::vector<ExprPtr>* exprs)
      : child_(std::move(child)), exprs_(exprs) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Row* row) override {
    NODB_ASSIGN_OR_RETURN(bool has, child_->Next(&input_));
    if (!has) return false;
    row->clear();
    row->reserve(exprs_->size());
    for (const ExprPtr& e : *exprs_) {
      NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*e, input_));
      row->push_back(std::move(v));
    }
    return true;
  }

  Status Close() override { return child_->Close(); }

 private:
  OperatorPtr child_;
  const std::vector<ExprPtr>* exprs_;
  Row input_;
};

}  // namespace nodb

#endif  // NODB_EXEC_PROJECT_H_
