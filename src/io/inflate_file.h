#ifndef NODB_IO_INFLATE_FILE_H_
#define NODB_IO_INFLATE_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "io/file.h"
#include "util/result.h"
#include "util/status.h"

namespace nodb {

/// In-situ scans over compressed sources. `InflateFile` wraps any
/// `RandomAccessFile` holding a single-member gzip stream and presents the
/// *decompressed* byte stream, so every layer above — adapters, tokenize
/// kernels, positional maps, column cache, statistics, promotion — works
/// unchanged against decompressed offsets.
///
/// Random access into deflate data is impossible without auxiliary state
/// (every byte depends on up to 32 KiB of history and an unaligned bit
/// position), so the layer records zran-style checkpoints as it inflates:
/// every `checkpoint_interval_bytes` of decompressed output, at a deflate
/// block boundary, it captures {decompressed offset, compressed bit
/// position, 32 KiB window}. A warm random read then restarts from the
/// nearest checkpoint at or below the target (inflatePrime +
/// inflateSetDictionary) and inflates forward — at most one checkpoint
/// interval of work instead of a whole-file re-inflate. The index is
/// serializable, so snapshots (.nodbsnap v3) let a restarted server seek a
/// gz source without ever re-inflating from byte 0.
///
/// Size contract: `size()` must be exact before the first read (LineReader
/// and morsel planning consult it up front), so Open trusts the gzip ISIZE
/// trailer as the claimed decompressed size and verifies lazily — any read
/// reaching the claimed end probes that the stream really ends there, and
/// the first contiguous-from-zero pass gets zlib's CRC32/ISIZE check for
/// free. A lying trailer (truncation, concatenated members, appended
/// garbage) therefore surfaces as a typed Corruption during the scan, never
/// as silently wrong bytes. Sources over 4 GiB decompressed are unsupported
/// (ISIZE is mod 2^32).
struct InflateOptions {
  /// Decompressed bytes between restart checkpoints. Smaller = cheaper warm
  /// seeks, more index memory (~32 KiB window per checkpoint).
  uint64_t checkpoint_interval_bytes = 4ull << 20;
};

/// True when the build has zlib; without it InflateFile::Open returns
/// Unimplemented and the gz-backed suites skip.
bool InflateSupported();

class InflateFile final : public RandomAccessFile {
 public:
  /// Gzip magic `1f 8b` at the head of a byte string.
  static bool IsGzip(std::string_view head);

  /// Wraps `inner` (a complete single-member .gz file). Validates the
  /// header and reads the ISIZE trailer for the presented size; the body is
  /// not inflated until the first read.
  static Result<std::unique_ptr<InflateFile>> Open(
      std::unique_ptr<RandomAccessFile> inner, InflateOptions options = {});

  ~InflateFile() override;

  Result<uint64_t> Read(uint64_t offset, uint64_t length,
                        char* scratch) const override;

  /// True once the checkpoint index covers the whole stream (one full
  /// sequential pass, or an installed snapshot index). Until then parallel
  /// workers would each pay a from-zero inflate, so the scan planner runs
  /// single-morsel.
  bool SupportsConcurrentReads() const override;

  /// Checkpoint decompressed offsets — the cheap morsel split points.
  std::vector<uint64_t> RecommendedSplitOffsets() const override;

  const InflateFile* AsInflateFile() const override { return this; }

  const RandomAccessFile* inner() const { return inner_.get(); }
  uint64_t checkpoint_interval() const { return interval_; }

  // --- accounting (decompressed-payload accounting is the inherited
  // bytes_read(): bytes actually delivered to callers) ---
  /// Compressed bytes read from the wrapped file.
  uint64_t compressed_bytes_read() const { return inner_->bytes_read(); }
  /// Total decompressed bytes produced by inflate, including bytes inflated
  /// only to skip forward to a seek target. The warm-seek observable: a
  /// checkpoint-directed read grows this by at most one interval + the
  /// request length.
  uint64_t bytes_inflated() const {
    return bytes_inflated_.load(std::memory_order_relaxed);
  }
  /// Restarts from a recorded checkpoint / from byte zero.
  uint64_t checkpoint_restarts() const {
    return checkpoint_restarts_.load(std::memory_order_relaxed);
  }
  uint64_t full_restarts() const {
    return full_restarts_.load(std::memory_order_relaxed);
  }
  uint64_t checkpoint_count() const;
  bool index_complete() const;

  // --- snapshot integration (.nodbsnap v3 section) ---
  /// Serialized complete checkpoint index (self-checksummed blob); empty
  /// string while the index is incomplete.
  std::string SerializeIndex() const;
  /// Installs a serialized index. Validation failure returns Corruption and
  /// leaves the file fully functional — it just re-inflates from byte zero.
  /// Logically const: the index is a cache of facts about immutable bytes.
  Status InstallIndex(std::string_view blob) const;

 private:
  struct Checkpoint;
  struct Cursor;

  InflateFile(std::unique_ptr<RandomAccessFile> inner, uint64_t size,
              uint64_t interval);

  Status PositionCursor(Cursor** out, uint64_t target) const;
  Status RestartFromZero(Cursor* c) const;
  Status RestartFromCheckpoint(Cursor* c, const Checkpoint& cp) const;
  Status InflateStep(Cursor* c, char* dst, uint64_t want, uint64_t* got,
                     bool* ended) const;
  Status InflateRange(Cursor* c, uint64_t target, uint64_t length,
                      char* scratch, uint64_t* produced) const;
  Status StreamEnded(Cursor* c) const;
  Status ProbeEnd(Cursor* c) const;
  Status VerifyClaimedEmpty() const;
  void MaybeRecordCheckpoint(Cursor* c) const;

  std::unique_ptr<RandomAccessFile> inner_;
  const uint64_t interval_;

  mutable std::mutex mu_;
  mutable std::vector<Checkpoint> index_;  // sorted by out_pos
  mutable bool index_complete_ = false;
  /// Stream end confirmed at size_ with a clean trailer (and CRC32/ISIZE
  /// when the confirming pass was contiguous from zero).
  mutable bool end_verified_ = false;
  mutable std::vector<std::unique_ptr<Cursor>> cursors_;
  mutable uint64_t lru_tick_ = 0;
  mutable std::vector<char> discard_buf_;

  mutable std::atomic<uint64_t> bytes_inflated_{0};
  mutable std::atomic<uint64_t> checkpoint_restarts_{0};
  mutable std::atomic<uint64_t> full_restarts_{0};
};

/// Gzip-compresses `data` as one member (test corpus + bench helper; returns
/// empty when zlib is unavailable).
std::string GzipCompress(std::string_view data);

}  // namespace nodb

#endif  // NODB_IO_INFLATE_FILE_H_
