#ifndef NODB_EXEC_OPERATOR_H_
#define NODB_EXEC_OPERATOR_H_

#include <memory>
#include <vector>

#include "types/value.h"
#include "util/result.h"

namespace nodb {

/// Volcano-style tuple-at-a-time operator (the paper's engine is a
/// row-store: "each tuple is then passed one-by-one through the operators of
/// a query plan"). Rows are *working rows*: the concatenation of all FROM
/// tables' columns; each operator fills or reads only the slices it owns.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (builds hash tables, opens files...).
  virtual Status Open() = 0;

  /// Produces the next row into `*row`; returns false when exhausted.
  virtual Result<bool> Next(Row* row) = 0;

  /// Releases per-query resources. Called once after the last Next.
  virtual Status Close() { return Status::OK(); }
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Hash/equality functors so Row can key unordered containers
/// (hash aggregation, hash joins).
struct RowHasher {
  size_t operator()(const Row& row) const {
    return static_cast<size_t>(HashRow(row));
  }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }
};

}  // namespace nodb

#endif  // NODB_EXEC_OPERATOR_H_
