// Figure 13 — "Varying attribute width in PostgreSQL vs PostgresRaw":
// a 9-query sequence over tables whose (string) attributes are 16 vs 64
// characters wide. Wide tuples overflow PostgreSQL's slotted pages
// (overflow-chain reads per tuple), so the paper reports a 20-70x slowdown
// for PostgreSQL at width 64 versus only ~50%-6x for PostgresRaw, which has
// no page structure to overflow.

#include "common.h"
#include "util/rng.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

/// Nine random projection queries with MIN aggregates (string columns).
std::vector<std::string> MakeQueries(int ncols, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> queries;
  for (int q = 0; q < 9; ++q) {
    std::string sql = "SELECT ";
    for (int i = 0; i < 5; ++i) {
      int col = static_cast<int>(rng.Uniform(1, ncols));
      if (i > 0) sql += ", ";
      sql += "MIN(a" + std::to_string(col) + ") AS m" + std::to_string(i);
    }
    sql += " FROM wide";
    queries.push_back(std::move(sql));
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  PrintBanner(
      "Figure 13: attribute width 16 vs 64 (slotted-page robustness)",
      "PostgreSQL slows 20-70x at width 64 (page overflow chains); "
      "PostgresRaw at most ~6x (no page structure).");

  // 120 columns x 64 chars exceeds the 8 KiB page => overflow chains in the
  // heap engine; at width 16 the same tuples fit inline.
  const int kCols = 120;
  const uint64_t kRows = static_cast<uint64_t>(1500 * args.scale);

  TextTable table({"width", "system", "Q1(s)", "Q2-Q9 avg(s)", "total(s)"});
  std::vector<double> totals;  // [pg16, raw16, pg64, raw64]
  for (int width : {16, 64}) {
    MicroDataSpec spec;
    spec.rows = kRows;
    spec.cols = kCols;
    spec.attr_width = width;
    spec.seed = args.seed;
    std::string csv = MicroCsv(spec, "fig13w" + std::to_string(width));
    Schema schema = MicroSchema(spec);
    std::vector<std::string> queries = MakeQueries(kCols, args.seed);

    for (bool raw : {false, true}) {
      std::unique_ptr<Database> db;
      if (raw) {
        db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
        if (!db->RegisterCsv("wide", csv, schema).ok()) return 1;
      } else {
        db = MakeEngine(SystemUnderTest::kPostgreSQL);
        if (!db->LoadCsv("wide", csv, schema).ok()) return 1;
      }
      double q1 = 0, rest = 0, total = 0;
      for (size_t q = 0; q < queries.size(); ++q) {
        if (!raw) db->DropBufferCaches();  // keep the page reads honest
        double secs = RunQuery(db.get(), queries[q]);
        total += secs;
        if (q == 0) {
          q1 = secs;
        } else {
          rest += secs;
        }
      }
      totals.push_back(total);
      table.AddRow({std::to_string(width),
                    raw ? "PostgresRaw" : "PostgreSQL", Fmt(q1),
                    Fmt(rest / (queries.size() - 1)), Fmt(total)});
    }
  }
  table.Print();
  printf("\nSlowdown going from width 16 to width 64:\n");
  printf("  PostgreSQL : %.1fx\n", totals[2] / totals[0]);
  printf("  PostgresRaw: %.1fx\n", totals[3] / totals[1]);
  printf("Expected shape: PostgreSQL's factor much larger than "
         "PostgresRaw's.\n");
  return 0;
}
