#ifndef NODB_EXEC_EXEC_CONTROL_H_
#define NODB_EXEC_EXEC_CONTROL_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "util/status.h"

namespace nodb {

/// Shared cancellation/deadline handle for one executing query. The party
/// driving the query (a server session, a client with a timeout) holds a
/// shared_ptr and may flip `cancelled` from any thread; the executor checks
/// the handle at batch boundaries — in QueryCursor::Next and inside the
/// drain loops of materializing operators (aggregate, sort, hash-join
/// builds), which otherwise consume their whole input before the first
/// batch surfaces.
///
/// A failed check surfaces as a typed error (kCancelled or
/// kDeadlineExceeded) through the normal Status channel, so the pipeline is
/// abandoned exactly like any other execution error: operator destructors
/// release scan epochs, pool workers are joined, and partial results are
/// discarded with the cursor.
struct ExecControl {
  /// Monotonic-clock deadline; the zero (epoch) value means "none".
  std::chrono::steady_clock::time_point deadline{};
  /// Cooperative cancel flag, settable from any thread.
  std::atomic<bool> cancelled{false};

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point{};
  }

  /// OK while the query may keep running; the typed error otherwise.
  /// Cancellation wins over an expired deadline (the caller asked first).
  Status Check() const {
    if (cancelled.load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled");
    }
    if (has_deadline() && std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

  /// Tightens the deadline to `t` (keeps the earlier of the two).
  void TightenDeadline(std::chrono::steady_clock::time_point t) {
    if (t == std::chrono::steady_clock::time_point{}) return;
    if (!has_deadline() || t < deadline) deadline = t;
  }
};

using ExecControlPtr = std::shared_ptr<ExecControl>;

/// Convenience for the common pattern `if (control) return control->Check()`.
inline Status CheckControl(const ExecControlPtr& control) {
  return control == nullptr ? Status::OK() : control->Check();
}

}  // namespace nodb

#endif  // NODB_EXEC_EXEC_CONTROL_H_
