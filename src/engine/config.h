#ifndef NODB_ENGINE_CONFIG_H_
#define NODB_ENGINE_CONFIG_H_

#include <cstdint>
#include <string>

#include "adaptive/promotion_policy.h"
#include "exec/table_runtime.h"

namespace nodb {

/// The systems under test in the paper's evaluation (§5), each realized as
/// a configuration of the same engine — mirroring how PostgresRaw shares
/// PostgreSQL's executor and differs only in access methods and auxiliary
/// structures. See DESIGN.md for the substitution rationale per system.
enum class SystemUnderTest : uint8_t {
  kPostgresRawPMC,       // PostgresRaw PM+C (positional map + cache)
  kPostgresRawPM,        // positional map only
  kPostgresRawC,         // cache + minimal end-of-line map
  kPostgresRawBaseline,  // straw-man in-situ: no auxiliary structures
  kExternalFiles,        // MySQL CSV engine / DBMS X external files
  kPostgreSQL,           // load-then-query, slotted pages, 24 B headers
  kDbmsX,                // load-then-query, packed rows (commercial analogue)
  kMySQL,                // load-then-query, heap + handler copy-out penalty
};

std::string_view SystemUnderTestName(SystemUnderTest sut);

/// Full engine configuration; use the factory for paper-faithful presets
/// and tweak fields for ablations.
struct EngineConfig {
  // --- in-situ auxiliary structures (§4.2–§4.4) ---
  bool positional_map = true;
  uint64_t pm_budget_bytes = UINT64_MAX;
  std::string pm_spill_dir;  // empty = drop on eviction
  int tuples_per_chunk = 4096;
  bool cache = true;
  uint64_t cache_budget_bytes = UINT64_MAX;
  bool statistics = true;

  // --- in-situ scan behaviour (§4.1) ---
  bool selective_tokenizing = true;
  bool selective_parsing = true;
  bool selective_tuple_formation = true;
  /// §4.2's combination policy (re-index a query's full attribute set when
  /// it spans chunks). Implemented and tested, but off by default: it pays
  /// off only when combinations repeat, and at laptop scale its duplicate
  /// insertions outweigh the locality gain (see DESIGN.md).
  bool index_combinations = false;
  /// §4.2's "learn as much as possible" policy: also index attributes the
  /// tokenizer crossed on the way to requested ones. Default on, as in the
  /// paper ("all positions from 1 to 15 may be kept").
  bool index_intermediates = true;

  // --- execution ---
  /// Rows per operator batch (RowBatch capacity) for the vectorized
  /// pipeline. 1 degenerates to tuple-at-a-time Volcano dispatch (useful
  /// for measuring what batching buys); benches sweep this knob.
  size_t batch_size = 1024;
  /// Worker threads per raw-file scan (morsel-driven parallelism over one
  /// shared per-Database ThreadPool). 1 — the default — runs the serial
  /// scan path unchanged: output and pmap/cache/stats state byte-for-byte
  /// identical to a build without the parallel subsystem. Overridable per
  /// table through OpenOptions::scan_threads.
  int scan_threads = 1;
  /// Target bytes per parallel-scan morsel. 0 = auto: file_size / (8 x
  /// threads), clamped to [256 KiB, 16 MiB] so every worker gets several
  /// morsels (load balance) without per-morsel overhead dominating.
  uint64_t scan_morsel_bytes = 0;
  /// Use the scalar reference tokenize/parse path instead of the SWAR/SIMD
  /// parse kernels (raw/parse_kernels.h) for this engine's raw adapters
  /// and bulk loads. The differential-testing escape hatch; also forced
  /// globally by building with -DNODB_FORCE_SCALAR_KERNELS=ON.
  bool scalar_kernels = false;

  // --- compressed sources (src/io/inflate_file) ---
  /// Decompressed bytes between zran-style restart checkpoints for gzipped
  /// sources (`.csv.gz`, `.jsonl.gz`, ...). Smaller intervals make warm
  /// pmap-directed seeks cheaper (a seek re-inflates at most one interval)
  /// at ~32 KiB of index memory per checkpoint. Requires a build with zlib.
  uint64_t gz_checkpoint_bytes = 4ull << 20;

  // --- warm-restart snapshots (src/snapshot) ---
  /// Directory raw tables load auxiliary-structure snapshots from at Open
  /// and save them to (positional map, column cache, statistics). Empty =
  /// feature off. Overridable per table through OpenOptions::snapshot_dir.
  std::string snapshot_dir;
  /// Period of the background snapshot writer; 0 = no background writer
  /// (snapshots are still written by explicit Snapshot()/SnapshotAll()
  /// calls and by the server's graceful Stop). The writer only persists
  /// tables whose warm state moved since their last save.
  int snapshot_interval_ms = 0;

  // --- workload-driven column promotion (src/adaptive) ---
  /// Tiering policy for raw tables: per-column access accounting feeds a
  /// scoring policy, and hot columns are bulk-loaded into an in-memory
  /// columnar representation served in place of raw-file parsing (cold
  /// ones are demoted back under the byte budget). `promotion.enabled`
  /// turns the subsystem on; `promotion.interval_ms > 0` additionally runs
  /// cycles on a background thread (0 = explicit RunPromotionCycle calls
  /// only). `promotion.budget_bytes == 0` shares the cache budget by
  /// reserving promoted bytes out of it.
  PromotionConfig promotion;

  // --- loaded-engine storage ---
  TableStorage loaded_storage = TableStorage::kHeap;
  uint32_t tuple_header_bytes = 24;
  bool mysql_copy_penalty = false;
  uint32_t buffer_pool_pages = 4096;
  /// Directory for loaded table files; empty = alongside the source CSV.
  std::string data_dir;

  /// Paper-faithful preset for each system under test.
  static EngineConfig ForSystem(SystemUnderTest sut);
};

}  // namespace nodb

#endif  // NODB_ENGINE_CONFIG_H_
