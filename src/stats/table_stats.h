#ifndef NODB_STATS_TABLE_STATS_H_
#define NODB_STATS_TABLE_STATS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "stats/attr_stats.h"
#include "types/schema.h"

namespace nodb {

/// Per-table statistics store, grown adaptively: a scan registers values for
/// the attributes it actually parsed, so coverage widens as the workload
/// touches more of the file (§4.4: "as queries request more attributes of a
/// raw file, statistics are incrementally augmented").
///
/// Thread-safe: concurrent scans may feed values while another query's
/// planner reads estimates. Snapshots are immutable and handed out as
/// shared_ptr, so a planner's estimate survives a concurrent re-finalize.
class TableStats {
 public:
  using AttrStatsPtr = std::shared_ptr<const AttrStats>;

  explicit TableStats(const Schema& schema);

  /// Notes that a full scan observed `n` rows (exact row count).
  void SetRowCount(uint64_t n);
  /// Exact row count if a scan completed, otherwise nullopt.
  std::optional<uint64_t> row_count() const;

  /// True if statistics exist for `attr`.
  bool HasAttr(int attr) const;

  /// Snapshot of the statistics for `attr`; nullptr when never collected.
  AttrStatsPtr Attr(int attr) const;

  /// Accumulates one value for `attr` (called by scans when stats collection
  /// is enabled). Sampling is handled internally; callers may feed every
  /// parsed value.
  void AddValue(int attr, const Value& v);

  /// Accumulates `n` values for `attr`, paying the lock once — the merge
  /// path of parallel scans, which replay each morsel's parsed values in
  /// file order so the resulting statistics match a serial scan's.
  void AddValues(int attr, const Value* values, size_t n);

  /// Folds pending data for `attr` into the queryable snapshot.
  void Finalize(int attr);
  /// Finalizes every attribute that has pending data.
  void FinalizeAll();

  /// Finalized statistics per attribute, ordered by attribute index;
  /// attributes never collected are absent. One consistent locked pass —
  /// the persistence export (snapshots serialize finalized snapshots only;
  /// in-flight builder state is not worth freezing).
  std::vector<std::pair<int, AttrStatsPtr>> ExportBuilt() const;

  /// Installs a previously exported snapshot for `attr` (warm restart).
  /// Later scans still accumulate into the builder; Finalize overwrites the
  /// installed snapshot only once fresh data exists, so a restored estimate
  /// survives until the live workload re-earns a better one.
  void InstallSnapshot(int attr, AttrStats stats);

  int num_attrs() const { return static_cast<int>(builders_.size()); }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<AttrStatsBuilder>> builders_;
  std::vector<AttrStatsPtr> built_;
  std::optional<uint64_t> row_count_;
};

}  // namespace nodb

#endif  // NODB_STATS_TABLE_STATS_H_
