#ifndef NODB_SERVER_ADMISSION_H_
#define NODB_SERVER_ADMISSION_H_

#include <condition_variable>
#include <mutex>

#include "exec/exec_control.h"
#include "util/result.h"

namespace nodb {

/// Admission knobs. Cold scans (a raw table's first-ever complete scan is
/// still pending) pay full tokenize/parse cost and hold the shared scan
/// ThreadPool for seconds, so they get their own, smaller concurrency cap:
/// a thundering herd of cold queries queues here instead of wedging the
/// pool, while warm (cache/pmap-served) queries keep flowing through the
/// wider warm lane.
struct AdmissionConfig {
  int max_cold = 2;         // concurrent cold-scan queries
  int max_warm = 16;        // concurrent warm queries
  int cold_queue_limit = 8;   // waiters beyond the cap before rejection
  int warm_queue_limit = 64;
};

/// Two-lane counting semaphore with bounded waiting queues. Admit() blocks
/// (backpressure) while the lane is saturated but the queue is within
/// bounds; past the bound it rejects immediately with a typed
/// kResourceExhausted error — the client sees a deterministic "server
/// overloaded" instead of unbounded queueing. A waiter whose ExecControl
/// trips (deadline, cancel, server shutdown) leaves the queue with the
/// corresponding typed error.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config) : config_(config) {}

  /// Move-only RAII admission slot: releases its lane on destruction.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      controller_ = other.controller_;
      cold_ = other.cold_;
      other.controller_ = nullptr;
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    bool valid() const { return controller_ != nullptr; }
    bool cold() const { return cold_; }
    /// Early release (before destruction); idempotent.
    void Release();

   private:
    friend class AdmissionController;
    Ticket(AdmissionController* controller, bool cold)
        : controller_(controller), cold_(cold) {}
    AdmissionController* controller_ = nullptr;
    bool cold_ = false;
  };

  /// Acquires a slot in the cold or warm lane. `control` (optional) makes
  /// the wait interruptible: cancellation and deadline expiry are checked
  /// while queued. After Shutdown() every Admit fails with kCancelled.
  Result<Ticket> Admit(bool cold, const ExecControlPtr& control);

  /// Wakes every queued waiter with kCancelled and fails future Admits
  /// (graceful server stop).
  void Shutdown();

  int active(bool cold) const;
  int queued(bool cold) const;

 private:
  friend class Ticket;
  void ReleaseSlot(bool cold);

  const AdmissionConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int cold_active_ = 0;
  int warm_active_ = 0;
  int cold_queued_ = 0;
  int warm_queued_ = 0;
  bool shutdown_ = false;
};

}  // namespace nodb

#endif  // NODB_SERVER_ADMISSION_H_
