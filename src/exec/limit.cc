#include "exec/limit.h"

// LimitOp is header-only; this translation unit anchors the target.
