#include "adaptive/column_access.h"

namespace nodb {

ColumnAccessTracker::ColumnAccessTracker(int num_attrs)
    : num_attrs_(num_attrs), cells_(new Cell[num_attrs]) {}

void ColumnAccessTracker::RecordScan(const std::vector<int>& attrs) {
  for (int a : attrs) {
    cells_[a].scans.fetch_add(1, std::memory_order_relaxed);
  }
}

void ColumnAccessTracker::RecordParsed(int attr, uint64_t rows,
                                       uint64_t bytes) {
  if (rows == 0 && bytes == 0) return;
  cells_[attr].rows_parsed.fetch_add(rows, std::memory_order_relaxed);
  cells_[attr].bytes_parsed.fetch_add(bytes, std::memory_order_relaxed);
}

void ColumnAccessTracker::RecordCacheServed(int attr, uint64_t rows) {
  if (rows == 0) return;
  cells_[attr].rows_from_cache.fetch_add(rows, std::memory_order_relaxed);
}

void ColumnAccessTracker::RecordPromotedServed(int attr, uint64_t rows) {
  if (rows == 0) return;
  cells_[attr].rows_from_promoted.fetch_add(rows, std::memory_order_relaxed);
}

ColumnAccessCounters ColumnAccessTracker::Snapshot(int attr) const {
  const Cell& c = cells_[attr];
  ColumnAccessCounters out;
  out.scans = c.scans.load(std::memory_order_relaxed);
  out.rows_parsed = c.rows_parsed.load(std::memory_order_relaxed);
  out.bytes_parsed = c.bytes_parsed.load(std::memory_order_relaxed);
  out.rows_from_cache = c.rows_from_cache.load(std::memory_order_relaxed);
  out.rows_from_promoted =
      c.rows_from_promoted.load(std::memory_order_relaxed);
  return out;
}

std::vector<ColumnAccessCounters> ColumnAccessTracker::SnapshotAll() const {
  std::vector<ColumnAccessCounters> out;
  out.reserve(num_attrs_);
  for (int a = 0; a < num_attrs_; ++a) out.push_back(Snapshot(a));
  return out;
}

void ColumnAccessTracker::InstallSnapshot(int attr,
                                          const ColumnAccessCounters& c) {
  Cell& cell = cells_[attr];
  cell.scans.fetch_add(c.scans, std::memory_order_relaxed);
  cell.rows_parsed.fetch_add(c.rows_parsed, std::memory_order_relaxed);
  cell.bytes_parsed.fetch_add(c.bytes_parsed, std::memory_order_relaxed);
  cell.rows_from_cache.fetch_add(c.rows_from_cache,
                                 std::memory_order_relaxed);
  cell.rows_from_promoted.fetch_add(c.rows_from_promoted,
                                    std::memory_order_relaxed);
}

uint64_t ColumnAccessTracker::Signature() const {
  // FNV-1a over every counter in attribute order.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(static_cast<uint64_t>(num_attrs_));
  for (int a = 0; a < num_attrs_; ++a) {
    ColumnAccessCounters c = Snapshot(a);
    mix(c.scans);
    mix(c.rows_parsed);
    mix(c.bytes_parsed);
    mix(c.rows_from_cache);
    mix(c.rows_from_promoted);
  }
  return h;
}

}  // namespace nodb
