#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/stopwatch.h"

namespace nodb {
namespace bench {

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = atof(argv[i] + 8);
    } else if (strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = strtoull(argv[i] + 7, nullptr, 10);
    } else {
      fprintf(stderr, "unknown flag: %s (supported: --scale=, --seed=)\n",
              argv[i]);
      exit(2);
    }
  }
  if (args.scale <= 0) args.scale = 1.0;
  return args;
}

void PrintBanner(const std::string& figure, const std::string& paper_claim) {
  printf("==============================================================\n");
  printf("%s\n", figure.c_str());
  printf("Paper: %s\n", paper_claim.c_str());
  printf("==============================================================\n");
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    printf("\n");
  };
  print_row(headers_);
  std::string rule;
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double v, int decimals) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

double RunQuery(Database* db, const std::string& sql) {
  // Timed via the streaming cursor: planning plus a full drain, with no
  // result materialization inside the timed region (batches are recycled).
  Stopwatch timer;
  auto cursor = db->Query(sql);
  if (!cursor.ok()) {
    fprintf(stderr, "query failed: %s\n  %s\n", sql.c_str(),
            cursor.status().ToString().c_str());
    exit(1);
  }
  RowBatch batch = cursor->MakeBatch();
  while (true) {
    auto n = cursor->Next(&batch);
    if (!n.ok()) {
      fprintf(stderr, "query failed: %s\n  %s\n", sql.c_str(),
              n.status().ToString().c_str());
      exit(1);
    }
    if (*n == 0) break;
  }
  return timer.ElapsedSeconds();
}

TempDir* DataDir() {
  static TempDir* dir = new TempDir();
  return dir;
}

std::string MicroCsv(const MicroDataSpec& spec, const std::string& tag) {
  std::string path = DataDir()->File("micro_" + tag + ".csv");
  if (!FileExists(path)) {
    Status s = GenerateWideCsv(path, spec);
    if (!s.ok()) {
      fprintf(stderr, "data generation failed: %s\n", s.ToString().c_str());
      exit(1);
    }
  }
  return path;
}

}  // namespace bench
}  // namespace nodb
