#include "exec/query_result.h"

#include <algorithm>
#include <cstdio>

#include "csv/writer.h"

namespace nodb {

Status QueryResult::WriteCsv(std::ostream& out, CsvDialect dialect) const {
  CsvWriter writer(&out, dialect);
  NODB_RETURN_IF_ERROR(writer.WriteHeader(schema));
  for (const Row& row : rows) {
    NODB_RETURN_IF_ERROR(writer.WriteRow(row));
  }
  return writer.Finish();
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += " | ";
    out += schema.column(c).name;
  }
  out += "\n";
  size_t shown = std::min(max_rows, rows.size());
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += " | ";
      out += rows[r][c].ToString();
    }
    out += "\n";
  }
  if (shown < rows.size()) {
    out += "... (" + std::to_string(rows.size()) + " rows total)\n";
  }
  return out;
}

std::string QueryResult::Canonical(bool sorted) const {
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const Row& row : rows) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "|";
      // Round doubles so both engines' float paths compare stably.
      if (!row[c].is_null() && row[c].type() == TypeId::kDouble) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", row[c].f64());
        line += buf;
      } else {
        line += row[c].ToString();
      }
    }
    lines.push_back(std::move(line));
  }
  if (sorted) std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += "\n";
  }
  return out;
}

}  // namespace nodb
