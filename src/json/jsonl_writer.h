#ifndef NODB_JSON_JSONL_WRITER_H_
#define NODB_JSON_JSONL_WRITER_H_

#include <string>

#include "io/file.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/status.h"

namespace nodb {

/// Buffered JSON Lines emitter (data generators, tests, benchmarks): one
/// top-level object per row, keys taken from the schema. Numeric and bool
/// values render as JSON literals, strings and dates as quoted strings
/// (dates ISO-formatted), NULLs as `null` — the exact forms JsonlAdapter
/// parses back, so a CSV/JSONL pair generated from the same rows is
/// bit-for-bit equivalent relationally.
class JsonlWriter {
 public:
  /// `out` and `schema` must outlive the writer; the caller closes the file
  /// after Finish().
  JsonlWriter(WritableFile* out, const Schema* schema)
      : out_(out), schema_(schema) {}

  /// Writes one row as one JSON line.
  Status WriteRow(const Row& row);

  /// Flushes buffered bytes to the file.
  Status Finish();

 private:
  WritableFile* out_;
  const Schema* schema_;
  std::string buffer_;
};

}  // namespace nodb

#endif  // NODB_JSON_JSONL_WRITER_H_
