#ifndef NODB_UTIL_STR_CONV_H_
#define NODB_UTIL_STR_CONV_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace nodb {

/// Text <-> binary conversion routines. These sit on the hottest path of the
/// in-situ engine (the paper identifies data-type conversion as the dominant
/// raw-access cost), so parsing avoids allocation and locale machinery.

/// Parses a base-10 signed integer from the full extent of `text`.
/// Leading/trailing spaces are rejected; an empty string is an error.
Result<int64_t> ParseInt64(std::string_view text);

/// Parses a floating point number from the full extent of `text`.
Result<double> ParseDouble(std::string_view text);

/// Parses a boolean: accepts "0"/"1"/"true"/"false"/"t"/"f" (case-insensitive).
Result<bool> ParseBool(std::string_view text);

/// Parses an ISO date "YYYY-MM-DD" into days since 1970-01-01 (can be
/// negative for earlier dates). Validates month/day ranges incl. leap years.
Result<int32_t> ParseDate(std::string_view text);

/// Converts days-since-epoch back to "YYYY-MM-DD".
std::string FormatDate(int32_t days_since_epoch);

/// Days since 1970-01-01 for a (validated) civil date. Out-of-range
/// month/day values are the caller's responsibility.
int32_t CivilToDays(int year, int month, int day);

/// Inverse of CivilToDays.
void DaysToCivil(int32_t days, int* year, int* month, int* day);

/// Appends the decimal representation of `v` to `out` (no allocation churn
/// beyond the string's own growth).
void AppendInt64(std::string* out, int64_t v);

/// Appends a round-trippable shortest representation of `v` to `out`.
void AppendDouble(std::string* out, double v);

/// True if `text` is a syntactically plausible integer (used by schema
/// inference in examples; cheaper than a full parse-and-discard).
bool LooksLikeInt(std::string_view text);

}  // namespace nodb

#endif  // NODB_UTIL_STR_CONV_H_
