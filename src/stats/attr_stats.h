#ifndef NODB_STATS_ATTR_STATS_H_
#define NODB_STATS_ATTR_STATS_H_

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "types/value.h"
#include "util/rng.h"

namespace nodb {

/// Summary statistics for one attribute, built on the fly during raw scans
/// (the paper's §4.4: PostgresRaw invokes "native statistics routines ...
/// providing it with a sample of the data", only for requested attributes).
struct AttrStats {
  TypeId type = TypeId::kInt64;
  uint64_t rows_seen = 0;
  uint64_t nulls = 0;
  std::optional<Value> min;
  std::optional<Value> max;
  /// Estimated number of distinct values.
  double ndv = 0;
  /// Equi-width histogram over [min, max] for numeric/date types (bucket
  /// counts from the sample). Empty for strings.
  std::vector<uint32_t> histogram;

  /// Estimated fraction of non-null rows satisfying `value <op> constant`.
  /// `op` uses the comparison semantics of expr/Comparison: this helper only
  /// needs <, <=, >, >=, =, <>.
  double EstimateCompareSelectivity(char op_first, bool or_equal,
                                    const Value& constant) const;

  /// Selectivity of equality with an arbitrary constant: 1/ndv.
  double EstimateEqualsSelectivity() const;
};

/// Incremental builder: feeds a bounded reservoir sample plus min/max and a
/// hash-based distinct estimator. Mirrors ANALYZE-style collection: the
/// first kFullRows values are digested fully, after which only one value in
/// kSampleStride is (keeping the per-scan overhead small, as the paper's
/// on-the-fly statistics require). Row and null counts stay exact.
class AttrStatsBuilder {
 public:
  explicit AttrStatsBuilder(TypeId type, int sample_capacity = 1024);

  /// Accumulates one observed value.
  void Add(const Value& v);

  /// True once at least one value (null or not) has been observed.
  bool has_data() const { return rows_seen_ > 0; }
  uint64_t rows_seen() const { return rows_seen_; }

  /// Produces the current statistics snapshot.
  AttrStats Build() const;

 private:
  TypeId type_;
  int sample_capacity_;
  uint64_t rows_seen_ = 0;
  uint64_t nulls_ = 0;
  uint64_t digested_ = 0;  // values that went through the full path
  std::optional<Value> min_;
  std::optional<Value> max_;
  std::vector<Value> sample_;  // reservoir
  /// Distinct hashes seen, capped; with the cap hit, NDV is scaled from the
  /// sample's distinct ratio.
  std::unordered_set<uint64_t> distinct_hashes_;
  bool distinct_capped_ = false;
  Rng rng_{0xC0FFEE};

  static constexpr size_t kDistinctCap = 1 << 13;
  static constexpr uint64_t kFullRows = 512;
  static constexpr uint64_t kSampleStride = 64;
};

}  // namespace nodb

#endif  // NODB_STATS_ATTR_STATS_H_
