#include "io/file.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

namespace nodb {

namespace {

/// Plain on-disk file over POSIX pread(2). pread carries its own offset, so
/// concurrent reads need no locking.
class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, uint64_t size, std::string path)
      : RandomAccessFile(size, std::move(path)), fd_(fd) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<uint64_t> Read(uint64_t offset, uint64_t length,
                        char* scratch) const override {
    uint64_t total = 0;
    while (total < length) {
      ssize_t n = ::pread(fd_, scratch + total, length - total,
                          static_cast<off_t>(offset + total));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("pread '" + path() + "': " + strerror(errno));
      }
      if (n == 0) break;  // EOF
      total += static_cast<uint64_t>(n);
    }
    CountRead(total);
    return total;
  }

 private:
  int fd_;
};

}  // namespace

Result<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open '" + path + "': " + strerror(errno));
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat '" + path + "': " + strerror(errno));
  }
  return std::unique_ptr<RandomAccessFile>(new PosixRandomAccessFile(
      fd, static_cast<uint64_t>(st.st_size), path));
}

Result<std::unique_ptr<WritableFile>> WritableFile::Create(
    const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("create '" + path + "': " + strerror(errno));
  }
  return std::unique_ptr<WritableFile>(new WritableFile(f));
}

WritableFile::~WritableFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WritableFile::Append(std::string_view data) {
  if (file_ == nullptr) return Status::Internal("write after Close");
  size_t n = std::fwrite(data.data(), 1, data.size(), file_);
  bytes_written_ += n;
  if (n != data.size()) {
    return Status::IOError(std::string("fwrite: ") + strerror(errno));
  }
  return Status::OK();
}

Status WritableFile::Flush() {
  if (file_ == nullptr) return Status::OK();
  if (std::fflush(file_) != 0) {
    return Status::IOError(std::string("fflush: ") + strerror(errno));
  }
  return Status::OK();
}

Status WritableFile::Sync() {
  if (file_ == nullptr) return Status::Internal("sync after Close");
  if (std::fflush(file_) != 0) {
    return Status::IOError(std::string("fflush: ") + strerror(errno));
  }
  if (::fsync(fileno(file_)) != 0) {
    return Status::IOError(std::string("fsync: ") + strerror(errno));
  }
  return Status::OK();
}

Status WritableFile::Close() {
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) {
    return Status::IOError(std::string("fclose: ") + strerror(errno));
  }
  return Status::OK();
}

}  // namespace nodb
