#include "workload/tpch_gen.h"

#include <algorithm>
#include <cstdio>

#include "io/file.h"
#include "util/rng.h"
#include "util/str_conv.h"

namespace nodb {

namespace {

// ---------------------------------------------------------------------
// Value pools (subsets of the TPC-H specification's lists; the entries the
// evaluation queries depend on — segments, priorities, ship modes, brands,
// containers, PROMO types — are exact).
// ---------------------------------------------------------------------

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// region of each nation, per the spec.
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                            "FOB"};
const char* kShipInstruct[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kTypeSyllable1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE",
                                "ECONOMY", "PROMO"};
const char* kTypeSyllable2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                                "BRUSHED"};
const char* kTypeSyllable3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainerSyllable1[] = {"SM", "MED", "LG", "JUMBO", "WRAP"};
const char* kContainerSyllable2[] = {"CASE", "BOX", "PACK", "JAR", "BAG",
                                     "DRUM", "PKG", "CAN"};
const char* kColors[] = {"almond",   "antique", "aquamarine", "azure",
                         "beige",    "bisque",  "black",      "blanched",
                         "blue",     "blush",   "brown",      "burlywood",
                         "chartreuse", "chiffon", "chocolate", "coral"};
const char* kCommentWords[] = {
    "carefully", "furiously", "quickly", "slyly",    "blithely", "deposits",
    "requests",  "accounts",  "packages", "theodolites", "pinto",  "beans",
    "instructions", "foxes",  "ideas",   "dependencies", "excuses", "asymptotes",
    "platelets", "sleep",     "wake",    "haggle",   "nag",       "cajole"};

// Key dates (spec constants).
const int32_t kStartDate = CivilToDays(1992, 1, 1);
const int32_t kEndDate = CivilToDays(1998, 12, 31);
const int32_t kCurrentDate = CivilToDays(1995, 6, 17);

// ---------------------------------------------------------------------
// Rendering helpers
// ---------------------------------------------------------------------

/// Buffered CSV line builder (avoids per-field allocation).
class LineWriter {
 public:
  explicit LineWriter(WritableFile* out) : out_(out) {}

  void Int(int64_t v) {
    Sep();
    AppendInt64(&buffer_, v);
  }
  void Dbl(double v) {
    // Two-decimal fixed rendering, like dbgen's money columns.
    Sep();
    char tmp[32];
    std::snprintf(tmp, sizeof(tmp), "%.2f", v);
    buffer_ += tmp;
  }
  void Str(std::string_view v) {
    Sep();
    buffer_.append(v);
  }
  void Date(int32_t days) {
    Sep();
    buffer_ += FormatDate(days);
  }
  Status EndRow() {
    buffer_.push_back('\n');
    first_ = true;
    if (buffer_.size() >= (1 << 20)) {
      NODB_RETURN_IF_ERROR(out_->Append(buffer_));
      buffer_.clear();
    }
    return Status::OK();
  }
  Status Finish() {
    if (!buffer_.empty()) {
      NODB_RETURN_IF_ERROR(out_->Append(buffer_));
      buffer_.clear();
    }
    return out_->Close();
  }

 private:
  void Sep() {
    if (!first_) buffer_.push_back(',');
    first_ = false;
  }
  WritableFile* out_;
  std::string buffer_;
  bool first_ = true;
};

template <typename T, size_t N>
const T& Pick(Rng* rng, const T (&pool)[N]) {
  return pool[rng->Next() % N];
}

std::string Comment(Rng* rng, int min_words, int max_words) {
  int n = static_cast<int>(rng->Uniform(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out.push_back(' ');
    out += Pick(rng, kCommentWords);
  }
  return out;
}

std::string Phone(Rng* rng, int64_t nationkey) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                static_cast<int>(10 + nationkey),
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(1000, 9999)));
  return buf;
}

std::string Address(Rng* rng) {
  int n = static_cast<int>(rng->Uniform(10, 30));
  std::string out;
  for (int i = 0; i < n; ++i) {
    out.push_back(static_cast<char>('a' + rng->Next() % 26));
  }
  return out;
}

std::string KeyedName(const char* prefix, int64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s#%09lld", prefix,
                static_cast<long long>(key));
  return buf;
}

/// p_retailprice per the spec's deterministic formula.
double RetailPrice(int64_t partkey) {
  return (90000.0 + (partkey / 10 % 20001) + 100.0 * (partkey % 1000)) / 100.0;
}

Result<std::unique_ptr<WritableFile>> OpenTable(const std::string& dir,
                                                const std::string& table) {
  return WritableFile::Create(dir + "/" + table + ".csv");
}

}  // namespace

const std::vector<std::string>& TpchTableNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "region", "nation", "supplier", "customer",
      "part",   "partsupp", "orders",  "lineitem"};
  return *names;
}

Schema TpchSchema(const std::string& table) {
  using T = TypeId;
  if (table == "region") {
    return Schema{{"r_regionkey", T::kInt64},
                  {"r_name", T::kString},
                  {"r_comment", T::kString}};
  }
  if (table == "nation") {
    return Schema{{"n_nationkey", T::kInt64},
                  {"n_name", T::kString},
                  {"n_regionkey", T::kInt64},
                  {"n_comment", T::kString}};
  }
  if (table == "supplier") {
    return Schema{{"s_suppkey", T::kInt64},   {"s_name", T::kString},
                  {"s_address", T::kString},  {"s_nationkey", T::kInt64},
                  {"s_phone", T::kString},    {"s_acctbal", T::kDouble},
                  {"s_comment", T::kString}};
  }
  if (table == "customer") {
    return Schema{{"c_custkey", T::kInt64},    {"c_name", T::kString},
                  {"c_address", T::kString},   {"c_nationkey", T::kInt64},
                  {"c_phone", T::kString},     {"c_acctbal", T::kDouble},
                  {"c_mktsegment", T::kString}, {"c_comment", T::kString}};
  }
  if (table == "part") {
    return Schema{{"p_partkey", T::kInt64},    {"p_name", T::kString},
                  {"p_mfgr", T::kString},      {"p_brand", T::kString},
                  {"p_type", T::kString},      {"p_size", T::kInt64},
                  {"p_container", T::kString}, {"p_retailprice", T::kDouble},
                  {"p_comment", T::kString}};
  }
  if (table == "partsupp") {
    return Schema{{"ps_partkey", T::kInt64},
                  {"ps_suppkey", T::kInt64},
                  {"ps_availqty", T::kInt64},
                  {"ps_supplycost", T::kDouble},
                  {"ps_comment", T::kString}};
  }
  if (table == "orders") {
    return Schema{{"o_orderkey", T::kInt64},      {"o_custkey", T::kInt64},
                  {"o_orderstatus", T::kString},  {"o_totalprice", T::kDouble},
                  {"o_orderdate", T::kDate},      {"o_orderpriority", T::kString},
                  {"o_clerk", T::kString},        {"o_shippriority", T::kInt64},
                  {"o_comment", T::kString}};
  }
  if (table == "lineitem") {
    return Schema{{"l_orderkey", T::kInt64},     {"l_partkey", T::kInt64},
                  {"l_suppkey", T::kInt64},      {"l_linenumber", T::kInt64},
                  {"l_quantity", T::kDouble},    {"l_extendedprice", T::kDouble},
                  {"l_discount", T::kDouble},    {"l_tax", T::kDouble},
                  {"l_returnflag", T::kString},  {"l_linestatus", T::kString},
                  {"l_shipdate", T::kDate},      {"l_commitdate", T::kDate},
                  {"l_receiptdate", T::kDate},   {"l_shipinstruct", T::kString},
                  {"l_shipmode", T::kString},    {"l_comment", T::kString}};
  }
  return Schema{};
}

uint64_t TpchNominalRows(const std::string& table, double sf) {
  auto scaled = [sf](double base) {
    return static_cast<uint64_t>(std::max(1.0, base * sf));
  };
  if (table == "region") return 5;
  if (table == "nation") return 25;
  if (table == "supplier") return scaled(10000);
  if (table == "customer") return scaled(150000);
  if (table == "part") return scaled(200000);
  if (table == "partsupp") return scaled(800000);
  if (table == "orders") return scaled(1500000);
  if (table == "lineitem") return scaled(6000000);  // approximate
  return 0;
}

Status GenerateTpch(const std::string& dir, const TpchSpec& spec) {
  const double sf = spec.scale_factor;
  const int64_t suppliers =
      static_cast<int64_t>(TpchNominalRows("supplier", sf));
  const int64_t customers =
      static_cast<int64_t>(TpchNominalRows("customer", sf));
  const int64_t parts = static_cast<int64_t>(TpchNominalRows("part", sf));
  const int64_t orders = static_cast<int64_t>(TpchNominalRows("orders", sf));

  // region
  {
    NODB_ASSIGN_OR_RETURN(auto out, OpenTable(dir, "region"));
    LineWriter w(out.get());
    Rng rng(spec.seed ^ 0x7265u);
    for (int r = 0; r < 5; ++r) {
      w.Int(r);
      w.Str(kRegions[r]);
      w.Str(Comment(&rng, 3, 8));
      NODB_RETURN_IF_ERROR(w.EndRow());
    }
    NODB_RETURN_IF_ERROR(w.Finish());
  }
  // nation
  {
    NODB_ASSIGN_OR_RETURN(auto out, OpenTable(dir, "nation"));
    LineWriter w(out.get());
    Rng rng(spec.seed ^ 0x6e61u);
    for (int n = 0; n < 25; ++n) {
      w.Int(n);
      w.Str(kNations[n]);
      w.Int(kNationRegion[n]);
      w.Str(Comment(&rng, 3, 10));
      NODB_RETURN_IF_ERROR(w.EndRow());
    }
    NODB_RETURN_IF_ERROR(w.Finish());
  }
  // supplier
  {
    NODB_ASSIGN_OR_RETURN(auto out, OpenTable(dir, "supplier"));
    LineWriter w(out.get());
    Rng rng(spec.seed ^ 0x7375u);
    for (int64_t s = 1; s <= suppliers; ++s) {
      int64_t nation = rng.Uniform(0, 24);
      w.Int(s);
      w.Str(KeyedName("Supplier", s));
      w.Str(Address(&rng));
      w.Int(nation);
      w.Str(Phone(&rng, nation));
      w.Dbl(rng.Uniform(-99999, 999999) / 100.0);
      w.Str(Comment(&rng, 5, 15));
      NODB_RETURN_IF_ERROR(w.EndRow());
    }
    NODB_RETURN_IF_ERROR(w.Finish());
  }
  // customer
  {
    NODB_ASSIGN_OR_RETURN(auto out, OpenTable(dir, "customer"));
    LineWriter w(out.get());
    Rng rng(spec.seed ^ 0x6375u);
    for (int64_t c = 1; c <= customers; ++c) {
      int64_t nation = rng.Uniform(0, 24);
      w.Int(c);
      w.Str(KeyedName("Customer", c));
      w.Str(Address(&rng));
      w.Int(nation);
      w.Str(Phone(&rng, nation));
      w.Dbl(rng.Uniform(-99999, 999999) / 100.0);
      w.Str(Pick(&rng, kSegments));
      w.Str(Comment(&rng, 6, 20));
      NODB_RETURN_IF_ERROR(w.EndRow());
    }
    NODB_RETURN_IF_ERROR(w.Finish());
  }
  // part
  {
    NODB_ASSIGN_OR_RETURN(auto out, OpenTable(dir, "part"));
    LineWriter w(out.get());
    Rng rng(spec.seed ^ 0x7061u);
    for (int64_t p = 1; p <= parts; ++p) {
      int m = static_cast<int>(rng.Uniform(1, 5));
      int n = static_cast<int>(rng.Uniform(1, 5));
      std::string name;
      for (int i = 0; i < 5; ++i) {
        if (i > 0) name.push_back(' ');
        name += Pick(&rng, kColors);
      }
      std::string type = std::string(Pick(&rng, kTypeSyllable1)) + " " +
                         Pick(&rng, kTypeSyllable2) + " " +
                         Pick(&rng, kTypeSyllable3);
      std::string container = std::string(Pick(&rng, kContainerSyllable1)) +
                              " " + Pick(&rng, kContainerSyllable2);
      w.Int(p);
      w.Str(name);
      w.Str("Manufacturer#" + std::to_string(m));
      w.Str("Brand#" + std::to_string(m) + std::to_string(n));
      w.Str(type);
      w.Int(rng.Uniform(1, 50));
      w.Str(container);
      w.Dbl(RetailPrice(p));
      w.Str(Comment(&rng, 2, 6));
      NODB_RETURN_IF_ERROR(w.EndRow());
    }
    NODB_RETURN_IF_ERROR(w.Finish());
  }
  // partsupp: 4 suppliers per part (spec).
  {
    NODB_ASSIGN_OR_RETURN(auto out, OpenTable(dir, "partsupp"));
    LineWriter w(out.get());
    Rng rng(spec.seed ^ 0x7073u);
    for (int64_t p = 1; p <= parts; ++p) {
      for (int k = 0; k < 4; ++k) {
        // Spec formula spreads suppliers over the key space.
        int64_t s = (p + (k * ((suppliers / 4) + (p - 1) / suppliers))) %
                        suppliers + 1;
        w.Int(p);
        w.Int(s);
        w.Int(rng.Uniform(1, 9999));
        w.Dbl(rng.Uniform(100, 100000) / 100.0);
        w.Str(Comment(&rng, 5, 25));
        NODB_RETURN_IF_ERROR(w.EndRow());
      }
    }
    NODB_RETURN_IF_ERROR(w.Finish());
  }
  // orders + lineitem (generated together so o_orderstatus and
  // o_totalprice derive from the order's lineitems, as in the spec).
  {
    NODB_ASSIGN_OR_RETURN(auto orders_out, OpenTable(dir, "orders"));
    NODB_ASSIGN_OR_RETURN(auto lines_out, OpenTable(dir, "lineitem"));
    LineWriter ow(orders_out.get());
    LineWriter lw(lines_out.get());
    Rng rng(spec.seed ^ 0x6f72u);
    for (int64_t o = 1; o <= orders; ++o) {
      // Spec: order keys are sparse (8 of every 32); keep them sequential
      // here — no query in the suite depends on sparsity.
      int64_t custkey = rng.Uniform(1, customers);
      int32_t orderdate = static_cast<int32_t>(
          rng.Uniform(kStartDate, kEndDate - 151));
      int nlines = static_cast<int>(rng.Uniform(1, 7));
      double totalprice = 0;
      int f_count = 0, o_count = 0;

      for (int ln = 1; ln <= nlines; ++ln) {
        int64_t partkey = rng.Uniform(1, parts);
        int64_t suppkey = rng.Uniform(1, suppliers);
        double quantity = static_cast<double>(rng.Uniform(1, 50));
        double extended = quantity * RetailPrice(partkey);
        double discount = rng.Uniform(0, 10) / 100.0;
        double tax = rng.Uniform(0, 8) / 100.0;
        int32_t shipdate =
            orderdate + static_cast<int32_t>(rng.Uniform(1, 121));
        int32_t commitdate =
            orderdate + static_cast<int32_t>(rng.Uniform(30, 90));
        int32_t receiptdate =
            shipdate + static_cast<int32_t>(rng.Uniform(1, 30));
        const char* returnflag =
            receiptdate <= kCurrentDate
                ? (rng.NextBool(0.5) ? "R" : "A")
                : "N";
        const char* linestatus = shipdate > kCurrentDate ? "O" : "F";
        if (linestatus[0] == 'F') {
          ++f_count;
        } else {
          ++o_count;
        }
        totalprice += extended * (1.0 + tax) * (1.0 - discount);

        lw.Int(o);
        lw.Int(partkey);
        lw.Int(suppkey);
        lw.Int(ln);
        lw.Dbl(quantity);
        lw.Dbl(extended);
        lw.Dbl(discount);
        lw.Dbl(tax);
        lw.Str(returnflag);
        lw.Str(linestatus);
        lw.Date(shipdate);
        lw.Date(commitdate);
        lw.Date(receiptdate);
        lw.Str(Pick(&rng, kShipInstruct));
        lw.Str(Pick(&rng, kShipModes));
        lw.Str(Comment(&rng, 2, 8));
        NODB_RETURN_IF_ERROR(lw.EndRow());
      }

      const char* status = f_count == nlines ? "F"
                           : o_count == nlines ? "O"
                                               : "P";
      ow.Int(o);
      ow.Int(custkey);
      ow.Str(status);
      ow.Dbl(totalprice);
      ow.Date(orderdate);
      ow.Str(Pick(&rng, kPriorities));
      ow.Str(KeyedName("Clerk", rng.Uniform(1, std::max<int64_t>(
                                                   1, orders / 1000))));
      ow.Int(0);
      ow.Str(Comment(&rng, 4, 16));
      NODB_RETURN_IF_ERROR(ow.EndRow());
    }
    NODB_RETURN_IF_ERROR(ow.Finish());
    NODB_RETURN_IF_ERROR(lw.Finish());
  }
  return Status::OK();
}

}  // namespace nodb
