#ifndef NODB_WORKLOAD_MICRO_H_
#define NODB_WORKLOAD_MICRO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/schema.h"
#include "util/rng.h"
#include "util/status.h"

namespace nodb {

/// Micro-benchmark data generator (paper §5.1): a wide CSV of integer
/// attributes "distributed randomly in the range [0, 1e9)". The paper's file
/// is 11 GB with 7.5M tuples × 150 attributes; specs here scale down by
/// default (laptop scale) and up via fields.
struct MicroDataSpec {
  uint64_t rows = 50000;
  int cols = 50;
  int64_t min_value = 0;
  int64_t max_value = 999999999;
  /// 0 = plain variable-width integers. >0 = zero-padded to this width,
  /// typed as strings (the attribute-width experiment of Fig. 13).
  int attr_width = 0;
  uint64_t seed = 42;
};

/// Schema of the generated table: a1..aN, int64 (or string when
/// attr_width > 0).
Schema MicroSchema(const MicroDataSpec& spec);

/// Writes the CSV file.
Status GenerateWideCsv(const std::string& path, const MicroDataSpec& spec);

/// Writes the same table as JSON Lines: one object per row, keys a1..aN,
/// drawing the identical value sequence as GenerateWideCsv for the same
/// spec — so the two files are relationally equal and differential tests /
/// benchmarks can compare formats on the same data.
Status GenerateWideJsonl(const std::string& path, const MicroDataSpec& spec);

/// "SELECT aX, aY, ... FROM <table>": `nattrs` distinct random attributes
/// drawn from columns [col_lo, col_hi] (1-based, col_hi = -1 means ncols).
/// These are the paper's random select-project queries (100 % selectivity).
std::string RandomProjectionQuery(const std::string& table, int ncols,
                                  int nattrs, Rng* rng, int col_lo = 1,
                                  int col_hi = -1);

/// Fig. 7/8 query shape: one selection on a1 with the given `selectivity`
/// (fraction in [0,1], assuming uniform values), SUM aggregates over the
/// first `projectivity` fraction of the remaining attributes.
std::string SelectivityQuery(const std::string& table,
                             const MicroDataSpec& spec, double selectivity,
                             double projectivity);

}  // namespace nodb

#endif  // NODB_WORKLOAD_MICRO_H_
