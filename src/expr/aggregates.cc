#include "expr/aggregates.h"

namespace nodb {

std::string_view AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kCountStar:
      return "count(*)";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

TypeId AggregateSpec::ResultType() const {
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return TypeId::kInt64;
    case AggFunc::kAvg:
      return TypeId::kDouble;
    case AggFunc::kSum:
      return arg->type == TypeId::kInt64 ? TypeId::kInt64 : TypeId::kDouble;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return arg->type;
  }
  return TypeId::kInt64;
}

AggAccumulator::AggAccumulator(const AggregateSpec* spec) : spec_(spec) {}

void AggAccumulator::Add(const Value& v) {
  if (spec_->func == AggFunc::kCountStar) {
    ++count_;
    return;
  }
  if (v.is_null()) return;
  switch (spec_->func) {
    case AggFunc::kCount:
      ++count_;
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      ++count_;
      if (spec_->arg->type == TypeId::kInt64) {
        sum_i64_ += v.int64();
      } else {
        sum_f64_ += v.AsDouble();
      }
      break;
    case AggFunc::kMin:
      if (extreme_.is_null() || v.Compare(extreme_) < 0) extreme_ = v;
      ++count_;
      break;
    case AggFunc::kMax:
      if (extreme_.is_null() || v.Compare(extreme_) > 0) extreme_ = v;
      ++count_;
      break;
    case AggFunc::kCountStar:
      break;  // handled above
  }
}

Value AggAccumulator::Final() const {
  switch (spec_->func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int64(static_cast<int64_t>(count_));
    case AggFunc::kSum:
      if (count_ == 0) return Value::Null(spec_->ResultType());
      if (spec_->arg->type == TypeId::kInt64) return Value::Int64(sum_i64_);
      return Value::Double(sum_f64_);
    case AggFunc::kAvg: {
      if (count_ == 0) return Value::Null(TypeId::kDouble);
      double total = spec_->arg->type == TypeId::kInt64
                         ? static_cast<double>(sum_i64_)
                         : sum_f64_;
      return Value::Double(total / static_cast<double>(count_));
    }
    case AggFunc::kMin:
    case AggFunc::kMax:
      if (count_ == 0) return Value::Null(spec_->ResultType());
      return extreme_;
  }
  return Value();
}

}  // namespace nodb
