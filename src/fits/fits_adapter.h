#ifndef NODB_FITS_FITS_ADAPTER_H_
#define NODB_FITS_FITS_ADAPTER_H_

#include <memory>
#include <string>

#include "fits/fits_format.h"
#include "raw/adapter_registry.h"
#include "raw/raw_source.h"

namespace nodb {

/// RawSourceAdapter over a FITS binary table (paper §5.3). Rows are
/// fixed-width and field offsets are arithmetic, so there is nothing for a
/// positional map to remember (traits().variable_positions is false) and
/// "tokenizing" is a table lookup; the adaptive *cache* carries all
/// cross-query benefit — exactly the contrast with CSV the paper draws
/// ("while parsing may not be required ... techniques such as caching
/// become more important"). The schema comes from the FITS header.
class FitsAdapter final : public RawSourceAdapter {
 public:
  /// `file` may be a pre-opened handle for `path` to adopt (else null).
  static Result<std::unique_ptr<FitsAdapter>> Make(
      const std::string& path,
      std::unique_ptr<RandomAccessFile> file = nullptr);

  std::string_view format_name() const override { return "fits"; }
  const RawTraits& traits() const override { return traits_; }
  const Schema& schema() const override { return schema_; }
  const std::string& path() const override { return path_; }
  const RandomAccessFile* file() const override { return file_.get(); }
  const FitsTableInfo& info() const { return info_; }

  int64_t row_count_hint() const override {
    return static_cast<int64_t>(info_.num_rows);
  }

  Result<std::unique_ptr<RecordCursor>> OpenCursor() const override;
  Result<uint64_t> FindRecordBoundary(uint64_t offset) const override;

  uint32_t FindForward(const RecordRef& rec, int from_attr, uint32_t from_pos,
                       int to_attr, const PositionSink& sink) const override;
  uint32_t FieldEnd(const RecordRef& rec, int attr, uint32_t pos,
                    uint32_t next_attr_pos) const override;
  Result<Value> ParseField(const RecordRef& rec, int attr, uint32_t pos,
                           uint32_t end) const override;

 private:
  FitsAdapter(std::string path, std::unique_ptr<RandomAccessFile> file,
              FitsTableInfo info);

  std::string path_;
  std::unique_ptr<RandomAccessFile> file_;  // kept open across queries
  FitsTableInfo info_;
  Schema schema_;
  RawTraits traits_;
};

/// Factory + sniffer ("fits"; the SIMPLE magic card, else extension).
std::unique_ptr<AdapterFactory> MakeFitsAdapterFactory();

}  // namespace nodb

#endif  // NODB_FITS_FITS_ADAPTER_H_
