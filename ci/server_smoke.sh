#!/usr/bin/env bash
# End-to-end smoke test for the query service front-end. Run from the
# build directory after a full build:
#
#   ../ci/server_smoke.sh
#
# Launches example_nodb_server on a fixture table, drives it with
# example_nodb_client — 8 concurrent queries (the first wave cold, the
# second warm), one forced mid-stream cancel via the client's SIGINT
# handler — then checks the STATS counters line up with the workload and
# that SIGTERM drains the server cleanly (all sessions joined, exit 0).
set -euo pipefail

SERVER=./example_nodb_server
CLIENT=./example_nodb_client
PORT="${SMOKE_PORT:-7788}"
ROWS="${SMOKE_ROWS:-300000}"
DIR=$(mktemp -d smoke.XXXXXX)

fail() {
  echo "FAIL: $1" >&2
  echo "--- server log ---" >&2
  cat "$DIR/server.log" >&2 || true
  exit 1
}

"$SERVER" --serve --port "$PORT" --rows "$ROWS" > "$DIR/server.log" 2>&1 &
SERVER_PID=$!
cleanup() {
  kill -9 "$SERVER_PID" 2> /dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

# Readiness: poll STATS until the listener answers.
ready=0
for _ in $(seq 1 100); do
  if "$CLIENT" --port "$PORT" --stats > /dev/null 2>&1; then
    ready=1
    break
  fi
  kill -0 "$SERVER_PID" 2> /dev/null || fail "server exited during startup"
  sleep 0.2
done
[ "$ready" = 1 ] || fail "server never became ready on port $PORT"

# Wave 1 (cold: the table has never been fully scanned) and wave 2 (warm:
# positional map + cache now serve the scan): 8 concurrent clients each.
for wave in 1 2; do
  pids=()
  for i in $(seq 1 8); do
    "$CLIENT" --port "$PORT" \
      "SELECT a1, a7 FROM micro WHERE a1 < 100000000" \
      > "$DIR/w${wave}_c${i}.out" 2>&1 &
    pids+=("$!")
  done
  for p in "${pids[@]}"; do
    wait "$p" || fail "wave $wave client failed"
  done
  for i in $(seq 1 8); do
    grep -q '"status":"ok"' "$DIR/w${wave}_c${i}.out" \
      || fail "wave $wave client $i got no ok status"
  done
done

# Forced cancel: a full projection of the whole table streams for far
# longer than the SIGINT delay; the client's handler turns Ctrl-C into the
# CANCEL verb, and the server must answer with a typed cancelled status
# (releasing the scan epoch and admission slot on the way out).
"$CLIENT" --port "$PORT" --raw "SELECT * FROM micro" \
  > "$DIR/cancel.out" 2>&1 &
CANCEL_PID=$!
sleep 0.4
kill -INT "$CANCEL_PID" 2> /dev/null || true
wait "$CANCEL_PID" || true
grep -q '"status":"error","code":"Cancelled"' "$DIR/cancel.out" \
  || fail "forced cancel did not produce a typed cancelled status"

# STATS must reflect the workload: 17 queries started (16 ok + 1 cancel),
# every admission slot and queue back to zero at idle.
"$CLIENT" --port "$PORT" --stats > "$DIR/stats.out" 2>&1 \
  || fail "stats query failed"
for want in \
  '"queries_started":17' \
  '"queries_finished":16' \
  '"queries_cancelled":1' \
  '"queries_rejected":0' \
  '"cold_active":0' \
  '"warm_active":0' \
  '"cold_queued":0' \
  '"warm_queued":0'; do
  grep -q "$want" "$DIR/stats.out" \
    || fail "stats mismatch: wanted $want, got $(cat "$DIR/stats.out")"
done

# Graceful drain: SIGTERM must join every session and exit 0.
kill -TERM "$SERVER_PID"
rc=0
wait "$SERVER_PID" || rc=$?
[ "$rc" = 0 ] || fail "server exited $rc on SIGTERM"
grep -q "bye" "$DIR/server.log" || fail "server log missing clean-drain marker"

echo "server smoke: PASS"
