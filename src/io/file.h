#ifndef NODB_IO_FILE_H_
#define NODB_IO_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace nodb {

/// Read-only random access file over POSIX pread(2). Thread-safe:
/// concurrent Read calls are safe (pread carries its own offset, and the
/// byte accounting is atomic — parallel scan workers share one handle).
class RandomAccessFile {
 public:
  /// Opens `path` for reading.
  static Result<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path);

  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Reads up to `length` bytes at `offset` into `scratch`; returns the bytes
  /// actually read (short only at EOF).
  Result<uint64_t> Read(uint64_t offset, uint64_t length, char* scratch) const;

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Total bytes read through this handle (I/O accounting for benches).
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }

 private:
  RandomAccessFile(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}

  int fd_;
  uint64_t size_;
  std::string path_;
  mutable std::atomic<uint64_t> bytes_read_{0};
};

/// Buffered append-only writer (used by data generators, spill files and the
/// storage engine's bulk paths).
class WritableFile {
 public:
  /// Creates/truncates `path` for writing.
  static Result<std::unique_ptr<WritableFile>> Create(const std::string& path);

  ~WritableFile();
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  Status Append(std::string_view data);
  Status Flush();
  /// Flushes user-space buffers and fsyncs the file to stable storage —
  /// the durability half of a write-temp-then-rename protocol (snapshot
  /// writer): after Sync returns OK, a crash cannot leave the file with
  /// partial content behind a completed rename.
  Status Sync();
  /// Flushes and closes; further writes are invalid. Idempotent.
  Status Close();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  explicit WritableFile(FILE* f) : file_(f) {}

  FILE* file_;
  uint64_t bytes_written_ = 0;
};

}  // namespace nodb

#endif  // NODB_IO_FILE_H_
