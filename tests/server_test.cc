#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engines.h"
#include "json/json_text.h"
#include "pmap/positional_map.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/fs_util.h"
#include "workload/micro.h"

namespace nodb {
namespace {

// =====================================================================
// The query service, tested the way it will be abused: many concurrent
// clients over real sockets against warming in-situ tables, mid-stream
// disconnects, CANCEL verbs, deadlines, and admission overflow. Every
// result a client receives is compared against the direct Database::Query
// path — the server is a transport, it must never change an answer.
// Runs under TSan/ASan in CI (label: unit).
// =====================================================================

// ------------------------------------------------------------------ client

/// Minimal blocking line-oriented test client.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~TestClient() { Close(); }

  bool connected() const { return connected_; }

  /// Abrupt close — no QUIT, no drain; what a crashed client looks like.
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool Send(const std::string& line) {
    std::string framed = line + "\n";
    size_t off = 0;
    while (off < framed.size()) {
      ssize_t n =
          ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Next response line, or false on EOF / 10s of silence.
  bool ReadLine(std::string* line) {
    while (true) {
      size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      pollfd pfd{fd_, POLLIN, 0};
      int ready = ::poll(&pfd, 1, /*timeout_ms=*/10000);
      if (ready <= 0) return false;
      char chunk[8192];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

struct Exchange {
  bool transport_ok = false;  // all lines arrived
  std::string schema;
  std::vector<std::string> row_lines;  // the raw {"rows":...} lines
  std::string terminal;                // the {"status":...} line
};

/// One full query round trip over an open client.
Exchange RunQuery(TestClient* client, const std::string& sql,
                  int64_t deadline_ms = 0) {
  Exchange ex;
  std::string req = "{\"q\":";
  AppendJsonQuoted(&req, sql);
  if (deadline_ms > 0) {
    req += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  }
  req += "}";
  if (!client->Send(req)) return ex;
  std::string line;
  while (client->ReadLine(&line)) {
    if (line.find("\"status\"") != std::string::npos) {
      ex.terminal = line;
      ex.transport_ok = true;
      return ex;
    }
    if (line.find("\"schema\"") != std::string::npos) {
      ex.schema = line;
    } else {
      ex.row_lines.push_back(line);
    }
  }
  return ex;
}

bool IsOk(const Exchange& ex) {
  return ex.transport_ok &&
         ex.terminal.find("\"status\":\"ok\"") != std::string::npos;
}

bool IsErrorCode(const Exchange& ex, const std::string& code) {
  return ex.transport_ok &&
         ex.terminal.find("\"code\":\"" + code + "\"") != std::string::npos;
}

/// Joins the row arrays of `{"rows":[...]}` lines into one framing-free
/// byte string — batch boundaries may legitimately differ between a cold
/// parse and a cache-served rescan, the row bytes may not.
std::string JoinRowLines(const std::vector<std::string>& row_lines) {
  std::string joined;
  for (const std::string& line : row_lines) {
    constexpr std::string_view kPrefix = "{\"rows\":[";
    constexpr std::string_view kSuffix = "]}";
    EXPECT_EQ(line.substr(0, kPrefix.size()), kPrefix) << line;
    if (line.size() < kPrefix.size() + kSuffix.size()) continue;
    std::string_view body(line);
    body.remove_prefix(kPrefix.size());
    body.remove_suffix(kSuffix.size());
    if (!joined.empty() && !body.empty()) joined.push_back(',');
    joined.append(body);
  }
  return joined;
}

/// The reference serialization: drains a direct Database::Query cursor
/// through the same wire formatter the server uses. Server responses must
/// be byte-identical to this, modulo batch framing.
std::string DirectWireRows(Database* db, const std::string& sql,
                           std::string* schema_line) {
  std::vector<std::string> lines;
  auto cursor = db->Query(sql);
  EXPECT_TRUE(cursor.ok()) << sql << "\n" << cursor.status();
  if (!cursor.ok()) return "";
  *schema_line = SchemaLine(cursor->schema());
  schema_line->pop_back();  // strip the trailing newline for comparison
  RowBatch batch = cursor->MakeBatch();
  while (true) {
    auto n = cursor->Next(&batch);
    EXPECT_TRUE(n.ok()) << sql << "\n" << n.status();
    if (!n.ok() || *n == 0) break;
    std::string line;
    AppendBatchLine(&line, batch, *n);
    line.pop_back();
    lines.push_back(std::move(line));
  }
  return JoinRowLines(lines);
}

// ------------------------------------------------------------------ setup

struct ServedDb {
  std::unique_ptr<Database> db;
  std::unique_ptr<QueryServer> server;  // before db: destroyed first
  std::unique_ptr<TempDir> dir;
};

/// One raw CSV table `t` and its relationally-equal JSONL twin `tj`,
/// both registered in situ and cold, served on an ephemeral port.
ServedDb Serve(uint64_t rows, ServerConfig config = ServerConfig{},
               EngineConfig engine_cfg =
                   EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC)) {
  ServedDb s;
  s.dir = std::make_unique<TempDir>();
  MicroDataSpec spec;
  spec.rows = rows;
  spec.cols = 6;
  spec.seed = 20260807;
  std::string csv = s.dir->File("t.csv");
  std::string jsonl = s.dir->File("t.jsonl");
  EXPECT_TRUE(GenerateWideCsv(csv, spec).ok());
  EXPECT_TRUE(GenerateWideJsonl(jsonl, spec).ok());
  s.db = std::make_unique<Database>(engine_cfg);
  EXPECT_TRUE(s.db->RegisterCsv("t", csv, MicroSchema(spec)).ok());
  EXPECT_TRUE(s.db->Open("tj", jsonl).ok());
  s.server = std::make_unique<QueryServer>(s.db.get(), config);
  EXPECT_TRUE(s.server->Start().ok());
  return s;
}

/// Spins until `pred(stats)` holds (10s cap) — for draining races where the
/// client saw its terminal line but the session hasn't parked yet.
bool WaitForStats(QueryServer* server,
                  const std::function<bool(const ServerStats&)>& pred) {
  for (int i = 0; i < 1000; ++i) {
    if (pred(server->Stats())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

// ------------------------------------------------------------------ tests

TEST(ServerProtocol, ParseRequestForms) {
  auto q = ParseRequest("{\"q\": \"SELECT 1\", \"deadline_ms\": 250, "
                        "\"id\": \"abc\", \"future_key\": [1,2]}");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->kind, Request::Kind::kQuery);
  EXPECT_EQ(q->sql, "SELECT 1");
  EXPECT_EQ(q->deadline_ms, 250);
  EXPECT_EQ(q->id, "abc");

  auto stats = ParseRequest("  stats  ");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->kind, Request::Kind::kStats);
  auto cancel = ParseRequest("{\"op\": \"cancel\"}");
  ASSERT_TRUE(cancel.ok());
  EXPECT_EQ(cancel->kind, Request::Kind::kCancel);

  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("{}").ok());
  EXPECT_FALSE(ParseRequest("{\"deadline_ms\": 5}").ok());  // no q/op
  EXPECT_FALSE(ParseRequest("{\"q\": 42}").ok());           // not a string
  EXPECT_FALSE(ParseRequest("{\"q\": \"SELECT 1\"").ok());  // unterminated
  EXPECT_FALSE(ParseRequest("{\"deadline_ms\": -1, \"q\": \"x\"}").ok());
  EXPECT_FALSE(ParseRequest("EXPLODE").ok());
}

TEST(ServerAdmission, OverflowRejectsAndShutdownWakes) {
  AdmissionConfig cfg;
  cfg.max_cold = 1;
  cfg.cold_queue_limit = 1;
  AdmissionController ac(cfg);

  auto first = ac.Admit(/*cold=*/true, nullptr);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(ac.active(true), 1);

  // Queue slot 1: a waiter parks. Fill it from another thread, then a third
  // request must be rejected immediately (queue at bound).
  std::atomic<bool> waiter_done{false};
  std::atomic<bool> release_ok{false};
  Status waiter_status;
  std::thread waiter([&] {
    auto t = ac.Admit(true, nullptr);
    waiter_status = t.ok() ? Status::OK() : t.status();
    waiter_done.store(true);
    // Hold the ticket (RAII) until the main thread is done asserting.
    while (!release_ok.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (ac.queued(true) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto overflow = ac.Admit(true, nullptr);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);

  // Releasing the slot admits the queued waiter.
  first->Release();
  while (!waiter_done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(waiter_status.ok()) << waiter_status;
  EXPECT_EQ(ac.active(true), 1);

  // A cancelled control aborts a queued wait with the cancel error (the
  // waiter still holds the lane's only slot).
  auto control = std::make_shared<ExecControl>();
  control->cancelled.store(true);
  auto cancelled = ac.Admit(true, control);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);

  release_ok.store(true);
  waiter.join();

  // Shutdown fails new admissions.
  ac.Shutdown();
  auto after = ac.Admit(false, nullptr);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kCancelled);
}

TEST(ServerDirectApi, ExecuteHonorsDeadlineAndCancel) {
  // Satellite regression: Execute() used to drop the caller's ExecOptions
  // entirely. Both Query and Execute now honor QueryOptions.
  TempDir dir;
  MicroDataSpec spec;
  spec.rows = 20000;
  spec.cols = 6;
  std::string csv = dir.File("t.csv");
  ASSERT_TRUE(GenerateWideCsv(csv, spec).ok());
  Database db(EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC));
  ASSERT_TRUE(db.RegisterCsv("t", csv, MicroSchema(spec)).ok());

  QueryOptions expired;
  expired.deadline = std::chrono::steady_clock::now();  // already past
  auto r = db.Execute("SELECT SUM(a2) FROM t", expired);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded) << r.status();

  QueryOptions cancelled;
  cancelled.control = std::make_shared<ExecControl>();
  cancelled.control->cancelled.store(true);
  auto c = db.Execute("SELECT SUM(a2) FROM t", cancelled);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kCancelled) << c.status();

  // A cursor already streaming reacts to a cancel flipped mid-flight.
  QueryOptions streaming;
  streaming.control = std::make_shared<ExecControl>();
  streaming.batch_size = 16;
  auto cursor = db.Query("SELECT a1 FROM t WHERE a1 >= 0", streaming);
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  RowBatch batch = cursor->MakeBatch();
  auto first = cursor->Next(&batch);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_GT(*first, 0u);
  streaming.control->cancelled.store(true);
  Result<size_t> next = cursor->Next(&batch);
  while (next.ok() && *next > 0) next = cursor->Next(&batch);  // bounded
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kCancelled) << next.status();

  // And the options-free paths still work.
  auto plain = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(plain.ok()) << plain.status();
}

TEST(ServerTest, RoundTripAndVerbs) {
  ServedDb s = Serve(2000);
  TestClient client(s.server->port());
  ASSERT_TRUE(client.connected());

  Exchange ex = RunQuery(&client, "SELECT COUNT(*), SUM(a1) FROM t");
  ASSERT_TRUE(IsOk(ex)) << ex.terminal;
  EXPECT_EQ(ex.row_lines.size(), 1u);
  EXPECT_NE(ex.terminal.find("\"rows\":1"), std::string::npos);
  EXPECT_NE(ex.terminal.find("\"cold\":true"), std::string::npos);

  // Same query again: the table is warm now.
  ex = RunQuery(&client, "SELECT COUNT(*), SUM(a1) FROM t");
  ASSERT_TRUE(IsOk(ex));
  EXPECT_NE(ex.terminal.find("\"cold\":false"), std::string::npos);

  // PING, STATS, a malformed line (connection survives), and a SQL error.
  std::string line;
  ASSERT_TRUE(client.Send("PING"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_NE(line.find("pong"), std::string::npos);
  ASSERT_TRUE(client.Send("STATS"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_NE(line.find("\"queries_finished\":2"), std::string::npos) << line;
  ASSERT_TRUE(client.Send("this is not a request"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_NE(line.find("InvalidArgument"), std::string::npos);
  Exchange bad = RunQuery(&client, "SELECT nope FROM t");
  ASSERT_TRUE(bad.transport_ok);
  EXPECT_NE(bad.terminal.find("\"status\":\"error\""), std::string::npos);

  // The connection still serves queries after both error shapes.
  ex = RunQuery(&client, "SELECT COUNT(*) FROM tj");
  EXPECT_TRUE(IsOk(ex)) << ex.terminal;
}

TEST(ServerTest, SixteenClientsMatchDirectQueryByteForByte) {
  ServedDb s = Serve(12000);

  const std::string queries[] = {
      "SELECT COUNT(*) AS n, SUM(a2) AS s FROM t WHERE a1 >= 0",
      "SELECT a1, a2 FROM t WHERE a1 < 120000000",
      "SELECT SUM(a5) AS s FROM t WHERE a2 >= 250000000 AND a2 < 750000000",
      "SELECT a3, a4 FROM tj WHERE a3 < 80000000",
      "SELECT COUNT(*) AS n FROM tj WHERE a6 < 500000000",
  };
  constexpr int kQueries = 5;

  // Reference wire bytes from the direct cursor path. Computed up front, so
  // the server threads race against *warming* adaptive structures while the
  // expected answers are pinned.
  std::string expected_schema[kQueries];
  std::string expected_rows[kQueries];
  for (int q = 0; q < kQueries; ++q) {
    expected_rows[q] =
        DirectWireRows(s.db.get(), queries[q], &expected_schema[q]);
  }

  constexpr int kClients = 16;
  constexpr int kIters = 6;
  std::atomic<int> transport_failures{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(s.server->port());
      if (!client.connected()) {
        ++transport_failures;
        return;
      }
      for (int i = 0; i < kIters; ++i) {
        int q = (c + i) % kQueries;
        Exchange ex = RunQuery(&client, queries[q]);
        if (!IsOk(ex)) {
          ++transport_failures;
          continue;
        }
        if (ex.schema != expected_schema[q] ||
            JoinRowLines(ex.row_lines) != expected_rows[q]) {
          ++mismatches;
        }
      }
      client.Send("QUIT");
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(transport_failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // Counter consistency across the whole storm: every started query has
  // exactly one terminal outcome, and the volume counters moved.
  ASSERT_TRUE(WaitForStats(s.server.get(), [](const ServerStats& st) {
    return st.sessions_active == 0;
  }));
  ServerStats st = s.server->Stats();
  EXPECT_EQ(st.queries_started, static_cast<uint64_t>(kClients * kIters));
  EXPECT_EQ(st.queries_started,
            st.queries_finished + st.queries_failed + st.queries_cancelled +
                st.queries_deadline + st.queries_rejected);
  EXPECT_EQ(st.queries_finished, static_cast<uint64_t>(kClients * kIters));
  EXPECT_EQ(st.sessions_opened, static_cast<uint64_t>(kClients));
  EXPECT_EQ(st.cold_admitted + st.warm_admitted, st.queries_started);
  EXPECT_GT(st.rows_streamed, 0u);
  EXPECT_GT(st.bytes_streamed, 0u);
  EXPECT_EQ(st.latency_samples, st.queries_finished);
  EXPECT_EQ(st.cold_active, 0);
  EXPECT_EQ(st.warm_active, 0);
}

TEST(ServerTest, DeadlineExpiryIsTypedAndReleasesSlots) {
  ServedDb s = Serve(60000);
  TestClient client(s.server->port());
  ASSERT_TRUE(client.connected());

  // 1ms against a cold 60k-row parse: expires mid-scan, deterministically.
  Exchange ex = RunQuery(&client, "SELECT SUM(a2), SUM(a3) FROM t",
                         /*deadline_ms=*/1);
  ASSERT_TRUE(ex.transport_ok);
  EXPECT_TRUE(IsErrorCode(ex, "DeadlineExceeded")) << ex.terminal;

  // The lane slot came back with the failed query; the next query (no
  // deadline) runs to completion on the same connection.
  ex = RunQuery(&client, "SELECT COUNT(*) FROM t");
  ASSERT_TRUE(IsOk(ex)) << ex.terminal;

  ServerStats st = s.server->Stats();
  EXPECT_EQ(st.queries_deadline, 1u);
  EXPECT_EQ(st.cold_active, 0);
  EXPECT_EQ(st.warm_active, 0);
}

TEST(ServerTest, MidStreamCancelVerb) {
  EngineConfig engine_cfg =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  engine_cfg.batch_size = 64;  // many batch boundaries to catch CANCEL at
  ServedDb s = Serve(30000, ServerConfig{}, engine_cfg);
  TestClient client(s.server->port());
  ASSERT_TRUE(client.connected());

  // Full-table projection: tens of thousands of rows across hundreds of
  // batches. Read a couple of row lines, then CANCEL mid-stream.
  std::string req = "{\"q\":";
  AppendJsonQuoted(&req, std::string("SELECT a1, a2, a3 FROM t WHERE a1 >= 0"));
  req += "}";
  ASSERT_TRUE(client.Send(req));
  std::string line;
  int row_lines = 0;
  bool saw_terminal = false;
  std::string terminal;
  while (client.ReadLine(&line)) {
    if (line.find("\"status\"") != std::string::npos) {
      terminal = line;
      saw_terminal = true;
      break;
    }
    if (line.find("\"rows\"") != std::string::npos && ++row_lines == 2) {
      ASSERT_TRUE(client.Send("CANCEL"));
    }
  }
  ASSERT_TRUE(saw_terminal);
  // Either the cancel landed mid-stream (typed Cancelled terminal) or the
  // query finished first — with 30k rows against a cold scan the cancel
  // wins in practice; both keep the session alive.
  if (terminal.find("\"status\":\"ok\"") == std::string::npos) {
    EXPECT_NE(terminal.find("\"code\":\"Cancelled\""), std::string::npos)
        << terminal;
    ServerStats st = s.server->Stats();
    EXPECT_EQ(st.queries_cancelled, 1u);
  }

  // The session survives a cancel and serves the next query.
  Exchange ex = RunQuery(&client, "SELECT COUNT(*) FROM t");
  EXPECT_TRUE(IsOk(ex)) << ex.terminal;
}

TEST(ServerTest, MidStreamDisconnectReleasesEpochAndSlot) {
  // The server-side twin of PositionalMapBudget.AbandonedQueryReleasesItsEpoch:
  // a client that vanishes mid-stream abandons the session's cursor; the
  // scan's pmap epoch and its cold admission slot must both come back, or
  // the tight-budget map wedges shut and the cold lane starves.
  EngineConfig engine_cfg =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPM);
  engine_cfg.batch_size = 32;
  engine_cfg.tuples_per_chunk = 64;
  engine_cfg.pm_budget_bytes = 220 * 1024;  // spine + a few chunks only
  ServerConfig config;
  config.admission.max_cold = 1;  // a leaked ticket would block the retry
  ServedDb s = Serve(20000, config, engine_cfg);
  PositionalMap* pm = s.db->runtime("t")->pmap.get();
  ASSERT_NE(pm, nullptr);
  EXPECT_EQ(pm->active_epoch_count(), 0u);

  {
    TestClient victim(s.server->port());
    ASSERT_TRUE(victim.connected());
    std::string req = "{\"q\":";
    AppendJsonQuoted(&req,
                     std::string("SELECT a1, a2, a3, a4 FROM t WHERE a1 >= 0"));
    req += "}";
    ASSERT_TRUE(victim.Send(req));
    // Read two lines (schema + first rows): the scan is mid-stream and
    // holds its insertion epoch open. Then vanish without a word.
    std::string line;
    ASSERT_TRUE(victim.ReadLine(&line));
    ASSERT_TRUE(victim.ReadLine(&line));
    EXPECT_EQ(pm->active_epoch_count(), 1u);
    victim.Close();
  }

  // The abandoned query must be detected and fully torn down: the session
  // cancels the cursor, whose teardown releases the cold admission slot
  // AND ends the scan's epoch (the session counts the cancel only after
  // both, so this wait is race-free).
  ASSERT_TRUE(WaitForStats(s.server.get(), [](const ServerStats& st) {
    return st.queries_cancelled == 1 && st.cold_active == 0;
  })) << "disconnect did not release the cold admission slot";
  EXPECT_EQ(pm->active_epoch_count(), 0u)
      << "abandoned session leaked its scan epoch — under budget pressure "
         "the map would refuse every future eviction and wedge shut";

  // The cold lane (capacity 1) has its slot back and the map keeps
  // learning: full scans over fresh attributes run to completion.
  TestClient retry(s.server->port());
  ASSERT_TRUE(retry.connected());
  Exchange ex = RunQuery(&retry, "SELECT SUM(a5), SUM(a6) FROM t");
  ASSERT_TRUE(IsOk(ex)) << ex.terminal;
  ex = RunQuery(&retry, "SELECT COUNT(*) FROM t WHERE a5 >= 0");
  ASSERT_TRUE(IsOk(ex)) << ex.terminal;
  EXPECT_EQ(pm->active_epoch_count(), 0u);
}

TEST(ServerTest, AdmissionOverflowRejectsDeterministically) {
  // Cold lane of 1 with no queue: while one cold query is mid-stream, any
  // other cold query must bounce immediately with ResourceExhausted.
  EngineConfig engine_cfg =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  engine_cfg.batch_size = 128;
  ServerConfig config;
  config.admission.max_cold = 1;
  config.admission.cold_queue_limit = 0;
  ServedDb s = Serve(60000, config, engine_cfg);

  // Occupant: a full-table projection (tens of MB — far beyond the socket
  // buffers), with the client never reading past the schema line. The
  // server blocks in send() mid-stream, holding its cold ticket.
  TestClient occupant(s.server->port());
  ASSERT_TRUE(occupant.connected());
  std::string req = "{\"q\":";
  AppendJsonQuoted(
      &req, std::string("SELECT a1, a2, a3, a4, a5, a6 FROM t WHERE a1 >= 0"));
  req += "}";
  ASSERT_TRUE(occupant.Send(req));
  std::string line;
  ASSERT_TRUE(occupant.ReadLine(&line));  // schema: the query was admitted
  ASSERT_TRUE(WaitForStats(s.server.get(), [](const ServerStats& st) {
    return st.cold_active == 1;
  }));

  // Deterministic rejection for the second cold query.
  TestClient rejected(s.server->port());
  ASSERT_TRUE(rejected.connected());
  Exchange ex = RunQuery(&rejected, "SELECT SUM(a2) FROM tj");
  ASSERT_TRUE(ex.transport_ok);
  EXPECT_TRUE(IsErrorCode(ex, "ResourceExhausted")) << ex.terminal;
  ASSERT_TRUE(WaitForStats(s.server.get(), [](const ServerStats& st) {
    return st.queries_rejected == 1;
  }));

  // Free the lane (abrupt disconnect) and the rejected client's retry goes
  // through — overflow is load shedding, not a dead server.
  occupant.Close();
  ASSERT_TRUE(WaitForStats(s.server.get(), [](const ServerStats& st) {
    return st.cold_active == 0;
  }));
  ex = RunQuery(&rejected, "SELECT SUM(a2) FROM tj");
  EXPECT_TRUE(IsOk(ex)) << ex.terminal;
}

TEST(ServerTest, SessionLimitAndGracefulStop) {
  ServerConfig config;
  config.max_sessions = 1;
  ServedDb s = Serve(2000, config);

  TestClient first(s.server->port());
  ASSERT_TRUE(first.connected());
  Exchange ex = RunQuery(&first, "SELECT COUNT(*) FROM t");
  ASSERT_TRUE(IsOk(ex));

  // Second connection: typed refusal, then EOF.
  TestClient second(s.server->port());
  ASSERT_TRUE(second.connected());
  std::string line;
  ASSERT_TRUE(second.ReadLine(&line));
  EXPECT_NE(line.find("ResourceExhausted"), std::string::npos) << line;
  EXPECT_FALSE(second.ReadLine(&line));

  // Stop with a live session: drains cleanly, and the client sees EOF.
  s.server->Stop();
  EXPECT_FALSE(first.ReadLine(&line));
  ServerStats st = s.server->Stats();
  EXPECT_EQ(st.sessions_active, 0);
  // Stop is idempotent (the fixture destructor will run it again).
  s.server->Stop();
}

}  // namespace
}  // namespace nodb
