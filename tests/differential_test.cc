#include <gtest/gtest.h>

#include <map>

#include "csv/writer.h"
#include "engine/engines.h"
#include "io/inflate_file.h"
#include "json/jsonl_writer.h"
#include "util/fs_util.h"
#include "util/rng.h"
#include "util/str_conv.h"

namespace nodb {
namespace {

/// Differential testing: a random table and random queries, executed by
/// every system under test. All engines share the executor but differ in
/// access paths (in-situ with/without map/cache/stats, loaded heap, packed
/// rows), so agreement across engines — and across repetitions while the
/// adaptive structures warm up — is a strong end-to-end correctness check.

struct RandomTable {
  Schema schema;
  std::vector<Row> rows;
};

/// Writes `rows` as CSV at `path` (CSV needs no schema: NULLs are empty
/// fields, values render via Value::ToString).
void WriteCsvFile(const std::string& path, const std::vector<Row>& rows) {
  auto out = WritableFile::Create(path);
  ASSERT_TRUE(out.ok());
  CsvWriter writer(out->get(), CsvDialect{});
  for (const Row& row : rows) {
    ASSERT_TRUE(writer.WriteRow(row).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  ASSERT_TRUE((*out)->Close().ok());
}

/// Writes the same rows as JSON Lines — the relational content is identical,
/// only the raw framing differs, so a CSV-backed and a JSONL-backed engine
/// must answer every query identically.
void WriteJsonlFile(const std::string& path, const Schema& schema,
                    const std::vector<Row>& rows) {
  auto out = WritableFile::Create(path);
  ASSERT_TRUE(out.ok());
  JsonlWriter writer(out->get(), &schema);
  for (const Row& row : rows) {
    ASSERT_TRUE(writer.WriteRow(row).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  ASSERT_TRUE((*out)->Close().ok());
}

/// Gzips `plain_path` next to itself (same name + ".gz") and returns the
/// compressed path. The gz-backed engines below serve the *same relational
/// content* through the decompression layer, so they must agree with every
/// uncompressed engine on every query.
std::string MakeGzCopy(const std::string& plain_path) {
  auto content = ReadFileToString(plain_path);
  EXPECT_TRUE(content.ok());
  std::string gz_path = plain_path + ".gz";
  EXPECT_TRUE(WriteStringToFile(gz_path, GzipCompress(*content)).ok());
  return gz_path;
}

RandomTable MakeRandomTable(Rng* rng) {
  RandomTable table;
  int ncols = static_cast<int>(rng->Uniform(3, 8));
  for (int c = 0; c < ncols; ++c) {
    TypeId type;
    switch (rng->Uniform(0, 3)) {
      case 0:
        type = TypeId::kInt64;
        break;
      case 1:
        type = TypeId::kDouble;
        break;
      case 2:
        type = TypeId::kString;
        break;
      default:
        type = TypeId::kDate;
        break;
    }
    table.schema.AddColumn({"c" + std::to_string(c), type});
  }
  int nrows = static_cast<int>(rng->Uniform(50, 400));
  for (int r = 0; r < nrows; ++r) {
    Row row;
    for (int c = 0; c < ncols; ++c) {
      TypeId type = table.schema.column(c).type;
      if (rng->NextBool(0.05)) {
        row.push_back(Value::Null(type));
        continue;
      }
      switch (type) {
        case TypeId::kInt64:
          // Low cardinality so GROUP BY and equality predicates hit.
          row.push_back(Value::Int64(rng->Uniform(0, 20)));
          break;
        case TypeId::kDouble:
          row.push_back(Value::Double(
              static_cast<double>(rng->Uniform(0, 1000)) / 4.0));
          break;
        case TypeId::kString: {
          static const char* kWords[] = {"ash", "birch", "cedar", "doum",
                                         "elm", "fir"};
          row.push_back(Value::String(kWords[rng->Next() % 6]));
          break;
        }
        case TypeId::kDate:
          row.push_back(
              Value::Date(static_cast<int32_t>(rng->Uniform(8000, 9000))));
          break;
        case TypeId::kBool:
          row.push_back(Value::Bool(rng->NextBool(0.5)));
          break;
      }
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

/// One random predicate over a random column, with literals drawn from the
/// table's actual value domains.
std::string RandomPredicate(const RandomTable& table, Rng* rng) {
  int c = static_cast<int>(rng->Uniform(0, table.schema.num_columns() - 1));
  const std::string& name = table.schema.column(c).name;
  TypeId type = table.schema.column(c).type;
  switch (type) {
    case TypeId::kInt64: {
      int64_t v = rng->Uniform(0, 20);
      const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
      return name + " " + ops[rng->Next() % 6] + " " + std::to_string(v);
    }
    case TypeId::kDouble: {
      int64_t v = rng->Uniform(0, 250);
      return name + (rng->NextBool(0.5) ? " < " : " >= ") +
             std::to_string(v) + ".0";
    }
    case TypeId::kString: {
      static const char* kWords[] = {"ash", "birch", "cedar", "doum",
                                     "elm", "fir"};
      const char* w = kWords[rng->Next() % 6];
      switch (rng->Next() % 3) {
        case 0:
          return name + " = '" + w + "'";
        case 1:
          return name + " LIKE '" + std::string(1, w[0]) + "%'";
        default:
          return name + " IN ('" + w + "', 'elm')";
      }
    }
    case TypeId::kDate: {
      int32_t d = static_cast<int32_t>(rng->Uniform(8000, 9000));
      return name + (rng->NextBool(0.5) ? " < DATE '" : " >= DATE '") +
             FormatDate(d) + "'";
    }
    default:
      return name + " IS NOT NULL";
  }
}

std::string RandomQuery(const RandomTable& table, Rng* rng) {
  int ncols = table.schema.num_columns();
  bool aggregate = rng->NextBool(0.4);
  std::string sql = "SELECT ";
  if (aggregate) {
    // Group by one low-cardinality column, aggregate another.
    int g = -1, a = -1;
    for (int c = 0; c < ncols; ++c) {
      TypeId t = table.schema.column(c).type;
      if (g < 0 && (t == TypeId::kInt64 || t == TypeId::kString)) g = c;
      if (t == TypeId::kInt64 || t == TypeId::kDouble) a = c;
    }
    if (g < 0 || a < 0) return "SELECT COUNT(*) FROM t";
    const std::string& gn = table.schema.column(g).name;
    const std::string& an = table.schema.column(a).name;
    sql += gn + ", COUNT(*) AS n, SUM(" + an + ") AS s, MIN(" + an +
           ") AS lo, MAX(" + an + ") AS hi FROM t";
    int npreds = static_cast<int>(rng->Uniform(0, 2));
    for (int p = 0; p < npreds; ++p) {
      sql += (p == 0 ? " WHERE " : " AND ") + RandomPredicate(table, rng);
    }
    sql += " GROUP BY " + gn;
    return sql;
  }
  // Plain select-project: random attribute subset (the paper's micro
  // queries), random conjunctive filter.
  int nproj = static_cast<int>(rng->Uniform(1, ncols));
  std::vector<int> cols;
  for (int i = 0; i < nproj; ++i) {
    cols.push_back(static_cast<int>(rng->Uniform(0, ncols - 1)));
  }
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += table.schema.column(cols[i]).name;
  }
  sql += " FROM t";
  int npreds = static_cast<int>(rng->Uniform(0, 3));
  for (int p = 0; p < npreds; ++p) {
    sql += (p == 0 ? " WHERE " : " AND ") + RandomPredicate(table, rng);
  }
  return sql;
}

/// MakeEngine(sut) with the parse-kernel path pinned to the scalar
/// reference (EngineConfig::scalar_kernels). Every engine variant below
/// runs once with the active SWAR/SIMD kernels and once forced scalar; the
/// two must be byte-identical on every query, cold and warm — the
/// engine-level half of the kernel differential gate.
std::unique_ptr<Database> MakeEngineWithKernels(SystemUnderTest sut,
                                                bool scalar_kernels) {
  EngineConfig config = EngineConfig::ForSystem(sut);
  config.scalar_kernels = scalar_kernels;
  return std::make_unique<Database>(config);
}

/// One raw table for the snapshot-reopen engine below: where it lives, how
/// it is framed, and the schema both registrations must declare.
struct SnapshotTableSpec {
  std::string name;
  std::string path;
  Schema schema;
  bool jsonl;
};

/// Builds the restart-equivalence engine: a first PM+C engine warms its
/// positional map, column cache and statistics with a full-width scan of
/// every table, persists them via Database::Snapshot, and is destroyed.
/// The returned engine re-opens the same raw files in a fresh process-like
/// state whose only warmth is the on-disk snapshot — every query it answers
/// must be byte-identical to the live-warmed engines it runs alongside.
std::unique_ptr<Database> MakeSnapshotReopenEngine(
    const std::string& snap_dir, const std::vector<SnapshotTableSpec>& tables,
    bool scalar_kernels) {
  EngineConfig config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  config.scalar_kernels = scalar_kernels;
  config.snapshot_dir = snap_dir;
  auto open_all = [&tables](Database* db) {
    for (const SnapshotTableSpec& t : tables) {
      if (t.jsonl) {
        OpenOptions options;
        options.schema = t.schema;
        EXPECT_TRUE(db->Open(t.name, t.path, options).ok()) << t.path;
      } else {
        EXPECT_TRUE(db->RegisterCsv(t.name, t.path, t.schema).ok()) << t.path;
      }
    }
  };
  {
    Database warm(config);
    open_all(&warm);
    for (const SnapshotTableSpec& t : tables) {
      // A full-width projection touches every attribute, so the snapshot
      // carries positions, cached columns and stats for the whole schema.
      std::string sql = "SELECT ";
      for (int c = 0; c < t.schema.num_columns(); ++c) {
        if (c > 0) sql += ", ";
        sql += t.schema.column(c).name;
      }
      sql += " FROM " + t.name;
      auto scanned = warm.Execute(sql);
      EXPECT_TRUE(scanned.ok()) << sql;
      auto written = warm.Snapshot(t.name);
      EXPECT_TRUE(written.ok()) << t.name << ": " << written.status();
    }
  }  // the warm engine dies here; only the snapshot files survive
  auto db = std::make_unique<Database>(config);
  open_all(db.get());
  for (const SnapshotTableSpec& t : tables) {
    EXPECT_EQ(db->runtime(t.name)->snapshot_state.load(),
              SnapshotState::kLoaded)
        << t.name << " did not reload its snapshot";
  }
  return db;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllEnginesAgreeOnRandomWorkload) {
  Rng rng(GetParam());
  TempDir dir;
  RandomTable table = MakeRandomTable(&rng);
  std::string csv_path = dir.File("t.csv");
  std::string jsonl_path = dir.File("t.jsonl");
  WriteCsvFile(csv_path, table.rows);
  WriteJsonlFile(jsonl_path, table.schema, table.rows);
  std::string csv_gz_path, jsonl_gz_path;
  if (InflateSupported()) {
    csv_gz_path = MakeGzCopy(csv_path);
    jsonl_gz_path = MakeGzCopy(jsonl_path);
  }

  // Instantiate every system under test once; adaptive state persists
  // across the whole query sequence (as it would in production). Every
  // in-situ system runs twice — once over the CSV file and once over the
  // same rows as JSON Lines, registered through the format-sniffing
  // Database::Open — so the raw-source adapters are differentially checked
  // against each other, not just against the loaded engines.
  std::vector<std::pair<std::string, std::unique_ptr<Database>>> engines;
  for (bool scalar_kernels : {false, true}) {
    const std::string tag = scalar_kernels ? " [scalar]" : "";
    for (SystemUnderTest sut :
         {SystemUnderTest::kPostgresRawPMC, SystemUnderTest::kPostgresRawPM,
          SystemUnderTest::kPostgresRawC,
          SystemUnderTest::kPostgresRawBaseline,
          SystemUnderTest::kExternalFiles, SystemUnderTest::kPostgreSQL,
          SystemUnderTest::kDbmsX, SystemUnderTest::kMySQL}) {
      auto db = MakeEngineWithKernels(sut, scalar_kernels);
      if (IsInSituSystem(sut)) {
        ASSERT_TRUE(db->RegisterCsv("t", csv_path, table.schema).ok());
        auto jsonl_db = MakeEngineWithKernels(sut, scalar_kernels);
        OpenOptions options;
        options.schema = table.schema;
        ASSERT_TRUE(jsonl_db->Open("t", jsonl_path, options).ok());
        ASSERT_EQ(jsonl_db->runtime("t")->adapter->format_name(), "jsonl");
        engines.emplace_back(
            std::string(SystemUnderTestName(sut)) + " [jsonl]" + tag,
            std::move(jsonl_db));
      } else {
        ASSERT_TRUE(db->LoadCsv("t", csv_path, table.schema).ok());
      }
      engines.emplace_back(std::string(SystemUnderTestName(sut)) + tag,
                           std::move(db));
    }

    // A tight-budget PM+C engine exercises eviction and spilling during
    // the same workload (results must still be exact).
    {
      EngineConfig config =
          EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
      config.pm_budget_bytes = 16 * 1024;
      config.cache_budget_bytes = 16 * 1024;
      config.tuples_per_chunk = 64;
      config.scalar_kernels = scalar_kernels;
      auto db = std::make_unique<Database>(config);
      ASSERT_TRUE(db->RegisterCsv("t", csv_path, table.schema).ok());
      engines.emplace_back("PM+C tight budget" + tag, std::move(db));
    }

    // The same rows served gzipped, through the checkpointed decompression
    // layer: adapters address decompressed offsets, so positional maps,
    // cache and kernels must behave byte-identically to the plain engines.
    // A deliberately tiny checkpoint interval forces the interesting
    // regime (many restart points even on this small table).
    if (InflateSupported()) {
      for (bool jsonl : {false, true}) {
        EngineConfig config =
            EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
        config.scalar_kernels = scalar_kernels;
        config.gz_checkpoint_bytes = 2048;
        auto db = std::make_unique<Database>(config);
        OpenOptions options;
        options.schema = table.schema;
        const std::string& path = jsonl ? jsonl_gz_path : csv_gz_path;
        ASSERT_TRUE(db->Open("t", path, options).ok()) << path;
        ASSERT_NE(db->runtime("t")->adapter->file()->AsInflateFile(),
                  nullptr);
        engines.emplace_back(std::string("PM+C [") +
                                 (jsonl ? "jsonl.gz" : "csv.gz") + "]" + tag,
                             std::move(db));
      }
    }

    // Restart equivalence: engines whose warmth was round-tripped through
    // an on-disk snapshot by a previous engine instance, one per raw
    // framing. They must agree with every live engine on every query.
    const std::string suffix = scalar_kernels ? "_scalar" : "_simd";
    engines.emplace_back(
        "PM+C [snapshot-reopen]" + tag,
        MakeSnapshotReopenEngine(dir.File("snap_csv" + suffix),
                                 {{"t", csv_path, table.schema, false}},
                                 scalar_kernels));
    engines.emplace_back(
        "PM+C [snapshot-reopen jsonl]" + tag,
        MakeSnapshotReopenEngine(dir.File("snap_jsonl" + suffix),
                                 {{"t", jsonl_path, table.schema, true}},
                                 scalar_kernels));
  }

  constexpr int kQueries = 20;
  for (int q = 0; q < kQueries; ++q) {
    std::string sql = RandomQuery(table, &rng);
    std::string reference;
    std::string ref_name;
    for (auto& [name, db] : engines) {
      auto result = db->Execute(sql);
      ASSERT_TRUE(result.ok())
          << name << " failed on: " << sql << "\n" << result.status();
      std::string canonical = result->Canonical(/*sorted=*/true);
      if (ref_name.empty()) {
        reference = canonical;
        ref_name = name;
      } else {
        ASSERT_EQ(canonical, reference)
            << name << " vs " << ref_name << " disagree on: " << sql;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

/// Checkpoint-seek differential: a table large enough for a real
/// checkpoint index (a few MiB decompressed, 64 KiB intervals) served by a
/// PM-only engine — no column cache, so every warm query goes back to the
/// raw bytes through the positional map. The gz engine must agree with the
/// plain engine cold and warm, and once the index exists, a pmap-directed
/// read into the middle of the stream must inflate O(interval), not O(file).
TEST(GzCheckpointSeekTest, WarmDirectedReadsUseCheckpointsAndAgree) {
  if (!InflateSupported()) GTEST_SKIP() << "built without zlib";
  TempDir dir;
  Schema schema{{"id", TypeId::kInt64},
                {"grp", TypeId::kInt64},
                {"score", TypeId::kDouble},
                {"name", TypeId::kString}};
  std::vector<Row> rows;
  Rng rng(77);
  constexpr int kRows = 100000;
  rows.reserve(kRows);
  for (int i = 0; i < kRows; ++i) {
    rows.push_back({Value::Int64(i), Value::Int64(rng.Uniform(0, 16)),
                    Value::Double(static_cast<double>(rng.Uniform(0, 4000)) / 8.0),
                    Value::String("name" + std::to_string(rng.Uniform(0, 500)))});
  }
  std::string plain = dir.File("big.csv");
  WriteCsvFile(plain, rows);
  std::string gzpath = MakeGzCopy(plain);

  auto make_pm_engine = [&schema](const std::string& path, uint64_t interval) {
    EngineConfig config =
        EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPM);
    config.gz_checkpoint_bytes = interval;
    auto db = std::make_unique<Database>(config);
    OpenOptions options;
    options.schema = schema;
    EXPECT_TRUE(db->Open("t", path, options).ok()) << path;
    return db;
  };
  constexpr uint64_t kInterval = 64 * 1024;
  auto plain_db = make_pm_engine(plain, kInterval);
  auto gz_db = make_pm_engine(gzpath, kInterval);

  const char* queries[] = {
      "SELECT COUNT(*) AS n, SUM(id) AS s FROM t",
      "SELECT grp, COUNT(*) AS n, SUM(score) AS s FROM t WHERE id >= 60000 "
      "GROUP BY grp",
      "SELECT id, name FROM t WHERE score < 2.0 AND grp = 7",
  };
  for (const char* sql : queries) {
    for (int run = 0; run < 2; ++run) {  // cold, then pmap-warm
      auto a = plain_db->Execute(sql);
      auto b = gz_db->Execute(sql);
      ASSERT_TRUE(a.ok()) << sql << "\n" << a.status();
      ASSERT_TRUE(b.ok()) << sql << "\n" << b.status();
      EXPECT_EQ(a->Canonical(true), b->Canonical(true))
          << "run " << run << ": " << sql;
    }
  }

  const InflateFile* gz =
      gz_db->runtime("t")->adapter->file()->AsInflateFile();
  ASSERT_NE(gz, nullptr);
  EXPECT_TRUE(gz->index_complete());
  EXPECT_GT(gz->checkpoint_count(), 4u);

  // Directed reads at descending offsets: after the full scans every pool
  // cursor sits at (or past) each successive target, so serving the read
  // demands a restart — with the index present, from a checkpoint, paying
  // at most one interval plus a deflate block of skip-forward inflation.
  auto plain_bytes = ReadFileToString(plain);
  ASSERT_TRUE(plain_bytes.ok());
  const uint64_t restarts_before = gz->checkpoint_restarts();
  const uint64_t full_before = gz->full_restarts();
  for (double frac : {0.9, 0.6, 0.3}) {
    const uint64_t target = static_cast<uint64_t>(gz->size() * frac);
    const uint64_t inflated_before = gz->bytes_inflated();
    char buf[512];
    auto n = gz->Read(target, sizeof(buf), buf);
    ASSERT_TRUE(n.ok()) << n.status();
    ASSERT_EQ(*n, sizeof(buf));
    // Byte-identical with the uncompressed file at the same offsets.
    EXPECT_EQ(std::string_view(buf, *n),
              std::string_view(*plain_bytes).substr(target, *n));
    EXPECT_LE(gz->bytes_inflated() - inflated_before,
              kInterval + sizeof(buf) + 256 * 1024)
        << "directed read at " << target << " re-inflated too much";
  }
  EXPECT_GE(gz->checkpoint_restarts(), restarts_before + 3);
  // Every directed read was served from a checkpoint — never by
  // re-inflating the stream from zero.
  EXPECT_EQ(gz->full_restarts(), full_before);
}

/// Deterministic cross-engine harness: a fixed orders/customers pair and a
/// named query list spanning filters, aggregates, joins and ORDER BY/LIMIT.
/// Every query runs through the in-situ (CSV- and JSONL-backed), loaded and
/// external-files engines and must produce identical results. Each engine
/// runs each query twice: for in-situ engines that checks warm
/// positional-map/cache paths against cold, for loaded engines it checks
/// plain determinism.
class CrossEngineTest : public ::testing::Test {
 protected:
  static Value D(const char* iso) {
    auto v = Value::ParseAs(TypeId::kDate, iso);
    EXPECT_TRUE(v.ok());
    return *v;
  }

  void SetUp() override {
    customers_schema_ = Schema{{"cid", TypeId::kInt64},
                               {"cname", TypeId::kString},
                               {"region", TypeId::kString},
                               {"since", TypeId::kDate}};
    orders_schema_ = Schema{{"oid", TypeId::kInt64},
                            {"ocid", TypeId::kInt64},
                            {"amount", TypeId::kDouble},
                            {"item", TypeId::kString},
                            {"placed", TypeId::kDate}};
    std::vector<Row> customers = {
        {Value::Int64(1), Value::String("alice"), Value::String("east"),
         D("2019-02-10")},
        {Value::Int64(2), Value::String("bob"), Value::String("west"),
         D("2020-05-01")},
        {Value::Int64(3), Value::String("carol"), Value::String("east"),
         D("2018-11-23")},
        {Value::Int64(4), Value::String("dave"), Value::String("north"),
         D("2021-08-15")},
        {Value::Int64(5), Value::String("erin"), Value::String("west"),
         D("2017-01-30")},
        {Value::Int64(6), Value::String("frank"), Value::String("south"),
         D("2022-04-04")},
    };
    // 20 orders; customer 6 has none, one amount is NULL, items repeat.
    struct OrderSpec {
      int64_t oid;
      int64_t ocid;
      double amount;  // < 0 encodes NULL
      const char* item;
      const char* placed;
    };
    const OrderSpec kOrders[] = {
        {100, 1, 250.50, "widget", "2023-01-05"},
        {101, 2, 19.99, "gadget", "2023-01-07"},
        {102, 1, 5.25, "widget", "2023-02-11"},
        {103, 3, 980.00, "doohickey", "2023-02-14"},
        {104, 4, 45.10, "gadget", "2023-03-01"},
        {105, 5, -1, "widget", "2023-03-02"},
        {106, 2, 310.75, "doohickey", "2023-03-09"},
        {107, 1, 77.77, "gizmo", "2023-04-21"},
        {108, 3, 12.00, "widget", "2023-04-22"},
        {109, 5, 640.40, "gizmo", "2023-05-05"},
        {110, 4, 88.88, "widget", "2023-05-06"},
        {111, 2, 150.00, "gadget", "2023-06-18"},
        {112, 1, 9.99, "doohickey", "2023-06-19"},
        {113, 3, 499.95, "gizmo", "2023-07-04"},
        {114, 5, 29.50, "widget", "2023-07-05"},
        {115, 4, 205.00, "gadget", "2023-08-12"},
        {116, 2, 5.00, "widget", "2023-08-13"},
        {117, 1, 760.25, "gizmo", "2023-09-09"},
        {118, 3, 33.33, "gadget", "2023-09-10"},
        {119, 5, 120.12, "doohickey", "2023-10-31"},
    };
    std::vector<Row> orders;
    for (const OrderSpec& o : kOrders) {
      orders.push_back({Value::Int64(o.oid), Value::Int64(o.ocid),
                        o.amount < 0 ? Value::Null(TypeId::kDouble)
                                     : Value::Double(o.amount),
                        Value::String(o.item), D(o.placed)});
    }

    // The same rows in both raw framings.
    customers_csv_ = dir_.File("customers.csv");
    orders_csv_ = dir_.File("orders.csv");
    customers_jsonl_ = dir_.File("customers.jsonl");
    orders_jsonl_ = dir_.File("orders.jsonl");
    WriteCsvFile(customers_csv_, customers);
    WriteCsvFile(orders_csv_, orders);
    WriteJsonlFile(customers_jsonl_, customers_schema_, customers);
    WriteJsonlFile(orders_jsonl_, orders_schema_, orders);
  }

  std::vector<std::pair<std::string, std::unique_ptr<Database>>>
  MakeEngines() {
    std::vector<std::pair<std::string, std::unique_ptr<Database>>> engines;
    // Every variant twice: SWAR/SIMD kernels on, then forced scalar. Both
    // halves feed the same byte-identical comparison below.
    for (bool scalar_kernels : {false, true}) {
      const std::string tag = scalar_kernels ? " [scalar]" : "";
      for (SystemUnderTest sut :
           {SystemUnderTest::kPostgresRawPMC, SystemUnderTest::kPostgresRawPM,
            SystemUnderTest::kPostgresRawC,
            SystemUnderTest::kPostgresRawBaseline,
            SystemUnderTest::kExternalFiles, SystemUnderTest::kPostgreSQL,
            SystemUnderTest::kDbmsX, SystemUnderTest::kMySQL}) {
        auto db = MakeEngineWithKernels(sut, scalar_kernels);
        if (IsInSituSystem(sut)) {
          EXPECT_TRUE(
              db->RegisterCsv("customers", customers_csv_, customers_schema_)
                  .ok());
          EXPECT_TRUE(
              db->RegisterCsv("orders", orders_csv_, orders_schema_).ok());
          // The same variant again, backed by JSON Lines through the
          // auto-detecting Open path: every query below must agree.
          auto jsonl_db = MakeEngineWithKernels(sut, scalar_kernels);
          OpenOptions customers_opts;
          customers_opts.schema = customers_schema_;
          EXPECT_TRUE(
              jsonl_db->Open("customers", customers_jsonl_, customers_opts)
                  .ok());
          OpenOptions orders_opts;
          orders_opts.schema = orders_schema_;
          EXPECT_TRUE(
              jsonl_db->Open("orders", orders_jsonl_, orders_opts).ok());
          engines.emplace_back(
              std::string(SystemUnderTestName(sut)) + " [jsonl]" + tag,
              std::move(jsonl_db));
        } else {
          EXPECT_TRUE(
              db->LoadCsv("customers", customers_csv_, customers_schema_)
                  .ok());
          EXPECT_TRUE(
              db->LoadCsv("orders", orders_csv_, orders_schema_).ok());
        }
        engines.emplace_back(std::string(SystemUnderTestName(sut)) + tag,
                             std::move(db));
      }

      // Restart equivalence over the fixed workload: both tables warmed,
      // snapshotted, and re-opened by a fresh engine — once per framing.
      const std::string suffix = scalar_kernels ? "_scalar" : "_simd";
      engines.emplace_back(
          "PM+C [snapshot-reopen]" + tag,
          MakeSnapshotReopenEngine(
              dir_.File("snap_csv" + suffix),
              {{"customers", customers_csv_, customers_schema_, false},
               {"orders", orders_csv_, orders_schema_, false}},
              scalar_kernels));
      engines.emplace_back(
          "PM+C [snapshot-reopen jsonl]" + tag,
          MakeSnapshotReopenEngine(
              dir_.File("snap_jsonl" + suffix),
              {{"customers", customers_jsonl_, customers_schema_, true},
               {"orders", orders_jsonl_, orders_schema_, true}},
              scalar_kernels));
    }
    return engines;
  }

  TempDir dir_;
  std::string customers_csv_;
  std::string orders_csv_;
  std::string customers_jsonl_;
  std::string orders_jsonl_;
  Schema customers_schema_;
  Schema orders_schema_;
};

struct NamedQuery {
  const char* name;
  const char* sql;
  // When the query imposes a total order, compare results positionally so
  // ORDER BY itself is verified; otherwise compare as sorted multisets.
  bool ordered;
};

TEST_F(CrossEngineTest, FixedQueriesAgreeAcrossAllEngines) {
  const NamedQuery kQueries[] = {
      {"filter_int", "SELECT oid, amount FROM orders WHERE ocid = 1", false},
      {"filter_conjunction",
       "SELECT oid, item FROM orders WHERE amount > 100.0 AND item = 'gizmo'",
       false},
      {"filter_disjunction",
       "SELECT oid FROM orders WHERE item = 'widget' OR amount >= 500.0",
       false},
      {"filter_null", "SELECT oid, ocid FROM orders WHERE amount IS NULL",
       false},
      {"filter_like",
       "SELECT cid, cname FROM customers WHERE cname LIKE '%a%'", false},
      {"filter_in",
       "SELECT oid FROM orders WHERE item IN ('gadget', 'doohickey')", false},
      {"filter_date",
       "SELECT oid, placed FROM orders WHERE placed >= DATE '2023-05-01'",
       false},
      {"filter_between",
       "SELECT oid, amount FROM orders WHERE amount BETWEEN 10.0 AND 100.0",
       false},
      {"agg_global",
       "SELECT COUNT(*) AS n, SUM(amount) AS total, MIN(amount) AS lo, "
       "MAX(amount) AS hi FROM orders",
       false},
      {"agg_group",
       "SELECT item, COUNT(*) AS n, SUM(amount) AS total FROM orders "
       "GROUP BY item",
       false},
      {"agg_avg_filtered",
       "SELECT ocid, AVG(amount) AS avg_amt FROM orders "
       "WHERE amount IS NOT NULL GROUP BY ocid",
       false},
      {"join_filter",
       "SELECT o.oid, c.cname FROM orders o JOIN customers c "
       "ON o.ocid = c.cid WHERE c.region = 'east'",
       false},
      {"join_aggregate",
       "SELECT c.cname, COUNT(*) AS n, SUM(o.amount) AS revenue "
       "FROM orders o JOIN customers c ON o.ocid = c.cid GROUP BY c.cname",
       false},
      {"order_by_multi",
       "SELECT item, amount, oid FROM orders "
       "ORDER BY item, amount DESC, oid",
       true},
      {"order_by_limit",
       "SELECT oid, amount FROM orders WHERE amount IS NOT NULL "
       "ORDER BY amount DESC, oid LIMIT 5",
       true},
      {"join_order_limit",
       "SELECT c.cname, o.amount, o.oid FROM orders o JOIN customers c "
       "ON o.ocid = c.cid WHERE o.amount > 50.0 "
       "ORDER BY o.amount DESC, o.oid LIMIT 7",
       true},
  };

  auto engines = MakeEngines();
  for (const NamedQuery& query : kQueries) {
    std::string reference;
    std::string ref_name;
    for (auto& [name, db] : engines) {
      // Two runs: cold access path first, then warm adaptive structures.
      for (int run = 0; run < 2; ++run) {
        auto result = db->Execute(query.sql);
        ASSERT_TRUE(result.ok()) << name << " (run " << run << ") failed on "
                                 << query.name << ": " << query.sql << "\n"
                                 << result.status();
        std::string canonical = result->Canonical(/*sorted=*/!query.ordered);
        if (ref_name.empty()) {
          reference = canonical;
          ref_name = name;
        } else {
          ASSERT_EQ(canonical, reference)
              << name << " (run " << run << ") vs " << ref_name
              << " disagree on " << query.name << ": " << query.sql;
        }
      }
    }
  }
}

}  // namespace
}  // namespace nodb
