#include <gtest/gtest.h>

#include "cache/column_cache.h"
#include "util/rng.h"

namespace nodb {
namespace {

std::vector<Value> IntColumn(int n, int64_t base) {
  std::vector<Value> values;
  for (int i = 0; i < n; ++i) values.push_back(Value::Int64(base + i));
  return values;
}

std::vector<Value> StrColumn(int n, const std::string& prefix) {
  std::vector<Value> values;
  for (int i = 0; i < n; ++i) {
    values.push_back(Value::String(prefix + std::to_string(i)));
  }
  return values;
}

ColumnCache::Options Unlimited() { return ColumnCache::Options{}; }

TEST(ColumnCacheTest, PutGetRoundTrip) {
  ColumnCache cache({TypeId::kInt64, TypeId::kString}, Unlimited());
  cache.Put(0, 0, IntColumn(4, 100));
  ColumnCache::Column col = cache.Get(0, 0);
  ASSERT_NE(col, nullptr);
  ASSERT_EQ(col->size(), 4u);
  EXPECT_EQ((*col)[2].int64(), 102);
  EXPECT_EQ(cache.Get(0, 1), nullptr);
  EXPECT_EQ(cache.Get(1, 0), nullptr);
  EXPECT_TRUE(cache.Contains(0, 0));
  EXPECT_FALSE(cache.Contains(1, 0));
}

TEST(ColumnCacheTest, ReplaceUpdatesBytes) {
  ColumnCache cache({TypeId::kString}, Unlimited());
  cache.Put(0, 0, StrColumn(4, "aaaaaaaaaa"));
  uint64_t before = cache.memory_bytes();
  cache.Put(0, 0, StrColumn(2, "b"));
  EXPECT_LT(cache.memory_bytes(), before);
  EXPECT_EQ(cache.Get(0, 0)->size(), 2u);
}

TEST(ColumnCacheTest, CountersTrackHitsAndMisses) {
  ColumnCache cache({TypeId::kInt64}, Unlimited());
  cache.Get(0, 0);
  cache.Put(0, 0, IntColumn(2, 0));
  cache.Get(0, 0);
  cache.Get(3, 0);
  EXPECT_EQ(cache.counters().hits, 1u);
  EXPECT_EQ(cache.counters().misses, 2u);
  EXPECT_EQ(cache.counters().inserts, 1u);
}

TEST(ColumnCacheTest, BudgetEnforced) {
  ColumnCache::Options opts;
  opts.budget_bytes = 4000;
  ColumnCache cache(std::vector<TypeId>(10, TypeId::kInt64), opts);
  for (int a = 0; a < 10; ++a) {
    cache.Put(0, a, IntColumn(20, a));  // each ~ 20*sizeof(Value)+overhead
    EXPECT_LE(cache.memory_bytes(), opts.budget_bytes);
  }
  EXPECT_GT(cache.counters().evictions, 0u);
}

TEST(ColumnCacheTest, OversizedEntryRejected) {
  ColumnCache::Options opts;
  opts.budget_bytes = 100;
  ColumnCache cache({TypeId::kInt64}, opts);
  cache.Put(0, 0, IntColumn(1000, 0));  // larger than the whole budget
  EXPECT_EQ(cache.Get(0, 0), nullptr);
  EXPECT_EQ(cache.memory_bytes(), 0u);
}

TEST(ColumnCacheTest, CheapToConvertEvictedFirst) {
  // Strings (cost class 0) must be evicted before int64 columns (class 2)
  // regardless of recency — the paper's conversion-cost priority.
  ColumnCache::Options opts;
  ColumnCache probe({TypeId::kInt64, TypeId::kString}, opts);
  probe.Put(0, 0, IntColumn(16, 0));
  probe.Put(0, 1, StrColumn(16, "xx"));
  uint64_t two_entries = probe.memory_bytes();
  // Budget that holds exactly the two entries, then one more insert evicts.
  opts.budget_bytes = two_entries + 8;
  ColumnCache cache({TypeId::kInt64, TypeId::kString}, opts);
  cache.Put(0, 1, StrColumn(16, "xx"));   // string first...
  cache.Put(0, 0, IntColumn(16, 0));
  // Touch the string so plain LRU would evict the int column.
  cache.Get(0, 1);
  cache.Put(1, 0, IntColumn(16, 100));  // forces eviction
  EXPECT_TRUE(cache.Contains(0, 0));    // int survived
  EXPECT_TRUE(cache.Contains(1, 0));
  EXPECT_FALSE(cache.Contains(0, 1));   // string evicted despite recency
}

TEST(ColumnCacheTest, LruWithinCostClass) {
  ColumnCache::Options opts;
  ColumnCache probe(std::vector<TypeId>(4, TypeId::kInt64), opts);
  probe.Put(0, 0, IntColumn(16, 0));
  uint64_t one = probe.memory_bytes();
  opts.budget_bytes = 3 * one + 8;
  ColumnCache cache(std::vector<TypeId>(4, TypeId::kInt64), opts);
  cache.Put(0, 0, IntColumn(16, 0));
  cache.Put(0, 1, IntColumn(16, 1));
  cache.Put(0, 2, IntColumn(16, 2));
  cache.Get(0, 0);  // 0 becomes MRU; 1 is now LRU
  cache.Put(0, 3, IntColumn(16, 3));
  EXPECT_TRUE(cache.Contains(0, 0));
  EXPECT_FALSE(cache.Contains(0, 1));
  EXPECT_TRUE(cache.Contains(0, 2));
  EXPECT_TRUE(cache.Contains(0, 3));
}

TEST(ColumnCacheTest, UtilizationMetric) {
  ColumnCache::Options opts;
  opts.budget_bytes = 10000;
  ColumnCache cache({TypeId::kInt64}, opts);
  EXPECT_DOUBLE_EQ(cache.utilization(), 0.0);
  cache.Put(0, 0, IntColumn(50, 0));
  EXPECT_GT(cache.utilization(), 0.0);
  EXPECT_LE(cache.utilization(), 1.0);
}

TEST(ColumnCacheTest, ClearEmptiesEverything) {
  ColumnCache cache({TypeId::kInt64}, Unlimited());
  cache.Put(0, 0, IntColumn(4, 0));
  cache.Clear();
  EXPECT_EQ(cache.memory_bytes(), 0u);
  EXPECT_EQ(cache.Get(0, 0), nullptr);
  cache.Put(0, 0, IntColumn(4, 9));  // usable after Clear
  EXPECT_EQ(cache.Get(0, 0)->at(0).int64(), 9);
}

TEST(ColumnCacheTest, StringBytesAccounted) {
  ColumnCache cache({TypeId::kString}, Unlimited());
  cache.Put(0, 0, StrColumn(4, ""));
  uint64_t small = cache.memory_bytes();
  cache.Clear();
  cache.Put(0, 0, StrColumn(4, std::string(1000, 'x')));
  EXPECT_GT(cache.memory_bytes(), small + 3000);
}

TEST(ColumnCacheProperty, RandomWorkloadStaysWithinBudgetAndConsistent) {
  Rng rng(5);
  ColumnCache::Options opts;
  opts.budget_bytes = 20000;
  ColumnCache cache(std::vector<TypeId>(8, TypeId::kInt64), opts);
  for (int round = 0; round < 500; ++round) {
    uint64_t stripe = static_cast<uint64_t>(rng.Uniform(0, 20));
    int attr = static_cast<int>(rng.Uniform(0, 7));
    if (rng.NextBool(0.5)) {
      cache.Put(stripe, attr,
                IntColumn(16, static_cast<int64_t>(stripe * 8 + attr)));
    } else {
      ColumnCache::Column col = cache.Get(stripe, attr);
      if (col != nullptr) {
        // Values must match what was inserted for this (stripe, attr).
        EXPECT_EQ((*col)[0].int64(), static_cast<int64_t>(stripe * 8 + attr));
      }
    }
    ASSERT_LE(cache.memory_bytes(), opts.budget_bytes);
  }
}


TEST(ColumnCacheTest, ZeroBudgetCachesNothingButStaysUsable) {
  ColumnCache::Options opts;
  opts.budget_bytes = 0;
  ColumnCache cache({TypeId::kInt64}, opts);
  cache.Put(0, 0, IntColumn(4, 0));
  EXPECT_EQ(cache.Get(0, 0), nullptr);
  EXPECT_EQ(cache.memory_bytes(), 0u);
  // Repeated puts/gets on a zero-budget cache must not accumulate state.
  for (int i = 0; i < 100; ++i) cache.Put(i, 0, IntColumn(4, i));
  EXPECT_EQ(cache.memory_bytes(), 0u);
}

}  // namespace
}  // namespace nodb
