#include "stats/table_stats.h"

namespace nodb {

TableStats::TableStats(const Schema& schema) {
  builders_.reserve(schema.num_columns());
  for (int i = 0; i < schema.num_columns(); ++i) {
    builders_.push_back(
        std::make_unique<AttrStatsBuilder>(schema.column(i).type));
  }
  built_.resize(schema.num_columns());
}

void TableStats::SetRowCount(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  row_count_ = n;
}

std::optional<uint64_t> TableStats::row_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return row_count_;
}

bool TableStats::HasAttr(int attr) const {
  std::lock_guard<std::mutex> lock(mu_);
  return built_[attr] != nullptr;
}

TableStats::AttrStatsPtr TableStats::Attr(int attr) const {
  std::lock_guard<std::mutex> lock(mu_);
  return built_[attr];
}

void TableStats::AddValue(int attr, const Value& v) {
  std::lock_guard<std::mutex> lock(mu_);
  builders_[attr]->Add(v);
}

void TableStats::AddValues(int attr, const Value* values, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  AttrStatsBuilder* builder = builders_[attr].get();
  for (size_t i = 0; i < n; ++i) builder->Add(values[i]);
}

void TableStats::Finalize(int attr) {
  std::lock_guard<std::mutex> lock(mu_);
  if (builders_[attr]->has_data()) {
    built_[attr] = std::make_shared<const AttrStats>(builders_[attr]->Build());
  }
}

void TableStats::FinalizeAll() {
  for (int i = 0; i < num_attrs(); ++i) Finalize(i);
}

std::vector<std::pair<int, TableStats::AttrStatsPtr>> TableStats::ExportBuilt()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<int, AttrStatsPtr>> out;
  for (size_t i = 0; i < built_.size(); ++i) {
    if (built_[i] != nullptr) out.emplace_back(static_cast<int>(i), built_[i]);
  }
  return out;
}

void TableStats::InstallSnapshot(int attr, AttrStats stats) {
  std::lock_guard<std::mutex> lock(mu_);
  built_[attr] = std::make_shared<const AttrStats>(std::move(stats));
}

}  // namespace nodb
