#ifndef NODB_FITS_FITS_WRITER_H_
#define NODB_FITS_FITS_WRITER_H_

#include <memory>
#include <string>
#include <vector>

#include "fits/fits_format.h"
#include "io/file.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/result.h"

namespace nodb {

/// Writes a single-binary-table FITS-like file. String columns need a fixed
/// width (FITS 'A' form); pass one width per string column in schema order
/// via `string_widths` (values longer than the width are truncated, shorter
/// ones space-padded, as FITS prescribes).
class FitsWriter {
 public:
  static Result<std::unique_ptr<FitsWriter>> Create(
      const std::string& path, const Schema& schema,
      std::vector<uint32_t> string_widths = {});

  Status Append(const Row& row);

  /// Pads the data to a block boundary and patches NAXIS2 with the row
  /// count. Must be called exactly once.
  Status Finish();

  uint64_t rows_written() const { return rows_; }

 private:
  FitsWriter(std::string path, std::vector<FitsColumn> columns,
             uint64_t row_bytes)
      : path_(std::move(path)), columns_(std::move(columns)),
        row_bytes_(row_bytes) {}

  std::string path_;
  std::vector<FitsColumn> columns_;
  uint64_t row_bytes_;
  uint64_t rows_ = 0;
  uint64_t naxis2_card_offset_ = 0;  // file offset of the NAXIS2 card
  std::unique_ptr<WritableFile> out_;
  std::string row_buffer_;
};

}  // namespace nodb

#endif  // NODB_FITS_FITS_WRITER_H_
