#include "sql/binder.h"

#include <algorithm>
#include <unordered_set>

#include "util/str_conv.h"

namespace nodb {

namespace {

// ---------------------------------------------------------------------
// Name resolution
// ---------------------------------------------------------------------

/// Column-name scope over a list of bound tables.
class Scope {
 public:
  explicit Scope(const std::vector<BoundTable>* tables) : tables_(tables) {}

  struct ResolvedCol {
    int index;
    TypeId type;
    std::string name;
  };

  Result<ResolvedCol> Resolve(const std::string& qualifier,
                              const std::string& column) const {
    if (!qualifier.empty()) {
      for (const BoundTable& t : *tables_) {
        if (t.display_name == qualifier) {
          int col = t.schema->IndexOf(column);
          if (col < 0) {
            return Status::NotFound("column '" + qualifier + "." + column +
                                    "' does not exist");
          }
          return ResolvedCol{t.offset + col, t.schema->column(col).type,
                             column};
        }
      }
      return Status::NotFound("unknown table or alias '" + qualifier + "'");
    }
    const BoundTable* found_table = nullptr;
    int found_col = -1;
    for (const BoundTable& t : *tables_) {
      int col = t.schema->IndexOf(column);
      if (col < 0) continue;
      if (found_table != nullptr) {
        return Status::InvalidArgument("column '" + column +
                                       "' is ambiguous");
      }
      found_table = &t;
      found_col = col;
    }
    if (found_table == nullptr) {
      return Status::NotFound("column '" + column + "' does not exist");
    }
    return ResolvedCol{found_table->offset + found_col,
                       found_table->schema->column(found_col).type, column};
  }

  bool CanResolve(const std::string& qualifier,
                  const std::string& column) const {
    return Resolve(qualifier, column).ok();
  }

 private:
  const std::vector<BoundTable>* tables_;
};

// ---------------------------------------------------------------------
// Shared typing helpers
// ---------------------------------------------------------------------

bool IsNumeric(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDouble || t == TypeId::kBool;
}

Result<TypeId> UnifyTypes(TypeId a, TypeId b) {
  if (a == b) return a;
  if (IsNumeric(a) && IsNumeric(b)) {
    if (a == TypeId::kDouble || b == TypeId::kDouble) return TypeId::kDouble;
    return TypeId::kInt64;
  }
  return Status::InvalidArgument(
      std::string("incompatible types: ") + std::string(TypeIdToString(a)) +
      " vs " + std::string(TypeIdToString(b)));
}

/// If one side is a date and the other a string literal, re-types the
/// literal as a date (lets queries write l_shipdate >= '1994-01-01').
Status CoerceDateLiteral(ExprPtr* left, ExprPtr* right) {
  auto coerce = [](const ExprPtr& date_side, ExprPtr* str_side) -> Status {
    if (date_side->type != TypeId::kDate) return Status::OK();
    if ((*str_side)->kind != ExprKind::kLiteral ||
        (*str_side)->type != TypeId::kString) {
      return Status::OK();
    }
    auto* lit = static_cast<LiteralExpr*>(str_side->get());
    if (lit->value.is_null()) return Status::OK();
    NODB_ASSIGN_OR_RETURN(int32_t days, ParseDate(lit->value.str()));
    *str_side = std::make_unique<LiteralExpr>(Value::Date(days));
    return Status::OK();
  };
  NODB_RETURN_IF_ERROR(coerce(*left, right));
  return coerce(*right, left);
}

Result<ExprPtr> MakeComparison(const std::string& op, ExprPtr left,
                               ExprPtr right) {
  NODB_RETURN_IF_ERROR(CoerceDateLiteral(&left, &right));
  bool ls = left->type == TypeId::kString;
  bool rs = right->type == TypeId::kString;
  if (ls != rs) {
    return Status::InvalidArgument("cannot compare string with non-string");
  }
  CompareOp cmp;
  if (op == "=") {
    cmp = CompareOp::kEq;
  } else if (op == "<>") {
    cmp = CompareOp::kNe;
  } else if (op == "<") {
    cmp = CompareOp::kLt;
  } else if (op == "<=") {
    cmp = CompareOp::kLe;
  } else if (op == ">") {
    cmp = CompareOp::kGt;
  } else if (op == ">=") {
    cmp = CompareOp::kGe;
  } else {
    return Status::Internal("unknown comparison op " + op);
  }
  return ExprPtr(std::make_unique<ComparisonExpr>(cmp, std::move(left),
                                                  std::move(right)));
}

Result<ExprPtr> MakeArithmetic(const std::string& op, ExprPtr left,
                               ExprPtr right) {
  ArithOp aop;
  if (op == "+") {
    aop = ArithOp::kAdd;
  } else if (op == "-") {
    aop = ArithOp::kSub;
  } else if (op == "*") {
    aop = ArithOp::kMul;
  } else if (op == "/") {
    aop = ArithOp::kDiv;
  } else {
    return Status::Internal("unknown arithmetic op " + op);
  }

  TypeId lt = left->type, rt = right->type;
  TypeId result;
  if (lt == TypeId::kDate || rt == TypeId::kDate) {
    // date ± days, date - date.
    if (aop == ArithOp::kAdd &&
        ((lt == TypeId::kDate && rt == TypeId::kInt64) ||
         (rt == TypeId::kDate && lt == TypeId::kInt64))) {
      result = TypeId::kDate;
    } else if (aop == ArithOp::kSub && lt == TypeId::kDate &&
               rt == TypeId::kInt64) {
      result = TypeId::kDate;
    } else if (aop == ArithOp::kSub && lt == TypeId::kDate &&
               rt == TypeId::kDate) {
      result = TypeId::kInt64;
    } else {
      return Status::InvalidArgument("unsupported date arithmetic");
    }
  } else if (IsNumeric(lt) && IsNumeric(rt)) {
    if (aop == ArithOp::kDiv) {
      // SQL-style: keep integer division for int/int, double otherwise.
      NODB_ASSIGN_OR_RETURN(result, UnifyTypes(lt, rt));
    } else {
      NODB_ASSIGN_OR_RETURN(result, UnifyTypes(lt, rt));
    }
  } else {
    return Status::InvalidArgument("arithmetic requires numeric operands");
  }
  return ExprPtr(std::make_unique<ArithmeticExpr>(aop, result, std::move(left),
                                                  std::move(right)));
}

Result<ExprPtr> MakeLogical(const std::string& op, ExprPtr left,
                            ExprPtr right) {
  LogicalOp lop = op == "AND" ? LogicalOp::kAnd : LogicalOp::kOr;
  return ExprPtr(std::make_unique<LogicalExpr>(lop, std::move(left),
                                               std::move(right)));
}

Result<TypeId> TypeNameToId(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(), ::tolower);
  if (lower == "int" || lower == "integer" || lower == "bigint" ||
      lower == "int64") {
    return TypeId::kInt64;
  }
  if (lower == "double" || lower == "float" || lower == "real" ||
      lower == "decimal" || lower == "numeric") {
    return TypeId::kDouble;
  }
  if (lower == "string" || lower == "text" || lower == "varchar" ||
      lower == "char") {
    return TypeId::kString;
  }
  if (lower == "date") return TypeId::kDate;
  if (lower == "bool" || lower == "boolean") return TypeId::kBool;
  return Status::InvalidArgument("unknown type name '" + name + "'");
}

bool IsAggName(const std::string& name) {
  return name == "COUNT" || name == "SUM" || name == "AVG" || name == "MIN" ||
         name == "MAX";
}

bool ContainsAggregate(const ParsedExpr& e) {
  if (e.kind == ParsedExpr::Kind::kFuncCall && IsAggName(e.func_name)) {
    return true;
  }
  auto check = [](const ParsedExprPtr& p) {
    return p != nullptr && ContainsAggregate(*p);
  };
  if (check(e.left) || check(e.right) || check(e.low) || check(e.high) ||
      check(e.else_result)) {
    return true;
  }
  for (const auto& item : e.list_items) {
    if (check(item)) return true;
  }
  for (const auto& w : e.whens) {
    if (check(w.condition) || check(w.result)) return true;
  }
  for (const auto& a : e.args) {
    if (check(a)) return true;
  }
  return false;
}

void CollectParsedColumns(const ParsedExpr& e,
                          std::vector<std::pair<std::string, std::string>>* out) {
  if (e.kind == ParsedExpr::Kind::kColumn) {
    out->emplace_back(e.qualifier, e.column);
  }
  auto walk = [out](const ParsedExprPtr& p) {
    if (p != nullptr) CollectParsedColumns(*p, out);
  };
  walk(e.left);
  walk(e.right);
  walk(e.low);
  walk(e.high);
  walk(e.else_result);
  for (const auto& item : e.list_items) walk(item);
  for (const auto& w : e.whens) {
    walk(w.condition);
    walk(w.result);
  }
  for (const auto& a : e.args) walk(a);
}

// ---------------------------------------------------------------------
// Expression binding (no aggregates)
// ---------------------------------------------------------------------

/// Binds a parsed expression against a scope. Aggregate calls and EXISTS are
/// rejected; they are handled by dedicated paths.
class ExprBinder {
 public:
  explicit ExprBinder(const Scope* scope) : scope_(scope) {}

  Result<ExprPtr> Bind(const ParsedExpr& e) const {
    switch (e.kind) {
      case ParsedExpr::Kind::kColumn: {
        NODB_ASSIGN_OR_RETURN(Scope::ResolvedCol col,
                              scope_->Resolve(e.qualifier, e.column));
        return ExprPtr(
            std::make_unique<ColumnRefExpr>(col.index, col.type, col.name));
      }
      case ParsedExpr::Kind::kIntLiteral:
        return ExprPtr(std::make_unique<LiteralExpr>(Value::Int64(e.int_value)));
      case ParsedExpr::Kind::kFloatLiteral:
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value::Double(e.float_value)));
      case ParsedExpr::Kind::kStringLiteral:
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value::String(e.string_value)));
      case ParsedExpr::Kind::kDateLiteral: {
        NODB_ASSIGN_OR_RETURN(int32_t days, ParseDate(e.string_value));
        return ExprPtr(std::make_unique<LiteralExpr>(Value::Date(days)));
      }
      case ParsedExpr::Kind::kIntervalLiteral:
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value::Int64(e.int_value)));
      case ParsedExpr::Kind::kNullLiteral:
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value::Null(TypeId::kInt64)));
      case ParsedExpr::Kind::kBinary: {
        NODB_ASSIGN_OR_RETURN(ExprPtr left, Bind(*e.left));
        NODB_ASSIGN_OR_RETURN(ExprPtr right, Bind(*e.right));
        if (e.op == "AND" || e.op == "OR") {
          return MakeLogical(e.op, std::move(left), std::move(right));
        }
        if (e.op == "+" || e.op == "-" || e.op == "*" || e.op == "/") {
          return MakeArithmetic(e.op, std::move(left), std::move(right));
        }
        return MakeComparison(e.op, std::move(left), std::move(right));
      }
      case ParsedExpr::Kind::kNot: {
        NODB_ASSIGN_OR_RETURN(ExprPtr inner, Bind(*e.left));
        return ExprPtr(std::make_unique<LogicalExpr>(LogicalOp::kNot,
                                                     std::move(inner),
                                                     nullptr));
      }
      case ParsedExpr::Kind::kNegate: {
        NODB_ASSIGN_OR_RETURN(ExprPtr inner, Bind(*e.left));
        ExprPtr zero =
            inner->type == TypeId::kDouble
                ? ExprPtr(std::make_unique<LiteralExpr>(Value::Double(0)))
                : ExprPtr(std::make_unique<LiteralExpr>(Value::Int64(0)));
        return MakeArithmetic("-", std::move(zero), std::move(inner));
      }
      case ParsedExpr::Kind::kBetween: {
        // Lower x BETWEEN lo AND hi to (x >= lo AND x <= hi); the two
        // bindings of `x` require binding the input twice, which is safe
        // because binding is pure.
        NODB_ASSIGN_OR_RETURN(ExprPtr input1, Bind(*e.left));
        NODB_ASSIGN_OR_RETURN(ExprPtr input2, Bind(*e.left));
        NODB_ASSIGN_OR_RETURN(ExprPtr lo, Bind(*e.low));
        NODB_ASSIGN_OR_RETURN(ExprPtr hi, Bind(*e.high));
        NODB_ASSIGN_OR_RETURN(
            ExprPtr ge, MakeComparison(">=", std::move(input1), std::move(lo)));
        NODB_ASSIGN_OR_RETURN(
            ExprPtr le, MakeComparison("<=", std::move(input2), std::move(hi)));
        NODB_ASSIGN_OR_RETURN(
            ExprPtr both, MakeLogical("AND", std::move(ge), std::move(le)));
        if (!e.negated) return both;
        return ExprPtr(std::make_unique<LogicalExpr>(LogicalOp::kNot,
                                                     std::move(both), nullptr));
      }
      case ParsedExpr::Kind::kInList: {
        NODB_ASSIGN_OR_RETURN(ExprPtr input, Bind(*e.left));
        std::vector<Value> items;
        items.reserve(e.list_items.size());
        for (const auto& item : e.list_items) {
          NODB_ASSIGN_OR_RETURN(ExprPtr bound, Bind(*item));
          if (bound->kind != ExprKind::kLiteral) {
            return Status::InvalidArgument(
                "IN list elements must be literals");
          }
          Value v = static_cast<LiteralExpr*>(bound.get())->value;
          // Coerce to the input's type where sensible.
          if (input->type == TypeId::kDate && v.type() == TypeId::kString) {
            NODB_ASSIGN_OR_RETURN(int32_t days, ParseDate(v.str()));
            v = Value::Date(days);
          } else if (input->type == TypeId::kDouble &&
                     v.type() == TypeId::kInt64) {
            v = Value::Double(static_cast<double>(v.int64()));
          }
          items.push_back(std::move(v));
        }
        return ExprPtr(std::make_unique<InListExpr>(std::move(input),
                                                    std::move(items),
                                                    e.negated));
      }
      case ParsedExpr::Kind::kLike: {
        NODB_ASSIGN_OR_RETURN(ExprPtr input, Bind(*e.left));
        if (input->type != TypeId::kString) {
          return Status::InvalidArgument("LIKE requires a string input");
        }
        return ExprPtr(std::make_unique<LikeExpr>(std::move(input),
                                                  e.string_value, e.negated));
      }
      case ParsedExpr::Kind::kCase: {
        std::vector<CaseExpr::WhenClause> whens;
        TypeId result_type = TypeId::kInt64;
        bool first = true;
        for (const auto& w : e.whens) {
          CaseExpr::WhenClause clause;
          NODB_ASSIGN_OR_RETURN(clause.condition, Bind(*w.condition));
          NODB_ASSIGN_OR_RETURN(clause.result, Bind(*w.result));
          if (first) {
            result_type = clause.result->type;
            first = false;
          } else {
            NODB_ASSIGN_OR_RETURN(result_type,
                                  UnifyTypes(result_type,
                                             clause.result->type));
          }
          whens.push_back(std::move(clause));
        }
        ExprPtr else_expr;
        if (e.else_result != nullptr) {
          NODB_ASSIGN_OR_RETURN(else_expr, Bind(*e.else_result));
          NODB_ASSIGN_OR_RETURN(result_type,
                                UnifyTypes(result_type, else_expr->type));
        }
        return ExprPtr(std::make_unique<CaseExpr>(result_type, std::move(whens),
                                                  std::move(else_expr)));
      }
      case ParsedExpr::Kind::kIsNull: {
        NODB_ASSIGN_OR_RETURN(ExprPtr input, Bind(*e.left));
        return ExprPtr(
            std::make_unique<IsNullExpr>(std::move(input), e.negated));
      }
      case ParsedExpr::Kind::kFuncCall: {
        if (e.func_name == "CAST") {
          NODB_ASSIGN_OR_RETURN(ExprPtr input, Bind(*e.args[0]));
          NODB_ASSIGN_OR_RETURN(TypeId target, TypeNameToId(e.string_value));
          return ExprPtr(std::make_unique<CastExpr>(target, std::move(input)));
        }
        return Status::InvalidArgument(
            "aggregate '" + e.func_name +
            "' is not allowed in this context (WHERE/GROUP BY)");
      }
      case ParsedExpr::Kind::kExists:
        return Status::InvalidArgument(
            "EXISTS is only supported as a top-level WHERE conjunct");
    }
    return Status::Internal("unreachable parsed expr kind");
  }

 private:
  const Scope* scope_;
};

/// Splits a parsed boolean tree into its top-level AND conjuncts.
void SplitConjuncts(ParsedExprPtr e, std::vector<ParsedExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ParsedExpr::Kind::kBinary && e->op == "AND") {
    SplitConjuncts(std::move(e->left), out);
    SplitConjuncts(std::move(e->right), out);
    return;
  }
  out->push_back(std::move(e));
}

ExprPtr AndTogether(std::vector<ExprPtr> exprs) {
  ExprPtr result;
  for (ExprPtr& e : exprs) {
    if (result == nullptr) {
      result = std::move(e);
    } else {
      result = std::make_unique<LogicalExpr>(LogicalOp::kAnd,
                                             std::move(result), std::move(e));
    }
  }
  return result;
}

}  // namespace

// ---------------------------------------------------------------------
// Binder
// ---------------------------------------------------------------------

Result<std::unique_ptr<BoundQuery>> Binder::Bind(const SelectStmt& stmt) {
  auto query = std::make_unique<BoundQuery>();

  // 1. Resolve FROM tables.
  if (stmt.from.empty()) {
    return Status::InvalidArgument("FROM clause is required");
  }
  std::unordered_set<std::string> names;
  int offset = 0;
  for (const TableRef& ref : stmt.from) {
    NODB_ASSIGN_OR_RETURN(const Schema* schema,
                          provider_->GetTableSchema(ref.table));
    BoundTable bt;
    bt.table_name = ref.table;
    bt.display_name = ref.effective_name();
    bt.schema = schema;
    bt.offset = offset;
    offset += schema->num_columns();
    if (!names.insert(bt.display_name).second) {
      return Status::InvalidArgument("duplicate table name/alias '" +
                                     bt.display_name + "'");
    }
    query->tables.push_back(std::move(bt));
  }
  query->working_width = offset;
  Scope scope(&query->tables);
  ExprBinder binder(&scope);

  // 2. WHERE: peel off EXISTS conjuncts as semi joins; bind the rest.
  {
    // The binder does not own stmt, so split conjuncts over const pointers.
    std::vector<const ParsedExpr*> flat;
    std::vector<const ParsedExpr*> stack;
    if (stmt.where != nullptr) stack.push_back(stmt.where.get());
    while (!stack.empty()) {
      const ParsedExpr* e = stack.back();
      stack.pop_back();
      if (e->kind == ParsedExpr::Kind::kBinary && e->op == "AND") {
        stack.push_back(e->right.get());
        stack.push_back(e->left.get());
      } else {
        flat.push_back(e);
      }
    }
    std::vector<ExprPtr> bound_conjuncts;
    for (const ParsedExpr* conj : flat) {
      bool anti = false;
      const ParsedExpr* target = conj;
      if (conj->kind == ParsedExpr::Kind::kNot &&
          conj->left->kind == ParsedExpr::Kind::kExists) {
        anti = true;
        target = conj->left.get();
      }
      if (target->kind == ParsedExpr::Kind::kExists) {
        NODB_ASSIGN_OR_RETURN(BoundSemiJoin sj,
                              BindExistsSubquery(*target->subquery, &scope,
                                                 anti));
        query->semi_joins.push_back(std::move(sj));
        continue;
      }
      NODB_ASSIGN_OR_RETURN(ExprPtr bound, binder.Bind(*conj));
      if (bound->type != TypeId::kBool) {
        return Status::InvalidArgument("WHERE condition must be boolean");
      }
      bound_conjuncts.push_back(std::move(bound));
    }
    query->where = AndTogether(std::move(bound_conjuncts));
  }

  // 3. GROUP BY.
  for (const ParsedExprPtr& g : stmt.group_by) {
    NODB_ASSIGN_OR_RETURN(ExprPtr bound, binder.Bind(*g));
    query->group_by.push_back(std::move(bound));
  }

  // 4. SELECT list (+ aggregate extraction).
  bool any_agg = false;
  for (const SelectItem& item : stmt.items) {
    if (ContainsAggregate(*item.expr)) any_agg = true;
  }
  query->has_aggregation = any_agg || !stmt.group_by.empty();

  if (stmt.select_star) {
    if (query->has_aggregation) {
      return Status::InvalidArgument("SELECT * with GROUP BY is not supported");
    }
    for (const BoundTable& t : query->tables) {
      for (int c = 0; c < t.schema->num_columns(); ++c) {
        const Column& col = t.schema->column(c);
        query->select_exprs.push_back(std::make_unique<ColumnRefExpr>(
            t.offset + c, col.type, col.name));
        query->output_schema.AddColumn({col.name, col.type});
      }
    }
  } else {
    for (const SelectItem& item : stmt.items) {
      ExprPtr bound;
      if (query->has_aggregation) {
        NODB_ASSIGN_OR_RETURN(
            bound, BindAggSelectExpr(*item.expr, &binder, query.get()));
      } else {
        NODB_ASSIGN_OR_RETURN(bound, binder.Bind(*item.expr));
      }
      std::string name = item.alias;
      if (name.empty()) {
        name = item.expr->kind == ParsedExpr::Kind::kColumn
                   ? item.expr->column
                   : "col" + std::to_string(query->select_exprs.size() + 1);
      }
      query->output_schema.AddColumn({name, bound->type});
      query->select_exprs.push_back(std::move(bound));
    }
  }

  // 5. ORDER BY.
  for (const OrderItem& item : stmt.order_by) {
    NODB_ASSIGN_OR_RETURN(int index,
                          ResolveOrderKey(*item.expr, stmt, &binder, query.get()));
    query->order_by.push_back(BoundOrderKey{index, item.desc});
  }
  query->limit = stmt.limit;
  return query;
}

// Binds [NOT] EXISTS (SELECT ... FROM inner WHERE ...) into a semi join.
Result<BoundSemiJoin> Binder::BindExistsSubquery(const SelectStmt& sub,
                                                 const void* outer_scope_ptr,
                                                 bool anti) {
  const Scope& outer_scope = *static_cast<const Scope*>(outer_scope_ptr);
  if (sub.from.size() != 1) {
    return Status::Unimplemented(
        "EXISTS subqueries must reference exactly one table");
  }
  if (!sub.group_by.empty() || !sub.order_by.empty() || sub.limit.has_value()) {
    return Status::Unimplemented(
        "EXISTS subqueries with GROUP BY/ORDER BY/LIMIT are not supported");
  }

  BoundSemiJoin sj;
  sj.anti = anti;
  NODB_ASSIGN_OR_RETURN(const Schema* schema,
                        provider_->GetTableSchema(sub.from[0].table));
  sj.table.table_name = sub.from[0].table;
  sj.table.display_name = sub.from[0].effective_name();
  sj.table.schema = schema;
  sj.table.offset = 0;

  std::vector<BoundTable> inner_tables = {sj.table};
  Scope inner_scope(&inner_tables);
  ExprBinder inner_binder(&inner_scope);

  // Classify each conjunct of the subquery's WHERE clause.
  std::vector<const ParsedExpr*> flat;
  std::vector<const ParsedExpr*> stack;
  if (sub.where != nullptr) stack.push_back(sub.where.get());
  while (!stack.empty()) {
    const ParsedExpr* e = stack.back();
    stack.pop_back();
    if (e->kind == ParsedExpr::Kind::kBinary && e->op == "AND") {
      stack.push_back(e->right.get());
      stack.push_back(e->left.get());
    } else {
      flat.push_back(e);
    }
  }

  auto side_of = [&](const ParsedExpr& e) -> int {
    // 0 = inner only, 1 = outer only, -1 = mixed/unresolvable.
    std::vector<std::pair<std::string, std::string>> cols;
    CollectParsedColumns(e, &cols);
    bool any_inner = false, any_outer = false;
    for (const auto& [qual, col] : cols) {
      if (inner_scope.CanResolve(qual, col)) {
        any_inner = true;
      } else if (outer_scope.CanResolve(qual, col)) {
        any_outer = true;
      } else {
        return -1;
      }
    }
    if (any_inner && any_outer) return -1;
    return any_outer ? 1 : 0;
  };

  ExprBinder outer_binder(&outer_scope);
  std::vector<ExprPtr> inner_filters;
  for (const ParsedExpr* conj : flat) {
    bool is_corr_eq = false;
    if (conj->kind == ParsedExpr::Kind::kBinary && conj->op == "=") {
      int ls = side_of(*conj->left);
      int rs = side_of(*conj->right);
      if ((ls == 1 && rs == 0) || (ls == 0 && rs == 1)) {
        const ParsedExpr* outer_side = ls == 1 ? conj->left.get()
                                               : conj->right.get();
        const ParsedExpr* inner_side = ls == 1 ? conj->right.get()
                                               : conj->left.get();
        NODB_ASSIGN_OR_RETURN(ExprPtr ok, outer_binder.Bind(*outer_side));
        NODB_ASSIGN_OR_RETURN(ExprPtr ik, inner_binder.Bind(*inner_side));
        sj.outer_keys.push_back(std::move(ok));
        sj.inner_keys.push_back(std::move(ik));
        is_corr_eq = true;
      }
    }
    if (is_corr_eq) continue;
    if (side_of(*conj) != 0) {
      return Status::Unimplemented(
          "EXISTS supports equality correlation plus inner-only predicates");
    }
    NODB_ASSIGN_OR_RETURN(ExprPtr bound, inner_binder.Bind(*conj));
    inner_filters.push_back(std::move(bound));
  }
  if (sj.outer_keys.empty()) {
    return Status::Unimplemented(
        "EXISTS requires at least one equality correlation predicate");
  }
  sj.inner_filter = AndTogether(std::move(inner_filters));
  return sj;
}

// Transforms a select-list expression of an aggregate query into an
// expression over the aggregate output row [group values..., agg results...].
Result<ExprPtr> Binder::BindAggSelectExpr(const ParsedExpr& e,
                                          const void* binder_ptr,
                                          BoundQuery* query) {
  const ExprBinder& binder = *static_cast<const ExprBinder*>(binder_ptr);
  int ngroups = static_cast<int>(query->group_by.size());

  // Direct aggregate call.
  if (e.kind == ParsedExpr::Kind::kFuncCall && IsAggName(e.func_name)) {
    AggregateSpec spec;
    if (e.func_name == "COUNT") {
      spec.func = e.star_arg ? AggFunc::kCountStar : AggFunc::kCount;
    } else if (e.func_name == "SUM") {
      spec.func = AggFunc::kSum;
    } else if (e.func_name == "AVG") {
      spec.func = AggFunc::kAvg;
    } else if (e.func_name == "MIN") {
      spec.func = AggFunc::kMin;
    } else {
      spec.func = AggFunc::kMax;
    }
    if (!e.star_arg) {
      if (e.args.empty()) {
        return Status::InvalidArgument("aggregate requires an argument");
      }
      NODB_ASSIGN_OR_RETURN(spec.arg, binder.Bind(*e.args[0]));
    }
    TypeId result_type = spec.ResultType();
    // Reuse an identical aggregate if present (e.g. SUM(x) used twice).
    std::string key = std::string(AggFuncToString(spec.func)) + ":" +
                      (spec.arg != nullptr ? spec.arg->ToString() : "*");
    for (size_t i = 0; i < query->aggregates.size(); ++i) {
      const AggregateSpec& existing = query->aggregates[i];
      std::string ekey = std::string(AggFuncToString(existing.func)) + ":" +
                         (existing.arg != nullptr ? existing.arg->ToString()
                                                  : "*");
      if (ekey == key) {
        return ExprPtr(std::make_unique<ColumnRefExpr>(
            ngroups + static_cast<int>(i), result_type, ekey));
      }
    }
    query->aggregates.push_back(std::move(spec));
    return ExprPtr(std::make_unique<ColumnRefExpr>(
        ngroups + static_cast<int>(query->aggregates.size()) - 1, result_type,
        key));
  }

  // Aggregate-free subtree: bind over the working row; it must be constant
  // or match a GROUP BY expression.
  if (!ContainsAggregate(e)) {
    NODB_ASSIGN_OR_RETURN(ExprPtr bound, binder.Bind(e));
    std::vector<int> cols;
    bound->CollectColumns(&cols);
    if (cols.empty()) return bound;  // constant expression
    std::string repr = bound->ToString();
    for (int g = 0; g < ngroups; ++g) {
      if (query->group_by[g]->ToString() == repr) {
        return ExprPtr(std::make_unique<ColumnRefExpr>(
            g, query->group_by[g]->type, "group" + std::to_string(g)));
      }
    }
    return Status::InvalidArgument(
        "expression '" + repr +
        "' must appear in GROUP BY or inside an aggregate");
  }

  // Composite expression containing aggregates: rebuild around transformed
  // children.
  switch (e.kind) {
    case ParsedExpr::Kind::kBinary: {
      NODB_ASSIGN_OR_RETURN(ExprPtr left,
                            BindAggSelectExpr(*e.left, binder_ptr, query));
      NODB_ASSIGN_OR_RETURN(ExprPtr right,
                            BindAggSelectExpr(*e.right, binder_ptr, query));
      if (e.op == "AND" || e.op == "OR") {
        return MakeLogical(e.op, std::move(left), std::move(right));
      }
      if (e.op == "+" || e.op == "-" || e.op == "*" || e.op == "/") {
        return MakeArithmetic(e.op, std::move(left), std::move(right));
      }
      return MakeComparison(e.op, std::move(left), std::move(right));
    }
    case ParsedExpr::Kind::kNegate: {
      NODB_ASSIGN_OR_RETURN(ExprPtr inner,
                            BindAggSelectExpr(*e.left, binder_ptr, query));
      ExprPtr zero =
          inner->type == TypeId::kDouble
              ? ExprPtr(std::make_unique<LiteralExpr>(Value::Double(0)))
              : ExprPtr(std::make_unique<LiteralExpr>(Value::Int64(0)));
      return MakeArithmetic("-", std::move(zero), std::move(inner));
    }
    case ParsedExpr::Kind::kFuncCall:
      if (e.func_name == "CAST") {
        NODB_ASSIGN_OR_RETURN(ExprPtr input,
                              BindAggSelectExpr(*e.args[0], binder_ptr, query));
        NODB_ASSIGN_OR_RETURN(TypeId target, TypeNameToId(e.string_value));
        return ExprPtr(std::make_unique<CastExpr>(target, std::move(input)));
      }
      return Status::Internal("unexpected function in aggregate transform");
    default:
      return Status::Unimplemented(
          "unsupported expression shape around aggregates");
  }
}

Result<int> Binder::ResolveOrderKey(const ParsedExpr& e, const SelectStmt& stmt,
                                    const void* binder_ptr, BoundQuery* query) {
  // Ordinal: ORDER BY 2.
  if (e.kind == ParsedExpr::Kind::kIntLiteral) {
    int64_t ordinal = e.int_value;
    if (ordinal < 1 ||
        ordinal > static_cast<int64_t>(query->select_exprs.size())) {
      return Status::InvalidArgument("ORDER BY ordinal out of range");
    }
    return static_cast<int>(ordinal - 1);
  }
  // Alias or output column name.
  if (e.kind == ParsedExpr::Kind::kColumn && e.qualifier.empty()) {
    for (int i = 0; i < query->output_schema.num_columns(); ++i) {
      if (query->output_schema.column(i).name == e.column) return i;
    }
  }
  // Structural match against a select expression.
  const ExprBinder& binder = *static_cast<const ExprBinder*>(binder_ptr);
  ExprPtr bound;
  if (query->has_aggregation) {
    NODB_ASSIGN_OR_RETURN(bound, BindAggSelectExpr(e, binder_ptr, query));
  } else {
    NODB_ASSIGN_OR_RETURN(bound, binder.Bind(e));
  }
  std::string repr = bound->ToString();
  for (size_t i = 0; i < query->select_exprs.size(); ++i) {
    if (query->select_exprs[i]->ToString() == repr) {
      return static_cast<int>(i);
    }
  }
  (void)stmt;
  return Status::Unimplemented(
      "ORDER BY expressions must match a select item, alias or ordinal");
}

}  // namespace nodb
