#ifndef NODB_WORKLOAD_TPCH_QUERIES_H_
#define NODB_WORKLOAD_TPCH_QUERIES_H_

#include <string>
#include <vector>

namespace nodb {

/// SQL text of TPC-H query `number`, in the dialect this engine supports.
/// Available: 1, 3, 4, 6, 10, 12, 14, 19 — the set the paper evaluates in
/// Figures 9/10 ("the remaining queries were not implemented because their
/// performance is either very poor in conventional PostgreSQL, or relied on
/// functionality not yet fully implemented", §5.2 — same subset here).
/// Q19 uses the standard factored form of its join predicate.
/// Returns "" for unavailable numbers.
std::string TpchQuery(int number);

/// The available query numbers, ascending.
const std::vector<int>& TpchQueryNumbers();

/// Tables referenced by query `number` (for registering only what is
/// needed).
std::vector<std::string> TpchQueryTables(int number);

}  // namespace nodb

#endif  // NODB_WORKLOAD_TPCH_QUERIES_H_
