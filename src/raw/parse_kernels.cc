#include "raw/parse_kernels.h"

#include <cstring>

#include "csv/tokenizer.h"
#include "json/json_text.h"
#include "raw/parse_kernels_impl.h"
#include "util/str_conv.h"

namespace nodb {

// Defined in parse_kernels_avx2.cc; returns null when that translation
// unit was built without AVX2 codegen support.
const ParseKernels* Avx2KernelsRaw();

// ------------------------------------------------------------- conversion

namespace {

constexpr uint64_t kSwarOnes = 0x0101010101010101ull;

/// True iff all eight bytes of `w` are ASCII digits.
bool AllDigits8(uint64_t w) {
  // Each byte must sit in ['0','9']: high nibble 3, and adding 0x06 must
  // not carry into the high nibble (rejects ':'..'?').
  return ((w & 0xF0F0F0F0F0F0F0F0ull) |
          (((w + 0x0606060606060606ull) & 0xF0F0F0F0F0F0F0F0ull) >> 4)) ==
         0x3333333333333333ull;
}

/// Converts eight ASCII digits (first digit in the low byte, i.e. a
/// little-endian load of the text) to their integer value. The standard
/// three-multiply SWAR reduction: pairs, then 4-digit groups, then the
/// full 8-digit value.
uint64_t ParseEightDigits(uint64_t w) {
  w -= 0x3030303030303030ull;
  w = (w * 10) + (w >> 8);  // two-digit pairs in every other byte
  constexpr uint64_t kMask = 0x000000FF000000FFull;
  constexpr uint64_t kMul1 = 0x000F424000000064ull;  // 100 + (1000000 << 32)
  constexpr uint64_t kMul2 = 0x0000271000000001ull;  // 1 + (10000 << 32)
  return (((w & kMask) * kMul1) + (((w >> 16) & kMask) * kMul2)) >> 32;
}

bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }

/// Exact powers of ten up to 1e22 — every one is representable as a double
/// with no rounding (2^52 > 10^15 covers the mantissa through 1e22's
/// 5^22 * 2^22 form), which is what makes the Clinger fast path exact.
constexpr double kPow10[] = {
    1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,  1e7,  1e8,  1e9,  1e10, 1e11,
    1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22};

}  // namespace

Result<int64_t> KernelParseInt64(std::string_view text) {
  const char* p = text.data();
  const size_t n = text.size();
  size_t i = 0;
  bool neg = false;
  if (n > 0 && p[0] == '-') {
    neg = true;
    i = 1;
  }
  const size_t digits = n - i;
  // <= 18 digits cannot overflow int64; anything longer (or empty, or with
  // a stray byte) falls back to the scalar parser for the identical result
  // or identical error Status.
  if (digits == 0 || digits > 18) return ParseInt64(text);
  uint64_t value = 0;
  size_t left = digits;
  while (left >= 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    if (!AllDigits8(w)) return ParseInt64(text);
    value = value * 100000000 + ParseEightDigits(w);
    i += 8;
    left -= 8;
  }
  for (; i < n; ++i) {
    if (!IsAsciiDigit(p[i])) return ParseInt64(text);
    value = value * 10 + static_cast<uint64_t>(p[i] - '0');
  }
  int64_t out = static_cast<int64_t>(value);
  return neg ? -out : out;
}

Result<double> KernelParseDouble(std::string_view text) {
  // Eisel-Lemire-style fast path, Clinger variant: when the decimal
  // mantissa fits 2^53 exactly and the decimal exponent is within ±22, one
  // double multiply/divide by an exact power of ten yields the correctly
  // rounded result. Everything else — long mantissas, big exponents,
  // inf/nan, malformed text — delegates to the scalar std::from_chars
  // path, inheriting its exact values and error Statuses.
  const char* p = text.data();
  const size_t n = text.size();
  size_t i = 0;
  bool neg = false;
  if (i < n && p[i] == '-') {
    neg = true;
    ++i;
  }
  uint64_t mantissa = 0;
  int digits = 0;
  int frac_digits = 0;
  while (i < n && IsAsciiDigit(p[i])) {
    mantissa = mantissa * 10 + static_cast<uint64_t>(p[i] - '0');
    ++digits;
    ++i;
  }
  if (i < n && p[i] == '.') {
    ++i;
    size_t frac_begin = i;
    while (i < n && IsAsciiDigit(p[i])) {
      mantissa = mantissa * 10 + static_cast<uint64_t>(p[i] - '0');
      ++digits;
      ++i;
    }
    frac_digits = static_cast<int>(i - frac_begin);
    // "1." and ".e5"-style forms: defer to the scalar parser rather than
    // second-guess its grammar corner cases.
    if (frac_digits == 0) return ParseDouble(text);
  }
  if (digits == 0 || digits > 19) return ParseDouble(text);
  int exp = 0;
  if (i < n && (p[i] == 'e' || p[i] == 'E')) {
    ++i;
    bool exp_neg = false;
    if (i < n && (p[i] == '+' || p[i] == '-')) {
      exp_neg = p[i] == '-';
      ++i;
    }
    int exp_digits = 0;
    while (i < n && IsAsciiDigit(p[i])) {
      if (exp < 100000000) exp = exp * 10 + (p[i] - '0');
      ++exp_digits;
      ++i;
    }
    if (exp_digits == 0) return ParseDouble(text);
    if (exp_neg) exp = -exp;
  }
  if (i != n) return ParseDouble(text);
  const int exp10 = exp - frac_digits;
  if (exp10 < -22 || exp10 > 22 || mantissa > (uint64_t{1} << 53)) {
    return ParseDouble(text);
  }
  double value = static_cast<double>(mantissa);  // exact: mantissa <= 2^53
  value = exp10 >= 0 ? value * kPow10[exp10] : value / kPow10[-exp10];
  return neg ? -value : value;
}

Result<int32_t> KernelParseDate(std::string_view text) {
  // Strict "YYYY-MM-DD": one 8-byte SWAR digit check covers the prefix.
  // Any irregularity delegates to the scalar parser for the identical
  // error Status; validation of the clean path matches it exactly.
  if (text.size() != 10) return ParseDate(text);
  const char* p = text.data();
  uint64_t w;
  std::memcpy(&w, p, 8);
  if (((w >> 32) & 0xFF) != '-' || ((w >> 56) & 0xFF) != '-') {
    return ParseDate(text);
  }
  // Overwrite the two dashes with '0' so the all-digit check applies.
  uint64_t digits = (w & ~((0xFFull << 32) | (0xFFull << 56))) |
                    (0x30ull << 32) | (0x30ull << 56);
  if (!AllDigits8(digits) || !IsAsciiDigit(p[8]) || !IsAsciiDigit(p[9])) {
    return ParseDate(text);
  }
  // Extract from `digits`, not `w`: every byte of `digits` is an ASCII
  // digit (>= 0x30), so the broadside subtraction cannot borrow across
  // bytes the way the raw dash byte (0x2D) would.
  const uint64_t v = digits - kSwarOnes * '0';
  const int year = static_cast<int>((v & 0xF) * 1000 + ((v >> 8) & 0xF) * 100 +
                                    ((v >> 16) & 0xF) * 10 + ((v >> 24) & 0xF));
  const int month =
      static_cast<int>(((v >> 40) & 0xF) * 10 + ((v >> 48) & 0xF));
  const int day = (p[8] - '0') * 10 + (p[9] - '0');
  static constexpr int kDays[12] = {31, 28, 31, 30, 31, 30,
                                    31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return ParseDate(text);
  const bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
  const int days_in_month = (month == 2 && leap) ? 29 : kDays[month - 1];
  if (day < 1 || day > days_in_month) return ParseDate(text);
  return CivilToDays(year, month, day);
}

// ------------------------------------------------------------- bitmaps

void ResolveJsonEscapes(JsonBitmaps* bm) {
  // A quote is escaped iff it directly follows a maximal backslash run of
  // odd length: the scalar skip consumes backslashes in pairs, so an odd
  // run's last backslash consumes the byte after the run. Computing it
  // over maximal runs (rare in real data) is provably identical to the
  // scalar left-to-right `i += 2` pairing — see parse_kernel_test.
  const size_t n = bm->size;
  size_t run_len = 0;
  size_t prev_pos = 0;
  auto finish_run = [&] {
    if (run_len % 2 == 1) {
      size_t target = prev_pos + 1;
      if (target < n) {
        bm->quote[target >> 6] &= ~(uint64_t{1} << (target & 63));
      }
    }
    run_len = 0;
  };
  for (size_t w = 0; w < bm->backslash.size(); ++w) {
    uint64_t bits = bm->backslash[w];
    while (bits != 0) {
      size_t pos = (w << 6) + static_cast<size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      if (run_len > 0 && pos == prev_pos + 1) {
        ++run_len;
      } else {
        finish_run();
        run_len = 1;
      }
      prev_pos = pos;
    }
  }
  finish_run();
}

// ------------------------------------------------------------- tables

namespace {

size_t ScalarFindNewline(const char* p, size_t n) {
  if (n == 0) return 0;  // p may be null for an empty window
  const void* hit = std::memchr(p, '\n', n);
  return hit == nullptr
             ? n
             : static_cast<size_t>(static_cast<const char*>(hit) - p);
}

}  // namespace

const ParseKernels& ScalarKernels() {
  static const ParseKernels table = {
      KernelLevel::kScalar,
      "scalar",
      &ScalarFindNewline,
      &TokenizeStarts,
      &FindFieldForward,
      &FieldEndAt,
      &CountFields,
      nullptr,  // the scalar walker needs no bitmaps
      &SkipJsonValue,  // at an opening quote this is the string skip
      &SkipJsonValue,
      &ParseInt64,
      &ParseDouble,
      &ParseDate,
  };
  return table;
}

const ParseKernels& SwarKernels() {
  static const ParseKernels table =
      kern::KernelOps<kern::SwarScanner>::Table(KernelLevel::kSwar, "swar");
  return table;
}

const ParseKernels* Avx2KernelsOrNull() {
#if defined(__x86_64__) || defined(_M_X64)
  static const bool supported = __builtin_cpu_supports("avx2");
  if (!supported) return nullptr;
  return Avx2KernelsRaw();
#else
  return nullptr;
#endif
}

const ParseKernels& ActiveKernels() {
#ifdef NODB_FORCE_SCALAR_KERNELS
  return ScalarKernels();
#else
  static const ParseKernels* chosen = [] {
    if (const ParseKernels* avx2 = Avx2KernelsOrNull()) return avx2;
    if (const ParseKernels* sse2 = Sse2KernelsOrNull()) return sse2;
    return &SwarKernels();
  }();
  return *chosen;
#endif
}

const ParseKernels& SelectKernels(bool force_scalar) {
  return force_scalar ? ScalarKernels() : ActiveKernels();
}

std::vector<const ParseKernels*> AvailableKernels() {
  std::vector<const ParseKernels*> tables = {&ScalarKernels(),
                                             &SwarKernels()};
  if (const ParseKernels* sse2 = Sse2KernelsOrNull()) tables.push_back(sse2);
  if (const ParseKernels* avx2 = Avx2KernelsOrNull()) tables.push_back(avx2);
  return tables;
}

}  // namespace nodb
