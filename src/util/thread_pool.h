#ifndef NODB_UTIL_THREAD_POOL_H_
#define NODB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nodb {

/// Fixed-size worker pool shared by every parallel scan of one Database
/// (morsel-driven parallelism, in the spirit of Leis et al.'s
/// "Morsel-Driven Parallelism"). Tasks are plain closures drained FIFO by
/// long-lived workers, so per-morsel dispatch costs a queue push instead of
/// a thread spawn.
///
/// Scheduling contract: tasks must never block on the completion of a task
/// that has not started yet (there may be fewer workers than queued tasks),
/// and must not park indefinitely on external progress — the pool is shared
/// by every concurrently open scan of a Database. Parallel scans obey this
/// by making worker tasks run-to-bounded-completion: a worker processes
/// morsels while its scan's reorder window permits and *exits* otherwise;
/// the scan's consumer (on the caller's thread, never inside the pool)
/// resubmits workers as it drains the window.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (minimum 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains nothing: pending tasks are abandoned, running tasks are joined.
  /// Callers that need their tasks finished must track completion
  /// themselves (parallel scans join their morsel workers in Close).
  ~ThreadPool();

  /// Enqueues `task` for execution on some worker. Safe from any thread,
  /// including from inside a task.
  void Submit(std::function<void()> task);

  /// Grows the pool to at least `num_threads` workers (never shrinks).
  void Grow(int num_threads);

  int num_threads() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutting_down_ = false;
};

}  // namespace nodb

#endif  // NODB_UTIL_THREAD_POOL_H_
