#include "sql/lexer.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace nodb {

namespace {

const std::array<std::string_view, 38> kKeywords = {
    "SELECT", "FROM",   "WHERE",  "GROUP",  "BY",     "ORDER",   "LIMIT",
    "AS",     "AND",    "OR",     "NOT",    "IN",     "BETWEEN", "LIKE",
    "IS",     "NULL",   "CASE",   "WHEN",   "THEN",   "ELSE",    "END",
    "EXISTS", "JOIN",   "INNER",  "ON",     "ASC",    "DESC",    "DATE",
    "INTERVAL", "DAY",  "MONTH",  "YEAR",   "COUNT",  "SUM",     "AVG",
    "MIN",    "MAX",    "CAST",
};

bool IsKeywordWord(const std::string& upper) {
  return std::find(kKeywords.begin(), kKeywords.end(), upper) !=
         kKeywords.end();
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    int pos = static_cast<int>(i);
    // Identifier / keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
      if (IsKeywordWord(upper)) {
        tokens.push_back({TokenType::kKeyword, upper, pos});
      } else {
        std::string lower = word;
        std::transform(lower.begin(), lower.end(), lower.begin(), ::tolower);
        tokens.push_back({TokenType::kIdent, lower, pos});
      }
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      tokens.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                        sql.substr(start, i - start), pos});
      continue;
    }
    // String literal.
    if (c == '\'') {
      ++i;
      std::string content;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            content.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        content.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at " +
                                       std::to_string(pos));
      }
      tokens.push_back({TokenType::kString, std::move(content), pos});
      continue;
    }
    // Multi-char operators.
    if (c == '<' || c == '>' || c == '!') {
      if (i + 1 < n && (sql[i + 1] == '=' ||
                        (c == '<' && sql[i + 1] == '>'))) {
        tokens.push_back({TokenType::kSymbol, sql.substr(i, 2), pos});
        i += 2;
        continue;
      }
      if (c == '!') {
        return Status::InvalidArgument("unexpected '!' at " +
                                       std::to_string(pos));
      }
      tokens.push_back({TokenType::kSymbol, std::string(1, c), pos});
      ++i;
      continue;
    }
    // Single-char symbols.
    static const std::string kSingles = "(),.+-*/=;";
    if (kSingles.find(c) != std::string::npos) {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), pos});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at " +
                                   std::to_string(pos));
  }
  tokens.push_back({TokenType::kEof, "", static_cast<int>(n)});
  return tokens;
}

}  // namespace nodb
