// Astronomy on FITS binary tables (paper §5.3): SQL over telescope catalog
// data without converting it out of FITS — "a major advantage of the
// PostgresRaw philosophy is that it allows database technology, such as
// declarative queries, to be executed over data sources that would
// otherwise not be supported."
//
// The same analysis is shown twice: as one SQL statement, and as the
// procedural CFITSIO-style code an astronomer would otherwise write —
// usability being the paper's third observation about this experiment.

#include <cstdio>

#include "engine/engines.h"
#include "fits/cfitsio_like.h"
#include "fits/fits_writer.h"
#include "util/fs_util.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace nodb;

int main() {
  TempDir scratch;
  std::string path = scratch.File("catalog.fits");

  // A small star catalog: position, brightness, class.
  {
    Schema schema{{"ra", TypeId::kDouble},
                  {"dec", TypeId::kDouble},
                  {"mag", TypeId::kDouble},
                  {"parallax", TypeId::kDouble},
                  {"class", TypeId::kString}};
    auto writer = FitsWriter::Create(path, schema, {8});
    if (!writer.ok()) return 1;
    Rng rng(1609);
    const char* classes[] = {"STAR", "GALAXY", "QSO", "STAR", "STAR"};
    for (int i = 0; i < 250000; ++i) {
      if (!(*writer)
               ->Append({Value::Double(rng.NextDouble() * 360.0),
                         Value::Double(rng.NextDouble() * 180.0 - 90.0),
                         Value::Double(8.0 + rng.NextDouble() * 14.0),
                         Value::Double(rng.NextDouble() * 50.0),
                         Value::String(classes[rng.Next() % 5])})
               .ok()) {
        return 1;
      }
    }
    if (!(*writer)->Finish().ok()) return 1;
  }

  // --- SQL over the FITS file (schema read from the FITS header) ---
  auto db = MakeEngine(SystemUnderTest::kPostgresRawPMC);
  if (!db->RegisterFits("catalog", path).ok()) return 1;

  const char* queries[] = {
      "SELECT COUNT(*), MIN(mag), MAX(mag) FROM catalog",
      "SELECT class, COUNT(*) AS objects, AVG(mag) AS avg_mag "
      "FROM catalog GROUP BY class ORDER BY objects DESC",
      // A bright-object cone-ish search around the celestial equator.
      "SELECT COUNT(*) FROM catalog WHERE mag < 10 "
      "AND dec BETWEEN -5.0 AND 5.0",
  };
  printf("=== declarative: SQL straight over the FITS file ===\n");
  for (const char* sql : queries) {
    printf("> %s\n", sql);
    Stopwatch timer;
    auto cursor = db->Query(sql);
    if (!cursor.ok()) {
      fprintf(stderr, "failed: %s\n", cursor.status().ToString().c_str());
      return 1;
    }
    for (int c = 0; c < cursor->schema().num_columns(); ++c) {
      printf("%s%s", c ? " | " : "", cursor->schema().column(c).name.c_str());
    }
    printf("\n");
    RowBatch batch = cursor->MakeBatch();
    size_t printed = 0, total = 0;
    while (true) {
      auto n = cursor->Next(&batch);
      if (!n.ok()) {
        fprintf(stderr, "failed: %s\n", n.status().ToString().c_str());
        return 1;
      }
      if (*n == 0) break;
      for (size_t r = 0; r < *n; ++r, ++total) {
        if (printed >= 6) continue;
        for (size_t c = 0; c < batch[r].size(); ++c) {
          printf("%s%s", c ? " | " : "", batch[r][c].ToString().c_str());
        }
        printf("\n");
        ++printed;
      }
    }
    if (total > printed) printf("... (%zu rows total)\n", total);
    printf("  (%.1f ms)\n\n", timer.ElapsedSeconds() * 1000);
  }

  // --- the same bright-object count, the CFITSIO way ---
  printf("=== procedural: the CFITSIO-style equivalent of query 3 ===\n");
  fitsfile* f = nullptr;
  if (fits_open_table(&f, path.c_str()) != kFitsOk) return 1;
  long long nrows = 0;
  fits_get_num_rows(f, &nrows);
  int mag_col = 0, dec_col = 0;
  fits_get_colnum(f, "mag", &mag_col);
  fits_get_colnum(f, "dec", &dec_col);
  std::vector<double> mag(nrows), dec(nrows);
  if (fits_read_col_dbl(f, mag_col, 1, nrows, mag.data()) != kFitsOk ||
      fits_read_col_dbl(f, dec_col, 1, nrows, dec.data()) != kFitsOk) {
    return 1;
  }
  long long count = 0;
  for (long long i = 0; i < nrows; ++i) {
    if (mag[i] < 10 && dec[i] >= -5.0 && dec[i] <= 5.0) ++count;
  }
  fits_close_file(f);
  printf("hand-written loop says: %lld bright equatorial objects\n", count);
  printf("(every new question needs another program — or one SQL line "
         "above)\n");
  return 0;
}
