#include "json/jsonl_adapter.h"

#include <utility>
#include <vector>

#include "json/json_text.h"
#include "raw/line_reader.h"
#include "raw/parse_kernels.h"
#include "util/str_conv.h"

namespace nodb {

namespace {

/// Line cursor that drops whitespace-only lines: a trailing or embedded
/// blank line is formatting, not a record, and must not surface as a
/// phantom all-NULL row (schema inference skips them the same way).
class JsonlRecordCursor final : public RecordCursor {
 public:
  JsonlRecordCursor(const RandomAccessFile* file, const ParseKernels* kernels)
      : reader_(file, LineReader::kDefaultBufferSize, kernels) {}

  Result<bool> Next(RecordRef* rec) override {
    while (true) {
      NODB_ASSIGN_OR_RETURN(bool has, reader_.Next(rec));
      if (!has) return false;
      if (SkipJsonWs(rec->data, 0) < rec->data.size()) return true;
    }
  }

  Status SeekToRecord(uint64_t index, uint64_t offset) override {
    (void)index;
    reader_.SeekTo(offset);
    return Status::OK();
  }

 private:
  LineReader reader_;
};

/// Per-thread scratch for the two-stage structural scan: stage-1 bitmaps
/// plus a decode buffer, reused across records. Thread-local because the
/// adapter is const and shared by concurrent morsel workers; the bitmaps
/// are never cached across records (LineReader reuses buffer addresses, so
/// a (pointer, size) key would alias distinct records).
struct JsonScanScratch {
  JsonBitmaps bitmaps;
  std::string str;
};

JsonScanScratch& TlsScanScratch() {
  static thread_local JsonScanScratch scratch;
  return scratch;
}

/// Guesses a column type from one JSON value token; nullopt for `null`
/// (which constrains nothing).
std::optional<TypeId> GuessType(std::string_view token) {
  if (token.empty()) return TypeId::kString;
  if (token[0] == '"') {
    std::string decoded;
    if (UnescapeJsonString(token, &decoded) && ParseDate(decoded).ok()) {
      return TypeId::kDate;
    }
    return TypeId::kString;
  }
  if (token == "true" || token == "false") return TypeId::kBool;
  if (token == "null") return std::nullopt;
  for (char c : token) {
    if (c == '.' || c == 'e' || c == 'E') return TypeId::kDouble;
  }
  return TypeId::kInt64;
}

/// Widens two observed types for the same key: ints widen to doubles,
/// dates decay to strings, any other disagreement falls back to string
/// (every token parses as a string).
TypeId MergeTypes(TypeId a, TypeId b) {
  if (a == b) return a;
  auto numeric = [](TypeId t) {
    return t == TypeId::kInt64 || t == TypeId::kDouble;
  };
  if (numeric(a) && numeric(b)) return TypeId::kDouble;
  return TypeId::kString;
}

/// How many leading records schema inference inspects. One record is not
/// enough (a double column whose first value happens to be whole would
/// infer as integer); a bounded prefix keeps Open O(1) in the file size.
constexpr int kInferenceRecords = 100;

/// Infers a schema from the leading records: top-level scalar fields in
/// first-appearance order (nested objects/arrays are not projectable and
/// are skipped), types widened across records via MergeTypes.
Result<Schema> InferSchema(const RandomAccessFile* file,
                           const std::string& path) {
  // A small window suffices for ~100 typical records (LineReader grows it
  // if one record is larger); the scan's 1 MiB default would make every
  // schema-inferring Open read 1 MiB up front.
  LineReader reader(file, 64 * 1024);
  RecordRef rec;
  std::vector<std::string> names;
  std::vector<std::optional<TypeId>> types;
  std::unordered_map<std::string, size_t> index;
  std::string scratch;
  int records_seen = 0;
  while (records_seen < kInferenceRecords) {
    NODB_ASSIGN_OR_RETURN(bool has, reader.Next(&rec));
    if (!has) break;
    std::string_view s = rec.data;
    size_t first = SkipJsonWs(s, 0);
    if (first >= s.size()) continue;  // blank line
    if (s[first] != '{') {
      return Status::InvalidArgument("record " +
                                     std::to_string(records_seen + 1) +
                                     " of '" + path +
                                     "' is not a JSON object");
    }
    ++records_seen;
    // Inference runs once per Open and off the hot path: the scalar walker
    // keeps it trivially identical across kernel configurations.
    bool well_formed = WalkTopLevelFields(
        s, ScalarJsonSkipper{}, &scratch,
        [&](std::string_view key, size_t vpos, size_t vend) {
          if (s[vpos] == '{' || s[vpos] == '[') return;  // not projectable
          std::optional<TypeId> guess = GuessType(s.substr(vpos, vend - vpos));
          auto [it, inserted] = index.try_emplace(std::string(key),
                                                  names.size());
          if (inserted) {
            names.emplace_back(key);
            types.push_back(guess);
          } else if (guess.has_value()) {
            std::optional<TypeId>& known = types[it->second];
            known = known.has_value() ? MergeTypes(*known, *guess) : *guess;
          }
        });
    if (!well_formed) {
      // A broken record (truncated tail, malformed member) ends sampling:
      // fields gathered so far still make a usable schema, and the broken
      // record itself surfaces as a clean per-query error when scanned. An
      // unusable *first* record is an error here, though — there is
      // nothing to infer from.
      if (names.empty()) {
        return Status::InvalidArgument("malformed JSON object in '" + path +
                                       "'");
      }
      break;
    }
  }
  if (records_seen == 0) {
    return Status::InvalidArgument(
        "cannot infer a schema from empty JSONL file '" + path +
        "'; pass OpenOptions::schema");
  }
  Schema schema;
  for (size_t c = 0; c < names.size(); ++c) {
    // All-null columns constrain nothing; string accepts anything later.
    schema.AddColumn({names[c], types[c].value_or(TypeId::kString)});
  }
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument(
        "the leading records of '" + path +
        "' have no top-level scalar fields to project");
  }
  return schema;
}

}  // namespace

JsonlAdapter::JsonlAdapter(std::string path, Schema schema,
                           std::unique_ptr<RandomAccessFile> file,
                           const ParseKernels* kernels)
    : path_(std::move(path)), schema_(std::move(schema)),
      file_(std::move(file)),
      kernels_(kernels != nullptr ? kernels : &ActiveKernels()) {
  traits_.variable_positions = true;
  traits_.fixed_stride = false;
  traits_.backward_tokenize = false;  // keys are unordered; anchors don't apply
  traits_.attr0_at_start = false;     // records start with '{', not a field
  traits_.full_record_tokenize = true;
  for (int c = 0; c < schema_.num_columns(); ++c) {
    key_to_attr_.emplace(schema_.column(c).name, c);
  }
}

Result<std::unique_ptr<JsonlAdapter>> JsonlAdapter::Make(
    const std::string& path, std::optional<Schema> schema,
    std::unique_ptr<RandomAccessFile> file, const ParseKernels* kernels) {
  if (file == nullptr) {
    NODB_ASSIGN_OR_RETURN(file, RandomAccessFile::Open(path));
  }
  Schema resolved;
  if (schema.has_value() && schema->num_columns() > 0) {
    resolved = std::move(*schema);
  } else {
    NODB_ASSIGN_OR_RETURN(resolved, InferSchema(file.get(), path));
  }
  return std::unique_ptr<JsonlAdapter>(new JsonlAdapter(
      path, std::move(resolved), std::move(file), kernels));
}

Result<std::unique_ptr<RecordCursor>> JsonlAdapter::OpenCursor() const {
  return std::unique_ptr<RecordCursor>(
      std::make_unique<JsonlRecordCursor>(file_.get(), kernels_));
}

Result<uint64_t> JsonlAdapter::FindRecordBoundary(uint64_t offset) const {
  // One object per line: a split point inside an object — even inside a
  // string escape — snaps to the next '\n', which no JSONL record spans.
  return FindLineBoundary(file_.get(), offset, /*skip_first_line=*/false,
                          kernels_);
}

uint32_t JsonlAdapter::FindForward(const RecordRef& rec, int from_attr,
                                   uint32_t from_pos, int to_attr,
                                   const PositionSink& sink) const {
  // Keys appear in arbitrary order, so the anchor is ignored and the whole
  // object is walked once; every projected field crossed is reported via
  // `sink`, making later resolves for this record position-map hits. A
  // record that is not one well-formed object (truncated, malformed, or
  // concatenated values on a line — silent data loss otherwise) is flagged
  // as container corruption through the sink, piggybacking on the walk the
  // scan pays anyway.
  (void)from_attr, (void)from_pos;
  uint32_t found = kNoFieldPos;
  auto visit = [&](std::string_view key, size_t vpos, size_t vend) {
    (void)vend;
    auto it = key_to_attr_.find(key);
    if (it != key_to_attr_.end()) {
      sink.Record(it->second, static_cast<uint32_t>(vpos));
      if (it->second == to_attr) found = static_cast<uint32_t>(vpos);
    }
  };
  bool well_formed;
  if (kernels_->json_bitmaps != nullptr) {
    // Two-stage structural scan: one vectorized classification pass builds
    // the quote/container/terminator bitmaps, then the same sequential
    // walker answers every skip with a bit scan.
    JsonScanScratch& scratch = TlsScanScratch();
    kernels_->json_bitmaps(rec.data, &scratch.bitmaps);
    well_formed = WalkTopLevelFields(
        rec.data, BitmapSkipper{&scratch.bitmaps}, &scratch.str, visit);
  } else {
    std::string scratch;
    well_formed =
        WalkTopLevelFields(rec.data, ScalarJsonSkipper{}, &scratch, visit);
  }
  if (!well_formed) sink.FlagCorrupt();
  return found;
}

uint32_t JsonlAdapter::FieldEnd(const RecordRef& rec, int attr, uint32_t pos,
                                uint32_t next_attr_pos) const {
  // Schema order says nothing about textual order, so the next attribute's
  // position is no shortcut here; scan the value itself. Warm (position-map
  // hit) resolves land here without a FindForward walk, so this uses the
  // block-scan skip rather than rebuilding stage-1 bitmaps for one field.
  (void)attr, (void)next_attr_pos;
  return static_cast<uint32_t>(kernels_->json_skip_value(rec.data, pos));
}

Result<Value> JsonlAdapter::ParseField(const RecordRef& rec, int attr,
                                       uint32_t pos, uint32_t end) const {
  std::string_view text = rec.data.substr(pos, end - pos);
  TypeId type = schema_.column(attr).type;
  if (text == "null") return Value::Null(type);
  if (!text.empty() && (text.front() == '{' || text.front() == '[')) {
    // Nested values are tokenized over but not projected (the adapter's
    // fixed-schema contract; inference skips such fields the same way).
    return Value::Null(type);
  }
  if (!text.empty() && text.front() == '"') {
    // Fast path: a closed, escape-free string parses straight from the raw
    // slice (the overwhelmingly common case on the in-situ hot path).
    if (text.size() >= 2 && text.back() == '"' &&
        text.find('\\') == std::string_view::npos) {
      return ParseFieldValue(*kernels_, type, text.substr(1, text.size() - 2));
    }
    std::string decoded;
    if (!UnescapeJsonString(text, &decoded)) {
      return Status::InvalidArgument("malformed JSON string value '" +
                                     std::string(text) + "'");
    }
    return ParseFieldValue(*kernels_, type, decoded);
  }
  return ParseFieldValue(*kernels_, type, text);
}

namespace {

class JsonlAdapterFactory final : public AdapterFactory {
 public:
  std::string_view format_name() const override { return "jsonl"; }

  double Sniff(const std::string& path, std::string_view head) const override {
    if (PathHasExtension(path, ".jsonl") ||
        PathHasExtension(path, ".ndjson")) {
      return 0.9;
    }
    size_t i = SkipJsonWs(head, 0);
    if (i < head.size() && head[i] == '{') return 0.7;
    return 0.0;
  }

  Result<std::unique_ptr<RawSourceAdapter>> Create(
      const std::string& path, const OpenOptions& options,
      std::unique_ptr<RandomAccessFile> file) const override {
    NODB_ASSIGN_OR_RETURN(
        std::unique_ptr<JsonlAdapter> adapter,
        JsonlAdapter::Make(path, options.schema, std::move(file),
                           &SelectKernels(options.scalar_kernels)));
    return std::unique_ptr<RawSourceAdapter>(std::move(adapter));
  }
};

}  // namespace

std::unique_ptr<AdapterFactory> MakeJsonlAdapterFactory() {
  return std::make_unique<JsonlAdapterFactory>();
}

}  // namespace nodb
