#include "csv/parser.h"

#include "raw/parse_kernels.h"

namespace nodb {

std::string_view UnquoteField(std::string_view raw, const CsvDialect& dialect,
                              std::string* scratch) {
  if (!dialect.quoting || raw.size() < 2 || raw.front() != dialect.quote ||
      raw.back() != dialect.quote) {
    return raw;
  }
  std::string_view inner = raw.substr(1, raw.size() - 2);
  // Fast path: no escaped quotes inside.
  if (inner.find(dialect.quote) == std::string_view::npos) return inner;
  scratch->clear();
  for (size_t i = 0; i < inner.size(); ++i) {
    scratch->push_back(inner[i]);
    if (inner[i] == dialect.quote && i + 1 < inner.size() &&
        inner[i + 1] == dialect.quote) {
      ++i;  // collapse "" to "
    }
  }
  return *scratch;
}

Result<Value> ParseCsvField(std::string_view raw, TypeId type,
                            const CsvDialect& dialect) {
  return ParseCsvField(raw, type, dialect, ScalarKernels());
}

Result<Value> ParseCsvField(std::string_view raw, TypeId type,
                            const CsvDialect& dialect,
                            const ParseKernels& kernels) {
  // Unquoted fields — the overwhelming majority in practice — skip the
  // unquote call and its scratch buffer entirely.
  if (!dialect.quoting || raw.empty() || raw.front() != dialect.quote) {
    return ParseFieldValue(kernels, type, raw);
  }
  std::string scratch;
  std::string_view text = UnquoteField(raw, dialect, &scratch);
  return ParseFieldValue(kernels, type, text);
}

}  // namespace nodb
