#ifndef NODB_TYPES_VALUE_H_
#define NODB_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "types/data_type.h"
#include "util/result.h"

namespace nodb {

/// A single typed, nullable SQL value. Fixed-width payloads live in a small
/// union; string payloads own their bytes. Values are freely copyable; the
/// executor moves them where it matters.
class Value {
 public:
  /// Constructs a NULL of type kInt64 (a placeholder; use the factories).
  Value() : type_(TypeId::kInt64), is_null_(true) { payload_.i64 = 0; }

  static Value Null(TypeId type) {
    Value v;
    v.type_ = type;
    v.is_null_ = true;
    return v;
  }
  static Value Int64(int64_t x) {
    Value v;
    v.type_ = TypeId::kInt64;
    v.is_null_ = false;
    v.payload_.i64 = x;
    return v;
  }
  static Value Double(double x) {
    Value v;
    v.type_ = TypeId::kDouble;
    v.is_null_ = false;
    v.payload_.f64 = x;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = TypeId::kString;
    v.is_null_ = false;
    v.str_ = std::move(s);
    return v;
  }
  static Value String(std::string_view s) { return String(std::string(s)); }
  static Value String(const char* s) { return String(std::string(s)); }
  static Value Date(int32_t days_since_epoch) {
    Value v;
    v.type_ = TypeId::kDate;
    v.is_null_ = false;
    v.payload_.i64 = days_since_epoch;
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.type_ = TypeId::kBool;
    v.is_null_ = false;
    v.payload_.i64 = b ? 1 : 0;
    return v;
  }

  TypeId type() const { return type_; }
  bool is_null() const { return is_null_; }

  /// Typed accessors. Calling the wrong accessor for the value's type is a
  /// programming error (unchecked in release builds, like a union read).
  int64_t int64() const { return payload_.i64; }
  double f64() const { return payload_.f64; }
  const std::string& str() const { return str_; }
  int32_t date() const { return static_cast<int32_t>(payload_.i64); }
  bool boolean() const { return payload_.i64 != 0; }

  /// Numeric view: int64/date/bool widen to double; kDouble passes through.
  /// Only meaningful for non-null, non-string values.
  double AsDouble() const {
    return type_ == TypeId::kDouble ? payload_.f64
                                    : static_cast<double>(payload_.i64);
  }

  /// Three-way comparison between two non-null values of the same type
  /// (numeric types compare cross-type via AsDouble). Returns <0, 0, >0.
  /// Comparing a string with a numeric type is a programming error.
  int Compare(const Value& other) const;

  /// SQL equality (both non-null). See Compare for type rules.
  bool Equals(const Value& other) const { return Compare(other) == 0; }

  /// Hash of the value, used by hash join / hash aggregation. NULLs of the
  /// same type hash identically.
  uint64_t Hash() const;

  /// Human/CSV representation ("NULL" for nulls; dates as YYYY-MM-DD).
  std::string ToString() const;

  /// Parses `text` as a value of `type`. An empty field is NULL.
  static Result<Value> ParseAs(TypeId type, std::string_view text);

  bool operator==(const Value& other) const;

 private:
  union Payload {
    int64_t i64;
    double f64;
  };

  TypeId type_;
  bool is_null_;
  Payload payload_;
  std::string str_;
};

/// A tuple: one Value per column, ordered per the owning Schema.
using Row = std::vector<Value>;

/// Combines `h` into `seed` (boost::hash_combine recipe, 64-bit variant).
inline uint64_t HashCombine(uint64_t seed, uint64_t h) {
  return seed ^ (h + 0x9E3779B97F4A7C15ULL + (seed << 12) + (seed >> 4));
}

/// Hash of an entire row (for grouping / join keys).
uint64_t HashRow(const Row& row);

}  // namespace nodb

#endif  // NODB_TYPES_VALUE_H_
