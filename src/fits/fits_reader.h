#ifndef NODB_FITS_FITS_READER_H_
#define NODB_FITS_FITS_READER_H_

#include <memory>
#include <string>
#include <vector>

#include "fits/fits_format.h"
#include "io/buffered_reader.h"
#include "io/file.h"
#include "util/result.h"

namespace nodb {

/// Streaming row reader over a FITS binary table, used by tests and by the
/// in-situ FITS scan's cold path. Field positions are computed, never
/// tokenized — the structural difference from CSV that §5.3 highlights.
class FitsReader {
 public:
  /// `file` must outlive the reader; `info` is the parsed header.
  FitsReader(const RandomAccessFile* file, const FitsTableInfo* info);

  /// Decodes the columns selected by `needed` (table arity) of row `row_idx`
  /// into `*row` (full arity, unneeded columns NULL).
  Status ReadRow(uint64_t row_idx, const std::vector<bool>& needed, Row* row);

  uint64_t num_rows() const { return info_->num_rows; }

 private:
  const FitsTableInfo* info_;
  BufferedReader reader_;
};

}  // namespace nodb

#endif  // NODB_FITS_FITS_READER_H_
