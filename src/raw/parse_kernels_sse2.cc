#include "raw/parse_kernels.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include <cstring>

#include "raw/parse_kernels_impl.h"

namespace nodb {

namespace kern {
namespace {

/// 16-byte scanner over SSE2 — baseline on x86-64, so no runtime check.
struct Sse2Scanner {
  static constexpr size_t kWidth = 16;
  using Block = __m128i;

  static Block Load(const char* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static Block LoadPartial(const char* p, size_t n) {
    alignas(16) char buf[16] = {0};
    std::memcpy(buf, p, n);
    return _mm_load_si128(reinterpret_cast<const __m128i*>(buf));
  }
  static uint64_t Eq(Block b, char c) {
    return static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(b, _mm_set1_epi8(c))));
  }
};

}  // namespace
}  // namespace kern

const ParseKernels* Sse2KernelsOrNull() {
  static const ParseKernels table =
      kern::KernelOps<kern::Sse2Scanner>::Table(KernelLevel::kSse2, "sse2");
  return &table;
}

}  // namespace nodb

#else  // !x86-64

namespace nodb {
const ParseKernels* Sse2KernelsOrNull() { return nullptr; }
}  // namespace nodb

#endif
