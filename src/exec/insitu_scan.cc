#include "exec/insitu_scan.h"

#include <algorithm>
#include <utility>

#include "csv/parser.h"
#include "csv/tokenizer.h"
#include "expr/evaluator.h"
#include "pmap/temp_map.h"

namespace nodb {

namespace {
constexpr uint32_t kUnknown = PositionalMap::kUnknown;
}  // namespace

InSituScanOp::InSituScanOp(TableRuntime* runtime, const PlannedScan* scan,
                           int working_width, InSituOptions options)
    : runtime_(runtime), scan_(scan), working_width_(working_width),
      opts_(options) {}

Status InSituScanOp::Open() {
  if (runtime_->raw_file == nullptr) {
    return Status::Internal("in-situ scan over a table without a raw file");
  }
  ncols_ = runtime_->schema.num_columns();
  slot_of_.assign(ncols_, -1);
  if (runtime_->pmap != nullptr) {
    tuples_per_stripe_ = runtime_->pmap->tuples_per_chunk();
  }

  // Attribute phases (§4.1). Without selective tuple formation every column
  // is an output column; without selective parsing phase 1 covers all
  // output columns (parse first, filter later — the straw-man).
  std::vector<int> needed;
  if (opts_.selective_tuple_formation) {
    needed.insert(needed.end(), scan_->where_attrs.begin(),
                  scan_->where_attrs.end());
    needed.insert(needed.end(), scan_->payload_attrs.begin(),
                  scan_->payload_attrs.end());
  } else {
    for (int c = 0; c < ncols_; ++c) needed.push_back(c);
  }
  std::sort(needed.begin(), needed.end());
  needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
  output_attrs_ = needed;

  if (opts_.selective_parsing) {
    phase1_attrs_ = scan_->where_attrs;
    std::sort(phase1_attrs_.begin(), phase1_attrs_.end());
    phase2_attrs_.clear();
    for (int a : output_attrs_) {
      if (!std::binary_search(phase1_attrs_.begin(), phase1_attrs_.end(), a)) {
        phase2_attrs_.push_back(a);
      }
    }
  } else {
    phase1_attrs_ = output_attrs_;
    phase2_attrs_.clear();
  }

  max_token_attr_ =
      opts_.selective_tokenizing
          ? (output_attrs_.empty() ? 0 : output_attrs_.back())
          : ncols_ - 1;

  if (runtime_->pmap != nullptr && opts_.use_positional_map) {
    runtime_->pmap->BeginEpoch();
  }
  scanner_ = std::make_unique<CsvScanner>(runtime_->raw_file.get(), 1 << 20);
  next_tuple_ = 0;
  eof_ = false;
  header_skipped_ = !runtime_->dialect.has_header;
  out_size_ = 0;
  out_idx_ = 0;
  return Status::OK();
}

Result<size_t> InSituScanOp::Next(RowBatch* batch) {
  // One stripe of tuples is tokenized/parsed per LoadStripe, then handed
  // out batch-by-batch: the whole tokenize + map-probe loop runs without a
  // virtual call per tuple. Rows move out by swap, returning the batch
  // slot's old storage to the recycler for the next stripe to reuse.
  batch->Clear();
  while (!batch->full()) {
    if (out_idx_ >= out_size_) {
      if (eof_) break;
      out_size_ = 0;
      out_idx_ = 0;
      NODB_RETURN_IF_ERROR(LoadStripe());
      continue;
    }
    std::swap(batch->PushRow(), out_rows_[out_idx_++]);
  }
  return batch->size();
}

Status InSituScanOp::ServeFromCache(uint64_t stripe, int n) {
  ColumnCache* cache = runtime_->cache.get();
  std::vector<const std::vector<Value>*> cols(ncols_, nullptr);
  for (int a : output_attrs_) {
    cols[a] = cache->Get(stripe, a);
    if (cols[a] == nullptr || static_cast<int>(cols[a]->size()) != n) {
      return Status::Internal("cache coverage changed mid-check");
    }
  }
  const int offset = scan_->table.offset;
  for (int t = 0; t < n; ++t) {
    Row& row = OutSlot();
    row.assign(working_width_, Value());
    for (int a : phase1_attrs_) {
      row[offset + a] = (*cols[a])[t];
    }
    bool pass = true;
    for (const ExprPtr& conj : scan_->conjuncts) {
      NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*conj, row));
      if (!Evaluator::IsTruthy(v)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    for (int a : phase2_attrs_) {
      row[offset + a] = (*cols[a])[t];
    }
    ++out_size_;
  }
  return Status::OK();
}

Status InSituScanOp::LoadStripe() {
  PositionalMap* pm = runtime_->pmap.get();
  ColumnCache* cache = opts_.use_cache ? runtime_->cache.get() : nullptr;
  TableStats* stats = opts_.collect_stats ? runtime_->stats.get() : nullptr;
  const CsvDialect& dialect = runtime_->dialect;
  const bool use_pm_positions = opts_.use_positional_map && pm != nullptr;
  const uint64_t stripe = next_tuple_ / tuples_per_stripe_;
  const uint64_t stripe_first = stripe * tuples_per_stripe_;

  // Expected stripe population (known once a full scan completed).
  int n_expected = -1;
  if (pm != nullptr && pm->total_tuples() > 0) {
    if (next_tuple_ >= pm->total_tuples()) {
      eof_ = true;
      return Status::OK();
    }
    n_expected = static_cast<int>(
        std::min<uint64_t>(tuples_per_stripe_,
                           pm->total_tuples() - stripe_first));
  }

  // Fast path: the whole stripe is served from the cache — no file access
  // at all (§4.3: "if the attribute is requested by future queries,
  // PostgresRaw will read it directly from the cache").
  if (cache != nullptr && n_expected > 0) {
    bool all_cached = true;
    for (int a : output_attrs_) {
      if (!cache->Contains(stripe, a)) {
        all_cached = false;
        break;
      }
    }
    if (all_cached) {
      NODB_RETURN_IF_ERROR(ServeFromCache(stripe, n_expected));
      next_tuple_ = stripe_first + n_expected;
      if (pm->total_tuples() > 0 && next_tuple_ >= pm->total_tuples()) {
        eof_ = true;
      } else if (auto start = pm->RowStart(next_tuple_); start.has_value()) {
        need_seek_ = true;
        seek_offset_ = *start;
      } else {
        return Status::Internal(
            "cached stripe without spine for the next stripe");
      }
      return Status::OK();
    }
  }

  // File path. Position the scanner at the stripe's first tuple. Seek
  // targets are always data-row starts, so the header is behind us.
  if (need_seek_) {
    scanner_->SeekTo(seek_offset_);
    need_seek_ = false;
    header_skipped_ = true;
  }
  if (!header_skipped_) {
    LineRef header;
    NODB_ASSIGN_OR_RETURN(bool has, scanner_->Next(&header));
    header_skipped_ = true;
    if (!has) {
      eof_ = true;
      return Status::OK();
    }
  }

  // Per-attribute cached columns (mixed mode: some attrs cached, some not).
  std::vector<const std::vector<Value>*> cached_col(ncols_, nullptr);
  if (cache != nullptr && n_expected > 0) {
    for (int a : output_attrs_) {
      const std::vector<Value>* col = cache->Get(stripe, a);
      if (col != nullptr && static_cast<int>(col->size()) == n_expected) {
        cached_col[a] = col;
      }
    }
  }

  // Snapshot of attributes already indexed for this stripe, taken before we
  // open this query's insert chunk (a fresh, still-hole-filled chunk must
  // not be treated as an anchor source).
  std::vector<int> indexed_before;
  if (use_pm_positions) {
    indexed_before = pm->IndexedAttrsForStripe(stripe);
  }

  // Decide which attribute positions this stripe will contribute to the map
  // (§4.2 Map Population + the combination policy). With
  // index_intermediates every attribute the tokenizer will cross is
  // recorded, not just the requested ones.
  std::vector<int> attrs_to_insert;
  if (use_pm_positions) {
    if (opts_.index_intermediates) {
      for (int a = 0; a <= max_token_attr_; ++a) {
        if (!pm->StripeHasAttr(stripe, a)) attrs_to_insert.push_back(a);
      }
    } else {
      for (int a : output_attrs_) {
        if (!pm->StripeHasAttr(stripe, a)) attrs_to_insert.push_back(a);
      }
    }
    if (attrs_to_insert.empty() && opts_.index_combinations &&
        output_attrs_.size() > 1 &&
        !pm->StripeAttrsShareChunk(stripe, output_attrs_)) {
      attrs_to_insert = output_attrs_;
    }
  }
  PositionalMap::BulkInserter inserter;
  if (!attrs_to_insert.empty()) {
    inserter = pm->BeginBulkInsert(stripe, attrs_to_insert);
  }

  // Temporary map (§4.2 Pre-fetching): prefetch known positions for the
  // query's attributes plus, per requested attribute, its nearest indexed
  // neighbours (the anchors incremental tokenizing starts from). Attributes
  // being inserted this stripe also need slots so crossed positions can be
  // recorded. Bounding the anchor set keeps the temporary map small no
  // matter how many combinations history has indexed.
  temp_attrs_ = output_attrs_;
  temp_attrs_.insert(temp_attrs_.end(), attrs_to_insert.begin(),
                     attrs_to_insert.end());
  if (use_pm_positions) {
    for (int a : output_attrs_) {
      auto lo = std::lower_bound(indexed_before.begin(), indexed_before.end(),
                                 a);
      if (lo != indexed_before.begin()) {
        temp_attrs_.push_back(*(lo - 1));  // floor anchor, strictly below
      }
      auto hi = std::upper_bound(indexed_before.begin(), indexed_before.end(),
                                 a);
      if (hi != indexed_before.end()) {
        temp_attrs_.push_back(*hi);  // ceiling anchor, strictly above
      }
    }
  }
  std::sort(temp_attrs_.begin(), temp_attrs_.end());
  temp_attrs_.erase(std::unique(temp_attrs_.begin(), temp_attrs_.end()),
                    temp_attrs_.end());
  const int nslots = static_cast<int>(temp_attrs_.size());
  slot_of_.assign(ncols_, -1);
  for (int s = 0; s < nslots; ++s) slot_of_[temp_attrs_[s]] = s;
  TempMap temp(use_pm_positions ? pm : nullptr, stripe, tuples_per_stripe_,
               temp_attrs_);

  // Cache population buffers (§4.3: only attributes parsed for this query).
  std::vector<int> attrs_to_cache;
  std::vector<std::vector<Value>> cache_buf(ncols_);
  if (cache != nullptr) {
    for (int a : output_attrs_) {
      if (cached_col[a] == nullptr && !cache->Contains(stripe, a)) {
        attrs_to_cache.push_back(a);
        cache_buf[a].reserve(tuples_per_stripe_);
      }
    }
  }
  std::vector<bool> cache_attr(ncols_, false);
  for (int a : attrs_to_cache) cache_attr[a] = true;

  // Statistics are collected once per attribute (the paper charges a small
  // one-time overhead, §4.4/Fig. 12); attributes with a finalized snapshot
  // are skipped on later queries.
  std::vector<bool> stats_attr(ncols_, false);
  bool any_stats = false;
  if (stats != nullptr) {
    for (int a : output_attrs_) {
      if (!stats->HasAttr(a)) {
        stats_attr[a] = true;
        any_stats = true;
      }
    }
  }

  // Slot of each to-be-inserted attribute, for the per-tuple recording loop.
  std::vector<int> insert_slots(attrs_to_insert.size());
  for (size_t i = 0; i < attrs_to_insert.size(); ++i) {
    insert_slots[i] = slot_of_[attrs_to_insert[i]];
  }

  const int offset = scan_->table.offset;
  tuple_pos_.assign(nslots, kUnknown);
  bool all_qualified = true;
  int n = 0;

  LineRef line;
  for (; n < tuples_per_stripe_; ++n) {
    NODB_ASSIGN_OR_RETURN(bool has, scanner_->Next(&line));
    if (!has) {
      eof_ = true;
      break;
    }
    const uint64_t t_global = stripe_first + n;
    if (pm != nullptr) pm->SetRowStart(t_global, line.offset);

    // Seed per-tuple positions from the temporary map.
    for (int s = 0; s < nslots; ++s) {
      tuple_pos_[s] = temp.Position(n, s);
    }
    if (nslots > 0 && temp_attrs_[0] == 0) tuple_pos_[0] = 0;

    // Resolves the start offset of `a`, incrementally tokenizing from the
    // nearest anchor (forward, or backward when closer; §4.2 "Exploiting
    // the Positional Map"). Records every crossed tracked attribute.
    auto resolve = [&](int a) -> uint32_t {
      int slot = slot_of_[a];
      if (slot >= 0 && tuple_pos_[slot] != kUnknown) return tuple_pos_[slot];
      if (a == 0) {
        if (slot >= 0) tuple_pos_[slot] = 0;
        return 0;
      }
      // Nearest known anchors among tracked attributes. Slots are sorted by
      // attribute, so walk outward from this attribute's own slot (resolved
      // attributes of this tuple usually sit immediately below).
      int below = -1, above = -1;
      int self = slot >= 0
                     ? slot
                     : static_cast<int>(std::lower_bound(temp_attrs_.begin(),
                                                         temp_attrs_.end(),
                                                         a) -
                                        temp_attrs_.begin());
      for (int s = self - 1; s >= 0; --s) {
        if (tuple_pos_[s] != kUnknown) {
          below = s;
          break;
        }
      }
      for (int s = self + (slot >= 0 ? 1 : 0); s < nslots; ++s) {
        if (temp_attrs_[s] <= a) continue;
        if (tuple_pos_[s] != kUnknown) {
          above = s;
          break;
        }
      }
      uint32_t pos = kUnknown;
      bool try_backward = above >= 0 && !dialect.quoting &&
                          (below < 0 || (temp_attrs_[above] - a) <
                                            (a - temp_attrs_[below]));
      if (try_backward) {
        // Walk left from the anchor. Crossing the k-th delimiter reveals the
        // start of field (from_attr - k + 1): the first delimiter crossed
        // opens the anchor field itself.
        int from_attr = temp_attrs_[above];
        uint32_t i = tuple_pos_[above];
        int crossings = 0;
        while (i > 0) {
          --i;
          if (line.text[i] == dialect.delimiter) {
            ++crossings;
            int started = from_attr - crossings + 1;
            int s = slot_of_[started];
            if (s >= 0) tuple_pos_[s] = i + 1;
            if (started == a) {
              pos = i + 1;
              break;
            }
            if (started < a) break;  // malformed line
          }
        }
      }
      if (pos == kUnknown) {
        int from_attr = below >= 0 ? temp_attrs_[below] : 0;
        uint32_t from_pos = below >= 0 ? tuple_pos_[below] : 0;
        // Walk right, recording crossed field starts.
        int attr = from_attr;
        uint32_t p = from_pos;
        while (attr < a) {
          uint32_t end = FieldEndAt(line.text, dialect, p);
          if (end >= line.text.size()) return kUnknown;  // short line
          p = end + 1;
          ++attr;
          int s = slot_of_[attr];
          if (s >= 0) tuple_pos_[s] = p;
        }
        pos = p;
      }
      int s = slot_of_[a];
      if (s >= 0) tuple_pos_[s] = pos;
      return pos;
    };

    auto parse_attr = [&](int a) -> Result<Value> {
      if (cached_col[a] != nullptr) return (*cached_col[a])[n];
      uint32_t pos = resolve(a);
      if (pos == kUnknown || pos > line.text.size()) {
        return Value::Null(runtime_->schema.column(a).type);
      }
      uint32_t end;
      int next_slot = a + 1 < ncols_ ? slot_of_[a + 1] : -1;
      if (next_slot >= 0 && tuple_pos_[next_slot] != kUnknown &&
          tuple_pos_[next_slot] > pos) {
        end = tuple_pos_[next_slot] - 1;
      } else {
        end = FieldEndAt(line.text, dialect, pos);
      }
      NODB_ASSIGN_OR_RETURN(
          Value v, ParseCsvField(line.text.substr(pos, end - pos),
                                 runtime_->schema.column(a).type, dialect));
      return v;
    };

    // Without selective tokenizing (external-files mode), split the whole
    // line up front, charging the full tokenization cost.
    if (!opts_.selective_tokenizing) {
      uint32_t p = 0;
      for (int attr = 0; attr < ncols_; ++attr) {
        int s = slot_of_[attr];
        if (s >= 0) tuple_pos_[s] = p;
        uint32_t end = FieldEndAt(line.text, dialect, p);
        if (end >= line.text.size()) break;
        p = end + 1;
      }
    }

    Row& row = OutSlot();
    row.assign(working_width_, Value());

    // Phase 1: attributes the WHERE clause needs, for every tuple.
    for (int a : phase1_attrs_) {
      Result<Value> v = parse_attr(a);
      if (!v.ok()) return v.status();
      if (cache_attr[a]) cache_buf[a].push_back(v.value());
      if (any_stats && stats_attr[a]) stats->AddValue(a, v.value());
      row[offset + a] = std::move(v).value();
    }

    bool pass = true;
    for (const ExprPtr& conj : scan_->conjuncts) {
      NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*conj, row));
      if (!Evaluator::IsTruthy(v)) {
        pass = false;
        break;
      }
    }

    if (pass) {
      // Phase 2: remaining attributes, only now that the tuple qualifies
      // (selective parsing defers the conversion cost; §4.1).
      for (int a : phase2_attrs_) {
        Result<Value> v = parse_attr(a);
        if (!v.ok()) return v.status();
        if (cache_attr[a]) cache_buf[a].push_back(v.value());
        if (any_stats && stats_attr[a]) stats->AddValue(a, v.value());
        row[offset + a] = std::move(v).value();
      }
      ++out_size_;
    } else {
      all_qualified = false;
    }

    // Record every position this tuple's tokenization discovered —
    // requested attributes and intermediates alike (§4.2 Map Population).
    if (inserter.valid()) {
      for (size_t i = 0; i < insert_slots.size(); ++i) {
        inserter.Set(n, static_cast<int>(i), tuple_pos_[insert_slots[i]]);
      }
    }
  }

  if (inserter.valid()) pm->EndStripeInsert();

  // Publish complete cache chunks. Phase-1 buffers hold every tuple;
  // phase-2 buffers are complete only if every tuple qualified.
  if (cache != nullptr && n > 0) {
    for (int a : attrs_to_cache) {
      bool complete = static_cast<int>(cache_buf[a].size()) == n;
      bool is_phase2 =
          std::find(phase2_attrs_.begin(), phase2_attrs_.end(), a) !=
          phase2_attrs_.end();
      if (complete && (!is_phase2 || all_qualified)) {
        cache->Put(stripe, a, std::move(cache_buf[a]));
      }
    }
  }

  next_tuple_ = stripe_first + n;
  if (eof_) {
    if (pm != nullptr) pm->SetTotalTuples(next_tuple_);
    runtime_->known_row_count = static_cast<double>(next_tuple_);
    if (stats != nullptr) {
      stats->SetRowCount(next_tuple_);
      runtime_->stats_populated = true;
    }
  }
  return Status::OK();
}

Status InSituScanOp::Close() {
  if (opts_.collect_stats && runtime_->stats != nullptr) {
    runtime_->stats->FinalizeAll();
  }
  return Status::OK();
}

}  // namespace nodb
