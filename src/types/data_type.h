#ifndef NODB_TYPES_DATA_TYPE_H_
#define NODB_TYPES_DATA_TYPE_H_

#include <cstdint>
#include <string_view>

namespace nodb {

/// Logical column types supported by the engine. DECIMAL columns from TPC-H
/// are mapped to kDouble (documented substitution in DESIGN.md); DATE is an
/// int32 count of days since 1970-01-01.
enum class TypeId : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kDate = 3,
  kBool = 4,
};

/// Number of distinct TypeId values (for array-indexed tables).
inline constexpr int kNumTypeIds = 5;

/// Stable lowercase name ("int64", "double", ...).
std::string_view TypeIdToString(TypeId type);

/// True for types whose binary representation has a fixed width.
inline bool IsFixedWidth(TypeId type) { return type != TypeId::kString; }

/// Width in bytes of the binary representation of a fixed-width type
/// (8 for int64/double, 4 for date, 1 for bool). Strings return 0.
int FixedWidthOf(TypeId type);

/// Relative cost of converting the ASCII representation to binary; used by
/// the adaptive cache to prioritize expensive-to-convert attributes
/// (the paper: "the PostgresRaw cache always gives priority to attributes
/// more costly to convert" — numeric conversion is costly, strings are
/// nearly free since the bytes are the value).
///
/// Higher = more expensive to (re)convert = more valuable to keep cached.
int ConversionCostClass(TypeId type);

}  // namespace nodb

#endif  // NODB_TYPES_DATA_TYPE_H_
