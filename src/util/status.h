#ifndef NODB_UTIL_STATUS_H_
#define NODB_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace nodb {

/// Error categories used across the library. Mirrors the usual database
/// status taxonomy (cf. RocksDB / Abseil): a small closed set so callers can
/// branch on the class of failure without string matching.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kOutOfRange,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for `code` (e.g. "IOError").
std::string_view StatusCodeToString(StatusCode code);

/// Value-type result of an operation that can fail. The library does not use
/// exceptions (per the style guide); every fallible function returns `Status`
/// or `Result<T>`. An OK status carries no message and is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace nodb

/// Propagates a non-OK `Status` to the caller. `expr` must evaluate to a
/// `nodb::Status`.
#define NODB_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::nodb::Status nodb_status_tmp_ = (expr);       \
    if (!nodb_status_tmp_.ok()) return nodb_status_tmp_; \
  } while (false)

#endif  // NODB_UTIL_STATUS_H_
