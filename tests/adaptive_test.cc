#include <gtest/gtest.h>

#include "engine/engines.h"
#include "util/fs_util.h"
#include "util/rng.h"
#include "workload/micro.h"

namespace nodb {
namespace {

/// Behavioural tests for the adaptive machinery: these assert the paper's
/// *mechanisms* (map population, cache hits eliminating file access,
/// statistics changing plans) via counters and I/O accounting rather than
/// wall-clock time, so they are robust on any machine.
class AdaptiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.rows = 4000;
    spec_.cols = 20;
    spec_.seed = 11;
    csv_path_ = dir_.File("wide.csv");
    ASSERT_TRUE(GenerateWideCsv(csv_path_, spec_).ok());
  }

  std::unique_ptr<Database> Engine(SystemUnderTest sut,
                                   uint64_t pm_budget = UINT64_MAX,
                                   uint64_t cache_budget = UINT64_MAX) {
    EngineConfig config = EngineConfig::ForSystem(sut);
    config.pm_budget_bytes = pm_budget;
    config.cache_budget_bytes = cache_budget;
    config.tuples_per_chunk = 512;
    auto db = std::make_unique<Database>(config);
    EXPECT_TRUE(db->RegisterCsv("wide", csv_path_, MicroSchema(spec_)).ok());
    return db;
  }

  TempDir dir_;
  MicroDataSpec spec_;
  std::string csv_path_;
};

TEST_F(AdaptiveTest, PositionalMapPopulatesOnFirstQueryOnly) {
  auto db = Engine(SystemUnderTest::kPostgresRawPM);
  ASSERT_TRUE(db->Execute("SELECT a5, a17 FROM wide").ok());
  TableRuntime* rt = db->runtime("wide");
  ASSERT_NE(rt, nullptr);
  ASSERT_NE(rt->pmap, nullptr);
  // §4.2 Map Population: the requested attributes AND the intermediates
  // tokenized along the way are kept ("all positions from 1 to 15 may be
  // kept") — a5, a17 => columns 1..17 (indices 0..16).
  EXPECT_EQ(rt->pmap->num_positions(), 17 * spec_.rows);
  EXPECT_EQ(rt->pmap->total_tuples(), spec_.rows);

  uint64_t positions_after_q1 = rt->pmap->num_positions();
  ASSERT_TRUE(db->Execute("SELECT a5, a17 FROM wide").ok());
  EXPECT_EQ(rt->pmap->num_positions(), positions_after_q1)
      << "repeat query must not re-index";
  // a9 lies inside the already-indexed range: nothing new to index.
  ASSERT_TRUE(db->Execute("SELECT a9 FROM wide").ok());
  EXPECT_EQ(rt->pmap->num_positions(), positions_after_q1);
  // a20 extends the indexed range by columns 18..20.
  ASSERT_TRUE(db->Execute("SELECT a20 FROM wide").ok());
  EXPECT_EQ(rt->pmap->num_positions(), 20 * spec_.rows);
}

TEST_F(AdaptiveTest, Fig2SemanticsWithoutIntermediateIndexing) {
  // With the "learn as much as possible" policy off, the map matches the
  // paper's Fig. 2 illustration exactly: only requested attributes.
  EngineConfig config = EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPM);
  config.index_intermediates = false;
  config.tuples_per_chunk = 512;
  Database db(config);
  ASSERT_TRUE(db.RegisterCsv("wide", csv_path_, MicroSchema(spec_)).ok());
  ASSERT_TRUE(db.Execute("SELECT a5, a17 FROM wide").ok());
  TableRuntime* rt = db.runtime("wide");
  EXPECT_EQ(rt->pmap->num_positions(), 2 * spec_.rows);
  ASSERT_TRUE(db.Execute("SELECT a9 FROM wide").ok());
  EXPECT_EQ(rt->pmap->num_positions(), 3 * spec_.rows);
}

TEST_F(AdaptiveTest, SecondQueryUsesMapAnchors) {
  auto db = Engine(SystemUnderTest::kPostgresRawPM);
  ASSERT_TRUE(db->Execute("SELECT a4, a8 FROM wide").ok());
  TableRuntime* rt = db->runtime("wide");
  uint64_t anchor_hits_before = rt->pmap->counters().anchor_hits;
  uint64_t exact_before = rt->pmap->counters().exact_hits;
  // a9 sits just past indexed a8: the scan should anchor on neighbours
  // rather than tokenize from the row start (paper's "jump to the 8th
  // attribute and parse until it finds the 9th").
  ASSERT_TRUE(db->Execute("SELECT a9 FROM wide").ok());
  uint64_t used = (rt->pmap->counters().anchor_hits - anchor_hits_before) +
                  (rt->pmap->counters().exact_hits - exact_before);
  EXPECT_GT(used, 0u);
}

TEST_F(AdaptiveTest, FullyCachedQueryDoesNoFileIO) {
  auto db = Engine(SystemUnderTest::kPostgresRawPMC);
  ASSERT_TRUE(db->Execute("SELECT a1, a2 FROM wide").ok());
  TableRuntime* rt = db->runtime("wide");
  uint64_t bytes_after_q1 = rt->adapter->file()->bytes_read();
  EXPECT_GT(bytes_after_q1, 0u);
  // Same attributes again: served from the cache, zero raw-file reads.
  ASSERT_TRUE(db->Execute("SELECT a1, a2 FROM wide").ok());
  EXPECT_EQ(rt->adapter->file()->bytes_read(), bytes_after_q1);
  EXPECT_GT(rt->cache->counters().hits, 0u);
  // A different attribute must hit the file again.
  ASSERT_TRUE(db->Execute("SELECT a3 FROM wide").ok());
  EXPECT_GT(rt->adapter->file()->bytes_read(), bytes_after_q1);
}

TEST_F(AdaptiveTest, CacheRespectsBudgetUnderShiftingWorkload) {
  // Epochs over different column ranges, as in the paper's Fig. 6; a capped
  // cache must stay within budget while adapting.
  uint64_t cache_budget = 256 * 1024;
  auto db = Engine(SystemUnderTest::kPostgresRawPMC, UINT64_MAX, cache_budget);
  TableRuntime* rt = db->runtime("wide");
  Rng rng(3);
  struct Epoch {
    int lo, hi;
  };
  for (Epoch epoch : {Epoch{1, 10}, Epoch{11, 20}, Epoch{5, 15}}) {
    for (int q = 0; q < 8; ++q) {
      std::string sql =
          RandomProjectionQuery("wide", spec_.cols, 3, &rng, epoch.lo,
                                epoch.hi);
      ASSERT_TRUE(db->Execute(sql).ok()) << sql;
      ASSERT_LE(rt->cache->memory_bytes(), cache_budget);
    }
  }
  EXPECT_GT(rt->cache->counters().evictions, 0u);
  EXPECT_GT(rt->cache->utilization(), 0.5);
}

TEST_F(AdaptiveTest, PositionalMapRespectsBudget) {
  uint64_t pm_budget = 64 * 1024;
  auto db = Engine(SystemUnderTest::kPostgresRawPM, pm_budget);
  TableRuntime* rt = db->runtime("wide");
  Rng rng(5);
  for (int q = 0; q < 12; ++q) {
    std::string sql = RandomProjectionQuery("wide", spec_.cols, 5, &rng);
    ASSERT_TRUE(db->Execute(sql).ok()) << sql;
    ASSERT_LE(rt->pmap->memory_bytes(), pm_budget);
  }
  EXPECT_GT(rt->pmap->counters().chunks_evicted, 0u);
}

TEST_F(AdaptiveTest, StatisticsArriveAdaptivelyAndChangePlans) {
  auto db = Engine(SystemUnderTest::kPostgresRawPMC);
  // Before any query: no statistics -> conservative sort aggregation.
  EXPECT_EQ(db->GetTableStats("wide"), nullptr);
  auto plan_cold = db->Explain(
      "SELECT a1, COUNT(*) FROM wide GROUP BY a1");
  ASSERT_TRUE(plan_cold.ok());
  EXPECT_NE(plan_cold->find("SortAggregate"), std::string::npos);

  // Any touching query builds statistics for the attributes it reads.
  ASSERT_TRUE(db->Execute("SELECT a1, COUNT(*) FROM wide GROUP BY a1").ok());
  ASSERT_NE(db->GetTableStats("wide"), nullptr);
  EXPECT_TRUE(db->GetTableStats("wide")->HasAttr(0));
  EXPECT_FALSE(db->GetTableStats("wide")->HasAttr(5))
      << "statistics only for requested attributes";

  auto plan_warm = db->Explain(
      "SELECT a1, COUNT(*) FROM wide GROUP BY a1");
  ASSERT_TRUE(plan_warm.ok());
  EXPECT_NE(plan_warm->find("HashAggregate"), std::string::npos)
      << "statistics should flip the aggregation strategy (Fig. 12)";
}

TEST_F(AdaptiveTest, BaselineKeepsNoState) {
  auto db = Engine(SystemUnderTest::kPostgresRawBaseline);
  ASSERT_TRUE(db->Execute("SELECT a1 FROM wide").ok());
  TableRuntime* rt = db->runtime("wide");
  EXPECT_EQ(rt->pmap, nullptr);
  EXPECT_EQ(rt->cache, nullptr);
  EXPECT_EQ(db->GetTableStats("wide"), nullptr);
  uint64_t bytes_q1 = rt->adapter->file()->bytes_read();
  ASSERT_TRUE(db->Execute("SELECT a1 FROM wide").ok());
  // Straw-man re-reads the file every time.
  EXPECT_GE(rt->adapter->file()->bytes_read(), 2 * bytes_q1 - 16);
}

TEST_F(AdaptiveTest, CacheOnlyVariantKeepsEndOfLineMap) {
  auto db = Engine(SystemUnderTest::kPostgresRawC);
  ASSERT_TRUE(db->Execute("SELECT a1 FROM wide").ok());
  TableRuntime* rt = db->runtime("wide");
  // The paper's C variant: cache plus "a minimal map maintaining positional
  // information only for the end of lines" — spine yes, attr positions no.
  ASSERT_NE(rt->pmap, nullptr);
  EXPECT_EQ(rt->pmap->num_positions(), 0u);
  EXPECT_EQ(rt->pmap->contiguous_rows_known(), spec_.rows);
  ASSERT_NE(rt->cache, nullptr);
  EXPECT_GT(rt->cache->memory_bytes(), 0u);
}

TEST_F(AdaptiveTest, SelectiveParsingSkipsPayloadOfDisqualifiedTuples) {
  // With selective parsing, payload attributes of non-qualifying tuples are
  // never converted; the cache therefore holds only the WHERE column after
  // a selective query (payload chunks are incomplete and not published).
  auto db = Engine(SystemUnderTest::kPostgresRawPMC);
  TableRuntime* rt = db->runtime("wide");
  ASSERT_TRUE(
      db->Execute("SELECT a2 FROM wide WHERE a1 < 100000").ok());
  EXPECT_GT(rt->cache->memory_bytes(), 0u);
  // a1 (WHERE) chunks are cached; a2 (payload, ~0.01% selectivity) is not.
  uint64_t stripes = (spec_.rows + 511) / 512;
  int a1_cached = 0, a2_cached = 0;
  for (uint64_t s = 0; s < stripes; ++s) {
    if (rt->cache->Contains(s, 0)) ++a1_cached;
    if (rt->cache->Contains(s, 1)) ++a2_cached;
  }
  EXPECT_EQ(a1_cached, static_cast<int>(stripes));
  EXPECT_EQ(a2_cached, 0);
}

TEST_F(AdaptiveTest, AdaptiveStructuresSurviveHundredsOfQueries) {
  auto db = Engine(SystemUnderTest::kPostgresRawPMC, 128 * 1024, 128 * 1024);
  TableRuntime* rt = db->runtime("wide");
  Rng rng(9);
  std::string expected_count;
  for (int q = 0; q < 60; ++q) {
    std::string sql = RandomProjectionQuery("wide", spec_.cols, 4, &rng);
    auto result = db->Execute(sql);
    ASSERT_TRUE(result.ok()) << sql << "\n" << result.status();
    EXPECT_EQ(result->rows.size(), spec_.rows) << sql;
    ASSERT_LE(rt->pmap->memory_bytes(), 128 * 1024u);
    ASSERT_LE(rt->cache->memory_bytes(), 128 * 1024u);
  }
}

}  // namespace
}  // namespace nodb
