#ifndef NODB_STATS_TABLE_STATS_H_
#define NODB_STATS_TABLE_STATS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "stats/attr_stats.h"
#include "types/schema.h"

namespace nodb {

/// Per-table statistics store, grown adaptively: a scan registers values for
/// the attributes it actually parsed, so coverage widens as the workload
/// touches more of the file (§4.4: "as queries request more attributes of a
/// raw file, statistics are incrementally augmented").
class TableStats {
 public:
  explicit TableStats(const Schema& schema);

  /// Notes that a full scan observed `n` rows (exact row count).
  void SetRowCount(uint64_t n) { row_count_ = n; }
  /// Exact row count if a scan completed, otherwise nullopt.
  std::optional<uint64_t> row_count() const { return row_count_; }

  /// True if statistics exist for `attr`.
  bool HasAttr(int attr) const { return built_[attr].has_value(); }

  /// Statistics for `attr`; nullptr when never collected.
  const AttrStats* Attr(int attr) const {
    return built_[attr].has_value() ? &*built_[attr] : nullptr;
  }

  /// Accumulates one value for `attr` (called by scans when stats collection
  /// is enabled). Sampling is handled internally; callers may feed every
  /// parsed value.
  void AddValue(int attr, const Value& v) { builders_[attr]->Add(v); }

  /// True if the builder for `attr` saw data that has not been folded into
  /// the queryable snapshot yet.
  void Finalize(int attr);
  /// Finalizes every attribute that has pending data.
  void FinalizeAll();

  int num_attrs() const { return static_cast<int>(builders_.size()); }

 private:
  std::vector<std::unique_ptr<AttrStatsBuilder>> builders_;
  std::vector<std::optional<AttrStats>> built_;
  std::optional<uint64_t> row_count_;
};

}  // namespace nodb

#endif  // NODB_STATS_TABLE_STATS_H_
