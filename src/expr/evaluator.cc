#include "expr/evaluator.h"

#include "expr/like.h"

namespace nodb {

namespace {

Value CompareValues(CompareOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
  int c = l.Compare(r);
  bool result = false;
  switch (op) {
    case CompareOp::kEq:
      result = c == 0;
      break;
    case CompareOp::kNe:
      result = c != 0;
      break;
    case CompareOp::kLt:
      result = c < 0;
      break;
    case CompareOp::kLe:
      result = c <= 0;
      break;
    case CompareOp::kGt:
      result = c > 0;
      break;
    case CompareOp::kGe:
      result = c >= 0;
      break;
  }
  return Value::Bool(result);
}

Result<Value> Arith(ArithOp op, TypeId result_type, const Value& l,
                    const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null(result_type);

  // Date arithmetic: date +/- int64 days = date; date - date = int64 days.
  if (l.type() == TypeId::kDate || r.type() == TypeId::kDate) {
    if (op == ArithOp::kAdd && l.type() == TypeId::kDate &&
        r.type() == TypeId::kInt64) {
      return Value::Date(l.date() + static_cast<int32_t>(r.int64()));
    }
    if (op == ArithOp::kAdd && r.type() == TypeId::kDate &&
        l.type() == TypeId::kInt64) {
      return Value::Date(r.date() + static_cast<int32_t>(l.int64()));
    }
    if (op == ArithOp::kSub && l.type() == TypeId::kDate &&
        r.type() == TypeId::kInt64) {
      return Value::Date(l.date() - static_cast<int32_t>(r.int64()));
    }
    if (op == ArithOp::kSub && l.type() == TypeId::kDate &&
        r.type() == TypeId::kDate) {
      return Value::Int64(static_cast<int64_t>(l.date()) - r.date());
    }
    return Status::InvalidArgument("unsupported date arithmetic");
  }

  if (result_type == TypeId::kInt64) {
    int64_t a = l.int64(), b = r.int64();
    switch (op) {
      case ArithOp::kAdd:
        return Value::Int64(a + b);
      case ArithOp::kSub:
        return Value::Int64(a - b);
      case ArithOp::kMul:
        return Value::Int64(a * b);
      case ArithOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Int64(a / b);
    }
  }
  double a = l.AsDouble(), b = r.AsDouble();
  switch (op) {
    case ArithOp::kAdd:
      return Value::Double(a + b);
    case ArithOp::kSub:
      return Value::Double(a - b);
    case ArithOp::kMul:
      return Value::Double(a * b);
    case ArithOp::kDiv:
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Value::Double(a / b);
  }
  return Status::Internal("unreachable arithmetic op");
}

Result<Value> CastValue(const Value& v, TypeId target) {
  if (v.is_null()) return Value::Null(target);
  if (v.type() == target) return v;
  switch (target) {
    case TypeId::kDouble:
      if (v.type() == TypeId::kString) {
        return Value::ParseAs(TypeId::kDouble, v.str());
      }
      return Value::Double(v.AsDouble());
    case TypeId::kInt64:
      if (v.type() == TypeId::kString) {
        return Value::ParseAs(TypeId::kInt64, v.str());
      }
      return Value::Int64(static_cast<int64_t>(v.AsDouble()));
    case TypeId::kString:
      return Value::String(v.ToString());
    case TypeId::kDate:
      if (v.type() == TypeId::kString) {
        return Value::ParseAs(TypeId::kDate, v.str());
      }
      return Value::Date(static_cast<int32_t>(v.AsDouble()));
    case TypeId::kBool:
      return Value::Bool(v.AsDouble() != 0);
  }
  return Status::Internal("unreachable cast target");
}

}  // namespace

Result<Value> Evaluator::Eval(const Expr& expr, const Row& row,
                              const Row* aggregates) {
  switch (expr.kind) {
    case ExprKind::kColumnRef: {
      const auto& e = static_cast<const ColumnRefExpr&>(expr);
      return row[e.index];
    }
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value;
    case ExprKind::kComparison: {
      const auto& e = static_cast<const ComparisonExpr&>(expr);
      NODB_ASSIGN_OR_RETURN(Value l, Eval(*e.left, row, aggregates));
      NODB_ASSIGN_OR_RETURN(Value r, Eval(*e.right, row, aggregates));
      return CompareValues(e.op, l, r);
    }
    case ExprKind::kLogical: {
      const auto& e = static_cast<const LogicalExpr&>(expr);
      NODB_ASSIGN_OR_RETURN(Value l, Eval(*e.left, row, aggregates));
      if (e.op == LogicalOp::kNot) {
        if (l.is_null()) return Value::Null(TypeId::kBool);
        return Value::Bool(!l.boolean());
      }
      // Kleene logic with short-circuit where the result is decided.
      if (e.op == LogicalOp::kAnd) {
        if (!l.is_null() && !l.boolean()) return Value::Bool(false);
        NODB_ASSIGN_OR_RETURN(Value r, Eval(*e.right, row, aggregates));
        if (!r.is_null() && !r.boolean()) return Value::Bool(false);
        if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
        return Value::Bool(true);
      }
      if (!l.is_null() && l.boolean()) return Value::Bool(true);
      NODB_ASSIGN_OR_RETURN(Value r, Eval(*e.right, row, aggregates));
      if (!r.is_null() && r.boolean()) return Value::Bool(true);
      if (l.is_null() || r.is_null()) return Value::Null(TypeId::kBool);
      return Value::Bool(false);
    }
    case ExprKind::kArithmetic: {
      const auto& e = static_cast<const ArithmeticExpr&>(expr);
      NODB_ASSIGN_OR_RETURN(Value l, Eval(*e.left, row, aggregates));
      NODB_ASSIGN_OR_RETURN(Value r, Eval(*e.right, row, aggregates));
      return Arith(e.op, e.type, l, r);
    }
    case ExprKind::kInList: {
      const auto& e = static_cast<const InListExpr&>(expr);
      NODB_ASSIGN_OR_RETURN(Value v, Eval(*e.input, row, aggregates));
      if (v.is_null()) return Value::Null(TypeId::kBool);
      for (const Value& item : e.items) {
        if (!item.is_null() && v.Equals(item)) {
          return Value::Bool(!e.negated);
        }
      }
      return Value::Bool(e.negated);
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const LikeExpr&>(expr);
      NODB_ASSIGN_OR_RETURN(Value v, Eval(*e.input, row, aggregates));
      if (v.is_null()) return Value::Null(TypeId::kBool);
      bool m = LikeMatch(v.str(), e.pattern);
      return Value::Bool(e.negated ? !m : m);
    }
    case ExprKind::kCase: {
      const auto& e = static_cast<const CaseExpr&>(expr);
      for (const CaseExpr::WhenClause& w : e.whens) {
        NODB_ASSIGN_OR_RETURN(Value c, Eval(*w.condition, row, aggregates));
        if (IsTruthy(c)) {
          NODB_ASSIGN_OR_RETURN(Value v, Eval(*w.result, row, aggregates));
          return CastValue(v, e.type);
        }
      }
      if (e.else_result != nullptr) {
        NODB_ASSIGN_OR_RETURN(Value v, Eval(*e.else_result, row, aggregates));
        return CastValue(v, e.type);
      }
      return Value::Null(e.type);
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(expr);
      NODB_ASSIGN_OR_RETURN(Value v, Eval(*e.input, row, aggregates));
      return Value::Bool(e.negated ? !v.is_null() : v.is_null());
    }
    case ExprKind::kCast: {
      const auto& e = static_cast<const CastExpr&>(expr);
      NODB_ASSIGN_OR_RETURN(Value v, Eval(*e.input, row, aggregates));
      return CastValue(v, e.type);
    }
    case ExprKind::kAggregateRef: {
      const auto& e = static_cast<const AggregateRefExpr&>(expr);
      if (aggregates == nullptr) {
        return Status::Internal("aggregate reference outside aggregation");
      }
      return (*aggregates)[e.agg_index];
    }
  }
  return Status::Internal("unreachable expr kind");
}

}  // namespace nodb
