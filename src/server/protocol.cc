#include "server/protocol.h"

#include <cmath>

#include "json/json_text.h"
#include "util/str_conv.h"

namespace nodb {

namespace {

/// Case-insensitive match against an ASCII keyword.
bool VerbIs(std::string_view line, std::string_view verb) {
  if (line.size() != verb.size()) return false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
    if (c != verb[i]) return false;
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

Result<Request> KindForOp(std::string_view op) {
  Request req;
  if (VerbIs(op, "STATS")) {
    req.kind = Request::Kind::kStats;
  } else if (VerbIs(op, "CANCEL")) {
    req.kind = Request::Kind::kCancel;
  } else if (VerbIs(op, "PING")) {
    req.kind = Request::Kind::kPing;
  } else if (VerbIs(op, "QUIT")) {
    req.kind = Request::Kind::kQuit;
  } else {
    return Status::InvalidArgument("unknown op '" + std::string(op) + "'");
  }
  return req;
}

void AppendValueJson(std::string* out, const Value& v) {
  if (v.is_null()) {
    out->append("null");
    return;
  }
  switch (v.type()) {
    case TypeId::kString:
      AppendJsonQuoted(out, v.str());
      break;
    case TypeId::kDate:
      AppendJsonQuoted(out, v.ToString());
      break;
    case TypeId::kDouble:
      // JSON has no NaN/Infinity literals; non-finite degrades to null
      // (same policy as the JSONL writer).
      if (!std::isfinite(v.f64())) {
        out->append("null");
      } else {
        out->append(v.ToString());
      }
      break;
    default:  // int64 / bool are JSON literals already
      out->append(v.ToString());
  }
}

}  // namespace

Result<Request> ParseRequest(std::string_view line) {
  std::string_view s = Trim(line);
  if (s.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  if (s.front() != '{') {
    // Bare-verb form.
    return KindForOp(s);
  }

  Request req;
  bool has_q = false, has_op = false;
  std::string op;
  size_t i = SkipJsonWs(s, 1);
  ScalarJsonSkipper skip;
  std::string scratch;
  if (i < s.size() && s[i] == '}') return Status::InvalidArgument(
      "request object is empty");
  while (i < s.size() && s[i] != '}') {
    if (s[i] != '"') {
      return Status::InvalidArgument("malformed request: expected a key");
    }
    std::string_view key;
    size_t key_end = 0;
    if (!ReadJsonKey(s, i, skip, &key, &scratch, &key_end)) {
      return Status::InvalidArgument("malformed request key");
    }
    i = SkipJsonWs(s, key_end);
    if (i >= s.size() || s[i] != ':') {
      return Status::InvalidArgument("malformed request: expected ':'");
    }
    i = SkipJsonWs(s, i + 1);
    size_t val_end = skip.SkipValue(s, i);
    if (val_end > s.size() || val_end <= i) {
      return Status::InvalidArgument("malformed request value");
    }
    std::string_view raw = s.substr(i, val_end - i);
    if (key == "q" || key == "id" || key == "op") {
      if (raw.empty() || raw.front() != '"') {
        return Status::InvalidArgument("'" + std::string(key) +
                                       "' must be a JSON string");
      }
      std::string decoded;
      if (!UnescapeJsonString(raw, &decoded)) {
        return Status::InvalidArgument("malformed string for '" +
                                       std::string(key) + "'");
      }
      if (key == "q") {
        req.sql = std::move(decoded);
        has_q = true;
      } else if (key == "id") {
        req.id = std::move(decoded);
      } else {
        op = std::move(decoded);
        has_op = true;
      }
    } else if (key == "deadline_ms") {
      Result<int64_t> ms = ParseInt64(raw);
      if (!ms.ok() || *ms < 0) {
        return Status::InvalidArgument(
            "'deadline_ms' must be a non-negative integer");
      }
      req.deadline_ms = *ms;
    }
    // Unknown keys are ignored (forward compatibility).
    i = SkipJsonWs(s, val_end);
    if (i < s.size() && s[i] == ',') i = SkipJsonWs(s, i + 1);
  }
  if (i >= s.size()) {
    return Status::InvalidArgument("unterminated request object");
  }
  if (has_op) {
    NODB_ASSIGN_OR_RETURN(Request verb, KindForOp(op));
    verb.id = std::move(req.id);
    verb.deadline_ms = req.deadline_ms;
    return verb;
  }
  if (!has_q) {
    return Status::InvalidArgument("request needs \"q\" or \"op\"");
  }
  req.kind = Request::Kind::kQuery;
  return req;
}

std::string SchemaLine(const Schema& schema) {
  std::string out = "{\"schema\":[";
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out.push_back(',');
    out.append("{\"name\":");
    AppendJsonQuoted(&out, schema.column(c).name);
    out.append(",\"type\":");
    AppendJsonQuoted(&out, TypeIdToString(schema.column(c).type));
    out.push_back('}');
  }
  out.append("]}\n");
  return out;
}

void AppendBatchLine(std::string* out, const RowBatch& batch, size_t n) {
  out->append("{\"rows\":[");
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out->push_back(',');
    out->push_back('[');
    const Row& row = batch[i];
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out->push_back(',');
      AppendValueJson(out, row[c]);
    }
    out->push_back(']');
  }
  out->append("]}\n");
}

std::string OkLine(uint64_t rows, bool cold, double seconds,
                   std::string_view id) {
  std::string out = "{\"status\":\"ok\",\"rows\":";
  out += std::to_string(rows);
  out += ",\"cold\":";
  out += cold ? "true" : "false";
  out += ",\"seconds\":";
  AppendDouble(&out, seconds);
  if (!id.empty()) {
    out += ",\"id\":";
    AppendJsonQuoted(&out, id);
  }
  out += "}\n";
  return out;
}

std::string ErrorLine(const Status& status, std::string_view id) {
  std::string out = "{\"status\":\"error\",\"code\":";
  AppendJsonQuoted(&out, StatusCodeToString(status.code()));
  out += ",\"message\":";
  AppendJsonQuoted(&out, status.message());
  if (!id.empty()) {
    out += ",\"id\":";
    AppendJsonQuoted(&out, id);
  }
  out += "}\n";
  return out;
}

std::string StatsLine(const ServerStats& s, const SessionStatsView& sess) {
  std::string out = "{\"stats\":{";
  auto field = [&out](const char* name, uint64_t v, bool first = false) {
    if (!first) out.push_back(',');
    out.push_back('"');
    out.append(name);
    out.append("\":");
    out.append(std::to_string(v));
  };
  field("sessions_opened", s.sessions_opened, /*first=*/true);
  field("sessions_closed", s.sessions_closed);
  field("sessions_active", static_cast<uint64_t>(
                               s.sessions_active < 0 ? 0 : s.sessions_active));
  field("queries_started", s.queries_started);
  field("queries_finished", s.queries_finished);
  field("queries_failed", s.queries_failed);
  field("queries_cancelled", s.queries_cancelled);
  field("queries_deadline", s.queries_deadline);
  field("queries_rejected", s.queries_rejected);
  field("rows_streamed", s.rows_streamed);
  field("bytes_streamed", s.bytes_streamed);
  field("cold_admitted", s.cold_admitted);
  field("warm_admitted", s.warm_admitted);
  field("cold_active", static_cast<uint64_t>(s.cold_active));
  field("warm_active", static_cast<uint64_t>(s.warm_active));
  field("cold_queued", static_cast<uint64_t>(s.cold_queued));
  field("warm_queued", static_cast<uint64_t>(s.warm_queued));
  field("latency_samples", s.latency_samples);
  out += ",\"p50_ms\":";
  AppendDouble(&out, s.p50_ms);
  out += ",\"p99_ms\":";
  AppendDouble(&out, s.p99_ms);
  field("snapshot_loads", s.snapshot_loads);
  field("snapshot_load_misses", s.snapshot_load_misses);
  field("snapshot_load_stale", s.snapshot_load_stale);
  field("snapshot_load_corrupt", s.snapshot_load_corrupt);
  field("snapshot_saves", s.snapshot_saves);
  field("snapshot_save_failures", s.snapshot_save_failures);
  field("snapshot_bytes_loaded", s.snapshot_bytes_loaded);
  field("snapshot_bytes_saved", s.snapshot_bytes_saved);
  out += ",\"tables\":[";
  for (size_t i = 0; i < s.tables.size(); ++i) {
    const ServerStats::TableView& t = s.tables[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":";
    AppendJsonQuoted(&out, t.name);
    out += ",\"snapshot_state\":";
    AppendJsonQuoted(&out, t.snapshot_state);
    out += ",\"snapshot_bytes\":" + std::to_string(t.snapshot_bytes);
    out += ",\"bytes_read\":" + std::to_string(t.bytes_read);
    out += ",\"compressed\":";
    out += t.compressed ? "true" : "false";
    out += ",\"gz_checkpoints\":" + std::to_string(t.gz_checkpoints);
    out += ",\"gz_bytes_inflated\":" + std::to_string(t.gz_bytes_inflated);
    out += ",\"rows\":";
    AppendDouble(&out, t.rows);
    out += ",\"promoted_columns\":[";
    for (size_t c = 0; c < t.promoted_columns.size(); ++c) {
      if (c > 0) out.push_back(',');
      out += std::to_string(t.promoted_columns[c]);
    }
    out += "]";
    out += ",\"promoted_bytes\":" + std::to_string(t.promoted_bytes);
    out += ",\"promotions\":" + std::to_string(t.promotions);
    out += ",\"demotions\":" + std::to_string(t.demotions);
    out += "}";
  }
  out += "]";
  out += ",\"session\":{";
  out += "\"id\":" + std::to_string(sess.session_id);
  out += ",\"queries\":" + std::to_string(sess.queries);
  out += ",\"rows_streamed\":" + std::to_string(sess.rows_streamed);
  out += ",\"bytes_streamed\":" + std::to_string(sess.bytes_streamed);
  out += "}}}\n";
  return out;
}

std::string PongLine() { return "{\"pong\":true}\n"; }

}  // namespace nodb
