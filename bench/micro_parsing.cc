// Parse-kernel before/after gate: the cold-scan hot path measured one stage
// at a time — tokenize only (field-boundary discovery), parse only (text to
// binary conversion), and the end-to-end cold scan through the engine — for
// the scalar reference path and every SWAR/SIMD kernel table this build and
// CPU provide, on the same CSV and JSON Lines data. Not a paper figure; it
// exists so a kernel change cannot land without showing its effect on the
// exact stages the paper charges the cold scan to (tokenizing and
// conversion), and so regressions show up as a ratio < 1 in one glance.
//
// Writes BENCH_parsing.json (machine-readable rows + the two gate ratios)
// to the working directory.
//
//   ./bench_micro_parsing [--scale=F] [--seed=N]    (1.0 = 1M rows x 10 cols)

#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "json/json_text.h"
#include "json/jsonl_writer.h"
#include "raw/parse_kernels.h"
#include "util/stopwatch.h"

using namespace nodb;
using namespace nodb::bench;

namespace {

constexpr int kReps = 3;  // best-of, each stage

/// Records of a generated file (views into `backing`), newline-framed the
/// same way LineReader frames them.
struct Corpus {
  std::string backing;
  std::vector<std::string_view> records;
  double mb = 0;
};

Corpus LoadCorpus(const std::string& path) {
  Corpus c;
  auto contents = ReadFileToString(path);
  if (!contents.ok()) {
    fprintf(stderr, "read failed: %s\n", contents.status().ToString().c_str());
    exit(1);
  }
  c.backing = std::move(*contents);
  c.mb = static_cast<double>(c.backing.size()) / (1024.0 * 1024.0);
  size_t start = 0;
  while (start < c.backing.size()) {
    size_t nl = c.backing.find('\n', start);
    if (nl == std::string::npos) nl = c.backing.size();
    c.records.push_back(
        std::string_view(c.backing).substr(start, nl - start));
    start = nl + 1;
  }
  return c;
}

double BestOf(int reps, double (*fn)(const Corpus&, const ParseKernels&),
              const Corpus& corpus, const ParseKernels& k) {
  double best = fn(corpus, k);
  for (int r = 1; r < reps; ++r) {
    double t = fn(corpus, k);
    if (t < best) best = t;
  }
  return best;
}

// --- tokenize-only ------------------------------------------------------

double TokenizeCsv(const Corpus& corpus, const ParseKernels& k) {
  CsvDialect dialect;
  uint32_t starts[64];
  uint64_t fields = 0;
  Stopwatch timer;
  for (std::string_view rec : corpus.records) {
    fields += static_cast<uint64_t>(k.csv_tokenize(rec, dialect, 63, starts));
  }
  double t = timer.ElapsedSeconds();
  if (fields == 0) exit(3);  // keep the loop observable
  return t;
}

double TokenizeJsonl(const Corpus& corpus, const ParseKernels& k) {
  std::string scratch;
  JsonBitmaps bitmaps;
  uint64_t fields = 0;
  auto count = [&fields](std::string_view, size_t, size_t) { ++fields; };
  Stopwatch timer;
  for (std::string_view rec : corpus.records) {
    if (k.json_bitmaps != nullptr) {
      k.json_bitmaps(rec, &bitmaps);
      WalkTopLevelFields(rec, BitmapSkipper{&bitmaps}, &scratch, count);
    } else {
      WalkTopLevelFields(rec, ScalarJsonSkipper{}, &scratch, count);
    }
  }
  double t = timer.ElapsedSeconds();
  if (fields == 0) exit(3);
  return t;
}

// --- parse-only ---------------------------------------------------------

/// All integer fields of the CSV corpus, pre-tokenized (with the scalar
/// reference, outside the timed region) so only conversion is measured.
std::vector<std::string_view> CsvFields(const Corpus& corpus) {
  CsvDialect dialect;
  const ParseKernels& scalar = ScalarKernels();
  uint32_t starts[64];
  std::vector<std::string_view> fields;
  for (std::string_view rec : corpus.records) {
    int n = scalar.csv_tokenize(rec, dialect, 63, starts);
    for (int f = 0; f < n; ++f) {
      uint32_t end = scalar.csv_field_end(rec, dialect, starts[f]);
      fields.push_back(rec.substr(starts[f], end - starts[f]));
    }
  }
  return fields;
}

double ParseFields(const std::vector<std::string_view>& fields,
                   const ParseKernels& k) {
  int64_t sum = 0;
  Stopwatch timer;
  for (std::string_view f : fields) {
    auto v = k.parse_int64(f);
    if (v.ok()) sum += *v;
  }
  double t = timer.ElapsedSeconds();
  if (sum == 0) exit(3);
  return t;
}

// --- end-to-end cold scan ----------------------------------------------

double ColdScan(const std::string& path, const Schema& schema,
                const std::string& sql, SystemUnderTest sut, bool scalar) {
  // A fresh engine per run: cold means no positional map, no cache, no
  // statistics carried over. File-system cache stays warm for every
  // variant alike (the paper's "cold" is about NoDB's structures, and a
  // warm page cache is the configuration where parse cost dominates I/O).
  double best = -1;
  for (int r = 0; r < kReps; ++r) {
    EngineConfig cfg = EngineConfig::ForSystem(sut);
    cfg.scalar_kernels = scalar;
    Database db(cfg);
    OpenOptions options;
    options.schema = schema;
    Status s = db.Open("t", path, options);
    if (!s.ok()) {
      fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      exit(1);
    }
    double t = RunQuery(&db, sql);
    if (best < 0 || t < best) best = t;
  }
  return best;
}

// --- reporting ----------------------------------------------------------

struct BenchRow {
  std::string stage, format, kernel;
  double seconds, mb_per_s, speedup;
};

void EmitJson(const std::vector<BenchRow>& rows, double tokenize_speedup,
              double e2e_speedup) {
  FILE* f = fopen("BENCH_parsing.json", "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write BENCH_parsing.json\n");
    return;
  }
  fprintf(f, "{\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    fprintf(f,
            "    {\"stage\": \"%s\", \"format\": \"%s\", \"kernel\": \"%s\", "
            "\"seconds\": %.6f, \"mb_per_s\": %.1f, \"speedup\": %.3f}%s\n",
            r.stage.c_str(), r.format.c_str(), r.kernel.c_str(), r.seconds,
            r.mb_per_s, r.speedup, i + 1 < rows.size() ? "," : "");
  }
  fprintf(f, "  ],\n");
  fprintf(f, "  \"gate\": {\"csv_tokenize_speedup\": %.3f, "
          "\"csv_cold_scan_speedup\": %.3f}\n}\n",
          tokenize_speedup, e2e_speedup);
  fclose(f);
  printf("\nwrote BENCH_parsing.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);

  MicroDataSpec spec;
  spec.rows = static_cast<uint64_t>(1000000 * args.scale);
  spec.cols = 10;
  spec.seed = args.seed;

  std::string csv = MicroCsv(spec, "parsing");
  std::string jsonl = DataDir()->File("micro_parsing.jsonl");
  if (!GenerateWideJsonl(jsonl, spec).ok()) {
    fprintf(stderr, "data generation failed\n");
    return 1;
  }

  PrintBanner(
      "Parse kernels: tokenize / parse / cold scan, scalar vs SWAR-SIMD",
      "§5 charges the cold in-situ scan mostly to tokenizing and data-type "
      "conversion; the kernels must beat the scalar reference on exactly "
      "those stages while producing byte-identical results");
  printf("data: %llu rows x %d cols (CSV %s, JSONL %s)\n",
         static_cast<unsigned long long>(spec.rows), spec.cols, csv.c_str(),
         jsonl.c_str());
  printf("active kernel table: %s\n\n", ActiveKernels().name);

  Corpus csv_corpus = LoadCorpus(csv);
  Corpus jsonl_corpus = LoadCorpus(jsonl);
  std::vector<std::string_view> csv_fields = CsvFields(csv_corpus);
  double fields_mb = 0;
  for (std::string_view f : csv_fields) fields_mb += f.size();
  fields_mb /= 1024.0 * 1024.0;

  std::vector<BenchRow> rows;
  TextTable table({"stage", "format", "kernel", "sec", "MB/s", "vs scalar"});
  auto add = [&](const std::string& stage, const std::string& format,
                 const char* kernel, double sec, double mb, double base_sec) {
    BenchRow r{stage, format, kernel, sec, mb / sec,
               base_sec > 0 ? base_sec / sec : 1.0};
    table.AddRow({r.stage, r.format, r.kernel, Fmt(sec), Fmt(r.mb_per_s, 0),
                  Fmt(r.speedup, 2) + "x"});
    rows.push_back(std::move(r));
  };

  double csv_tokenize_scalar = 0, csv_tokenize_best = 0;
  for (const ParseKernels* k : AvailableKernels()) {
    double t = BestOf(kReps, &TokenizeCsv, csv_corpus, *k);
    if (k->level == KernelLevel::kScalar) csv_tokenize_scalar = t;
    csv_tokenize_best = t;  // AvailableKernels is ordered scalar..best
    add("tokenize", "csv", k->name, t, csv_corpus.mb, csv_tokenize_scalar);
  }
  double jsonl_tokenize_scalar = 0;
  for (const ParseKernels* k : AvailableKernels()) {
    double t = BestOf(kReps, &TokenizeJsonl, jsonl_corpus, *k);
    if (k->level == KernelLevel::kScalar) jsonl_tokenize_scalar = t;
    add("tokenize", "jsonl", k->name, t, jsonl_corpus.mb,
        jsonl_tokenize_scalar);
  }

  double parse_scalar = 0;
  for (const ParseKernels* k : AvailableKernels()) {
    double best = ParseFields(csv_fields, *k);
    for (int r = 1; r < kReps; ++r) {
      double t = ParseFields(csv_fields, *k);
      if (t < best) best = t;
    }
    if (k->level == KernelLevel::kScalar) parse_scalar = best;
    add("parse-int64", "csv", k->name, best, fields_mb, parse_scalar);
  }

  // End-to-end: selection + full-width SUM projection — every attribute of
  // every record is tokenized and converted, the paper's worst cold case.
  // Two engine variants: the in-situ baseline (no positional map, cache, or
  // statistics — the scan IS tokenize+parse, so this is the gated row) and
  // the full adaptive PMC stack (reported; its cold scan also pays the
  // kernel-independent cost of populating the map, cache, and statistics,
  // which dilutes the visible kernel speedup by design).
  Schema schema = MicroSchema(spec);
  std::string sql = SelectivityQuery("t", spec, 1.0, 1.0);
  double e2e_csv_scalar =
      ColdScan(csv, schema, sql, SystemUnderTest::kPostgresRawBaseline, true);
  add("cold-scan", "csv", "scalar", e2e_csv_scalar, csv_corpus.mb, 0);
  double e2e_csv_kernel =
      ColdScan(csv, schema, sql, SystemUnderTest::kPostgresRawBaseline, false);
  add("cold-scan", "csv", ActiveKernels().name, e2e_csv_kernel, csv_corpus.mb,
      e2e_csv_scalar);
  double pmc_csv_scalar =
      ColdScan(csv, schema, sql, SystemUnderTest::kPostgresRawPMC, true);
  add("cold-scan+pmc", "csv", "scalar", pmc_csv_scalar, csv_corpus.mb, 0);
  double pmc_csv_kernel =
      ColdScan(csv, schema, sql, SystemUnderTest::kPostgresRawPMC, false);
  add("cold-scan+pmc", "csv", ActiveKernels().name, pmc_csv_kernel,
      csv_corpus.mb, pmc_csv_scalar);
  double e2e_jsonl_scalar =
      ColdScan(jsonl, schema, sql, SystemUnderTest::kPostgresRawBaseline, true);
  add("cold-scan", "jsonl", "scalar", e2e_jsonl_scalar, jsonl_corpus.mb, 0);
  double e2e_jsonl_kernel = ColdScan(
      jsonl, schema, sql, SystemUnderTest::kPostgresRawBaseline, false);
  add("cold-scan", "jsonl", ActiveKernels().name, e2e_jsonl_kernel,
      jsonl_corpus.mb, e2e_jsonl_scalar);

  table.Print();

  double tokenize_speedup = csv_tokenize_scalar / csv_tokenize_best;
  double e2e_speedup = e2e_csv_scalar / e2e_csv_kernel;
  printf("\ngate: csv tokenize %.2fx (want >= 2x), csv cold scan %.2fx "
         "(want >= 1.5x)\n", tokenize_speedup, e2e_speedup);
  EmitJson(rows, tokenize_speedup, e2e_speedup);
  return 0;
}
