#include "exec/hash_join.h"

#include <utility>

#include "expr/evaluator.h"

namespace nodb {

Result<Row> HashJoinOp::EvalKeys(const std::vector<ExprPtr>& keys,
                                 const Row& row) const {
  Row key;
  key.reserve(keys.size());
  for (const ExprPtr& k : keys) {
    NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*k, row));
    key.push_back(std::move(v));
  }
  return key;
}

Status HashJoinOp::Open() {
  NODB_RETURN_IF_ERROR(build_->Open());
  RowBatch batch(probe_batch_.capacity());
  while (true) {
    NODB_RETURN_IF_ERROR(CheckControl(control_));
    NODB_ASSIGN_OR_RETURN(size_t n, build_->Next(&batch));
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) {
      const Row& build_row = batch[i];
      NODB_ASSIGN_OR_RETURN(Row key, EvalKeys(join_->build_keys, build_row));
      // NULL keys never join.
      bool has_null = false;
      for (const Value& v : key) {
        if (v.is_null()) {
          has_null = true;
          break;
        }
      }
      if (has_null) continue;
      Slice slice(build_row.begin() + build_offset_,
                  build_row.begin() + build_offset_ + build_width_);
      table_[std::move(key)].push_back(std::move(slice));
    }
  }
  NODB_RETURN_IF_ERROR(build_->Close());
  return probe_->Open();
}

Result<size_t> HashJoinOp::Next(RowBatch* batch) {
  batch->Clear();
  while (!batch->full()) {
    if (matches_ != nullptr && match_idx_ < matches_->size()) {
      const Slice& slice = (*matches_)[match_idx_++];
      Row& out = batch->PushRow();
      out = probe_batch_[probe_idx_];
      for (int i = 0; i < build_width_; ++i) {
        out[build_offset_ + i] = slice[i];
      }
      // Residual predicates (non-equi conjuncts spanning both sides).
      bool pass = true;
      for (const ExprPtr& r : join_->residual) {
        NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*r, out));
        if (!Evaluator::IsTruthy(v)) {
          pass = false;
          break;
        }
      }
      if (!pass) batch->PopRow();
      continue;
    }
    // Current probe row exhausted: advance to the next one, refilling the
    // probe batch when it runs dry.
    matches_ = nullptr;
    if (probe_idx_ + 1 < probe_size_) {
      ++probe_idx_;
    } else {
      if (probe_done_) break;
      NODB_ASSIGN_OR_RETURN(probe_size_, probe_->Next(&probe_batch_));
      probe_idx_ = 0;
      if (probe_size_ == 0) {
        probe_done_ = true;
        break;
      }
    }
    const Row& probe_row = probe_batch_[probe_idx_];
    NODB_ASSIGN_OR_RETURN(Row key, EvalKeys(join_->probe_keys, probe_row));
    bool has_null = false;
    for (const Value& v : key) {
      if (v.is_null()) {
        has_null = true;
        break;
      }
    }
    if (has_null) continue;
    auto it = table_.find(key);
    if (it == table_.end()) continue;
    matches_ = &it->second;
    match_idx_ = 0;
  }
  return batch->size();
}

Status HashJoinOp::Close() {
  table_.clear();
  return probe_->Close();
}

Status SemiJoinOp::Open() {
  NODB_RETURN_IF_ERROR(inner_->Open());
  RowBatch batch(batch_size_);
  while (true) {
    NODB_RETURN_IF_ERROR(CheckControl(control_));
    NODB_ASSIGN_OR_RETURN(size_t n, inner_->Next(&batch));
    if (n == 0) break;
    for (size_t i = 0; i < n; ++i) {
      Row key;
      key.reserve(semi_->inner_keys.size());
      bool has_null = false;
      for (const ExprPtr& k : semi_->inner_keys) {
        NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*k, batch[i]));
        if (v.is_null()) has_null = true;
        key.push_back(std::move(v));
      }
      if (!has_null) keys_.insert(std::move(key));
    }
  }
  NODB_RETURN_IF_ERROR(inner_->Close());
  return outer_->Open();
}

Result<size_t> SemiJoinOp::Next(RowBatch* batch) {
  // In-place selection, like FilterOp: passing outer rows are compacted to
  // the batch front.
  while (true) {
    NODB_ASSIGN_OR_RETURN(size_t n, outer_->Next(batch));
    if (n == 0) return 0;
    size_t kept = 0;
    Row key;
    for (size_t i = 0; i < n; ++i) {
      Row& row = (*batch)[i];
      key.clear();
      key.reserve(semi_->outer_keys.size());
      bool has_null = false;
      for (const ExprPtr& k : semi_->outer_keys) {
        NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*k, row));
        if (v.is_null()) has_null = true;
        key.push_back(std::move(v));
      }
      bool present = !has_null && keys_.count(key) > 0;
      if (present != semi_->anti) {
        if (kept != i) std::swap((*batch)[kept], row);
        ++kept;
      }
    }
    batch->Truncate(kept);
    if (kept > 0) return kept;
  }
}

Status SemiJoinOp::Close() {
  keys_.clear();
  return outer_->Close();
}

}  // namespace nodb
