// The NoDB query service: SQL over raw files, served over a socket.
//
// Starts a QueryServer in front of a Database with a demo table registered
// in situ, then speaks the newline-delimited JSON protocol (see
// src/server/protocol.h). Pair it with examples/nodb_client:
//
//   ./example_nodb_server --serve --port 7654 &
//   ./example_nodb_client --port 7654 "SELECT COUNT(*) FROM micro"
//
// Modes:
//   (no arguments)   self-demo: serve on an ephemeral port, run one query
//                    through a loopback connection, print the exchange, exit
//   --serve          serve until SIGINT/SIGTERM (clean drain on both)
//   --port N         listen port (default: ephemeral, printed on stdout)
//   --rows N         demo table size (default 50000)
//   --csv PATH       serve an existing CSV instead of the generated demo
//                    table (registered as `micro`, schema auto-sniffed)
//   --data PATH      persistent demo-table location: generate the micro CSV
//                    at PATH if absent, reuse it if present (so restarts see
//                    the same raw file — the warm-restart companion flag)
//   --gzip           serve the demo table as a gzipped CSV (PATH.gz,
//                    compressed once and reused): queries run in situ over
//                    the compressed file through the checkpointed
//                    decompression layer (requires a zlib build)
//   --snapshot-dir D warm restarts: load auxiliary-structure snapshots from
//                    D at startup, persist them on graceful drain
//                    (SIGINT/SIGTERM) and every few seconds in the
//                    background while serving

#include <arpa/inet.h>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <iostream>
#include <string>

#include "engine/engines.h"
#include "io/inflate_file.h"
#include "server/server.h"
#include "util/fs_util.h"
#include "workload/micro.h"

using namespace nodb;

namespace {

std::atomic<bool> g_stop{false};
void HandleSignal(int) { g_stop.store(true); }

// Minimal loopback client for the self-demo: send one line, print response
// lines until a terminal status line arrives.
bool RunLoopbackQuery(int port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  std::string line = request + "\n";
  (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
  std::printf(">> %s\n", request.c_str());

  std::string buf;
  bool done = false;
  while (!done) {
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<size_t>(n));
    size_t start = 0, nl;
    while ((nl = buf.find('\n', start)) != std::string::npos) {
      std::string reply = buf.substr(start, nl - start);
      start = nl + 1;
      std::printf("<< %s\n", reply.c_str());
      if (reply.find("\"status\"") != std::string::npos ||
          reply.find("\"stats\"") != std::string::npos) {
        done = true;
      }
    }
    buf.erase(0, start);
  }
  ::close(fd);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool serve = false;
  bool gzip = false;
  int port = 0;
  uint64_t rows = 50000;
  std::string csv;
  std::string data;
  std::string snapshot_dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--serve") {
      serve = true;
    } else if (arg == "--gzip") {
      gzip = true;
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--rows" && i + 1 < argc) {
      rows = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--csv" && i + 1 < argc) {
      csv = argv[++i];
    } else if (arg == "--data" && i + 1 < argc) {
      data = argv[++i];
    } else if (arg == "--snapshot-dir" && i + 1 < argc) {
      snapshot_dir = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 1;
    }
  }

  TempDir scratch;
  EngineConfig engine_config =
      EngineConfig::ForSystem(SystemUnderTest::kPostgresRawPMC);
  if (!snapshot_dir.empty()) {
    Status st = CreateDir(snapshot_dir);
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot dir %s: %s\n", snapshot_dir.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    engine_config.snapshot_dir = snapshot_dir;
    engine_config.snapshot_interval_ms = 2000;
  }
  auto db = std::make_unique<Database>(engine_config);
  if (!csv.empty()) {
    Status st = db->Open("micro", csv);
    if (!st.ok()) {
      std::fprintf(stderr, "open %s: %s\n", csv.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  } else {
    MicroDataSpec spec;
    spec.rows = rows;
    spec.cols = 10;
    // --data keeps the raw file across restarts (same bytes, same mtime →
    // same fingerprint, so a snapshot taken by the previous run is valid);
    // without it the table lives in a TempDir and dies with the process.
    std::string path = data.empty() ? scratch.File("micro.csv") : data;
    if (data.empty() || !FileExists(path)) {
      if (!GenerateWideCsv(path, spec).ok()) return 1;
    }
    if (gzip) {
      if (!InflateSupported()) {
        std::fprintf(stderr, "--gzip requires a build with zlib\n");
        return 1;
      }
      // Compress once and reuse: with --data the .gz survives restarts, so
      // its fingerprint (taken over the compressed bytes) stays stable and
      // a snapshot from the previous run — checkpoint index included —
      // remains valid.
      std::string gz_path = path + ".gz";
      if (data.empty() || !FileExists(gz_path)) {
        auto plain = ReadFileToString(path);
        if (!plain.ok()) return 1;
        if (!WriteStringToFile(gz_path, GzipCompress(*plain)).ok()) return 1;
      }
      path = gz_path;
    }
    if (!db->RegisterCsv("micro", path, MicroSchema(spec)).ok()) return 1;
  }

  ServerConfig config;
  config.port = port;
  config.log = serve ? &std::cerr : nullptr;
  QueryServer server(db.get(), config);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("nodb server listening on 127.0.0.1:%d (table: micro)\n",
              server.port());
  std::fflush(stdout);

  if (serve) {
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    while (!g_stop.load()) {
      usleep(100 * 1000);
    }
    std::printf("draining...\n");
    server.Stop();
    if (!snapshot_dir.empty()) {
      SnapshotCounters snap = db->snapshot_counters();
      std::printf(
          "snapshots: loads=%llu misses=%llu stale=%llu corrupt=%llu "
          "saves=%llu failures=%llu bytes_saved=%llu\n",
          static_cast<unsigned long long>(snap.loads),
          static_cast<unsigned long long>(snap.load_misses),
          static_cast<unsigned long long>(snap.load_stale),
          static_cast<unsigned long long>(snap.load_corrupt),
          static_cast<unsigned long long>(snap.saves),
          static_cast<unsigned long long>(snap.save_failures),
          static_cast<unsigned long long>(snap.bytes_saved));
    }
    std::printf("bye\n");
    return 0;
  }

  // Self-demo: one cold query, one warm query, then STATS — the second
  // query is served by the positional map the first one built.
  RunLoopbackQuery(server.port(),
                   "{\"q\": \"SELECT COUNT(*), MIN(a1), MAX(a1) FROM micro\", "
                   "\"id\": \"cold\"}");
  RunLoopbackQuery(server.port(),
                   "{\"q\": \"SELECT a1, a2 FROM micro WHERE a1 < 1000000\", "
                   "\"id\": \"warm\"}");
  RunLoopbackQuery(server.port(), "STATS");
  server.Stop();
  return 0;
}
