#!/usr/bin/env bash
# End-to-end warm-restart gate. Run from the build directory after a full
# build:
#
#   ../ci/restart_smoke.sh
#
# Boots example_nodb_server with a persistent data file and a snapshot
# directory, warms the table through real client queries, drains it with
# SIGTERM (which persists the auxiliary structures), then starts a second
# server on the same data and snapshot directories and checks that:
#
#   * the restarted server loaded the snapshot (STATS snapshot_loads=1,
#     table snapshot_state "loaded"),
#   * the first post-restart query re-reads ~zero raw-file bytes — the
#     restored positional map + column cache answer it without touching
#     the CSV (bytes_read stays 0; fingerprinting reads don't count),
#   * its answer is byte-identical to the pre-restart warm answer.
set -euo pipefail

SERVER=./example_nodb_server
CLIENT=./example_nodb_client
PORT="${RESTART_SMOKE_PORT:-7789}"
ROWS="${RESTART_SMOKE_ROWS:-200000}"
DIR=$(mktemp -d rsmoke.XXXXXX)
DATA="$DIR/micro.csv"
SNAPS="$DIR/snaps"
QUERY="SELECT a1, a7 FROM micro WHERE a1 < 100000000"

fail() {
  echo "FAIL: $1" >&2
  echo "--- server log ---" >&2
  cat "$DIR/server.log" >&2 || true
  exit 1
}

EXTRA_FLAGS=""

start_server() {
  # shellcheck disable=SC2086  # EXTRA_FLAGS is deliberately word-split
  "$SERVER" --serve --port "$PORT" --rows "$ROWS" $EXTRA_FLAGS \
    --data "$DATA" --snapshot-dir "$SNAPS" > "$DIR/server.log" 2>&1 &
  SERVER_PID=$!
  local ready=0
  for _ in $(seq 1 100); do
    if "$CLIENT" --port "$PORT" --stats > /dev/null 2>&1; then
      ready=1
      break
    fi
    kill -0 "$SERVER_PID" 2> /dev/null || fail "server exited during startup"
    sleep 0.2
  done
  [ "$ready" = 1 ] || fail "server never became ready on port $PORT"
}

stop_server() {
  kill -TERM "$SERVER_PID"
  local rc=0
  wait "$SERVER_PID" || rc=$?
  [ "$rc" = 0 ] || fail "server exited $rc on SIGTERM"
}

cleanup() {
  kill -9 "${SERVER_PID:-0}" 2> /dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

# ---- run 1: cold start, warm through queries, drain ----------------------
start_server

"$CLIENT" --port "$PORT" --stats > "$DIR/stats1.out" 2>&1 \
  || fail "run-1 stats query failed"
grep -q '"snapshot_loads":0' "$DIR/stats1.out" \
  || fail "fresh start claimed a snapshot load: $(cat "$DIR/stats1.out")"

# Warm the structures the post-restart query needs (and a wider aggregate
# so the statistics have something to persist), then take the reference
# answer. The status line carries timings, so only row payloads compare.
"$CLIENT" --port "$PORT" \
  "SELECT SUM(a1), SUM(a2), SUM(a7), MIN(a1), MAX(a7) FROM micro" \
  > /dev/null 2>&1 || fail "warming aggregate failed"
"$CLIENT" --port "$PORT" "$QUERY" > "$DIR/warm.out" 2>&1 \
  || fail "warm reference query failed"
grep -q '"status":"ok"' "$DIR/warm.out" || fail "warm query got no ok status"
grep -v '"status"' "$DIR/warm.out" > "$DIR/warm.rows"

stop_server
grep -q "bye" "$DIR/server.log" || fail "run 1 missing clean-drain marker"
ls "$SNAPS"/*.nodbsnap > /dev/null 2>&1 \
  || fail "drain left no snapshot in $SNAPS"

# ---- run 2: restart on the same data + snapshot directories --------------
start_server

"$CLIENT" --port "$PORT" "$QUERY" > "$DIR/restart.out" 2>&1 \
  || fail "post-restart query failed"
grep -q '"status":"ok"' "$DIR/restart.out" \
  || fail "post-restart query got no ok status"
grep -v '"status"' "$DIR/restart.out" > "$DIR/restart.rows"
cmp -s "$DIR/warm.rows" "$DIR/restart.rows" \
  || fail "post-restart answer differs from pre-restart warm answer"

"$CLIENT" --port "$PORT" --stats > "$DIR/stats2.out" 2>&1 \
  || fail "run-2 stats query failed"
grep -q '"snapshot_loads":1' "$DIR/stats2.out" \
  || fail "restart did not load the snapshot: $(cat "$DIR/stats2.out")"
grep -q '"snapshot_state":"loaded"' "$DIR/stats2.out" \
  || fail "table not marked loaded: $(cat "$DIR/stats2.out")"
# The acceptance check: the restored structures answered the scan, so the
# raw CSV was never re-parsed (fingerprint sampling uses a private handle
# and the generated file is reused, so any byte here is a real re-parse).
grep -q '"bytes_read":0' "$DIR/stats2.out" \
  || fail "post-restart query re-read the raw file: $(cat "$DIR/stats2.out")"

stop_server
grep -q "snapshots: loads=1" "$DIR/server.log" \
  || fail "run 2 drain summary missing snapshot load count"

# ---- gz leg: the same warm-restart dance over a gzipped source -----------
# The server now serves micro.csv.gz in situ through the checkpointed
# decompression layer. The drain persists the checkpoint index inside the
# snapshot (v3 section), so the restarted server must answer the warm query
# without re-reading decompressed payload bytes AND without re-inflating
# the stream to rebuild its checkpoints.
EXTRA_FLAGS="--gzip"
DATA="$DIR/gzmicro.csv"
SNAPS="$DIR/gzsnaps"

start_server
"$CLIENT" --port "$PORT" \
  "SELECT SUM(a1), SUM(a2), SUM(a7), MIN(a1), MAX(a7) FROM micro" \
  > /dev/null 2>&1 || fail "gz warming aggregate failed"
"$CLIENT" --port "$PORT" "$QUERY" > "$DIR/gzwarm.out" 2>&1 \
  || fail "gz warm reference query failed"
grep -q '"status":"ok"' "$DIR/gzwarm.out" || fail "gz warm query not ok"
grep -v '"status"' "$DIR/gzwarm.out" > "$DIR/gzwarm.rows"
cmp -s "$DIR/warm.rows" "$DIR/gzwarm.rows" \
  || fail "gz-served answer differs from the plain-served answer"
stop_server
ls "$SNAPS"/*.nodbsnap > /dev/null 2>&1 || fail "gz drain left no snapshot"

start_server
# Baseline before any query: the open-time gzip sniff inflates a handful of
# bytes, so compare inflation before/after the query instead of against 0.
"$CLIENT" --port "$PORT" --stats > "$DIR/gzstats_pre.out" 2>&1 \
  || fail "gz run-2 pre-query stats failed"
grep -q '"compressed":true' "$DIR/gzstats_pre.out" \
  || fail "gz table not marked compressed: $(cat "$DIR/gzstats_pre.out")"
grep -q '"gz_checkpoints":[1-9]' "$DIR/gzstats_pre.out" \
  || fail "restart did not restore the checkpoint index: $(cat "$DIR/gzstats_pre.out")"
PRE_INFLATED=$(grep -o '"gz_bytes_inflated":[0-9]*' "$DIR/gzstats_pre.out")

"$CLIENT" --port "$PORT" "$QUERY" > "$DIR/gzrestart.out" 2>&1 \
  || fail "gz post-restart query failed"
grep -q '"status":"ok"' "$DIR/gzrestart.out" || fail "gz restart query not ok"
grep -v '"status"' "$DIR/gzrestart.out" > "$DIR/gzrestart.rows"
cmp -s "$DIR/warm.rows" "$DIR/gzrestart.rows" \
  || fail "gz post-restart answer differs from the warm answer"

"$CLIENT" --port "$PORT" --stats > "$DIR/gzstats2.out" 2>&1 \
  || fail "gz run-2 stats failed"
grep -q '"snapshot_loads":1' "$DIR/gzstats2.out" \
  || fail "gz restart did not load the snapshot: $(cat "$DIR/gzstats2.out")"
grep -q '"bytes_read":0' "$DIR/gzstats2.out" \
  || fail "gz post-restart query read decompressed payload: $(cat "$DIR/gzstats2.out")"
POST_INFLATED=$(grep -o '"gz_bytes_inflated":[0-9]*' "$DIR/gzstats2.out")
[ "$PRE_INFLATED" = "$POST_INFLATED" ] \
  || fail "gz post-restart query re-inflated the stream ($PRE_INFLATED -> $POST_INFLATED)"

stop_server

echo "restart smoke: PASS"
