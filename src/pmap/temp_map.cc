#include "pmap/temp_map.h"

namespace nodb {

TempMap::TempMap(PositionalMap* pm, uint64_t stripe, int tuples,
                 const std::vector<int>& attrs)
    : num_attrs_(static_cast<int>(attrs.size())), num_tuples_(tuples) {
  matrix_.assign(static_cast<size_t>(tuples) * num_attrs_,
                 PositionalMap::kUnknown);
  if (pm == nullptr) return;
  std::vector<uint32_t> column(tuples);
  for (int slot = 0; slot < num_attrs_; ++slot) {
    int filled =
        pm->FillStripePositions(stripe, attrs[slot], column.data(), tuples);
    prefilled_ += filled;
    if (filled == 0) continue;
    for (int t = 0; t < tuples; ++t) {
      matrix_[static_cast<size_t>(t) * num_attrs_ + slot] = column[t];
    }
  }
}

}  // namespace nodb
