#include "sql/parser.h"

#include "sql/lexer.h"
#include "util/str_conv.h"

namespace nodb {

namespace {

/// Recursive-descent parser over the token stream. Precedence (low→high):
/// OR, AND, NOT, predicates (comparison/BETWEEN/IN/LIKE/IS), additive,
/// multiplicative, unary, primary.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStmt>> ParseStatement() {
    NODB_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelectBody());
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().type != TokenType::kEof) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

 private:
  // --- token helpers ---
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AcceptKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(std::string_view s) {
    if (Peek().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument("expected " + std::string(kw) + " at " +
                                     std::to_string(Peek().position));
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view s) {
    if (!AcceptSymbol(s)) {
      return Status::InvalidArgument("expected '" + std::string(s) + "' at " +
                                     std::to_string(Peek().position));
    }
    return Status::OK();
  }
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at " +
                                   std::to_string(Peek().position) + " near '" +
                                   Peek().text + "'");
  }

  /// DAY/MONTH/YEAR are keywords only inside INTERVAL literals; anywhere a
  /// name is expected they act as ordinary identifiers (non-reserved words,
  /// as in standard SQL).
  bool PeekIsName() const {
    const Token& t = Peek();
    return t.type == TokenType::kIdent || t.IsKeyword("DAY") ||
           t.IsKeyword("MONTH") || t.IsKeyword("YEAR");
  }
  std::string TakeName() {
    const Token& t = Advance();
    if (t.type == TokenType::kIdent) return t.text;
    std::string lower = t.text;
    for (char& c : lower) c = static_cast<char>(tolower(c));
    return lower;
  }

  static ParsedExprPtr MakeExpr(ParsedExpr::Kind kind, int position) {
    auto e = std::make_unique<ParsedExpr>();
    e->kind = kind;
    e->position = position;
    return e;
  }

  // --- grammar ---

  Result<std::unique_ptr<SelectStmt>> ParseSelectBody() {
    NODB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStmt>();

    if (AcceptSymbol("*")) {
      stmt->select_star = true;
    } else {
      do {
        SelectItem item;
        NODB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("AS")) {
          if (!PeekIsName()) return Error("expected alias");
          item.alias = TakeName();
        } else if (PeekIsName()) {
          // Bare alias (SELECT expr name).
          item.alias = TakeName();
        }
        stmt->items.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }

    NODB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    NODB_RETURN_IF_ERROR(ParseFromClause(stmt.get()));

    if (AcceptKeyword("WHERE")) {
      NODB_ASSIGN_OR_RETURN(ParsedExprPtr where, ParseExpr());
      stmt->where = MergeConjunct(std::move(stmt->where), std::move(where));
    }
    if (AcceptKeyword("GROUP")) {
      NODB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        NODB_ASSIGN_OR_RETURN(ParsedExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("ORDER")) {
      NODB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderItem item;
        NODB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("DESC")) {
          item.desc = true;
        } else {
          AcceptKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) {
        return Error("expected integer after LIMIT");
      }
      NODB_ASSIGN_OR_RETURN(int64_t n, ParseInt64(Advance().text));
      stmt->limit = n;
    }
    return stmt;
  }

  Status ParseFromClause(SelectStmt* stmt) {
    NODB_RETURN_IF_ERROR(ParseTableRef(stmt));
    while (true) {
      if (AcceptSymbol(",")) {
        NODB_RETURN_IF_ERROR(ParseTableRef(stmt));
        continue;
      }
      // [INNER] JOIN table [alias] ON cond — normalized into FROM + WHERE.
      bool is_join = false;
      if (Peek().IsKeyword("JOIN")) {
        Advance();
        is_join = true;
      } else if (Peek().IsKeyword("INNER") && Peek(1).IsKeyword("JOIN")) {
        Advance();
        Advance();
        is_join = true;
      }
      if (!is_join) break;
      NODB_RETURN_IF_ERROR(ParseTableRef(stmt));
      NODB_RETURN_IF_ERROR(ExpectKeyword("ON"));
      auto cond_result = ParseExpr();
      if (!cond_result.ok()) return cond_result.status();
      stmt->where = MergeConjunct(std::move(stmt->where),
                                  std::move(cond_result).value());
    }
    return Status::OK();
  }

  Status ParseTableRef(SelectStmt* stmt) {
    if (!PeekIsName()) {
      return Error("expected table name");
    }
    TableRef ref;
    ref.table = TakeName();
    if (AcceptKeyword("AS")) {
      if (!PeekIsName()) return Error("expected alias");
      ref.alias = TakeName();
    } else if (PeekIsName()) {
      ref.alias = TakeName();
    }
    stmt->from.push_back(std::move(ref));
    return Status::OK();
  }

  static ParsedExprPtr MergeConjunct(ParsedExprPtr a, ParsedExprPtr b) {
    if (a == nullptr) return b;
    auto conj = MakeExpr(ParsedExpr::Kind::kBinary, b->position);
    conj->op = "AND";
    conj->left = std::move(a);
    conj->right = std::move(b);
    return conj;
  }

  Result<ParsedExprPtr> ParseExpr() { return ParseOr(); }

  Result<ParsedExprPtr> ParseOr() {
    NODB_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseAnd());
    while (Peek().IsKeyword("OR")) {
      int pos = Advance().position;
      NODB_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseAnd());
      auto e = MakeExpr(ParsedExpr::Kind::kBinary, pos);
      e->op = "OR";
      e->left = std::move(left);
      e->right = std::move(right);
      left = std::move(e);
    }
    return left;
  }

  Result<ParsedExprPtr> ParseAnd() {
    NODB_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseNot());
    while (Peek().IsKeyword("AND")) {
      int pos = Advance().position;
      NODB_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseNot());
      auto e = MakeExpr(ParsedExpr::Kind::kBinary, pos);
      e->op = "AND";
      e->left = std::move(left);
      e->right = std::move(right);
      left = std::move(e);
    }
    return left;
  }

  Result<ParsedExprPtr> ParseNot() {
    if (Peek().IsKeyword("NOT")) {
      int pos = Advance().position;
      NODB_ASSIGN_OR_RETURN(ParsedExprPtr inner, ParseNot());
      auto e = MakeExpr(ParsedExpr::Kind::kNot, pos);
      e->left = std::move(inner);
      return e;
    }
    return ParsePredicate();
  }

  /// Comparison and SQL predicate forms over additive expressions.
  Result<ParsedExprPtr> ParsePredicate() {
    NODB_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseAdditive());

    // IS [NOT] NULL
    if (Peek().IsKeyword("IS")) {
      int pos = Advance().position;
      bool negated = AcceptKeyword("NOT");
      NODB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto e = MakeExpr(ParsedExpr::Kind::kIsNull, pos);
      e->left = std::move(left);
      e->negated = negated;
      return e;
    }

    bool negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("BETWEEN") || Peek(1).IsKeyword("IN") ||
         Peek(1).IsKeyword("LIKE"))) {
      Advance();
      negated = true;
    }

    if (Peek().IsKeyword("BETWEEN")) {
      int pos = Advance().position;
      NODB_ASSIGN_OR_RETURN(ParsedExprPtr lo, ParseAdditive());
      NODB_RETURN_IF_ERROR(ExpectKeyword("AND"));
      NODB_ASSIGN_OR_RETURN(ParsedExprPtr hi, ParseAdditive());
      auto e = MakeExpr(ParsedExpr::Kind::kBetween, pos);
      e->left = std::move(left);
      e->low = std::move(lo);
      e->high = std::move(hi);
      e->negated = negated;
      return e;
    }
    if (Peek().IsKeyword("IN")) {
      int pos = Advance().position;
      NODB_RETURN_IF_ERROR(ExpectSymbol("("));
      auto e = MakeExpr(ParsedExpr::Kind::kInList, pos);
      e->left = std::move(left);
      e->negated = negated;
      do {
        NODB_ASSIGN_OR_RETURN(ParsedExprPtr item, ParseAdditive());
        e->list_items.push_back(std::move(item));
      } while (AcceptSymbol(","));
      NODB_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    if (Peek().IsKeyword("LIKE")) {
      int pos = Advance().position;
      if (Peek().type != TokenType::kString) {
        return Error("LIKE requires a string literal pattern");
      }
      auto e = MakeExpr(ParsedExpr::Kind::kLike, pos);
      e->left = std::move(left);
      e->string_value = Advance().text;
      e->negated = negated;
      return e;
    }
    if (negated) return Error("expected BETWEEN, IN or LIKE after NOT");

    static const std::string_view kCompareOps[] = {"=",  "<>", "!=",
                                                   "<=", ">=", "<",  ">"};
    for (std::string_view op : kCompareOps) {
      if (Peek().IsSymbol(op)) {
        int pos = Advance().position;
        NODB_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseAdditive());
        auto e = MakeExpr(ParsedExpr::Kind::kBinary, pos);
        e->op = op == "!=" ? "<>" : std::string(op);
        e->left = std::move(left);
        e->right = std::move(right);
        return e;
      }
    }
    return left;
  }

  Result<ParsedExprPtr> ParseAdditive() {
    NODB_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseMultiplicative());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      std::string op = Peek().text;
      int pos = Advance().position;
      NODB_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseMultiplicative());
      auto e = MakeExpr(ParsedExpr::Kind::kBinary, pos);
      e->op = op;
      e->left = std::move(left);
      e->right = std::move(right);
      left = std::move(e);
    }
    return left;
  }

  Result<ParsedExprPtr> ParseMultiplicative() {
    NODB_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseUnary());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      std::string op = Peek().text;
      int pos = Advance().position;
      NODB_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseUnary());
      auto e = MakeExpr(ParsedExpr::Kind::kBinary, pos);
      e->op = op;
      e->left = std::move(left);
      e->right = std::move(right);
      left = std::move(e);
    }
    return left;
  }

  Result<ParsedExprPtr> ParseUnary() {
    if (Peek().IsSymbol("-")) {
      int pos = Advance().position;
      NODB_ASSIGN_OR_RETURN(ParsedExprPtr inner, ParseUnary());
      auto e = MakeExpr(ParsedExpr::Kind::kNegate, pos);
      e->left = std::move(inner);
      return e;
    }
    if (Peek().IsSymbol("+")) Advance();
    return ParsePrimary();
  }

  Result<ParsedExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    int pos = tok.position;

    if (AcceptSymbol("(")) {
      NODB_ASSIGN_OR_RETURN(ParsedExprPtr inner, ParseExpr());
      NODB_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (tok.type == TokenType::kInteger) {
      Advance();
      auto e = MakeExpr(ParsedExpr::Kind::kIntLiteral, pos);
      NODB_ASSIGN_OR_RETURN(e->int_value, ParseInt64(tok.text));
      return e;
    }
    if (tok.type == TokenType::kFloat) {
      Advance();
      auto e = MakeExpr(ParsedExpr::Kind::kFloatLiteral, pos);
      NODB_ASSIGN_OR_RETURN(e->float_value, ParseDouble(tok.text));
      return e;
    }
    if (tok.type == TokenType::kString) {
      Advance();
      auto e = MakeExpr(ParsedExpr::Kind::kStringLiteral, pos);
      e->string_value = tok.text;
      return e;
    }
    if (tok.IsKeyword("NULL")) {
      Advance();
      return MakeExpr(ParsedExpr::Kind::kNullLiteral, pos);
    }
    if (tok.IsKeyword("DATE")) {
      Advance();
      if (Peek().type != TokenType::kString) {
        return Error("DATE requires a string literal");
      }
      auto e = MakeExpr(ParsedExpr::Kind::kDateLiteral, pos);
      e->string_value = Advance().text;
      return e;
    }
    if (tok.IsKeyword("INTERVAL")) {
      Advance();
      if (Peek().type != TokenType::kString &&
          Peek().type != TokenType::kInteger) {
        return Error("INTERVAL requires a quantity");
      }
      NODB_ASSIGN_OR_RETURN(int64_t qty, ParseInt64(Advance().text));
      auto e = MakeExpr(ParsedExpr::Kind::kIntervalLiteral, pos);
      if (AcceptKeyword("DAY")) {
        e->int_value = qty;
      } else if (AcceptKeyword("MONTH")) {
        e->int_value = qty * 30;  // calendar-approximate, like the paper's use
      } else if (AcceptKeyword("YEAR")) {
        e->int_value = qty * 365;
      } else {
        return Error("expected DAY, MONTH or YEAR");
      }
      return e;
    }
    if (tok.IsKeyword("CASE")) {
      Advance();
      auto e = MakeExpr(ParsedExpr::Kind::kCase, pos);
      while (AcceptKeyword("WHEN")) {
        ParsedExpr::When when;
        NODB_ASSIGN_OR_RETURN(when.condition, ParseExpr());
        NODB_RETURN_IF_ERROR(ExpectKeyword("THEN"));
        NODB_ASSIGN_OR_RETURN(when.result, ParseExpr());
        e->whens.push_back(std::move(when));
      }
      if (e->whens.empty()) return Error("CASE requires at least one WHEN");
      if (AcceptKeyword("ELSE")) {
        NODB_ASSIGN_OR_RETURN(e->else_result, ParseExpr());
      }
      NODB_RETURN_IF_ERROR(ExpectKeyword("END"));
      return e;
    }
    if (tok.IsKeyword("CAST")) {
      Advance();
      NODB_RETURN_IF_ERROR(ExpectSymbol("("));
      auto e = MakeExpr(ParsedExpr::Kind::kFuncCall, pos);
      e->func_name = "CAST";
      NODB_ASSIGN_OR_RETURN(ParsedExprPtr arg, ParseExpr());
      e->args.push_back(std::move(arg));
      NODB_RETURN_IF_ERROR(ExpectKeyword("AS"));
      if (Peek().type != TokenType::kIdent && !Peek().IsKeyword("DATE")) {
        return Error("expected type name");
      }
      e->string_value = Advance().text;  // target type name
      NODB_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    if (tok.IsKeyword("EXISTS")) {
      Advance();
      NODB_RETURN_IF_ERROR(ExpectSymbol("("));
      auto e = MakeExpr(ParsedExpr::Kind::kExists, pos);
      NODB_ASSIGN_OR_RETURN(e->subquery, ParseSelectBody());
      NODB_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    // Aggregate function calls.
    for (std::string_view agg : {"COUNT", "SUM", "AVG", "MIN", "MAX"}) {
      if (tok.IsKeyword(agg)) {
        Advance();
        NODB_RETURN_IF_ERROR(ExpectSymbol("("));
        auto e = MakeExpr(ParsedExpr::Kind::kFuncCall, pos);
        e->func_name = agg;
        if (agg == "COUNT" && AcceptSymbol("*")) {
          e->star_arg = true;
        } else {
          NODB_ASSIGN_OR_RETURN(ParsedExprPtr arg, ParseExpr());
          e->args.push_back(std::move(arg));
        }
        NODB_RETURN_IF_ERROR(ExpectSymbol(")"));
        return e;
      }
    }
    // Column reference: name or name.name (DAY/MONTH/YEAR usable as names).
    if (PeekIsName()) {
      std::string first = TakeName();
      auto e = MakeExpr(ParsedExpr::Kind::kColumn, pos);
      if (AcceptSymbol(".")) {
        if (!PeekIsName()) {
          return Error("expected column name after '.'");
        }
        e->qualifier = first;
        e->column = TakeName();
      } else {
        e->column = first;
      }
      return e;
    }
    return Error("unexpected token in expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql) {
  NODB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace nodb
