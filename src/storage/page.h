#ifndef NODB_STORAGE_PAGE_H_
#define NODB_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace nodb {

/// Page size used by the slotted-page storage engine (PostgreSQL's default).
inline constexpr uint32_t kPageSize = 8192;

/// Slotted heap page, PostgreSQL-style: a header, a slot array growing up,
/// and tuple data growing down from the page end. Tuples that do not fit
/// inline are stored in overflow-page chains and the slot holds a pointer
/// record (flag kOverflowPointer) — the mechanism behind the paper's Fig. 13
/// observation that slotted-page engines degrade sharply with wide tuples.
///
/// The class is a non-owning view over an 8 KiB frame (typically a buffer
/// pool frame), so pages can be manipulated in place without copies.
class SlottedPage {
 public:
  /// Per-slot flags.
  enum SlotFlags : uint16_t {
    kNormal = 0,
    kOverflowPointer = 1,
  };

  /// Payload of an overflow pointer record.
  struct OverflowRef {
    uint32_t first_page;
    uint32_t total_len;
  };

  /// Wraps an existing frame (no initialization).
  explicit SlottedPage(char* frame) : frame_(frame) {}

  /// Formats the frame as an empty page.
  void Init(uint32_t page_id);

  uint32_t page_id() const { return header()->page_id; }
  uint16_t slot_count() const { return header()->slot_count; }

  /// Free bytes available for one more tuple (accounts for its slot).
  uint32_t FreeSpace() const;

  /// Largest tuple payload that can ever be stored inline in an empty page.
  static uint32_t MaxInlinePayload();

  /// Appends a tuple; returns its slot index or -1 if it does not fit.
  int InsertTuple(std::string_view data, uint16_t flags = kNormal);

  /// Tuple payload of `slot`.
  std::string_view GetTuple(int slot) const;
  uint16_t GetFlags(int slot) const;

 private:
  struct Header {
    uint32_t page_id;
    uint16_t slot_count;
    uint16_t lower;  // end of slot array
    uint16_t upper;  // start of tuple data
    uint16_t reserved;
  };
  struct Slot {
    uint16_t offset;
    uint16_t len;
    uint16_t flags;
    uint16_t reserved;
  };

  Header* header() { return reinterpret_cast<Header*>(frame_); }
  const Header* header() const { return reinterpret_cast<const Header*>(frame_); }
  Slot* slots() { return reinterpret_cast<Slot*>(frame_ + sizeof(Header)); }
  const Slot* slots() const {
    return reinterpret_cast<const Slot*>(frame_ + sizeof(Header));
  }

  char* frame_;
};

}  // namespace nodb

#endif  // NODB_STORAGE_PAGE_H_
