#include "exec/compact_scan.h"

#include "expr/evaluator.h"

namespace nodb {

CompactScanOp::CompactScanOp(TableRuntime* runtime, const PlannedScan* scan,
                             int working_width)
    : runtime_(runtime), scan_(scan), working_width_(working_width) {}

Status CompactScanOp::Open() {
  if (runtime_->compact == nullptr) {
    return Status::Internal("compact scan over a table without compact storage");
  }
  int ncols = runtime_->schema.num_columns();
  needed_.assign(ncols, false);
  for (int c : scan_->where_attrs) needed_[c] = true;
  for (int c : scan_->payload_attrs) needed_[c] = true;
  scanner_ = std::make_unique<CompactTable::Scanner>(runtime_->compact.get(),
                                                     needed_);
  return Status::OK();
}

Result<size_t> CompactScanOp::Next(RowBatch* batch) {
  const int offset = scan_->table.offset;
  batch->Clear();
  while (!batch->full()) {
    NODB_ASSIGN_OR_RETURN(bool has, scanner_->Next(&table_row_));
    if (!has) break;
    Row& row = batch->PushRow();
    row.assign(working_width_, Value());
    for (size_t c = 0; c < table_row_.size(); ++c) {
      row[offset + static_cast<int>(c)] = std::move(table_row_[c]);
    }
    bool pass = true;
    for (const ExprPtr& conj : scan_->conjuncts) {
      NODB_ASSIGN_OR_RETURN(Value v, Evaluator::Eval(*conj, row));
      if (!Evaluator::IsTruthy(v)) {
        pass = false;
        break;
      }
    }
    if (!pass) batch->PopRow();
  }
  return batch->size();
}

Status CompactScanOp::Close() {
  scanner_.reset();
  return Status::OK();
}

}  // namespace nodb
